# Tier-1 verification is `make check`: everything CI needs to trust a change.

GO ?= go

.PHONY: check build test race vet fmt fuzz bench bench-wan chaos docs-check

check: vet race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l . && test -z "$$(gofmt -l .)"

# Documentation gate: formatting, vet, and a doc-comment lint over the
# packages whose godoc is the operations/API reference (see ARCHITECTURE.md).
docs-check: vet
	@test -z "$$(gofmt -l .)" || { echo "gofmt needed on:"; gofmt -l .; exit 1; }
	$(GO) run ./cmd/docscheck ./internal/ledger ./internal/ledger/disk ./internal/snapshot ./internal/transport ./internal/chaos ./internal/byzantine ./internal/mempool ./internal/rpc ./internal/config .

# Short fuzz pass over the wire codec (decode must never panic), the ledger
# importer (rejected ranges must leave the chain untouched), block-store
# recovery (corrupt/torn segment files must yield a clean prefix or a clean
# error — never a panic, never an unverified block), and the snapshot
# manifest (mutated checkpoint manifests must be rejected cleanly and keep a
# stable identity key through wire round-trips).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDecodeMessage -fuzztime 30s ./internal/types/
	$(GO) test -run '^$$' -fuzz FuzzLedgerImport -fuzztime 30s ./internal/ledger/
	$(GO) test -run '^$$' -fuzz FuzzDiskRecovery -fuzztime 30s ./internal/ledger/disk/
	$(GO) test -run '^$$' -fuzz FuzzSnapshotManifest -fuzztime 30s ./internal/snapshot/

# Seeded fault-injection scenario suite, race-instrumented: the crash/
# partition/restart scenarios, the bounded-history scenarios (a fresh
# replica joining a GC'd 100k-block chain via verified snapshot transfer)
# plus the Byzantine suite (equivocating primary, forged certificate
# shares, view-change spam, tampered catch-up, starved catch-up peer,
# tampered snapshot server) over the full seed matrix, and the harness's
# own teeth test (a >f coalition must demonstrably break the safety
# checks). Replay one failure byte-for-byte with CHAOS_SEED=<seed> make
# chaos. See README "Failure model & recovery".
chaos:
	CHAOS_MATRIX=full $(GO) test -race -v -count=1 -run 'TestChaosScenarios|TestByzantine|TestRunEnforcesFaultBound' ./internal/chaos/

# Performance suite: fabric macro-benchmark (Real crypto, Mem + TCP loopback,
# serial vs verify pool, plus the 10k-client admission-saturation shape),
# the snapshot-bootstrap column (verify+install cost of joining from a
# checkpoint across state sizes) and codec micro-benchmarks; writes
# BENCH_PR7.json with txn/s, allocs/op, drop counts and the peak mempool
# length. See README "Performance" for how to read the numbers (especially
# on 1-core hosts). Durability micro-benchmarks (ledger append under each
# fsync policy, disk bootstrap) live in ./internal/ledger/disk:
#   go test -run '^$' -bench . ./internal/ledger/disk/
bench:
	$(GO) run ./cmd/fabricbench -out BENCH_PR7.json

# WAN benchmark: a geo-emulated deployment — one authenticated TCP transport
# per replica and per client, with Table 1 (Google Cloud) latency shaped
# between cluster regions — measuring per-region client commit latency, the
# injected cross-cluster RTT matrix certificate sharing pays, and throughput
# versus uniformly injected RTT; writes BENCH_WAN.json. See README
# "Operations" for the workflow (and the 1-core caveat when reading absolute
# numbers).
bench-wan:
	$(GO) run ./cmd/wanbench -clusters 3 -replicas 4 -duration 3s \
		-sweep 0ms,50ms,100ms,200ms -out BENCH_WAN.json
