# Tier-1 verification is `make check`: everything CI needs to trust a change.

GO ?= go

.PHONY: check build test race vet fmt fuzz bench chaos

check: vet race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l . && test -z "$$(gofmt -l .)"

# Short fuzz pass over the wire codec (decode must never panic) and the
# ledger importer (rejected ranges must leave the chain untouched).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDecodeMessage -fuzztime 30s ./internal/types/
	$(GO) test -run '^$$' -fuzz FuzzLedgerImport -fuzztime 30s ./internal/ledger/

# Seeded fault-injection scenario suite (crash-primary, crash-remote-primary,
# partition-heal, restart-and-catch-up), race-instrumented. See README
# "Failure model & recovery".
chaos:
	$(GO) test -race -v -count=1 -run TestChaosScenarios ./internal/chaos/

# Performance suite: fabric macro-benchmark (Real crypto, Mem + TCP loopback,
# serial vs verify pool) plus codec micro-benchmarks; writes BENCH_PR2.json
# with txn/s, allocs/op and drop counts. See README "Performance".
bench:
	$(GO) run ./cmd/fabricbench -out BENCH_PR2.json
