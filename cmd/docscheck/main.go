// Command docscheck is the documentation gate run by `make docs-check` and
// CI: it fails when an exported identifier in the given package directories
// lacks a doc comment, so `go doc` output stays a usable reference instead
// of rotting one undocumented export at a time.
//
//	go run ./cmd/docscheck ./internal/ledger ./internal/ledger/disk .
//
// It checks package comments, exported top-level functions, methods with
// exported receivers, types, consts, and vars (a const/var block's group
// comment covers its members), and the exported fields of exported structs
// and methods of exported interfaces. Test files are ignored.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: docscheck <package dir>...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range dirs {
		missing, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Println(m)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d exported identifier(s) lack doc comments\n", bad)
		os.Exit(1)
	}
}

// checkDir parses one package directory (tests excluded) and returns a
// "file:line: identifier" line for every undocumented export.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", filepath.ToSlash(p.Filename), p.Line, what))
	}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			// Attribute the missing package comment to any one file.
			for name, f := range pkg.Files {
				_ = name
				report(f.Package, "package "+pkg.Name+" has no package comment")
				break
			}
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				checkDecl(decl, report)
			}
		}
	}
	return missing, nil
}

// checkDecl reports undocumented exports in one top-level declaration.
func checkDecl(decl ast.Decl, report func(token.Pos, string)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !receiverExported(d) {
			return
		}
		if d.Doc == nil {
			report(d.Pos(), "func "+funcName(d))
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				if d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(s.Pos(), "type "+s.Name.Name)
				}
				checkTypeMembers(s, report)
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if !name.IsExported() {
						continue
					}
					if d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(name.Pos(), tokenKind(d.Tok)+" "+name.Name)
					}
				}
			}
		}
	}
}

// checkTypeMembers reports undocumented exported struct fields and interface
// methods of an exported type.
func checkTypeMembers(s *ast.TypeSpec, report func(token.Pos, string)) {
	switch t := s.Type.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			for _, name := range f.Names {
				if name.IsExported() && f.Doc == nil && f.Comment == nil {
					report(name.Pos(), "field "+s.Name.Name+"."+name.Name)
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			for _, name := range m.Names {
				if name.IsExported() && m.Doc == nil && m.Comment == nil {
					report(name.Pos(), "interface method "+s.Name.Name+"."+name.Name)
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver type is exported
// (methods on unexported types are not part of the package's surface).
// Plain functions count as exported receivers.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// funcName formats "Recv.Name" for methods and "Name" for functions.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// tokenKind renders the declaration keyword for a value spec.
func tokenKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
