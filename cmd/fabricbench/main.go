// Command fabricbench runs the repository's performance suite — the fabric
// macro-benchmark (committed-txn throughput with Real cryptography, over the
// Mem and TCP-loopback transports, serial baseline vs parallel verify pool),
// the snapshot-bootstrap measurement (verify+install cost of joining from a
// checkpoint across state sizes), and the wire-codec micro-benchmarks — and
// writes the results as JSON so the repository's performance trajectory has
// committed data points.
//
// Usage:
//
//	go run ./cmd/fabricbench -out BENCH_PR7.json -duration 2s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"resilientdb/internal/fabricbench"
)

type codecResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type speedup struct {
	Case    string  `json:"case"`
	Serial  float64 `json:"serial_txn_per_sec"`
	Pooled  float64 `json:"pooled_txn_per_sec"`
	Speedup float64 `json:"speedup"`
}

type report struct {
	Generated string `json:"generated"`
	Host      struct {
		GoVersion  string `json:"go_version"`
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
	} `json:"host"`
	Note     string                                `json:"note"`
	Fabric   []fabricbench.Result                  `json:"fabric"`
	Speedups []speedup                             `json:"speedups"`
	Codec    []codecResult                         `json:"codec"`
	Snapshot []fabricbench.SnapshotBootstrapResult `json:"snapshot_bootstrap"`
}

func main() {
	out := flag.String("out", "BENCH_PR7.json", "output JSON path")
	duration := flag.Duration("duration", 20*time.Second, "measured window per scenario")
	warmup := flag.Duration("warmup", 5*time.Second, "warmup per scenario")
	only := flag.String("only", "", "run only scenarios whose name contains this substring")
	flag.Parse()

	var rep report
	rep.Generated = time.Now().UTC().Format(time.RFC3339)
	rep.Host.GoVersion = runtime.Version()
	rep.Host.GOOS = runtime.GOOS
	rep.Host.GOARCH = runtime.GOARCH
	rep.Host.NumCPU = runtime.NumCPU()
	rep.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Note = "Committed-txn throughput observed at a backup replica, Real crypto. " +
		"The verify pool moves all cryptographic checks off the consensus thread; " +
		"its speedup is bounded by spare cores. On a single-core host (GOMAXPROCS=1) " +
		"the pool cannot parallelize: small/fast shapes pay its queueing overhead, " +
		"larger and TCP shapes still gain from shortening the execution critical " +
		"path, and the >=2x target applies to multi-core hosts with cores to spare " +
		"beyond one worker thread per hosted replica. Execution unblocks in " +
		"pipeline-depth bursts, so individual scenario numbers vary ~20% run to run."

	for _, sc := range fabricbench.StandardScenarios(*warmup, *duration) {
		if *only != "" && !strings.Contains(sc.Name(), *only) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", sc.Name())
		res := fabricbench.Run(sc)
		fmt.Fprintf(os.Stderr, "  %-18s %9.0f txn/s  (%d committed, drops: %d)\n",
			res.Name, res.TxnPerSec, res.CommittedTxns, res.Drops.Total())
		rep.Fabric = append(rep.Fabric, res)
	}

	// Pair serial/pooled runs of the same deployment shape. Client-identity
	// shapes are excluded: their load crosses the admission path (and, with
	// closed-loop clients, a different arrival process), so pairing one with
	// a feeder-driven baseline would not measure the verify pool.
	serial := map[string]fabricbench.Result{}
	for _, r := range rep.Fabric {
		if r.VerifyWorkers < 0 && r.Clients == 0 {
			serial[fmt.Sprintf("%s/z%dn%d", r.Transport, r.Clusters, r.PerCluster)] = r
		}
	}
	for _, r := range rep.Fabric {
		if r.VerifyWorkers >= 0 && r.Clients == 0 {
			key := fmt.Sprintf("%s/z%dn%d", r.Transport, r.Clusters, r.PerCluster)
			if base, ok := serial[key]; ok && base.TxnPerSec > 0 {
				rep.Speedups = append(rep.Speedups, speedup{
					Case: key, Serial: base.TxnPerSec, Pooled: r.TxnPerSec,
					Speedup: r.TxnPerSec / base.TxnPerSec,
				})
			}
		}
	}

	// Snapshot-bootstrap column: the verify+install cost of joining from a
	// checkpoint instead of replaying the GC'd chain, across state sizes.
	for _, records := range []int{1_000, 100_000, 1_000_000} {
		fmt.Fprintf(os.Stderr, "snapshot bootstrap %d records...\n", records)
		res, err := fabricbench.SnapshotBootstrap(records, 5)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fabricbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "  %8d records  %9d bytes  verify %.2fms + install %.2fms  (%.0f MB/s)\n",
			res.Records, res.StateBytes, res.VerifyMs, res.InstallMs, res.MBPerSec)
		rep.Snapshot = append(rep.Snapshot, res)
	}

	for _, c := range fabricbench.CodecCases() {
		fmt.Fprintf(os.Stderr, "codec %s...\n", c.Name)
		r := testing.Benchmark(c.Fn)
		rep.Codec = append(rep.Codec, codecResult{
			Name: c.Name, NsPerOp: float64(r.NsPerOp()),
			BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
		})
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fabricbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fabricbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
