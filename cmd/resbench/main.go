// Command resbench regenerates the tables and figures of the ResilientDB
// paper's evaluation on the calibrated WAN simulator.
//
// Usage:
//
//	resbench -experiment all|table1|table2|fig10|fig11|fig12a|fig12b|fig12c|fig13 [-seed N] [-protocols geobft,pbft,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"resilientdb/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run")
	seed := flag.Int64("seed", 42, "simulation seed")
	protoList := flag.String("protocols", "", "comma-separated protocol subset (default: all)")
	flag.Parse()

	protocols := bench.AllProtocols
	if *protoList != "" {
		protocols = nil
		for _, p := range strings.Split(*protoList, ",") {
			protocols = append(protocols, bench.Protocol(strings.TrimSpace(p)))
		}
	}

	run := func(name string, fn func()) {
		if *experiment != "all" && *experiment != name {
			return
		}
		start := time.Now()
		fn()
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n\n", name, time.Since(start).Round(time.Second))
	}

	run("table1", func() { bench.PrintTable1(os.Stdout, bench.Table1()) })
	run("table2", func() { bench.PrintTable2(os.Stdout, bench.Table2()) })
	run("fig10", func() {
		bench.PrintFigure(os.Stdout,
			"Figure 10: throughput and latency vs number of clusters (zn=60, batch=100)",
			"clusters", bench.Figure10(protocols, *seed))
	})
	run("fig11", func() {
		bench.PrintFigure(os.Stdout,
			"Figure 11: throughput and latency vs replicas per cluster (z=4, batch=100)",
			"n", bench.Figure11(protocols, *seed))
	})
	run("fig12a", func() {
		bench.PrintFigure(os.Stdout,
			"Figure 12 (left): throughput with one non-primary failure (z=4)",
			"n", bench.Figure12Single(protocols, *seed))
	})
	run("fig12b", func() {
		bench.PrintFigure(os.Stdout,
			"Figure 12 (middle): throughput with f non-primary failures per cluster (z=4)",
			"n", bench.Figure12F(protocols, *seed))
	})
	run("fig12c", func() {
		bench.PrintFigure(os.Stdout,
			"Figure 12 (right): throughput with a single primary failure (z=4, GeoBFT vs PBFT)",
			"n", bench.Figure12Primary(*seed))
	})
	run("fig13", func() {
		bench.PrintFigure(os.Stdout,
			"Figure 13: throughput vs batch size (z=4, n=7)",
			"batch", bench.Figure13(protocols, *seed))
	})
}
