// Command wanbench runs the WAN macro-benchmark: a geo-emulated deployment
// (per-replica TCP transports with Table 1 latency shaping between cluster
// regions) measuring per-region commit latency and throughput versus injected
// RTT, written as JSON for BENCH_WAN.json.
//
// Usage:
//
//	wanbench [-clusters 2] [-replicas 4] [-batch 10] \
//	         [-duration 3s] [-warmup 500ms] [-sweep 0ms,50ms,150ms] \
//	         [-out BENCH_WAN.json]
//
// An empty -sweep skips the throughput-vs-RTT curve; -out "" prints the
// report to stdout only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"resilientdb/internal/fabricbench"
)

func main() {
	clusters := flag.Int("clusters", 2, "number of clusters z (one per profile region, max 6)")
	replicas := flag.Int("replicas", 4, "replicas per cluster n")
	batch := flag.Int("batch", 10, "transactions per batch")
	duration := flag.Duration("duration", 3*time.Second, "measured window per run")
	warmup := flag.Duration("warmup", 500*time.Millisecond, "unmeasured warmup per run")
	sweep := flag.String("sweep", "", "comma-separated uniform RTTs for the throughput sweep (e.g. 0ms,50ms,150ms)")
	out := flag.String("out", "BENCH_WAN.json", "output file (empty: stdout only)")
	flag.Parse()

	cfg := fabricbench.WANConfig{
		Clusters:  *clusters,
		Replicas:  *replicas,
		BatchSize: *batch,
		Duration:  *duration,
		Warmup:    *warmup,
		Seed:      1,
	}
	if *sweep != "" {
		for _, tok := range strings.Split(*sweep, ",") {
			rtt, err := time.ParseDuration(strings.TrimSpace(tok))
			if err != nil {
				fmt.Fprintf(os.Stderr, "wanbench: bad -sweep entry %q: %v\n", tok, err)
				os.Exit(2)
			}
			cfg.SweepRTT = append(cfg.SweepRTT, rtt)
		}
	}

	report, err := fabricbench.RunWAN(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wanbench: %v\n", err)
		os.Exit(1)
	}

	for _, r := range report.Regions {
		fmt.Printf("%-10s batches=%-4d txn/s=%-8.1f latency avg=%.1fms p50=%.1fms p95=%.1fms\n",
			r.Region, r.Batches, r.Throughput, r.LatencyAvgMS, r.LatencyP50MS, r.LatencyP95MS)
	}
	for _, p := range report.Sweep {
		fmt.Printf("sweep rtt=%-6.1fms txn/s=%.1f\n", p.RTTMS, p.Throughput)
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "wanbench: encode: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "wanbench: write %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	} else {
		fmt.Println(string(blob))
	}
}
