// Command resilientdb runs a ResilientDB fabric in one of two modes.
//
// In-process demo (default): a geo-emulated deployment processing a stream
// of transactions while reporting progress, optionally with a mid-run
// primary crash:
//
//	resilientdb [-clusters 2] [-replicas 4] [-batches 50] [-crash] [-wan]
//
// Multi-process cluster: with -listen, this process becomes one member of a
// deployment whose z×n replicas (and clients) run as separate OS processes
// connected over real TCP with the length-prefixed wire codec. Launch one
// process per replica and one per client, all sharing the same -peers and
// -clients address books:
//
//	resilientdb -listen :7000 -id 0 -peers :7000,:7001,...,:7007 -clients :7100,:7101
//	...                                                    (one per replica)
//	resilientdb -listen :7100 -client 0 -peers ... -clients ... -batches 50
//
// With -adversary one hosted replica (replica (0,0) in-process; the
// process's own replica in multi-process mode) runs a scripted Byzantine
// attack from internal/byzantine — equivocate, forge-shares, vc-spam,
// tamper-catchup, or suppress — from startup. The deployment tolerates f
// Byzantine replicas per cluster, so a run with one adversary must still
// commit every batch; the final report counts the forged messages the
// honest replicas rejected.
//
// With -data-dir the replica persists its ledger to a segmented append-only
// block store in that directory and, when relaunched with the same flags,
// recovers from those files alone: a tail torn by the crash is truncated,
// the surviving prefix is re-verified certificate by certificate, and peers
// supply only the missing suffix. -segment-bytes and -group-commit tune the
// store, and -snapshot-interval / -retain-segments bound its history with
// checkpoint snapshots and segment GC (see the README's Operations section).
//
// A replica process serves until SIGINT/SIGTERM (or -serve elapses), then
// verifies its ledger and prints one final line:
//
//	replica 3: ledger height=107 head=ab12cd34 verified
//
// Identical heads across replicas demonstrate agreement. A client process
// submits -batches batches to its home cluster and prints:
//
//	client 1: committed 50/50 batches in 1.2s
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"resilientdb"
	"resilientdb/internal/config"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		msg := err.Error()
		if !strings.HasPrefix(msg, "resilientdb:") {
			msg = "resilientdb: " + msg
		}
		fmt.Fprintln(os.Stderr, msg)
		os.Exit(1)
	}
}

// run executes one process's role; it is the whole command, factored so the
// multi-process test can re-execute itself into any role.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("resilientdb", flag.ContinueOnError)
	clusters := fs.Int("clusters", 2, "number of clusters (regions)")
	replicas := fs.Int("replicas", 4, "replicas per cluster")
	batches := fs.Int("batches", 50, "batches to submit per client")
	batchSize := fs.Int("batch-size", 10, "transactions per batch")
	crash := fs.Bool("crash", false, "crash the cluster-0 primary mid-run (in-process mode)")
	wan := fs.Bool("wan", false, "emulate Table-1 WAN latencies between clusters")
	listen := fs.String("listen", "", "TCP listen address; enables multi-process mode")
	peers := fs.String("peers", "", "comma-separated listen addresses of all z×n replicas, in global order")
	clientAddrs := fs.String("clients", "", "comma-separated listen addresses of the client processes")
	id := fs.Int("id", -1, "global replica index hosted by this process (multi-process mode)")
	clientIdx := fs.Int("client", -1, "client index run by this process (multi-process mode)")
	serve := fs.Duration("serve", 0, "replica auto-shutdown after this duration (0: run until signal)")
	localTimeout := fs.Duration("local-timeout", 500*time.Millisecond, "local view-change timeout")
	remoteTimeout := fs.Duration("remote-timeout", time.Second, "remote view-change timeout")
	adversary := fs.String("adversary", "", "compromise one hosted replica with a scripted byzantine attack: equivocate, forge-shares, vc-spam, tamper-catchup, tamper-snapshots, or suppress")
	dataDir := fs.String("data-dir", "", "persist each hosted replica's ledger to a block store under this directory; a restarted process recovers from it")
	segmentBytes := fs.Int64("segment-bytes", 0, "block-store segment file size cap in bytes (0: 4 MiB); needs -data-dir")
	groupCommit := fs.Duration("group-commit", 0, "batch block-store fsyncs at this interval instead of per block (0: fsync every commit); needs -data-dir")
	snapshotInterval := fs.Uint64("snapshot-interval", 0, "write a checkpoint snapshot of executed state every N rounds and GC ledger segments below it (0: disabled, history unbounded)")
	retainSegments := fs.Int("retain-segments", 0, "block-store segments to keep below the last durable checkpoint (0: 2); needs -snapshot-interval")
	provisionClients := fs.Int("provision-clients", 0, "client identities to provision signing keys for; all processes must agree (0: 64)")
	mempoolCap := fs.Int("mempool-cap", 0, "per-replica cap on admitted-but-unexecuted client requests (0: 4096)")
	clientRate := fs.Float64("client-rate", 0, "per-client admission rate limit in new requests/s (0: 512; negative disables)")
	clientBurst := fs.Int("client-burst", 0, "per-client admission burst allowance (0: 512)")
	replayWindow := fs.Int("replay-window", 0, "executed requests per client each replica remembers for ledger re-replies (0: 32)")
	rpcListen := fs.String("rpc", "", "serve the HTTP/JSON client front door for this process's first hosted replica on this address")
	cfgPath := fs.String("config", "", "cluster spec file (JSON): topology, address book, RPC listen addresses, and tuning; explicit flags override it")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *cfgPath != "" {
		if err := applyClusterSpec(fs, *cfgPath, listen, rpcListen, *id, *clientIdx); err != nil {
			return err
		}
	}

	disk := diskOptions{dir: *dataDir, segmentBytes: *segmentBytes, groupCommit: *groupCommit,
		snapshotInterval: *snapshotInterval, retainSegments: *retainSegments}
	adm := admissionOptions{clients: *provisionClients, capacity: *mempoolCap, rate: *clientRate, burst: *clientBurst, window: *replayWindow}
	if *listen == "" {
		return runInProcess(out, *clusters, *replicas, *batches, *batchSize, *crash, *wan, *localTimeout, *remoteTimeout, disk, adm, *adversary, *rpcListen)
	}

	net := &resilientdb.NetOptions{
		Listen:   *listen,
		Replicas: splitAddrs(*peers),
		Clients:  splitAddrs(*clientAddrs),
	}
	switch {
	case *id >= 0 && *clientIdx >= 0:
		return errors.New("pass either -id or -client, not both")
	case *id >= 0:
		net.LocalReplicas = []int{*id}
	case *clientIdx < 0:
		return errors.New("multi-process mode needs -id (replica) or -client (client)")
	default:
		// Fail fast on a client index with no reply address: replicas would
		// silently drop every reply and each Submit would run to timeout.
		if *clientIdx >= len(net.Clients) {
			return fmt.Errorf("client index %d needs an entry in -clients (got %d)",
				*clientIdx, len(net.Clients))
		}
	}

	opts := resilientdb.Options{
		Clusters:           *clusters,
		ReplicasPerCluster: *replicas,
		BatchSize:          *batchSize,
		EmulateWAN:         *wan,
		LocalTimeout:       *localTimeout,
		RemoteTimeout:      *remoteTimeout,
		DataDir:            disk.dir,
		DiskSegmentBytes:   disk.segmentBytes,
		DiskGroupCommit:    disk.groupCommit,
		SnapshotInterval:   disk.snapshotInterval,
		RetainSegments:     disk.retainSegments,
		Clients:            adm.clients,
		MempoolCapacity:    adm.capacity,
		ClientRate:         adm.rate,
		ClientBurst:        adm.burst,
		ReplayWindow:       adm.window,
		Net:                net,
		Adversary:          *adversary,
	}
	if *id >= 0 {
		opts.RPCListen = *rpcListen
	}
	db, err := resilientdb.Open(opts)
	if err != nil {
		return err
	}
	defer db.Close()

	if *id >= 0 {
		return runReplica(out, db, *id, *replicas, *serve)
	}
	return runClient(out, db, *clientIdx, *batches, *batchSize)
}

func splitAddrs(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// applyClusterSpec fills flag values from a cluster spec file, so one
// provisioned JSON file drives every process of a deployment and the
// command line only selects the role (-id or -client). Flags the user set
// explicitly win over the spec — override a single process's knob without
// editing the shared file. The role's own addresses (consensus listen, RPC
// listen) are looked up from the spec's placement for -id / -client.
func applyClusterSpec(fs *flag.FlagSet, path string, listen, rpcListen *string, id, clientIdx int) error {
	spec, err := config.LoadClusterSpec(path)
	if err != nil {
		return err
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	apply := func(name, value string) error {
		if set[name] || value == "" {
			return nil
		}
		return fs.Set(name, value)
	}
	nonZero := func(v string) string { // "" skips a knob the spec leaves default
		if v == "0" || v == "0s" {
			return ""
		}
		return v
	}
	steps := [][2]string{
		{"clusters", fmt.Sprint(spec.Clusters)},
		{"replicas", fmt.Sprint(spec.ReplicasPerCluster)},
		{"batch-size", nonZero(fmt.Sprint(spec.BatchSize))},
		{"local-timeout", nonZero(spec.LocalTimeout.Std().String())},
		{"remote-timeout", nonZero(spec.RemoteTimeout.Std().String())},
		{"peers", strings.Join(spec.ReplicaAddrs(), ",")},
		{"clients", strings.Join(spec.Clients, ",")},
		{"provision-clients", nonZero(fmt.Sprint(spec.ProvisionClients))},
		{"mempool-cap", nonZero(fmt.Sprint(spec.Mempool.Capacity))},
		{"client-rate", nonZero(fmt.Sprint(spec.Mempool.ClientRate))},
		{"client-burst", nonZero(fmt.Sprint(spec.Mempool.ClientBurst))},
		{"replay-window", nonZero(fmt.Sprint(spec.Mempool.ReplayWindow))},
		{"data-dir", spec.Retention.DataDir},
		{"segment-bytes", nonZero(fmt.Sprint(spec.Retention.SegmentBytes))},
		{"group-commit", nonZero(spec.Retention.GroupCommit.Std().String())},
		{"snapshot-interval", nonZero(fmt.Sprint(spec.Retention.SnapshotInterval))},
		{"retain-segments", nonZero(fmt.Sprint(spec.Retention.RetainSegments))},
	}
	for _, s := range steps {
		if err := apply(s[0], s[1]); err != nil {
			return fmt.Errorf("cluster spec %s: %s: %w", path, s[0], err)
		}
	}
	switch {
	case id >= 0:
		if id >= len(spec.Replicas) {
			return fmt.Errorf("cluster spec %s places %d replicas, -id %d is not one of them", path, len(spec.Replicas), id)
		}
		if !set["listen"] {
			*listen = spec.Replicas[id].Listen
		}
		if !set["rpc"] {
			*rpcListen = spec.Replicas[id].RPC
		}
	case clientIdx >= 0:
		if clientIdx >= len(spec.Clients) {
			return fmt.Errorf("cluster spec %s lists %d client addresses, -client %d is not one of them", path, len(spec.Clients), clientIdx)
		}
		if !set["listen"] {
			*listen = spec.Clients[clientIdx]
		}
	}
	return nil
}

// runReplica serves one replica until a signal (or -serve elapses), then
// verifies and reports its ledger.
func runReplica(out io.Writer, db *resilientdb.DB, id, perCluster int, serve time.Duration) error {
	fmt.Fprintf(out, "replica %d: serving on %s\n", id, db.ListenAddr())
	if rpc := db.RPCAddr(); rpc != "" {
		fmt.Fprintf(out, "replica %d: rpc on %s\n", id, rpc)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	if serve > 0 {
		select {
		case <-sig:
		case <-time.After(serve):
		}
	} else {
		<-sig
	}
	db.Close()

	led := db.ReplicaLedger(id/perCluster, id%perCluster)
	if led == nil {
		return fmt.Errorf("replica %d not hosted here", id)
	}
	if err := led.Verify(); err != nil {
		return fmt.Errorf("replica %d: ledger verify: %w", id, err)
	}
	fmt.Fprintf(out, "replica %d: ledger height=%d head=%s verified\n",
		id, led.Height(), led.Head().Short())
	printSnapshotStats(out, db)
	return nil
}

// runClient submits batches to the client's home cluster and reports how
// many committed.
func runClient(out io.Writer, db *resilientdb.DB, idx, batches, batchSize int) error {
	client := db.Client(idx)
	defer client.Close()
	start := time.Now()
	ok := 0
	for i := 0; i < batches; i++ {
		txns := make([]resilientdb.Transaction, batchSize)
		for j := range txns {
			txns[j] = resilientdb.Transaction{
				Key:   uint64(idx)<<32 | uint64(i*batchSize+j),
				Value: uint64(i),
			}
		}
		if err := client.Submit(txns, 30*time.Second); err == nil {
			ok++
		}
	}
	fmt.Fprintf(out, "client %d: committed %d/%d batches in %v\n",
		idx, ok, batches, time.Since(start).Round(time.Millisecond))
	if ok < batches {
		return fmt.Errorf("client %d: only %d/%d batches committed", idx, ok, batches)
	}
	return nil
}

// diskOptions groups the persistence flags threaded into resilientdb.Options.
type diskOptions struct {
	dir              string
	segmentBytes     int64
	groupCommit      time.Duration
	snapshotInterval uint64
	retainSegments   int
}

// admissionOptions groups the client-admission flags (identity provisioning
// and mempool tuning) threaded into resilientdb.Options.
type admissionOptions struct {
	clients  int
	capacity int
	rate     float64
	burst    int
	window   int
}

// runInProcess is the original single-process demo. With adversary set,
// replica (0,0) runs the named attack script from startup and the run must
// still complete: the deployment tolerates f=1 Byzantine replica per
// cluster, and the final line reports how many forged messages were
// rejected.
func runInProcess(out io.Writer, clusters, replicas, batches, batchSize int, crash, wan bool, localTimeout, remoteTimeout time.Duration, disk diskOptions, adm admissionOptions, adversary, rpcListen string) error {
	db, err := resilientdb.Open(resilientdb.Options{
		Clusters:           clusters,
		ReplicasPerCluster: replicas,
		BatchSize:          batchSize,
		EmulateWAN:         wan,
		LocalTimeout:       localTimeout,
		RemoteTimeout:      remoteTimeout,
		DataDir:            disk.dir,
		DiskSegmentBytes:   disk.segmentBytes,
		DiskGroupCommit:    disk.groupCommit,
		SnapshotInterval:   disk.snapshotInterval,
		RetainSegments:     disk.retainSegments,
		Clients:            adm.clients,
		MempoolCapacity:    adm.capacity,
		ClientRate:         adm.rate,
		ClientBurst:        adm.burst,
		ReplayWindow:       adm.window,
		Adversary:          adversary,
		RPCListen:          rpcListen,
	})
	if err != nil {
		return err
	}
	defer db.Close()
	z, n, f := db.Topology()
	fmt.Fprintf(out, "resilientdb: %d×%d replicas (f=%d per cluster), wan=%v\n", z, n, f, wan)
	if adversary != "" {
		fmt.Fprintf(out, "adversary: replica (0,0) runs %q\n", adversary)
	}

	done := make(chan int, clusters)
	for c := 0; c < clusters; c++ {
		c := c
		go func() {
			client := db.Client(c)
			defer client.Close()
			ok := 0
			for i := 0; i < batches; i++ {
				txns := make([]resilientdb.Transaction, batchSize)
				for j := range txns {
					txns[j] = resilientdb.Transaction{Key: uint64(c*1_000_000 + i*batchSize + j), Value: uint64(i)}
				}
				if err := client.Submit(txns, 30*time.Second); err == nil {
					ok++
				}
			}
			done <- ok
		}()
	}

	if crash {
		time.Sleep(300 * time.Millisecond)
		fmt.Fprintln(out, "crashing cluster-0 primary…")
		db.CrashReplica(0, 0)
	}

	start := time.Now()
	total := 0
	for c := 0; c < clusters; c++ {
		total += <-done
	}
	elapsed := time.Since(start)
	fmt.Fprintf(out, "committed %d/%d batches in %v\n", total, clusters*batches, elapsed.Round(time.Millisecond))

	time.Sleep(200 * time.Millisecond)
	db.Close()
	led := db.ReplicaLedger(0, 1)
	if err := led.Verify(); err != nil {
		return err
	}
	fmt.Fprintf(out, "ledger: %d blocks, head %s (verified)\n", led.Height(), led.Head().Short())
	printSnapshotStats(out, db)
	if adversary != "" {
		fmt.Fprintf(out, "adversary: %d forged messages rejected\n", db.Stats().VerifyReject)
	}
	return nil
}

// printSnapshotStats reports checkpoint/GC activity (and any block-store
// detachment) when the deployment produced some; a run without
// -snapshot-interval and without store failures prints nothing.
func printSnapshotStats(out io.Writer, db *resilientdb.DB) {
	snap := db.Stats().Snapshots
	if snap != (resilientdb.SnapshotStats{}) {
		fmt.Fprintf(out, "snapshots: %d written, %d served, %d installed, %d rejected; gc: %d segments (%d bytes) reclaimed, %d bytes on disk\n",
			snap.Written, snap.Served, snap.Installed, snap.Rejected,
			snap.SegmentsReclaimed, snap.BytesReclaimed, snap.DiskBytes)
	}
	if snap.StoreErrs > 0 {
		fmt.Fprintf(out, "warning: %d replica block store(s) detached after persistence failures (running memory-only)\n", snap.StoreErrs)
	}
}
