// Command resilientdb runs an interactive fabric demo: a geo-emulated
// deployment processing a stream of transactions while reporting progress,
// optionally with a mid-run primary crash.
//
// Usage:
//
//	resilientdb [-clusters 2] [-replicas 4] [-batches 50] [-crash] [-wan]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"resilientdb"
)

func main() {
	clusters := flag.Int("clusters", 2, "number of clusters (regions)")
	replicas := flag.Int("replicas", 4, "replicas per cluster")
	batches := flag.Int("batches", 50, "batches to submit per cluster")
	crash := flag.Bool("crash", false, "crash the cluster-0 primary mid-run")
	wan := flag.Bool("wan", false, "emulate Table-1 WAN latencies between clusters")
	flag.Parse()

	db, err := resilientdb.Open(resilientdb.Options{
		Clusters:           *clusters,
		ReplicasPerCluster: *replicas,
		BatchSize:          10,
		EmulateWAN:         *wan,
		LocalTimeout:       500 * time.Millisecond,
		RemoteTimeout:      time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	z, n, f := db.Topology()
	fmt.Printf("resilientdb: %d×%d replicas (f=%d per cluster), wan=%v\n", z, n, f, *wan)

	done := make(chan int, *clusters)
	for c := 0; c < *clusters; c++ {
		c := c
		go func() {
			client := db.Client(c)
			defer client.Close()
			ok := 0
			for i := 0; i < *batches; i++ {
				txns := make([]resilientdb.Transaction, 10)
				for j := range txns {
					txns[j] = resilientdb.Transaction{Key: uint64(c*1_000_000 + i*10 + j), Value: uint64(i)}
				}
				if err := client.Submit(txns, 30*time.Second); err == nil {
					ok++
				}
			}
			done <- ok
		}()
	}

	if *crash {
		time.Sleep(300 * time.Millisecond)
		fmt.Println("crashing cluster-0 primary…")
		db.CrashReplica(0, 0)
	}

	start := time.Now()
	total := 0
	for c := 0; c < *clusters; c++ {
		total += <-done
	}
	elapsed := time.Since(start)
	fmt.Printf("committed %d/%d batches in %v\n", total, *clusters**batches, elapsed.Round(time.Millisecond))

	time.Sleep(200 * time.Millisecond)
	db.Close()
	led := db.ReplicaLedger(0, 1)
	if err := led.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ledger: %d blocks, head %s (verified)\n", led.Height(), led.Head().Short())
}
