package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	"resilientdb"
	"resilientdb/internal/config"
	"resilientdb/internal/rpc"
)

// TestMain doubles as the multi-process entry point: when re-executed with
// RESDB_ROLE=proc the test binary becomes a real replica or client process
// running the command's own run() — so TestMultiProcessCluster exercises
// exactly the code path of `resilientdb -listen ... -id ...`.
func TestMain(m *testing.M) {
	if os.Getenv("RESDB_ROLE") == "proc" {
		if err := run(os.Args[1:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "resilientdb:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// reserveAddrs grabs n distinct loopback ports by listening and releasing
// them just before the processes start.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

type proc struct {
	cmd *exec.Cmd
	out *bytes.Buffer
}

func startProc(t *testing.T, args ...string) *proc {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: exec.Command(exe, args...), out: &bytes.Buffer{}}
	p.cmd.Env = append(os.Environ(), "RESDB_ROLE=proc")
	p.cmd.Stdout = p.out
	p.cmd.Stderr = p.out
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return p
}

// waitProc waits for a process with a deadline; on timeout it kills the
// process and reports failure.
func waitProc(t *testing.T, p *proc, what string, timeout time.Duration) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%s failed: %v\noutput:\n%s", what, err, p.out.String())
		}
	case <-time.After(timeout):
		p.cmd.Process.Kill()
		<-done
		t.Fatalf("%s did not finish within %v\noutput:\n%s", what, timeout, p.out.String())
	}
}

// TestInProcessWithAdversary runs the single-process demo with replica
// (0,0) compromised by the share-forging script: the deployment tolerates
// f=1 Byzantine replica per cluster, so every batch must still commit, the
// honest ledger must verify, and the forged certificates must be counted as
// verify-rejects — the -adversary flag end to end.
func TestInProcessWithAdversary(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time adversarial run")
	}
	var out bytes.Buffer
	err := run([]string{
		"-clusters", "2", "-replicas", "4",
		"-batches", "6", "-batch-size", "4",
		"-adversary", "forge-shares",
		"-local-timeout", "400ms", "-remote-timeout", "700ms",
	}, &out)
	if err != nil {
		t.Fatalf("adversarial run failed: %v\n%s", err, out.String())
	}
	if !regexp.MustCompile(`committed 12/12 batches`).Match(out.Bytes()) {
		t.Fatalf("not all batches committed:\n%s", out.String())
	}
	m := regexp.MustCompile(`adversary: (\d+) forged messages rejected`).FindSubmatch(out.Bytes())
	if m == nil {
		t.Fatalf("missing adversary report:\n%s", out.String())
	}
	if n, _ := strconv.Atoi(string(m[1])); n == 0 {
		t.Fatalf("adversarial run rejected nothing:\n%s", out.String())
	}
}

// TestMultiProcessCluster is the acceptance run: a z=2, n=4 deployment of 8
// separate replica OS processes over TCP on localhost, driven by one client
// process per cluster submitting 50 batches each. Every replica must report
// a verified ledger and all heads must be identical.
func TestMultiProcessCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process run")
	}
	const (
		z, n       = 2, 4
		numBatches = 50
	)
	addrs := reserveAddrs(t, z*n+z)
	replicaAddrs := addrs[:z*n]
	clientAddrs := addrs[z*n:]
	peers := joinAddrs(replicaAddrs)
	clients := joinAddrs(clientAddrs)

	common := []string{
		"-clusters", strconv.Itoa(z),
		"-replicas", strconv.Itoa(n),
		"-peers", peers,
		"-clients", clients,
		"-local-timeout", "2s",
		"-remote-timeout", "3s",
	}

	replicas := make([]*proc, z*n)
	for i := range replicas {
		replicas[i] = startProc(t, append([]string{
			"-listen", replicaAddrs[i], "-id", strconv.Itoa(i),
		}, common...)...)
	}
	defer func() {
		for _, p := range replicas {
			if p.cmd.ProcessState == nil {
				p.cmd.Process.Kill()
				p.cmd.Wait()
			}
		}
	}()

	clientProcs := make([]*proc, z)
	var wg sync.WaitGroup
	for c := range clientProcs {
		clientProcs[c] = startProc(t, append([]string{
			"-listen", clientAddrs[c], "-client", strconv.Itoa(c),
			"-batches", strconv.Itoa(numBatches), "-batch-size", "5",
		}, common...)...)
	}
	for c, p := range clientProcs {
		wg.Add(1)
		go func(c int, p *proc) {
			defer wg.Done()
			waitProc(t, p, fmt.Sprintf("client %d", c), 120*time.Second)
		}(c, p)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	committed := regexp.MustCompile(`committed (\d+)/(\d+) batches`)
	for c, p := range clientProcs {
		m := committed.FindStringSubmatch(p.out.String())
		if m == nil || m[1] != strconv.Itoa(numBatches) {
			t.Fatalf("client %d did not commit %d batches:\n%s", c, numBatches, p.out.String())
		}
	}

	// Let stragglers finish executing the final rounds, then stop every
	// replica and collect its verified ledger head. The window must cover a
	// full remote-timeout recovery cycle: a replica that missed its shares
	// only re-requests them after the 1s remote timeout, and on a slow or
	// race-instrumented host that round trip can take several seconds.
	time.Sleep(5 * time.Second)
	for _, p := range replicas {
		p.cmd.Process.Signal(syscall.SIGTERM)
	}
	heads := make([]string, z*n)
	heights := make([]int, z*n)
	final := regexp.MustCompile(`replica (\d+): ledger height=(\d+) head=([0-9a-f]+) verified`)
	for i, p := range replicas {
		waitProc(t, p, fmt.Sprintf("replica %d", i), 30*time.Second)
		m := final.FindStringSubmatch(p.out.String())
		if m == nil {
			t.Fatalf("replica %d printed no verified ledger line:\n%s", i, p.out.String())
		}
		heights[i], _ = strconv.Atoi(m[2])
		heads[i] = m[3]
	}
	for i := 1; i < len(heads); i++ {
		if heads[i] != heads[0] || heights[i] != heights[0] {
			t.Errorf("replica %d ledger (height=%d head=%s) differs from replica 0 (height=%d head=%s)",
				i, heights[i], heads[i], heights[0], heads[0])
		}
	}
	// Two clients × 50 batches: with one consensus decision per submitted
	// batch, every ledger must hold at least 50 blocks per cluster.
	if heights[0] < z*numBatches {
		t.Errorf("ledger height %d < %d expected committed batches", heights[0], z*numBatches)
	}
}

// TestPrimaryKillAndRejoin is the end-to-end failure-model run over real
// TCP: a 4-replica cluster of separate OS processes — each persisting its
// ledger to its own -data-dir — loses its primary to SIGKILL mid-load
// (possibly mid-write: the store must truncate the torn tail), the client's
// commits must resume through the local view change, and the killed process
// is then relaunched with identical flags and must rejoin from its data
// directory alone: no in-memory handoff exists across processes, so it
// re-verifies the on-disk prefix and pulls only the missed suffix from peers
// (ledger catch-up) — every replica, the reborn one included, reports the
// same verified ledger. A final solo relaunch with every peer down proves
// the chain really lives in the files: the replica must report the full
// converged height with nobody left to copy it from.
func TestPrimaryKillAndRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process run")
	}
	const n = 4
	addrs := reserveAddrs(t, n+2)
	replicaAddrs := addrs[:n]
	clientAddrs := addrs[n:]
	dataRoot := t.TempDir()
	dataDir := func(i int) string { return filepath.Join(dataRoot, fmt.Sprintf("r%d", i)) }

	common := []string{
		"-clusters", "1",
		"-replicas", strconv.Itoa(n),
		"-peers", joinAddrs(replicaAddrs),
		"-clients", joinAddrs(clientAddrs),
		"-local-timeout", "1s",
		"-remote-timeout", "1s",
	}
	replicas := make([]*proc, n)
	for i := range replicas {
		replicas[i] = startProc(t, append([]string{
			"-listen", replicaAddrs[i], "-id", strconv.Itoa(i), "-data-dir", dataDir(i),
		}, common...)...)
	}
	defer func() {
		for _, p := range replicas {
			if p.cmd.ProcessState == nil {
				p.cmd.Process.Kill()
				p.cmd.Wait()
			}
		}
	}()

	// Load the cluster, then kill the primary mid-run. Commits can only
	// resume after the remaining replicas complete a view change, so the
	// client finishing all its batches IS the liveness assertion.
	client0 := startProc(t, append([]string{
		"-listen", clientAddrs[0], "-client", "0", "-batches", "40", "-batch-size", "5",
	}, common...)...)
	time.Sleep(800 * time.Millisecond)
	replicas[0].cmd.Process.Kill()
	replicas[0].cmd.Wait()
	waitProc(t, client0, "client 0 (across primary kill)", 180*time.Second)

	// Rejoin: same binary, same flags, fresh process. All it has is its
	// data directory — the SIGKILLed process took its memory with it — so
	// it must recover the persisted prefix (torn tail truncated, every
	// certificate re-verified) and close the remaining gap via catch-up
	// while fresh traffic from a second client provides the evidence that
	// it is behind.
	replicas[0] = startProc(t, append([]string{
		"-listen", replicaAddrs[0], "-id", "0", "-data-dir", dataDir(0),
	}, common...)...)
	client1 := startProc(t, append([]string{
		"-listen", clientAddrs[1], "-client", "1", "-batches", "8", "-batch-size", "5",
	}, common...)...)
	waitProc(t, client1, "client 1 (during rejoin)", 120*time.Second)
	time.Sleep(5 * time.Second) // let the reborn replica drain its catch-up

	for _, p := range replicas {
		p.cmd.Process.Signal(syscall.SIGTERM)
	}
	final := regexp.MustCompile(`replica (\d+): ledger height=(\d+) head=([0-9a-f]+) verified`)
	heights := make([]int, n)
	heads := make([]string, n)
	for i, p := range replicas {
		waitProc(t, p, fmt.Sprintf("replica %d", i), 30*time.Second)
		m := final.FindStringSubmatch(p.out.String())
		if m == nil {
			t.Fatalf("replica %d printed no verified ledger line:\n%s", i, p.out.String())
		}
		heights[i], _ = strconv.Atoi(m[2])
		heads[i] = m[3]
	}
	for i := 1; i < n; i++ {
		if heads[i] != heads[0] || heights[i] != heights[0] {
			t.Errorf("replica %d ledger (height=%d head=%s) differs from replica 0 (height=%d head=%s)",
				i, heights[i], heads[i], heights[0], heads[0])
		}
	}
	// 48 client batches committed; every one is its own consensus round.
	if heights[0] < 48 {
		t.Errorf("ledger height %d < 48 committed batches", heights[0])
	}

	// Durability proof: relaunch replica 0 alone, every peer down. It has
	// no one to catch up from, so the full converged chain it reports can
	// only have come from its data directory — recovered, re-verified, and
	// byte-for-byte the same head the cluster agreed on.
	solo := startProc(t, append([]string{
		"-listen", replicaAddrs[0], "-id", "0", "-data-dir", dataDir(0), "-serve", "3s",
	}, common...)...)
	waitProc(t, solo, "replica 0 (solo restart from disk)", 60*time.Second)
	m := final.FindStringSubmatch(solo.out.String())
	if m == nil {
		t.Fatalf("solo replica printed no verified ledger line:\n%s", solo.out.String())
	}
	if soloHeight, _ := strconv.Atoi(m[2]); soloHeight != heights[0] || m[3] != heads[0] {
		t.Errorf("solo restart from disk reports height=%s head=%s, cluster agreed on height=%d head=%s",
			m[2], m[3], heights[0], heads[0])
	}
}

// TestConfigFileClusterRPC is the config-driven acceptance run: a 4-replica
// cluster of separate OS processes started from one JSON spec file — no
// address flags, each process told only its -id — serving a real client over
// the RPC front door. The test submits a signed batch over HTTP, polls it to
// execution, and performs a proof-carrying read whose attestation (replica
// signature + head-block commit certificate) must verify against nothing but
// the deployment's public key material. Finally every replica must report
// the same verified ledger, proving the spec alone wired a working cluster.
func TestConfigFileClusterRPC(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process run")
	}
	const n = 4
	addrs := reserveAddrs(t, n+1)
	rpcAddr := addrs[n]

	spec := map[string]any{
		"clusters":             1,
		"replicas_per_cluster": n,
		"batch_size":           5,
		"local_timeout":        "1s",
		"remote_timeout":       "1s",
		"replicas": []map[string]string{
			{"listen": addrs[0], "rpc": rpcAddr},
			{"listen": addrs[1]},
			{"listen": addrs[2]},
			{"listen": addrs[3]},
		},
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(t.TempDir(), "cluster.json")
	if err := os.WriteFile(cfgPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	replicas := make([]*proc, n)
	for i := range replicas {
		replicas[i] = startProc(t, "-config", cfgPath, "-id", strconv.Itoa(i))
	}
	defer func() {
		for _, p := range replicas {
			if p.cmd.ProcessState == nil {
				p.cmd.Process.Kill()
				p.cmd.Wait()
			}
		}
	}()

	// The cluster is up when the primary's RPC front door answers.
	topo := config.NewTopology(1, n)
	cl := rpc.NewClient("http://"+rpcAddr, 0, topo)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := cl.Status(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("RPC front door never came up")
		}
		time.Sleep(100 * time.Millisecond)
	}

	seq, res, err := cl.Submit([]resilientdb.Transaction{{Key: 11, Value: 42}, {Key: 12, Value: 43}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != "admitted" {
		t.Fatalf("submit verdict %q, want admitted", res.Verdict)
	}
	if _, err := cl.WaitExecuted(seq, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	rs, err := cl.Read(11)
	if err != nil {
		t.Fatalf("proof-carrying read: %v", err)
	}
	if !rs.Found || rs.Value != 42 {
		t.Errorf("read (found=%v, value=%d), want (true, 42)", rs.Found, rs.Value)
	}
	if cl.ProofRejects() != 0 {
		t.Errorf("verified read counted as proof reject")
	}

	time.Sleep(2 * time.Second) // let the backups execute the round
	for _, p := range replicas {
		p.cmd.Process.Signal(syscall.SIGTERM)
	}
	final := regexp.MustCompile(`replica (\d+): ledger height=(\d+) head=([0-9a-f]+) verified`)
	heads := make([]string, n)
	for i, p := range replicas {
		waitProc(t, p, fmt.Sprintf("replica %d", i), 30*time.Second)
		m := final.FindStringSubmatch(p.out.String())
		if m == nil {
			t.Fatalf("replica %d printed no verified ledger line:\n%s", i, p.out.String())
		}
		heads[i] = m[3]
	}
	for i := 1; i < n; i++ {
		if heads[i] != heads[0] {
			t.Errorf("replica %d head %s differs from replica 0's %s", i, heads[i], heads[0])
		}
	}
}

func joinAddrs(addrs []string) string {
	out := ""
	for i, a := range addrs {
		if i > 0 {
			out += ","
		}
		out += a
	}
	return out
}
