module resilientdb

go 1.22
