// Benchmarks regenerating every table and figure of the ResilientDB paper's
// evaluation (Section 4). Each benchmark drives the calibrated WAN
// simulator through internal/bench and prints the same rows the paper
// reports; run them all with
//
//	go test -bench=. -benchmem
//
// The numbers are also reproducible via cmd/resbench, and the measured
// shapes are discussed against the paper in EXPERIMENTS.md.
package resilientdb

import (
	"os"
	"sync"
	"testing"

	"resilientdb/internal/bench"
)

var printOnce sync.Map

// once ensures each experiment's rows print a single time even when the
// benchmark harness re-runs the function to stabilize timing.
func once(name string, fn func()) {
	if _, dup := printOnce.LoadOrStore(name, true); !dup {
		fn()
	}
}

func BenchmarkTable1NetworkCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table1()
		once("table1", func() { bench.PrintTable1(os.Stdout, rows) })
	}
}

func BenchmarkTable2MessageComplexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table2()
		once("table2", func() { bench.PrintTable2(os.Stdout, rows) })
	}
}

func BenchmarkFigure10Clusters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Figure10(bench.AllProtocols, 42)
		once("fig10", func() {
			bench.PrintFigure(os.Stdout,
				"Figure 10: throughput/latency vs clusters (zn=60, batch=100)", "clusters", rows)
		})
		reportPeak(b, rows)
	}
}

func BenchmarkFigure11ReplicasPerCluster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Figure11(bench.AllProtocols, 42)
		once("fig11", func() {
			bench.PrintFigure(os.Stdout,
				"Figure 11: throughput/latency vs replicas per cluster (z=4)", "n", rows)
		})
		reportPeak(b, rows)
	}
}

func BenchmarkFigure12SingleFailure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Figure12Single(bench.AllProtocols, 42)
		once("fig12a", func() {
			bench.PrintFigure(os.Stdout,
				"Figure 12 (left): one non-primary failure (z=4)", "n", rows)
		})
		reportPeak(b, rows)
	}
}

func BenchmarkFigure12FFailures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Figure12F(bench.AllProtocols, 42)
		once("fig12b", func() {
			bench.PrintFigure(os.Stdout,
				"Figure 12 (middle): f non-primary failures per cluster (z=4)", "n", rows)
		})
		reportPeak(b, rows)
	}
}

func BenchmarkFigure12PrimaryFailure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Figure12Primary(42)
		once("fig12c", func() {
			bench.PrintFigure(os.Stdout,
				"Figure 12 (right): single primary failure (z=4, GeoBFT vs PBFT)", "n", rows)
		})
		reportPeak(b, rows)
	}
}

func BenchmarkFigure13BatchSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Figure13(bench.AllProtocols, 42)
		once("fig13", func() {
			bench.PrintFigure(os.Stdout,
				"Figure 13: throughput vs batch size (z=4, n=7)", "batch", rows)
		})
		reportPeak(b, rows)
	}
}

// Ablations (DESIGN.md Section 4.4): design choices the paper calls out.

// BenchmarkAblationFanout compares GeoBFT's f+1 inter-cluster fanout with a
// naive send-to-everyone variant: same decisions, strictly more global
// traffic.
func BenchmarkAblationFanout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := bench.Run(bench.Scenario{Protocol: bench.GeoBFT, Clusters: 4, PerCluster: 7})
		all := bench.Run(bench.Scenario{Protocol: bench.GeoBFT, Clusters: 4, PerCluster: 7, Fanout: 7})
		once("ablation-fanout", func() {
			b.Logf("fanout f+1: %.0f txn/s, %d global msgs; fanout n: %.0f txn/s, %d global msgs",
				opt.Throughput, opt.Messages.GlobalMsgs, all.Throughput, all.Messages.GlobalMsgs)
		})
		b.ReportMetric(opt.Throughput, "txn/s-fanout-f+1")
		b.ReportMetric(all.Throughput, "txn/s-fanout-n")
	}
}

// BenchmarkAblationPipeline compares pipelined GeoBFT (Section 2.5) with a
// strict one-round-at-a-time variant.
func BenchmarkAblationPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on := bench.Run(bench.Scenario{Protocol: bench.GeoBFT, Clusters: 4, PerCluster: 7})
		off := bench.Run(bench.Scenario{Protocol: bench.GeoBFT, Clusters: 4, PerCluster: 7, DisablePipeline: true})
		once("ablation-pipeline", func() {
			b.Logf("pipelined: %.0f txn/s; unpipelined: %.0f txn/s", on.Throughput, off.Throughput)
		})
		b.ReportMetric(on.Throughput, "txn/s-pipelined")
		b.ReportMetric(off.Throughput, "txn/s-unpipelined")
	}
}

// reportPeak surfaces GeoBFT's best data point as a benchmark metric.
func reportPeak(b *testing.B, rows []bench.FigureRow) {
	peak := 0.0
	for _, r := range rows {
		if r.Protocol == bench.GeoBFT && r.Throughput > peak {
			peak = r.Throughput
		}
	}
	b.ReportMetric(peak, "geobft-peak-txn/s")
}
