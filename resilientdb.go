// Package resilientdb is a from-scratch Go reproduction of ResilientDB, the
// geo-scale resilient blockchain fabric of Gupta, Rahnama, Hellings and
// Sadoghi (PVLDB 13(6), 2020), built around the GeoBFT consensus protocol.
//
// Two entry points are provided:
//
//   - Open starts a real-time fabric: clusters of replicas running the
//     paper's multi-threaded pipelined architecture (Figure 9) on
//     goroutines, connected by an in-process transport. Clients submit
//     transaction batches and wait for f+1 matching confirmations from
//     their local cluster; every replica maintains the append-only ledger.
//
//   - Simulate runs an experiment on the deterministic discrete-event WAN
//     simulator calibrated against the paper's Table 1 measurements. All
//     of the paper's tables and figures are regenerated this way (package
//     internal/bench, cmd/resbench, and the benchmarks in bench_test.go).
package resilientdb

import (
	"fmt"
	"time"

	"resilientdb/internal/bench"
	"resilientdb/internal/byzantine"
	"resilientdb/internal/config"
	"resilientdb/internal/core"
	"resilientdb/internal/crypto"
	"resilientdb/internal/fabric"
	"resilientdb/internal/ledger"
	"resilientdb/internal/mempool"
	"resilientdb/internal/metrics"
	"resilientdb/internal/rpc"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
)

// Transaction is a YCSB-style write against the replicated table.
type Transaction = types.Transaction

// Block is one entry of a replica's ledger.
type Block = ledger.Block

// Ledger is a replica's append-only blockchain.
type Ledger = ledger.Ledger

// SnapshotStats counts checkpoint-snapshot and ledger-GC activity across the
// deployment's hosted replicas (the Snapshots field of Stats).
type SnapshotStats = metrics.SnapshotStats

// Options configures a fabric deployment.
type Options struct {
	// Clusters is the number of regions (z ≥ 1).
	Clusters int
	// ReplicasPerCluster is n per region (n ≥ 4; tolerates f = ⌊(n−1)/3⌋
	// Byzantine replicas per cluster).
	ReplicasPerCluster int
	// BatchSize groups client transactions per consensus decision
	// (default 100, as in the paper).
	BatchSize int
	// Records preloads the key-value table (default 1024 rows).
	Records int
	// EmulateWAN injects the paper's Table 1 inter-region latencies between
	// clusters (the deployment still runs in-process).
	EmulateWAN bool
	// LocalTimeout tunes local view-change failure detection (default 2 s;
	// lower it in tests that inject crashes).
	LocalTimeout time.Duration
	// RemoteTimeout is the base failure-detection timeout for remote
	// clusters (default 3 s; it backs off exponentially on repeat).
	RemoteTimeout time.Duration
	// VerifyWorkers sizes each replica's parallel verification pool (all
	// cryptographic checks run there, off the consensus thread). 0
	// auto-sizes: GOMAXPROCS divided across the replicas this process
	// hosts, capped at 8 per replica, falling back to serial inline
	// verification when a replica's share comes to less than 2 cores (a
	// single-CPU host, or an in-process deployment hosting more replicas
	// than cores). Negative disables the pool explicitly, and a positive
	// value forces that pool size; both serial modes verify inline on the
	// worker.
	VerifyWorkers int
	// DataDir, when non-empty, makes every replica hosted by this process
	// durable: each persists its certified blocks to a segmented
	// append-only block store under DataDir/node-<id> as they commit, and
	// a restarted process recovers the chain from those files alone —
	// torn tails from a crash mid-write are truncated, every commit
	// certificate is re-verified, and peers supply only the genuinely
	// missing suffix. Empty (the default) keeps ledgers in memory only.
	DataDir string
	// DiskSegmentBytes caps one block-store segment file (0: 4 MiB).
	// Ignored without DataDir.
	DiskSegmentBytes int64
	// DiskGroupCommit batches block-store fsyncs at this interval instead
	// of syncing every committed block; it trades up to one interval of
	// blocks on machine (not process) crash for append throughput. 0
	// fsyncs every commit. Ignored without DataDir.
	DiskGroupCommit time.Duration
	// SnapshotInterval, when non-zero, bounds each replica's history: every
	// N rounds the replica captures a content-addressed snapshot of its
	// executed key-value state, publishes it once the round is covered by a
	// stable checkpoint, and garbage-collects block-store segments wholly
	// below it. Fresh or far-behind replicas then bootstrap from a verified
	// peer snapshot plus the block suffix instead of replaying the whole
	// chain. 0 (the default) disables snapshots and keeps history
	// unbounded.
	SnapshotInterval uint64
	// RetainSegments is how many full block-store segments each replica
	// keeps below its last durable checkpoint when snapshot GC runs (0: 2).
	// More segments mean slightly-lagging peers catch up via blocks instead
	// of state transfer at the cost of disk. Ignored without DataDir and
	// SnapshotInterval.
	RetainSegments int
	// Clients is how many client identities the deployment provisions
	// signing keys for (DB.Client indices 0..Clients-1). 0 selects 64.
	// Every process of a multi-process deployment must agree on it: the
	// key directory is derived from it, and replicas reject requests from
	// unprovisioned identities.
	Clients int
	// MempoolCapacity caps each replica's pool of admitted-but-unexecuted
	// client requests; beyond it the oldest pending request is evicted
	// (clients simply retry — admission is idempotent). 0 selects 4096.
	MempoolCapacity int
	// ClientRate limits how many *new* requests per second one client
	// identity may get admitted (duplicates and replays are answered for
	// free). 0 selects 512/s; negative disables rate limiting.
	ClientRate float64
	// ClientBurst is the rate limiter's burst allowance (0: 512).
	ClientBurst int
	// ReplayWindow is how many executed requests per client each replica
	// remembers to answer retries from the certified ledger instead of
	// re-executing (0: 32).
	ReplayWindow int
	// Net, if non-nil, runs this process as one member of a multi-process
	// TCP deployment instead of a self-contained in-process fabric. The
	// TCP transport always runs with MAC-authenticated framing: every
	// frame's claimed sender is verified against the pairwise key it
	// implies, so a connected socket cannot impersonate another replica.
	Net *NetOptions
	// RPCListen, when non-empty, serves the HTTP/JSON client front door
	// (internal/rpc) for this process's first hosted replica on that
	// address ("host:port"; ":0" picks a port readable via DB.RPCAddr):
	// signed submits through the mempool admission path, status and
	// certificate-carrying block reads, and proof-carrying key reads.
	RPCListen string
	// Adversary, when non-empty, compromises one hosted replica with the
	// named scripted attack from the byzantine harness (internal/byzantine;
	// see byzantine.ScriptByName for the names: "equivocate",
	// "forge-shares", "vc-spam", "tamper-catchup", "tamper-snapshots",
	// "suppress"). In-process
	// deployments compromise replica (0,0); multi-process deployments
	// compromise the first locally hosted replica. The script is armed from
	// startup. The deployment must tolerate it — f ≥ 1 per cluster — and
	// with exactly one adversary it always does: commits continue, honest
	// ledgers agree, and forged traffic lands in Stats as verify-rejects.
	Adversary string
}

// NetOptions describes one process's place in a multi-process deployment:
// every process runs the same topology with the same address book but hosts
// only its own replicas (and clients). Messages travel as length-prefixed
// wire-codec frames over TCP (see internal/transport).
type NetOptions struct {
	// Listen is this process's TCP listen address ("host:port"; ":0" picks
	// an ephemeral port readable via DB.ListenAddr).
	Listen string
	// Replicas is the address book for the z×n replicas: Replicas[i] is the
	// listen address of the process hosting global replica i (cluster*n +
	// local index). Must have exactly z×n entries.
	Replicas []string
	// Clients maps client index to the listen address of the process
	// hosting that client, so replicas can route replies. A process that
	// calls DB.Client(i) must list its own address at Clients[i].
	Clients []string
	// LocalReplicas are the global replica indices hosted by this process.
	// Empty means this process hosts no replicas (a pure client process).
	LocalReplicas []int
}

// DB is a running ResilientDB deployment (or, with Options.Net, one
// process's slice of one).
type DB struct {
	fab  *fabric.Fabric
	topo config.Topology
	tcp  *transport.TCP
	rpc  *rpc.Server
}

// Open starts a fabric deployment and returns a handle to it.
func Open(o Options) (*DB, error) {
	if o.Clusters < 1 {
		return nil, fmt.Errorf("resilientdb: need at least 1 cluster, got %d", o.Clusters)
	}
	if o.Clusters > int(config.NumRegions) {
		return nil, fmt.Errorf("resilientdb: at most %d clusters (regions), got %d", config.NumRegions, o.Clusters)
	}
	if o.ReplicasPerCluster < 4 {
		return nil, fmt.Errorf("resilientdb: need n ≥ 4 replicas per cluster, got %d", o.ReplicasPerCluster)
	}
	topo := config.NewTopology(o.Clusters, o.ReplicasPerCluster)
	cfg := fabric.Config{
		Topo:             topo,
		BatchSize:        o.BatchSize,
		Records:          o.Records,
		LocalTimeout:     o.LocalTimeout,
		RemoteTimeout:    o.RemoteTimeout,
		VerifyWorkers:    o.VerifyWorkers,
		DataDir:          o.DataDir,
		DiskSegmentBytes: o.DiskSegmentBytes,
		DiskGroupCommit:  o.DiskGroupCommit,
		SnapshotInterval: o.SnapshotInterval,
		RetainSegments:   o.RetainSegments,
		Clients:          o.Clients,
		Mempool: mempool.Config{
			Capacity:       o.MempoolCapacity,
			PerClientRate:  o.ClientRate,
			PerClientBurst: o.ClientBurst,
			ReplayWindow:   o.ReplayWindow,
		},
	}
	var latency func(from, to types.NodeID) time.Duration
	if o.EmulateWAN {
		prof := config.GoogleCloudProfile(o.Clusters)
		latency = func(from, to types.NodeID) time.Duration {
			ra, rb := regionOf(topo, from, o.Clusters), regionOf(topo, to, o.Clusters)
			return prof.OneWay(ra, rb)
		}
	}
	db := &DB{topo: topo}
	if o.Net != nil {
		if len(o.Net.Replicas) != topo.TotalReplicas() {
			return nil, fmt.Errorf("resilientdb: address book has %d replica addresses, topology needs %d",
				len(o.Net.Replicas), topo.TotalReplicas())
		}
		net := *o.Net
		book := func(id types.NodeID) string {
			if id.IsClient() {
				if i := int(id - types.ClientIDBase); i < len(net.Clients) {
					return net.Clients[i]
				}
				return ""
			}
			if i := int(id); i >= 0 && i < len(net.Replicas) {
				return net.Replicas[i]
			}
			return ""
		}
		tcp, err := transport.NewTCP(net.Listen, book)
		if err != nil {
			return nil, err
		}
		// Authenticated framing is not optional on the real wire: without it
		// any connected socket could claim any replica's identity in the
		// frame header (the spoofable-`from` hole). Keys are pairwise,
		// derived from the same deterministic provisioning as the signing
		// keys, so every process of the deployment agrees.
		tcp.Auth = crypto.NewFrameMAC(cfg.Mode)
		tcp.Latency = latency
		cfg.Transport = tcp
		cfg.Local = []types.NodeID{} // default: pure client process
		for _, i := range net.LocalReplicas {
			if i < 0 || i >= topo.TotalReplicas() {
				tcp.Close()
				return nil, fmt.Errorf("resilientdb: local replica index %d out of range [0,%d)", i, topo.TotalReplicas())
			}
			cfg.Local = append(cfg.Local, types.NodeID(i))
		}
		db.tcp = tcp
	} else {
		cfg.Latency = latency
	}
	if o.Adversary != "" {
		if err := attachAdversary(&cfg, o); err != nil {
			if db.tcp != nil {
				db.tcp.Close()
			}
			return nil, err
		}
	}
	fab, err := fabric.Open(cfg)
	if err != nil {
		if db.tcp != nil {
			db.tcp.Close()
		}
		return nil, err
	}
	db.fab = fab
	if o.RPCListen != "" {
		target := topo.ReplicaID(0, 0)
		if o.Net != nil {
			if len(cfg.Local) == 0 {
				fab.Stop()
				return nil, fmt.Errorf("resilientdb: RPCListen needs a hosted replica (client processes cannot serve RPC)")
			}
			target = cfg.Local[0]
		}
		srv := rpc.NewServer(fab.Node(target), topo)
		if _, err := srv.Start(o.RPCListen); err != nil {
			fab.Stop()
			return nil, err
		}
		db.rpc = srv
	}
	return db, nil
}

// attachAdversary compromises one hosted replica with the named byzantine
// script (Options.Adversary), wrapping the deployment's transport in the
// fleet's interception tap. The script is armed immediately.
func attachAdversary(cfg *fabric.Config, o Options) error {
	target := cfg.Topo.ReplicaID(0, 0)
	if o.Net != nil {
		if len(cfg.Local) == 0 {
			return fmt.Errorf("resilientdb: -adversary needs a hosted replica (client processes cannot run one)")
		}
		target = cfg.Local[0]
	}
	script, err := byzantine.ScriptByName(o.Adversary, cfg.Topo, target)
	if err != nil {
		return err
	}
	fleet := byzantine.NewFleet(1)
	fleet.Adversary(cfg.Topo, cfg.Mode, target, script).Arm()
	inner := cfg.Transport
	if inner == nil {
		// The fabric would build its own Mem transport; build it here instead
		// so the tap can wrap it (carrying over any injected latency).
		mem := transport.NewMem()
		mem.Latency = cfg.Latency
		cfg.Latency = nil
		inner = mem
	}
	cfg.Transport = transport.NewTap(inner, fleet.Intercept)
	return nil
}

// ListenAddr returns this process's bound TCP address in a multi-process
// deployment ("" for in-process deployments). Useful with Net.Listen ":0".
func (db *DB) ListenAddr() string {
	if db.tcp != nil {
		return db.tcp.Addr()
	}
	return ""
}

func regionOf(topo config.Topology, id types.NodeID, z int) int {
	if id.IsClient() {
		return int(id-types.ClientIDBase) % z
	}
	return int(topo.ClusterOf(id))
}

// Client opens client number i, homed in cluster i mod z.
func (db *DB) Client(i int) *Client {
	return &Client{inner: db.fab.NewClient(i)}
}

// ReplicaLedger returns the ledger of one replica, or nil if that replica
// is not hosted by this process. Read it after Close, or accept racing the
// replica's executor.
func (db *DB) ReplicaLedger(cluster, replica int) *Ledger {
	if r := db.fab.Replica(db.topo.ReplicaID(cluster, replica)); r != nil {
		return r.Ledger()
	}
	return nil
}

// Replica exposes a replica's consensus state machine (tests, tooling), or
// nil if that replica is not hosted by this process.
func (db *DB) Replica(cluster, replica int) *core.Replica {
	return db.fab.Replica(db.topo.ReplicaID(cluster, replica))
}

// CrashReplica fault-injects a crash of one replica.
func (db *DB) CrashReplica(cluster, replica int) {
	db.fab.Crash(db.topo.ReplicaID(cluster, replica))
}

// StopReplica halts one replica, like CrashReplica (machine crash: pipeline
// halts, traffic to it is dropped).
func (db *DB) StopReplica(cluster, replica int) {
	db.fab.StopNode(db.topo.ReplicaID(cluster, replica))
}

// StartReplica restarts a stopped replica. With keepLedger it bootstraps
// from the crashed replica's retained ledger (re-verified block by block);
// without it the replica restarts with amnesia. Either way it converges to
// the cluster's live height through ledger catch-up.
func (db *DB) StartReplica(cluster, replica int, keepLedger bool) error {
	return db.fab.StartNode(db.topo.ReplicaID(cluster, replica), keepLedger)
}

// Topology reports (z, n, f).
func (db *DB) Topology() (clusters, perCluster, f int) {
	return db.topo.Clusters, db.topo.PerCluster, db.topo.F()
}

// Stats returns a snapshot of the deployment's message-loss counters (full
// queues, codec failures, verify-stage rejections). Safe to call while the
// deployment is running.
func (db *DB) Stats() metrics.DropStats { return db.fab.Stats() }

// RPCAddr returns the bound address of this process's RPC front door, or ""
// when Options.RPCListen was not set. Useful with RPCListen ":0".
func (db *DB) RPCAddr() string {
	if db.rpc != nil {
		return db.rpc.Addr()
	}
	return ""
}

// Close shuts the deployment down.
func (db *DB) Close() {
	if db.rpc != nil {
		db.rpc.Close()
	}
	db.fab.Stop()
}

// Client submits transaction batches to its local cluster.
type Client struct {
	inner *fabric.Client
}

// Submit sends one batch and blocks until f+1 local replicas confirm
// execution, or timeout.
func (c *Client) Submit(txns []Transaction, timeout time.Duration) error {
	return c.inner.Submit(txns, timeout)
}

// Close stops the client.
func (c *Client) Close() { c.inner.Close() }

// Protocol names a consensus protocol available to Simulate.
type Protocol = bench.Protocol

// The protocols of the paper's evaluation.
const (
	GeoBFT   = bench.GeoBFT
	PBFT     = bench.PBFT
	Zyzzyva  = bench.Zyzzyva
	HotStuff = bench.HotStuff
	Steward  = bench.Steward
)

// Experiment configures a simulation run; see bench.Scenario for all knobs.
type Experiment = bench.Scenario

// Measurement is a simulation outcome.
type Measurement = bench.Result

// Simulate runs one experiment on the calibrated WAN simulator and returns
// its measurements. Runs are deterministic for a fixed seed.
func Simulate(e Experiment) Measurement { return bench.Run(e) }
