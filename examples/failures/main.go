// Failures: crash the primary of one cluster mid-run and watch GeoBFT's
// remote view-change protocol (paper Figure 7) restore progress — the other
// cluster detects the missing certificates, proves the failure with signed
// Rvc messages, and forces the crashed primary's cluster to elect a new one.
package main

import (
	"fmt"
	"log"
	"time"

	"resilientdb"
)

func main() {
	db, err := resilientdb.Open(resilientdb.Options{
		Clusters:           2,
		ReplicasPerCluster: 4,
		BatchSize:          4,
		LocalTimeout:       400 * time.Millisecond,
		RemoteTimeout:      600 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	client := db.Client(0) // homed in cluster 0
	defer client.Close()

	submit := func(tag string, from, count int) {
		ok := 0
		for i := 0; i < count; i++ {
			txns := []resilientdb.Transaction{{Key: uint64(from + i), Value: uint64(i)}}
			if err := client.Submit(txns, 20*time.Second); err != nil {
				fmt.Printf("  %s batch %d: %v\n", tag, i, err)
				continue
			}
			ok++
		}
		fmt.Printf("%s: %d/%d batches committed\n", tag, ok, count)
	}

	fmt.Println("phase 1: normal operation")
	submit("pre-crash", 0, 5)

	fmt.Println("\nphase 2: crashing the primary of cluster 0 (replica r0)")
	db.CrashReplica(0, 0)

	// The client keeps submitting; its retries broadcast to the whole local
	// cluster, the backups detect the silence, and cluster 1's remote
	// view-change pressure guarantees a new primary even if cluster 0's own
	// timers were somehow suppressed.
	start := time.Now()
	submit("post-crash", 100, 5)
	fmt.Printf("recovered and committed under a new primary in %v\n",
		time.Since(start).Round(time.Millisecond))

	view := db.Replica(0, 1).Local().View()
	fmt.Printf("cluster 0 survivors are now in view %d (primary %v)\n",
		view, db.Replica(0, 1).Local().Primary())

	time.Sleep(200 * time.Millisecond)
	db.Close()
	ref := db.ReplicaLedger(0, 1)
	if err := ref.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ledger verified: %d blocks despite the crash\n", ref.Height())
}
