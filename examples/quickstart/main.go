// Quickstart: start a two-cluster ResilientDB fabric in-process, submit a
// few transaction batches through a client, and inspect the resulting
// blockchain.
package main

import (
	"fmt"
	"log"
	"time"

	"resilientdb"
)

func main() {
	db, err := resilientdb.Open(resilientdb.Options{
		Clusters:           2,
		ReplicasPerCluster: 4,
		BatchSize:          10,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	z, n, f := db.Topology()
	fmt.Printf("fabric up: %d clusters × %d replicas (tolerating f=%d per cluster)\n", z, n, f)

	client := db.Client(0)
	defer client.Close()

	for batch := 0; batch < 5; batch++ {
		txns := make([]resilientdb.Transaction, 10)
		for i := range txns {
			txns[i] = resilientdb.Transaction{
				Key:   uint64(batch*10 + i),
				Value: uint64(1000 + batch),
			}
		}
		if err := client.Submit(txns, 10*time.Second); err != nil {
			log.Fatalf("batch %d: %v", batch, err)
		}
		fmt.Printf("batch %d committed (f+1 local confirmations)\n", batch)
	}

	// Give stragglers a moment, then stop and audit the chain.
	time.Sleep(200 * time.Millisecond)
	db.Close()

	led := db.ReplicaLedger(0, 1)
	if err := led.Verify(); err != nil {
		log.Fatalf("ledger verification failed: %v", err)
	}
	fmt.Printf("\nledger of replica (0,1): %d blocks, head %s — hash chain verified\n",
		led.Height(), led.Head().Short())
	for h := uint64(1); h <= led.Height() && h <= 6; h++ {
		b := led.Block(h)
		kind := fmt.Sprintf("%d txns", b.Batch.Len())
		if b.Batch.NoOp {
			kind = "no-op"
		}
		fmt.Printf("  block %2d  round %2d  cluster %d  %s\n", b.Height, b.Round, b.Cluster, kind)
	}

	// Non-divergence: all replicas across both clusters hold the same chain.
	ref := db.ReplicaLedger(0, 0)
	agree := 0
	for c := 0; c < z; c++ {
		for i := 0; i < n; i++ {
			if db.ReplicaLedger(c, i).Head() == ref.Head() {
				agree++
			}
		}
	}
	fmt.Printf("%d/%d replicas agree on the ledger head\n", agree, z*n)
}
