// Georeplication: reproduce the heart of the paper's Figure 10 — GeoBFT's
// throughput grows as regions are added while the centralized PBFT baseline
// stays flat — using the deterministic WAN simulator calibrated against the
// paper's Table 1 measurements.
package main

import (
	"fmt"
	"time"

	"resilientdb"
)

func main() {
	fmt.Println("GeoBFT vs PBFT as regions are added (zn = 24 replicas total)")
	fmt.Printf("%-9s %-9s %14s %12s\n", "regions", "protocol", "txn/s", "latency")
	for z := 1; z <= 6; z++ {
		n := 24 / z
		if n < 4 {
			n = 4
		}
		for _, p := range []resilientdb.Protocol{resilientdb.GeoBFT, resilientdb.PBFT} {
			m := resilientdb.Simulate(resilientdb.Experiment{
				Protocol:   p,
				Clusters:   z,
				PerCluster: n,
				Warmup:     500 * time.Millisecond,
				Measure:    2 * time.Second,
			})
			fmt.Printf("%-9d %-9s %14.0f %11.0fms\n",
				z, p, m.Throughput, m.Latency.Avg.Seconds()*1000)
		}
	}
	fmt.Println("\nGeoBFT turns added regions into added parallelism; PBFT's single")
	fmt.Println("primary pays for every extra wide-area link (paper Section 4.1).")
}
