// Banking: a geo-distributed payment ledger on the ResilientDB fabric — the
// enterprise scenario the paper's introduction motivates. Branches in two
// regions record account balances; every update is totally ordered by
// GeoBFT, executed on every replica, and appended to the tamper-evident
// blockchain.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"resilientdb"
)

const accounts = 64

func main() {
	db, err := resilientdb.Open(resilientdb.Options{
		Clusters:           2,
		ReplicasPerCluster: 4,
		BatchSize:          8,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// One branch (client) per region.
	west, east := db.Client(0), db.Client(1)
	defer west.Close()
	defer east.Close()

	// Post deposits from both branches concurrently: each account's final
	// balance is deterministic because GeoBFT totally orders all updates.
	rng := rand.New(rand.NewSource(7))
	balances := make([]uint64, accounts)
	post := func(c *resilientdb.Client, name string, rounds int) {
		for r := 0; r < rounds; r++ {
			txns := make([]resilientdb.Transaction, 8)
			for i := range txns {
				acct := rng.Intn(accounts)
				balances[acct] += 100
				txns[i] = resilientdb.Transaction{Key: uint64(acct), Value: balances[acct]}
			}
			if err := c.Submit(txns, 10*time.Second); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
		}
		fmt.Printf("%s branch posted %d updates\n", name, rounds*8)
	}
	post(west, "west", 4)
	post(east, "east", 4)

	time.Sleep(200 * time.Millisecond)
	db.Close()

	// Audit: every replica in every region carries the identical, verified
	// transaction history.
	z, n, _ := db.Topology()
	ref := db.ReplicaLedger(0, 0)
	if err := ref.Verify(); err != nil {
		log.Fatalf("audit failed: %v", err)
	}
	agree := 0
	for c := 0; c < z; c++ {
		for i := 0; i < n; i++ {
			if db.ReplicaLedger(c, i).Head() == ref.Head() {
				agree++
			}
		}
	}
	fmt.Printf("\naudit: %d blocks, head %s, %d/%d replicas in agreement\n",
		ref.Height(), ref.Head().Short(), agree, z*n)

	// The chain is append-only evidence: every posted balance is in it.
	posted := 0
	for h := uint64(1); h <= ref.Height(); h++ {
		if b := ref.Block(h); !b.Batch.NoOp {
			posted += b.Batch.Len()
		}
	}
	fmt.Printf("audit: %d balance updates recorded on-chain\n", posted)
}
