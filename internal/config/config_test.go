package config

import (
	"testing"
	"testing/quick"
	"time"

	"resilientdb/internal/types"
)

func TestGoogleCloudProfileMatchesTable1(t *testing.T) {
	p := GoogleCloudProfile(6)
	// Spot-check Table 1 entries.
	if got := p.RTT[int(Oregon)][int(Iowa)]; got != 38*time.Millisecond {
		t.Errorf("Oregon-Iowa RTT = %v", got)
	}
	if got := p.RTT[int(Belgium)][int(Sydney)]; got != 270*time.Millisecond {
		t.Errorf("Belgium-Sydney RTT = %v", got)
	}
	// Bandwidth is symmetric and in bytes/second.
	for a := 0; a < 6; a++ {
		for b := 0; b < 6; b++ {
			if p.Bandwidth[a][b] != p.Bandwidth[b][a] {
				t.Errorf("bandwidth asymmetric at (%d,%d)", a, b)
			}
			if p.RTT[a][b] != p.RTT[b][a] {
				t.Errorf("rtt asymmetric at (%d,%d)", a, b)
			}
		}
	}
	// Oregon-Sydney: 136 Mbit/s = 17 MB/s.
	if got := p.Bandwidth[int(Oregon)][int(Sydney)]; got != 136e6/8 {
		t.Errorf("Oregon-Sydney bandwidth = %f", got)
	}
	// One-way latency is half the RTT.
	if got := p.OneWay(int(Oregon), int(Iowa)); got != 19*time.Millisecond {
		t.Errorf("one-way = %v", got)
	}
}

func TestProfileSubsets(t *testing.T) {
	for z := 1; z <= 6; z++ {
		p := GoogleCloudProfile(z)
		if len(p.Names) != z || len(p.RTT) != z || len(p.Uplink) != z {
			t.Errorf("z=%d: wrong profile dimensions", z)
		}
	}
}

func TestTopologyMapping(t *testing.T) {
	topo := NewTopology(4, 7)
	if topo.F() != 2 {
		t.Errorf("F = %d", topo.F())
	}
	if topo.TotalReplicas() != 28 {
		t.Errorf("TotalReplicas = %d", topo.TotalReplicas())
	}
	id := topo.ReplicaID(2, 3)
	if id != 17 {
		t.Errorf("ReplicaID(2,3) = %d", id)
	}
	if topo.ClusterOf(id) != 2 || topo.LocalIndex(id) != 3 {
		t.Errorf("inverse mapping broken for %v", id)
	}
	members := topo.ClusterMembers(1)
	if len(members) != 7 || members[0] != 7 || members[6] != 13 {
		t.Errorf("ClusterMembers(1) = %v", members)
	}
	all := topo.AllReplicas()
	if len(all) != 28 || all[0] != 0 || all[27] != 27 {
		t.Errorf("AllReplicas wrong")
	}
}

// Property: ReplicaID and (ClusterOf, LocalIndex) are inverse bijections.
func TestTopologyBijectionProperty(t *testing.T) {
	f := func(zRaw, nRaw uint8) bool {
		z := int(zRaw%6) + 1
		n := int(nRaw%20) + 4
		topo := NewTopology(z, n)
		seen := make(map[types.NodeID]bool)
		for c := 0; c < z; c++ {
			for i := 0; i < n; i++ {
				id := topo.ReplicaID(c, i)
				if seen[id] {
					return false
				}
				seen[id] = true
				if int(topo.ClusterOf(id)) != c || topo.LocalIndex(id) != i {
					return false
				}
			}
		}
		return len(seen) == z*n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFailureBoundPerCluster(t *testing.T) {
	// The paper's failure model (Remark 2.1): n > 3f per cluster.
	cases := map[int]int{4: 1, 7: 2, 10: 3, 12: 3, 13: 4, 15: 4}
	for n, f := range cases {
		if got := NewTopology(2, n).F(); got != f {
			t.Errorf("n=%d: f=%d, want %d", n, got, f)
		}
	}
}

func TestUniformProfile(t *testing.T) {
	p := UniformProfile(3, 80*time.Millisecond, 100)
	if p.RTT[0][1] != 80*time.Millisecond || p.RTT[0][0] >= time.Millisecond {
		t.Error("uniform profile wrong RTTs")
	}
	if p.Bandwidth[0][2] != 100e6/8 {
		t.Error("uniform profile wrong bandwidth")
	}
}

func TestClientID(t *testing.T) {
	if !ClientID(0).IsClient() || !ClientID(500).IsClient() {
		t.Error("client IDs misclassified")
	}
}
