package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Duration is a time.Duration that travels through JSON as a human-readable
// string ("500ms", "2s"). A bare JSON number is also accepted and read as
// nanoseconds, so specs generated programmatically round-trip too.
type Duration time.Duration

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON parses either a duration string or a nanosecond number.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("config: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("config: duration must be a string like \"500ms\" or a nanosecond number, got %s", b)
	}
	*d = Duration(n)
	return nil
}

// Std returns the duration as a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// ReplicaSpec places one replica of a cluster spec: where its consensus
// transport listens and, optionally, where its client-facing RPC server
// listens.
type ReplicaSpec struct {
	// Listen is the replica's TCP listen address for the consensus
	// transport ("host:port").
	Listen string `json:"listen"`
	// RPC, when non-empty, is where the replica's HTTP/JSON front door
	// (internal/rpc) listens. Empty disables RPC for this replica.
	RPC string `json:"rpc,omitempty"`
}

// MempoolSpec is the cluster spec's client-admission tuning block. Zero
// fields select the internal/mempool defaults.
type MempoolSpec struct {
	// Capacity caps admitted-but-unexecuted requests per replica (0: 4096).
	Capacity int `json:"capacity,omitempty"`
	// ClientRate limits new admissions per client in requests/s (0: 512;
	// negative disables).
	ClientRate float64 `json:"client_rate,omitempty"`
	// ClientBurst is the rate limiter's burst allowance (0: 512).
	ClientBurst int `json:"client_burst,omitempty"`
	// ReplayWindow is how many executed requests per client each replica
	// remembers for ledger re-replies (0: 32).
	ReplayWindow int `json:"replay_window,omitempty"`
}

// RetentionSpec is the cluster spec's persistence and history-bounding
// block. An empty DataDir keeps ledgers in memory only.
type RetentionSpec struct {
	// DataDir roots each hosted replica's durable block store. Processes on
	// different machines may use the same path; processes sharing a machine
	// need distinct paths.
	DataDir string `json:"data_dir,omitempty"`
	// SegmentBytes caps one block-store segment file (0: 4 MiB).
	SegmentBytes int64 `json:"segment_bytes,omitempty"`
	// GroupCommit batches block-store fsyncs at this interval (0: fsync
	// every commit).
	GroupCommit Duration `json:"group_commit,omitempty"`
	// SnapshotInterval writes a checkpoint snapshot every N rounds and GCs
	// ledger segments below it (0: history unbounded).
	SnapshotInterval uint64 `json:"snapshot_interval,omitempty"`
	// RetainSegments is how many segments snapshot GC keeps below the last
	// durable checkpoint (0: 2).
	RetainSegments int `json:"retain_segments,omitempty"`
}

// ClusterSpec is a whole deployment in one JSON file: topology, the address
// book every process must agree on, and the shared tuning knobs. Each
// process of the deployment loads the same file and is told only which role
// it plays (-id or -client); everything else — peer addresses, RPC listen
// addresses, timeouts, retention, admission — comes from the spec, so the
// file can be provisioned once and shipped to every machine.
type ClusterSpec struct {
	// Clusters is the number of regions (z ≥ 1).
	Clusters int `json:"clusters"`
	// ReplicasPerCluster is n per region (n ≥ 4).
	ReplicasPerCluster int `json:"replicas_per_cluster"`
	// BatchSize groups client transactions per consensus decision (0: the
	// deployment default).
	BatchSize int `json:"batch_size,omitempty"`
	// LocalTimeout tunes local view-change failure detection (0: default).
	LocalTimeout Duration `json:"local_timeout,omitempty"`
	// RemoteTimeout is the remote failure-detection base timeout (0:
	// default).
	RemoteTimeout Duration `json:"remote_timeout,omitempty"`
	// Replicas is the address book for the z×n replicas in global order:
	// Replicas[i] places global replica i (cluster i/n, local index i%n).
	Replicas []ReplicaSpec `json:"replicas"`
	// Clients maps client index to the listen address of the process
	// hosting that client, so replicas can route replies.
	Clients []string `json:"clients,omitempty"`
	// ProvisionClients is how many client identities get signing keys (0:
	// 64). Must be at least len(Clients).
	ProvisionClients int `json:"provision_clients,omitempty"`
	// Mempool tunes client admission.
	Mempool MempoolSpec `json:"mempool,omitempty"`
	// Retention tunes persistence and history bounding.
	Retention RetentionSpec `json:"retention,omitempty"`
}

// ParseClusterSpec decodes and validates a cluster spec. Unknown fields are
// rejected — a typo in a deployment file should fail loudly at startup, not
// silently fall back to a default.
func ParseClusterSpec(data []byte) (*ClusterSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	spec := &ClusterSpec{}
	if err := dec.Decode(spec); err != nil {
		return nil, fmt.Errorf("config: bad cluster spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// LoadClusterSpec reads and parses a cluster spec file.
func LoadClusterSpec(path string) (*ClusterSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("config: read cluster spec: %w", err)
	}
	spec, err := ParseClusterSpec(data)
	if err != nil {
		return nil, fmt.Errorf("config: %s: %w", path, err)
	}
	return spec, nil
}

// Validate checks the spec's internal consistency: a plausible topology, a
// complete replica address book, and a provisioned identity for every
// listed client.
func (s *ClusterSpec) Validate() error {
	if s.Clusters < 1 {
		return fmt.Errorf("config: cluster spec needs clusters ≥ 1, got %d", s.Clusters)
	}
	if s.ReplicasPerCluster < 4 {
		return fmt.Errorf("config: cluster spec needs replicas_per_cluster ≥ 4 (f ≥ 1), got %d", s.ReplicasPerCluster)
	}
	want := s.Clusters * s.ReplicasPerCluster
	if len(s.Replicas) != want {
		return fmt.Errorf("config: cluster spec lists %d replicas, topology %d×%d needs %d",
			len(s.Replicas), s.Clusters, s.ReplicasPerCluster, want)
	}
	for i, r := range s.Replicas {
		if r.Listen == "" {
			return fmt.Errorf("config: replica %d has no listen address", i)
		}
	}
	if s.ProvisionClients > 0 && len(s.Clients) > s.ProvisionClients {
		return fmt.Errorf("config: %d client addresses but only %d provisioned identities",
			len(s.Clients), s.ProvisionClients)
	}
	return nil
}

// Topology returns the spec's deployment shape.
func (s *ClusterSpec) Topology() Topology {
	return NewTopology(s.Clusters, s.ReplicasPerCluster)
}

// ReplicaAddrs returns the consensus listen addresses in global replica
// order (the flat address book the transport layer wants).
func (s *ClusterSpec) ReplicaAddrs() []string {
	out := make([]string, len(s.Replicas))
	for i, r := range s.Replicas {
		out[i] = r.Listen
	}
	return out
}
