// Package config defines deployment topologies and the geographic network
// profile used throughout the repository. The inter-region latency and
// bandwidth numbers are taken verbatim from Table 1 of the ResilientDB
// paper (measurements between Google Cloud n1 machines in six regions); the
// network simulator is calibrated against them.
package config

import (
	"fmt"
	"time"

	"resilientdb/internal/types"
)

// Region indexes into the six-region profile, in the paper's order.
type Region int

// The six regions of the paper's evaluation (Table 1), in the order the
// paper adds them to experiments (Section 4.1).
const (
	Oregon Region = iota
	Iowa
	Montreal
	Belgium
	Taiwan
	Sydney
	NumRegions
)

var regionNames = [NumRegions]string{
	"Oregon", "Iowa", "Montreal", "Belgium", "Taiwan", "Sydney",
}

// String returns the region's Google Cloud location name (Table 1).
func (r Region) String() string {
	if r < 0 || r >= NumRegions {
		return fmt.Sprintf("region(%d)", int(r))
	}
	return regionNames[r]
}

// rttMS is the symmetric ping round-trip-time matrix in milliseconds
// (Table 1, upper triangle; intra-region entries are "≤ 1" and modelled as
// 0.5 ms).
var rttMS = [NumRegions][NumRegions]float64{
	{1, 38, 65, 136, 118, 161},
	{38, 1, 33, 98, 153, 172},
	{65, 33, 1, 82, 186, 202},
	{136, 98, 82, 1, 252, 270},
	{118, 153, 186, 252, 1, 137},
	{161, 172, 202, 270, 137, 1},
}

// bandwidthMbit is the symmetric bandwidth matrix in Mbit/s (Table 1).
var bandwidthMbit = [NumRegions][NumRegions]float64{
	{7998, 669, 371, 194, 188, 136},
	{669, 10004, 752, 243, 144, 120},
	{371, 752, 7977, 283, 111, 102},
	{194, 243, 283, 9728, 79, 66},
	{188, 144, 111, 79, 7998, 160},
	{136, 120, 102, 66, 79 /*unreported; symmetric-ish*/, 7977},
}

func init() {
	// Table 1 reports Taiwan→Sydney bandwidth as 160 Mbit/s; keep symmetry.
	bandwidthMbit[Taiwan][Sydney] = 160
	bandwidthMbit[Sydney][Taiwan] = 160
}

// Profile describes the network characteristics between every pair of
// regions in a deployment, plus per-node local parameters.
type Profile struct {
	// Names of the regions, index-aligned with the matrices.
	Names []string
	// RTT holds round-trip times between region pairs.
	RTT [][]time.Duration
	// Bandwidth holds sustained per-flow bandwidth in bytes/second.
	Bandwidth [][]float64
	// Uplink is each node's NIC egress capacity in bytes/second; a node
	// sending to many peers shares this.
	Uplink []float64
}

// OneWay returns the modelled one-way latency between regions a and b.
func (p *Profile) OneWay(a, b int) time.Duration { return p.RTT[a][b] / 2 }

// GoogleCloudProfile returns the Table 1 profile restricted to the first z
// regions (in the paper's ordering: Oregon, Iowa, Montreal, Belgium, Taiwan,
// Sydney).
func GoogleCloudProfile(z int) *Profile {
	if z < 1 || z > int(NumRegions) {
		panic(fmt.Sprintf("config: profile supports 1..%d regions, got %d", NumRegions, z))
	}
	p := &Profile{
		Names:     make([]string, z),
		RTT:       make([][]time.Duration, z),
		Bandwidth: make([][]float64, z),
		Uplink:    make([]float64, z),
	}
	for i := 0; i < z; i++ {
		p.Names[i] = Region(i).String()
		p.RTT[i] = make([]time.Duration, z)
		p.Bandwidth[i] = make([]float64, z)
		for j := 0; j < z; j++ {
			ms := rttMS[i][j]
			if i == j {
				ms = 0.5
			}
			p.RTT[i][j] = time.Duration(ms * float64(time.Millisecond))
			p.Bandwidth[i][j] = bandwidthMbit[i][j] * 1e6 / 8 // Mbit/s → B/s
		}
		// Per-VM egress cap, ~1 Gbit/s: the paper attributes the throughput
		// ceiling of single-primary protocols to "the bandwidth of the
		// single primary" (Section 4.4); intra-region per-flow rates in
		// Table 1 exceed what one machine can push to dozens of peers.
		p.Uplink[i] = 1000e6 / 8
	}
	return p
}

// UniformProfile returns a z-region profile where every pair of distinct
// regions has the given RTT and bandwidth — useful for tests and ablations
// that need a topology without Table 1's asymmetry.
func UniformProfile(z int, rtt time.Duration, mbit float64) *Profile {
	p := &Profile{
		Names:     make([]string, z),
		RTT:       make([][]time.Duration, z),
		Bandwidth: make([][]float64, z),
		Uplink:    make([]float64, z),
	}
	for i := 0; i < z; i++ {
		p.Names[i] = fmt.Sprintf("region%d", i)
		p.RTT[i] = make([]time.Duration, z)
		p.Bandwidth[i] = make([]float64, z)
		for j := 0; j < z; j++ {
			if i == j {
				p.RTT[i][j] = 500 * time.Microsecond
				p.Bandwidth[i][j] = 8000e6 / 8
			} else {
				p.RTT[i][j] = rtt
				p.Bandwidth[i][j] = mbit * 1e6 / 8
			}
		}
		p.Uplink[i] = 8000e6 / 8
	}
	return p
}

// RTTMillis exposes the raw Table 1 RTT entry (for Table 1 regeneration).
func RTTMillis(a, b Region) float64 {
	if a == b {
		return 1
	}
	return rttMS[a][b]
}

// BandwidthMbit exposes the raw Table 1 bandwidth entry.
func BandwidthMbit(a, b Region) float64 { return bandwidthMbit[a][b] }

// Topology describes a clustered deployment: z clusters of n replicas each,
// with at most f = ⌊(n−1)/3⌋ Byzantine replicas per cluster (the paper's
// failure model, Remark 2.1).
type Topology struct {
	Clusters   int // z
	PerCluster int // n
}

// NewTopology validates and returns a topology.
func NewTopology(z, n int) Topology {
	if z < 1 || n < 4 {
		panic(fmt.Sprintf("config: invalid topology z=%d n=%d (need z ≥ 1, n ≥ 4)", z, n))
	}
	return Topology{Clusters: z, PerCluster: n}
}

// F returns the per-cluster fault bound f with n > 3f.
func (t Topology) F() int { return (t.PerCluster - 1) / 3 }

// TotalReplicas returns zn.
func (t Topology) TotalReplicas() int { return t.Clusters * t.PerCluster }

// ReplicaID maps (cluster, local index) to the global replica identifier.
func (t Topology) ReplicaID(cluster, local int) types.NodeID {
	return types.NodeID(cluster*t.PerCluster + local)
}

// ClusterOf returns the cluster of a replica.
func (t Topology) ClusterOf(id types.NodeID) types.ClusterID {
	return types.ClusterID(int(id) / t.PerCluster)
}

// LocalIndex returns a replica's index within its cluster (0-based).
func (t Topology) LocalIndex(id types.NodeID) int {
	return int(id) % t.PerCluster
}

// ClusterMembers returns the replica IDs of one cluster, in local order.
func (t Topology) ClusterMembers(cluster int) []types.NodeID {
	out := make([]types.NodeID, t.PerCluster)
	for i := range out {
		out[i] = t.ReplicaID(cluster, i)
	}
	return out
}

// AllReplicas returns every replica ID in the system, in global order.
func (t Topology) AllReplicas() []types.NodeID {
	out := make([]types.NodeID, 0, t.TotalReplicas())
	for c := 0; c < t.Clusters; c++ {
		out = append(out, t.ClusterMembers(c)...)
	}
	return out
}

// ClientID returns the NodeID of the i-th client.
func ClientID(i int) types.NodeID { return types.ClientIDBase + types.NodeID(i) }
