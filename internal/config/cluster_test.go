package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const sampleSpec = `{
  "clusters": 2,
  "replicas_per_cluster": 4,
  "batch_size": 10,
  "local_timeout": "500ms",
  "remote_timeout": "1s",
  "replicas": [
    {"listen": "10.0.0.1:7000", "rpc": "10.0.0.1:9000"},
    {"listen": "10.0.0.2:7000"},
    {"listen": "10.0.0.3:7000"},
    {"listen": "10.0.0.4:7000"},
    {"listen": "10.0.1.1:7000", "rpc": "10.0.1.1:9000"},
    {"listen": "10.0.1.2:7000"},
    {"listen": "10.0.1.3:7000"},
    {"listen": "10.0.1.4:7000"}
  ],
  "clients": ["10.0.0.9:7100", "10.0.1.9:7100"],
  "provision_clients": 8,
  "mempool": {"capacity": 2048, "client_rate": 256, "replay_window": 16},
  "retention": {"data_dir": "/var/lib/resilientdb", "group_commit": "5ms",
                "snapshot_interval": 64, "retain_segments": 3}
}`

func TestParseClusterSpec(t *testing.T) {
	spec, err := ParseClusterSpec([]byte(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Clusters != 2 || spec.ReplicasPerCluster != 4 {
		t.Errorf("shape %d×%d, want 2×4", spec.Clusters, spec.ReplicasPerCluster)
	}
	if got := spec.LocalTimeout.Std(); got != 500*time.Millisecond {
		t.Errorf("local_timeout %v, want 500ms", got)
	}
	if got := spec.Retention.GroupCommit.Std(); got != 5*time.Millisecond {
		t.Errorf("group_commit %v, want 5ms", got)
	}
	topo := spec.Topology()
	if topo.TotalReplicas() != 8 || topo.F() != 1 {
		t.Errorf("topology (%d replicas, f=%d), want (8, 1)", topo.TotalReplicas(), topo.F())
	}
	addrs := spec.ReplicaAddrs()
	if len(addrs) != 8 || addrs[4] != "10.0.1.1:7000" {
		t.Errorf("replica addrs %v", addrs)
	}
	if spec.Replicas[0].RPC != "10.0.0.1:9000" || spec.Replicas[1].RPC != "" {
		t.Errorf("rpc addrs: %q / %q", spec.Replicas[0].RPC, spec.Replicas[1].RPC)
	}
	if spec.Mempool.Capacity != 2048 || spec.Retention.SnapshotInterval != 64 {
		t.Errorf("tuning blocks: %+v %+v", spec.Mempool, spec.Retention)
	}
}

func TestLoadClusterSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := os.WriteFile(path, []byte(sampleSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadClusterSpec(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadClusterSpec(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing spec file loaded without error")
	}
}

func TestClusterSpecValidation(t *testing.T) {
	cases := []struct {
		name, spec, want string
	}{
		{"unknown field",
			`{"clusters": 1, "replicas_per_cluster": 4, "replicaz": []}`,
			"unknown field"},
		{"bad duration",
			`{"clusters": 1, "replicas_per_cluster": 4, "local_timeout": "fast", "replicas": []}`,
			"bad duration"},
		{"no clusters",
			`{"clusters": 0, "replicas_per_cluster": 4}`,
			"clusters ≥ 1"},
		{"too few replicas per cluster",
			`{"clusters": 1, "replicas_per_cluster": 3}`,
			"replicas_per_cluster ≥ 4"},
		{"short address book",
			`{"clusters": 1, "replicas_per_cluster": 4, "replicas": [{"listen": "a:1"}]}`,
			"needs 4"},
		{"empty listen address",
			`{"clusters": 1, "replicas_per_cluster": 4,
			  "replicas": [{"listen": "a:1"}, {"listen": ""}, {"listen": "c:1"}, {"listen": "d:1"}]}`,
			"no listen address"},
		{"more clients than identities",
			`{"clusters": 1, "replicas_per_cluster": 4, "provision_clients": 1,
			  "clients": ["a:1", "b:1"],
			  "replicas": [{"listen": "a:1"}, {"listen": "b:1"}, {"listen": "c:1"}, {"listen": "d:1"}]}`,
			"provisioned identities"},
	}
	for _, c := range cases {
		_, err := ParseClusterSpec([]byte(c.spec))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestDurationRoundTrip(t *testing.T) {
	// A programmatically generated spec (nanosecond numbers) parses too.
	spec, err := ParseClusterSpec([]byte(`{"clusters": 1, "replicas_per_cluster": 4,
	  "local_timeout": 250000000,
	  "replicas": [{"listen": "a:1"}, {"listen": "b:1"}, {"listen": "c:1"}, {"listen": "d:1"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.LocalTimeout.Std() != 250*time.Millisecond {
		t.Errorf("numeric duration: %v, want 250ms", spec.LocalTimeout.Std())
	}
	if b, err := Duration(2 * time.Second).MarshalJSON(); err != nil || string(b) != `"2s"` {
		t.Errorf("marshal: %s, %v", b, err)
	}
}
