package kvstore

import (
	"testing"
	"testing/quick"

	"resilientdb/internal/types"
)

func TestPreload(t *testing.T) {
	s := New(100)
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
	v, ok := s.Get(42)
	if !ok || v != 42 {
		t.Errorf("Get(42) = %d, %v", v, ok)
	}
	if _, ok := s.Get(100); ok {
		t.Error("key 100 should not exist")
	}
}

func TestApplyAndDigest(t *testing.T) {
	a, b := New(10), New(10)
	if a.Digest() != b.Digest() {
		t.Fatal("fresh stores differ")
	}
	txn := types.Transaction{Key: 3, Value: 77}
	a.Apply(txn)
	if a.Digest() == b.Digest() {
		t.Error("digest unchanged after write")
	}
	b.Apply(txn)
	if a.Digest() != b.Digest() {
		t.Error("same writes, different digests")
	}
	v, _ := a.Get(3)
	if v != 77 {
		t.Errorf("Get(3) = %d", v)
	}
	if a.Applied() != 1 {
		t.Errorf("Applied = %d", a.Applied())
	}
}

func TestOrderSensitivity(t *testing.T) {
	// The digest is a chain: applying the same writes in different orders
	// must differ (execution order is part of replicated state).
	a, b := New(10), New(10)
	t1 := types.Transaction{Key: 1, Value: 10}
	t2 := types.Transaction{Key: 1, Value: 20}
	a.Apply(t1)
	a.Apply(t2)
	b.Apply(t2)
	b.Apply(t1)
	if a.Digest() == b.Digest() {
		t.Error("different orders produced the same digest")
	}
}

func TestNoOpBatchLeavesStateUntouched(t *testing.T) {
	s := New(10)
	before := s.Digest()
	noop := types.Batch{NoOp: true}
	s.ApplyBatch(&noop)
	if s.Digest() != before {
		t.Error("no-op batch changed state")
	}
}

// Property: two stores applying the same batch sequence agree on digest and
// contents.
func TestReplicaAgreementProperty(t *testing.T) {
	f := func(keys []uint64, vals []uint64) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		if n > 100 {
			n = 100
		}
		a, b := New(16), New(16)
		batch := types.Batch{}
		for i := 0; i < n; i++ {
			batch.Txns = append(batch.Txns, types.Transaction{Key: keys[i] % 64, Value: vals[i]})
		}
		a.ApplyBatch(&batch)
		b.ApplyBatch(&batch)
		if a.Digest() != b.Digest() {
			return false
		}
		for i := 0; i < n; i++ {
			va, _ := a.Get(keys[i] % 64)
			vb, _ := b.Get(keys[i] % 64)
			if va != vb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkApply(b *testing.B) {
	s := New(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Apply(types.Transaction{Key: uint64(i) % 1000, Value: uint64(i)})
	}
}
