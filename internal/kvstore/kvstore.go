// Package kvstore implements the deterministic execution engine behind the
// ResilientDB reproduction: an in-memory key-value table in the style of the
// YCSB benchmark table the paper evaluates against (600k active records,
// write transactions). All non-faulty replicas apply the same batches in the
// same order and therefore maintain identical state digests, which the
// checkpoint sub-protocols compare.
package kvstore

import (
	"hash/fnv"

	"resilientdb/internal/types"
)

// Store is a single replica's copy of the table. It is not safe for
// concurrent use; each replica owns one store and applies batches from its
// execution loop only.
type Store struct {
	vals    map[uint64]uint64
	applied uint64
	digest  uint64 // running chain over applied writes
}

// New returns a store preloaded with records rows (key i → value i),
// mirroring the paper's initialization of an identical YCSB table on every
// replica.
func New(records int) *Store {
	s := &Store{vals: make(map[uint64]uint64, records)}
	for i := 0; i < records; i++ {
		s.vals[uint64(i)] = uint64(i)
	}
	return s
}

// Apply executes one write transaction.
func (s *Store) Apply(t types.Transaction) {
	s.vals[t.Key] = t.Value
	s.applied++
	h := fnv.New64a()
	var buf [24]byte
	put64(buf[0:8], s.digest)
	put64(buf[8:16], t.Key)
	put64(buf[16:24], t.Value)
	h.Write(buf[:])
	s.digest = h.Sum64()
}

// ApplyBatch executes every transaction in the batch, in order. No-op
// batches leave the state untouched but still advance the applied count so
// digests reflect the executed history.
func (s *Store) ApplyBatch(b *types.Batch) {
	if b.NoOp {
		return
	}
	for _, t := range b.Txns {
		s.Apply(t)
	}
}

// Get returns the value of key and whether it exists.
func (s *Store) Get(key uint64) (uint64, bool) {
	v, ok := s.vals[key]
	return v, ok
}

// Applied returns the number of transactions executed so far.
func (s *Store) Applied() uint64 { return s.applied }

// Digest returns the deterministic digest of the store's executed history.
// Two replicas that applied the same writes in the same order have equal
// digests.
func (s *Store) Digest() types.Digest {
	var d types.Digest
	put64(d[0:8], s.digest)
	put64(d[8:16], s.applied)
	return d
}

// Len returns the number of rows in the table.
func (s *Store) Len() int { return len(s.vals) }

func put64(dst []byte, v uint64) {
	_ = dst[7]
	dst[0] = byte(v >> 56)
	dst[1] = byte(v >> 48)
	dst[2] = byte(v >> 40)
	dst[3] = byte(v >> 32)
	dst[4] = byte(v >> 24)
	dst[5] = byte(v >> 16)
	dst[6] = byte(v >> 8)
	dst[7] = byte(v)
}
