// Package kvstore implements the deterministic execution engine behind the
// ResilientDB reproduction: an in-memory key-value table in the style of the
// YCSB benchmark table the paper evaluates against (600k active records,
// write transactions). All non-faulty replicas apply the same batches in the
// same order and therefore maintain identical state digests, which the
// checkpoint sub-protocols compare.
package kvstore

import (
	"fmt"
	"hash/fnv"
	"sort"

	"resilientdb/internal/types"
)

// Store is a single replica's copy of the table. It is not safe for
// concurrent use; each replica owns one store and applies batches from its
// execution loop only.
type Store struct {
	vals    map[uint64]uint64
	applied uint64
	digest  uint64 // running chain over applied writes
}

// New returns a store preloaded with records rows (key i → value i),
// mirroring the paper's initialization of an identical YCSB table on every
// replica.
func New(records int) *Store {
	s := &Store{vals: make(map[uint64]uint64, records)}
	for i := 0; i < records; i++ {
		s.vals[uint64(i)] = uint64(i)
	}
	return s
}

// Apply executes one write transaction.
func (s *Store) Apply(t types.Transaction) {
	s.vals[t.Key] = t.Value
	s.applied++
	h := fnv.New64a()
	var buf [24]byte
	put64(buf[0:8], s.digest)
	put64(buf[8:16], t.Key)
	put64(buf[16:24], t.Value)
	h.Write(buf[:])
	s.digest = h.Sum64()
}

// ApplyBatch executes every transaction in the batch, in order. No-op
// batches leave the state untouched but still advance the applied count so
// digests reflect the executed history.
func (s *Store) ApplyBatch(b *types.Batch) {
	if b.NoOp {
		return
	}
	for _, t := range b.Txns {
		s.Apply(t)
	}
}

// Get returns the value of key and whether it exists.
func (s *Store) Get(key uint64) (uint64, bool) {
	v, ok := s.vals[key]
	return v, ok
}

// Applied returns the number of transactions executed so far.
func (s *Store) Applied() uint64 { return s.applied }

// Digest returns the deterministic digest of the store's executed history.
// Two replicas that applied the same writes in the same order have equal
// digests.
func (s *Store) Digest() types.Digest {
	var d types.Digest
	put64(d[0:8], s.digest)
	put64(d[8:16], s.applied)
	return d
}

// Len returns the number of rows in the table.
func (s *Store) Len() int { return len(s.vals) }

// Serialize returns the canonical byte encoding of the full store state:
// the applied count, the running digest, and every row in ascending key
// order, all big-endian and fixed-width. Two stores with identical state
// serialize to identical bytes, so the hash of this encoding is the state
// hash that checkpoint snapshots are content-addressed by.
func (s *Store) Serialize() []byte {
	keys := make([]uint64, 0, len(s.vals))
	for k := range s.vals {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]byte, 0, 24+16*len(keys))
	var buf [8]byte
	put64(buf[:], s.applied)
	out = append(out, buf[:]...)
	put64(buf[:], s.digest)
	out = append(out, buf[:]...)
	put64(buf[:], uint64(len(keys)))
	out = append(out, buf[:]...)
	for _, k := range keys {
		put64(buf[:], k)
		out = append(out, buf[:]...)
		put64(buf[:], s.vals[k])
		out = append(out, buf[:]...)
	}
	return out
}

// Restore replaces the store's entire state with the one in data, previously
// produced by Serialize. Malformed input (truncated, wrong row count,
// trailing bytes) is rejected without touching the store.
func (s *Store) Restore(data []byte) error {
	if len(data) < 24 {
		return fmt.Errorf("kvstore: snapshot too short: %d bytes", len(data))
	}
	applied := get64(data[0:8])
	digest := get64(data[8:16])
	rows := get64(data[16:24])
	if rows > uint64(len(data)-24)/16 || len(data) != 24+16*int(rows) {
		return fmt.Errorf("kvstore: snapshot row count %d disagrees with %d payload bytes", rows, len(data))
	}
	vals := make(map[uint64]uint64, rows)
	for i := 0; i < int(rows); i++ {
		off := 24 + 16*i
		vals[get64(data[off:off+8])] = get64(data[off+8 : off+16])
	}
	s.vals, s.applied, s.digest = vals, applied, digest
	return nil
}

func get64(src []byte) uint64 {
	_ = src[7]
	return uint64(src[0])<<56 | uint64(src[1])<<48 | uint64(src[2])<<40 |
		uint64(src[3])<<32 | uint64(src[4])<<24 | uint64(src[5])<<16 |
		uint64(src[6])<<8 | uint64(src[7])
}

func put64(dst []byte, v uint64) {
	_ = dst[7]
	dst[0] = byte(v >> 56)
	dst[1] = byte(v >> 48)
	dst[2] = byte(v >> 40)
	dst[3] = byte(v >> 32)
	dst[4] = byte(v >> 24)
	dst[5] = byte(v >> 16)
	dst[6] = byte(v >> 8)
	dst[7] = byte(v)
}
