// Package proto defines the environment abstraction shared by every
// consensus protocol implementation. A protocol core is a deterministic
// state machine that reacts to messages and timers; the Env interface is its
// only window to the world. Two implementations exist: the discrete-event
// simulator (package simnet) used by all experiments, and the multi-threaded
// pipelined fabric (package fabric) used for real-time deployments — the
// same separation ResilientDB draws between protocol logic and its threaded
// architecture (paper Section 3).
package proto

import (
	"math/rand"
	"time"

	"resilientdb/internal/crypto"
	"resilientdb/internal/simnet"
	"resilientdb/internal/types"
)

// Timer is a cancellable one-shot timer handle.
type Timer interface {
	Stop()
}

// Env is a node's execution environment: identity, clock, messaging,
// timers, CPU accounting and cryptography.
type Env interface {
	// ID returns this node's identifier.
	ID() types.NodeID
	// Now returns the node-local time.
	Now() time.Duration
	// Send transmits a message to another node.
	Send(to types.NodeID, m types.Message)
	// SetTimer schedules fn after d; the returned timer can be stopped.
	SetTimer(d time.Duration, fn func()) Timer
	// Defer schedules fn to run immediately after the current event.
	Defer(fn func())
	// Charge bills CPU time to this node.
	Charge(d time.Duration)
	// Suite returns this node's cryptographic suite.
	Suite() *crypto.Suite
	// Rand returns this node's deterministic randomness source.
	Rand() *rand.Rand
}

// Verdict is the outcome of concurrent pre-verification. The fabric's verify
// pool runs every state-independent cryptographic check of an inbound message
// (PBFT commit signatures, preprepare batch digests, GeoBFT certificate and
// Rvc signatures) before the message enters the worker queue, and tags it
// with the verdict so the single-threaded state machine can skip
// re-verification without changing any protocol decision.
type Verdict int

const (
	// VerdictPass means the message has no state-independent cryptographic
	// checks; it takes the full (verifying) apply path.
	VerdictPass Verdict = iota
	// VerdictVerified means every state-independent cryptographic check
	// passed; the apply path may skip them.
	VerdictVerified
	// VerdictReject means a cryptographic check failed. The message must be
	// dropped — the state machine would discard it anyway, so dropping early
	// is decision-equivalent.
	VerdictReject
)

// Multicast sends m to every listed node except the sender itself.
func Multicast(env Env, ids []types.NodeID, m types.Message) {
	self := env.ID()
	for _, id := range ids {
		if id != self {
			env.Send(id, m)
		}
	}
}

// simEnv adapts *simnet.Env to Env (the SetTimer return type differs).
type simEnv struct {
	*simnet.Env
}

func (s simEnv) SetTimer(d time.Duration, fn func()) Timer {
	return s.Env.SetTimer(d, fn)
}

// WrapSim adapts a simulator environment to the protocol Env interface.
func WrapSim(e *simnet.Env) Env { return simEnv{e} }

// Reply is the uniform execution reply a replica sends to the client that
// submitted a batch. Clients consider a batch complete once f+1 replicas
// sent matching replies (at most f can be faulty, so one reply is from a
// non-faulty replica — paper Section 2.4).
type Reply struct {
	Client    types.NodeID
	ClientSeq uint64
	Replica   types.NodeID
	TxnCount  int
	// Result commits to the execution outcome (here: the batch digest, as
	// our YCSB writes return no data).
	Result types.Digest
}

// MsgType implements types.Message.
func (*Reply) MsgType() string { return "reply" }

// WireSize implements types.Message (1.5 kB per 100-transaction batch).
func (r *Reply) WireSize() int {
	return types.HeaderBytes + types.ReplyBytesPerTxn*r.TxnCount
}
