package proto

import (
	"testing"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/simnet"
	"resilientdb/internal/types"
)

func TestReplyWireSize(t *testing.T) {
	r := &Reply{TxnCount: 100}
	// 1.5 kB per 100-transaction batch (paper Section 4).
	if got := r.WireSize(); got < 1400 || got > 1700 {
		t.Errorf("reply-100 wire size = %d, want ≈1.5 kB", got)
	}
	if r.MsgType() != "reply" {
		t.Errorf("MsgType = %s", r.MsgType())
	}
}

type countHandler struct {
	env  *simnet.Env
	got  int
	init func(*simnet.Env)
}

func (h *countHandler) Init(env *simnet.Env) {
	h.env = env
	if h.init != nil {
		h.init(env)
	}
}
func (h *countHandler) Receive(types.NodeID, types.Message) { h.got++ }

func TestMulticastSkipsSelf(t *testing.T) {
	net := simnet.New(simnet.Options{Profile: config.UniformProfile(1, 0, 1000), Seed: 1})
	hs := make([]*countHandler, 3)
	for i := range hs {
		hs[i] = &countHandler{}
		net.AddNode(types.NodeID(i), 0, hs[i])
	}
	hs[0].init = func(env *simnet.Env) {
		Multicast(WrapSim(env), []types.NodeID{0, 1, 2}, &Reply{})
	}
	net.RunUntil(time.Second)
	if hs[0].got != 0 {
		t.Errorf("self received %d", hs[0].got)
	}
	if hs[1].got != 1 || hs[2].got != 1 {
		t.Errorf("peers received %d, %d", hs[1].got, hs[2].got)
	}
}

func TestWrapSimSatisfiesEnv(t *testing.T) {
	net := simnet.New(simnet.Options{Profile: config.UniformProfile(1, 0, 1000), Seed: 1})
	fired := false
	h := &countHandler{}
	h.init = func(env *simnet.Env) {
		e := WrapSim(env)
		if e.ID() != 0 {
			t.Errorf("ID = %v", e.ID())
		}
		tm := e.SetTimer(10*time.Millisecond, func() { fired = true })
		_ = tm
		e.Defer(func() {})
		e.Charge(time.Microsecond)
		if e.Suite() == nil || e.Rand() == nil {
			t.Error("suite or rand nil")
		}
	}
	net.AddNode(0, 0, h)
	net.RunUntil(time.Second)
	if !fired {
		t.Error("timer did not fire through the wrapper")
	}
}
