package proto

import (
	"resilientdb/internal/types"
)

// EncodeBody implements types.WireMessage.
func (r *Reply) EncodeBody(enc *types.Encoder) {
	enc.I32(int32(r.Client))
	enc.U64(r.ClientSeq)
	enc.I32(int32(r.Replica))
	enc.U32(uint32(r.TxnCount))
	enc.Digest(r.Result)
}

func decodeReply(dec *types.Decoder) types.Message {
	r := &Reply{}
	r.Client = types.NodeID(dec.I32())
	r.ClientSeq = dec.U64()
	r.Replica = types.NodeID(dec.I32())
	r.TxnCount = int(dec.U32())
	r.Result = dec.Digest()
	return r
}

func init() {
	types.RegisterMessage((*Reply)(nil).MsgType(), decodeReply, func() []types.Message {
		return []types.Message{
			&Reply{},
			&Reply{
				Client:    types.ClientIDBase + 1,
				ClientSeq: 12,
				Replica:   3,
				TxnCount:  100,
				Result:    types.Hash([]byte("result")),
			},
		}
	})
}
