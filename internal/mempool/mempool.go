// Package mempool is the replica-side client admission layer: a bounded
// buffer in front of consensus that makes request submission at-most-once.
//
// The paper's client protocol (Section 2.4) retries a request until f+1
// replicas confirm execution, and assumes each (client, seq) batch executes
// at most once; the admission layer is where that assumption is enforced.
// Every client request — first copy, retry, or a backup's re-forward —
// passes through Admit, which classifies it:
//
//   - Admitted: first sighting of a live (client, seq); consensus should
//     process it.
//   - Duplicate: the pair is already pending in consensus (a retry racing
//     the in-flight original, or an equivocating client re-binding the seq
//     to different contents — first writer wins either way); drop it.
//   - Replayed: the pair already executed; drop it, and when the executed
//     entry is still inside the replay window, re-reply from the certified
//     ledger so a client that missed its f+1 replies converges instead of
//     timing out.
//   - RateLimited: the client exceeded its admission token bucket; drop
//     without mutating any state, so a spamming client cannot grow the pool.
//
// Capacity is bounded in the style of neo-go's pkg/core/mempool: when a new
// admission would exceed the configured capacity, the oldest pending request
// is evicted (its client will retry it after the backlog drains). Per-client
// replay windows are fixed-size rings, so memory stays proportional to
// capacity plus (clients × window) even under saturation.
//
// The pool tracks consensus, it does not gate it: callers feed executions
// back via MarkExecuted, and dedup is advisory in the sense that consensus
// keeps its own duplicate-proposal guards — the pool exists to shed the
// redundant work (and the duplicate-execution hazard) before it reaches the
// state machine.
package mempool

import (
	"sync"
	"time"

	"resilientdb/internal/metrics"
	"resilientdb/internal/types"
)

// Verdict classifies one request's admission outcome.
type Verdict int

// Admission outcomes (see the package comment for semantics).
const (
	Admitted Verdict = iota
	Duplicate
	Replayed
	RateLimited
)

// String returns the verdict's stable lower-case name.
func (v Verdict) String() string {
	switch v {
	case Admitted:
		return "admitted"
	case Duplicate:
		return "duplicate"
	case Replayed:
		return "replayed"
	case RateLimited:
		return "rate-limited"
	}
	return "unknown"
}

// Executed records one executed (client, seq) inside the replay window:
// enough to reconstruct the client reply without consulting the ledger.
type Executed struct {
	// Seq is the client-assigned batch sequence number.
	Seq uint64
	// Digest is the executed batch's canonical digest (equals the commit
	// certificate's digest, which is what a reply carries as Result).
	Digest types.Digest
	// TxnCount is the number of transactions the batch carried.
	TxnCount int
}

// Config tunes one replica's pool. The zero value selects the defaults.
type Config struct {
	// Capacity bounds the number of pending (admitted, not yet executed)
	// requests across all clients; an admission beyond it evicts the oldest
	// pending request. 0 selects DefaultCapacity.
	Capacity int
	// PerClientRate is the sustained number of new admissions per second one
	// client identity may consume (token-bucket refill rate). 0 selects
	// DefaultPerClientRate; negative disables rate limiting.
	PerClientRate float64
	// PerClientBurst is the token-bucket depth: how many admissions a client
	// may burst above the sustained rate. 0 selects DefaultPerClientBurst.
	PerClientBurst int
	// ReplayWindow is how many executed (seq, digest) entries are remembered
	// per client for ledger re-replies. 0 selects DefaultReplayWindow.
	ReplayWindow int
	// Now overrides the clock used by the rate limiter (deterministic
	// tests). Nil selects time.Now.
	Now func() time.Time
}

// Default tuning (see the README's Operations section for the tuning table).
const (
	// DefaultCapacity bounds pending requests per replica.
	DefaultCapacity = 4096
	// DefaultPerClientRate sustains 512 new admissions per second per
	// client — far above an honest client's retry cadence, far below a
	// spammer's.
	DefaultPerClientRate = 512
	// DefaultPerClientBurst is the default token-bucket depth.
	DefaultPerClientBurst = 512
	// DefaultReplayWindow remembers the last 32 executed batches per client.
	DefaultReplayWindow = 32
)

// Pool is one replica's admission buffer. All methods are safe for
// concurrent use: the fabric calls Admit from its verify pool (many
// goroutines) and MarkExecuted from the worker.
type Pool struct {
	mu      sync.Mutex
	cfg     Config
	clients map[types.NodeID]*clientState
	pending int
	fifo    []fifoRef // admission order, lazily pruned (see evict)
	head    int       // first live index into fifo
	stats   metrics.MempoolStats
}

// fifoRef points at one admitted request in admission order. A ref goes
// stale when its request executes or is evicted; stale refs are skipped (and
// discarded) by the eviction scan and the periodic compaction.
type fifoRef struct {
	client types.NodeID
	seq    uint64
}

// clientState is the per-client slice of the pool. hwm is the highest
// executed seq; executed is a fixed-size ring of the most recent executions
// (the replay window); tokens/refill implement the admission rate limit.
type clientState struct {
	pending  map[uint64]types.Digest
	hwm      uint64
	executed []Executed // ring buffer, next is the write cursor
	next     int
	tokens   float64
	refill   time.Time
}

// New builds a pool, applying defaults for unset Config fields.
func New(cfg Config) *Pool {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.PerClientRate == 0 {
		cfg.PerClientRate = DefaultPerClientRate
	}
	if cfg.PerClientBurst <= 0 {
		cfg.PerClientBurst = DefaultPerClientBurst
	}
	if cfg.ReplayWindow <= 0 {
		cfg.ReplayWindow = DefaultReplayWindow
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Pool{cfg: cfg, clients: make(map[types.NodeID]*clientState)}
}

// Admit classifies one inbound request. The digest must be the batch's
// canonical digest; callers authenticate the client (signature verification)
// before admitting, so a spoofed Client field cannot poison another client's
// dedup state. For Replayed, the returned entry is non-nil when the
// execution is still inside the replay window — the caller should re-reply
// from it.
func (p *Pool) Admit(client types.NodeID, seq uint64, digest types.Digest) (Verdict, *Executed) {
	p.mu.Lock()
	defer p.mu.Unlock()

	st := p.clients[client]
	if st == nil {
		st = &clientState{
			pending:  make(map[uint64]types.Digest),
			executed: make([]Executed, 0, p.cfg.ReplayWindow),
			tokens:   float64(p.cfg.PerClientBurst),
			refill:   p.cfg.Now(),
		}
		p.clients[client] = st
	}

	// Already executed: re-reply if the window still remembers the outcome.
	if e := st.lookup(seq); e != nil {
		p.stats.Replayed++
		cp := *e
		return Replayed, &cp
	}
	if seq <= st.hwm {
		// Older than the window tracks; it (or a successor) executed, and
		// consensus would discard it anyway. No reply data survives.
		p.stats.Replayed++
		return Replayed, nil
	}

	// Already pending: a retry of the in-flight original, or an equivocating
	// client re-binding the seq to a different batch. First writer wins.
	if _, ok := st.pending[seq]; ok {
		p.stats.Duplicate++
		return Duplicate, nil
	}

	// Only genuinely new work charges tokens, so an honest client's retry
	// storm (same seq) never starves its own admissions.
	if p.cfg.PerClientRate > 0 {
		now := p.cfg.Now()
		st.tokens += now.Sub(st.refill).Seconds() * p.cfg.PerClientRate
		if burst := float64(p.cfg.PerClientBurst); st.tokens > burst {
			st.tokens = burst
		}
		st.refill = now
		if st.tokens < 1 {
			p.stats.RateLimited++
			return RateLimited, nil
		}
		st.tokens--
	}

	if p.pending >= p.cfg.Capacity {
		p.evict()
	}
	st.pending[seq] = digest
	p.pending++
	p.fifo = append(p.fifo, fifoRef{client, seq})
	p.compact()
	p.stats.Admitted++
	return Admitted, nil
}

// Precheck consults the pool read-only, BEFORE signature verification: it
// classifies requests that are decidable from already-authenticated state —
// duplicates of a pending verified original, and replays of executed work —
// so callers can shed a retry storm at digest-comparison cost instead of
// paying an ed25519 verification per copy. It never creates or mutates
// per-client state, so a spoofed Client field can neither grow the pool nor
// drain a victim's tokens. Undecided requests (decided == false) must be
// signature-verified and then offered to Admit, which re-checks under the
// lock (a copy that loses the race between Precheck and Admit is simply
// classified there).
//
// Dropping an unverified copy that matches verified state is safe: the
// state it matches was authenticated when written, and the protocol owes no
// processing to redundant copies. The re-reply entry is returned only when
// the digest matches the executed batch — a forged (client, seq) probe with
// different contents is dropped without a reply, so unauthenticated traffic
// cannot use the replay window to bounce replies at a victim client.
// Counters are updated for decided requests, so shed storms stay visible in
// Stats.
func (p *Pool) Precheck(client types.NodeID, seq uint64, digest types.Digest) (verdict Verdict, exec *Executed, decided bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.clients[client]
	if st == nil {
		return Admitted, nil, false
	}
	if e := st.lookup(seq); e != nil {
		p.stats.Replayed++
		if e.Digest == digest {
			cp := *e
			return Replayed, &cp, true
		}
		return Replayed, nil, true
	}
	if seq <= st.hwm {
		p.stats.Replayed++
		return Replayed, nil, true
	}
	if _, ok := st.pending[seq]; ok {
		p.stats.Duplicate++
		return Duplicate, nil, true
	}
	return Admitted, nil, false
}

// RequestStatus classifies what the pool knows about one (client, seq) when
// queried out of band — the RPC front door's status endpoint, where a client
// polls for the fate of a submit instead of waiting on a transport reply.
type RequestStatus int

// Lookup outcomes.
const (
	// StatusUnknown means the pool has no record: never admitted, or
	// admitted so long ago that both the pending set and the replay window
	// have forgotten it.
	StatusUnknown RequestStatus = iota
	// StatusPending means the request was admitted and is in flight through
	// consensus.
	StatusPending
	// StatusExecuted means the request (or a successor with a higher seq)
	// has executed.
	StatusExecuted
)

// String returns the status's stable lower-case name.
func (s RequestStatus) String() string {
	switch s {
	case StatusUnknown:
		return "unknown"
	case StatusPending:
		return "pending"
	case StatusExecuted:
		return "executed"
	}
	return "invalid"
}

// Lookup reports what the pool knows about one (client, seq), without
// mutating any state: no token charge, no per-client state creation, no
// counter updates — so it is safe to expose to unauthenticated pollers. The
// returned entry is non-nil only when the execution is still inside the
// replay window (it is a copy; callers may retain it).
func (p *Pool) Lookup(client types.NodeID, seq uint64) (RequestStatus, *Executed) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.clients[client]
	if st == nil {
		return StatusUnknown, nil
	}
	if e := st.lookup(seq); e != nil {
		cp := *e
		return StatusExecuted, &cp
	}
	if seq <= st.hwm {
		return StatusExecuted, nil
	}
	if _, ok := st.pending[seq]; ok {
		return StatusPending, nil
	}
	return StatusUnknown, nil
}

// MarkExecuted feeds one execution back into the pool: the pending entry (if
// any) is released and the outcome is remembered in the client's replay
// window. Safe to call for batches the pool never admitted (bootstrap
// replays, catch-up imports): the window is updated regardless, so later
// retries still resolve as Replayed.
func (p *Pool) MarkExecuted(client types.NodeID, seq uint64, digest types.Digest, txnCount int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.clients[client]
	if st == nil {
		st = &clientState{
			pending:  make(map[uint64]types.Digest),
			executed: make([]Executed, 0, p.cfg.ReplayWindow),
			tokens:   float64(p.cfg.PerClientBurst),
			refill:   p.cfg.Now(),
		}
		p.clients[client] = st
	}
	if _, ok := st.pending[seq]; ok {
		delete(st.pending, seq)
		p.pending--
	}
	if st.lookup(seq) != nil {
		return // already recorded (duplicate execution feeds, e.g. re-imports)
	}
	e := Executed{Seq: seq, Digest: digest, TxnCount: txnCount}
	if len(st.executed) < p.cfg.ReplayWindow {
		st.executed = append(st.executed, e)
	} else {
		st.executed[st.next] = e
		st.next = (st.next + 1) % p.cfg.ReplayWindow
	}
	if seq > st.hwm {
		st.hwm = seq
	}
}

// lookup returns the replay-window entry for seq, or nil.
func (st *clientState) lookup(seq uint64) *Executed {
	for i := range st.executed {
		if st.executed[i].Seq == seq {
			return &st.executed[i]
		}
	}
	return nil
}

// evict drops the oldest pending request (FIFO, as admission order is the
// only fair priority among equally-paying clients), skipping refs gone stale
// since admission. Called with p.mu held and p.pending > 0.
func (p *Pool) evict() {
	for p.head < len(p.fifo) {
		ref := p.fifo[p.head]
		p.head++
		st := p.clients[ref.client]
		if st == nil {
			continue
		}
		if _, ok := st.pending[ref.seq]; !ok {
			continue // stale: executed or already evicted
		}
		delete(st.pending, ref.seq)
		p.pending--
		p.stats.Evicted++
		return
	}
}

// compact bounds the fifo slice: executed requests leave stale refs behind,
// and without eviction pressure those would accumulate forever. Rebuilding
// once the slice is 4× the live set keeps amortized cost O(1) per admission.
func (p *Pool) compact() {
	if len(p.fifo)-p.head <= 4*p.cfg.Capacity && p.head <= len(p.fifo)/2 {
		return
	}
	live := p.fifo[p.head:]
	out := p.fifo[:0]
	for _, ref := range live {
		if st := p.clients[ref.client]; st != nil {
			if _, ok := st.pending[ref.seq]; ok {
				out = append(out, ref)
			}
		}
	}
	p.fifo, p.head = out, 0
}

// Len returns the number of pending (admitted, not yet executed) requests.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pending
}

// Clients returns how many client identities the pool currently tracks.
func (p *Pool) Clients() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.clients)
}

// Stats returns a snapshot of the admission counters.
func (p *Pool) Stats() metrics.MempoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
