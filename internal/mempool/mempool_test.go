package mempool_test

import (
	"testing"
	"time"

	"resilientdb/internal/mempool"
	"resilientdb/internal/types"
)

const client = types.ClientIDBase + 7

func dig(b byte) types.Digest {
	var d types.Digest
	d[0] = b
	return d
}

func TestAdmitDedupReplayCycle(t *testing.T) {
	p := mempool.New(mempool.Config{})

	if v, _ := p.Admit(client, 1, dig(1)); v != mempool.Admitted {
		t.Fatalf("first sighting: %v", v)
	}
	if v, _ := p.Admit(client, 1, dig(1)); v != mempool.Duplicate {
		t.Fatalf("retry while pending: %v", v)
	}
	// Equivocation: same seq, different contents. First writer wins.
	if v, _ := p.Admit(client, 1, dig(9)); v != mempool.Duplicate {
		t.Fatalf("equivocation while pending: %v", v)
	}

	p.MarkExecuted(client, 1, dig(1), 3)
	if p.Len() != 0 {
		t.Fatalf("pending after execution: %d", p.Len())
	}
	v, e := p.Admit(client, 1, dig(1))
	if v != mempool.Replayed || e == nil {
		t.Fatalf("retry after execution: %v, %v", v, e)
	}
	if e.Digest != dig(1) || e.TxnCount != 3 || e.Seq != 1 {
		t.Fatalf("replay entry: %+v", *e)
	}

	st := p.Stats()
	if st.Admitted != 1 || st.Duplicate != 2 || st.Replayed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestReplayWindowEviction(t *testing.T) {
	p := mempool.New(mempool.Config{ReplayWindow: 4})
	for seq := uint64(1); seq <= 10; seq++ {
		p.Admit(client, seq, dig(byte(seq)))
		p.MarkExecuted(client, seq, dig(byte(seq)), 1)
	}
	// Recent executions re-reply; ones pushed out of the window are still
	// recognized as replayed (seq <= hwm) but carry no reply data.
	if v, e := p.Admit(client, 10, dig(10)); v != mempool.Replayed || e == nil {
		t.Fatalf("in-window replay: %v, %v", v, e)
	}
	if v, e := p.Admit(client, 2, dig(2)); v != mempool.Replayed || e != nil {
		t.Fatalf("out-of-window replay: %v, %v", v, e)
	}
}

func TestRateLimit(t *testing.T) {
	now := time.Unix(0, 0)
	p := mempool.New(mempool.Config{
		PerClientRate:  10,
		PerClientBurst: 2,
		Now:            func() time.Time { return now },
	})
	for seq := uint64(1); seq <= 2; seq++ {
		if v, _ := p.Admit(client, seq, dig(byte(seq))); v != mempool.Admitted {
			t.Fatalf("seq %d within burst: %v", seq, v)
		}
	}
	if v, _ := p.Admit(client, 3, dig(3)); v != mempool.RateLimited {
		t.Fatalf("burst exhausted: %v", v)
	}
	// Retries of admitted work are free: dedup answers before the bucket.
	if v, _ := p.Admit(client, 1, dig(1)); v != mempool.Duplicate {
		t.Fatal("retry charged the bucket")
	}
	// Other clients have their own buckets.
	if v, _ := p.Admit(client+1, 1, dig(1)); v != mempool.Admitted {
		t.Fatal("bucket shared across clients")
	}
	now = now.Add(100 * time.Millisecond) // refills 1 token at 10/s
	if v, _ := p.Admit(client, 3, dig(3)); v != mempool.Admitted {
		t.Fatal("bucket did not refill")
	}
	if got := p.Stats().RateLimited; got != 1 {
		t.Fatalf("rate-limited count: %d", got)
	}
}

func TestCapacityEvictsOldest(t *testing.T) {
	p := mempool.New(mempool.Config{Capacity: 3, PerClientRate: -1})
	for seq := uint64(1); seq <= 3; seq++ {
		p.Admit(client, seq, dig(byte(seq)))
	}
	if v, _ := p.Admit(client, 4, dig(4)); v != mempool.Admitted {
		t.Fatal("admission beyond capacity must evict, not reject")
	}
	if p.Len() != 3 {
		t.Fatalf("pool over capacity: %d", p.Len())
	}
	// seq 1 was evicted: its retry is new work again, evicting seq 2.
	if v, _ := p.Admit(client, 1, dig(1)); v != mempool.Admitted {
		t.Fatal("evicted request not re-admittable")
	}
	if v, _ := p.Admit(client, 3, dig(3)); v != mempool.Duplicate {
		t.Fatal("surviving request lost its pending entry")
	}
	if got := p.Stats().Evicted; got != 2 {
		t.Fatalf("evicted count: %d", got)
	}
}

// TestManyClientsBoundedPending holds the pool at saturation across many
// client identities and checks the pending set honors capacity while every
// identity stays tracked (replay windows are per client by design).
func TestManyClientsBoundedPending(t *testing.T) {
	p := mempool.New(mempool.Config{Capacity: 64, PerClientRate: -1})
	for i := 0; i < 1000; i++ {
		id := types.ClientIDBase + types.NodeID(i)
		for seq := uint64(1); seq <= 5; seq++ {
			p.Admit(id, seq, dig(byte(seq)))
		}
	}
	if p.Len() > 64 {
		t.Fatalf("pending %d exceeds capacity", p.Len())
	}
	if p.Clients() != 1000 {
		t.Fatalf("tracked clients: %d", p.Clients())
	}
}

func TestMarkExecutedWithoutAdmission(t *testing.T) {
	p := mempool.New(mempool.Config{})
	// Bootstrap/catch-up feeds executions the pool never admitted.
	p.MarkExecuted(client, 5, dig(5), 2)
	if v, e := p.Admit(client, 5, dig(5)); v != mempool.Replayed || e == nil {
		t.Fatalf("imported execution not replayable: %v, %v", v, e)
	}
}

func TestPrecheckShedsWithoutState(t *testing.T) {
	p := mempool.New(mempool.Config{})

	// Unknown client and unknown seq: undecided, and — critically — no
	// per-client state may be created for unauthenticated traffic.
	if _, _, decided := p.Precheck(client, 1, dig(1)); decided {
		t.Fatal("fresh request decided by precheck")
	}
	if p.Clients() != 0 {
		t.Fatalf("precheck created client state: %d clients", p.Clients())
	}

	p.Admit(client, 1, dig(1))

	// Pending duplicate: shed before signature verification.
	if v, _, decided := p.Precheck(client, 1, dig(1)); !decided || v != mempool.Duplicate {
		t.Fatalf("pending duplicate: decided=%v verdict=%v", decided, v)
	}
	// Equivocating contents for the pending seq shed the same way.
	if v, _, decided := p.Precheck(client, 1, dig(9)); !decided || v != mempool.Duplicate {
		t.Fatalf("pending equivocation: decided=%v verdict=%v", decided, v)
	}
	// A fresh seq stays undecided (it must pay verification and rate limit).
	if _, _, decided := p.Precheck(client, 2, dig(2)); decided {
		t.Fatal("fresh seq decided by precheck")
	}

	p.MarkExecuted(client, 1, dig(1), 3)

	// Matching replay re-replies from the window without verification…
	v, e, decided := p.Precheck(client, 1, dig(1))
	if !decided || v != mempool.Replayed || e == nil || e.Digest != dig(1) || e.TxnCount != 3 {
		t.Fatalf("executed replay: decided=%v verdict=%v entry=%+v", decided, v, e)
	}
	// …but a forged probe with different contents gets no reply bounce.
	if v, e, decided := p.Precheck(client, 1, dig(9)); !decided || v != mempool.Replayed || e != nil {
		t.Fatalf("forged probe: decided=%v verdict=%v entry=%v", decided, v, e)
	}

	st := p.Stats()
	if st.Duplicate != 2 || st.Replayed != 2 {
		t.Fatalf("precheck not counted: %+v", st)
	}
}
