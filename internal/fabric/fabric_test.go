package fabric_test

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/fabric"
	"resilientdb/internal/types"
)

func startFabric(t *testing.T, z, n int) *fabric.Fabric {
	t.Helper()
	return fabric.New(fabric.Config{
		Topo:          config.NewTopology(z, n),
		BatchSize:     5,
		Records:       256,
		LocalTimeout:  400 * time.Millisecond,
		RemoteTimeout: 700 * time.Millisecond,
	})
}

func TestFabricEndToEnd(t *testing.T) {
	f := startFabric(t, 2, 4)
	defer f.Stop()

	var wg sync.WaitGroup
	for ci := 0; ci < 2; ci++ {
		ci := ci
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := f.NewClient(ci)
			defer cl.Close()
			for b := 0; b < 6; b++ {
				txns := []types.Transaction{
					{Key: uint64(ci*1000 + b*2), Value: uint64(b)},
					{Key: uint64(ci*1000 + b*2 + 1), Value: uint64(b)},
				}
				if err := cl.Submit(txns, 20*time.Second); err != nil {
					t.Errorf("client %d batch %d: %v", ci, b, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	time.Sleep(300 * time.Millisecond)
	f.Stop()

	topo := config.NewTopology(2, 4)
	ref := f.Replica(topo.ReplicaID(0, 0))
	if ref.Ledger().Height() == 0 {
		t.Fatal("empty ledger after submissions")
	}
	if err := ref.Ledger().Verify(); err != nil {
		t.Fatalf("ledger verify: %v", err)
	}
	for _, id := range topo.AllReplicas() {
		r := f.Replica(id)
		if r.Ledger().Head() != ref.Ledger().Head() {
			t.Errorf("%v ledger head differs (h=%d vs %d)",
				id, r.Ledger().Height(), ref.Ledger().Height())
		}
		if r.Store().Digest() != ref.Store().Digest() {
			t.Errorf("%v store digest differs", id)
		}
	}
}

func TestFabricExecuteHook(t *testing.T) {
	var mu sync.Mutex
	executed := make(map[types.NodeID]int)
	f := fabric.New(fabric.Config{
		Topo:      config.NewTopology(1, 4),
		BatchSize: 4,
		Records:   64,
		OnExecute: func(replica types.NodeID, _ uint64, _ types.ClusterID, batch types.Batch) {
			if !batch.NoOp {
				mu.Lock()
				executed[replica] += batch.Len()
				mu.Unlock()
			}
		},
	})
	defer f.Stop()
	cl := f.NewClient(0)
	defer cl.Close()
	if err := cl.Submit([]types.Transaction{{Key: 1, Value: 2}, {Key: 3, Value: 4}}, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	hooked := 0
	for _, n := range executed {
		if n >= 2 {
			hooked++
		}
	}
	if hooked < 3 { // f+1 = 2 needed for the reply; most replicas execute
		t.Errorf("execute hook fired at %d replicas", hooked)
	}
}

func TestFabricPrimaryCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time recovery test")
	}
	f := startFabric(t, 2, 4)
	defer f.Stop()
	topo := config.NewTopology(2, 4)

	cl := f.NewClient(0)
	defer cl.Close()
	if err := cl.Submit([]types.Transaction{{Key: 1, Value: 1}}, 20*time.Second); err != nil {
		t.Fatalf("pre-crash: %v", err)
	}

	f.Crash(topo.ReplicaID(0, 0))

	for b := 0; b < 3; b++ {
		if err := cl.Submit([]types.Transaction{{Key: uint64(10 + b), Value: 1}}, 60*time.Second); err != nil {
			t.Fatalf("post-crash batch %d: %v", b, err)
		}
	}
	if v := f.Replica(topo.ReplicaID(0, 1)).Local().View(); v == 0 {
		t.Error("cluster 0 never changed view after primary crash")
	}
}

// TestFabricNodeLifecycle stops one replica, lets the cluster advance well
// past it, restarts it (amnesia), and requires ledger catch-up to bring it
// back to the live height. It also pins the idempotence contract: double
// StopNode, StartNode on a running node, and Fabric.Stop after an individual
// StopNode must all be safe.
func TestFabricNodeLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time recovery test")
	}
	f := startFabric(t, 2, 4)
	defer f.Stop()
	topo := config.NewTopology(2, 4)
	victim := topo.ReplicaID(0, 3) // a backup; quorum survives without it
	ref := topo.ReplicaID(0, 1)

	cl := f.NewClient(0)
	defer cl.Close()
	submit := func(base, n int) {
		t.Helper()
		for b := 0; b < n; b++ {
			if err := cl.Submit([]types.Transaction{{Key: uint64(base + b), Value: 1}}, 30*time.Second); err != nil {
				t.Fatalf("batch %d: %v", base+b, err)
			}
		}
	}
	submit(0, 3)

	if err := f.StartNode(victim, false); err == nil {
		t.Fatal("StartNode on a running node must fail")
	}
	f.StopNode(victim)
	f.StopNode(victim) // idempotent
	frozen := f.Replica(victim).Ledger().Height()

	submit(100, 6) // the cluster leaves the victim behind
	gap := f.Replica(ref).Ledger().Height()
	if gap <= frozen {
		t.Fatalf("cluster did not advance past the crash (height %d)", gap)
	}

	if err := f.StartNode(victim, false); err != nil {
		t.Fatal(err)
	}
	if err := f.StartNode(victim, false); err == nil {
		t.Fatal("second StartNode must fail while running")
	}
	submit(200, 2) // live traffic gives the restarted replica gap evidence

	deadline := time.Now().Add(60 * time.Second)
	for {
		rl, vl := f.Replica(ref).Ledger(), f.Replica(victim).Ledger()
		if h := rl.Height(); h > 0 && vl.Height() == h && vl.Head() == rl.Head() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("catch-up stuck: victim at %d, cluster at %d",
				f.Replica(victim).Ledger().Height(), f.Replica(ref).Ledger().Height())
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := f.Replica(victim).Ledger().Verify(); err != nil {
		t.Fatal(err)
	}

	// Shutdown after an individual stop must stay clean and idempotent.
	f.StopNode(victim)
	f.Stop()
	f.Stop()
	if err := f.StartNode(victim, false); err == nil {
		t.Fatal("StartNode after Fabric.Stop must fail")
	}
}

// TestFabricStartNodeKeepLedger restarts a crashed replica from its retained
// ledger: the bootstrap replays (and re-verifies) the disk copy, catch-up
// fetches only the missed suffix, and the store state must match replicas
// that executed everything live.
func TestFabricStartNodeKeepLedger(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time recovery test")
	}
	f := startFabric(t, 1, 4)
	defer f.Stop()
	topo := config.NewTopology(1, 4)
	victim := topo.ReplicaID(0, 2)
	ref := topo.ReplicaID(0, 1)

	cl := f.NewClient(0)
	defer cl.Close()
	for b := 0; b < 4; b++ {
		if err := cl.Submit([]types.Transaction{{Key: uint64(b), Value: 9}}, 30*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	f.StopNode(victim)
	frozen := f.Replica(victim).Ledger().Height()
	for b := 0; b < 6; b++ {
		if err := cl.Submit([]types.Transaction{{Key: uint64(100 + b), Value: 9}}, 30*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.StartNode(victim, true); err != nil {
		t.Fatal(err)
	}
	// The bootstrap replay runs on the restarted worker; give it a moment.
	bootDeadline := time.Now().Add(10 * time.Second)
	for f.Replica(victim).Ledger().Height() < frozen {
		if time.Now().After(bootDeadline) {
			t.Fatalf("bootstrap lost the preserved chain: height %d < %d",
				f.Replica(victim).Ledger().Height(), frozen)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for b := 0; b < 2; b++ {
		if err := cl.Submit([]types.Transaction{{Key: uint64(200 + b), Value: 9}}, 30*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		rl, vl := f.Replica(ref).Ledger(), f.Replica(victim).Ledger()
		if h := rl.Height(); h > 0 && vl.Height() == h && vl.Head() == rl.Head() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("catch-up stuck: victim at %d, cluster at %d",
				f.Replica(victim).Ledger().Height(), f.Replica(ref).Ledger().Height())
		}
		time.Sleep(50 * time.Millisecond)
	}
	f.Stop()
	if got, want := f.Replica(victim).Store().Digest(), f.Replica(ref).Store().Digest(); got != want {
		t.Error("restarted replica's store diverged from the cluster's")
	}
}

func TestFabricBatchingViaSubmitTxns(t *testing.T) {
	f := startFabric(t, 1, 4)
	defer f.Stop()
	topo := config.NewTopology(1, 4)
	node := f.Node(topo.ReplicaID(0, 0))
	txns := make([]types.Transaction, 20)
	for i := range txns {
		txns[i] = types.Transaction{Key: uint64(i), Value: uint64(i)}
	}
	node.SubmitTxns(txns)
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if f.Replica(topo.ReplicaID(0, 1)).ExecutedTxns() >= 20 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("batching stage did not drive execution: %d txns",
		f.Replica(topo.ReplicaID(0, 1)).ExecutedTxns())
}

// TestFabricSnapshotGC runs a disk-backed deployment with aggressive
// checkpointing (snapshot every 2 rounds, tiny segments) under enough load
// to cross several checkpoints, then asserts the bounded-history loop end
// to end: snapshots are captured and archived, segments below the stable
// checkpoint are reclaimed, and every replica's on-disk segment count stays
// within the retention budget — the disk-usage bound the subsystem exists
// to provide.
func TestFabricSnapshotGC(t *testing.T) {
	const retain = 2
	topo := config.NewTopology(2, 4)
	dataDir := t.TempDir()
	f := fabric.New(fabric.Config{
		Topo:             topo,
		BatchSize:        2,
		Records:          256,
		LocalTimeout:     400 * time.Millisecond,
		RemoteTimeout:    700 * time.Millisecond,
		DataDir:          dataDir,
		DiskSegmentBytes: 512,
		DiskGroupCommit:  2 * time.Millisecond,
		SnapshotInterval: 2,
		RetainSegments:   retain,
	})
	defer f.Stop()

	cl := f.NewClient(0)
	for b := 0; b < 30; b++ {
		txns := []types.Transaction{{Key: uint64(b), Value: uint64(b)}}
		if err := cl.Submit(txns, 20*time.Second); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}
	cl.Close()

	// Snapshots publish only once a stable PBFT checkpoint covers them;
	// give the checkpoint exchange a beat to settle before stopping.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if st := f.Stats().Snapshots; st.Written > 0 && st.SegmentsReclaimed > 0 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	f.Stop()

	st := f.Stats().Snapshots
	if st.Written == 0 {
		t.Fatalf("30 rounds at snapshot-interval 2 wrote no snapshots: %+v", st)
	}
	if st.SegmentsReclaimed == 0 || st.BytesReclaimed == 0 {
		t.Fatalf("checkpoints advanced but GC reclaimed nothing: %+v", st)
	}
	if st.StoreErrs != 0 || st.Rejected != 0 {
		t.Fatalf("healthy run reported store errors or rejected snapshots: %+v", st)
	}
	// The literal disk bound, per replica: the retained segments plus the
	// suffix accumulated since the last stable checkpoint (snapshots lag
	// the tip by up to CheckpointInterval rounds of blocks; at z=2 and
	// ~2 blocks per 512-byte segment that is a handful of segments, never
	// the whole chain).
	for _, id := range topo.AllReplicas() {
		segs, err := filepath.Glob(filepath.Join(dataDir, fmt.Sprintf("node-%d", int(id)), "seg-*.rdb"))
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) > retain+12 {
			t.Errorf("replica %d holds %d segments; retention budget is %d plus a stable-checkpoint lag",
				id, len(segs), retain)
		}
		arch, err := filepath.Glob(filepath.Join(dataDir, fmt.Sprintf("node-%d", int(id)), "snapshots", "snap-*.man"))
		if err != nil {
			t.Fatal(err)
		}
		if len(arch) == 0 || len(arch) > 2 {
			t.Errorf("replica %d archives %d checkpoints, want 1–2 (archive retention)", id, len(arch))
		}
	}
}
