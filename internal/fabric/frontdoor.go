package fabric

import (
	"errors"
	"fmt"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/crypto"
	"resilientdb/internal/ledger"
	"resilientdb/internal/mempool"
	"resilientdb/internal/pbft"
	"resilientdb/internal/proto"
	"resilientdb/internal/types"
)

// This file is the fabric's client-facing front door: the entry points an
// RPC server (package rpc) uses to inject signed client requests and to
// answer proof-carrying reads, without touching the replica transport. Both
// paths run the same authentication and admission machinery as
// transport-delivered traffic — the front door is a second doorway into the
// Figure 9 pipeline, not a bypass around it.

// ErrBadSignature reports a front-door submit whose client signature failed
// verification. The request was not admitted; the rejection is counted in
// the node's VerifyReject drop counter like any other forged message.
var ErrBadSignature = errors.New("fabric: client request signature verification failed")

// ErrNodeStopped reports a front-door call against a node whose pipeline has
// shut down.
var ErrNodeStopped = errors.New("fabric: node stopped")

// ErrReadTimeout reports a proven read that expired before the worker loop
// got to it (the worker drains consensus work first; a saturated node can
// starve reads).
var ErrReadTimeout = errors.New("fabric: proven read timed out")

// ID returns the node's replica identifier.
func (n *Node) ID() types.NodeID { return n.id }

// Height returns the node's current ledger height. The ledger is internally
// locked, so this is safe from any goroutine.
func (n *Node) Height() uint64 { return n.replica.Ledger().Height() }

// Head returns the hash of the node's head ledger block (zero for an empty
// chain).
func (n *Node) Head() types.Digest { return n.replica.Ledger().Head() }

// ExecutedRound returns the highest consensus round the node has executed.
func (n *Node) ExecutedRound() uint64 { return n.replica.ExecutedRound() }

// BlockAt returns the ledger block at height h — with its commit
// certificate, so callers can serve it as a proof — or nil when h is beyond
// the head or pruned below the retention base.
func (n *Node) BlockAt(h uint64) *ledger.Block { return n.replica.Ledger().Block(h) }

// SubmitRequest admits one signed client request arriving from outside the
// replica transport (the RPC front door). It runs the exact admission path
// transport-delivered requests take — read-only Precheck to shed retry
// storms before paying signature verification, ed25519 verification of the
// client's signature, then Admit for dedup/replay/rate-limit classification
// — and hands admitted requests to the worker loop. The verdict tells the
// caller what happened (Admitted, Duplicate, Replayed, RateLimited); for
// Replayed the returned entry, when non-nil, is the replay window's record
// of the original execution, from which a reply can be re-served without
// re-executing.
func (n *Node) SubmitRequest(req *pbft.Request) (mempool.Verdict, *mempool.Executed, error) {
	b := &req.Batch
	digest := b.Digest()
	if verdict, exec, decided := n.pool.Precheck(b.Client, b.Seq, digest); decided {
		return verdict, exec, nil
	}
	if n.replica.PreVerify(n.env.suite, b.Client, req) != proto.VerdictVerified {
		n.drops.VerifyReject.Add(1)
		return 0, nil, ErrBadSignature
	}
	verdict, exec := n.pool.Admit(b.Client, b.Seq, digest)
	if verdict == mempool.Admitted {
		n.post(func() { n.replica.ReceiveVerified(b.Client, req) })
	}
	return verdict, exec, nil
}

// RequestStatus reports what this node knows about one (client, seq): still
// pending in consensus, executed (with the replay-window record when it is
// still inside the window), or unknown. It is the polling half of the RPC
// submit flow and never mutates admission state.
func (n *Node) RequestStatus(client types.NodeID, seq uint64) (mempool.RequestStatus, *mempool.Executed) {
	return n.pool.Lookup(client, seq)
}

// ReadState is one replica's signed attestation of a key's value at a ledger
// position: the payload of a proof-carrying read. The proof has two layers —
// the replica's signature over ReadStatePayload binds every field (including
// the head block's hash) to the replica's identity, and the embedded head
// block's commit certificate proves, without trusting this replica, that a
// quorum committed that chain position. A client that verifies both
// (VerifyReadState) gets Byzantine-evident reads from a single replica: a
// lying replica must either break ed25519 or present a certificate its
// cluster never signed.
type ReadState struct {
	// Replica is the attesting replica.
	Replica types.NodeID
	// Key is the key that was read.
	Key uint64
	// Value is the key's value; zero when Found is false.
	Value uint64
	// Found reports whether the key exists in the state machine.
	Found bool
	// Height is the ledger height at the moment of the read.
	Height uint64
	// Round is the highest consensus round executed at the moment of the
	// read.
	Round uint64
	// StateDigest is the full state-machine digest at the moment of the
	// read (the checkpoint digest other replicas would agree on).
	StateDigest types.Digest
	// Applied is the number of transactions applied to the state machine.
	Applied uint64
	// Block is the head ledger block, carried with its commit certificate so
	// the reader can verify quorum commitment independently. Nil only when
	// the chain is empty (Height == 0).
	Block *ledger.Block
	// Sig is the replica's signature over ReadStatePayload.
	Sig []byte
}

// ReadStatePayload returns the canonical signing payload for a read
// attestation: every ReadState field in fixed order, with the head block
// represented by its hash (which itself commits to the block's height,
// round, batch, and ancestry).
func ReadStatePayload(rs *ReadState) []byte {
	enc := types.NewEncoder(128)
	enc.String("resilientdb-read-v1")
	enc.I32(int32(rs.Replica))
	enc.U64(rs.Key)
	enc.U64(rs.Value)
	enc.Bool(rs.Found)
	enc.U64(rs.Height)
	enc.U64(rs.Round)
	enc.Digest(rs.StateDigest)
	enc.U64(rs.Applied)
	var head types.Digest
	if rs.Block != nil {
		head = rs.Block.Hash
	}
	enc.Digest(head)
	return enc.Bytes()
}

// ProvenRead reads one key and returns a signed, certificate-carrying
// attestation of its value. The read executes on the worker loop — the
// key-value store is single-threaded and worker-owned, so the front door
// posts a closure instead of touching it directly — which also means the
// result is a consistent cut: value, height, round, and state digest all
// come from the same instant between batch executions.
func (n *Node) ProvenRead(key uint64, timeout time.Duration) (*ReadState, error) {
	done := make(chan *ReadState, 1)
	n.post(func() {
		r := n.replica
		rs := &ReadState{Replica: n.id, Key: key}
		rs.Value, rs.Found = r.Store().Get(key)
		rs.Height = r.Ledger().Height()
		rs.Round = r.ExecutedRound()
		rs.StateDigest = r.Store().Digest()
		rs.Applied = r.Store().Applied()
		if rs.Height > 0 {
			rs.Block = r.Ledger().Block(rs.Height)
		}
		rs.Sig = n.env.suite.Sign(ReadStatePayload(rs))
		done <- rs
	})
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case rs := <-done:
		return rs, nil
	case <-n.quit:
		return nil, ErrNodeStopped
	case <-timer.C:
		return nil, ErrReadTimeout
	}
}

// VerifyReadState checks a read attestation against the deployment's key
// material and topology, trusting nothing but the suite's public keys: the
// replica's signature over the canonical payload, the head block's binding
// to that payload, and the block's commit certificate (quorum signatures
// from the block's cluster). A nil error means tampering with any field —
// value, height, block contents, or certificate — would have required
// forging ed25519 signatures.
func VerifyReadState(suite *crypto.Suite, topo config.Topology, rs *ReadState) error {
	if int(rs.Replica) < 0 || int(rs.Replica) >= topo.TotalReplicas() {
		return fmt.Errorf("fabric: read proof from unknown replica %v", rs.Replica)
	}
	if !suite.Verify(rs.Replica, ReadStatePayload(rs), rs.Sig) {
		return fmt.Errorf("fabric: read proof signature from replica %v does not verify", rs.Replica)
	}
	if rs.Height == 0 {
		if rs.Block != nil {
			return errors.New("fabric: read proof carries a block for an empty chain")
		}
		return nil // empty chain: nothing to certify yet
	}
	blk := rs.Block
	if blk == nil {
		return errors.New("fabric: read proof missing its head block")
	}
	if blk.Height != rs.Height {
		return fmt.Errorf("fabric: read proof block height %d does not match attested height %d", blk.Height, rs.Height)
	}
	cert, ok := blk.Cert.(*pbft.Certificate)
	if !ok || cert == nil {
		return errors.New("fabric: read proof block carries no commit certificate")
	}
	if cert.Seq != blk.Round || cert.Digest != blk.BatchDigest {
		return errors.New("fabric: read proof certificate does not certify its block")
	}
	quorum := topo.PerCluster - topo.F()
	if !cert.Verify(suite, topo.ClusterMembers(int(blk.Cluster)), quorum) {
		return fmt.Errorf("fabric: read proof certificate fails quorum verification for cluster %d", blk.Cluster)
	}
	return nil
}
