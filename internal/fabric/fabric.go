// Package fabric is the real-time ResilientDB node runtime: the
// multi-threaded, pipelined architecture of the paper's Figure 9 built from
// goroutines and bounded channels. Each replica runs
//
//	input → verify pool → (batching) → worker → output
//
// stages: the input goroutine receives messages from the transport and fans
// them out to a pool of verify goroutines that perform every
// state-independent cryptographic check (PBFT commit signatures, preprepare
// digests, GeoBFT certificate and Rvc signatures) concurrently; a sequencer
// re-establishes arrival order — preserving per-sender FIFO — before handing
// verified messages to the worker, which owns the deterministic GeoBFT state
// machine (local replication, certification, ordering and execution) and
// skips re-verification; the batching stage (primaries only) groups client
// transactions into consensus batches; and output goroutines drain the send
// queue to the transport. Timers are real (time.AfterFunc) and re-enter the
// worker queue, so the protocol cores stay single-threaded and identical to
// the ones the simulator drives.
package fabric

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/core"
	"resilientdb/internal/crypto"
	"resilientdb/internal/ledger"
	"resilientdb/internal/ledger/disk"
	"resilientdb/internal/mempool"
	"resilientdb/internal/metrics"
	"resilientdb/internal/pbft"
	"resilientdb/internal/proto"
	"resilientdb/internal/snapshot"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
)

// Config parameterizes a fabric deployment.
type Config struct {
	// Topo is the clustered deployment shape.
	Topo config.Topology
	// BatchSize is the number of client transactions per consensus batch.
	BatchSize int
	// Records sizes the YCSB-style table.
	Records int
	// Mode selects real or fast cryptography (default Real: this is the
	// production path).
	Mode crypto.Mode
	// OnExecute, if set, observes every executed batch at every replica.
	OnExecute func(replica types.NodeID, round uint64, cluster types.ClusterID, batch types.Batch)
	// LocalTimeout / RemoteTimeout mirror core.Config.
	LocalTimeout  time.Duration
	RemoteTimeout time.Duration
	// Latency, if set, injects one-way delays between nodes (emulating a
	// geo-distributed deployment in-process). Ignored when Transport is
	// provided — set the latency on the transport itself instead.
	Latency func(from, to types.NodeID) time.Duration
	// Transport carries messages between nodes. Nil selects an in-process
	// Mem transport (every replica runs in this process); a transport.TCP
	// lets the deployment span separate OS processes. The fabric takes
	// ownership and closes it on Stop.
	Transport transport.Transport
	// Local restricts which replicas this process hosts (multi-process
	// deployments over TCP). Nil means all replicas run here.
	Local []types.NodeID
	// DataDir, when non-empty, makes every replica hosted by this process
	// durable: each gets a segmented append-only block store under
	// DataDir/node-<id> (internal/ledger/disk), certified blocks are
	// persisted as they commit, and a restarted node bootstraps from its
	// on-disk prefix — re-verified like an untrusted peer's chain — before
	// catch-up fills only the genuinely missing suffix. Empty keeps
	// ledgers in memory only (tests, benchmarks).
	DataDir string
	// DiskSegmentBytes caps one segment file of the block store; 0 selects
	// disk.DefaultSegmentBytes. Ignored without DataDir.
	DiskSegmentBytes int64
	// DiskGroupCommit batches block-store fsyncs at this interval instead
	// of syncing every append (trading up to one interval of committed
	// blocks on machine — not process — crash for much higher append
	// throughput). 0 fsyncs on every commit. Ignored without DataDir.
	DiskGroupCommit time.Duration
	// SnapshotInterval enables checkpoint snapshots every N global rounds:
	// each replica captures its executed state, publishes it once covered by
	// a stable local PBFT checkpoint, garbage-collects ledger disk segments
	// wholly below it (bounding storage), and serves it to fresh or
	// far-behind peers, which bootstrap from a verified snapshot plus a
	// short block suffix instead of replaying the whole chain. 0 disables
	// snapshots: history is retained forever.
	SnapshotInterval uint64
	// RetainSegments is the minimum number of ledger disk segments kept
	// through snapshot GC (the block suffix still served to catching-up
	// peers from disk). 0 selects 2. Ignored without DataDir or
	// SnapshotInterval.
	RetainSegments int
	// Clients is how many client identities the deployment provisions keys
	// for (NewClient indices 0..Clients-1). 0 selects 64. Every process of a
	// multi-process deployment must agree on it, like the topology.
	Clients int
	// Mempool tunes each replica's client admission layer (dedup, replay
	// window, rate limiting, capacity); zero fields select the
	// internal/mempool defaults.
	Mempool mempool.Config
	// VerifyWorkers sizes each node's pool of verify goroutines — the
	// parallel input stage of Figure 9 that performs all cryptographic
	// checks before a message reaches the worker. 0 auto-sizes the pool by
	// dividing GOMAXPROCS across the replicas this process hosts, capped at
	// 8 workers per node; when that leaves a node less than 2 dedicated
	// cores' worth of parallelism (a single-CPU host, or an in-process
	// deployment hosting more nodes than cores — the shapes where the pool's
	// queueing overhead measurably regressed throughput) the stage is
	// disabled for that deployment. A negative value disables the stage
	// explicitly, verifying everything inline on the worker (the serial
	// baseline); a positive value forces that per-node pool size.
	VerifyWorkers int
}

// Fabric is a running deployment: this process's replicas plus the shared
// transport.
type Fabric struct {
	cfg Config
	tr  transport.Transport
	dir *crypto.Directory

	mu      sync.Mutex // guards nodes and stopped (per-node restarts mutate the map)
	nodes   map[types.NodeID]*Node
	stopped bool
}

// New builds and starts a fabric deployment, like Open, for configurations
// that cannot fail: it panics on error, which only a disk-backed
// configuration (cfg.DataDir set) can produce. Disk-backed callers should
// use Open.
func New(cfg Config) *Fabric {
	f, err := Open(cfg)
	if err != nil {
		panic("fabric: " + err.Error())
	}
	return f
}

// Open builds and starts a fabric deployment (or, with cfg.Local set, this
// process's slice of one). With cfg.DataDir set, each hosted replica first
// recovers its persisted chain — torn tails truncated, every commit
// certificate re-verified — before joining the network.
func Open(cfg Config) (*Fabric, error) {
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 100
	}
	if cfg.Records == 0 {
		cfg.Records = 1024
	}
	if cfg.LocalTimeout == 0 {
		cfg.LocalTimeout = 2 * time.Second
	}
	if cfg.RemoteTimeout == 0 {
		cfg.RemoteTimeout = 3 * time.Second
	}
	if cfg.Clients == 0 {
		cfg.Clients = 64
	}
	if cfg.RetainSegments == 0 {
		cfg.RetainSegments = 2
	}
	if cfg.VerifyWorkers == 0 {
		hosted := len(cfg.Local)
		if cfg.Local == nil {
			hosted = cfg.Topo.TotalReplicas()
		}
		cfg.VerifyWorkers = autoVerifyWorkers(runtime.GOMAXPROCS(0), hosted)
	}
	tr := cfg.Transport
	if tr == nil {
		mem := transport.NewMem()
		mem.Latency = cfg.Latency
		tr = mem
	}
	f := &Fabric{cfg: cfg, tr: tr, nodes: make(map[types.NodeID]*Node)}

	// Key material covers the whole topology regardless of which replicas
	// run here: it is derived deterministically per node, so every process
	// of a multi-process deployment provisions identical directories.
	f.dir = crypto.NewDirectory(cfg.Mode, append(cfg.Topo.AllReplicas(), clientIDs(cfg.Clients)...))
	local := cfg.Local
	if local == nil {
		local = cfg.Topo.AllReplicas()
	}
	// Two phases: create (and register) every node before starting any, so
	// no node's first sends can race a sibling's transport registration.
	boots := make(map[types.NodeID]func(r *core.Replica), len(local))
	for _, id := range local {
		n, err := newNode(f, id)
		if err != nil {
			for _, created := range f.nodes {
				created.stop()
			}
			tr.Close()
			return nil, err
		}
		boot, err := f.attachDisk(n)
		if err != nil {
			n.stop()
			for _, created := range f.nodes {
				created.stop()
			}
			tr.Close()
			return nil, err
		}
		f.nodes[id] = n
		boots[id] = boot
	}
	for _, id := range local {
		f.nodes[id].start(boots[id])
	}
	return f, nil
}

// autoVerifyWorkers sizes one node's verify pool for Config.VerifyWorkers == 0:
// the machine's cores are divided across the replicas this process hosts, so
// an in-process z×n deployment no longer spawns z×n×GOMAXPROCS verifier
// goroutines fighting over GOMAXPROCS cores — the oversubscription behind the
// ROADMAP-noted mem/z2n4 regression, where every shape pegged its pool to
// GOMAXPROCS regardless of how many siblings shared the host. A node left
// with fewer than 2 cores' worth of parallelism runs serial (-1): without a
// spare core the pool's hand-off and sequencing overhead is pure loss. The
// per-node cap of 8 bounds hand-off fan-in on very wide hosts; measured
// pool speedups flatten well before that (README, Performance).
func autoVerifyWorkers(procs, hostedNodes int) int {
	if hostedNodes < 1 {
		hostedNodes = 1
	}
	per := procs / hostedNodes
	if per < 2 {
		return -1
	}
	if per > 8 {
		per = 8
	}
	return per
}

// nodeDir is one replica's slice of the deployment's data directory.
func (f *Fabric) nodeDir(id types.NodeID) string {
	return filepath.Join(f.cfg.DataDir, fmt.Sprintf("node-%d", int(id)))
}

// attachDisk opens a node's block store (when the deployment is disk-backed),
// recovers its persisted chain, and returns the boot closure that replays the
// chain into the fresh state machine on its worker. wipe discards any
// existing on-disk state first (an amnesia restart: the disk is gone).
//
// The boot closure first installs the newest archived checkpoint snapshot,
// if any — after a GC'd chain's crash the retained segments start above
// genesis, so only the snapshot can seat the prefix — verified like a peer's
// (a tampered archive is rejected and counted), then re-verifies the block
// suffix through the ordinary catch-up Import path (Bootstrap); a chain that
// fails re-verification is dropped from disk too — it could never be served
// to a peer — and counted as a verify rejection. The store attaches to the
// ledger only after the bootstrap settles, aligned to exactly the accepted
// chain, so disk and chain stay in lockstep from the first live append.
func (f *Fabric) attachDisk(n *Node) (func(r *core.Replica), error) {
	if f.cfg.DataDir == "" {
		return nil, nil
	}
	dir := f.nodeDir(n.id)
	st, blocks, err := disk.Open(dir, core.BlockCodec{}, disk.Options{
		SegmentBytes: f.cfg.DiskSegmentBytes,
		GroupCommit:  f.cfg.DiskGroupCommit,
	})
	if err != nil {
		return nil, fmt.Errorf("fabric: node %v block store: %w", n.id, err)
	}
	n.store = st
	return func(r *core.Replica) {
		if n.archive != nil {
			if m, err := r.InstallArchivedSnapshot(n.archive); err != nil {
				// Tampered or corrupt archived snapshot: rejected like a
				// forged peer snapshot. If the segments were GC'd against it
				// they cannot seat either; the truncate below wipes them and
				// the node recovers over the network (snapshot sync included).
				n.drops.VerifyReject.Add(1)
			} else if m != nil {
				// The snapshot seats the prefix; only the suffix above its
				// anchor replays from the segments.
				for len(blocks) > 0 && blocks[0] != nil && blocks[0].Height <= m.Height {
					blocks = blocks[1:]
				}
			}
		}
		if err := r.Bootstrap(blocks); err != nil {
			// The persisted chain did not re-verify: surface it instead of
			// failing silently, drop it, and recover over the network.
			n.drops.VerifyReject.Add(1)
		}
		if h := r.Ledger().Height(); h < st.Height() {
			// Bootstrap accepted less than the store holds (round-boundary
			// trim, or a rejection above): cut the store back so the next
			// persisted block lands at the chain's true next height. A chain
			// rejected wholesale — including GC'd segments orphaned by an
			// unusable snapshot — truncates to zero, wiping the store.
			if err := st.Truncate(h); err != nil {
				// The node runs memory-only; StoreErr reports the gap
				// (the store itself closes with the node on stop).
				r.Ledger().NoteStoreFailure(err)
				return
			}
		} else if h > st.Height() {
			// The store lags the accepted chain (an archived snapshot ahead
			// of surviving segments): re-base it at the chain head; appends
			// continue from there and catch-up persists only new blocks.
			if err := st.Reanchor(h); err != nil {
				r.Ledger().NoteStoreFailure(err)
				return
			}
		}
		r.Ledger().SetStore(st)
	}, nil
}

func clientIDs(n int) []types.NodeID {
	out := make([]types.NodeID, n)
	for i := range out {
		out[i] = config.ClientID(i)
	}
	return out
}

// Node returns the replica runtime for id.
func (f *Fabric) Node(id types.NodeID) *Node {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nodes[id]
}

// Replica returns the GeoBFT state machine of a replica, or nil if the
// replica is not hosted by this process (read access should happen after
// Stop, or tolerate racing the worker). After StartNode the handle refers to
// the restarted replica; a handle obtained earlier keeps pointing at the
// pre-restart state machine, which is useful for reading a crashed node's
// final ledger.
func (f *Fabric) Replica(id types.NodeID) *core.Replica {
	if n := f.Node(id); n != nil {
		return n.replica
	}
	return nil
}

// Stop shuts down every node and the transport. It is idempotent and safe to
// call concurrently with per-node StopNode/StartNode: nodes stopped
// individually are simply stopped again (a no-op).
func (f *Fabric) Stop() {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return
	}
	f.stopped = true
	nodes := make([]*Node, 0, len(f.nodes))
	for _, n := range f.nodes {
		nodes = append(nodes, n)
	}
	f.mu.Unlock()
	for _, n := range nodes {
		n.stop()
	}
	f.tr.Close()
}

// Crash fault-injects a replica: its pipeline halts and all traffic to it
// is silently dropped, like a crashed machine. Equivalent to StopNode.
func (f *Fabric) Crash(id types.NodeID) { f.StopNode(id) }

// StopNode halts one replica's pipeline and detaches its mailbox from the
// transport, modelling a machine crash: in-flight work is abandoned and all
// traffic to the node is dropped. The node's final state (ledger, store)
// stays readable through Replica. Idempotent; unknown ids are a no-op.
func (f *Fabric) StopNode(id types.NodeID) {
	f.mu.Lock()
	n := f.nodes[id]
	if n == nil {
		f.mu.Unlock()
		return
	}
	// Detach under the same lock StartNode registers under, so a concurrent
	// restart can neither double-register the id nor lose its fresh mailbox
	// to a late Unregister.
	if !n.detached {
		n.detached = true
		f.tr.Unregister(id)
	}
	f.mu.Unlock()
	n.stop()
}

// StartNode restarts a replica previously halted with StopNode, modelling a
// machine rejoining the cluster. With keepLedger the new replica bootstraps
// from the stopped replica's chain — read back from its on-disk block store
// when the deployment is disk-backed (Config.DataDir), otherwise handed over
// from the stopped replica's in-memory ledger — and re-verified as if it
// came from an untrusted peer: a chain that fails re-verification is
// discarded, counted as a verify rejection in Stats, and the node falls back
// to network recovery. Without keepLedger the replica starts from nothing
// (amnesia — on a disk-backed deployment its store directory is wiped, the
// disk is literally gone) and recovers the whole chain from its peers
// through ledger catch-up. Either way the replica converges to the live
// height via CatchUpReq/CatchUpResp.
func (f *Fabric) StartNode(id types.NodeID, keepLedger bool) error {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return fmt.Errorf("fabric: deployment is stopped")
	}
	old := f.nodes[id]
	if old == nil {
		f.mu.Unlock()
		return fmt.Errorf("fabric: node %v not hosted here", id)
	}
	if !old.detached {
		f.mu.Unlock()
		return fmt.Errorf("fabric: node %v is still running", id)
	}
	f.mu.Unlock()
	// Let the halted pipeline drain fully before its successor starts, so a
	// stale worker cannot emit traffic concurrently with the reborn node.
	// This also closes the old node's block store, releasing its files for
	// the successor to reopen.
	old.stop()
	var blocks []*ledger.Block
	if keepLedger && f.cfg.DataDir == "" {
		blocks = old.replica.Ledger().Export(1, 0)
	}
	// An amnesia restart loses the disk — segments, base marker and snapshot
	// archive alike — before the successor opens any of them.
	var wipeErr error
	if f.cfg.DataDir != "" && !keepLedger {
		if err := os.RemoveAll(f.nodeDir(id)); err != nil {
			wipeErr = fmt.Errorf("fabric: wiping %s: %w", f.nodeDir(id), err)
		}
	}

	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return fmt.Errorf("fabric: deployment is stopped")
	}
	if f.nodes[id] != old {
		f.mu.Unlock()
		return fmt.Errorf("fabric: node %v was restarted concurrently", id)
	}
	n, err := newNode(f, id) // re-registers id on the transport, under f.mu
	if err != nil {
		f.mu.Unlock()
		return err
	}
	f.nodes[id] = n
	f.mu.Unlock()

	var boot func(r *core.Replica)
	if wipeErr != nil {
		// The old disk state would not die: running the successor against it
		// would resurrect a chain an amnesia restart must not have. Run
		// disk-less; StoreErr reports the durability gap.
		boot = func(r *core.Replica) { r.Ledger().NoteStoreFailure(wipeErr) }
	} else if f.cfg.DataDir != "" {
		var err error
		if boot, err = f.attachDisk(n); err != nil {
			// Run disk-less rather than leave the id dead: the node is
			// already registered, and a refusal here would strand it. The
			// durability gap stays observable through Ledger.StoreErr.
			openErr := err
			boot = func(r *core.Replica) { r.Ledger().NoteStoreFailure(openErr) }
		}
	} else if keepLedger {
		boot = func(r *core.Replica) {
			if err := r.Bootstrap(blocks); err != nil {
				// The preserved chain did not re-verify: surface it instead
				// of failing silently, and recover over the network.
				n.drops.VerifyReject.Add(1)
			}
		}
	}
	n.start(boot)
	return nil
}

// Stats returns a snapshot of the deployment's loss counters — transport-
// level drops (full mailboxes, full send queues, codec failures) plus this
// process's per-node output-queue drops and verify-stage rejections — and
// the aggregated mempool admission counters (admitted, duplicate, replayed,
// rate-limited, evicted) of every hosted replica. Safe to call while the
// fabric is running.
func (f *Fabric) Stats() metrics.DropStats {
	st := f.tr.Stats()
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, n := range f.nodes {
		st.Add(n.drops.Snapshot())
		st.Mempool.Add(n.pool.Stats())
		st.Snapshots.Add(n.SnapshotStats())
	}
	return st
}

// Node is one replica's runtime: the Figure 9 pipeline around a GeoBFT
// state machine.
type Node struct {
	fab     *Fabric
	id      types.NodeID
	replica *core.Replica
	env     *nodeEnv

	inbox   <-chan transport.Envelope
	verifyQ chan *verifyJob // fan-out to the verify pool
	orderQ  chan *verifyJob // same jobs in arrival order, for the sequencer
	workQ   chan func()
	outQ    chan transport.Envelope
	batchQ  chan types.Transaction

	seen  shareCache // verified-certificate dedup (verify pool only)
	pool  *mempool.Pool
	drops metrics.Drops

	// store is the node's durable block store (nil without Config.DataDir).
	// The node owns it: opened before start, closed after the pipeline
	// drains in stop, so no append can race the close.
	store *disk.Store
	// archive is the node's durable snapshot store (nil unless both
	// Config.DataDir and Config.SnapshotInterval are set).
	archive *snapshot.Archive

	// snapshot/GC accounting (atomic: Stats reads them while the node runs)
	segsReclaimed  atomic.Uint64 // disk segments GC'd below checkpoints
	bytesReclaimed atomic.Uint64 // their total size
	snapRejects    atomic.Uint64 // SnapshotResps rejected by the verify pool

	// detached marks the node unregistered from the transport (guarded by
	// the owning Fabric's mu; see StopNode/StartNode).
	detached bool

	quit     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// verifyJob carries one inbound message through the verify pool. The intake
// goroutine enqueues the job on orderQ (arrival order) and verifyQ (any
// order); a pool goroutine fills verdict and signals done; the sequencer
// consumes orderQ, waits on done, and posts surviving messages to the worker
// — so messages enter the state machine in exactly the order they arrived,
// regardless of how verification interleaved.
//
// Jobs are pooled: the sequencer is the last toucher (its receive on done
// happens-after the verifier's send), so it alone recycles them, and done —
// one-buffered, so the verifier never blocks — is drained by that receive
// and reusable as-is. On shutdown paths in-flight jobs are simply abandoned
// to the GC.
type verifyJob struct {
	from    types.NodeID
	msg     types.Message
	verdict proto.Verdict
	done    chan struct{}
}

var verifyJobPool = sync.Pool{
	New: func() any { return &verifyJob{done: make(chan struct{}, 1)} },
}

// archiveRetain is how many checkpoint snapshots each node's archive keeps.
const archiveRetain = 2

func newNode(f *Fabric, id types.NodeID) (*Node, error) {
	var arch *snapshot.Archive
	if f.cfg.DataDir != "" && f.cfg.SnapshotInterval > 0 {
		var err error
		arch, err = snapshot.OpenArchive(filepath.Join(f.nodeDir(id), "snapshots"), archiveRetain)
		if err != nil {
			return nil, fmt.Errorf("fabric: node %v snapshot archive: %w", id, err)
		}
	}
	n := &Node{
		fab:     f,
		id:      id,
		inbox:   f.tr.Register(id),
		workQ:   make(chan func(), 8192),
		outQ:    make(chan transport.Envelope, 8192),
		batchQ:  make(chan types.Transaction, 65536),
		archive: arch,
		quit:    make(chan struct{}),
	}
	if f.cfg.VerifyWorkers > 0 {
		n.verifyQ = make(chan *verifyJob, 4096)
		n.orderQ = make(chan *verifyJob, 4096)
	}
	n.env = &nodeEnv{node: n, start: time.Now()}
	n.env.suite = crypto.NewSuite(f.dir, id, crypto.FreeCosts(), nil)
	n.env.rng = rand.New(rand.NewSource(int64(id) + 1))
	n.pool = mempool.New(f.cfg.Mempool)
	ccfg := core.Config{
		Topo:          f.cfg.Topo,
		Self:          id,
		Records:       f.cfg.Records,
		LocalTimeout:  f.cfg.LocalTimeout,
		RemoteTimeout: f.cfg.RemoteTimeout,
		ClientCluster: func(cl types.NodeID) int {
			return int(cl-types.ClientIDBase) % f.cfg.Topo.Clusters
		},
		// Forged messages rejected inline on the worker (the serial path, or
		// checks the verify pool cannot run statelessly) land in the same
		// counter as pool rejections: nothing vanishes uncounted.
		OnVerifyReject:   func() { n.drops.VerifyReject.Add(1) },
		SnapshotInterval: f.cfg.SnapshotInterval,
		Archive:          arch,
		// A published (durably archived) snapshot is the license to discard
		// history: reclaim every disk segment wholly below it, always keeping
		// RetainSegments so slightly-lagging peers still catch up from disk.
		OnSnapshot: func(m *snapshot.Manifest) {
			if n.store == nil {
				return
			}
			segs, bytes, err := n.store.ReclaimBelow(m.Height, f.cfg.RetainSegments)
			if err != nil {
				// GC failure never loses data — the segments just survive;
				// the DiskBytes gauge surfaces unbounded growth.
				return
			}
			n.segsReclaimed.Add(uint64(segs))
			n.bytesReclaimed.Add(uint64(bytes))
		},
	}
	// Every execution feeds the mempool's replay window, so a retry of an
	// already-executed request is answered from the ledger instead of
	// re-entering consensus; the user hook (if any) rides along.
	hook := f.cfg.OnExecute
	ccfg.OnExecute = func(round uint64, cluster types.ClusterID, batch types.Batch) {
		if !batch.NoOp {
			n.pool.MarkExecuted(batch.Client, batch.Seq, batch.Digest(), batch.Len())
		}
		if hook != nil {
			hook(id, round, cluster, batch)
		}
	}
	n.replica = core.NewReplica(ccfg)
	return n, nil
}

// start launches the node's pipeline. boot, if non-nil, runs on the worker
// right after InitEnv and before any inbound message — StartNode uses it to
// replay a preserved ledger into the fresh state machine.
func (n *Node) start(boot func(r *core.Replica)) {
	n.post(func() { n.replica.InitEnv(n.env) })
	if boot != nil {
		n.post(func() { boot(n.replica) })
	}

	// Worker: owns the state machine; the single consumer of workQ.
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			select {
			case fn := <-n.workQ:
				fn()
			case <-n.quit:
				return
			}
		}
	}()

	if n.verifyQ != nil {
		n.startVerifyPipeline()
	} else {
		// Serial baseline: input threads receive and enqueue directly; all
		// cryptographic checks run on the worker (two threads, as the seed
		// pipeline had) — except client requests, whose signature check and
		// mempool admission happen right here on the input thread: admission
		// is not worker state (the pool has its own lock), and shedding
		// duplicates before the worker is the point of the layer.
		for i := 0; i < 2; i++ {
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				for {
					select {
					case env, ok := <-n.inbox:
						if !ok {
							return
						}
						e := env
						if req, isReq := e.Msg.(*pbft.Request); isReq {
							if n.shedRequest(req) {
								continue
							}
							if n.replica.PreVerify(n.env.suite, e.From, req) == proto.VerdictReject {
								n.drops.VerifyReject.Add(1)
								continue
							}
							if !n.admitRequest(req) {
								continue
							}
							n.post(func() { n.replica.ReceiveVerified(e.From, e.Msg) })
							continue
						}
						n.post(func() { n.replica.Receive(e.From, e.Msg) })
					case <-n.quit:
						return
					}
				}
			}()
		}
	}

	// Batching thread (primaries group client transactions into batches).
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		var buf []types.Transaction
		var seq uint64
		flush := func() {
			if len(buf) == 0 {
				return
			}
			seq++
			b := types.Batch{Client: n.id, Seq: seq, Txns: buf}
			b.PrimeDigest() // cache before the batch crosses goroutines
			buf = nil
			// Sign as this node: when the node is a backup the batch is
			// forwarded to the primary as a pbft.Request, and the primary's
			// admission layer verifies the originator's signature like any
			// client's.
			sig := n.env.suite.Sign(pbft.RequestPayload(&b))
			n.post(func() { n.replica.SubmitBatch(b, sig) })
		}
		ticker := time.NewTicker(5 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case t := <-n.batchQ:
				buf = append(buf, t)
				if len(buf) >= n.fab.cfg.BatchSize {
					flush()
				}
			case <-ticker.C:
				flush()
			case <-n.quit:
				return
			}
		}
	}()

	// Output threads (two, as in Figure 9).
	for i := 0; i < 2; i++ {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			for {
				select {
				case env := <-n.outQ:
					n.fab.tr.Send(n.id, env.From, env.Msg) // From repurposed as dest
				case <-n.quit:
					return
				}
			}
		}()
	}
}

// startVerifyPipeline launches the parallel verification stage: one intake
// goroutine, VerifyWorkers verifier goroutines, and one sequencer. Crypto
// runs concurrently; delivery order into the worker is the arrival order, so
// per-sender FIFO (and the whole-node arrival order) is preserved and the
// state machine behaves exactly as if it had verified inline.
func (n *Node) startVerifyPipeline() {
	// Intake: receive and enqueue in arrival order.
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			select {
			case env, ok := <-n.inbox:
				if !ok {
					return
				}
				// Shed decidable client-request copies here, before they
				// consume a verify-pool slot: under a retry storm the
				// duplicates would otherwise monopolize the pool with
				// signature checks whose outcome cannot matter.
				if req, isReq := env.Msg.(*pbft.Request); isReq && n.shedRequest(req) {
					continue
				}
				j := verifyJobPool.Get().(*verifyJob)
				j.from, j.msg, j.verdict = env.From, env.Msg, proto.VerdictPass
				select {
				case n.orderQ <- j:
				case <-n.quit:
					return
				}
				select {
				case n.verifyQ <- j:
				case <-n.quit:
					return
				}
			case <-n.quit:
				return
			}
		}
	}()

	// Verify pool: all cryptographic checks, concurrently.
	for i := 0; i < n.fab.cfg.VerifyWorkers; i++ {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			for {
				select {
				case j := <-n.verifyQ:
					j.verdict = n.preVerify(j.from, j.msg)
					j.done <- struct{}{}
				case <-n.quit:
					return
				}
			}
		}()
	}

	// Sequencer: re-establish arrival order and feed the worker.
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			select {
			case j := <-n.orderQ:
				select {
				case <-j.done:
				case <-n.quit:
					return
				}
				from, msg, verdict := j.from, j.msg, j.verdict
				j.msg = nil
				verifyJobPool.Put(j)
				switch verdict {
				case proto.VerdictReject:
					n.drops.VerifyReject.Add(1)
					if _, isSnap := msg.(*core.SnapshotResp); isSnap {
						// Tampered snapshot material the pool rejected never
						// reaches the replica's own counter; account it here
						// so Stats.Snapshots.Rejected sees every rejection.
						n.snapRejects.Add(1)
					}
				case proto.VerdictVerified:
					// Authenticated client requests pass the admission layer
					// before reaching the worker; running it here, on the
					// single sequencer goroutine, keeps admission order
					// identical to delivery order.
					if req, isReq := msg.(*pbft.Request); isReq && !n.admitRequest(req) {
						continue
					}
					n.post(func() { n.replica.ReceiveVerified(from, msg) })
				default:
					n.post(func() { n.replica.Receive(from, msg) })
				}
			case <-n.quit:
				return
			}
		}
	}()
}

// preVerify runs the concurrent checks for one message, with a dedup cache
// for certificate shares: the two-phase sharing protocol delivers up to f+1
// copies of each certificate per replica, and verifying n−f ed25519
// signatures per copy would waste most of the pool's CPU.
func (n *Node) preVerify(from types.NodeID, msg types.Message) proto.Verdict {
	if gs, ok := msg.(*core.GlobalShare); ok {
		if key, keyed := core.ShareKey(gs); keyed {
			if n.seen.has(key) {
				return proto.VerdictVerified
			}
			v := n.replica.PreVerify(n.env.suite, from, msg)
			if v == proto.VerdictVerified {
				n.seen.add(key)
			}
			return v
		}
	}
	return n.replica.PreVerify(n.env.suite, from, msg)
}

// shedRequest runs the unauthenticated admission fast path (mempool.Precheck)
// on one inbound client request and reports whether it was fully handled:
// duplicates of verified in-flight work are dropped, and replays whose
// contents match the executed batch are re-answered from the certified
// ledger — all without a signature verification, which is what keeps a
// retry storm from starving consensus traffic of verification capacity.
// Requests it declines to decide continue to signature verification and
// Admit.
func (n *Node) shedRequest(req *pbft.Request) bool {
	b := &req.Batch
	verdict, exec, decided := n.pool.Precheck(b.Client, b.Seq, b.Digest())
	if !decided {
		return false
	}
	if verdict == mempool.Replayed && exec != nil {
		n.env.Send(b.Client, &proto.Reply{
			Client:    b.Client,
			ClientSeq: exec.Seq,
			Replica:   n.id,
			TxnCount:  exec.TxnCount,
			Result:    exec.Digest,
		})
	}
	return true
}

// admitRequest runs one authenticated client request through the node's
// mempool and reports whether it should enter the state machine. Duplicates
// of in-flight work and rate-limited spam are dropped (the pbft layer
// already supervises the admitted original); replays of executed work are
// answered from the certified ledger — the re-reply the paper's retrying
// client needs to converge — when the replay window still remembers the
// outcome. Callers must have verified the client signature first: admission
// writes per-client state, and only authentication keeps a spoofed Client
// field from poisoning another client's dedup window.
func (n *Node) admitRequest(req *pbft.Request) bool {
	b := &req.Batch
	verdict, exec := n.pool.Admit(b.Client, b.Seq, b.Digest())
	switch verdict {
	case mempool.Admitted:
		return true
	case mempool.Replayed:
		if exec != nil {
			n.env.Send(b.Client, &proto.Reply{
				Client:    b.Client,
				ClientSeq: exec.Seq,
				Replica:   n.id,
				TxnCount:  exec.TxnCount,
				Result:    exec.Digest,
			})
		}
	}
	return false
}

// MempoolLen returns the node's count of pending (admitted, not yet
// executed) client requests — the quantity bounded by Config.Mempool's
// capacity.
func (n *Node) MempoolLen() int { return n.pool.Len() }

// MempoolStats returns a snapshot of the node's admission counters.
func (n *Node) MempoolStats() metrics.MempoolStats { return n.pool.Stats() }

// SnapshotStats returns the node's checkpoint/GC counters: replica-level
// snapshot activity, pool-level rejections of tampered snapshot material,
// segment GC totals, the store's current on-disk size, and whether the
// ledger has detached from its store after a persistence failure. Safe to
// call while the node is running.
func (n *Node) SnapshotStats() metrics.SnapshotStats {
	s := metrics.SnapshotStats{
		Written:           n.replica.SnapshotsWritten(),
		Served:            n.replica.SnapshotsServed(),
		Installed:         n.replica.SnapshotsInstalled(),
		Rejected:          n.replica.SnapshotsRejected() + n.snapRejects.Load(),
		SegmentsReclaimed: n.segsReclaimed.Load(),
		BytesReclaimed:    n.bytesReclaimed.Load(),
	}
	if n.store != nil {
		s.DiskBytes = uint64(n.store.Bytes())
	}
	if n.replica.Ledger().StoreErr() != nil {
		s.StoreErrs = 1
	}
	return s
}

// shareCache is a bounded set of verified certificate-share keys shared by
// the verify pool's goroutines. Two generations rotate out old entries so
// memory stays bounded without per-entry bookkeeping; a miss on a previously
// verified share only costs a redundant (correct) re-verification.
type shareCache struct {
	mu        sync.Mutex
	cur, prev map[core.ShareDedupKey]struct{}
}

const shareCacheGen = 4096

func (c *shareCache) has(k core.ShareDedupKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.cur[k]; ok {
		return true
	}
	_, ok := c.prev[k]
	return ok
}

func (c *shareCache) add(k core.ShareDedupKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		c.cur = make(map[core.ShareDedupKey]struct{}, shareCacheGen)
	}
	c.cur[k] = struct{}{}
	if len(c.cur) >= shareCacheGen {
		c.prev, c.cur = c.cur, make(map[core.ShareDedupKey]struct{}, shareCacheGen)
	}
}

func (n *Node) stop() {
	n.stopOnce.Do(func() { close(n.quit) })
	n.wg.Wait()
	if n.store != nil {
		n.store.Close() // idempotent; flushes the last group-commit window
	}
}

func (n *Node) post(fn func()) {
	select {
	case n.workQ <- fn:
	case <-n.quit:
	}
}

// SubmitTxns hands raw client transactions to this node's batching stage
// (application-embedded clients; networked clients go through the
// transport).
func (n *Node) SubmitTxns(txns []types.Transaction) {
	for _, t := range txns {
		select {
		case n.batchQ <- t:
		case <-n.quit:
			return
		}
	}
}

// nodeEnv adapts the pipeline to proto.Env for the state machine.
type nodeEnv struct {
	node  *Node
	suite *crypto.Suite
	rng   *rand.Rand
	start time.Time
}

// ID implements proto.Env.
func (e *nodeEnv) ID() types.NodeID { return e.node.id }

// Now implements proto.Env.
func (e *nodeEnv) Now() time.Duration { return time.Since(e.start) }

// Send implements proto.Env: non-blocking enqueue to the output stage. A
// full output queue behaves like a dropped datagram — but the drop is
// counted, so benchmark runs can report loss.
func (e *nodeEnv) Send(to types.NodeID, m types.Message) {
	select {
	case e.node.outQ <- transport.Envelope{From: to, Msg: m}:
	default:
		e.node.drops.OutQ.Add(1)
	}
}

// SetTimer implements proto.Env with a real timer that re-enters the worker
// queue.
func (e *nodeEnv) SetTimer(d time.Duration, fn func()) proto.Timer {
	var stopped sync.Once
	done := make(chan struct{})
	t := time.AfterFunc(d, func() {
		select {
		case <-done:
		default:
			e.node.post(fn)
		}
	})
	return &realTimer{t: t, stop: func() { stopped.Do(func() { close(done) }) }}
}

type realTimer struct {
	t    *time.Timer
	stop func()
}

func (r *realTimer) Stop() {
	r.stop()
	r.t.Stop()
}

// Defer implements proto.Env.
func (e *nodeEnv) Defer(fn func()) { e.node.post(fn) }

// Charge implements proto.Env (real time: CPU is charged by actually
// spending it).
func (e *nodeEnv) Charge(time.Duration) {}

// Suite implements proto.Env.
func (e *nodeEnv) Suite() *crypto.Suite { return e.suite }

// Rand implements proto.Env.
func (e *nodeEnv) Rand() *rand.Rand { return e.rng }
