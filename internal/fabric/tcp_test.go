package fabric_test

import (
	"sync"
	"testing"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/fabric"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
)

// TestFabricOverTCP runs a z=2, n=4 deployment where every replica (and the
// clients) lives on its own TCP transport, so all protocol traffic crosses
// real loopback sockets through the wire codec, with injected cross-cluster
// latency. All ledgers must converge to identical verified heads.
func TestFabricOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket test")
	}
	topo := config.NewTopology(2, 4)
	ids := topo.AllReplicas()

	// Bring up one transport per node first so the shared address book is
	// complete before any fabric starts sending.
	var mu sync.Mutex
	book := make(map[types.NodeID]string)
	lookup := func(id types.NodeID) string {
		mu.Lock()
		defer mu.Unlock()
		return book[id]
	}
	latency := func(from, to types.NodeID) time.Duration {
		// 5 ms one-way between clusters, LAN-like within one.
		rf, rt := regionOf(topo, from), regionOf(topo, to)
		if rf != rt {
			return 5 * time.Millisecond
		}
		return 0
	}
	transports := make(map[types.NodeID]*transport.TCP, len(ids)+2)
	newTCP := func(id types.NodeID) *transport.TCP {
		tr, err := transport.NewTCP("127.0.0.1:0", lookup)
		if err != nil {
			t.Fatal(err)
		}
		tr.Latency = latency
		mu.Lock()
		book[id] = tr.Addr()
		mu.Unlock()
		transports[id] = tr
		return tr
	}
	for _, id := range ids {
		newTCP(id)
	}
	clientTr := newTCP(config.ClientID(0))
	mu.Lock()
	book[config.ClientID(1)] = clientTr.Addr()
	mu.Unlock()

	// One fabric per replica process-slice, plus a pure client fabric on
	// the clients' transport.
	mkCfg := func(tr transport.Transport, local []types.NodeID) fabric.Config {
		return fabric.Config{
			Topo:          topo,
			BatchSize:     5,
			Records:       256,
			LocalTimeout:  2 * time.Second,
			RemoteTimeout: 3 * time.Second,
			Transport:     tr,
			Local:         local,
		}
	}
	fabrics := make(map[types.NodeID]*fabric.Fabric, len(ids))
	for _, id := range ids {
		fabrics[id] = fabric.New(mkCfg(transports[id], []types.NodeID{id}))
	}
	clientFab := fabric.New(mkCfg(clientTr, []types.NodeID{}))
	stopAll := func() {
		clientFab.Stop()
		for _, f := range fabrics {
			f.Stop()
		}
	}
	defer stopAll()

	var wg sync.WaitGroup
	for ci := 0; ci < 2; ci++ {
		ci := ci
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := clientFab.NewClient(ci)
			defer cl.Close()
			for b := 0; b < 10; b++ {
				txns := []types.Transaction{
					{Key: uint64(ci*1000 + b*2), Value: uint64(b)},
					{Key: uint64(ci*1000 + b*2 + 1), Value: uint64(b)},
				}
				if err := cl.Submit(txns, 30*time.Second); err != nil {
					t.Errorf("client %d batch %d: %v", ci, b, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	time.Sleep(time.Second) // let stragglers execute the last rounds
	stopAll()

	ref := fabrics[ids[0]].Replica(ids[0])
	if ref.Ledger().Height() == 0 {
		t.Fatal("empty ledger after submissions")
	}
	if err := ref.Ledger().Verify(); err != nil {
		t.Fatalf("ledger verify: %v", err)
	}
	for _, id := range ids {
		r := fabrics[id].Replica(id)
		if err := r.Ledger().Verify(); err != nil {
			t.Errorf("%v ledger verify: %v", id, err)
		}
		if r.Ledger().Head() != ref.Ledger().Head() {
			t.Errorf("%v ledger head differs (h=%d vs %d)",
				id, r.Ledger().Height(), ref.Ledger().Height())
		}
		if r.Store().Digest() != ref.Store().Digest() {
			t.Errorf("%v store digest differs", id)
		}
	}
}

func regionOf(topo config.Topology, id types.NodeID) int {
	if id.IsClient() {
		return int(id-types.ClientIDBase) % topo.Clusters
	}
	return int(topo.ClusterOf(id))
}
