package fabric

import (
	"errors"
	"sync"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/pbft"
	"resilientdb/internal/proto"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
)

// Client is a networked fabric client: it submits transaction batches to
// its local cluster and waits for f+1 matching replies, exactly like the
// paper's clients (Section 2.4).
type Client struct {
	fab     *Fabric
	id      types.NodeID
	cluster int
	inbox   <-chan transport.Envelope

	mu      sync.Mutex
	nextSeq uint64
	waiters map[uint64]*waiter

	quit chan struct{}
	wg   sync.WaitGroup
}

type waiter struct {
	acks map[types.NodeID]bool
	done chan struct{}
	need int
}

// NewClient registers client index i (home cluster i mod z) on the fabric.
func (f *Fabric) NewClient(i int) *Client {
	c := &Client{
		fab:     f,
		id:      config.ClientID(i),
		cluster: i % f.cfg.Topo.Clusters,
		waiters: make(map[uint64]*waiter),
		quit:    make(chan struct{}),
	}
	c.inbox = f.tr.Register(c.id)
	c.wg.Add(1)
	go c.loop()
	return c
}

func (c *Client) loop() {
	defer c.wg.Done()
	for {
		select {
		case env, ok := <-c.inbox:
			if !ok {
				return
			}
			rep, isReply := env.Msg.(*proto.Reply)
			if !isReply {
				continue
			}
			if int(c.fab.cfg.Topo.ClusterOf(env.From)) != c.cluster {
				continue // only the local cluster informs us
			}
			c.mu.Lock()
			w := c.waiters[rep.ClientSeq]
			if w != nil && !w.acks[env.From] {
				w.acks[env.From] = true
				if len(w.acks) == w.need {
					close(w.done)
					delete(c.waiters, rep.ClientSeq)
				}
			}
			c.mu.Unlock()
		case <-c.quit:
			return
		}
	}
}

// ErrTimeout is returned when a submission is not confirmed in time.
var ErrTimeout = errors.New("fabric: submission timed out")

// Submit sends one batch of transactions to the client's local cluster and
// blocks until f+1 replicas confirm execution or timeout elapses.
func (c *Client) Submit(txns []types.Transaction, timeout time.Duration) error {
	c.mu.Lock()
	c.nextSeq++
	seq := c.nextSeq
	w := &waiter{
		acks: make(map[types.NodeID]bool),
		done: make(chan struct{}),
		need: c.fab.cfg.Topo.F() + 1,
	}
	c.waiters[seq] = w
	c.mu.Unlock()

	b := types.Batch{Client: c.id, Seq: seq, Txns: txns}
	b.PrimeDigest() // cache before the batch is shared with replica pipelines
	req := &pbft.Request{Batch: b}
	primary := c.fab.cfg.Topo.ReplicaID(c.cluster, 0)
	c.fab.tr.Send(c.id, primary, req)

	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	retryEvery := timeout / 10
	if retryEvery > time.Second {
		retryEvery = time.Second
	}
	retry := time.NewTicker(retryEvery)
	defer retry.Stop()
	for {
		select {
		case <-w.done:
			return nil
		case <-retry.C:
			// Rebroadcast to the whole local cluster; backups forward to the
			// current primary (handles primary failure).
			for _, m := range c.fab.cfg.Topo.ClusterMembers(c.cluster) {
				c.fab.tr.Send(c.id, m, req)
			}
		case <-deadline.C:
			c.mu.Lock()
			delete(c.waiters, seq)
			c.mu.Unlock()
			return ErrTimeout
		case <-c.quit:
			return errors.New("fabric: client closed")
		}
	}
}

// Close stops the client.
func (c *Client) Close() {
	close(c.quit)
	c.wg.Wait()
}
