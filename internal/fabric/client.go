package fabric

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/crypto"
	"resilientdb/internal/pbft"
	"resilientdb/internal/proto"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
)

// Client is a networked fabric client: it submits transaction batches to
// its local cluster and waits for f+1 matching replies, exactly like the
// paper's clients (Section 2.4). Every request is signed with the client's
// provisioned key; replicas verify the signature before admission.
type Client struct {
	fab     *Fabric
	id      types.NodeID
	cluster int
	suite   *crypto.Suite
	inbox   <-chan transport.Envelope

	mu      sync.Mutex
	nextSeq uint64
	waiters map[uint64]*waiter

	quit      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

type waiter struct {
	acks map[types.NodeID]bool
	done chan struct{}
	need int
}

// NewClient registers client index i (home cluster i mod z) on the fabric.
// The index must be below Config.Clients: only provisioned identities have
// signing keys, and replicas reject unauthenticated requests.
func (f *Fabric) NewClient(i int) *Client {
	if i < 0 || i >= f.cfg.Clients {
		panic(fmt.Sprintf("fabric: client index %d outside provisioned range [0,%d)", i, f.cfg.Clients))
	}
	c := &Client{
		fab:     f,
		id:      config.ClientID(i),
		cluster: i % f.cfg.Topo.Clusters,
		waiters: make(map[uint64]*waiter),
		quit:    make(chan struct{}),
	}
	c.suite = crypto.NewSuite(f.dir, c.id, crypto.FreeCosts(), nil)
	c.inbox = f.tr.Register(c.id)
	c.wg.Add(1)
	go c.loop()
	return c
}

func (c *Client) loop() {
	defer c.wg.Done()
	for {
		select {
		case env, ok := <-c.inbox:
			if !ok {
				return
			}
			rep, isReply := env.Msg.(*proto.Reply)
			if !isReply {
				continue
			}
			if int(c.fab.cfg.Topo.ClusterOf(env.From)) != c.cluster {
				continue // only the local cluster informs us
			}
			c.mu.Lock()
			w := c.waiters[rep.ClientSeq]
			if w != nil && !w.acks[env.From] {
				w.acks[env.From] = true
				if len(w.acks) == w.need {
					close(w.done)
					delete(c.waiters, rep.ClientSeq)
				}
			}
			c.mu.Unlock()
		case <-c.quit:
			return
		}
	}
}

// ErrTimeout is returned when a submission is not confirmed in time.
var ErrTimeout = errors.New("fabric: submission timed out")

// Submit sends one batch of transactions to the client's local cluster and
// blocks until f+1 replicas confirm execution or timeout elapses.
func (c *Client) Submit(txns []types.Transaction, timeout time.Duration) error {
	c.mu.Lock()
	c.nextSeq++
	seq := c.nextSeq
	w := &waiter{
		acks: make(map[types.NodeID]bool),
		done: make(chan struct{}),
		need: c.fab.cfg.Topo.F() + 1,
	}
	c.waiters[seq] = w
	c.mu.Unlock()

	b := types.Batch{Client: c.id, Seq: seq, Txns: txns}
	b.PrimeDigest() // cache before the batch is shared with replica pipelines
	req := &pbft.Request{Batch: b, Sig: c.suite.Sign(pbft.RequestPayload(&b))}
	primary := c.fab.cfg.Topo.ReplicaID(c.cluster, 0)
	c.fab.tr.Send(c.id, primary, req)

	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	// A tenth of the timeout, clamped to [10ms, 1s]: NewTicker panics on a
	// sub-nanosecond period, and sub-10ms retries would only storm the
	// cluster with copies it deduplicates anyway.
	retryEvery := timeout / 10
	if retryEvery > time.Second {
		retryEvery = time.Second
	}
	if retryEvery < 10*time.Millisecond {
		retryEvery = 10 * time.Millisecond
	}
	retry := time.NewTicker(retryEvery)
	defer retry.Stop()
	for {
		select {
		case <-w.done:
			return nil
		case <-retry.C:
			// Rebroadcast to the whole local cluster; backups forward to the
			// current primary (handles primary failure).
			for _, m := range c.fab.cfg.Topo.ClusterMembers(c.cluster) {
				c.fab.tr.Send(c.id, m, req)
			}
		case <-deadline.C:
			c.mu.Lock()
			delete(c.waiters, seq)
			c.mu.Unlock()
			return ErrTimeout
		case <-c.quit:
			c.mu.Lock()
			delete(c.waiters, seq)
			c.mu.Unlock()
			return errors.New("fabric: client closed")
		}
	}
}

// Close stops the client. It is idempotent: concurrent and repeated calls
// are safe, and any blocked Submit returns with an error.
func (c *Client) Close() {
	c.closeOnce.Do(func() { close(c.quit) })
	c.wg.Wait()
}
