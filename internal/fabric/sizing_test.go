package fabric

import "testing"

// TestAutoVerifyWorkers pins the verify-pool auto-sizing heuristic. The
// regression it guards: sizing the pool to GOMAXPROCS *per node* meant an
// in-process z2n4 shape on an 8-way host spawned 8 nodes × 8 verifiers — an
// 8× oversubscription whose idle stacks and channel buffers showed up as the
// mem/z2n4 memory regression. The pool budget must be divided across the
// hosted replicas, falling back to the serial inline path when the share
// rounds below two (a pool of one worker adds handoff cost for zero
// parallelism).
func TestAutoVerifyWorkers(t *testing.T) {
	cases := []struct {
		procs, hosted int
		want          int
	}{
		{1, 1, -1}, // single-core container: serial inline verification
		{1, 8, -1}, // single core, whole cluster in-process: still serial
		{8, 8, -1}, // the mem/z2n4 shape: one core per node → serial
		{8, 4, 2},  // two cores per node: smallest useful pool
		{4, 1, 4},  // one hosted replica owns the machine
		{8, 1, 8},  // at the cap exactly
		{16, 1, 8}, // cap: more workers than 8 just adds contention
		{16, 2, 8}, // division result at the cap
		{64, 4, 8}, // division result above the cap
		{3, 1, 3},  // odd counts pass through
		{5, 2, 2},  // integer division, not rounding
		{4, 0, 4},  // hosted floor: a zero-node config sizes as one node
		{2, -3, 2}, // negative hosted counts clamp the same way
		{0, 1, -1}, // degenerate GOMAXPROCS reads stay serial
	}
	for _, c := range cases {
		if got := autoVerifyWorkers(c.procs, c.hosted); got != c.want {
			t.Errorf("autoVerifyWorkers(%d procs, %d hosted) = %d, want %d",
				c.procs, c.hosted, got, c.want)
		}
	}
}
