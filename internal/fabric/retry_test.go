package fabric_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/crypto"
	"resilientdb/internal/fabric"
	"resilientdb/internal/pbft"
	"resilientdb/internal/proto"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
)

// TestRetryStormExactlyOnce is the at-most-once reproducer: a client whose
// retry interval is shorter than commit latency must not get its batch
// executed twice.
//
// The scenario forces the paper's client retry path (Section 2.4) through a
// view change: all pbft.Commit messages are dropped for a window, so the
// first proposal prepares but never commits, progress timers fire, and the
// cluster runs view changes while the client's retries populate every
// backup's forwarded-request buffer. Each new primary then both re-proposes
// the prepared batch from the view-change proofs and adopts the forwarded
// retry copy as fresh work — the same batch at two (or more) sequence
// numbers. When the network heals, every live sequence commits and the batch
// executes once per copy.
func TestRetryStormExactlyOnce(t *testing.T) {
	net := transport.NewFaulty(transport.NewMem(), 1)
	var healed atomic.Bool
	net.SetDrop(func(_, _ types.NodeID, msg types.Message) bool {
		if healed.Load() {
			return false
		}
		_, isCommit := msg.(*pbft.Commit)
		return isCommit
	})

	type execKey struct {
		replica types.NodeID
		client  types.NodeID
		seq     uint64
	}
	var mu sync.Mutex
	execs := make(map[execKey]int)
	f := fabric.New(fabric.Config{
		Topo:          config.NewTopology(1, 4),
		BatchSize:     4,
		Records:       64,
		LocalTimeout:  400 * time.Millisecond,
		RemoteTimeout: 700 * time.Millisecond,
		Transport:     net,
		OnExecute: func(replica types.NodeID, _ uint64, _ types.ClusterID, batch types.Batch) {
			if batch.NoOp {
				return
			}
			mu.Lock()
			execs[execKey{replica, batch.Client, batch.Seq}]++
			mu.Unlock()
		},
	})
	defer f.Stop()

	cl := f.NewClient(0)
	defer cl.Close()

	// Heal only after the retries have reached every backup and at least two
	// view changes have had the chance to re-adopt the forwarded copy.
	go func() {
		time.Sleep(2500 * time.Millisecond)
		healed.Store(true)
	}()

	// timeout/10 = 800ms retry interval: well below the >2.5s commit latency
	// imposed by the drop window, so the request is retried while in flight.
	if err := cl.Submit([]types.Transaction{{Key: 1, Value: 1}}, 8*time.Second); err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Let stragglers (other replicas, late copies) execute, then freeze.
	time.Sleep(700 * time.Millisecond)
	f.Stop()

	mu.Lock()
	defer mu.Unlock()
	if len(execs) == 0 {
		t.Fatal("batch never executed")
	}
	for k, count := range execs {
		if count > 1 {
			t.Errorf("replica %v executed (%v, seq %d) %d times; want exactly once",
				k.replica, k.client, k.seq, count)
		}
	}

	// The storm must be visible in the admission accounting: the request was
	// admitted once per replica, and every further copy was shed as a
	// duplicate (in flight) or a replay (after execution).
	mp := f.Stats().Mempool
	if mp.Admitted == 0 {
		t.Error("no admissions counted")
	}
	if mp.Duplicate+mp.Replayed == 0 {
		t.Errorf("retry storm left no duplicate/replayed trace: %+v", mp)
	}
}

// TestExecutedRequestReReplies drives a client by hand to isolate the
// re-reply path: a request retried after its execution must be answered from
// the certified ledger (fresh f+1 replies) without executing again — the
// convergence a real client needs when its first round of replies was lost.
func TestExecutedRequestReReplies(t *testing.T) {
	tr := transport.NewMem()
	var mu sync.Mutex
	execs := make(map[types.NodeID]int)
	f := fabric.New(fabric.Config{
		Topo:      config.NewTopology(1, 4),
		BatchSize: 4,
		Records:   64,
		Transport: tr,
		OnExecute: func(replica types.NodeID, _ uint64, _ types.ClusterID, batch types.Batch) {
			if !batch.NoOp {
				mu.Lock()
				execs[replica]++
				mu.Unlock()
			}
		},
	})
	defer f.Stop()

	// The fabric derives client keys deterministically, so an out-of-process
	// client can provision the same identity on its own.
	topo := config.NewTopology(1, 4)
	clientID := config.ClientID(0)
	inbox := tr.Register(clientID)
	suite := crypto.NewSuite(crypto.NewDirectory(crypto.Real, []types.NodeID{clientID}),
		clientID, crypto.FreeCosts(), nil)

	b := types.Batch{Client: clientID, Seq: 1, Txns: []types.Transaction{{Key: 1, Value: 9}}}
	b.PrimeDigest()
	req := &pbft.Request{Batch: b, Sig: suite.Sign(pbft.RequestPayload(&b))}
	broadcast := func() {
		for _, m := range topo.ClusterMembers(0) {
			tr.Send(clientID, m, req)
		}
	}
	awaitReplies := func(phase string) {
		t.Helper()
		acks := make(map[types.NodeID]bool)
		deadline := time.After(10 * time.Second)
		for len(acks) < topo.F()+1 {
			select {
			case env := <-inbox:
				if rep, ok := env.Msg.(*proto.Reply); ok && rep.ClientSeq == 1 {
					acks[env.From] = true
				}
			case <-deadline:
				t.Fatalf("%s: %d replies, want %d", phase, len(acks), topo.F()+1)
			}
		}
	}

	broadcast()
	awaitReplies("initial submission")
	time.Sleep(500 * time.Millisecond) // let every replica execute and settle

	// Discard buffered first-round replies so the second round can only be
	// satisfied by fresh ones, i.e. by the ledger re-reply path.
	for {
		select {
		case <-inbox:
			continue
		default:
		}
		break
	}

	broadcast()
	awaitReplies("retry after execution")

	mu.Lock()
	for id, n := range execs {
		if n != 1 {
			t.Errorf("replica %v executed %d batches; the retry must not re-execute", id, n)
		}
	}
	mu.Unlock()
	if mp := f.Stats().Mempool; mp.Replayed == 0 {
		t.Errorf("re-replies not accounted as replayed: %+v", mp)
	}
}
