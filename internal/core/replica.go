package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/kvstore"
	"resilientdb/internal/ledger"
	"resilientdb/internal/pbft"
	"resilientdb/internal/proto"
	"resilientdb/internal/simnet"
	"resilientdb/internal/snapshot"
	"resilientdb/internal/types"
)

// Config parameterizes one GeoBFT replica.
type Config struct {
	// Topo describes the clustered deployment (z clusters of n replicas).
	Topo config.Topology
	// Self is this replica's identifier; its cluster follows from Topo.
	Self types.NodeID
	// Records sizes the preloaded YCSB table.
	Records int
	// CheckpointInterval is the local PBFT checkpoint interval in rounds.
	CheckpointInterval uint64
	// LocalTimeout is the local PBFT view-change timeout.
	LocalTimeout time.Duration
	// RemoteTimeout is the base failure-detection timeout for remote
	// clusters; it backs off exponentially on repeated failures
	// (Section 2.3).
	RemoteTimeout time.Duration
	// PipelineDepth bounds how many rounds local replication may run ahead
	// of global execution (Section 2.5); 0 selects the default of 48, and a
	// negative value disables pipelining entirely (ablation).
	PipelineDepth int
	// Fanout is the number of replicas per remote cluster the primary sends
	// certificates to; 0 selects the paper's f+1. Setting it to n is the
	// all-to-cluster ablation.
	Fanout int
	// ClientCluster maps a client to its home cluster (clients are informed
	// only by their local cluster, Section 2.4). Nil assigns client i to
	// cluster i mod z.
	ClientCluster func(types.NodeID) int
	// OnExecute, if set, observes every executed batch in execution order
	// (the fabric surfaces committed blocks to applications through it).
	OnExecute func(round uint64, cluster types.ClusterID, batch types.Batch)
	// SnapshotInterval is the checkpoint-snapshot interval in global rounds:
	// every SnapshotInterval-th round the replica captures its executed
	// kvstore state; the snapshot publishes (and history below it becomes
	// garbage-collectable) once the round falls under a stable local PBFT
	// checkpoint. 0 disables snapshots — history is retained forever, the
	// pre-bounded-history behaviour.
	SnapshotInterval uint64
	// Archive, if set, persists published snapshots durably (one per replica
	// data directory). Without it snapshots serve from memory only and do not
	// survive a crash.
	Archive *snapshot.Archive
	// OnSnapshot, if set, observes every snapshot this replica publishes or
	// installs — the fabric garbage-collects ledger disk segments below the
	// snapshot height on this signal, never earlier.
	OnSnapshot func(m *snapshot.Manifest)
	// OnVerifyReject, if set, observes every inbound message the replica
	// discards because a cryptographic check failed or the message is
	// provably forged or mis-routed (bad certificate or Rvc signature,
	// digest mismatch, spoofed identity, an unimportable catch-up range) —
	// never merely stale or duplicate traffic. The fabric counts these into
	// Fabric.Stats so forged messages land in the drop statistics whether
	// they are rejected by the parallel verify pool or inline on the worker.
	OnVerifyReject func()
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Records == 0 {
		out.Records = 1000
	}
	if out.CheckpointInterval == 0 {
		out.CheckpointInterval = 6
	}
	if out.LocalTimeout == 0 {
		out.LocalTimeout = 2 * time.Second
	}
	if out.RemoteTimeout == 0 {
		out.RemoteTimeout = 3 * time.Second
	}
	if out.PipelineDepth == 0 {
		out.PipelineDepth = 48
	}
	if out.Fanout == 0 {
		out.Fanout = out.Topo.F() + 1
	}
	if out.ClientCluster == nil {
		z := out.Topo.Clusters
		out.ClientCluster = func(id types.NodeID) int {
			return int(id-types.ClientIDBase) % z
		}
	}
	return out
}

// round aggregates the per-round global state: one commit certificate per
// cluster, executed when complete and in order.
type round struct {
	certs []*pbft.Certificate // indexed by cluster
	have  int
}

// drvcKey identifies one remote view-change agreement instance.
type drvcKey struct {
	target types.ClusterID
	round  uint64
	v      uint64
}

// rvcKey identifies one incoming remote view-change request set.
type rvcKey struct {
	from  types.ClusterID
	round uint64
	v     uint64
}

// Replica is a full GeoBFT replica: local PBFT consensus, inter-cluster
// certificate sharing, remote view-changes, deterministic ordering,
// execution against the YCSB table, ledger maintenance and client replies.
type Replica struct {
	cfg       Config
	myCluster int
	members   []types.NodeID // local cluster members

	env    proto.Env
	local  *pbft.Replica
	store  *kvstore.Store
	ledger *ledger.Ledger

	rounds map[uint64]*round
	// executedRound is the last fully executed global round. Atomic: the
	// worker goroutine is the only writer, but monitoring code reads it while
	// the fabric is running (like execTxns).
	executedRound atomic.Uint64
	localUpTo     uint64 // local PBFT rounds committed (own cluster)

	// ledger catch-up (see catchup.go)
	catchupTimer   proto.Timer
	behindSeq      uint64             // highest local seq f+1 peers provably checkpointed
	evidencedRound uint64             // highest round seen certified by any cluster
	histRound      uint64             // clusterHistories fold position (incremental cache)
	hist           []types.Digest     // per-cluster history digests through histRound
	cuOrder        []types.NodeID     // rotating catch-up peer order (local first)
	cuNext         int                // rotation cursor
	cuFails        uint               // consecutive no-progress ticks (back-off exponent)
	cuLastHeight   uint64             // height at the last tick (progress detection)
	cuStash        map[uint64]cuRange // out-of-order verified ranges, by first height

	// checkpoint snapshots & state transfer (see snapshot.go)
	snapPending map[uint64]*pendingSnap // captured, awaiting checkpoint stability
	snapLatest  *snapshot.Manifest      // the serving snapshot
	snapState   []byte                  // its state bytes
	sync        *snapSync               // in-flight snapshot bootstrap, nil when idle

	// primary-side state
	pending  []signedBatch // client batches awaiting admission to PBFT
	noopSeq  uint64
	sharedTo uint64 // rounds shared with other clusters

	// remote failure detection (initiation role)
	detTimers  []proto.Timer // per cluster, armed for the blocking round
	detRound   []uint64      // round each timer supervises
	detBackoff []uint
	vCounter   []uint64 // v1 of Figure 7, per target cluster
	drvcVotes  map[drvcKey]map[types.NodeID]bool
	drvcMine   map[drvcKey]bool
	rvcSent    map[drvcKey]bool

	// remote view-change response role
	rvcVotes      map[rvcKey]map[types.NodeID]bool
	rvcForwarded  map[rvcKey]bool
	honoredV      map[types.ClusterID]uint64
	reshareFloor  uint64
	lastInstalled time.Duration

	// stats (atomic: the fabric's monitoring APIs read them while the
	// worker goroutine executes)
	execBatches   atomic.Uint64
	execTxns      atomic.Uint64
	catchupBlocks atomic.Uint64

	// snapshot stats (atomic, same contract)
	snapRound      atomic.Uint64
	snapsWritten   atomic.Uint64
	snapsServed    atomic.Uint64
	snapsInstalled atomic.Uint64
	snapsRejected  atomic.Uint64
}

// NewReplica constructs a GeoBFT replica. Call Init (or InitEnv) before use.
func NewReplica(cfg Config) *Replica {
	c := cfg.withDefaults()
	z := c.Topo.Clusters
	r := &Replica{
		cfg:          c,
		myCluster:    int(c.Topo.ClusterOf(c.Self)),
		members:      c.Topo.ClusterMembers(int(c.Topo.ClusterOf(c.Self))),
		rounds:       make(map[uint64]*round),
		detTimers:    make([]proto.Timer, z),
		detRound:     make([]uint64, z),
		detBackoff:   make([]uint, z),
		vCounter:     make([]uint64, z),
		drvcVotes:    make(map[drvcKey]map[types.NodeID]bool),
		drvcMine:     make(map[drvcKey]bool),
		rvcSent:      make(map[drvcKey]bool),
		rvcVotes:     make(map[rvcKey]map[types.NodeID]bool),
		rvcForwarded: make(map[rvcKey]bool),
		honoredV:     make(map[types.ClusterID]uint64),
	}
	// The store and ledger need no environment; building them here makes the
	// Ledger/Store handles valid from construction (monitoring code may read
	// them before the event loop has run InitEnv).
	r.store = kvstore.New(c.Records)
	r.ledger = ledger.New()
	return r
}

// Init implements simnet.Handler.
func (r *Replica) Init(env *simnet.Env) { r.InitEnv(proto.WrapSim(env)) }

// InitEnv wires the replica to any protocol environment.
func (r *Replica) InitEnv(env proto.Env) {
	r.env = env
	r.local = pbft.NewReplica(env, pbft.Config{
		Members:            r.members,
		Self:               r.cfg.Self,
		F:                  r.cfg.Topo.F(),
		CheckpointInterval: r.cfg.CheckpointInterval,
		ViewChangeTimeout:  r.cfg.LocalTimeout,
	}, pbft.Hooks{
		Committed:   r.onLocalCommit,
		ViewChanged: r.onLocalViewChange,
		Behind: func(seq uint64) {
			if seq > r.behindSeq {
				r.behindSeq = seq
			}
			r.scheduleCatchup()
		},
		Rejected:     r.noteReject,
		Checkpointed: r.onStableCheckpoint,
	})
}

// noteReject reports one forged or cryptographically invalid inbound message
// (see Config.OnVerifyReject).
func (r *Replica) noteReject() {
	if r.cfg.OnVerifyReject != nil {
		r.cfg.OnVerifyReject()
	}
}

// Receive implements simnet.Handler: it dispatches global GeoBFT messages
// and hands everything else to the local PBFT instance. All cryptographic
// checks run inline.
func (r *Replica) Receive(from types.NodeID, msg types.Message) {
	r.receive(from, msg, false)
}

// ReceiveVerified dispatches a message whose state-independent cryptographic
// checks already passed PreVerify (the fabric's verify pool): the apply path
// skips re-verification but keeps every stateful guard, so every protocol
// decision is identical to Receive's.
func (r *Replica) ReceiveVerified(from types.NodeID, msg types.Message) {
	r.receive(from, msg, true)
}

func (r *Replica) receive(from types.NodeID, msg types.Message, pre bool) {
	switch m := msg.(type) {
	case *pbft.Request:
		if from.IsClient() {
			r.submitClient(m.Batch, m.Sig)
			return
		}
		r.local.HandleMessage(from, msg)
	case *GlobalShare:
		r.env.Suite().ChargeVerifyMAC()
		r.onGlobalShare(from, m, pre)
	case *DRvc:
		r.env.Suite().ChargeVerifyMAC()
		r.onDRvc(from, m)
	case *Rvc:
		r.onRvc(from, m, pre)
	case *CatchUpReq:
		r.env.Suite().ChargeVerifyMAC()
		r.onCatchUpReq(from, m)
	case *CatchUpResp:
		r.env.Suite().ChargeVerifyMAC()
		r.onCatchUpResp(from, m, pre)
	case *SnapshotReq:
		r.env.Suite().ChargeVerifyMAC()
		r.onSnapshotReq(from, m)
	case *SnapshotResp:
		r.env.Suite().ChargeVerifyMAC()
		r.onSnapshotResp(from, m, pre)
	default:
		if pre {
			r.local.HandleVerified(from, msg)
		} else {
			r.local.HandleMessage(from, msg)
		}
	}
}

// quorum is the local n−f threshold.
func (r *Replica) quorum() int { return len(r.members) - r.cfg.Topo.F() }

// IsPrimary reports whether this replica currently leads its cluster.
func (r *Replica) IsPrimary() bool { return r.local.IsPrimary() }

// Ledger exposes the replica's blockchain.
func (r *Replica) Ledger() *ledger.Ledger { return r.ledger }

// Store exposes the replica's table.
func (r *Replica) Store() *kvstore.Store { return r.store }

// Local exposes the local PBFT instance (tests, fault injection).
func (r *Replica) Local() *pbft.Replica { return r.local }

// ExecutedRound returns the last fully executed global round. It is safe to
// call while the replica is running.
func (r *Replica) ExecutedRound() uint64 { return r.executedRound.Load() }

// ExecutedTxns returns the number of transactions executed. It is safe to
// call while the replica is running.
func (r *Replica) ExecutedTxns() uint64 { return r.execTxns.Load() }

// CatchUpBlocks returns how many blocks this replica imported over the
// network via ledger catch-up (disk-bootstrap replays are not counted).
// Tests use it to prove a restarted node reused its on-disk prefix instead
// of re-fetching the whole chain. Safe to call while the replica is running.
func (r *Replica) CatchUpBlocks() uint64 { return r.catchupBlocks.Load() }

// --- client admission and pipelining ---------------------------------------

// signedBatch couples a buffered batch with the signature that authenticated
// it, preserved so a backup's forward to the primary carries the proof.
type signedBatch struct {
	b   types.Batch
	sig []byte
}

// SubmitBatch admits a locally originated batch, e.g. one assembled by the
// fabric's batching stage, with the originator's signature over
// pbft.RequestPayload (nil in cost-modelled deployments). It follows the
// same admission path as a client request.
func (r *Replica) SubmitBatch(b types.Batch, sig []byte) { r.submitClient(b, sig) }

// submitClient admits a client batch. The primary feeds PBFT subject to the
// pipeline bound; backups forward to the primary via PBFT's supervision
// mechanism (which also arms the anti-censorship timer).
func (r *Replica) submitClient(b types.Batch, sig []byte) {
	if r.IsPrimary() {
		r.env.Suite().ChargeVerify()
		r.pending = append(r.pending, signedBatch{b, sig})
		r.feedPrimary()
		return
	}
	r.local.SubmitLocal(b, sig, false)
}

// assignedRounds is the highest round the primary has admitted to PBFT
// (assigned or queued).
func (r *Replica) assignedRounds() uint64 {
	return r.local.NextSeq() + uint64(r.local.QueueLen())
}

// feedPrimary moves pending batches into PBFT while the pipeline allows:
// local replication may run at most PipelineDepth rounds ahead of global
// execution (with pipelining disabled, one round at a time).
func (r *Replica) feedPrimary() {
	if !r.IsPrimary() {
		return
	}
	depth := uint64(r.cfg.PipelineDepth)
	if r.cfg.PipelineDepth < 0 {
		depth = 1
	}
	for len(r.pending) > 0 && r.assignedRounds() < r.executedRound.Load()+depth {
		q := r.pending[0]
		r.pending = r.pending[1:]
		r.local.SubmitLocal(q.b, q.sig, true)
	}
}

// proposeNoOps fills rounds up to target with no-op batches, used when other
// clusters have advanced to rounds this cluster has no client load for
// (Section 2.5).
func (r *Replica) proposeNoOps(target uint64) {
	// Mid-view-change, SubmitLocal routes to the backup path (supervise and
	// forward) and assigns no round, so proposing here would spin forever
	// without progress; the view change's own re-proposal logic — and the
	// next share received after it installs — covers the gap instead.
	if !r.IsPrimary() || r.local.InViewChange() {
		return
	}
	for r.assignedRounds() < target {
		before := r.assignedRounds()
		if len(r.pending) > 0 {
			q := r.pending[0]
			r.pending = r.pending[1:]
			r.local.SubmitLocal(q.b, q.sig, true)
			continue
		}
		r.noopSeq++
		noop := types.Batch{Client: r.cfg.Self, Seq: r.noopSeq, NoOp: true}
		noop.PrimeDigest() // cache before the proposal is broadcast
		r.local.SubmitLocal(noop, nil, true)
		if r.assignedRounds() == before {
			return // not accepting proposals (window full or deposed): stop
		}
	}
}

// --- local replication completion -------------------------------------------

// onLocalCommit receives the local cluster's commit certificates in round
// order (PBFT delivers them gap-free).
func (r *Replica) onLocalCommit(seq uint64, cert *pbft.Certificate) {
	r.localUpTo = seq
	r.setCert(types.ClusterID(r.myCluster), seq, cert)
	if r.IsPrimary() {
		r.shareRound(seq, cert)
	}
	r.feedPrimary()
	r.rearmDetection()
}

// shareRound performs the global phase of Figure 5: send the certificate to
// Fanout (= f+1) replicas of every other cluster.
func (r *Replica) shareRound(seq uint64, cert *pbft.Certificate) {
	if seq > r.sharedTo {
		r.sharedTo = seq
	}
	msg := &GlobalShare{Cluster: types.ClusterID(r.myCluster), Round: seq, Cert: cert}
	for c := 0; c < r.cfg.Topo.Clusters; c++ {
		if c == r.myCluster {
			continue
		}
		for i := 0; i < r.cfg.Fanout && i < r.cfg.Topo.PerCluster; i++ {
			r.env.Suite().ChargeMAC()
			r.env.Send(r.cfg.Topo.ReplicaID(c, i), msg)
		}
	}
}

// --- global sharing, receive side -------------------------------------------

// onGlobalShare applies a forwarded certificate. pre marks shares whose
// certificate already passed PreVerify.
func (r *Replica) onGlobalShare(from types.NodeID, m *GlobalShare, pre bool) {
	c := int(m.Cluster)
	if c < 0 || c >= r.cfg.Topo.Clusters || c == r.myCluster {
		r.noteReject() // malformed origin: PreVerify rejects these too
		return
	}
	if m.Round <= r.executedRound.Load() {
		return // stale: already executed
	}
	if rd := r.rounds[m.Round]; rd != nil && rd.certs[c] != nil {
		return // duplicate
	}
	if m.Cert == nil || m.Cert.Seq != m.Round {
		r.noteReject()
		return
	}
	// Verify the forwarded certificate against the origin cluster's
	// membership: n−f valid commit signatures (Proposition 2.5, Agreement).
	if !pre {
		members := r.cfg.Topo.ClusterMembers(c)
		if !m.Cert.Verify(r.env.Suite(), members, r.quorum()) {
			r.noteReject() // forged or garbled certificate
			return
		}
	}
	r.setCert(m.Cluster, m.Round, m.Cert)

	// Local phase of Figure 5: a replica that received the message from the
	// origin cluster broadcasts it to its own cluster.
	if int(r.cfg.Topo.ClusterOf(from)) != r.myCluster || from.IsClient() {
		for _, peer := range r.members {
			if peer != r.cfg.Self {
				r.env.Suite().ChargeMAC()
				r.env.Send(peer, m)
			}
		}
	}

	// Receiving evidence of round m.Round lets the primary fill no-op gaps
	// when it lacks client load (Section 2.5).
	r.proposeNoOps(m.Round)

	// A fresh certificate from c resets its failure-detection back-off.
	r.detBackoff[c] = 0
	r.rearmDetection()

	// A certified round beyond the next executable one is evidence we may be
	// missing executed history (crash, amnesia restart, long partition):
	// supervise the gap and pull certified blocks if it persists.
	if m.Round > r.executedRound.Load()+1 {
		r.scheduleCatchup()
	}
}

func (r *Replica) setCert(cluster types.ClusterID, rnd uint64, cert *pbft.Certificate) {
	if rnd <= r.executedRound.Load() {
		return
	}
	rd := r.rounds[rnd]
	if rd == nil {
		rd = &round{certs: make([]*pbft.Certificate, r.cfg.Topo.Clusters)}
		r.rounds[rnd] = rd
	}
	if rd.certs[cluster] != nil {
		return
	}
	rd.certs[cluster] = cert
	rd.have++
	if rnd > r.evidencedRound {
		r.evidencedRound = rnd
	}
	r.tryExecute()
}

// --- ordering and execution (Section 2.4) ------------------------------------

func (r *Replica) tryExecute() {
	for {
		next := r.executedRound.Load() + 1
		rd := r.rounds[next]
		if rd == nil || rd.have < r.cfg.Topo.Clusters {
			return
		}
		r.executedRound.Store(next)
		delete(r.rounds, next)
		for c := 0; c < r.cfg.Topo.Clusters; c++ {
			cert := rd.certs[c]
			batch := cert.Batch
			r.env.Suite().ChargeExec(batch.Len())
			r.store.ApplyBatch(&batch)
			// The certificate rides along on the block: the ledger retains
			// the full chain and serves it to recovering replicas (catch-up),
			// replacing the old bounded round-retention window.
			r.ledger.AppendCertified(next, types.ClusterID(c), batch, cert)
			if r.cfg.OnExecute != nil {
				r.cfg.OnExecute(next, types.ClusterID(c), batch)
			}
			if batch.NoOp {
				continue
			}
			r.execBatches.Add(1)
			r.execTxns.Add(uint64(batch.Len()))
			// Inform only local clients (Section 2.4).
			if r.cfg.ClientCluster(batch.Client) == r.myCluster && batch.Client.IsClient() {
				r.env.Suite().ChargeMAC()
				r.env.Send(batch.Client, &proto.Reply{
					Client:    batch.Client,
					ClientSeq: batch.Seq,
					Replica:   r.cfg.Self,
					TxnCount:  batch.Len(),
					Result:    cert.Digest,
				})
			}
		}
		r.maybeCaptureSnapshot(next)
		r.gcRemoteState(next)
		r.feedPrimary()
		r.rearmDetection()
	}
}

func (r *Replica) gcRemoteState(upTo uint64) {
	for k := range r.drvcVotes {
		if k.round <= upTo {
			delete(r.drvcVotes, k)
		}
	}
	for k := range r.drvcMine {
		if k.round <= upTo {
			delete(r.drvcMine, k)
		}
	}
	for k := range r.rvcSent {
		if k.round <= upTo {
			delete(r.rvcSent, k)
		}
	}
	for k := range r.rvcVotes {
		if k.round <= upTo {
			delete(r.rvcVotes, k)
		}
	}
	for k := range r.rvcForwarded {
		if k.round <= upTo {
			delete(r.rvcForwarded, k)
		}
	}
}

// --- remote failure detection (Figure 7, initiation role) -------------------

// rearmDetection supervises the round blocking execution: for each remote
// cluster whose certificate for round executedRound+1 is missing while there
// is evidence the round exists, a timer runs (Section 2.3: "every replica
// sets a timer for C1 at the start of round ρ").
func (r *Replica) rearmDetection() {
	blocking := r.executedRound.Load() + 1
	rd := r.rounds[blocking]
	evidence := r.localUpTo >= blocking || (rd != nil && rd.have > 0)
	for c := 0; c < r.cfg.Topo.Clusters; c++ {
		if c == r.myCluster {
			continue
		}
		missing := rd == nil || rd.certs[c] == nil
		if evidence && missing {
			if r.detTimers[c] != nil && r.detRound[c] == blocking {
				continue // already supervising this round
			}
			if r.detTimers[c] != nil {
				r.detTimers[c].Stop()
			}
			r.armDetTimer(c, blocking)
		} else if r.detTimers[c] != nil {
			r.detTimers[c].Stop()
			r.detTimers[c] = nil
		}
	}
}

func (r *Replica) armDetTimer(c int, rnd uint64) {
	d := r.cfg.RemoteTimeout
	for i := uint(0); i < r.detBackoff[c] && i < 6; i++ {
		d *= 2
	}
	r.detRound[c] = rnd
	r.detTimers[c] = r.env.SetTimer(d, func() {
		r.detTimers[c] = nil
		if r.executedRound.Load()+1 != rnd {
			r.rearmDetection()
			return
		}
		rd := r.rounds[rnd]
		if rd != nil && rd.certs[c] != nil {
			return
		}
		r.detBackoff[c]++
		r.detectFailure(types.ClusterID(c), rnd)
		r.armDetTimer(c, rnd) // keep supervising with back-off
	})
}

// detectFailure broadcasts DRvc to reach local agreement on the failure of
// cluster target in round rnd (Figure 7 lines 2–4).
func (r *Replica) detectFailure(target types.ClusterID, rnd uint64) {
	v := r.vCounter[target]
	k := drvcKey{target: target, round: rnd, v: v}
	if r.drvcMine[k] {
		return
	}
	r.drvcMine[k] = true
	r.vCounter[target] = v + 1
	m := &DRvc{Target: target, Round: rnd, V: v, Replica: r.cfg.Self}
	for _, peer := range r.members {
		if peer != r.cfg.Self {
			r.env.Suite().ChargeMAC()
			r.env.Send(peer, m)
		}
	}
	r.recordDRvc(k, r.cfg.Self)
}

func (r *Replica) onDRvc(from types.NodeID, m *DRvc) {
	if int(r.cfg.Topo.ClusterOf(from)) != r.myCluster || m.Replica != from {
		return
	}
	if int(m.Target) == r.myCluster {
		return
	}
	// Lines 5–7: answer with the message if we have it (including rounds we
	// already executed — the sender is simply behind; the ledger retains the
	// full chain, so any executed round can be answered).
	if cert := r.certAt(m.Round, m.Target); cert != nil {
		r.env.Suite().ChargeMAC()
		r.env.Send(from, &GlobalShare{Cluster: m.Target, Round: m.Round, Cert: cert})
		return
	}
	if m.Round <= r.executedRound.Load() {
		return // executed; nothing useful to add
	}
	k := drvcKey{target: m.Target, round: m.Round, v: m.V}
	r.recordDRvc(k, from)
}

func (r *Replica) recordDRvc(k drvcKey, from types.NodeID) {
	set := r.drvcVotes[k]
	if set == nil {
		set = make(map[types.NodeID]bool)
		r.drvcVotes[k] = set
	}
	if set[from] {
		return
	}
	set[from] = true

	f := r.cfg.Topo.F()
	// Lines 8–11: f+1 matching detections prove at least one non-faulty
	// replica detected the failure — join it.
	if len(set) >= f+1 && !r.drvcMine[k] {
		if r.vCounter[k.target] <= k.v {
			r.vCounter[k.target] = k.v
		}
		r.detectFailureAt(k)
	}
	// Line 12: n−f agreement → send the remote view-change request to the
	// same-id replica of the target cluster.
	if len(set) >= r.quorum() && !r.rvcSent[k] {
		r.rvcSent[k] = true
		local := r.cfg.Topo.LocalIndex(r.cfg.Self)
		peer := r.cfg.Topo.ReplicaID(int(k.target), local)
		rvc := &Rvc{
			Target: k.target, From: types.ClusterID(r.myCluster),
			Round: k.round, V: k.v, Replica: r.cfg.Self,
		}
		rvc.Sig = r.env.Suite().Sign(RvcPayload(rvc))
		r.env.Suite().ChargeMAC()
		r.env.Send(peer, rvc)
	}
}

// detectFailureAt emits our own DRvc for an agreement instance another
// replica started (the f+1 adoption rule).
func (r *Replica) detectFailureAt(k drvcKey) {
	if r.drvcMine[k] {
		return
	}
	r.drvcMine[k] = true
	m := &DRvc{Target: k.target, Round: k.round, V: k.v, Replica: r.cfg.Self}
	for _, peer := range r.members {
		if peer != r.cfg.Self {
			r.env.Suite().ChargeMAC()
			r.env.Send(peer, m)
		}
	}
	r.recordDRvc(k, r.cfg.Self)
}

// --- remote view-change, response role (Figure 7 lines 14–17) ---------------

// onRvc applies a remote view-change request. pre marks requests whose
// signature already passed PreVerify.
func (r *Replica) onRvc(from types.NodeID, m *Rvc, pre bool) {
	if int(m.Target) != r.myCluster || m.Replica != from && int(r.cfg.Topo.ClusterOf(from)) != r.myCluster {
		r.noteReject() // mis-routed or relayed by an outsider
		return
	}
	if !pre && !r.env.Suite().Verify(m.Replica, RvcPayload(m), m.Sig) {
		r.noteReject() // forged remote view-change signature
		return
	}
	if int(r.cfg.Topo.ClusterOf(m.Replica)) != int(m.From) || int(m.From) == r.myCluster {
		r.noteReject() // claimed origin does not match the signer's cluster
		return
	}
	k := rvcKey{from: m.From, round: m.Round, v: m.V}

	// Line 14–15: forward a well-formed external request to all local
	// replicas (once).
	if !r.rvcForwarded[k] {
		r.rvcForwarded[k] = true
		for _, peer := range r.members {
			if peer != r.cfg.Self {
				r.env.Suite().ChargeMAC()
				r.env.Send(peer, m)
			}
		}
	}

	set := r.rvcVotes[k]
	if set == nil {
		set = make(map[types.NodeID]bool)
		r.rvcVotes[k] = set
	}
	if set[m.Replica] {
		return
	}
	set[m.Replica] = true

	// Track the lowest round any cluster is still waiting on; a new primary
	// resumes sharing from there.
	if r.reshareFloor == 0 || m.Round < r.reshareFloor {
		r.reshareFloor = m.Round
	}

	// Line 16: f+1 matching signed requests from one cluster, no concurrent
	// local view-change, and replay protection on v.
	if len(set) <= r.cfg.Topo.F() {
		return
	}
	if r.local.InViewChange() {
		return
	}
	if hv, ok := r.honoredV[m.From]; ok && m.V <= hv {
		return
	}
	if r.env.Now()-r.lastInstalled < r.cfg.LocalTimeout/2 {
		return // a view-change just completed; give it a chance to resend
	}
	r.honoredV[m.From] = m.V
	// Line 17: detect failure of our own primary → local view-change.
	r.local.ForceViewChange()
}

// onLocalViewChange reacts to the installation of a new local view: the new
// primary resumes global sharing for every round that may not have reached
// the other clusters (Section 2.3, "the new primary takes one of the remote
// view-change requests it received and determines the rounds for which it
// needs to send requests").
func (r *Replica) onLocalViewChange(view uint64, primary types.NodeID) {
	r.lastInstalled = r.env.Now()
	if primary != r.cfg.Self {
		return
	}
	from := r.executedRound.Load() + 1
	if r.reshareFloor > 0 && r.reshareFloor < from {
		from = r.reshareFloor
	}
	const maxReshare = 512
	count := 0
	for rnd := from; rnd <= r.localUpTo && count < maxReshare; rnd++ {
		cert := r.certAt(rnd, types.ClusterID(r.myCluster))
		if cert == nil {
			cert = r.local.Certificate(rnd)
		}
		if cert != nil {
			r.shareRound(rnd, cert)
			count++
		}
	}
	r.reshareFloor = 0
	r.feedPrimary()
	// Rounds other clusters certified while the old primary was failing
	// still need this cluster's decision; without filling them now, the
	// cluster stays blocked until the *next* share happens to arrive — which
	// a client stalled on the blocked round may never produce.
	r.proposeNoOps(r.evidencedRound)
}

// String identifies the replica in logs.
func (r *Replica) String() string {
	return fmt.Sprintf("geobft(r%d,c%d)", int(r.cfg.Self), r.myCluster)
}
