package core_test

import (
	"math/rand"
	"testing"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/core"
	"resilientdb/internal/crypto"
	"resilientdb/internal/ledger"
	"resilientdb/internal/pbft"
	"resilientdb/internal/proto"
	"resilientdb/internal/types"
)

// Adversarial unit tests at the GeoBFT layer: forged remote view-change
// requests with exactly f malicious voters, and equivocating-history splices
// offered through the real catch-up path. Both must be rejected and counted
// (Config.OnVerifyReject), never silently dropped.

// worldEnv is a minimal proto.Env driving a replica directly: sends vanish,
// timers never fire, and the clock is set by the test.
type worldEnv struct {
	id    types.NodeID
	suite *crypto.Suite
	rng   *rand.Rand
	now   time.Duration
}

type stubTimer struct{}

func (stubTimer) Stop() {}

func (e *worldEnv) ID() types.NodeID                                { return e.id }
func (e *worldEnv) Now() time.Duration                              { return e.now }
func (e *worldEnv) Send(to types.NodeID, m types.Message)           {}
func (e *worldEnv) SetTimer(d time.Duration, fn func()) proto.Timer { return stubTimer{} }
func (e *worldEnv) Defer(fn func())                                 { fn() }
func (e *worldEnv) Charge(time.Duration)                            {}
func (e *worldEnv) Suite() *crypto.Suite                            { return e.suite }
func (e *worldEnv) Rand() *rand.Rand                                { return e.rng }

// world holds key material for every replica of a topology, so tests can
// play any subset of them — including coalitions larger than f.
type world struct {
	topo   config.Topology
	suites map[types.NodeID]*crypto.Suite
}

func newWorld(z, n int) *world {
	topo := config.NewTopology(z, n)
	dir := crypto.NewDirectory(crypto.Fast, topo.AllReplicas())
	w := &world{topo: topo, suites: make(map[types.NodeID]*crypto.Suite)}
	for _, id := range topo.AllReplicas() {
		w.suites[id] = crypto.NewSuite(dir, id, crypto.FreeCosts(), nil)
	}
	return w
}

// replica builds an initialized GeoBFT replica for id with a rejection
// counter attached.
func (w *world) replica(id types.NodeID, rejected *int) *core.Replica {
	r := core.NewReplica(core.Config{
		Topo: w.topo, Self: id,
		OnVerifyReject: func() { *rejected++ },
	})
	r.InitEnv(&worldEnv{id: id, suite: w.suites[id], rng: rand.New(rand.NewSource(int64(id))), now: time.Hour})
	return r
}

// cert builds a commit certificate for (seq, batch) signed by the first
// quorum members of the given cluster.
func (w *world) cert(cluster int, seq uint64, b types.Batch) *pbft.Certificate {
	members := w.topo.ClusterMembers(cluster)
	quorum := len(members) - w.topo.F()
	c := &pbft.Certificate{View: 0, Seq: seq, Digest: b.Digest(), Batch: b}
	payload := pbft.CommitPayload(0, seq, c.Digest)
	for _, id := range members[:quorum] {
		c.Signers = append(c.Signers, id)
		c.Sigs = append(c.Sigs, w.suites[id].Sign(payload))
	}
	return c
}

// signedRvc builds a remote view-change request signed by its claimed
// replica.
func (w *world) signedRvc(target, from types.ClusterID, round, v uint64, replica types.NodeID) *core.Rvc {
	m := &core.Rvc{Target: target, From: from, Round: round, V: v, Replica: replica}
	m.Sig = w.suites[replica].Sign(core.RvcPayload(m))
	return m
}

func TestRvcWithFMaliciousVoters(t *testing.T) {
	// z=2 n=4 (f=1): f+1 = 2 matching signed requests from cluster 1 depose
	// cluster 0's primary; any forged or mis-attributed vote must not count.
	cases := []struct {
		name      string
		deliver   func(w *world, r *core.Replica)
		forceVC   bool
		wantCount bool // at least one rejection counted
	}{
		{"two valid requests force the view change", func(w *world, r *core.Replica) {
			r.Receive(4, w.signedRvc(0, 1, 2, 0, 4))
			r.Receive(5, w.signedRvc(0, 1, 2, 0, 5))
		}, true, false},
		{"forged signature does not count toward f+1", func(w *world, r *core.Replica) {
			r.Receive(4, w.signedRvc(0, 1, 2, 0, 4))
			forged := w.signedRvc(0, 1, 2, 0, 5)
			forged.Sig = []byte("forged")
			r.Receive(5, forged)
		}, false, true},
		{"duplicate voter does not count twice", func(w *world, r *core.Replica) {
			m := w.signedRvc(0, 1, 2, 0, 4)
			r.Receive(4, m)
			r.Receive(4, m)
		}, false, false},
		{"origin cluster must match the signer's cluster", func(w *world, r *core.Replica) {
			// Replica 4 lives in cluster 1 but claims to speak for cluster 0.
			r.Receive(4, w.signedRvc(0, 0, 2, 0, 4))
			r.Receive(5, w.signedRvc(0, 0, 2, 0, 5))
		}, false, true},
		{"mis-routed target cluster", func(w *world, r *core.Replica) {
			r.Receive(4, w.signedRvc(1, 0, 2, 0, 4))
			r.Receive(5, w.signedRvc(1, 0, 2, 0, 5))
		}, false, true},
		{"spoofed sender relaying from outside the cluster", func(w *world, r *core.Replica) {
			// A remote node relays someone else's request: only local members
			// may forward (the signer itself must be the sender otherwise).
			r.Receive(6, w.signedRvc(0, 1, 2, 0, 4))
			r.Receive(7, w.signedRvc(0, 1, 2, 0, 5))
		}, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := newWorld(2, 4)
			rejected := 0
			r := w.replica(0, &rejected)
			tc.deliver(w, r)
			if got := r.Local().InViewChange(); got != tc.forceVC {
				t.Fatalf("InViewChange = %v, want %v", got, tc.forceVC)
			}
			if tc.wantCount && rejected == 0 {
				t.Fatal("forged Rvc vanished uncounted (OnVerifyReject never fired)")
			}
			if !tc.wantCount && rejected != 0 {
				t.Fatalf("honest exchange counted %d rejections", rejected)
			}
		})
	}
}

// equivocatingWorldHistories builds two certified GeoBFT histories that share
// rounds 1..common and then diverge in cluster 0's batches — every
// certificate individually valid, which with ≤f faults per cluster could
// never happen; the coalition signing both sides stands in for a >f world.
func equivocatingWorldHistories(w *world, common, extra int) (a, b *ledger.Ledger) {
	a, b = ledger.New(), ledger.New()
	for r := 1; r <= common+extra; r++ {
		for c := 0; c < w.topo.Clusters; c++ {
			ba := types.Batch{Client: types.ClientIDBase, Seq: uint64(r), Txns: []types.Transaction{{Key: uint64(c), Value: uint64(r)}}}
			bb := ba
			if c == 0 && r > common {
				bb = types.Batch{Client: types.ClientIDBase, Seq: uint64(r), Txns: []types.Transaction{{Key: uint64(c), Value: uint64(1000 + r)}}}
			}
			a.AppendCertified(uint64(r), types.ClusterID(c), ba, w.cert(c, uint64(r), ba))
			b.AppendCertified(uint64(r), types.ClusterID(c), bb, w.cert(c, uint64(r), bb))
		}
	}
	return a, b
}

// TestCatchUpRejectsSplicedHistory offers a replica that already executed a
// prefix of history A a catch-up response continuing history B. The response
// is certificate-valid block by block, but its linkage names B's chain: the
// import boundary must reject the splice atomically and count it.
func TestCatchUpRejectsSplicedHistory(t *testing.T) {
	w := newWorld(2, 4)
	histA, histB := equivocatingWorldHistories(w, 2, 2) // diverge from round 3
	rejected := 0
	r := w.replica(3, &rejected)
	// The replica recovered history A through round 3 (height 6) from disk.
	if err := r.Bootstrap(histA.Export(1, 6)); err != nil {
		t.Fatal(err)
	}
	if h := r.Ledger().Height(); h != 6 {
		t.Fatalf("bootstrap height = %d, want 6", h)
	}

	// A Byzantine peer answers catch-up with history B's continuation.
	r.Receive(2, &core.CatchUpResp{Blocks: histB.Export(7, 0), Height: histB.Height()})
	if h := r.Ledger().Height(); h != 6 {
		t.Fatalf("spliced catch-up accepted: height %d", h)
	}
	if rejected == 0 {
		t.Fatal("spliced catch-up vanished uncounted")
	}
	if got := r.CatchUpBlocks(); got != 0 {
		t.Fatalf("spliced blocks counted as imported: %d", got)
	}

	// A garbled certificate on an otherwise well-linked range is rejected by
	// certificate re-verification even when the forger re-seals the linkage.
	rejected = 0
	garbled := make([]*ledger.Block, 0, 2)
	prev := r.Ledger().Head()
	for _, src := range histB.Export(7, 0) {
		nb := *src
		cert := *(nb.Cert.(*pbft.Certificate))
		cert.Sigs = append([][]byte{[]byte("forged")}, cert.Sigs[1:]...)
		nb.Cert = &cert
		nb.Seal(prev)
		prev = nb.Hash
		garbled = append(garbled, &nb)
	}
	r.Receive(2, &core.CatchUpResp{Blocks: garbled, Height: 8})
	if h := r.Ledger().Height(); h != 6 {
		t.Fatalf("garbled re-sealed catch-up accepted: height %d", h)
	}
	if rejected == 0 {
		t.Fatal("garbled catch-up vanished uncounted")
	}

	// The genuine continuation of history A still imports and executes.
	r.Receive(2, &core.CatchUpResp{Blocks: histA.Export(7, 0), Height: histA.Height()})
	if h := r.Ledger().Height(); h != 8 {
		t.Fatalf("genuine catch-up rejected: height %d", h)
	}
	if err := r.Ledger().Verify(); err != nil {
		t.Fatal(err)
	}
	if got := r.ExecutedRound(); got != 4 {
		t.Fatalf("executed round = %d, want 4", got)
	}
}
