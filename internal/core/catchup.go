package core

import (
	"fmt"
	"time"

	"resilientdb/internal/ledger"
	"resilientdb/internal/pbft"
	"resilientdb/internal/types"
)

// Ledger catch-up: the recovery half of the paper's resilience story
// (Section 3). A replica that detects a gap between its executed prefix and
// the rounds its cluster — or the other clusters — provably reached asks a
// peer for certified block ranges (CatchUpReq/CatchUpResp), re-verifies
// every commit certificate against the origin cluster's membership, replays
// the blocks into its store and ledger, and fast-forwards its local PBFT
// instance past the decided prefix. This is what lets a crashed or
// late-joining replica converge to the live height instead of being stuck
// behind its cluster's garbage-collection windows forever.

// catchupBatch bounds how many blocks one CatchUpResp carries; a lagging
// replica pulls ranges repeatedly until the gap closes.
const catchupBatch = 64

// catchupInterval paces the gap-supervision timer.
func (r *Replica) catchupInterval() time.Duration {
	d := r.cfg.RemoteTimeout / 4
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	return d
}

// scheduleCatchup arms the catch-up supervision timer (idempotent). It is
// called whenever evidence of lagging appears: a certified round beyond the
// next executable one (onGlobalShare), or f+1 local checkpoints ahead of our
// commit point (the local PBFT's Behind hook).
func (r *Replica) scheduleCatchup() {
	if r.catchupTimer != nil {
		return
	}
	r.catchupTimer = r.env.SetTimer(r.catchupInterval(), r.catchupTick)
}

func (r *Replica) catchupTick() {
	r.catchupTimer = nil
	if !r.catchupGap() {
		return
	}
	r.sendCatchUpReq()
	r.scheduleCatchup()
}

// catchupGap reports whether there is still evidence of being behind. Rounds
// beyond the blocking one can also accumulate under normal pipelining while
// one cluster lags; in that case the peers' ledgers are no longer than ours,
// the request comes back empty, and the tick is a cheap no-op.
func (r *Replica) catchupGap() bool {
	next := r.executedRound.Load() + 1
	for rnd := range r.rounds {
		if rnd > next {
			return true
		}
	}
	// Blocked on our own cluster's certificate for the next round while
	// another cluster already certified it, and our local PBFT has not
	// committed it: a recovering replica that rejoined mid-view cannot
	// produce that certificate itself, so only a peer's ledger can unblock
	// it. (A healthy replica matches this transiently while its commit is in
	// flight; the pull then finds no longer ledger and is a no-op.)
	if rd := r.rounds[next]; rd != nil && rd.certs[r.myCluster] == nil && r.local.CommittedUpTo() < next {
		return true
	}
	return r.behindSeq > r.local.CommittedUpTo()
}

// sendCatchUpReq asks one random local-cluster peer for the blocks we are
// missing. Every replica retains the full chain, and intra-cluster links are
// the cheap ones; a dead peer simply costs one dropped message and the next
// tick retries another.
func (r *Replica) sendCatchUpReq() {
	if len(r.members) < 2 {
		return
	}
	peer := r.cfg.Self
	for peer == r.cfg.Self {
		peer = r.members[r.env.Rand().Intn(len(r.members))]
	}
	r.env.Suite().ChargeMAC()
	r.env.Send(peer, &CatchUpReq{NextHeight: r.ledger.Height() + 1})
}

func (r *Replica) onCatchUpReq(from types.NodeID, m *CatchUpReq) {
	if from.IsClient() {
		return
	}
	blocks := trimToRoundBoundary(r.ledger.Export(m.NextHeight, catchupBatch), r.cfg.Topo.Clusters)
	if len(blocks) == 0 {
		return
	}
	r.env.Suite().ChargeMAC()
	r.env.Send(from, &CatchUpResp{Blocks: blocks, Height: r.ledger.Height()})
}

func (r *Replica) onCatchUpResp(from types.NodeID, m *CatchUpResp) {
	blocks := trimToRoundBoundary(m.Blocks, r.cfg.Topo.Clusters)
	// Skip any prefix another response already delivered; the remainder must
	// start exactly at our next height or the response is stale.
	h := r.ledger.Height()
	start := -1
	for i, b := range blocks {
		if b != nil && b.Height == h+1 {
			start = i
			break
		}
	}
	if start < 0 {
		return
	}
	if err := r.applyImportedBlocks(blocks[start:], true); err != nil {
		// Malformed or forged range: the ledger is untouched and the next
		// tick retries another peer. Counted — a tampered catch-up response
		// must land in the drop statistics, not vanish.
		r.noteReject()
		return
	}
	if m.Height > r.ledger.Height() {
		// The peer holds more: pull the next range immediately instead of
		// waiting out a timer tick.
		r.sendCatchUpReq()
	}
	r.scheduleCatchup()
}

// Bootstrap replays a previously persisted ledger into a freshly initialized
// replica, modelling a crash-with-disk restart (as opposed to an amnesia
// restart, which starts empty and recovers over the network). The persisted
// copy is treated as untrusted, exactly like a peer's: every certificate is
// re-verified and the hash chain re-derived. It must run on the replica's
// event loop, after InitEnv and before any message is processed.
func (r *Replica) Bootstrap(blocks []*ledger.Block) error {
	return r.applyImportedBlocks(trimToRoundBoundary(blocks, r.cfg.Topo.Clusters), false)
}

// trimToRoundBoundary cuts a block range back to the last complete round:
// execution appends exactly z blocks per round, so a ledger must only ever
// grow in whole rounds to keep height↔round alignment.
func trimToRoundBoundary(blocks []*ledger.Block, z int) []*ledger.Block {
	for len(blocks) > 0 {
		last := blocks[len(blocks)-1]
		if last != nil && last.Height%uint64(z) == 0 {
			break
		}
		blocks = blocks[:len(blocks)-1]
	}
	return blocks
}

// applyImportedBlocks verifies and executes a certified block range: ledger
// import (atomic, certificate re-verification inside), store replay,
// execution bookkeeping, and the local-PBFT fast-forward. notify controls
// the OnExecute upcall: network catch-up fires it (the replica is executing
// these batches for the first time), a disk bootstrap does not (it already
// observed them before the crash).
func (r *Replica) applyImportedBlocks(blocks []*ledger.Block, notify bool) error {
	if len(blocks) == 0 {
		return nil
	}
	if err := r.ledger.Import(blocks, r.verifyImportedBlock); err != nil {
		return err
	}
	if notify {
		r.catchupBlocks.Add(uint64(len(blocks)))
	}
	maxView := uint64(0)
	for _, b := range blocks {
		r.env.Suite().ChargeExec(b.Batch.Len())
		batch := b.Batch
		r.store.ApplyBatch(&batch)
		if int(b.Cluster) == r.myCluster {
			if c, ok := b.Cert.(*pbft.Certificate); ok && c.View > maxView {
				maxView = c.View
			}
			if !b.Batch.NoOp {
				r.local.NoteExecuted(b.Batch.Client, b.Batch.Seq)
			}
		}
		if notify && r.cfg.OnExecute != nil {
			r.cfg.OnExecute(b.Round, b.Cluster, b.Batch)
		}
		if b.Batch.NoOp {
			continue
		}
		r.execBatches.Add(1)
		r.execTxns.Add(uint64(b.Batch.Len()))
	}

	newRound := r.ledger.Height() / uint64(r.cfg.Topo.Clusters)
	if newRound > r.executedRound.Load() {
		r.executedRound.Store(newRound)
	}
	if r.localUpTo < newRound {
		r.localUpTo = newRound
	}
	for k := range r.rounds {
		if k <= newRound {
			delete(r.rounds, k)
		}
	}
	if r.local.CommittedUpTo() < newRound {
		// Local round ρ is local PBFT sequence ρ; rebuild the history digest
		// chain from our own cluster's batch digests so future checkpoints
		// match the cluster's.
		r.local.FastForward(newRound, maxView, r.localHistory(newRound))
	}
	r.gcRemoteState(newRound)
	r.feedPrimary()
	r.rearmDetection()
	r.tryExecute() // live rounds beyond the imported range may now be complete
	return nil
}

// verifyImportedBlock re-verifies one catch-up block before the ledger
// accepts it: GeoBFT's layout invariants (round and cluster follow from the
// height) and the commit certificate against the origin cluster's membership
// — the same Proposition 2.5 check applied to live GlobalShares.
func (r *Replica) verifyImportedBlock(b *ledger.Block) error {
	z := uint64(r.cfg.Topo.Clusters)
	c := int(b.Cluster)
	if c < 0 || c >= int(z) {
		return fmt.Errorf("geobft: cluster %d out of range", c)
	}
	if want := (b.Height-1)/z + 1; b.Round != want {
		return fmt.Errorf("geobft: height %d carries round %d, want %d", b.Height, b.Round, want)
	}
	if want := int((b.Height - 1) % z); c != want {
		return fmt.Errorf("geobft: height %d carries cluster %d, want %d", b.Height, c, want)
	}
	cert, ok := b.Cert.(*pbft.Certificate)
	if !ok || cert == nil {
		return fmt.Errorf("geobft: block %d has no commit certificate", b.Height)
	}
	if cert.Seq != b.Round {
		return fmt.Errorf("geobft: certificate seq %d != round %d", cert.Seq, b.Round)
	}
	if cert.Digest != b.BatchDigest {
		return fmt.Errorf("geobft: certificate digest mismatch at height %d", b.Height)
	}
	if !cert.Verify(r.env.Suite(), r.cfg.Topo.ClusterMembers(c), r.quorum()) {
		return fmt.Errorf("geobft: certificate verification failed at height %d", b.Height)
	}
	return nil
}

// localHistory folds the local PBFT history digest chain over this cluster's
// blocks up to local sequence seq, matching what pbft.advanceCommitted would
// have computed had the replica committed them live. The fold is cached and
// extended incrementally: recovery imports a long chain in many chunks, and
// restarting from sequence 1 each time would make it quadratic.
func (r *Replica) localHistory(seq uint64) types.Digest {
	if seq < r.histSeq {
		// Should not happen (the fold position only advances); recompute
		// from scratch rather than serve a stale digest.
		r.histSeq, r.histDigest = 0, types.Digest{}
	}
	z := uint64(r.cfg.Topo.Clusters)
	for s := r.histSeq + 1; s <= seq; s++ {
		b := r.ledger.Block((s-1)*z + uint64(r.myCluster) + 1)
		if b == nil {
			return r.histDigest
		}
		enc := types.NewEncoder(72)
		enc.Digest(r.histDigest)
		enc.Digest(b.BatchDigest)
		r.histDigest = types.Hash(enc.Bytes())
		r.histSeq = s
	}
	return r.histDigest
}

// certAt returns the commit certificate for (round, cluster): from the
// in-flight round state, or — for executed rounds — from the ledger, which
// retains the full chain. It replaces the old bounded retention window, so a
// lagging peer's DRvc can be answered for any executed round.
func (r *Replica) certAt(rnd uint64, cluster types.ClusterID) *pbft.Certificate {
	if rd := r.rounds[rnd]; rd != nil && rd.certs[cluster] != nil {
		return rd.certs[cluster]
	}
	if rnd >= 1 && rnd <= r.executedRound.Load() {
		h := (rnd-1)*uint64(r.cfg.Topo.Clusters) + uint64(cluster) + 1
		if b := r.ledger.Block(h); b != nil {
			if c, ok := b.Cert.(*pbft.Certificate); ok {
				return c
			}
		}
	}
	return nil
}
