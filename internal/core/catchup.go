package core

import (
	"fmt"
	"time"

	"resilientdb/internal/ledger"
	"resilientdb/internal/pbft"
	"resilientdb/internal/types"
)

// Ledger catch-up: the recovery half of the paper's resilience story
// (Section 3). A replica that detects a gap between its executed prefix and
// the rounds its cluster — or the other clusters — provably reached asks a
// peer for certified block ranges (CatchUpReq/CatchUpResp), re-verifies
// every commit certificate against the origin cluster's membership, replays
// the blocks into its store and ledger, and fast-forwards its local PBFT
// instance past the decided prefix. This is what lets a crashed or
// late-joining replica converge to the live height instead of being stuck
// behind its cluster's garbage-collection windows forever.

// catchupBatch bounds how many blocks one CatchUpResp carries; a lagging
// replica pulls ranges repeatedly until the gap closes.
const catchupBatch = 64

// catchupParallel is how many peers a wide gap is pulled from concurrently,
// each serving a staggered range; responses arriving out of order wait in a
// small stash until the gap below them fills.
const catchupParallel = 3

// catchupStashMax bounds the out-of-order stash (ranges, not blocks).
const catchupStashMax = 8

// catchupMaxBackoff caps the no-progress retry back-off at
// catchupInterval·2^catchupMaxBackoff.
const catchupMaxBackoff = 6

// cuRange is one stashed catch-up range. pre marks ranges whose certificates
// already passed the verify pool, so import skips re-verification.
type cuRange struct {
	blocks []*ledger.Block
	pre    bool
}

// catchupInterval paces the gap-supervision timer.
func (r *Replica) catchupInterval() time.Duration {
	d := r.cfg.RemoteTimeout / 4
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	return d
}

// scheduleCatchup arms the catch-up supervision timer (idempotent). It is
// called whenever evidence of lagging appears: a certified round beyond the
// next executable one (onGlobalShare), or f+1 local checkpoints ahead of our
// commit point (the local PBFT's Behind hook).
func (r *Replica) scheduleCatchup() {
	if r.catchupTimer != nil {
		return
	}
	d := r.catchupInterval()
	for i := uint(0); i < r.cuFails && i < catchupMaxBackoff; i++ {
		d *= 2
	}
	r.catchupTimer = r.env.SetTimer(d, r.catchupTick)
}

func (r *Replica) catchupTick() {
	r.catchupTimer = nil
	if !r.catchupGap() {
		r.cuFails = 0
		return
	}
	// Back off when ticks stop making progress (the reachable peers are dead,
	// suppressed, or as far behind as we are); any height gain resets it.
	if h := r.ledger.Height(); h > r.cuLastHeight {
		r.cuFails = 0
		r.cuLastHeight = h
	} else {
		r.cuFails++
	}
	if r.sync == nil {
		r.sendCatchUpReq()
	}
	r.scheduleCatchup()
}

// catchupGap reports whether there is still evidence of being behind. Rounds
// beyond the blocking one can also accumulate under normal pipelining while
// one cluster lags; in that case the peers' ledgers are no longer than ours,
// the request comes back empty, and the tick is a cheap no-op.
func (r *Replica) catchupGap() bool {
	next := r.executedRound.Load() + 1
	for rnd := range r.rounds {
		if rnd > next {
			return true
		}
	}
	// Blocked on our own cluster's certificate for the next round while
	// another cluster already certified it, and our local PBFT has not
	// committed it: a recovering replica that rejoined mid-view cannot
	// produce that certificate itself, so only a peer's ledger can unblock
	// it. (A healthy replica matches this transiently while its commit is in
	// flight; the pull then finds no longer ledger and is a no-op.)
	if rd := r.rounds[next]; rd != nil && rd.certs[r.myCluster] == nil && r.local.CommittedUpTo() < next {
		return true
	}
	return r.behindSeq > r.local.CommittedUpTo()
}

// catchupPeers returns the next k peers of the rotation: own-cluster members
// first (intra-cluster links are the cheap ones), then every other cluster's
// replicas, so a dead or suppressed local peer costs one missed slot and the
// rotation moves past it to a different server — eventually any correct
// replica of any cluster. The cursor advances one slot per call.
func (r *Replica) catchupPeers(k int) []types.NodeID {
	if r.cuOrder == nil {
		for _, p := range r.members {
			if p != r.cfg.Self {
				r.cuOrder = append(r.cuOrder, p)
			}
		}
		for c := 0; c < r.cfg.Topo.Clusters; c++ {
			if c != r.myCluster {
				r.cuOrder = append(r.cuOrder, r.cfg.Topo.ClusterMembers(c)...)
			}
		}
	}
	n := len(r.cuOrder)
	if n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	peers := make([]types.NodeID, 0, k)
	for i := 0; i < k; i++ {
		peers = append(peers, r.cuOrder[(r.cuNext+i)%n])
	}
	r.cuNext = (r.cuNext + 1) % n
	return peers
}

// sendCatchUpReq pulls missing blocks from the rotating peer set. A wide gap
// (more than one batch of provably certified blocks) fans out to
// catchupParallel peers with staggered ranges; narrow gaps ask one peer.
func (r *Replica) sendCatchUpReq() {
	h := r.ledger.Height()
	fan := 1
	if certified := r.evidencedRound * uint64(r.cfg.Topo.Clusters); certified > h+catchupBatch {
		fan = catchupParallel
	}
	for i, p := range r.catchupPeers(fan) {
		r.env.Suite().ChargeMAC()
		r.env.Send(p, &CatchUpReq{NextHeight: h + 1 + uint64(i)*catchupBatch})
	}
}

func (r *Replica) onCatchUpReq(from types.NodeID, m *CatchUpReq) {
	if from.IsClient() {
		return
	}
	blocks := trimToRoundBoundary(r.ledger.Export(m.NextHeight, catchupBatch), r.cfg.Topo.Clusters)
	if len(blocks) == 0 && m.NextHeight > r.ledger.Base() {
		return // nothing useful: the requester is at or past our suffix
	}
	// An empty response still goes out when the requested height sits at or
	// below our GC base: Base is how the requester learns that blocks cannot
	// reach it and a snapshot bootstrap is required.
	r.env.Suite().ChargeMAC()
	r.env.Send(from, &CatchUpResp{Blocks: blocks, Height: r.ledger.Height(), Base: r.ledger.Base()})
}

// onCatchUpResp applies a verified block range. pre marks responses whose
// certificates already passed the verify pool.
func (r *Replica) onCatchUpResp(from types.NodeID, m *CatchUpResp, pre bool) {
	if from.IsClient() {
		return
	}
	if m.Base > r.ledger.Height() {
		// The peer garbage-collected past our whole chain: no block range can
		// ever connect to our head — bootstrap from a verified snapshot.
		r.startSnapshotSync(m.Base)
		return
	}
	blocks := trimToRoundBoundary(m.Blocks, r.cfg.Topo.Clusters)
	if len(blocks) == 0 || blocks[0] == nil {
		return
	}
	r.stashRange(blocks, pre)
	r.drainStash()
	if m.Height > r.ledger.Height() && r.sync == nil {
		// The peer holds more: pull the next range immediately instead of
		// waiting out a timer tick.
		r.sendCatchUpReq()
	}
	r.scheduleCatchup()
}

// stashRange parks a received range for ordered application: parallel
// staggered fetches legitimately return out of order, so a range starting
// past our next height waits until the gap below it fills.
func (r *Replica) stashRange(blocks []*ledger.Block, pre bool) {
	first := blocks[0].Height
	if r.cuStash == nil {
		r.cuStash = make(map[uint64]cuRange)
	}
	if _, ok := r.cuStash[first]; !ok && len(r.cuStash) >= catchupStashMax {
		return // full: drop, the next tick re-pulls
	}
	if old, ok := r.cuStash[first]; !ok || len(blocks) > len(old.blocks) {
		r.cuStash[first] = cuRange{blocks: blocks, pre: pre}
	}
}

// drainStash applies every stashed range that now connects to the chain head,
// repeating until no range fits (each application may unblock another).
func (r *Replica) drainStash() {
	for {
		applied := false
		for first, rng := range r.cuStash {
			h := r.ledger.Height()
			last := first + uint64(len(rng.blocks)) - 1
			if last <= h {
				delete(r.cuStash, first)
				continue // wholly delivered by another range
			}
			if first > h+1 {
				continue // still a gap below it
			}
			delete(r.cuStash, first)
			// Skip the prefix another range already delivered.
			if err := r.applyImportedBlocks(rng.blocks[h+1-first:], true, rng.pre); err != nil {
				// Malformed or forged range: the ledger is untouched and the
				// next tick retries another peer. Counted — a tampered
				// catch-up response must land in the drop statistics.
				r.noteReject()
			} else {
				applied = true
			}
		}
		if !applied {
			return
		}
	}
}

// Bootstrap replays a previously persisted ledger into a freshly initialized
// replica, modelling a crash-with-disk restart (as opposed to an amnesia
// restart, which starts empty and recovers over the network). The persisted
// copy is treated as untrusted, exactly like a peer's: every certificate is
// re-verified and the hash chain re-derived. It must run on the replica's
// event loop, after InitEnv and before any message is processed.
func (r *Replica) Bootstrap(blocks []*ledger.Block) error {
	return r.applyImportedBlocks(trimToRoundBoundary(blocks, r.cfg.Topo.Clusters), false, false)
}

// trimToRoundBoundary cuts a block range back to the last complete round:
// execution appends exactly z blocks per round, so a ledger must only ever
// grow in whole rounds to keep height↔round alignment.
func trimToRoundBoundary(blocks []*ledger.Block, z int) []*ledger.Block {
	for len(blocks) > 0 {
		last := blocks[len(blocks)-1]
		if last != nil && last.Height%uint64(z) == 0 {
			break
		}
		blocks = blocks[:len(blocks)-1]
	}
	return blocks
}

// applyImportedBlocks verifies and executes a certified block range: ledger
// import (atomic, certificate re-verification inside), store replay,
// execution bookkeeping, and the local-PBFT fast-forward. notify controls
// the OnExecute upcall: network catch-up fires it (the replica is executing
// these batches for the first time), a disk bootstrap does not (it already
// observed them before the crash). pre marks ranges whose certificates were
// already verified by the parallel verify pool, so import checks only the
// cheap layout invariants — the expensive n−f signature checks ran off the
// worker thread.
func (r *Replica) applyImportedBlocks(blocks []*ledger.Block, notify, pre bool) error {
	if len(blocks) == 0 {
		return nil
	}
	verify := r.verifyImportedBlock
	if pre {
		verify = r.verifyImportedLayout
	}
	if err := r.ledger.Import(blocks, verify); err != nil {
		return err
	}
	if notify {
		r.catchupBlocks.Add(uint64(len(blocks)))
	}
	maxView := uint64(0)
	for _, b := range blocks {
		r.env.Suite().ChargeExec(b.Batch.Len())
		batch := b.Batch
		r.store.ApplyBatch(&batch)
		if int(b.Cluster) == r.myCluster {
			if c, ok := b.Cert.(*pbft.Certificate); ok && c.View > maxView {
				maxView = c.View
			}
			if !b.Batch.NoOp {
				r.local.NoteExecuted(b.Batch.Client, b.Batch.Seq)
			}
		}
		if notify && r.cfg.OnExecute != nil {
			r.cfg.OnExecute(b.Round, b.Cluster, b.Batch)
		}
		if b.Batch.NoOp {
			continue
		}
		r.execBatches.Add(1)
		r.execTxns.Add(uint64(b.Batch.Len()))
	}

	newRound := r.ledger.Height() / uint64(r.cfg.Topo.Clusters)
	if newRound > r.executedRound.Load() {
		r.executedRound.Store(newRound)
	}
	if r.localUpTo < newRound {
		r.localUpTo = newRound
	}
	for k := range r.rounds {
		if k <= newRound {
			delete(r.rounds, k)
		}
	}
	if r.local.CommittedUpTo() < newRound {
		// Local round ρ is local PBFT sequence ρ; rebuild the history digest
		// chain from our own cluster's batch digests so future checkpoints
		// match the cluster's.
		r.local.FastForward(newRound, maxView, r.localHistory(newRound))
	}
	r.gcRemoteState(newRound)
	r.feedPrimary()
	r.rearmDetection()
	r.tryExecute() // live rounds beyond the imported range may now be complete
	return nil
}

// verifyImportedBlock re-verifies one catch-up block before the ledger
// accepts it: GeoBFT's layout invariants (round and cluster follow from the
// height) and the commit certificate against the origin cluster's membership
// — the same Proposition 2.5 check applied to live GlobalShares.
func (r *Replica) verifyImportedBlock(b *ledger.Block) error {
	if err := r.verifyImportedLayout(b); err != nil {
		return err
	}
	cert := b.Cert.(*pbft.Certificate) // layout check guaranteed the type
	if !cert.Verify(r.env.Suite(), r.cfg.Topo.ClusterMembers(int(b.Cluster)), r.quorum()) {
		return fmt.Errorf("geobft: certificate verification failed at height %d", b.Height)
	}
	return nil
}

// verifyImportedLayout checks everything about an imported block except the
// certificate signatures: cluster range, height↔round↔cluster alignment, and
// the certificate's binding to the block. It reads only construction-time
// immutable state, so the verify pool calls it concurrently (PreVerify on
// CatchUpResp), and the worker re-runs it alone for pool-verified ranges.
func (r *Replica) verifyImportedLayout(b *ledger.Block) error {
	z := uint64(r.cfg.Topo.Clusters)
	c := int(b.Cluster)
	if c < 0 || c >= int(z) {
		return fmt.Errorf("geobft: cluster %d out of range", c)
	}
	if want := (b.Height-1)/z + 1; b.Round != want {
		return fmt.Errorf("geobft: height %d carries round %d, want %d", b.Height, b.Round, want)
	}
	if want := int((b.Height - 1) % z); c != want {
		return fmt.Errorf("geobft: height %d carries cluster %d, want %d", b.Height, c, want)
	}
	cert, ok := b.Cert.(*pbft.Certificate)
	if !ok || cert == nil {
		return fmt.Errorf("geobft: block %d has no commit certificate", b.Height)
	}
	if cert.Seq != b.Round {
		return fmt.Errorf("geobft: certificate seq %d != round %d", cert.Seq, b.Round)
	}
	if cert.Digest != b.BatchDigest {
		return fmt.Errorf("geobft: certificate digest mismatch at height %d", b.Height)
	}
	return nil
}

// localHistory folds the local PBFT history digest chain over this cluster's
// blocks up to local sequence seq, matching what pbft.advanceCommitted would
// have computed had the replica committed them live (the fold is cached and
// extended incrementally via clusterHistories: recovery imports a long chain
// in many chunks, and restarting from sequence 1 each time would be
// quadratic).
func (r *Replica) localHistory(seq uint64) types.Digest {
	return r.clusterHistories(seq)[r.myCluster]
}

// certAt returns the commit certificate for (round, cluster): from the
// in-flight round state, or — for executed rounds — from the ledger, which
// retains the full chain. It replaces the old bounded retention window, so a
// lagging peer's DRvc can be answered for any executed round.
func (r *Replica) certAt(rnd uint64, cluster types.ClusterID) *pbft.Certificate {
	if rd := r.rounds[rnd]; rd != nil && rd.certs[cluster] != nil {
		return rd.certs[cluster]
	}
	if rnd >= 1 && rnd <= r.executedRound.Load() {
		h := (rnd-1)*uint64(r.cfg.Topo.Clusters) + uint64(cluster) + 1
		if b := r.ledger.Block(h); b != nil {
			if c, ok := b.Cert.(*pbft.Certificate); ok {
				return c
			}
		}
	}
	return nil
}
