package core

import (
	"resilientdb/internal/crypto"
	"resilientdb/internal/pbft"
	"resilientdb/internal/proto"
	"resilientdb/internal/types"
)

// PreVerify performs the state-independent cryptographic checks of an
// inbound GeoBFT message: GlobalShare certificate verification (n−f ed25519
// signatures against the origin cluster's membership — the most expensive
// check in the system), Rvc signatures, and, via pbft.PreVerify, the local
// PBFT checks. It reads only construction-time immutable state (topology,
// membership, quorum size), never the replica's mutable protocol state, so
// the fabric's verify pool calls it concurrently with the worker from many
// goroutines.
//
// Verdicts are decision-equivalent to the inline path: a rejected message is
// one Receive would unconditionally discard, and a verified message may skip
// exactly the checks performed here (ReceiveVerified) while every stateful
// guard — staleness, duplication, membership routing — still runs on the
// worker.
//
// Client requests carry a real per-client signature over the batch
// (pbft.RequestPayload): it is verified here whether the request came from
// the client directly or was re-forwarded by a backup, so a spoofed Client
// field — from a forging client or a Byzantine forwarder — can never reach
// the mempool's dedup state or the proposal queue. (The simulator does not
// route through PreVerify and keeps the paper's cost-only model.)
func (r *Replica) PreVerify(suite *crypto.Suite, from types.NodeID, msg types.Message) proto.Verdict {
	switch m := msg.(type) {
	case *pbft.Request:
		if !suite.Verify(m.Batch.Client, pbft.RequestPayload(&m.Batch), m.Sig) {
			return proto.VerdictReject
		}
		return proto.VerdictVerified
	case *GlobalShare:
		c := int(m.Cluster)
		if c < 0 || c >= r.cfg.Topo.Clusters || c == r.myCluster {
			return proto.VerdictReject
		}
		if m.Cert == nil || m.Cert.Seq != m.Round {
			return proto.VerdictReject
		}
		if !m.Cert.Verify(suite, r.cfg.Topo.ClusterMembers(c), r.quorum()) {
			return proto.VerdictReject
		}
		return proto.VerdictVerified
	case *DRvc:
		return proto.VerdictPass // MAC-authenticated only (modelled as cost)
	case *Rvc:
		// Routing guards first (immutable topology, same predicates onRvc
		// applies): they discard mis-routed requests for free, so a flood of
		// bogus Rvcs cannot make the pool pay a signature check each.
		if int(m.Target) != r.myCluster || int(m.From) == r.myCluster ||
			int(r.cfg.Topo.ClusterOf(m.Replica)) != int(m.From) {
			return proto.VerdictReject
		}
		if !suite.Verify(m.Replica, RvcPayload(m), m.Sig) {
			return proto.VerdictReject
		}
		return proto.VerdictVerified
	default:
		return pbft.PreVerify(suite, from, msg)
	}
}

// ShareKey returns a deduplication key for a GlobalShare's verification
// outcome: two shares with equal keys are cryptographically identical (same
// origin cluster, same certificate content including signer set, same batch
// bytes), so a verdict for one is valid for the other. The fabric's verify
// stage uses it to verify each certificate once even though the two-phase
// sharing protocol delivers up to f+1 copies per replica.
func ShareKey(m *GlobalShare) (ShareDedupKey, bool) {
	if m.Cert == nil {
		return ShareDedupKey{}, false
	}
	return ShareDedupKey{
		Cluster: m.Cluster,
		Round:   m.Round,
		Cert:    m.Cert.CertDigest(),
		Batch:   m.Cert.Batch.Digest(),
	}, true
}

// ShareDedupKey identifies one verified certificate share (see ShareKey).
// Round is part of the key even though CertDigest covers Cert.Seq: the
// claimed round lives outside the certificate, and PreVerify's Seq == Round
// check must not be satisfiable by a cached verdict for a different round.
type ShareDedupKey struct {
	Cluster types.ClusterID
	Round   uint64
	Cert    types.Digest
	Batch   types.Digest
}
