package core

import (
	"resilientdb/internal/crypto"
	"resilientdb/internal/pbft"
	"resilientdb/internal/proto"
	"resilientdb/internal/types"
)

// PreVerify performs the state-independent cryptographic checks of an
// inbound GeoBFT message: GlobalShare certificate verification (n−f ed25519
// signatures against the origin cluster's membership — the most expensive
// check in the system), Rvc signatures, and, via pbft.PreVerify, the local
// PBFT checks. It reads only construction-time immutable state (topology,
// membership, quorum size), never the replica's mutable protocol state, so
// the fabric's verify pool calls it concurrently with the worker from many
// goroutines.
//
// Verdicts are decision-equivalent to the inline path: a rejected message is
// one Receive would unconditionally discard, and a verified message may skip
// exactly the checks performed here (ReceiveVerified) while every stateful
// guard — staleness, duplication, membership routing — still runs on the
// worker.
//
// Client requests carry a real per-client signature over the batch
// (pbft.RequestPayload): it is verified here whether the request came from
// the client directly or was re-forwarded by a backup, so a spoofed Client
// field — from a forging client or a Byzantine forwarder — can never reach
// the mempool's dedup state or the proposal queue. (The simulator does not
// route through PreVerify and keeps the paper's cost-only model.)
func (r *Replica) PreVerify(suite *crypto.Suite, from types.NodeID, msg types.Message) proto.Verdict {
	switch m := msg.(type) {
	case *pbft.Request:
		if !suite.Verify(m.Batch.Client, pbft.RequestPayload(&m.Batch), m.Sig) {
			return proto.VerdictReject
		}
		return proto.VerdictVerified
	case *GlobalShare:
		c := int(m.Cluster)
		if c < 0 || c >= r.cfg.Topo.Clusters || c == r.myCluster {
			return proto.VerdictReject
		}
		if m.Cert == nil || m.Cert.Seq != m.Round {
			return proto.VerdictReject
		}
		if !m.Cert.Verify(suite, r.cfg.Topo.ClusterMembers(c), r.quorum()) {
			return proto.VerdictReject
		}
		return proto.VerdictVerified
	case *DRvc:
		return proto.VerdictPass // MAC-authenticated only (modelled as cost)
	case *Rvc:
		// Routing guards first (immutable topology, same predicates onRvc
		// applies): they discard mis-routed requests for free, so a flood of
		// bogus Rvcs cannot make the pool pay a signature check each.
		if int(m.Target) != r.myCluster || int(m.From) == r.myCluster ||
			int(r.cfg.Topo.ClusterOf(m.Replica)) != int(m.From) {
			return proto.VerdictReject
		}
		if !suite.Verify(m.Replica, RvcPayload(m), m.Sig) {
			return proto.VerdictReject
		}
		return proto.VerdictVerified
	case *CatchUpResp:
		// Recovery decode/verify runs on the pool, not the worker: every
		// block's layout and commit certificate (n−f signatures against the
		// origin cluster's membership) is checked here, so a recovering
		// replica's worker only pays the cheap layout re-check per block.
		for _, b := range m.Blocks {
			if b == nil {
				return proto.VerdictReject
			}
			if err := r.verifyImportedLayout(b); err != nil {
				return proto.VerdictReject
			}
			cert := b.Cert.(*pbft.Certificate) // layout check guaranteed the type
			if !cert.Verify(suite, r.cfg.Topo.ClusterMembers(int(b.Cluster)), r.quorum()) {
				return proto.VerdictReject
			}
		}
		return proto.VerdictVerified
	case *SnapshotReq:
		return proto.VerdictPass // MAC-authenticated only
	case *SnapshotResp:
		if m.Manifest != nil {
			// Routing guard first (free): only self-endorsed manifests count
			// toward the f+1 quorum, so a relayed one is discarded before the
			// pool pays the certificate and signature checks.
			if m.Manifest.Replica != from {
				r.snapsRejected.Add(1) // atomic: safe from pool goroutines
				return proto.VerdictReject
			}
			if err := m.Manifest.Verify(r.cfg.Topo, suite); err != nil {
				// Counted into the snapshot-reject stream here (the worker
				// never sees the message); the fabric adds the generic
				// verify-reject on the verdict.
				r.snapsRejected.Add(1)
				return proto.VerdictReject
			}
			return proto.VerdictVerified
		}
		// State chunks are content-addressed against the accepted manifest —
		// inherently stateful, checked on the worker.
		return proto.VerdictPass
	default:
		return pbft.PreVerify(suite, from, msg)
	}
}

// ShareKey returns a deduplication key for a GlobalShare's verification
// outcome: two shares with equal keys are cryptographically identical (same
// origin cluster, same certificate content including signer set, same batch
// bytes), so a verdict for one is valid for the other. The fabric's verify
// stage uses it to verify each certificate once even though the two-phase
// sharing protocol delivers up to f+1 copies per replica.
func ShareKey(m *GlobalShare) (ShareDedupKey, bool) {
	if m.Cert == nil {
		return ShareDedupKey{}, false
	}
	return ShareDedupKey{
		Cluster: m.Cluster,
		Round:   m.Round,
		Cert:    m.Cert.CertDigest(),
		Batch:   m.Cert.Batch.Digest(),
	}, true
}

// ShareDedupKey identifies one verified certificate share (see ShareKey).
// Round is part of the key even though CertDigest covers Cert.Seq: the
// claimed round lives outside the certificate, and PreVerify's Seq == Round
// check must not be satisfiable by a cached verdict for a different round.
type ShareDedupKey struct {
	Cluster types.ClusterID
	Round   uint64
	Cert    types.Digest
	Batch   types.Digest
}
