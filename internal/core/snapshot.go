package core

import (
	"fmt"
	"sort"

	"resilientdb/internal/pbft"
	"resilientdb/internal/proto"
	"resilientdb/internal/snapshot"
	"resilientdb/internal/types"
)

// Checkpoint snapshots and snapshot-based state transfer: the bounded-history
// half of the recovery story. At every SnapshotInterval-th round the replica
// serializes its executed kvstore state and builds a signed, content-addressed
// manifest (internal/snapshot); once the round is covered by a stable local
// PBFT checkpoint the snapshot is published — archived durably, announced to
// the fabric (which garbage-collects ledger segments below it), and served to
// peers. A replica whose whole chain sits below its peers' GC horizon cannot
// be served blocks at all; it bootstraps by collecting manifests until f+1
// replicas of one cluster endorse the same content key, fetching the state
// chunks spread across the endorsers, verifying every byte against the
// manifest, and installing: kvstore restore, ledger re-anchor, consensus
// fast-forward. Tampered manifests and chunks are rejected, counted, and
// retried against the next server in the rotation.

// snapChunkWindow bounds in-flight chunk requests during state transfer so a
// large snapshot cannot flood the endorsers' mailboxes.
const snapChunkWindow = 64

// snapMaxBackoff caps the state-transfer retry back-off at
// catchupInterval·2^snapMaxBackoff.
const snapMaxBackoff = 6

// pendingSnap is a captured-but-unpublished snapshot: the manifest and state
// wait for the round to fall under a stable local PBFT checkpoint, the proof
// that 2f+1 replicas durably passed it and history below may be discarded.
type pendingSnap struct {
	m     *snapshot.Manifest
	state []byte
}

// maybeCaptureSnapshot serializes the executed state right after round was
// executed, when round is a snapshot boundary. Capture is cheap relative to
// publication and deliberately eager: the state must be photographed at the
// exact round boundary, while publication (and GC) waits for checkpoint
// stability.
func (r *Replica) maybeCaptureSnapshot(round uint64) {
	iv := r.cfg.SnapshotInterval
	if iv == 0 || round%iv != 0 {
		return
	}
	z := r.cfg.Topo.Clusters
	tip := r.ledger.Block(round * uint64(z))
	if tip == nil {
		return
	}
	cert, ok := tip.Cert.(*pbft.Certificate)
	if !ok || cert == nil {
		return
	}
	state := r.store.Serialize()
	m := snapshot.Build(round, z, tip.Prev, cert, r.clusterHistories(round), state)
	m.Sign(r.env.Suite())
	if r.snapPending == nil {
		r.snapPending = make(map[uint64]*pendingSnap)
	}
	r.snapPending[round] = &pendingSnap{m: m, state: state}
	// Bound the pending set: if checkpoint stability lags several snapshot
	// boundaries behind, only the newest captures matter.
	for len(r.snapPending) > 2 {
		oldest := round
		for k := range r.snapPending {
			if k < oldest {
				oldest = k
			}
		}
		delete(r.snapPending, oldest)
	}
}

// onStableCheckpoint publishes every captured snapshot now covered by a
// stable local PBFT checkpoint, oldest first.
func (r *Replica) onStableCheckpoint(seq uint64) {
	var ready []uint64
	for round := range r.snapPending {
		if round <= seq {
			ready = append(ready, round)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	for _, round := range ready {
		p := r.snapPending[round]
		delete(r.snapPending, round)
		r.publishSnapshot(p.m, p.state)
	}
}

// publishSnapshot makes a snapshot the replica's serving checkpoint: archive
// it durably, prune the in-memory ledger, and announce it to the fabric for
// segment GC. History is never discarded without a durable replacement: if
// the archive write fails the old snapshot keeps serving and no GC happens.
func (r *Replica) publishSnapshot(m *snapshot.Manifest, state []byte) {
	if r.snapLatest != nil && m.Round <= r.snapLatest.Round {
		return
	}
	if r.cfg.Archive != nil {
		if err := r.cfg.Archive.Put(m, state); err != nil {
			return
		}
	}
	r.snapLatest, r.snapState = m, state
	r.snapRound.Store(m.Round)
	r.snapsWritten.Add(1)
	// Keep one full snapshot interval of blocks in memory behind the
	// checkpoint: slightly-lagging peers still catch up via plain block
	// ranges, only the far-behind fall back to state transfer.
	if keep := r.cfg.SnapshotInterval * uint64(r.cfg.Topo.Clusters); m.Height > keep {
		_ = r.ledger.Prune(m.Height - keep)
	}
	if r.cfg.OnSnapshot != nil {
		r.cfg.OnSnapshot(m)
	}
}

// clusterHistories returns every cluster's pbft commit-history digest folded
// through round, extending the cached folds incrementally (recovery crosses
// many rounds; refolding from round 1 each time would be quadratic).
func (r *Replica) clusterHistories(round uint64) []types.Digest {
	z := uint64(r.cfg.Topo.Clusters)
	if r.hist == nil {
		r.hist = make([]types.Digest, z)
	}
	for s := r.histRound + 1; s <= round; s++ {
		for c := uint64(0); c < z; c++ {
			b := r.ledger.Block((s-1)*z + c + 1)
			if b == nil {
				// Pruned or missing history: serve the fold as far as it got.
				return append([]types.Digest(nil), r.hist...)
			}
			enc := types.NewEncoder(72)
			enc.Digest(r.hist[c])
			enc.Digest(b.BatchDigest)
			r.hist[c] = types.Hash(enc.Bytes())
		}
		r.histRound = s
	}
	return append([]types.Digest(nil), r.hist...)
}

// --- server side -------------------------------------------------------------

// onSnapshotReq serves checkpoint material: the manifest (Chunk < 0) or one
// content-addressed state chunk. The latest snapshot serves from memory;
// older retained rounds fall back to the archive.
func (r *Replica) onSnapshotReq(from types.NodeID, m *SnapshotReq) {
	if from.IsClient() {
		return
	}
	man, state := r.lookupSnapshot(m.Round)
	if man == nil {
		return
	}
	if m.Chunk < 0 {
		r.snapsServed.Add(1)
		r.env.Suite().ChargeMAC()
		r.env.Send(from, &SnapshotResp{Manifest: man, Round: man.Round, Chunk: -1})
		return
	}
	idx := int(m.Chunk)
	if idx >= len(man.Chunks) {
		return
	}
	var data []byte
	switch {
	case state != nil:
		data = man.Chunk(state, idx)
	case r.cfg.Archive != nil:
		d, err := r.cfg.Archive.ReadChunk(man, idx)
		if err != nil {
			return
		}
		data = d
	default:
		return
	}
	r.snapsServed.Add(1)
	r.env.Suite().ChargeMAC()
	r.env.Send(from, &SnapshotResp{Round: man.Round, Chunk: m.Chunk, Data: data})
}

// lookupSnapshot resolves a requested round (0 = newest) to a manifest and,
// when it is the in-memory latest, its state bytes.
func (r *Replica) lookupSnapshot(round uint64) (*snapshot.Manifest, []byte) {
	if r.snapLatest != nil && (round == 0 || round == r.snapLatest.Round) {
		return r.snapLatest, r.snapState
	}
	if r.cfg.Archive != nil {
		if m := r.cfg.Archive.Manifest(round); m != nil {
			return m, nil
		}
	}
	return nil, nil
}

// --- client side: snapshot-based state transfer ------------------------------

// snapSync tracks one in-flight snapshot bootstrap.
type snapSync struct {
	target   uint64                                 // peer ledger base that proved blocks can't reach us
	votes    map[types.Digest]map[types.NodeID]bool // manifest key → endorsing replicas
	byKey    map[types.Digest]*snapshot.Manifest
	manifest *snapshot.Manifest // chosen once the f+1 quorum is met
	servers  []types.NodeID     // the endorsers, chunk requests rotate over them
	chunks   [][]byte
	missing  int
	nextReq  int // next chunk index never requested
	nextSrv  int // rotation cursor over servers
	attempt  int // retry counter driving back-off and peer widening
	timer    proto.Timer
}

// startSnapshotSync begins a snapshot bootstrap after a peer's CatchUpResp
// proved its ledger base is above our whole chain (blocks below it are GC'd
// and can never be served).
func (r *Replica) startSnapshotSync(peerBase uint64) {
	if r.sync != nil || peerBase <= r.ledger.Height() {
		return
	}
	r.sync = &snapSync{
		target: peerBase,
		votes:  make(map[types.Digest]map[types.NodeID]bool),
		byKey:  make(map[types.Digest]*snapshot.Manifest),
	}
	r.requestManifests()
}

// manifestPeers returns who to ask on the given attempt: the local cluster
// first (cheap links), widening by one remote cluster per retry — the
// cross-cluster fallback that keeps state transfer live even when local
// peers are Byzantine, down, or serving tampered snapshots.
func (r *Replica) manifestPeers(attempt int) []types.NodeID {
	peers := make([]types.NodeID, 0, len(r.members))
	for _, p := range r.members {
		if p != r.cfg.Self {
			peers = append(peers, p)
		}
	}
	z := r.cfg.Topo.Clusters
	for i := 1; i <= attempt && i < z; i++ {
		c := (r.myCluster + i) % z
		peers = append(peers, r.cfg.Topo.ClusterMembers(c)...)
	}
	return peers
}

func (r *Replica) requestManifests() {
	s := r.sync
	for _, p := range r.manifestPeers(s.attempt) {
		r.env.Suite().ChargeMAC()
		r.env.Send(p, &SnapshotReq{Round: 0, Chunk: -1})
	}
	r.armSnapTimer()
}

func (r *Replica) armSnapTimer() {
	s := r.sync
	if s.timer != nil {
		s.timer.Stop()
	}
	d := r.catchupInterval()
	for i := 0; i < s.attempt && i < snapMaxBackoff; i++ {
		d *= 2
	}
	s.timer = r.env.SetTimer(d, r.snapTick)
}

// snapTick retries the stalled phase of a state transfer with back-off.
func (r *Replica) snapTick() {
	s := r.sync
	if s == nil {
		return
	}
	s.timer = nil
	if s.manifest == nil && r.ledger.Height() >= s.target {
		// Block catch-up outran the snapshot trigger: no transfer needed.
		r.sync = nil
		return
	}
	s.attempt++
	if s.manifest == nil {
		r.requestManifests() // widens the peer set and re-arms the timer
		return
	}
	r.requestMissingChunks()
	r.armSnapTimer()
}

func (r *Replica) cancelSnapshotSync() {
	if r.sync == nil {
		return
	}
	if r.sync.timer != nil {
		r.sync.timer.Stop()
	}
	r.sync = nil
}

// onSnapshotResp routes one piece of snapshot material. pre marks manifests
// whose signature and certificate already passed PreVerify on the pool.
func (r *Replica) onSnapshotResp(from types.NodeID, m *SnapshotResp, pre bool) {
	if r.sync == nil || from.IsClient() {
		return // unsolicited
	}
	if m.Manifest != nil && m.Chunk < 0 {
		r.onSnapshotManifest(from, m.Manifest, pre)
		return
	}
	r.onSnapshotChunk(from, m)
}

// onSnapshotManifest records one replica's endorsement of a snapshot key and
// enters the chunk phase once f+1 replicas of a single cluster endorse the
// same key — under the ≤f-faults-per-cluster assumption at least one of them
// is honest, so the content addresses can be trusted.
func (r *Replica) onSnapshotManifest(from types.NodeID, man *snapshot.Manifest, pre bool) {
	s := r.sync
	if man.Replica != from {
		r.noteSnapReject() // relayed endorsement: only self-endorsed manifests count
		return
	}
	if !pre {
		// Verified (and forgeries counted) even when the quorum already
		// formed: whether a tampered manifest lands before or after the two
		// honest ones that complete it is a scheduling accident, and rejection
		// accounting must not depend on it.
		if err := man.Verify(r.cfg.Topo, r.env.Suite()); err != nil {
			r.noteSnapReject() // forged signature, bad certificate, or malformed
			return
		}
	}
	if s.manifest != nil {
		return // already in the chunk phase
	}
	if man.Height <= r.ledger.Height() {
		return // stale server: its checkpoint is behind us
	}
	key := man.Key()
	set := s.votes[key]
	if set == nil {
		set = make(map[types.NodeID]bool)
		s.votes[key] = set
		s.byKey[key] = man
	}
	if set[from] {
		return
	}
	set[from] = true

	// Quorum must come from one cluster: f bounds faults per cluster, so f+1
	// mixed-cluster endorsers could all be faulty while f+1 from one cluster
	// cannot.
	perCluster := make(map[types.ClusterID]int)
	quorum := false
	for p := range set {
		c := r.cfg.Topo.ClusterOf(p)
		perCluster[c]++
		if perCluster[c] >= r.cfg.Topo.F()+1 {
			quorum = true
		}
	}
	if !quorum {
		return
	}

	s.manifest = s.byKey[key]
	s.servers = s.servers[:0]
	for p := range set {
		s.servers = append(s.servers, p)
	}
	sort.Slice(s.servers, func(i, j int) bool { return s.servers[i] < s.servers[j] })
	s.chunks = make([][]byte, len(s.manifest.Chunks))
	s.missing = len(s.chunks)
	s.nextReq = 0
	for s.nextReq < len(s.chunks) && s.nextReq < snapChunkWindow {
		r.requestChunk(s.nextReq)
		s.nextReq++
	}
	r.armSnapTimer()
}

// requestChunk asks the next endorser in the rotation for chunk idx.
func (r *Replica) requestChunk(idx int) {
	s := r.sync
	p := s.servers[s.nextSrv%len(s.servers)]
	s.nextSrv++
	r.env.Suite().ChargeMAC()
	r.env.Send(p, &SnapshotReq{Round: s.manifest.Round, Chunk: int32(idx)})
}

// requestMissingChunks re-requests lost chunks (bounded by the window).
func (r *Replica) requestMissingChunks() {
	s := r.sync
	n := 0
	for i, c := range s.chunks {
		if c != nil {
			continue
		}
		r.requestChunk(i)
		if n++; n >= snapChunkWindow {
			return
		}
	}
}

// onSnapshotChunk verifies one state chunk against the accepted manifest's
// content address. A tampered chunk is counted and re-fetched from the next
// server in the rotation — one Byzantine endorser cannot corrupt or stall
// the transfer.
func (r *Replica) onSnapshotChunk(from types.NodeID, m *SnapshotResp) {
	s := r.sync
	if s.manifest == nil || m.Round != s.manifest.Round {
		return
	}
	idx := int(m.Chunk)
	if idx < 0 || idx >= len(s.chunks) || s.chunks[idx] != nil {
		return
	}
	if err := s.manifest.VerifyChunk(idx, m.Data); err != nil {
		r.noteSnapReject()
		r.requestChunk(idx)
		return
	}
	s.chunks[idx] = m.Data
	s.missing--
	if s.nextReq < len(s.chunks) {
		r.requestChunk(s.nextReq)
		s.nextReq++
	}
	if s.missing == 0 {
		r.finishSnapshotSync()
	}
}

// finishSnapshotSync assembles and installs the fully transferred snapshot,
// then immediately pulls the block suffix above it.
func (r *Replica) finishSnapshotSync() {
	s := r.sync
	m := s.manifest
	if r.ledger.Height() >= m.Height {
		// Block catch-up got there first; the transfer is moot.
		r.cancelSnapshotSync()
		return
	}
	state := make([]byte, 0, m.StateLen)
	for _, c := range s.chunks {
		state = append(state, c...)
	}
	r.cancelSnapshotSync()
	if err := m.VerifyState(state); err != nil {
		// Unreachable when every chunk matched its content address; defensive.
		r.noteSnapReject()
		r.scheduleCatchup()
		return
	}
	if err := r.installSnapshot(m, state); err != nil {
		r.noteSnapReject()
		r.scheduleCatchup()
		return
	}
	r.sendCatchUpReq()
	r.scheduleCatchup()
}

// installSnapshot applies a fully verified snapshot: kvstore state, ledger
// anchor, consensus fast-forward, then re-endorses it under our own key so we
// can serve it (and survive a crash) like any self-captured checkpoint.
func (r *Replica) installSnapshot(m *snapshot.Manifest, state []byte) error {
	if err := r.store.Restore(state); err != nil {
		return fmt.Errorf("geobft: snapshot state restore: %w", err)
	}
	tip := m.Tip(r.cfg.Topo.Clusters)
	if err := r.ledger.AnchorSnapshot(m.Height, tip.Hash); err != nil {
		return fmt.Errorf("geobft: snapshot anchor: %w", err)
	}
	if m.Round > r.executedRound.Load() {
		r.executedRound.Store(m.Round)
	}
	if r.localUpTo < m.Round {
		r.localUpTo = m.Round
	}
	for k := range r.rounds {
		if k <= m.Round {
			delete(r.rounds, k)
		}
	}
	r.hist = append([]types.Digest(nil), m.Hist...)
	r.histRound = m.Round
	if r.local.CommittedUpTo() < m.Round {
		r.local.FastForward(m.Round, 0, m.Hist[r.myCluster])
	}
	own := *m
	own.Sign(r.env.Suite())
	if r.cfg.Archive != nil {
		// Best-effort: a failed archive write leaves consensus state intact;
		// this replica just won't survive a crash without re-transferring.
		_ = r.cfg.Archive.Put(&own, state)
	}
	r.snapLatest, r.snapState = &own, state
	r.snapRound.Store(own.Round)
	r.snapsInstalled.Add(1)
	if r.cfg.OnSnapshot != nil {
		r.cfg.OnSnapshot(&own)
	}
	r.gcRemoteState(m.Round)
	r.feedPrimary()
	r.rearmDetection()
	r.tryExecute()
	return nil
}

// InstallArchivedSnapshot restores the replica from its own snapshot archive
// at boot (the crash-with-disk path for a GC'd chain: the retained segments
// start above genesis, so only a snapshot can seat the prefix). The archived
// material is treated as untrusted, exactly like a peer's: full manifest and
// state verification before anything is applied. Returns the installed
// manifest, or nil when the archive holds nothing usable (not an error: an
// empty archive just means block replay must carry the whole way). It must
// run on the replica's event loop, after InitEnv and before any message or
// Bootstrap blocks are processed.
func (r *Replica) InstallArchivedSnapshot(a *snapshot.Archive) (*snapshot.Manifest, error) {
	if a == nil {
		return nil, nil
	}
	m := a.Manifest(0)
	if m == nil {
		return nil, nil
	}
	if err := m.Verify(r.cfg.Topo, r.env.Suite()); err != nil {
		return nil, fmt.Errorf("geobft: archived snapshot: %w", err)
	}
	state, err := a.State(m.Round)
	if err != nil {
		return nil, fmt.Errorf("geobft: archived snapshot state: %w", err)
	}
	if err := m.VerifyState(state); err != nil {
		return nil, fmt.Errorf("geobft: archived snapshot: %w", err)
	}
	if m.Height <= r.ledger.Height() {
		return nil, nil
	}
	if err := r.installSnapshot(m, state); err != nil {
		return nil, err
	}
	return m, nil
}

// noteSnapReject counts one rejected piece of snapshot material into both the
// snapshot counters and the replica-wide verify-reject stream.
func (r *Replica) noteSnapReject() {
	r.snapsRejected.Add(1)
	r.noteReject()
}

// SnapshotRound returns the round of the replica's current serving snapshot
// (0 when none). Safe to call while the replica is running.
func (r *Replica) SnapshotRound() uint64 { return r.snapRound.Load() }

// SnapshotsWritten returns how many checkpoints this replica captured and
// published itself. Safe to call while the replica is running.
func (r *Replica) SnapshotsWritten() uint64 { return r.snapsWritten.Load() }

// SnapshotsServed counts manifest and chunk responses served to peers. Safe
// to call while the replica is running.
func (r *Replica) SnapshotsServed() uint64 { return r.snapsServed.Load() }

// SnapshotsInstalled counts snapshots this replica installed from peers or
// its own archive. Safe to call while the replica is running.
func (r *Replica) SnapshotsInstalled() uint64 { return r.snapsInstalled.Load() }

// SnapshotsRejected counts tampered or forged snapshot material discarded
// during verification. Safe to call while the replica is running.
func (r *Replica) SnapshotsRejected() uint64 { return r.snapsRejected.Load() }
