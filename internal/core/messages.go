// Package core implements GeoBFT, the Geo-Scale Byzantine Fault-Tolerant
// consensus protocol that is the primary contribution of the ResilientDB
// paper. Replicas are grouped into topological clusters, one per region;
// each round every cluster independently replicates one client batch with
// local PBFT (Section 2.2), optimistically shares the resulting commit
// certificate with f+1 replicas of every other cluster (Section 2.3),
// detects and repairs failed sharing with the remote view-change protocol
// (Figure 7), and finally executes the z chosen batches in deterministic
// cluster order (Section 2.4). Rounds are pipelined: local replication of
// round ρ+k, sharing of ρ+1 and execution of ρ proceed concurrently
// (Section 2.5).
package core

import (
	"resilientdb/internal/ledger"
	"resilientdb/internal/pbft"
	"resilientdb/internal/snapshot"
	"resilientdb/internal/types"
)

// GlobalShare carries m = (⟨T⟩c, [⟨T⟩c, ρ]C): a locally replicated client
// request together with its commit certificate, sent from the primary of the
// origin cluster to f+1 replicas of each other cluster, and then broadcast
// locally by each receiver (the two-phase optimistic sharing protocol of
// Figure 5).
type GlobalShare struct {
	// Cluster is the origin cluster.
	Cluster types.ClusterID
	// Round is ρ, the origin cluster's local sequence number.
	Round uint64
	// Cert proves local consensus: the request plus n−f commit signatures.
	Cert *pbft.Certificate
}

func (*GlobalShare) MsgType() string { return "geobft/share" }

// WireSize implements types.Message.
func (g *GlobalShare) WireSize() int { return types.HeaderBytes + g.Cert.WireSize() }

// DRvc initiates local agreement on the failure of a remote cluster: replica
// R detected that Target failed to share its round-Round message and this is
// R's V-th remote view-change request for Target (Figure 7, initiation
// role).
type DRvc struct {
	Target  types.ClusterID
	Round   uint64
	V       uint64
	Replica types.NodeID
}

func (*DRvc) MsgType() string { return "geobft/drvc" }

// WireSize implements types.Message.
func (*DRvc) WireSize() int { return types.ControlBytes }

// Rvc is the actual remote view-change request sent across clusters after
// n−f local replicas agreed on the failure. It is signed, as it is
// forwarded within the receiving cluster (Figure 7, response role).
type Rvc struct {
	Target  types.ClusterID // the cluster whose primary must be replaced
	From    types.ClusterID // the requesting cluster
	Round   uint64
	V       uint64
	Replica types.NodeID
	Sig     []byte
}

func (*Rvc) MsgType() string { return "geobft/rvc" }

// WireSize implements types.Message.
func (*Rvc) WireSize() int { return types.ControlBytes }

// CatchUpReq asks a peer for certified ledger blocks starting at NextHeight.
// A replica sends it when it detects a gap between its executed prefix and
// the rounds its cluster — or the other clusters — provably certified:
// after a crash, an amnesia restart, or a long partition (Section 3: a
// recovering replica copies the ledger from its peers and validates it
// locally; ROADMAP: "ledger catch-up for late-joining processes").
type CatchUpReq struct {
	// NextHeight is the first ledger height the requester is missing
	// (its current height + 1).
	NextHeight uint64
}

func (*CatchUpReq) MsgType() string { return "geobft/catchup-req" }

// WireSize implements types.Message.
func (*CatchUpReq) WireSize() int { return types.ControlBytes }

// CatchUpResp returns a contiguous, certificate-carrying run of blocks
// starting at the requested height. The receiver re-verifies every
// certificate against the origin cluster's membership before importing, so
// the responder need not be trusted.
type CatchUpResp struct {
	Blocks []*ledger.Block
	// Height is the responder's chain height at reply time, so the requester
	// knows whether further ranges remain.
	Height uint64
	// Base is the responder's ledger base: the height below which checkpoint
	// GC has discarded its blocks. A requester whose whole chain sits at or
	// below a peer's base cannot be served blocks at all — it must bootstrap
	// from a verified state snapshot instead (snapshot-req/resp), and Base is
	// how it learns that.
	Base uint64
}

func (*CatchUpResp) MsgType() string { return "geobft/catchup-resp" }

// WireSize implements types.Message.
func (c *CatchUpResp) WireSize() int {
	size := types.HeaderBytes
	for _, b := range c.Blocks {
		if b.Cert != nil {
			size += b.Cert.WireSize()
		} else {
			size += b.Batch.WireSize()
		}
	}
	return size
}

// SnapshotReq asks a peer for checkpoint-snapshot material: its manifest
// (Chunk < 0) or one chunk of serialized state (Chunk ≥ 0). Round 0 selects
// the peer's newest retained checkpoint. A joining replica first collects
// manifests from several peers until f+1 distinct replicas endorse the same
// content key, then fetches the state chunks — each content-addressed by the
// manifest — spread across the endorsing peers.
type SnapshotReq struct {
	Round uint64
	Chunk int32
}

func (*SnapshotReq) MsgType() string { return "geobft/snapshot-req" }

// WireSize implements types.Message.
func (*SnapshotReq) WireSize() int { return types.ControlBytes }

// SnapshotResp carries one piece of a checkpoint snapshot: the manifest
// (Chunk < 0, Manifest set, endorsed by the serving replica's own signature)
// or one state chunk (Chunk ≥ 0, Data set). The receiver trusts nothing in
// it: manifests pass snapshot.Manifest.Verify plus the f+1 matching-key
// quorum, and every chunk is checked against the manifest's content address
// before it is kept.
type SnapshotResp struct {
	Manifest *snapshot.Manifest
	Round    uint64
	Chunk    int32
	Data     []byte
}

func (*SnapshotResp) MsgType() string { return "geobft/snapshot-resp" }

// WireSize implements types.Message.
func (s *SnapshotResp) WireSize() int {
	n := types.HeaderBytes + len(s.Data)
	if s.Manifest != nil {
		n += s.Manifest.WireSize()
	}
	return n
}

// RvcPayload is the canonical signed content of an Rvc message. It is
// exported as an attack seam for the byzantine adversary harness
// (internal/byzantine), which signs stale or spurious remote view-change
// requests with the compromised replica's own key; honest-path behaviour is
// unchanged and no seam here lets anyone forge another replica's signature.
func RvcPayload(m *Rvc) []byte {
	enc := types.NewEncoder(64)
	enc.String("geobft/RVC")
	enc.I32(int32(m.Target))
	enc.I32(int32(m.From))
	enc.U64(m.Round)
	enc.U64(m.V)
	enc.I32(int32(m.Replica))
	return enc.Bytes()
}
