package core_test

import (
	"testing"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/core"
	"resilientdb/internal/crypto"
	"resilientdb/internal/pbft"
	"resilientdb/internal/proto"
	"resilientdb/internal/simnet"
	"resilientdb/internal/types"
	"resilientdb/internal/ycsb"
)

// geoClient drives one cluster of a GeoBFT deployment closed-loop: window
// outstanding batches, f+1 matching local replies to complete, rebroadcast
// to the whole local cluster on timeout.
type geoClient struct {
	topo      config.Topology
	cluster   int
	f         int
	batchSize int
	total     int
	window    int

	env       *simnet.Env
	wl        *ycsb.Workload
	nextSeq   uint64
	acks      map[uint64]map[types.NodeID]bool
	done      map[uint64]bool
	batches   map[uint64]types.Batch
	completed int
}

func (c *geoClient) Init(env *simnet.Env) {
	c.env = env
	c.wl = ycsb.NewWorkload(10_000, ycsb.DefaultTheta, int64(env.ID()))
	c.acks = make(map[uint64]map[types.NodeID]bool)
	c.done = make(map[uint64]bool)
	c.batches = make(map[uint64]types.Batch)
	for i := 0; i < c.window && int(c.nextSeq) < c.total; i++ {
		c.submit()
	}
}

func (c *geoClient) submit() {
	c.nextSeq++
	seq := c.nextSeq
	b := c.wl.MakeBatch(c.env.ID(), seq, c.batchSize)
	c.batches[seq] = b
	c.env.Suite().ChargeSign()
	c.env.Send(c.topo.ReplicaID(c.cluster, 0), &pbft.Request{Batch: b})
	c.armRetry(seq)
}

func (c *geoClient) armRetry(seq uint64) {
	c.env.SetTimer(5*time.Second, func() {
		if c.done[seq] {
			return
		}
		b := c.batches[seq]
		for _, m := range c.topo.ClusterMembers(c.cluster) {
			c.env.Send(m, &pbft.Request{Batch: b})
		}
		c.armRetry(seq)
	})
}

func (c *geoClient) Receive(from types.NodeID, msg types.Message) {
	rep, ok := msg.(*proto.Reply)
	if !ok || c.done[rep.ClientSeq] {
		return
	}
	if int(c.topo.ClusterOf(from)) != c.cluster {
		return // only the local cluster informs us (Section 2.4)
	}
	set := c.acks[rep.ClientSeq]
	if set == nil {
		set = make(map[types.NodeID]bool)
		c.acks[rep.ClientSeq] = set
	}
	set[from] = true
	if len(set) >= c.f+1 {
		c.done[rep.ClientSeq] = true
		delete(c.batches, rep.ClientSeq)
		c.completed++
		if int(c.nextSeq) < c.total {
			c.submit()
		}
	}
}

type deployment struct {
	net     *simnet.Network
	topo    config.Topology
	reps    map[types.NodeID]*core.Replica
	clients []*geoClient
}

// deploy builds a z×n GeoBFT deployment over the Table-1 profile with one
// client per cluster submitting `total` batches.
func deploy(t *testing.T, z, n, total int, opts simnet.Options) *deployment {
	t.Helper()
	topo := config.NewTopology(z, n)
	if opts.Profile == nil {
		opts.Profile = config.GoogleCloudProfile(z)
	}
	if opts.Seed == 0 {
		opts.Seed = 21
	}
	net := simnet.New(opts)
	d := &deployment{net: net, topo: topo, reps: make(map[types.NodeID]*core.Replica)}
	for c := 0; c < z; c++ {
		for i := 0; i < n; i++ {
			id := topo.ReplicaID(c, i)
			rep := core.NewReplica(core.Config{
				Topo: topo, Self: id, Records: 1000,
				LocalTimeout:  time.Second,
				RemoteTimeout: 2 * time.Second,
			})
			d.reps[id] = rep
			net.AddNode(id, c, rep)
		}
	}
	for c := 0; c < z; c++ {
		cl := &geoClient{
			topo: topo, cluster: c, f: topo.F(),
			batchSize: 10, total: total, window: 3,
		}
		d.clients = append(d.clients, cl)
		net.AddNode(config.ClientID(c), c, cl)
	}
	return d
}

func (d *deployment) assertConvergence(t *testing.T, crashed map[types.NodeID]bool) {
	t.Helper()
	var ref *core.Replica
	var refID types.NodeID
	for _, id := range d.topo.AllReplicas() {
		if crashed[id] {
			continue
		}
		r := d.reps[id]
		if ref == nil {
			ref, refID = r, id
			continue
		}
		if r.Ledger().Height() != ref.Ledger().Height() {
			t.Errorf("%v ledger height %d != %v's %d", id, r.Ledger().Height(), refID, ref.Ledger().Height())
			continue
		}
		if r.Ledger().Head() != ref.Ledger().Head() {
			t.Errorf("%v ledger head differs from %v", id, refID)
		}
		if r.Store().Digest() != ref.Store().Digest() {
			t.Errorf("%v store digest differs from %v", id, refID)
		}
	}
	if ref != nil {
		if err := ref.Ledger().Verify(); err != nil {
			t.Errorf("ledger verify: %v", err)
		}
	}
}

func (d *deployment) completedAll() bool {
	for _, c := range d.clients {
		if c.completed != c.total {
			return false
		}
	}
	return true
}

func TestTwoClustersNormalCase(t *testing.T) {
	d := deploy(t, 2, 4, 10, simnet.Options{})
	d.net.RunUntil(120 * time.Second)
	for i, c := range d.clients {
		if c.completed != c.total {
			t.Errorf("cluster %d client completed %d/%d", i, c.completed, c.total)
		}
	}
	d.assertConvergence(t, nil)
	// Every round appends z blocks: height = z × rounds.
	ref := d.reps[0]
	if ref.Ledger().Height() == 0 || ref.Ledger().Height()%2 != 0 {
		t.Errorf("ledger height %d not a multiple of z=2", ref.Ledger().Height())
	}
}

func TestSixClustersGeoScale(t *testing.T) {
	d := deploy(t, 6, 4, 6, simnet.Options{Seed: 5})
	d.net.RunUntil(240 * time.Second)
	for i, c := range d.clients {
		if c.completed != c.total {
			t.Errorf("cluster %d client completed %d/%d", i, c.completed, c.total)
		}
	}
	d.assertConvergence(t, nil)
}

func TestRealCryptoTwoClusters(t *testing.T) {
	d := deploy(t, 2, 4, 5, simnet.Options{Mode: crypto.Real, Seed: 13})
	d.net.RunUntil(120 * time.Second)
	if !d.completedAll() {
		t.Errorf("not all clients completed under real crypto")
	}
	d.assertConvergence(t, nil)
}

func TestBackupFailuresPerCluster(t *testing.T) {
	// f backup failures in every cluster: GeoBFT's design worst case
	// (Section 4.3).
	d := deploy(t, 3, 4, 8, simnet.Options{Seed: 31})
	crashed := map[types.NodeID]bool{}
	for c := 0; c < 3; c++ {
		id := d.topo.ReplicaID(c, 3) // one backup per cluster (f=1)
		d.net.Crash(id)
		crashed[id] = true
	}
	d.net.RunUntil(240 * time.Second)
	for i, c := range d.clients {
		if c.completed != c.total {
			t.Errorf("cluster %d client completed %d/%d with f failures", i, c.completed, c.total)
		}
	}
	d.assertConvergence(t, crashed)
}

func TestRemoteViewChangeOnPrimaryCrash(t *testing.T) {
	// Crash the primary of cluster 0 mid-run. Other clusters must detect the
	// missing certificates, run the remote view-change protocol, and force
	// cluster 0 to elect a new primary that resumes sharing (Figure 7).
	d := deploy(t, 2, 4, 40, simnet.Options{Seed: 17})
	d.net.RunUntil(150 * time.Millisecond)
	victim := d.topo.ReplicaID(0, 0)
	if d.reps[victim].ExecutedRound() == 0 {
		t.Fatal("test setup: no rounds executed before crash point")
	}
	preCrash := d.clients[0].completed
	if preCrash == d.clients[0].total {
		t.Fatal("test setup: workload finished before crash point")
	}
	d.net.Crash(victim)
	d.net.RunUntil(600 * time.Second)

	for i, c := range d.clients {
		if c.completed != c.total {
			t.Errorf("cluster %d client completed %d/%d after remote view-change", i, c.completed, c.total)
		}
	}
	crashed := map[types.NodeID]bool{victim: true}
	d.assertConvergence(t, crashed)
	// Cluster 0's survivors must have moved past view 0.
	for i := 1; i < 4; i++ {
		id := d.topo.ReplicaID(0, i)
		if d.reps[id].Local().View() == 0 {
			t.Errorf("replica %v never changed view", id)
		}
	}
}

func TestNoOpFillWhenOneClusterIdle(t *testing.T) {
	// Cluster 1 has no client load; its primary must propose no-ops so the
	// loaded cluster's rounds can execute (Section 2.5).
	topo := config.NewTopology(2, 4)
	net := simnet.New(simnet.Options{Profile: config.GoogleCloudProfile(2), Seed: 23})
	reps := make(map[types.NodeID]*core.Replica)
	for c := 0; c < 2; c++ {
		for i := 0; i < 4; i++ {
			id := topo.ReplicaID(c, i)
			rep := core.NewReplica(core.Config{Topo: topo, Self: id, Records: 100,
				LocalTimeout: time.Second, RemoteTimeout: 2 * time.Second})
			reps[id] = rep
			net.AddNode(id, c, rep)
		}
	}
	cl := &geoClient{topo: topo, cluster: 0, f: 1, batchSize: 5, total: 8, window: 2}
	net.AddNode(config.ClientID(0), 0, cl)
	net.RunUntil(240 * time.Second)
	if cl.completed != cl.total {
		t.Fatalf("client completed %d/%d with idle remote cluster", cl.completed, cl.total)
	}
	// The idle cluster's slots must be filled with no-ops.
	ref := reps[topo.ReplicaID(0, 0)]
	noops := 0
	for h := uint64(1); h <= ref.Ledger().Height(); h++ {
		b := ref.Ledger().Block(h)
		if b.Cluster == 1 && b.Batch.NoOp {
			noops++
		}
	}
	if noops == 0 {
		t.Error("no no-op blocks from the idle cluster")
	}
}

func TestSafetyAcrossSeedsProperty(t *testing.T) {
	// Across seeds: crash one random backup per cluster mid-run; ledgers of
	// all surviving replicas must agree (non-divergence, Theorem 2.8).
	for seed := int64(1); seed <= 4; seed++ {
		d := deploy(t, 2, 4, 6, simnet.Options{Seed: seed * 101})
		crashAt := time.Duration(100+seed*70) * time.Millisecond
		crashed := map[types.NodeID]bool{}
		for c := 0; c < 2; c++ {
			id := d.topo.ReplicaID(c, 1+int(seed)%3)
			crashed[id] = true
		}
		d.net.RunUntil(crashAt)
		for id := range crashed {
			d.net.Crash(id)
		}
		d.net.RunUntil(300 * time.Second)
		if !d.completedAll() {
			t.Errorf("seed %d: clients incomplete", seed)
		}
		d.assertConvergence(t, crashed)
	}
}

func TestLedgerBlocksAlternateClusters(t *testing.T) {
	d := deploy(t, 3, 4, 5, simnet.Options{Seed: 41})
	d.net.RunUntil(240 * time.Second)
	if !d.completedAll() {
		t.Fatal("clients incomplete")
	}
	ref := d.reps[0].Ledger()
	for h := uint64(1); h <= ref.Height(); h++ {
		b := ref.Block(h)
		wantCluster := types.ClusterID((h - 1) % 3)
		if b.Cluster != wantCluster {
			t.Fatalf("block %d from cluster %d, want %d (deterministic order)", h, b.Cluster, wantCluster)
		}
		if b.Round != (h-1)/3+1 {
			t.Fatalf("block %d has round %d", h, b.Round)
		}
	}
}
