package core

import (
	"resilientdb/internal/pbft"
	"resilientdb/internal/types"
)

// Wire codec for the GeoBFT cross-cluster messages, registered with the
// message-type registry in internal/types.

// EncodeBody implements types.WireMessage.
func (g *GlobalShare) EncodeBody(enc *types.Encoder) {
	enc.I32(int32(g.Cluster))
	enc.U64(g.Round)
	enc.Bool(g.Cert != nil)
	if g.Cert != nil {
		g.Cert.EncodeBody(enc)
	}
}

func decodeGlobalShare(dec *types.Decoder) types.Message {
	g := &GlobalShare{}
	g.Cluster = types.ClusterID(dec.I32())
	g.Round = dec.U64()
	if dec.Bool() {
		g.Cert = pbft.DecodeCertificateBody(dec)
	}
	return g
}

// EncodeBody implements types.WireMessage.
func (d *DRvc) EncodeBody(enc *types.Encoder) {
	enc.I32(int32(d.Target))
	enc.U64(d.Round)
	enc.U64(d.V)
	enc.I32(int32(d.Replica))
}

func decodeDRvc(dec *types.Decoder) types.Message {
	m := &DRvc{}
	m.Target = types.ClusterID(dec.I32())
	m.Round = dec.U64()
	m.V = dec.U64()
	m.Replica = types.NodeID(dec.I32())
	return m
}

// EncodeBody implements types.WireMessage.
func (r *Rvc) EncodeBody(enc *types.Encoder) {
	enc.I32(int32(r.Target))
	enc.I32(int32(r.From))
	enc.U64(r.Round)
	enc.U64(r.V)
	enc.I32(int32(r.Replica))
	enc.BytesN(r.Sig)
}

func decodeRvc(dec *types.Decoder) types.Message {
	m := &Rvc{}
	m.Target = types.ClusterID(dec.I32())
	m.From = types.ClusterID(dec.I32())
	m.Round = dec.U64()
	m.V = dec.U64()
	m.Replica = types.NodeID(dec.I32())
	m.Sig = dec.BytesN()
	return m
}

func init() {
	types.RegisterMessage((*GlobalShare)(nil).MsgType(), decodeGlobalShare, func() []types.Message {
		b := types.Batch{Client: types.ClientIDBase, Seq: 1, Txns: []types.Transaction{{Key: 8, Value: 9}}}
		return []types.Message{
			&GlobalShare{},
			&GlobalShare{
				Cluster: 1,
				Round:   5,
				Cert: &pbft.Certificate{
					View:    0,
					Seq:     5,
					Digest:  b.Digest(),
					Batch:   b,
					Signers: []types.NodeID{4, 5, 6},
					Sigs:    [][]byte{{1}, {2}, {3}},
				},
			},
		}
	})
	types.RegisterMessage((*DRvc)(nil).MsgType(), decodeDRvc, func() []types.Message {
		return []types.Message{
			&DRvc{},
			&DRvc{Target: 1, Round: 3, V: 2, Replica: 6},
		}
	})
	types.RegisterMessage((*Rvc)(nil).MsgType(), decodeRvc, func() []types.Message {
		return []types.Message{
			&Rvc{},
			&Rvc{Target: 0, From: 1, Round: 3, V: 1, Replica: 5, Sig: []byte{0xde, 0xad}},
		}
	})
}
