package core

import (
	"resilientdb/internal/ledger"
	"resilientdb/internal/pbft"
	"resilientdb/internal/snapshot"
	"resilientdb/internal/types"
)

// Wire codec for the GeoBFT cross-cluster messages, registered with the
// message-type registry in internal/types.

// EncodeBody implements types.WireMessage.
func (g *GlobalShare) EncodeBody(enc *types.Encoder) {
	enc.I32(int32(g.Cluster))
	enc.U64(g.Round)
	enc.Bool(g.Cert != nil)
	if g.Cert != nil {
		g.Cert.EncodeBody(enc)
	}
}

func decodeGlobalShare(dec *types.Decoder) types.Message {
	g := &GlobalShare{}
	g.Cluster = types.ClusterID(dec.I32())
	g.Round = dec.U64()
	if dec.Bool() {
		g.Cert = pbft.DecodeCertificateBody(dec)
	}
	return g
}

// EncodeBody implements types.WireMessage.
func (d *DRvc) EncodeBody(enc *types.Encoder) {
	enc.I32(int32(d.Target))
	enc.U64(d.Round)
	enc.U64(d.V)
	enc.I32(int32(d.Replica))
}

func decodeDRvc(dec *types.Decoder) types.Message {
	m := &DRvc{}
	m.Target = types.ClusterID(dec.I32())
	m.Round = dec.U64()
	m.V = dec.U64()
	m.Replica = types.NodeID(dec.I32())
	return m
}

// EncodeBody implements types.WireMessage.
func (r *Rvc) EncodeBody(enc *types.Encoder) {
	enc.I32(int32(r.Target))
	enc.I32(int32(r.From))
	enc.U64(r.Round)
	enc.U64(r.V)
	enc.I32(int32(r.Replica))
	enc.BytesN(r.Sig)
}

func decodeRvc(dec *types.Decoder) types.Message {
	m := &Rvc{}
	m.Target = types.ClusterID(dec.I32())
	m.From = types.ClusterID(dec.I32())
	m.Round = dec.U64()
	m.V = dec.U64()
	m.Replica = types.NodeID(dec.I32())
	m.Sig = dec.BytesN()
	return m
}

// minBlockBytes is a conservative lower bound on one encoded block (Height +
// Round + Cluster + Prev + Hash + minimal batch + cert flag), bounding decode
// allocations.
const minBlockBytes = 8 + 8 + 4 + 32 + 32 + (4 + 8 + 1 + 4) + 1

// encodeBlockBody appends the wire form of one ledger block. Prev and Hash
// travel with the block so the importer can hold the exporter to its claimed
// hash-chain linkage end-to-end — ledger.Import rejects a range that splices
// two histories (or zeroes the linkage to hide one) at the import boundary.
// BatchDigest and CertDigest stay derived; the certificate's Seq/Digest/Batch
// duplicate block fields, so only its view and signer set are encoded and the
// decoder reconstructs the rest.
func encodeBlockBody(enc *types.Encoder, b *ledger.Block) {
	enc.U64(b.Height)
	enc.U64(b.Round)
	enc.I32(int32(b.Cluster))
	enc.Digest(b.Prev)
	enc.Digest(b.Hash)
	b.Batch.Encode(enc)
	cert, _ := b.Cert.(*pbft.Certificate)
	enc.Bool(cert != nil)
	if cert != nil {
		enc.U64(cert.View)
		enc.NodeIDs(cert.Signers)
		enc.SigList(cert.Sigs)
	}
}

func decodeBlockBody(dec *types.Decoder) *ledger.Block {
	b := &ledger.Block{}
	b.Height = dec.U64()
	b.Round = dec.U64()
	b.Cluster = types.ClusterID(dec.I32())
	b.Prev = dec.Digest()
	b.Hash = dec.Digest()
	b.Batch = types.DecodeBatch(dec)
	b.BatchDigest = b.Batch.Digest() // cached at decode; reflects wire bytes
	if dec.Bool() {
		cert := &pbft.Certificate{
			View:    dec.U64(),
			Seq:     b.Round,
			Digest:  b.BatchDigest,
			Batch:   b.Batch,
			Signers: dec.NodeIDs(),
			Sigs:    dec.SigList(),
		}
		b.Cert = cert
		b.CertDigest = cert.CertDigest()
	}
	return b
}

// BlockCodec is the persisted-block codec used by the durable ledger store
// (internal/ledger/disk): exactly the catch-up wire encoding of one block,
// so the bytes on disk and the bytes in a CatchUpResp are the same format
// and a recovered block goes through the identical decode path either way.
type BlockCodec struct{}

// EncodeBlock implements disk.BlockCodec.
func (BlockCodec) EncodeBlock(enc *types.Encoder, b *ledger.Block) { encodeBlockBody(enc, b) }

// DecodeBlock implements disk.BlockCodec; malformed input is an error, never
// a panic (the decoder records underflow and the fuzz suite enforces it).
func (BlockCodec) DecodeBlock(dec *types.Decoder) (*ledger.Block, error) {
	b := decodeBlockBody(dec)
	if err := dec.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// EncodeBody implements types.WireMessage.
func (c *CatchUpReq) EncodeBody(enc *types.Encoder) {
	enc.U64(c.NextHeight)
}

func decodeCatchUpReq(dec *types.Decoder) types.Message {
	return &CatchUpReq{NextHeight: dec.U64()}
}

// EncodeBody implements types.WireMessage.
func (c *CatchUpResp) EncodeBody(enc *types.Encoder) {
	enc.U64(c.Height)
	enc.U64(c.Base)
	enc.U32(uint32(len(c.Blocks)))
	for _, b := range c.Blocks {
		encodeBlockBody(enc, b)
	}
}

func decodeCatchUpResp(dec *types.Decoder) types.Message {
	m := &CatchUpResp{}
	m.Height = dec.U64()
	m.Base = dec.U64()
	if n := dec.Count(minBlockBytes); n > 0 {
		m.Blocks = make([]*ledger.Block, 0, n)
		for i := 0; i < n && dec.Err() == nil; i++ {
			m.Blocks = append(m.Blocks, decodeBlockBody(dec))
		}
	}
	return m
}

// EncodeBody implements types.WireMessage.
func (s *SnapshotReq) EncodeBody(enc *types.Encoder) {
	enc.U64(s.Round)
	enc.I32(s.Chunk)
}

func decodeSnapshotReq(dec *types.Decoder) types.Message {
	return &SnapshotReq{Round: dec.U64(), Chunk: dec.I32()}
}

// EncodeBody implements types.WireMessage.
func (s *SnapshotResp) EncodeBody(enc *types.Encoder) {
	enc.U64(s.Round)
	enc.I32(s.Chunk)
	enc.Bool(s.Manifest != nil)
	if s.Manifest != nil {
		s.Manifest.EncodeBody(enc)
	}
	enc.BytesN(s.Data)
}

func decodeSnapshotResp(dec *types.Decoder) types.Message {
	m := &SnapshotResp{}
	m.Round = dec.U64()
	m.Chunk = dec.I32()
	if dec.Bool() {
		m.Manifest = snapshot.DecodeManifestBody(dec)
	}
	m.Data = dec.BytesN()
	return m
}

// sampleCatchUpBlocks builds a two-block (one z=2 round) certified range for
// the registry round-trip suite.
func sampleCatchUpBlocks() []*ledger.Block {
	l := ledger.New()
	for c := types.ClusterID(0); c < 2; c++ {
		b := types.Batch{Client: types.ClientIDBase + types.NodeID(c), Seq: 1,
			Txns: []types.Transaction{{Key: uint64(c), Value: 7}}}
		l.AppendCertified(1, c, b, &pbft.Certificate{
			View: 1, Seq: 1, Digest: b.Digest(), Batch: b,
			Signers: []types.NodeID{0, 1, 2},
			Sigs:    [][]byte{{1}, {2}, {3}},
		})
	}
	return l.Export(1, 0)
}

func init() {
	types.RegisterMessage((*GlobalShare)(nil).MsgType(), decodeGlobalShare, func() []types.Message {
		b := types.Batch{Client: types.ClientIDBase, Seq: 1, Txns: []types.Transaction{{Key: 8, Value: 9}}}
		return []types.Message{
			&GlobalShare{},
			&GlobalShare{
				Cluster: 1,
				Round:   5,
				Cert: &pbft.Certificate{
					View:    0,
					Seq:     5,
					Digest:  b.Digest(),
					Batch:   b,
					Signers: []types.NodeID{4, 5, 6},
					Sigs:    [][]byte{{1}, {2}, {3}},
				},
			},
		}
	})
	types.RegisterMessage((*DRvc)(nil).MsgType(), decodeDRvc, func() []types.Message {
		return []types.Message{
			&DRvc{},
			&DRvc{Target: 1, Round: 3, V: 2, Replica: 6},
		}
	})
	types.RegisterMessage((*Rvc)(nil).MsgType(), decodeRvc, func() []types.Message {
		return []types.Message{
			&Rvc{},
			&Rvc{Target: 0, From: 1, Round: 3, V: 1, Replica: 5, Sig: []byte{0xde, 0xad}},
		}
	})
	types.RegisterMessage((*CatchUpReq)(nil).MsgType(), decodeCatchUpReq, func() []types.Message {
		return []types.Message{&CatchUpReq{}, &CatchUpReq{NextHeight: 17}}
	})
	types.RegisterMessage((*CatchUpResp)(nil).MsgType(), decodeCatchUpResp, func() []types.Message {
		return []types.Message{
			&CatchUpResp{},
			&CatchUpResp{Blocks: sampleCatchUpBlocks(), Height: 8, Base: 2},
		}
	})
	types.RegisterMessage((*SnapshotReq)(nil).MsgType(), decodeSnapshotReq, func() []types.Message {
		return []types.Message{
			&SnapshotReq{},
			&SnapshotReq{Round: 12, Chunk: -1},
			&SnapshotReq{Round: 12, Chunk: 3},
		}
	})
	types.RegisterMessage((*SnapshotResp)(nil).MsgType(), decodeSnapshotResp, func() []types.Message {
		return []types.Message{
			&SnapshotResp{},
			&SnapshotResp{Manifest: snapshot.SampleManifest(), Round: 4, Chunk: -1},
			&SnapshotResp{Round: 4, Chunk: 1, Data: []byte{0xca, 0xfe}},
		}
	})
}
