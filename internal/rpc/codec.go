// Package rpc is the fabric's client-facing front door over HTTP/JSON: each
// replica runs a small Server exposing signed transaction submission, ledger
// and status reads, and proof-carrying key reads; Client is the matching
// verifying client. The server injects submits through the same mempool
// admission path (Precheck → signature verification → Admit) as
// transport-delivered requests, so networked clients get identical
// dedup/replay/rate-limit treatment — the RPC surface adds a doorway, not a
// bypass.
//
// Wire encoding is JSON: digests and hashes travel as lower-case hex
// strings, signatures as base64 (encoding/json's []byte default). The
// payloads that matter cryptographically (request signatures, read
// attestations, commit certificates) are re-encoded canonically with the
// types.Encoder before verification, so JSON's flexibility never widens
// what a signature covers.
package rpc

import (
	"encoding/hex"
	"fmt"

	"resilientdb/internal/fabric"
	"resilientdb/internal/ledger"
	"resilientdb/internal/mempool"
	"resilientdb/internal/pbft"
	"resilientdb/internal/types"
)

// TxnJSON is one key-value write.
type TxnJSON struct {
	// Key is the written key.
	Key uint64 `json:"key"`
	// Value is the written value.
	Value uint64 `json:"value"`
}

// BatchJSON is a client transaction batch.
type BatchJSON struct {
	// Client is the submitting client's node ID.
	Client int32 `json:"client"`
	// Seq is the client-assigned batch sequence number.
	Seq uint64 `json:"seq"`
	// Txns are the batched transactions.
	Txns []TxnJSON `json:"txns,omitempty"`
	// NoOp marks a primary-proposed empty round.
	NoOp bool `json:"no_op,omitempty"`
}

// SubmitJSON is the body of POST /v1/submit: a signed client batch.
type SubmitJSON struct {
	// Batch is the transaction batch being submitted.
	Batch BatchJSON `json:"batch"`
	// Sig is the client's ed25519 signature over the batch's canonical
	// request payload (base64 in JSON).
	Sig []byte `json:"sig"`
}

// ExecutedJSON is a replay-window execution record.
type ExecutedJSON struct {
	// Seq is the executed batch's client sequence number.
	Seq uint64 `json:"seq"`
	// Digest is the executed batch's canonical digest (hex).
	Digest string `json:"digest"`
	// TxnCount is the number of transactions the batch carried.
	TxnCount int `json:"txn_count"`
}

// SubmitResultJSON is the response to POST /v1/submit.
type SubmitResultJSON struct {
	// Verdict is the admission outcome: admitted, duplicate, replayed, or
	// rate-limited.
	Verdict string `json:"verdict"`
	// Executed carries the replay-window record when Verdict is "replayed"
	// and the original execution is still remembered.
	Executed *ExecutedJSON `json:"executed,omitempty"`
}

// RequestStatusJSON is the response to GET /v1/request: the fate of one
// (client, seq).
type RequestStatusJSON struct {
	// Status is unknown, pending, or executed.
	Status string `json:"status"`
	// Executed carries the replay-window record when still available.
	Executed *ExecutedJSON `json:"executed,omitempty"`
}

// StatusJSON is the response to GET /v1/status: one replica's liveness
// card.
type StatusJSON struct {
	// Replica is the serving replica's node ID.
	Replica int32 `json:"replica"`
	// Cluster is the replica's cluster index.
	Cluster int `json:"cluster"`
	// Height is the current ledger height.
	Height uint64 `json:"height"`
	// Round is the highest executed consensus round.
	Round uint64 `json:"round"`
	// Head is the head block hash (hex; zero digest for an empty chain).
	Head string `json:"head"`
	// MempoolLen is the number of admitted-but-unexecuted requests.
	MempoolLen int `json:"mempool_len"`
}

// CertJSON is a commit certificate: the quorum proof behind a block.
type CertJSON struct {
	// View is the PBFT view the certificate was formed in.
	View uint64 `json:"view"`
	// Seq is the certified consensus sequence number.
	Seq uint64 `json:"seq"`
	// Digest is the certified batch digest (hex).
	Digest string `json:"digest"`
	// Batch is the certified batch itself.
	Batch BatchJSON `json:"batch"`
	// Signers are the replicas whose commit signatures the certificate
	// carries.
	Signers []int32 `json:"signers"`
	// Sigs are the commit signatures, index-aligned with Signers.
	Sigs [][]byte `json:"sigs"`
}

// BlockJSON is one ledger block with its commit certificate.
type BlockJSON struct {
	// Height is the block's chain position (starting at 1).
	Height uint64 `json:"height"`
	// Round is the consensus round that produced the block.
	Round uint64 `json:"round"`
	// Cluster is the cluster whose request the block holds.
	Cluster int32 `json:"cluster"`
	// Batch is the executed batch.
	Batch BatchJSON `json:"batch"`
	// BatchDigest commits to the batch contents (hex).
	BatchDigest string `json:"batch_digest"`
	// CertDigest commits to the commit certificate (hex).
	CertDigest string `json:"cert_digest"`
	// Prev is the previous block's hash (hex).
	Prev string `json:"prev"`
	// Hash is the block's own hash (hex).
	Hash string `json:"hash"`
	// Cert is the commit certificate, when the block carries one.
	Cert *CertJSON `json:"cert,omitempty"`
}

// ReadJSON is the response to GET /v1/read: a proof-carrying read
// attestation (see fabric.ReadState for the proof structure).
type ReadJSON struct {
	// Replica is the attesting replica.
	Replica int32 `json:"replica"`
	// Key is the key that was read.
	Key uint64 `json:"key"`
	// Value is the key's value (zero when absent).
	Value uint64 `json:"value"`
	// Found reports whether the key exists.
	Found bool `json:"found"`
	// Height is the ledger height at the read.
	Height uint64 `json:"height"`
	// Round is the highest executed round at the read.
	Round uint64 `json:"round"`
	// StateDigest is the full state-machine digest at the read (hex).
	StateDigest string `json:"state_digest"`
	// Applied is the number of transactions applied so far.
	Applied uint64 `json:"applied"`
	// Block is the head block with its commit certificate (nil on an empty
	// chain).
	Block *BlockJSON `json:"block,omitempty"`
	// Sig is the replica's signature over the attestation payload (base64).
	Sig []byte `json:"sig"`
}

// encDigest renders a digest as lower-case hex.
func encDigest(d types.Digest) string { return hex.EncodeToString(d[:]) }

// decDigest parses a lower-case hex digest.
func decDigest(s string) (types.Digest, error) {
	var d types.Digest
	b, err := hex.DecodeString(s)
	if err != nil {
		return d, fmt.Errorf("rpc: bad digest %q: %w", s, err)
	}
	if len(b) != len(d) {
		return d, fmt.Errorf("rpc: digest %q is %d bytes, want %d", s, len(b), len(d))
	}
	copy(d[:], b)
	return d, nil
}

// batchToJSON converts a batch for the wire.
func batchToJSON(b *types.Batch) BatchJSON {
	out := BatchJSON{Client: int32(b.Client), Seq: b.Seq, NoOp: b.NoOp}
	for _, t := range b.Txns {
		out.Txns = append(out.Txns, TxnJSON{Key: t.Key, Value: t.Value})
	}
	return out
}

// batchFromJSON reconstructs a batch and primes its digest cache (the batch
// is still private to the caller here, which is the only safe time).
func batchFromJSON(in *BatchJSON) types.Batch {
	b := types.Batch{Client: types.NodeID(in.Client), Seq: in.Seq, NoOp: in.NoOp}
	for _, t := range in.Txns {
		b.Txns = append(b.Txns, types.Transaction{Key: t.Key, Value: t.Value})
	}
	b.PrimeDigest()
	return b
}

// executedToJSON converts a replay-window record (nil-safe).
func executedToJSON(e *mempool.Executed) *ExecutedJSON {
	if e == nil {
		return nil
	}
	return &ExecutedJSON{Seq: e.Seq, Digest: encDigest(e.Digest), TxnCount: e.TxnCount}
}

// certToJSON converts a commit certificate for the wire.
func certToJSON(c *pbft.Certificate) *CertJSON {
	if c == nil {
		return nil
	}
	out := &CertJSON{View: c.View, Seq: c.Seq, Digest: encDigest(c.Digest),
		Batch: batchToJSON(&c.Batch), Sigs: c.Sigs}
	for _, s := range c.Signers {
		out.Signers = append(out.Signers, int32(s))
	}
	return out
}

// certFromJSON reconstructs a commit certificate.
func certFromJSON(in *CertJSON) (*pbft.Certificate, error) {
	if in == nil {
		return nil, nil
	}
	digest, err := decDigest(in.Digest)
	if err != nil {
		return nil, err
	}
	c := &pbft.Certificate{View: in.View, Seq: in.Seq, Digest: digest,
		Batch: batchFromJSON(&in.Batch), Sigs: in.Sigs}
	for _, s := range in.Signers {
		c.Signers = append(c.Signers, types.NodeID(s))
	}
	return c, nil
}

// blockToJSON converts a ledger block for the wire.
func blockToJSON(b *ledger.Block) *BlockJSON {
	if b == nil {
		return nil
	}
	out := &BlockJSON{Height: b.Height, Round: b.Round, Cluster: int32(b.Cluster),
		Batch:       batchToJSON(&b.Batch),
		BatchDigest: encDigest(b.BatchDigest), CertDigest: encDigest(b.CertDigest),
		Prev: encDigest(b.Prev), Hash: encDigest(b.Hash)}
	if cert, ok := b.Cert.(*pbft.Certificate); ok {
		out.Cert = certToJSON(cert)
	}
	return out
}

// blockFromJSON reconstructs a ledger block.
func blockFromJSON(in *BlockJSON) (*ledger.Block, error) {
	if in == nil {
		return nil, nil
	}
	b := &ledger.Block{Height: in.Height, Round: in.Round,
		Cluster: types.ClusterID(in.Cluster), Batch: batchFromJSON(&in.Batch)}
	var err error
	if b.BatchDigest, err = decDigest(in.BatchDigest); err != nil {
		return nil, err
	}
	if b.CertDigest, err = decDigest(in.CertDigest); err != nil {
		return nil, err
	}
	if b.Prev, err = decDigest(in.Prev); err != nil {
		return nil, err
	}
	if b.Hash, err = decDigest(in.Hash); err != nil {
		return nil, err
	}
	cert, err := certFromJSON(in.Cert)
	if err != nil {
		return nil, err
	}
	if cert != nil {
		b.Cert = cert
	}
	return b, nil
}

// readStateToJSON converts a read attestation for the wire.
func readStateToJSON(rs *fabric.ReadState) *ReadJSON {
	return &ReadJSON{Replica: int32(rs.Replica), Key: rs.Key, Value: rs.Value,
		Found: rs.Found, Height: rs.Height, Round: rs.Round,
		StateDigest: encDigest(rs.StateDigest), Applied: rs.Applied,
		Block: blockToJSON(rs.Block), Sig: rs.Sig}
}

// readStateFromJSON reconstructs a read attestation for verification.
func readStateFromJSON(in *ReadJSON) (*fabric.ReadState, error) {
	rs := &fabric.ReadState{Replica: types.NodeID(in.Replica), Key: in.Key,
		Value: in.Value, Found: in.Found, Height: in.Height, Round: in.Round,
		Applied: in.Applied, Sig: in.Sig}
	var err error
	if rs.StateDigest, err = decDigest(in.StateDigest); err != nil {
		return nil, err
	}
	if rs.Block, err = blockFromJSON(in.Block); err != nil {
		return nil, err
	}
	return rs, nil
}
