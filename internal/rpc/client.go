package rpc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/crypto"
	"resilientdb/internal/fabric"
	"resilientdb/internal/ledger"
	"resilientdb/internal/pbft"
	"resilientdb/internal/types"
)

// Client is a verifying RPC client for one provisioned client identity. It
// signs every submit with the client's ed25519 key and verifies every
// proof-carrying read against the deployment's key material
// (fabric.VerifyReadState) before returning it — a forged or tampered proof
// is rejected, counted in ProofRejects, and never surfaced as data. Safe
// for concurrent use.
type Client struct {
	base  string
	hc    *http.Client
	topo  config.Topology
	id    types.NodeID
	suite *crypto.Suite

	nextSeq      atomic.Uint64
	proofRejects atomic.Uint64
}

// NewClient builds a client for provisioned client index i (its signing key
// derives from the deployment's deterministic provisioning, like every
// other identity) talking to the replica RPC server at base, e.g.
// "http://127.0.0.1:9000".
func NewClient(base string, i int, topo config.Topology) *Client {
	id := config.ClientID(i)
	dir := crypto.NewDirectory(crypto.Real, append(topo.AllReplicas(), id))
	return &Client{
		base:  base,
		hc:    &http.Client{Timeout: 30 * time.Second},
		topo:  topo,
		id:    id,
		suite: crypto.NewSuite(dir, id, crypto.FreeCosts(), nil),
	}
}

// ID returns the client's provisioned node identifier.
func (c *Client) ID() types.NodeID { return c.id }

// ProofRejects returns how many read proofs failed verification and were
// discarded.
func (c *Client) ProofRejects() uint64 { return c.proofRejects.Load() }

// getJSON fetches path (with query) and decodes the JSON response into out.
func (c *Client) getJSON(path string, query url.Values, out any) error {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	resp, err := c.hc.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("rpc: GET %s: %s: %s", path, resp.Status, bytes.TrimSpace(body))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit signs and submits one batch of transactions, consuming the next
// client sequence number. It returns the assigned sequence number and the
// server's admission verdict; use WaitExecuted to block until execution.
func (c *Client) Submit(txns []types.Transaction) (uint64, *SubmitResultJSON, error) {
	seq := c.nextSeq.Add(1)
	res, err := c.SubmitSeq(seq, txns)
	return seq, res, err
}

// SubmitSeq signs and submits one batch under an explicit sequence number —
// the retry path (resubmitting the same seq is deduplicated server-side)
// and the raw material for replay tests.
func (c *Client) SubmitSeq(seq uint64, txns []types.Transaction) (*SubmitResultJSON, error) {
	b := types.Batch{Client: c.id, Seq: seq, Txns: txns}
	b.PrimeDigest()
	sig := c.suite.Sign(pbft.RequestPayload(&b))
	body, err := json.Marshal(SubmitJSON{Batch: batchToJSON(&b), Sig: sig})
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Post(c.base+"/v1/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("rpc: submit: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	out := &SubmitResultJSON{}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return nil, err
	}
	return out, nil
}

// WaitExecuted polls the request-status endpoint until the (client, seq)
// submit reports executed, or timeout elapses.
func (c *Client) WaitExecuted(seq uint64, timeout time.Duration) (*RequestStatusJSON, error) {
	deadline := time.Now().Add(timeout)
	for {
		q := url.Values{}
		q.Set("client", fmt.Sprint(int32(c.id)))
		q.Set("seq", fmt.Sprint(seq))
		var st RequestStatusJSON
		if err := c.getJSON("/v1/request", q, &st); err != nil {
			return nil, err
		}
		if st.Status == "executed" {
			return &st, nil
		}
		if time.Now().After(deadline) {
			return &st, fmt.Errorf("rpc: seq %d not executed within %v (status %s)", seq, timeout, st.Status)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// Status fetches the replica's status card.
func (c *Client) Status() (*StatusJSON, error) {
	out := &StatusJSON{}
	if err := c.getJSON("/v1/status", nil, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Block fetches the ledger block at the given height and verifies its
// commit certificate against the deployment's keys before returning it: a
// block the quorum never certified is rejected.
func (c *Client) Block(height uint64) (*ledger.Block, error) {
	q := url.Values{}
	q.Set("height", fmt.Sprint(height))
	var in BlockJSON
	if err := c.getJSON("/v1/block", q, &in); err != nil {
		return nil, err
	}
	blk, err := blockFromJSON(&in)
	if err != nil {
		return nil, err
	}
	cert, ok := blk.Cert.(*pbft.Certificate)
	if !ok || cert == nil {
		return nil, fmt.Errorf("rpc: block %d carries no commit certificate", height)
	}
	quorum := c.topo.PerCluster - c.topo.F()
	if cert.Seq != blk.Round || cert.Digest != blk.BatchDigest ||
		!cert.Verify(c.suite, c.topo.ClusterMembers(int(blk.Cluster)), quorum) {
		return nil, fmt.Errorf("rpc: block %d certificate fails verification", height)
	}
	return blk, nil
}

// Read performs a proof-carrying read of one key. The returned attestation
// has been verified end to end — replica signature and head-block commit
// certificate — so its Value/Found fields are Byzantine-evident: a lying
// replica would have had to forge ed25519 signatures. Failed proofs are
// counted in ProofRejects and returned as errors.
func (c *Client) Read(key uint64) (*fabric.ReadState, error) {
	q := url.Values{}
	q.Set("key", fmt.Sprint(key))
	var in ReadJSON
	if err := c.getJSON("/v1/read", q, &in); err != nil {
		return nil, err
	}
	rs, err := readStateFromJSON(&in)
	if err != nil {
		c.proofRejects.Add(1)
		return nil, fmt.Errorf("rpc: malformed read proof: %w", err)
	}
	if err := fabric.VerifyReadState(c.suite, c.topo, rs); err != nil {
		c.proofRejects.Add(1)
		return nil, err
	}
	return rs, nil
}
