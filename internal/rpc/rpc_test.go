package rpc

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/fabric"
	"resilientdb/internal/types"
)

// startRPC boots a single-cluster fabric and an RPC server on its primary.
func startRPC(t *testing.T) (*fabric.Fabric, config.Topology, *Server, string) {
	t.Helper()
	topo := config.NewTopology(1, 4)
	f := fabric.New(fabric.Config{
		Topo:          topo,
		BatchSize:     5,
		Records:       256,
		LocalTimeout:  400 * time.Millisecond,
		RemoteTimeout: 700 * time.Millisecond,
	})
	t.Cleanup(f.Stop)
	srv := NewServer(f.Node(topo.ReplicaID(0, 0)), topo)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return f, topo, srv, "http://" + addr
}

// TestRPCEndToEnd drives the full front-door flow against a live cluster:
// signed submit through the admission path, executed-status polling, a
// certificate-verified block fetch, and a proof-carrying read whose
// attestation verifies end to end.
func TestRPCEndToEnd(t *testing.T) {
	f, topo, _, base := startRPC(t)
	cl := NewClient(base, 0, topo)

	seq, res, err := cl.Submit([]types.Transaction{{Key: 42, Value: 7}, {Key: 43, Value: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != "admitted" {
		t.Fatalf("submit verdict %q, want admitted", res.Verdict)
	}
	st, err := cl.WaitExecuted(seq, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Executed == nil || st.Executed.TxnCount != 2 {
		t.Errorf("executed record %+v, want txn_count 2", st.Executed)
	}

	status, err := cl.Status()
	if err != nil {
		t.Fatal(err)
	}
	if status.Height == 0 {
		t.Error("status reports empty ledger after execution")
	}
	if status.Replica != int32(topo.ReplicaID(0, 0)) {
		t.Errorf("status replica %d, want primary", status.Replica)
	}

	blk, err := cl.Block(1)
	if err != nil {
		t.Fatalf("certified block fetch: %v", err)
	}
	if blk.Height != 1 {
		t.Errorf("block height %d, want 1", blk.Height)
	}

	rs, err := cl.Read(42)
	if err != nil {
		t.Fatalf("proven read: %v", err)
	}
	if !rs.Found || rs.Value != 7 {
		t.Errorf("read (found=%v, value=%d), want (true, 7)", rs.Found, rs.Value)
	}
	if cl.ProofRejects() != 0 {
		t.Errorf("honest proofs counted as rejects: %d", cl.ProofRejects())
	}

	// A replayed submit resolves from the replay window without re-entering
	// consensus, and carries the original execution record.
	res2, err := cl.SubmitSeq(seq, []types.Transaction{{Key: 42, Value: 7}, {Key: 43, Value: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Verdict != "replayed" || res2.Executed == nil {
		t.Errorf("retry after execution: verdict %q executed %+v, want replayed with record",
			res2.Verdict, res2.Executed)
	}

	// An absent key still yields a verifiable attestation (of absence).
	miss, err := cl.Read(999999)
	if err != nil {
		t.Fatalf("proven read of absent key: %v", err)
	}
	if miss.Found {
		t.Error("absent key reported found")
	}
	_ = f
}

// TestRPCSubmitRejectsMalformedJSON pins the 400 path: a body that is not
// valid JSON never reaches signature verification or admission.
func TestRPCSubmitRejectsMalformedJSON(t *testing.T) {
	_, _, _, base := startRPC(t)
	resp, err := http.Post(base+"/v1/submit", "application/json",
		strings.NewReader(`{"batch": {"client": 1048576, "seq":`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}

// TestRPCSubmitRejectsOversizedBody pins the 413 path: the body limit cuts
// the read off before an abusive payload is buffered, since nothing about
// the body can be trusted before its signature is checked.
func TestRPCSubmitRejectsOversizedBody(t *testing.T) {
	f, topo, _, _ := startRPC(t)
	small := NewServer(f.Node(topo.ReplicaID(0, 0)), topo)
	small.MaxBody = 1024
	addr, err := small.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()

	// Valid JSON that only reveals its size past the limit: the decoder must
	// be cut off by the byte budget, not by a syntax error.
	huge := `{"batch":{"client":1048576,"seq":1},"sig":"` +
		strings.Repeat("A", 4096) + `"}`
	resp, err := http.Post("http://"+addr+"/v1/submit", "application/json",
		strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

// TestRPCSubmitRejectsBadSignature pins the 403 path: a well-formed submit
// whose signature does not verify is refused, never admitted, and counted
// in the replica's VerifyReject drops like any other forged message.
func TestRPCSubmitRejectsBadSignature(t *testing.T) {
	f, topo, _, base := startRPC(t)
	cl := NewClient(base, 0, topo)

	b := types.Batch{Client: cl.ID(), Seq: 1, Txns: []types.Transaction{{Key: 1, Value: 2}}}
	b.PrimeDigest()
	body, _ := json.Marshal(SubmitJSON{Batch: batchToJSON(&b), Sig: []byte("forged")})
	resp, err := http.Post(base+"/v1/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("forged signature: status %d, want 403", resp.StatusCode)
	}
	if rejects := f.Stats().VerifyReject; rejects == 0 {
		t.Error("forged submit not counted in VerifyReject drops")
	}

	// The forgery must not have poisoned admission state: the honest client
	// can still use the same (client, seq).
	res, err := cl.SubmitSeq(1, []types.Transaction{{Key: 1, Value: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != "admitted" {
		t.Errorf("honest submit after forgery: verdict %q, want admitted", res.Verdict)
	}
}

// TestRPCClientRejectsTamperedProof pins the verifying client: a read
// response whose value was tampered in flight (or served by a lying
// replica) fails proof verification, is counted, and never surfaces as
// data.
func TestRPCClientRejectsTamperedProof(t *testing.T) {
	_, topo, _, base := startRPC(t)
	honest := NewClient(base, 0, topo)

	seq, _, err := honest.Submit([]types.Transaction{{Key: 77, Value: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := honest.WaitExecuted(seq, 20*time.Second); err != nil {
		t.Fatal(err)
	}

	// Capture a genuine attestation, then serve tampered variants of it.
	resp, err := http.Get(base + "/v1/read?key=77")
	if err != nil {
		t.Fatal(err)
	}
	var genuine ReadJSON
	if err := json.NewDecoder(resp.Body).Decode(&genuine); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	tampered := genuine
	tampered.Value = 500000 // the lie: a different value for the key

	liar := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, &tampered)
	}))
	defer liar.Close()

	victim := NewClient(liar.URL, 0, topo)
	if _, err := victim.Read(77); err == nil {
		t.Fatal("tampered read proof accepted")
	}
	if victim.ProofRejects() != 1 {
		t.Errorf("ProofRejects = %d, want 1", victim.ProofRejects())
	}

	// Tampering with the embedded certificate instead of the value must
	// fail too: the replica signature alone cannot vouch for quorum.
	forged := genuine
	if forged.Block == nil || forged.Block.Cert == nil {
		t.Fatal("genuine read carried no certificate to tamper with")
	}
	cert := *forged.Block.Cert
	cert.Sigs = make([][]byte, len(cert.Sigs))
	for i := range cert.Sigs {
		cert.Sigs[i] = []byte("forged-commit-signature")
	}
	blk := *forged.Block
	blk.Cert = &cert
	forged.Block = &blk
	tampered = forged
	if _, err := victim.Read(77); err == nil {
		t.Fatal("forged certificate accepted")
	}
	if victim.ProofRejects() != 2 {
		t.Errorf("ProofRejects = %d, want 2", victim.ProofRejects())
	}

	// The genuine attestation still verifies through the same code path.
	tampered = genuine
	rs, err := victim.Read(77)
	if err != nil {
		t.Fatalf("genuine proof rejected: %v", err)
	}
	if !rs.Found || rs.Value != 5 {
		t.Errorf("read (found=%v, value=%d), want (true, 5)", rs.Found, rs.Value)
	}
}
