package rpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/fabric"
	"resilientdb/internal/pbft"
	"resilientdb/internal/types"
)

// DefaultMaxBody bounds the POST /v1/submit request body. A batch of a few
// thousand transactions fits comfortably; anything larger is an abuse
// vector (the body is read before the signature can be checked).
const DefaultMaxBody = 1 << 20

// DefaultReadTimeout bounds how long GET /v1/read waits for the worker loop
// to reach the posted read closure.
const DefaultReadTimeout = 5 * time.Second

// Server is one replica's RPC front door: an HTTP/JSON surface over the
// fabric front-door APIs (Node.SubmitRequest, Node.RequestStatus,
// Node.ProvenRead) plus ledger and status reads. Submits run the same
// admission path as transport-delivered requests; bad signatures are
// rejected with 403 and counted in the node's VerifyReject drop counter.
type Server struct {
	node *fabric.Node
	topo config.Topology

	// MaxBody overrides DefaultMaxBody when set before Start.
	MaxBody int64
	// ReadTimeout overrides DefaultReadTimeout when set before Start.
	ReadTimeout time.Duration

	ln   net.Listener
	http *http.Server
}

// NewServer builds a server for one hosted replica. Call Start to listen.
func NewServer(node *fabric.Node, topo config.Topology) *Server {
	return &Server{node: node, topo: topo,
		MaxBody: DefaultMaxBody, ReadTimeout: DefaultReadTimeout}
}

// Start listens on addr (host:port; port 0 picks a free port) and serves in
// the background until Close. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /v1/block", s.handleBlock)
	mux.HandleFunc("GET /v1/read", s.handleRead)
	mux.HandleFunc("GET /v1/request", s.handleRequest)
	mux.HandleFunc("POST /v1/submit", s.handleSubmit)
	s.ln = ln
	s.http = &http.Server{Handler: mux}
	go s.http.Serve(ln)
	return ln.Addr().String(), nil
}

// Addr returns the bound listen address (empty before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and closes open connections. Idempotent.
func (s *Server) Close() error {
	if s.http == nil {
		return nil
	}
	return s.http.Close()
}

// writeJSON sends v as a JSON response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := s.node.ID()
	writeJSON(w, StatusJSON{
		Replica:    int32(id),
		Cluster:    int(s.topo.ClusterOf(id)),
		Height:     s.node.Height(),
		Round:      s.node.ExecutedRound(),
		Head:       encDigest(s.node.Head()),
		MempoolLen: s.node.MempoolLen(),
	})
}

func (s *Server) handleBlock(w http.ResponseWriter, r *http.Request) {
	h, err := strconv.ParseUint(r.URL.Query().Get("height"), 10, 64)
	if err != nil {
		http.Error(w, "rpc: bad height parameter", http.StatusBadRequest)
		return
	}
	blk := s.node.BlockAt(h)
	if blk == nil {
		http.Error(w, "rpc: no such block (beyond head, or pruned)", http.StatusNotFound)
		return
	}
	writeJSON(w, blockToJSON(blk))
}

func (s *Server) handleRead(w http.ResponseWriter, r *http.Request) {
	key, err := strconv.ParseUint(r.URL.Query().Get("key"), 10, 64)
	if err != nil {
		http.Error(w, "rpc: bad key parameter", http.StatusBadRequest)
		return
	}
	rs, err := s.node.ProvenRead(key, s.ReadTimeout)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, readStateToJSON(rs))
}

func (s *Server) handleRequest(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	client, cerr := strconv.ParseInt(q.Get("client"), 10, 32)
	seq, serr := strconv.ParseUint(q.Get("seq"), 10, 64)
	if cerr != nil || serr != nil {
		http.Error(w, "rpc: bad client/seq parameters", http.StatusBadRequest)
		return
	}
	status, exec := s.node.RequestStatus(types.NodeID(client), seq)
	writeJSON(w, RequestStatusJSON{Status: status.String(), Executed: executedToJSON(exec)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.MaxBody)
	var in SubmitJSON
	if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("rpc: request body exceeds %d bytes", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "rpc: malformed submit body: "+err.Error(), http.StatusBadRequest)
		return
	}
	req := &pbft.Request{Batch: batchFromJSON(&in.Batch), Sig: in.Sig}
	verdict, exec, err := s.node.SubmitRequest(req)
	if err != nil {
		// Bad signature (already counted in the node's VerifyReject drops).
		http.Error(w, err.Error(), http.StatusForbidden)
		return
	}
	writeJSON(w, SubmitResultJSON{Verdict: verdict.String(), Executed: executedToJSON(exec)})
}
