package byzantine

import (
	"fmt"
	"strings"
	"sync"

	"resilientdb/internal/config"
	"resilientdb/internal/core"
	"resilientdb/internal/ledger"
	"resilientdb/internal/pbft"
	"resilientdb/internal/snapshot"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
)

// The built-in attack scripts. Each models one class of Byzantine behaviour
// from the BFT literature that crash-fault testing cannot exercise:
//
//   - EquivocatingPrimary: conflicting proposals to disjoint subsets of the
//     cluster (the canonical safety attack on a primary-backup protocol).
//   - DoubleVoter: a coalition member that countersigns the primary's
//     equivocation — only meaningful with > f attackers, which is exactly
//     what the harness's teeth tests use to prove the invariant checks can
//     fail.
//   - ShareForger: garbled commit certificates sent cross-cluster (GeoBFT's
//     global sharing step), forcing the remote view-change path.
//   - ViewChangeSpammer: stale and far-future view-change campaigns plus
//     forged remote view-change requests, probing the spam defenses.
//   - CatchupTamperer: tampered and fabricated catch-up responses aimed at a
//     recovering replica (the state-transfer attack surface).
//   - SnapshotTamperer: corrupted checkpoint manifests and state chunks
//     served to a snapshot-bootstrapping replica (the bounded-history attack
//     surface).
//   - Suppressor: selective per-victim message suppression (a "gray"
//     failure: the attacker is alive but starves chosen peers).

// twinBatch derives the deterministic equivocated twin of a batch: same
// client and sequence, different content — so its digest differs and two
// quorums could be driven to conflicting decisions.
func twinBatch(b types.Batch) types.Batch {
	twin := types.Batch{Client: b.Client, Seq: b.Seq, NoOp: b.NoOp}
	if len(b.Txns) == 0 {
		twin.Txns = []types.Transaction{{Key: 0xb1a5ed, Value: b.Seq}}
	} else {
		twin.Txns = make([]types.Transaction, len(b.Txns))
		for i, t := range b.Txns {
			twin.Txns[i] = types.Transaction{Key: t.Key, Value: t.Value ^ 0x5a5a5a5a}
		}
	}
	twin.PrimeDigest()
	return twin
}

// doubleVote rewrites an outbound prepare or commit vote for a forked
// sequence into its twin supporting the fork's digest, signed with the
// adversary's own key. It is shared by EquivocatingPrimary (the forker) and
// DoubleVoter (the coalition member).
func doubleVote(a *Adversary, to types.NodeID, msg types.Message) ([]transport.Delivery, bool) {
	switch m := msg.(type) {
	case *pbft.Prepare:
		fk := a.fleet.fork(forkKey{cluster: a.Cluster(), view: m.View, seq: m.Seq})
		if fk == nil || to != a.DefaultVictim() {
			return nil, false
		}
		a.tampered.Add(1)
		return []transport.Delivery{{To: to, Msg: &pbft.Prepare{
			View: m.View, Seq: m.Seq, Digest: fk.digest, Replica: a.id,
			Sig: a.suite.Sign(pbft.PreparePayload(m.View, m.Seq, fk.digest)),
		}}}, true
	case *pbft.Commit:
		fk := a.fleet.fork(forkKey{cluster: a.Cluster(), view: m.View, seq: m.Seq})
		if fk == nil || to != a.DefaultVictim() {
			return nil, false
		}
		a.tampered.Add(1)
		return []transport.Delivery{{To: to, Msg: &pbft.Commit{
			View: m.View, Seq: m.Seq, Digest: fk.digest, Replica: a.id,
			Sig: a.suite.Sign(pbft.CommitPayload(m.View, m.Seq, fk.digest)),
		}}}, true
	}
	return nil, false
}

// EquivocatingPrimary forks the primary's own proposals: the default victim
// receives a conflicting twin proposal (and twin votes), everyone else the
// real one. With Detector set, one honest replica is deliberately shown both
// proposals — provable equivocation that makes it campaign for a view change,
// so the cluster routes around the attacker (the liveness half of the
// scenario). With exactly f attackers the twin can never gather a quorum and
// safety holds; a coalition of this script plus DoubleVoter on >f replicas
// commits both sides — which is what the harness's teeth test proves it can
// detect.
type EquivocatingPrimary struct {
	// Rounds caps how many sequence numbers are forked (≤ 0: unlimited).
	Rounds int
	// Detector, when set, shows one honest replica both conflicting
	// proposals so the equivocation is provable and triggers a view change.
	Detector bool

	mu     sync.Mutex
	forked int
}

// Name implements Script.
func (s *EquivocatingPrimary) Name() string { return "equivocating-primary" }

// Rewrite implements Script.
func (s *EquivocatingPrimary) Rewrite(a *Adversary, to types.NodeID, msg types.Message) ([]transport.Delivery, bool) {
	if pp, ok := msg.(*pbft.PrePrepare); ok {
		k := forkKey{cluster: a.Cluster(), view: pp.View, seq: pp.Seq}
		fk := a.fleet.fork(k)
		if fk == nil {
			s.mu.Lock()
			capped := s.Rounds > 0 && s.forked >= s.Rounds
			if !capped {
				s.forked++
			}
			s.mu.Unlock()
			if capped {
				return nil, false
			}
			twin := twinBatch(pp.Batch)
			fk = a.fleet.publishFork(k, &fork{digest: twin.Digest(), batch: twin})
			a.forked.Add(1)
		}
		twinPP := &pbft.PrePrepare{View: pp.View, Seq: pp.Seq, Digest: fk.digest, Batch: fk.batch}
		switch {
		case to == a.DefaultVictim():
			return []transport.Delivery{{To: to, Msg: twinPP}}, true
		case s.Detector && to == a.DefaultDetector():
			return []transport.Delivery{{To: to, Msg: pp}, {To: to, Msg: twinPP}}, true
		}
		return nil, false
	}
	return doubleVote(a, to, msg)
}

// DoubleVoter countersigns forks published by an EquivocatingPrimary in its
// cluster: prepares and commits sent to the victim are rewritten to support
// the forked digest. On its own (≤ f attackers) it changes nothing; as part
// of a >f coalition it is what lets both sides of an equivocation commit.
type DoubleVoter struct{}

// Name implements Script.
func (DoubleVoter) Name() string { return "double-voter" }

// Rewrite implements Script.
func (DoubleVoter) Rewrite(a *Adversary, to types.NodeID, msg types.Message) ([]transport.Delivery, bool) {
	return doubleVote(a, to, msg)
}

// ShareForger garbles the commit certificates a primary shares with other
// clusters (GeoBFT's global sharing step): remote replicas must reject every
// forgery — counted as verify-rejects — block on the missing round, and
// depose the forger through the remote view-change protocol. Local traffic
// is untouched, so the forger's own cluster keeps committing: the attack is
// only visible globally, exactly the failure mode Figure 7 exists for.
type ShareForger struct {
	mu    sync.Mutex
	count int
}

// Name implements Script.
func (s *ShareForger) Name() string { return "share-forger" }

// Rewrite implements Script.
func (s *ShareForger) Rewrite(a *Adversary, to types.NodeID, msg types.Message) ([]transport.Delivery, bool) {
	gs, ok := msg.(*core.GlobalShare)
	if !ok || gs.Cert == nil || a.topo.ClusterOf(to) == a.Cluster() || to.IsClient() {
		return nil, false
	}
	s.mu.Lock()
	n := s.count
	s.count++
	s.mu.Unlock()
	a.tampered.Add(1)
	return []transport.Delivery{{To: to, Msg: forgeShare(gs, n)}}, true
}

// forgeShare builds the n-th deterministic forgery of a certificate share.
// The original message (shared with honest nodes in-process) is never
// mutated; every forgery is a fresh message that must fail certificate
// verification at the receiver — or, for the tampered-batch variant, fail
// the digest binding the way a wire-level tamper would.
func forgeShare(gs *core.GlobalShare, n int) *core.GlobalShare {
	src := gs.Cert
	cert := &pbft.Certificate{
		View: src.View, Seq: src.Seq, Digest: src.Digest, Batch: src.Batch,
		Signers: append([]types.NodeID(nil), src.Signers...),
	}
	cert.Sigs = make([][]byte, len(src.Sigs))
	for i, sig := range src.Sigs {
		cert.Sigs[i] = append([]byte(nil), sig...)
	}
	switch n % 4 {
	case 0: // corrupt one commit signature
		if len(cert.Sigs) > 0 && len(cert.Sigs[0]) > 0 {
			cert.Sigs[0][0] ^= 0xff
		}
	case 1: // duplicate a signer to fake the quorum
		if len(cert.Signers) > 1 {
			cert.Signers[1] = cert.Signers[0]
			cert.Sigs[1] = append([]byte(nil), cert.Sigs[0]...)
		}
	case 2: // drop a signature: signer/signature counts disagree
		if len(cert.Sigs) > 0 {
			cert.Sigs = cert.Sigs[:len(cert.Sigs)-1]
		}
	case 3: // tamper the batch content (fresh struct: digests recompute)
		tampered := types.Batch{Client: src.Batch.Client, Seq: src.Batch.Seq, NoOp: src.Batch.NoOp,
			Txns: append([]types.Transaction(nil), src.Batch.Txns...)}
		if len(tampered.Txns) > 0 {
			tampered.Txns[0].Value ^= 0xbad
		} else {
			tampered.Txns = []types.Transaction{{Key: 1, Value: 0xbad}}
		}
		cert.Batch = tampered
	}
	return &core.GlobalShare{Cluster: gs.Cluster, Round: gs.Round, Cert: cert}
}

// ViewChangeSpammer rides on the compromised replica's normal traffic: every
// Every-th outbound message also carries protocol-shaped spam — far-future
// view-change campaigns (validly signed, probing the vcStore per-sender
// bound), forged view-change signatures, and forged or stale remote
// view-change requests to other clusters. None of it may move any honest
// view, and every forged piece must be counted as a verify-reject.
type ViewChangeSpammer struct {
	// Every paces the spam: one burst per Every intercepted sends (≤ 0: 8).
	Every int

	mu   sync.Mutex
	seen int
	wave uint64
}

// Name implements Script.
func (s *ViewChangeSpammer) Name() string { return "view-change-spammer" }

// Rewrite implements Script.
func (s *ViewChangeSpammer) Rewrite(a *Adversary, to types.NodeID, msg types.Message) ([]transport.Delivery, bool) {
	if to.IsClient() {
		return nil, false
	}
	every := s.Every
	if every <= 0 {
		every = 8
	}
	s.mu.Lock()
	s.seen++
	fire := s.seen%every == 0
	wave := s.wave
	if fire {
		s.wave++
	}
	s.mu.Unlock()
	if !fire {
		return nil, false
	}
	out := []transport.Delivery{{To: to, Msg: msg}} // the real message still flows
	if a.topo.ClusterOf(to) == a.Cluster() {
		// Far-future campaign, validly signed: the receiver must keep at
		// most one stored campaign for us no matter how many we send.
		far := &pbft.ViewChange{NewView: 1<<20 + wave, Replica: a.id}
		far.Sig = a.suite.Sign(pbft.ViewChangePayload(far))
		// Near-view campaign with a forged signature: must hit the
		// signature check.
		forged := &pbft.ViewChange{NewView: 2 + wave%32, Replica: a.id, Sig: []byte("forged")}
		out = append(out, transport.Delivery{To: to, Msg: far}, transport.Delivery{To: to, Msg: forged})
		a.spammed.Add(2)
	} else {
		// Forged remote view-change request against the recipient's cluster…
		forged := &core.Rvc{Target: a.topo.ClusterOf(to), From: a.Cluster(),
			Round: 1 + wave, V: wave, Replica: a.id, Sig: []byte("forged")}
		// …and a stale, validly signed replay of the same request (V never
		// advances), which must be deduplicated, never accumulate votes.
		stale := &core.Rvc{Target: a.topo.ClusterOf(to), From: a.Cluster(),
			Round: 1, V: 0, Replica: a.id}
		stale.Sig = a.suite.Sign(core.RvcPayload(stale))
		out = append(out, transport.Delivery{To: to, Msg: forged}, transport.Delivery{To: to, Msg: stale})
		a.spammed.Add(2)
	}
	return out, true
}

// CatchupTamperer attacks ledger state transfer: real catch-up responses the
// replica serves are forwarded with deterministically garbled content
// (corrupted certificate, swapped blocks, tampered batch, broken linkage),
// and forged responses claiming a fabricated chain are injected at a chosen
// recovering victim. Every variant must be rejected atomically — the
// victim's ledger untouched, the rejection counted — and the victim must
// still converge through honest peers.
type CatchupTamperer struct {
	// Victim receives the injected forged responses. types.NoNode selects
	// the adversary's DefaultVictim.
	Victim types.NodeID
	// Inject caps the fabricated responses (≤ 0: 64).
	Inject int

	mu       sync.Mutex
	count    int
	injected int
}

// Name implements Script.
func (s *CatchupTamperer) Name() string { return "catchup-tamperer" }

// victim resolves the configured victim.
func (s *CatchupTamperer) victim(a *Adversary) types.NodeID {
	if s.Victim == types.NoNode {
		return a.DefaultVictim()
	}
	return s.Victim
}

// Rewrite implements Script.
func (s *CatchupTamperer) Rewrite(a *Adversary, to types.NodeID, msg types.Message) ([]transport.Delivery, bool) {
	if resp, ok := msg.(*core.CatchUpResp); ok && len(resp.Blocks) > 0 {
		s.mu.Lock()
		n := s.count
		s.count++
		s.mu.Unlock()
		a.tampered.Add(1)
		return []transport.Delivery{{To: to, Msg: tamperResp(resp, n)}}, true
	}
	if to.IsClient() {
		return nil, false
	}
	limit := s.Inject
	if limit <= 0 {
		limit = 64
	}
	s.mu.Lock()
	inject := s.injected < limit
	if inject {
		s.injected++
	}
	s.mu.Unlock()
	if !inject {
		return nil, false
	}
	a.injected.Add(1)
	return []transport.Delivery{
		{To: to, Msg: msg}, // the real message still flows
		{To: s.victim(a), Msg: forgedResp(a)},
	}, true
}

// tamperResp builds the n-th deterministic corruption of a real catch-up
// response without mutating the original (its blocks are shared with the
// sender's own ledger).
func tamperResp(resp *core.CatchUpResp, n int) *core.CatchUpResp {
	blocks := make([]*ledger.Block, len(resp.Blocks))
	for i, b := range resp.Blocks {
		nb := *b
		blocks[i] = &nb
	}
	switch n % 4 {
	case 0: // corrupt the first block's certificate
		if cert, ok := blocks[0].Cert.(*pbft.Certificate); ok {
			forged := *cert
			forged.Sigs = make([][]byte, len(cert.Sigs))
			for i, sig := range cert.Sigs {
				forged.Sigs[i] = append([]byte(nil), sig...)
			}
			if len(forged.Sigs) > 0 && len(forged.Sigs[0]) > 0 {
				forged.Sigs[0][0] ^= 0xff
			}
			blocks[0].Cert = &forged
		}
	case 1: // swap two adjacent blocks (reorders history)
		if len(blocks) > 1 {
			blocks[0], blocks[1] = blocks[1], blocks[0]
		}
	case 2: // tamper a batch (fresh struct: digest binding must catch it)
		b := blocks[len(blocks)/2]
		tampered := types.Batch{Client: b.Batch.Client, Seq: b.Batch.Seq, NoOp: b.Batch.NoOp,
			Txns: append([]types.Transaction(nil), b.Batch.Txns...)}
		if len(tampered.Txns) > 0 {
			tampered.Txns[0].Value ^= 0xbad
		} else {
			tampered.Txns = []types.Transaction{{Key: 2, Value: 0xbad}}
		}
		b.Batch = tampered
	case 3: // break the hash-chain linkage mid-range
		blocks[len(blocks)/2].Prev[0] ^= 0xff
	}
	return &core.CatchUpResp{Blocks: blocks, Height: resp.Height}
}

// forgedResp fabricates a catch-up response from nothing: a well-formed,
// correctly linked chain of z·2 blocks whose certificates are pure garbage.
// A recovering victim at height zero will attempt the import and must reject
// it at certificate re-verification (the linkage is deliberately sealed so
// the deeper check is the one exercised).
func forgedResp(a *Adversary) *core.CatchUpResp {
	z := a.topo.Clusters
	members := a.topo.ClusterMembers(int(a.Cluster()))
	quorum := len(members) - a.topo.F()
	var blocks []*ledger.Block
	var prev types.Digest
	for h := uint64(1); h <= uint64(2*z); h++ {
		batch := types.Batch{Client: types.ClientIDBase, Seq: h,
			Txns: []types.Transaction{{Key: h, Value: 0xbad}}}
		batch.PrimeDigest()
		cert := &pbft.Certificate{
			View: 0, Seq: (h-1)/uint64(z) + 1, Digest: batch.Digest(), Batch: batch,
			Signers: append([]types.NodeID(nil), members[:quorum]...),
		}
		for range cert.Signers {
			cert.Sigs = append(cert.Sigs, []byte("forged"))
		}
		b := &ledger.Block{
			Height:      h,
			Round:       (h-1)/uint64(z) + 1,
			Cluster:     types.ClusterID((h - 1) % uint64(z)),
			Batch:       batch,
			BatchDigest: batch.Digest(),
			CertDigest:  cert.CertDigest(),
			Cert:        cert,
		}
		b.Seal(prev)
		prev = b.Hash
		blocks = append(blocks, b)
	}
	return &core.CatchUpResp{Blocks: blocks, Height: uint64(2 * z)}
}

// SnapshotTamperer attacks snapshot-based state transfer: every snapshot
// response the compromised replica serves is replaced by a deterministically
// corrupted variant — a garbled endorsement signature, a wrong state hash, a
// forged commit certificate, or tampered chunk bytes. Where the corruption
// leaves the manifest signable, it is re-signed with the compromised
// replica's own key (exactly the power a Byzantine replica has), so the
// deeper check — certificate verification, the f+1 matching-key quorum, the
// chunk content address — is the one exercised rather than the outer
// signature. A joining replica must never install any of it: verifiable
// forgeries are rejected and counted, key-diverging manifests starve the
// quorum, and the joiner converges through honest peers.
type SnapshotTamperer struct {
	mu     sync.Mutex
	mans   int
	chunks int
}

// Name implements Script.
func (s *SnapshotTamperer) Name() string { return "snapshot-tamperer" }

// Rewrite implements Script.
func (s *SnapshotTamperer) Rewrite(a *Adversary, to types.NodeID, msg types.Message) ([]transport.Delivery, bool) {
	resp, ok := msg.(*core.SnapshotResp)
	if !ok {
		return nil, false
	}
	if resp.Manifest != nil {
		s.mu.Lock()
		n := s.mans
		s.mans++
		s.mu.Unlock()
		a.tampered.Add(1)
		return []transport.Delivery{{To: to, Msg: &core.SnapshotResp{
			Manifest: tamperManifest(a, resp.Manifest, n),
			Round:    resp.Round,
			Chunk:    resp.Chunk,
		}}}, true
	}
	if len(resp.Data) == 0 {
		return nil, false
	}
	s.mu.Lock()
	n := s.chunks
	s.chunks++
	s.mu.Unlock()
	a.tampered.Add(1)
	data := append([]byte(nil), resp.Data...)
	if n%2 == 0 {
		data[0] ^= 0xff // wrong bytes, right length: content address must catch it
	} else {
		data = data[:len(data)-1] // truncated: length check must catch it
	}
	return []transport.Delivery{{To: to, Msg: &core.SnapshotResp{
		Round: resp.Round, Chunk: resp.Chunk, Data: data,
	}}}, true
}

// tamperManifest builds the n-th deterministic manifest forgery without
// mutating the original (it is shared with the sender's own snapshot state).
func tamperManifest(a *Adversary, m *snapshot.Manifest, n int) *snapshot.Manifest {
	forged := *m
	forged.Chunks = append([]types.Digest(nil), m.Chunks...)
	forged.Hist = append([]types.Digest(nil), m.Hist...)
	forged.Sig = append([]byte(nil), m.Sig...)
	switch n % 4 {
	case 0: // garble the endorsement signature
		if len(forged.Sig) > 0 {
			forged.Sig[0] ^= 0xff
		} else {
			forged.Sig = []byte("forged")
		}
	case 1: // claim a different state, validly re-signed: key diverges
		forged.StateHash[0] ^= 0xff
		forged.Sign(a.suite)
	case 2: // forge the commit certificate behind the checkpoint
		if m.Cert != nil {
			cert := *m.Cert
			cert.Signers = append([]types.NodeID(nil), m.Cert.Signers...)
			cert.Sigs = make([][]byte, len(m.Cert.Sigs))
			for i, sig := range m.Cert.Sigs {
				cert.Sigs[i] = append([]byte(nil), sig...)
			}
			if len(cert.Sigs) > 0 && len(cert.Sigs[0]) > 0 {
				cert.Sigs[0][0] ^= 0xff
			}
			forged.Cert = &cert
		}
		forged.Sign(a.suite)
	case 3: // rewrite one cluster's commit history, validly re-signed
		if len(forged.Hist) > 0 {
			forged.Hist[0][0] ^= 0xff
		}
		forged.Sign(a.suite)
	}
	return &forged
}

// Suppressor silently drops the compromised replica's messages to the
// configured victims — selective starvation, the "gray failure" where a
// Byzantine replica is responsive to everyone except its targets. Types,
// when non-empty, restricts suppression to the listed message type tags.
type Suppressor struct {
	// Victims are the starved recipients; a types.NoNode entry selects the
	// adversary's DefaultVictim at interception time.
	Victims []types.NodeID
	// Types restricts suppression to these MsgType tags (empty: all).
	Types []string

	once sync.Once
	set  map[string]bool
}

// Name implements Script.
func (s *Suppressor) Name() string { return "suppressor" }

// Rewrite implements Script.
func (s *Suppressor) Rewrite(a *Adversary, to types.NodeID, msg types.Message) ([]transport.Delivery, bool) {
	s.once.Do(func() {
		s.set = make(map[string]bool, len(s.Types))
		for _, t := range s.Types {
			s.set[t] = true
		}
	})
	for _, v := range s.Victims {
		if v == types.NoNode {
			v = a.DefaultVictim()
		}
		if v == to {
			if len(s.set) > 0 && !s.set[msg.MsgType()] {
				return nil, false
			}
			a.suppressed.Add(1)
			return nil, true
		}
	}
	return nil, false
}

// Compose chains scripts: the first script that intercepts a message handles
// it; later scripts never see it. Use it to combine, say, a spammer with a
// suppressor on one compromised replica.
func Compose(scripts ...Script) Script { return composite(scripts) }

// composite is the Script built by Compose.
type composite []Script

// Name implements Script.
func (c composite) Name() string {
	names := make([]string, len(c))
	for i, s := range c {
		names[i] = s.Name()
	}
	return strings.Join(names, "+")
}

// Rewrite implements Script.
func (c composite) Rewrite(a *Adversary, to types.NodeID, msg types.Message) ([]transport.Delivery, bool) {
	for _, s := range c {
		if ds, ok := s.Rewrite(a, to, msg); ok {
			return ds, true
		}
	}
	return nil, false
}

// ScriptByName builds a named built-in script for the given compromised
// replica — the command-line entry point (cmd/resilientdb -adversary).
// Recognized names: "equivocate", "forge-shares", "vc-spam",
// "tamper-catchup", "tamper-snapshots", "suppress".
func ScriptByName(name string, topo config.Topology, self types.NodeID) (Script, error) {
	switch name {
	case "equivocate":
		return &EquivocatingPrimary{Rounds: 8, Detector: true}, nil
	case "forge-shares":
		return &ShareForger{}, nil
	case "vc-spam":
		return &ViewChangeSpammer{}, nil
	case "tamper-catchup":
		return &CatchupTamperer{Victim: types.NoNode}, nil
	case "tamper-snapshots":
		return &SnapshotTamperer{}, nil
	case "suppress":
		return &Suppressor{Victims: []types.NodeID{types.NoNode}}, nil
	}
	return nil, fmt.Errorf("byzantine: unknown adversary script %q (want equivocate, forge-shares, vc-spam, tamper-catchup, tamper-snapshots, or suppress)", name)
}
