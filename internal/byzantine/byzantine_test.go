package byzantine_test

import (
	"testing"

	"resilientdb/internal/byzantine"
	"resilientdb/internal/config"
	"resilientdb/internal/core"
	"resilientdb/internal/crypto"
	"resilientdb/internal/ledger"
	"resilientdb/internal/pbft"
	"resilientdb/internal/types"
)

// world provisions real (Fast-mode) key material for a topology so tests can
// build genuinely verifiable certificates and check that every forgery fails
// verification.
type world struct {
	topo   config.Topology
	suites map[types.NodeID]*crypto.Suite
}

func newWorld() *world {
	topo := config.NewTopology(2, 4)
	dir := crypto.NewDirectory(crypto.Fast, topo.AllReplicas())
	w := &world{topo: topo, suites: make(map[types.NodeID]*crypto.Suite)}
	for _, id := range topo.AllReplicas() {
		w.suites[id] = crypto.NewSuite(dir, id, crypto.FreeCosts(), nil)
	}
	return w
}

func (w *world) quorum() int { return w.topo.PerCluster - w.topo.F() }

// cert builds a genuinely valid commit certificate for (cluster, seq, batch).
func (w *world) cert(cluster int, seq uint64, b types.Batch) *pbft.Certificate {
	c := &pbft.Certificate{View: 0, Seq: seq, Digest: b.Digest(), Batch: b}
	payload := pbft.CommitPayload(0, seq, c.Digest)
	for _, id := range w.topo.ClusterMembers(cluster)[:w.quorum()] {
		c.Signers = append(c.Signers, id)
		c.Sigs = append(c.Sigs, w.suites[id].Sign(payload))
	}
	return c
}

// chain builds a certified 2-round ledger across both clusters.
func (w *world) chain() *ledger.Ledger {
	l := ledger.New()
	for r := uint64(1); r <= 2; r++ {
		for c := 0; c < w.topo.Clusters; c++ {
			b := types.Batch{Client: types.ClientIDBase, Seq: r,
				Txns: []types.Transaction{{Key: uint64(c), Value: r}}}
			l.AppendCertified(r, types.ClusterID(c), b, w.cert(c, r, b))
		}
	}
	return l
}

// verifyBlock mirrors the protocol layer's import verification: the
// certificate must verify against the origin cluster's membership.
func (w *world) verifyBlock(b *ledger.Block) error {
	cert, ok := b.Cert.(*pbft.Certificate)
	if !ok || cert == nil {
		return errNoCert
	}
	if cert.Digest != b.BatchDigest {
		return errBadCert
	}
	if !cert.Verify(w.suites[0], w.topo.ClusterMembers(int(b.Cluster)), w.quorum()) {
		return errBadCert
	}
	return nil
}

var (
	errNoCert  = &verifyErr{"no certificate"}
	errBadCert = &verifyErr{"bad certificate"}
)

type verifyErr struct{ s string }

func (e *verifyErr) Error() string { return e.s }

func TestAdversaryDisarmedPassesThrough(t *testing.T) {
	w := newWorld()
	fleet := byzantine.NewFleet(7)
	adv := fleet.Adversary(w.topo, crypto.Fast, w.topo.ReplicaID(0, 1),
		&byzantine.Suppressor{Victims: []types.NodeID{w.topo.ReplicaID(0, 3)}})
	if _, ok := fleet.Intercept(adv.ID(), w.topo.ReplicaID(0, 3), &pbft.Checkpoint{Seq: 1}); ok {
		t.Fatal("disarmed adversary intercepted")
	}
	adv.Arm()
	ds, ok := fleet.Intercept(adv.ID(), w.topo.ReplicaID(0, 3), &pbft.Checkpoint{Seq: 1})
	if !ok || len(ds) != 0 {
		t.Fatalf("armed suppressor: intercepted=%v deliveries=%d", ok, len(ds))
	}
	if st := adv.Stats(); st.Suppressed != 1 || st.Intercepted != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Honest senders and non-victims are never touched.
	if _, ok := fleet.Intercept(w.topo.ReplicaID(0, 2), w.topo.ReplicaID(0, 3), &pbft.Checkpoint{}); ok {
		t.Fatal("honest sender intercepted")
	}
	if _, ok := fleet.Intercept(adv.ID(), w.topo.ReplicaID(0, 2), &pbft.Checkpoint{}); ok {
		t.Fatal("non-victim suppressed")
	}
}

func TestForgedSharesAllFailVerification(t *testing.T) {
	w := newWorld()
	fleet := byzantine.NewFleet(7)
	adv := fleet.Adversary(w.topo, crypto.Fast, w.topo.ReplicaID(1, 0), &byzantine.ShareForger{})
	adv.Arm()

	b := types.Batch{Client: types.ClientIDBase, Seq: 3, Txns: []types.Transaction{{Key: 1, Value: 2}}}
	cert := w.cert(1, 3, b)
	share := &core.GlobalShare{Cluster: 1, Round: 3, Cert: cert}
	members := w.topo.ClusterMembers(1)
	if !cert.Verify(w.suites[0], members, w.quorum()) {
		t.Fatal("honest certificate must verify")
	}

	remote := w.topo.ReplicaID(0, 1)
	for i := 0; i < 4; i++ {
		ds, ok := adv.Rewrite(remote, share)
		if !ok || len(ds) != 1 {
			t.Fatalf("variant %d: intercepted=%v deliveries=%d", i, ok, len(ds))
		}
		forged := ds[0].Msg.(*core.GlobalShare)
		if forged.Cert.Verify(w.suites[0], members, w.quorum()) && forged.Cert.Digest == forged.Cert.Batch.Digest() {
			t.Fatalf("variant %d: forged certificate verifies", i)
		}
	}
	// Local cluster traffic is untouched (the forger stays locally honest).
	if _, ok := adv.Rewrite(w.topo.ReplicaID(1, 2), share); ok {
		t.Fatal("share-forger garbled local traffic")
	}
	// The honest original was never mutated.
	if !cert.Verify(w.suites[0], members, w.quorum()) {
		t.Fatal("forgery mutated the shared original certificate")
	}
	if st := adv.Stats(); st.Tampered != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEquivocatingPrimaryCoalition(t *testing.T) {
	w := newWorld()
	fleet := byzantine.NewFleet(7)
	primary := fleet.Adversary(w.topo, crypto.Fast, w.topo.ReplicaID(0, 0),
		&byzantine.EquivocatingPrimary{Detector: true})
	voter := fleet.Adversary(w.topo, crypto.Fast, w.topo.ReplicaID(0, 1), byzantine.DoubleVoter{})
	primary.Arm()
	voter.Arm()

	victim := primary.DefaultVictim()
	detector := primary.DefaultDetector()
	if victim != w.topo.ReplicaID(0, 3) || detector != w.topo.ReplicaID(0, 1) {
		t.Fatalf("victim=%v detector=%v", victim, detector)
	}

	b := types.Batch{Client: types.ClientIDBase, Seq: 1, Txns: []types.Transaction{{Key: 1, Value: 7}}}
	pp := &pbft.PrePrepare{View: 0, Seq: 1, Digest: b.Digest(), Batch: b}

	// The victim receives the conflicting twin.
	ds, ok := primary.Rewrite(victim, pp)
	if !ok || len(ds) != 1 {
		t.Fatalf("victim rewrite: ok=%v n=%d", ok, len(ds))
	}
	twin := ds[0].Msg.(*pbft.PrePrepare)
	if twin.Digest == pp.Digest || twin.Batch.Digest() != twin.Digest || twin.Seq != pp.Seq {
		t.Fatalf("twin is not a well-formed conflicting proposal: %+v", twin)
	}

	// The detector receives both — provable equivocation.
	ds, ok = primary.Rewrite(detector, pp)
	if !ok || len(ds) != 2 {
		t.Fatalf("detector rewrite: ok=%v n=%d", ok, len(ds))
	}
	if ds[0].Msg.(*pbft.PrePrepare).Digest != pp.Digest || ds[1].Msg.(*pbft.PrePrepare).Digest != twin.Digest {
		t.Fatal("detector must see the real proposal and the twin")
	}

	// Other members see only the honest proposal.
	if _, ok := primary.Rewrite(w.topo.ReplicaID(0, 2), pp); ok {
		t.Fatal("non-victim received a rewrite")
	}

	// Both coalition members countersign the fork toward the victim, with
	// genuinely valid signatures over the twin digest.
	for _, a := range []*byzantine.Adversary{primary, voter} {
		commit := &pbft.Commit{View: 0, Seq: 1, Digest: pp.Digest, Replica: a.ID(),
			Sig: w.suites[a.ID()].Sign(pbft.CommitPayload(0, 1, pp.Digest))}
		ds, ok := a.Rewrite(victim, commit)
		if !ok || len(ds) != 1 {
			t.Fatalf("%v commit rewrite: ok=%v n=%d", a.ID(), ok, len(ds))
		}
		forged := ds[0].Msg.(*pbft.Commit)
		if forged.Digest != twin.Digest {
			t.Fatal("countersigned commit does not support the fork")
		}
		if !w.suites[0].Verify(a.ID(), pbft.CommitPayload(0, 1, twin.Digest), forged.Sig) {
			t.Fatal("countersigned commit signature invalid")
		}
		// Votes to non-victims pass through.
		if _, ok := a.Rewrite(w.topo.ReplicaID(0, 2), commit); ok {
			t.Fatal("vote to non-victim rewritten")
		}
	}
	if st := primary.Stats(); st.Forked != 1 {
		t.Fatalf("primary stats = %+v", st)
	}
}

func TestEquivocatingPrimaryRoundsCap(t *testing.T) {
	w := newWorld()
	fleet := byzantine.NewFleet(7)
	adv := fleet.Adversary(w.topo, crypto.Fast, w.topo.ReplicaID(0, 0),
		&byzantine.EquivocatingPrimary{Rounds: 2})
	adv.Arm()
	victim := adv.DefaultVictim()
	for seq := uint64(1); seq <= 4; seq++ {
		b := types.Batch{Client: types.ClientIDBase, Seq: seq, Txns: []types.Transaction{{Key: seq, Value: 1}}}
		pp := &pbft.PrePrepare{View: 0, Seq: seq, Digest: b.Digest(), Batch: b}
		_, ok := adv.Rewrite(victim, pp)
		if want := seq <= 2; ok != want {
			t.Fatalf("seq %d: intercepted=%v want %v", seq, ok, want)
		}
	}
	if st := adv.Stats(); st.Forked != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTamperedCatchupAllRejectedByImport(t *testing.T) {
	w := newWorld()
	fleet := byzantine.NewFleet(7)
	adv := fleet.Adversary(w.topo, crypto.Fast, w.topo.ReplicaID(0, 1),
		&byzantine.CatchupTamperer{Victim: types.NoNode, Inject: 1})
	adv.Arm()

	src := w.chain()
	resp := &core.CatchUpResp{Blocks: src.Export(1, 0), Height: src.Height()}
	peer := w.topo.ReplicaID(0, 2)

	// The honest response imports cleanly.
	if err := ledger.New().Import(resp.Blocks, w.verifyBlock); err != nil {
		t.Fatalf("honest catch-up rejected: %v", err)
	}

	// Every tamper variant must fail import into a fresh ledger.
	for i := 0; i < 4; i++ {
		ds, ok := adv.Rewrite(peer, resp)
		if !ok || len(ds) != 1 {
			t.Fatalf("variant %d: ok=%v n=%d", i, ok, len(ds))
		}
		tampered := ds[0].Msg.(*core.CatchUpResp)
		if err := ledger.New().Import(tampered.Blocks, w.verifyBlock); err == nil {
			t.Fatalf("tamper variant %d imported", i)
		}
	}
	// The source ledger was never mutated by the forgeries.
	if err := src.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := ledger.New().Import(src.Export(1, 0), w.verifyBlock); err != nil {
		t.Fatalf("original chain no longer imports: %v", err)
	}

	// Injection rides along on unrelated traffic, aimed at the victim, and
	// its fabricated chain is certificate-garbage.
	ds, ok := adv.Rewrite(peer, &pbft.Checkpoint{Seq: 6})
	if !ok || len(ds) != 2 {
		t.Fatalf("injection: ok=%v n=%d", ok, len(ds))
	}
	if ds[0].Msg.(*pbft.Checkpoint).Seq != 6 {
		t.Fatal("original message must still flow")
	}
	if ds[1].To != adv.DefaultVictim() {
		t.Fatalf("injection aimed at %v, want %v", ds[1].To, adv.DefaultVictim())
	}
	forged := ds[1].Msg.(*core.CatchUpResp)
	if err := ledger.New().Import(forged.Blocks, w.verifyBlock); err == nil {
		t.Fatal("fabricated chain imported")
	}
	// The linkage is deliberately sound so certificate verification is the
	// check being exercised.
	if err := ledger.New().Import(forged.Blocks, nil); err != nil {
		t.Fatalf("fabricated chain should be linkage-clean, got %v", err)
	}
	// Inject cap reached: no more fabrications.
	if _, ok := adv.Rewrite(peer, &pbft.Checkpoint{Seq: 7}); ok {
		t.Fatal("injection cap ignored")
	}
	if st := adv.Stats(); st.Tampered != 4 || st.Injected != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCorpusMessagesRoundTrip(t *testing.T) {
	msgs := byzantine.CorpusMessages()
	if len(msgs) < 10 {
		t.Fatalf("corpus has %d messages", len(msgs))
	}
	w := newWorld()
	for i, m := range msgs {
		buf, err := types.EncodeMessage(m)
		if err != nil {
			t.Fatalf("corpus %d (%s): encode: %v", i, m.MsgType(), err)
		}
		decoded, err := types.DecodeMessage(buf)
		if err != nil {
			t.Fatalf("corpus %d (%s): decode: %v", i, m.MsgType(), err)
		}
		// Forged shares must never re-verify after the round trip.
		if gs, ok := decoded.(*core.GlobalShare); ok && gs.Cert != nil {
			cluster := int(gs.Cluster)
			if gs.Cert.Verify(w.suites[0], w.topo.ClusterMembers(cluster), w.quorum()) &&
				gs.Cert.Seq == gs.Round {
				t.Fatalf("corpus %d: forged share verifies after decode", i)
			}
		}
	}
}

func TestScriptByName(t *testing.T) {
	w := newWorld()
	for _, name := range []string{"equivocate", "forge-shares", "vc-spam", "tamper-catchup", "suppress"} {
		s, err := byzantine.ScriptByName(name, w.topo, w.topo.ReplicaID(0, 0))
		if err != nil || s == nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := byzantine.ScriptByName("nonsense", w.topo, 0); err == nil {
		t.Fatal("unknown script accepted")
	}
}

func TestComposeFirstInterceptorWins(t *testing.T) {
	w := newWorld()
	fleet := byzantine.NewFleet(7)
	victim := w.topo.ReplicaID(0, 3)
	script := byzantine.Compose(
		&byzantine.Suppressor{Victims: []types.NodeID{victim}, Types: []string{"pbft/checkpoint"}},
		&byzantine.ViewChangeSpammer{Every: 1},
	)
	adv := fleet.Adversary(w.topo, crypto.Fast, w.topo.ReplicaID(0, 1), script)
	adv.Arm()

	// Checkpoint to the victim: suppressed by the first script.
	if ds, ok := adv.Rewrite(victim, &pbft.Checkpoint{}); !ok || len(ds) != 0 {
		t.Fatalf("suppression: ok=%v n=%d", ok, len(ds))
	}
	// Any other message falls through to the spammer (Every=1: always fires)
	// and the original still flows first.
	ds, ok := adv.Rewrite(w.topo.ReplicaID(0, 2), &pbft.Prepare{Replica: adv.ID()})
	if !ok || len(ds) != 3 {
		t.Fatalf("spam: ok=%v n=%d", ok, len(ds))
	}
	if _, isPrep := ds[0].Msg.(*pbft.Prepare); !isPrep {
		t.Fatal("original message must be delivered first")
	}
	st := adv.Stats()
	if st.Suppressed != 1 || st.Spammed != 2 {
		t.Fatalf("stats = %+v", st)
	}
}
