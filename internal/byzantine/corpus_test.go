package byzantine_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"resilientdb/internal/byzantine"
	"resilientdb/internal/types"
)

// TestRegenerateCorpus writes the adversary-generated wire-decode fuzz seeds
// into the directory named by BYZ_CORPUS_DIR (normally
// internal/types/testdata/fuzz/FuzzDecodeMessage) and is skipped otherwise.
// CorpusMessages is deterministic, so regeneration is byte-for-byte:
//
//	BYZ_CORPUS_DIR=../types/testdata/fuzz/FuzzDecodeMessage go test -run TestRegenerateCorpus ./internal/byzantine/
func TestRegenerateCorpus(t *testing.T) {
	dir := os.Getenv("BYZ_CORPUS_DIR")
	if dir == "" {
		t.Skip("set BYZ_CORPUS_DIR to write the corpus seeds")
	}
	for i, m := range byzantine.CorpusMessages() {
		buf, err := types.EncodeMessage(m)
		if err != nil {
			t.Fatalf("corpus %d (%s): %v", i, m.MsgType(), err)
		}
		tag := strings.NewReplacer("/", "-", " ", "-").Replace(m.MsgType())
		name := filepath.Join(dir, fmt.Sprintf("byz-%02d-%s", i, tag))
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", buf)
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", name, len(buf))
	}
}
