// Package byzantine is the scripted-malice adversary harness: it turns up to
// f replicas per cluster into attackers that execute deterministic attack
// scripts against the live protocol, so the chaos suite (internal/chaos) can
// prove GeoBFT's safety and liveness claims against actual Byzantine
// behaviour instead of only crashes and partitions.
//
// An Adversary wraps one compromised replica. It does not replace the
// replica's state machine — the honest core keeps running — but every
// message the replica sends passes through the adversary's Script, which can
// suppress it, tamper with it, equivocate (different payloads to different
// recipients), or inject extra forged traffic riding alongside. The
// interception point is transport.Tap, so the same attack runs over the
// in-process transport and over TCP.
//
// The adversary signs with the compromised replica's own key (its Suite is
// provisioned from the same deterministic directory the deployment uses) —
// exactly the power a real Byzantine replica has. No seam in this package
// lets a script forge another replica's signature; attacks that need one
// (the >f coalitions of the harness's own teeth tests) are built by giving
// the fleet more than f members.
//
// Scripts are deterministic: every decision follows from the message being
// intercepted and script-local counters, so a failing scenario replays
// byte-for-byte from its seed (see the chaos suite's seed matrix).
package byzantine

import (
	"sync"
	"sync/atomic"

	"resilientdb/internal/config"
	"resilientdb/internal/crypto"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
)

// Script is one deterministic attack behaviour. Rewrite inspects a single
// outbound message from the compromised replica and returns the deliveries
// to perform instead (plus true), or false to send the original untouched.
// Returning (nil, true) suppresses the message. Rewrite is called
// concurrently from the node's output goroutines; implementations guard
// their state with their own mutex.
type Script interface {
	// Name identifies the attack in logs and scenario descriptions.
	Name() string
	// Rewrite intercepts one outbound message (see the interface comment).
	Rewrite(a *Adversary, to types.NodeID, msg types.Message) ([]transport.Delivery, bool)
}

// Stats counts what an adversary actually did, so scenarios can assert the
// attack really ran (an attack that never fired proves nothing).
type Stats struct {
	// Intercepted counts outbound messages the script rewrote, suppressed,
	// or rode an injection on (pass-throughs are not counted).
	Intercepted uint64
	// Forked counts equivocated proposals (one per forked sequence number).
	Forked uint64
	// Tampered counts messages forwarded with forged or garbled content.
	Tampered uint64
	// Injected counts forged messages fabricated from nothing.
	Injected uint64
	// Suppressed counts messages silently dropped per victim.
	Suppressed uint64
	// Spammed counts protocol-shaped spam messages (view-change campaigns,
	// stale remote view-change requests) sent alongside real traffic.
	Spammed uint64
}

// Fleet is a coalition of adversaries sharing one coordination blackboard:
// scripts running on different compromised replicas of the same cluster read
// and write it to coordinate (an equivocating primary publishes its forked
// proposals; a fellow double-voter signs votes for the fork). One Fleet
// serves a whole deployment; its Intercept method is the transport.Tap hook.
type Fleet struct {
	seed int64

	mu    sync.Mutex
	advs  map[types.NodeID]*Adversary
	forks map[forkKey]*fork
}

// NewFleet returns an empty coalition. The seed keeps script-internal
// randomness (where a script uses any) reproducible; all built-in scripts
// are counter-driven and deterministic regardless.
func NewFleet(seed int64) *Fleet {
	return &Fleet{
		seed:  seed,
		advs:  make(map[types.NodeID]*Adversary),
		forks: make(map[forkKey]*fork),
	}
}

// Adversary compromises one replica of the topology with the given script
// and registers it with the fleet. The adversary provisions its own signing
// suite from the deployment's deterministic key directory (mode must match
// the deployment's crypto mode). It starts disarmed: traffic passes through
// untouched until Arm is called, so scenarios can warm the deployment up
// honestly first.
func (f *Fleet) Adversary(topo config.Topology, mode crypto.Mode, id types.NodeID, script Script) *Adversary {
	dir := crypto.NewDirectory(mode, topo.AllReplicas())
	a := &Adversary{
		id:     id,
		topo:   topo,
		suite:  crypto.NewSuite(dir, id, crypto.FreeCosts(), nil),
		fleet:  f,
		script: script,
	}
	f.mu.Lock()
	f.advs[id] = a
	f.mu.Unlock()
	return a
}

// Intercept is the transport.Tap hook for the whole fleet: sends from
// compromised replicas are routed through their adversary's script, honest
// senders pass through.
func (f *Fleet) Intercept(from, to types.NodeID, msg types.Message) ([]transport.Delivery, bool) {
	f.mu.Lock()
	a := f.advs[from]
	f.mu.Unlock()
	if a == nil {
		return nil, false
	}
	return a.Rewrite(to, msg)
}

// forkKey identifies one equivocated proposal on the fleet blackboard.
type forkKey struct {
	cluster types.ClusterID
	view    uint64
	seq     uint64
}

// fork is the equivocated twin of a proposal: the batch (and its digest) the
// coalition shows to the victims instead of the real one.
type fork struct {
	digest types.Digest
	batch  types.Batch
}

// publishFork records the twin for (cluster, view, seq) if none exists yet
// and returns the blackboard entry (the existing one on a duplicate publish).
func (f *Fleet) publishFork(k forkKey, fk *fork) *fork {
	f.mu.Lock()
	defer f.mu.Unlock()
	if cur := f.forks[k]; cur != nil {
		return cur
	}
	f.forks[k] = fk
	return fk
}

// fork returns the blackboard entry for (cluster, view, seq), or nil.
func (f *Fleet) fork(k forkKey) *fork {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.forks[k]
}

// Adversary is one compromised replica's attack runtime: the script, the
// replica's own signing capability, and the action counters. It is handed to
// Script.Rewrite on every intercepted message.
type Adversary struct {
	id     types.NodeID
	topo   config.Topology
	suite  *crypto.Suite
	fleet  *Fleet
	script Script
	armed  atomic.Bool

	intercepted atomic.Uint64
	forked      atomic.Uint64
	tampered    atomic.Uint64
	injected    atomic.Uint64
	suppressed  atomic.Uint64
	spammed     atomic.Uint64
}

// ID returns the compromised replica's identifier.
func (a *Adversary) ID() types.NodeID { return a.id }

// Topo returns the deployment topology the adversary operates in.
func (a *Adversary) Topo() config.Topology { return a.topo }

// Cluster returns the compromised replica's cluster.
func (a *Adversary) Cluster() types.ClusterID { return a.topo.ClusterOf(a.id) }

// Suite returns the compromised replica's own signing suite — the full
// cryptographic power a Byzantine replica legitimately has, and nothing
// more.
func (a *Adversary) Suite() *crypto.Suite { return a.suite }

// Script returns the attack script this adversary runs.
func (a *Adversary) Script() Script { return a.script }

// Arm activates the script. Before Arm (and after Disarm) every message
// passes through untouched, so scenarios can prove the deployment healthy
// before the attack and quiesce it after.
func (a *Adversary) Arm() { a.armed.Store(true) }

// Disarm deactivates the script.
func (a *Adversary) Disarm() { a.armed.Store(false) }

// Armed reports whether the script is active.
func (a *Adversary) Armed() bool { return a.armed.Load() }

// Rewrite offers one outbound message to the script (the per-adversary leg
// of Fleet.Intercept). Disarmed adversaries pass everything through.
func (a *Adversary) Rewrite(to types.NodeID, msg types.Message) ([]transport.Delivery, bool) {
	if !a.armed.Load() {
		return nil, false
	}
	ds, intercepted := a.script.Rewrite(a, to, msg)
	if intercepted {
		a.intercepted.Add(1)
	}
	return ds, intercepted
}

// Stats snapshots the adversary's action counters. Safe to call while the
// deployment is running.
func (a *Adversary) Stats() Stats {
	return Stats{
		Intercepted: a.intercepted.Load(),
		Forked:      a.forked.Load(),
		Tampered:    a.tampered.Load(),
		Injected:    a.injected.Load(),
		Suppressed:  a.suppressed.Load(),
		Spammed:     a.spammed.Load(),
	}
}

// LocalMembers returns the members of the adversary's own cluster.
func (a *Adversary) LocalMembers() []types.NodeID {
	return a.topo.ClusterMembers(int(a.Cluster()))
}

// DefaultVictim returns the highest-indexed member of the adversary's
// cluster other than itself: the replica the built-in scripts equivocate to,
// starve, or feed forged state. Keeping the rule positional (not
// configurable per script instance) lets a coalition agree on the victim
// without communicating.
func (a *Adversary) DefaultVictim() types.NodeID {
	members := a.LocalMembers()
	v := members[len(members)-1]
	if v == a.id {
		v = members[len(members)-2]
	}
	return v
}

// DefaultDetector returns the lowest-indexed local member that is neither
// the adversary nor the default victim: the honest replica an equivocating
// primary deliberately shows both conflicting proposals so that provable
// misbehaviour is observed (pbft treats conflicting preprepares as grounds
// for a view change).
func (a *Adversary) DefaultDetector() types.NodeID {
	victim := a.DefaultVictim()
	for _, m := range a.LocalMembers() {
		if m != a.id && m != victim {
			return m
		}
	}
	return victim // unreachable for n ≥ 3
}
