package byzantine

import (
	"sync/atomic"

	"resilientdb/internal/config"
	"resilientdb/internal/crypto"
	"resilientdb/internal/pbft"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
)

// RogueClient is a scripted Byzantine *client*: a provisioned identity that
// attacks the replicas' admission boundary instead of the replica protocol.
// Unlike replica adversaries it needs no interception seam — a client's
// entire power is which requests it signs and where and how often it sends
// them. The rogue signs with its real provisioned key (the deployment's
// deterministic directory reproduces it), exactly the power a compromised
// client credential grants: it can flood duplicates, equivocate on its own
// sequence numbers, and spray fresh sequence numbers faster than any honest
// client would, but it can never forge another client's signature.
//
// The attacks mirror the failure modes the mempool (internal/mempool) must
// absorb: Flood exercises dedup, Equivocate exercises first-writer-wins
// conflict handling, Spray exercises per-client rate limiting and capacity
// eviction. Scenarios assert the deployment sheds all of it — honest commits
// continue, pools stay bounded, every rejection is counted in Fabric.Stats.
type RogueClient struct {
	id      types.NodeID
	cluster int
	topo    config.Topology
	tr      transport.Transport
	suite   *crypto.Suite
	inbox   <-chan transport.Envelope

	sent          atomic.Uint64
	equivocations atomic.Uint64
}

// ClientStats counts what a rogue client actually sent, so scenarios can
// assert the attack really ran.
type ClientStats struct {
	// Sent counts individual request deliveries handed to the transport.
	Sent uint64
	// Equivocations counts sequence numbers signed with two conflicting
	// payloads.
	Equivocations uint64
}

// NewRogueClient provisions client identity index (home cluster index mod z)
// as an attacker. The index must be one the deployment provisioned keys for
// (fabric.Config.Clients); mode must match the deployment's crypto mode. The
// rogue registers its own transport endpoint, so replies sent to it are
// routed (and silently dropped once its inbox fills — it never reads them,
// like a client that has long stopped caring).
func NewRogueClient(tr transport.Transport, topo config.Topology, mode crypto.Mode, index int) *RogueClient {
	id := config.ClientID(index)
	c := &RogueClient{
		id:      id,
		cluster: index % topo.Clusters,
		topo:    topo,
		tr:      tr,
		suite:   crypto.NewSuite(crypto.NewDirectory(mode, []types.NodeID{id}), id, crypto.FreeCosts(), nil),
	}
	c.inbox = tr.Register(id)
	return c
}

// ID returns the rogue's client identity.
func (c *RogueClient) ID() types.NodeID { return c.id }

// Stats snapshots the attack counters.
func (c *RogueClient) Stats() ClientStats {
	return ClientStats{Sent: c.sent.Load(), Equivocations: c.equivocations.Load()}
}

// request builds one validly signed single-transaction request.
func (c *RogueClient) request(seq, key, val uint64) *pbft.Request {
	b := types.Batch{Client: c.id, Seq: seq, Txns: []types.Transaction{{Key: key, Value: val}}}
	b.PrimeDigest()
	return &pbft.Request{Batch: b, Sig: c.suite.Sign(pbft.RequestPayload(&b))}
}

// broadcast delivers one request to every local-cluster replica.
func (c *RogueClient) broadcast(req *pbft.Request) {
	for _, m := range c.topo.ClusterMembers(c.cluster) {
		c.tr.Send(c.id, m, req)
		c.sent.Add(1)
	}
}

// Flood sends one validly signed request to every local-cluster replica,
// copies times over — the duplicate storm of a client that retries without
// ever honouring a reply or a timeout. Exactly one copy per replica may be
// admitted; the rest must be shed as duplicates (or, once the batch
// executes, as replays answered from the ledger).
func (c *RogueClient) Flood(seq uint64, copies int) {
	req := c.request(seq, seq, seq)
	for i := 0; i < copies; i++ {
		c.broadcast(req)
	}
}

// Equivocate signs two conflicting payloads for the same sequence number and
// shows both to every local-cluster replica, interleaved. Both carry valid
// signatures, so admission cannot reject either outright; first-writer-wins
// dedup must ensure at most one is live per replica, and honest prefix
// safety must hold regardless of which side each replica saw first.
func (c *RogueClient) Equivocate(seq uint64) {
	a := c.request(seq, seq, 1)
	b := c.request(seq, seq, 2)
	c.broadcast(a)
	c.broadcast(b)
	c.equivocations.Add(1)
}

// Spray submits the distinct sequence numbers lo..hi back to back, as fast
// as the transport accepts them — far above any honest submission rate. The
// requests are individually well formed, so this is pure load-shaped abuse:
// per-client rate limiting must shed the excess and capacity eviction must
// keep every pool bounded, without starving honest clients.
func (c *RogueClient) Spray(lo, hi uint64) {
	for s := lo; s <= hi; s++ {
		c.broadcast(c.request(s, s, s))
	}
}
