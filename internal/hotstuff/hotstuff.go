// Package hotstuff implements the HotStuff BFT protocol (Yin et al.) in the
// configuration the ResilientDB paper evaluates (Section 3, "Other
// protocols"): no threshold signatures — quorum certificates carry n−f
// individual signatures that every replica verifies — and every replica acts
// as a primary in parallel without pacemaker-based synchronization. Each
// replica leads its own chain of slots; decisions interleave round-robin
// across chains into a single deterministic execution order, and each
// decision passes through HotStuff's four phases (prepare, precommit,
// commit, decide).
//
// The four-phase design yields the high client latency the paper reports,
// and per-QC signature verification yields its high computational cost;
// the parallel-primaries configuration removes the single-leader bandwidth
// bottleneck, which is why HotStuff scales with batch size in Figure 13.
//
// Liveness simplification (documented in EXPERIMENTS.md): a chain whose
// leader stops proposing is skipped by quorum agreement on a no-op, standing
// in for the pacemaker's leader rotation under crash faults.
package hotstuff

import (
	"time"

	"resilientdb/internal/kvstore"
	"resilientdb/internal/ledger"
	"resilientdb/internal/proto"
	"resilientdb/internal/simnet"
	"resilientdb/internal/types"
)

// Phase enumerates HotStuff's vote phases.
type Phase uint8

// The three voting phases; the fourth broadcast (decide) carries the final
// QC.
const (
	PhasePrepare Phase = iota
	PhasePreCommit
	PhaseCommit
)

// Request carries a client batch to its chosen leader.
type Request struct {
	Batch types.Batch
}

func (*Request) MsgType() string { return "hotstuff/request" }

// WireSize implements types.Message.
func (r *Request) WireSize() int { return r.Batch.WireSize() }

// Propose opens a slot on the leader's chain.
type Propose struct {
	Leader types.NodeID
	Slot   uint64
	Batch  types.Batch
}

func (*Propose) MsgType() string { return "hotstuff/propose" }

// WireSize implements types.Message.
func (p *Propose) WireSize() int { return types.HeaderBytes + p.Batch.WireSize() }

// Vote is a replica's signed phase vote, sent to the slot's leader.
type Vote struct {
	Leader  types.NodeID
	Slot    uint64
	Phase   Phase
	Digest  types.Digest
	Replica types.NodeID
	Sig     []byte
}

func (*Vote) MsgType() string { return "hotstuff/vote" }

// WireSize implements types.Message.
func (*Vote) WireSize() int { return types.ControlBytes }

// QC is a quorum certificate: n−f signatures over one phase of one slot.
// Without threshold signatures it carries each signature individually.
type QC struct {
	Leader  types.NodeID
	Slot    uint64
	Phase   Phase
	Digest  types.Digest
	Signers []types.NodeID
	Sigs    [][]byte
}

func (*QC) MsgType() string { return "hotstuff/qc" }

// WireSize implements types.Message.
func (q *QC) WireSize() int { return types.HeaderBytes + len(q.Sigs)*types.SigBytes }

// votePayload is the signed content of a phase vote.
func votePayload(leader types.NodeID, slot uint64, phase Phase, digest types.Digest) []byte {
	enc := types.NewEncoder(64)
	enc.String("hs/VOTE")
	enc.I32(int32(leader))
	enc.U64(slot)
	enc.U8(uint8(phase))
	enc.Digest(digest)
	return enc.Bytes()
}

// SkipVote proposes treating a stalled chain's slot as a no-op (crash-fault
// liveness stand-in for the pacemaker).
type SkipVote struct {
	Leader  types.NodeID
	Slot    uint64
	Replica types.NodeID
	Sig     []byte
}

func (*SkipVote) MsgType() string { return "hotstuff/skipvote" }

// WireSize implements types.Message.
func (*SkipVote) WireSize() int { return types.ControlBytes }

func skipPayload(leader types.NodeID, slot uint64) []byte {
	enc := types.NewEncoder(32)
	enc.String("hs/SKIP")
	enc.I32(int32(leader))
	enc.U64(slot)
	return enc.Bytes()
}

// Config parameterizes a HotStuff replica.
type Config struct {
	Members []types.NodeID
	Self    types.NodeID
	F       int
	Records int
	// SkipTimeout is how long a blocking undecided slot may stall before
	// replicas vote to skip it.
	SkipTimeout time.Duration
	// PipelinePerChain is how many slots a leader keeps in flight on its own
	// chain, the moral equivalent of chained HotStuff's pipelining. Zero
	// selects 16.
	PipelinePerChain int
}

// slot tracks one consensus instance on one chain.
type slot struct {
	batch      types.Batch
	digest     types.Digest
	proposed   bool
	proposedAt time.Duration
	votes      [3]map[types.NodeID][]byte // leader side, per phase
	qcSent     [3]bool
	phaseOK    [3]bool // replica side: verified QC per phase
	decided    bool
	skipped    bool
	skips      map[types.NodeID]bool
}

// Replica is a HotStuff replica leading its own chain while participating
// in every other chain.
type Replica struct {
	cfg Config
	env proto.Env

	chains   map[types.NodeID]map[uint64]*slot
	myNext   uint64 // next slot to propose on own chain
	openOwn  int    // own-chain slots proposed but not yet decided
	maxSeen  uint64 // highest slot observed on any chain
	queue    []types.Batch
	executed uint64 // global slot cursor: chain index rotates fastest
	store    *kvstore.Store
	ledger   *ledger.Ledger
	skipTmr  proto.Timer
	skipFor  uint64
	noopSeq  uint64
}

// NewReplica constructs a replica; call Init before use.
func NewReplica(cfg Config) *Replica {
	if cfg.SkipTimeout == 0 {
		cfg.SkipTimeout = 3 * time.Second
	}
	if cfg.PipelinePerChain == 0 {
		cfg.PipelinePerChain = 16
	}
	return &Replica{cfg: cfg}
}

// Init implements simnet.Handler.
func (r *Replica) Init(env *simnet.Env) { r.InitEnv(proto.WrapSim(env)) }

// InitEnv wires the replica to an environment.
func (r *Replica) InitEnv(env proto.Env) {
	r.env = env
	r.store = kvstore.New(r.cfg.Records)
	r.ledger = ledger.New()
	r.chains = make(map[types.NodeID]map[uint64]*slot)
	for _, m := range r.cfg.Members {
		r.chains[m] = make(map[uint64]*slot)
	}
}

// Ledger exposes the replica's chain.
func (r *Replica) Ledger() *ledger.Ledger { return r.ledger }

// Store exposes the replica's table.
func (r *Replica) Store() *kvstore.Store { return r.store }

// ExecutedSlots returns the number of globally executed slots.
func (r *Replica) ExecutedSlots() uint64 { return r.executed }

func (r *Replica) quorum() int { return len(r.cfg.Members) - r.cfg.F }

func (r *Replica) slotAt(leader types.NodeID, n uint64) *slot {
	s := r.chains[leader][n]
	if s == nil {
		s = &slot{skips: make(map[types.NodeID]bool)}
		for i := range s.votes {
			s.votes[i] = make(map[types.NodeID][]byte)
		}
		r.chains[leader][n] = s
	}
	return s
}

// Receive implements simnet.Handler.
func (r *Replica) Receive(from types.NodeID, msg types.Message) {
	switch m := msg.(type) {
	case *Request:
		r.env.Suite().ChargeVerify()
		r.queue = append(r.queue, m.Batch)
		r.tryPropose()
	case *Propose:
		r.env.Suite().ChargeVerifyMAC()
		if from != m.Leader && from != r.cfg.Self {
			return
		}
		r.onPropose(m)
	case *Vote:
		r.env.Suite().ChargeVerifyMAC()
		r.onVote(from, m)
	case *QC:
		r.env.Suite().ChargeVerifyMAC()
		r.onQC(m)
	case *SkipVote:
		r.env.Suite().ChargeVerifyMAC()
		r.onSkipVote(from, m)
	}
}

// tryPropose opens slots on our own chain, keeping up to PipelinePerChain
// in flight (the analogue of chained HotStuff's pipelining).
func (r *Replica) tryPropose() {
	for len(r.queue) > 0 && r.openOwn < r.cfg.PipelinePerChain {
		b := r.queue[0]
		r.queue = r.queue[1:]
		r.propose(b)
	}
}

func (r *Replica) propose(b types.Batch) {
	r.myNext++
	r.openOwn++
	if r.myNext > r.maxSeen {
		r.maxSeen = r.myNext
	}
	p := &Propose{Leader: r.cfg.Self, Slot: r.myNext, Batch: b}
	for _, peer := range r.cfg.Members {
		if peer != r.cfg.Self {
			r.env.Suite().ChargeMAC()
			r.env.Send(peer, p)
		}
	}
	r.onPropose(p)
}

func (r *Replica) onPropose(m *Propose) {
	s := r.slotAt(m.Leader, m.Slot)
	if s.proposed || s.skipped {
		return
	}
	s.proposed = true
	s.proposedAt = r.env.Now()
	s.batch = m.Batch
	s.digest = m.Batch.Digest()
	if m.Slot > r.maxSeen {
		r.maxSeen = m.Slot
		// Execution interleaves all chains round-robin, so an idle chain
		// holds every other chain back: leaders without client load keep
		// pace with no-ops (mirroring GeoBFT's Section 2.5 mechanism).
		r.fillToMaxSeen()
	}
	r.castVote(m.Leader, m.Slot, PhasePrepare, s.digest)
}

// fillToMaxSeen proposes batches (or no-ops when the queue is empty) until
// our own chain has reached the most advanced chain's slot.
func (r *Replica) fillToMaxSeen() {
	for r.myNext < r.maxSeen {
		if len(r.queue) > 0 {
			b := r.queue[0]
			r.queue = r.queue[1:]
			r.propose(b)
			continue
		}
		r.noopSeq++
		r.propose(types.Batch{Client: r.cfg.Self, Seq: r.noopSeq, NoOp: true})
	}
}

func (r *Replica) castVote(leader types.NodeID, n uint64, phase Phase, digest types.Digest) {
	sig := r.env.Suite().Sign(votePayload(leader, n, phase, digest))
	v := &Vote{Leader: leader, Slot: n, Phase: phase, Digest: digest, Replica: r.cfg.Self, Sig: sig}
	if leader == r.cfg.Self {
		r.onVote(r.cfg.Self, v)
		return
	}
	r.env.Suite().ChargeMAC()
	r.env.Send(leader, v)
}

// onVote runs at the slot's leader: collect n−f signed votes per phase,
// verify them, and broadcast the phase QC.
func (r *Replica) onVote(from types.NodeID, m *Vote) {
	if m.Leader != r.cfg.Self || m.Replica != from || int(m.Phase) > 2 {
		return
	}
	s := r.slotAt(r.cfg.Self, m.Slot)
	if s.skipped || s.qcSent[m.Phase] {
		return
	}
	set := s.votes[m.Phase]
	if set[from] != nil {
		return
	}
	// The leader verifies each vote signature (no threshold aggregation).
	if !r.env.Suite().Verify(from, votePayload(m.Leader, m.Slot, m.Phase, m.Digest), m.Sig) {
		return
	}
	set[from] = m.Sig
	if len(set) < r.quorum() {
		return
	}
	s.qcSent[m.Phase] = true
	qc := &QC{Leader: r.cfg.Self, Slot: m.Slot, Phase: m.Phase, Digest: s.digest}
	for id, sig := range set {
		qc.Signers = append(qc.Signers, id)
		qc.Sigs = append(qc.Sigs, sig)
	}
	for _, peer := range r.cfg.Members {
		if peer != r.cfg.Self {
			r.env.Suite().ChargeMAC()
			r.env.Send(peer, qc)
		}
	}
	r.onQC(qc)
}

// onQC runs at every replica and advances the slot's phase; the
// commit-phase QC decides the slot. Mirroring the paper's implementation —
// which "skips the construction and verification of threshold signatures"
// (Section 3) — intermediate QCs are accepted on signer count, and only the
// deciding QC has f+1 of its signatures verified (at least one of which is
// then from a non-faulty replica).
func (r *Replica) onQC(m *QC) {
	if int(m.Phase) > 2 || len(m.Signers) < r.quorum() || len(m.Signers) != len(m.Sigs) {
		return
	}
	s := r.slotAt(m.Leader, m.Slot)
	if s.skipped || s.decided || s.phaseOK[m.Phase] {
		return
	}
	seen := make(map[types.NodeID]bool)
	for _, id := range m.Signers {
		if seen[id] {
			return
		}
		seen[id] = true
	}
	if m.Phase == PhaseCommit {
		payload := votePayload(m.Leader, m.Slot, m.Phase, m.Digest)
		for i := 0; i <= r.cfg.F && i < len(m.Signers); i++ {
			if !r.env.Suite().Verify(m.Signers[i], payload, m.Sigs[i]) {
				return
			}
		}
	}
	s.phaseOK[m.Phase] = true
	if !s.proposed {
		// QC before the proposal (possible for non-leader replicas under
		// reordering): remember the digest; the proposal will follow.
		s.digest = m.Digest
	}
	switch m.Phase {
	case PhasePrepare:
		r.castVote(m.Leader, m.Slot, PhasePreCommit, m.Digest)
	case PhasePreCommit:
		r.castVote(m.Leader, m.Slot, PhaseCommit, m.Digest)
	case PhaseCommit:
		s.decided = true
		if m.Leader == r.cfg.Self && r.openOwn > 0 {
			r.openOwn--
		}
		r.tryExecute()
		if m.Leader == r.cfg.Self {
			r.tryPropose()
		}
	}
}

// globalCursor maps the executed counter to (chain leader, slot).
func (r *Replica) globalCursor() (types.NodeID, uint64) {
	n := uint64(len(r.cfg.Members))
	return r.cfg.Members[r.executed%n], r.executed/n + 1
}

// tryExecute executes decided slots in the global round-robin order.
func (r *Replica) tryExecute() {
	for {
		leader, slotNo := r.globalCursor()
		s := r.chains[leader][slotNo]
		// A chain with no load blocks the global order; its leader fills
		// with a no-op once it sees other chains pulling ahead.
		if s == nil || (!s.decided && !s.skipped) {
			if leader == r.cfg.Self && (s == nil || !s.proposed) && slotNo == r.myNext+1 {
				if len(r.queue) > 0 {
					r.tryPropose()
				} else if r.chainsAhead(slotNo) {
					r.noopSeq++
					r.propose(types.Batch{Client: r.cfg.Self, Seq: r.noopSeq, NoOp: true})
				}
			}
			r.armSkipTimer()
			return
		}
		if !s.skipped {
			batch := s.batch
			r.env.Suite().ChargeExec(batch.Len())
			r.store.ApplyBatch(&batch)
			r.ledger.Append(slotNo, types.ClusterID(r.executed%uint64(len(r.cfg.Members))), batch, s.digest)
			if !batch.NoOp && batch.Client.IsClient() {
				r.env.Suite().ChargeMAC()
				r.env.Send(batch.Client, &proto.Reply{
					Client: batch.Client, ClientSeq: batch.Seq,
					Replica: r.cfg.Self, TxnCount: batch.Len(), Result: s.digest,
				})
			}
		}
		delete(r.chains[leader], slotNo)
		r.executed++
	}
}

// chainsAhead reports whether another chain has decided a slot ≥ slotNo,
// i.e. our own idle chain is holding back execution.
func (r *Replica) chainsAhead(slotNo uint64) bool {
	for leader, chain := range r.chains {
		if leader == r.cfg.Self {
			continue
		}
		for n, s := range chain {
			if n >= slotNo && (s.decided || s.proposed) {
				return true
			}
		}
	}
	return false
}

// --- crash-fault chain skipping ---------------------------------------------

func (r *Replica) armSkipTimer() {
	blocking := r.executed
	if r.skipTmr != nil {
		if r.skipFor == blocking {
			return
		}
		r.skipTmr.Stop()
	}
	r.skipFor = blocking
	r.skipTmr = r.env.SetTimer(r.cfg.SkipTimeout, func() {
		r.skipTmr = nil
		if r.executed != blocking {
			return
		}
		// Execution has been stuck for a full timeout: vote to skip the
		// pending slot of every chain without a live proposal, in parallel
		// (several leaders may have crashed at once). Proposed slots get a
		// long grace period — their leader is alive, merely slow.
		n := uint64(len(r.cfg.Members))
		for idx, leader := range r.cfg.Members {
			slotNo := r.executed/n + 1
			if uint64(idx) < r.executed%n {
				slotNo++
			}
			s := r.slotAt(leader, slotNo)
			if s.decided || s.skipped {
				continue
			}
			if s.proposed && r.env.Now()-s.proposedAt < 4*r.cfg.SkipTimeout {
				continue
			}
			r.voteSkip(leader, slotNo)
		}
		r.armSkipTimer()
	})
}

func (r *Replica) onSkipVote(from types.NodeID, m *SkipVote) {
	if m.Replica != from {
		return
	}
	s := r.slotAt(m.Leader, m.Slot)
	if s.decided || s.skipped || s.skips[from] {
		return
	}
	if !r.env.Suite().Verify(from, skipPayload(m.Leader, m.Slot), m.Sig) {
		return
	}
	s.skips[from] = true
	if len(s.skips) >= r.quorum() {
		s.skipped = true
		if m.Leader == r.cfg.Self && r.openOwn > 0 {
			r.openOwn--
		}
		// A dead chain blocks round-robin execution once per slot; cascade
		// the skip to its subsequent unproposed slots so a crashed leader
		// costs one detection timeout, not one per slot.
		if next := r.chains[m.Leader][m.Slot+1]; (next == nil || !next.proposed) && m.Slot < r.maxSeen {
			r.voteSkip(m.Leader, m.Slot+1)
		}
		r.tryExecute()
	}
}

// voteSkip broadcasts this replica's skip vote for one slot.
func (r *Replica) voteSkip(leader types.NodeID, slotNo uint64) {
	s := r.slotAt(leader, slotNo)
	if s.decided || s.skipped || s.skips[r.cfg.Self] {
		return
	}
	sig := r.env.Suite().Sign(skipPayload(leader, slotNo))
	sv := &SkipVote{Leader: leader, Slot: slotNo, Replica: r.cfg.Self, Sig: sig}
	for _, peer := range r.cfg.Members {
		if peer != r.cfg.Self {
			r.env.Suite().ChargeMAC()
			r.env.Send(peer, sv)
		}
	}
	r.onSkipVote(r.cfg.Self, sv)
}
