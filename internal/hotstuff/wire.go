package hotstuff

import (
	"resilientdb/internal/types"
)

// Wire codec for the HotStuff baseline's messages, registered with the
// message-type registry in internal/types.

// EncodeBody implements types.WireMessage.
func (r *Request) EncodeBody(enc *types.Encoder) {
	r.Batch.Encode(enc)
}

func decodeRequest(dec *types.Decoder) types.Message {
	return &Request{Batch: types.DecodeBatch(dec)}
}

// EncodeBody implements types.WireMessage.
func (p *Propose) EncodeBody(enc *types.Encoder) {
	enc.I32(int32(p.Leader))
	enc.U64(p.Slot)
	p.Batch.Encode(enc)
}

func decodePropose(dec *types.Decoder) types.Message {
	p := &Propose{}
	p.Leader = types.NodeID(dec.I32())
	p.Slot = dec.U64()
	p.Batch = types.DecodeBatch(dec)
	return p
}

// EncodeBody implements types.WireMessage.
func (v *Vote) EncodeBody(enc *types.Encoder) {
	enc.I32(int32(v.Leader))
	enc.U64(v.Slot)
	enc.U8(uint8(v.Phase))
	enc.Digest(v.Digest)
	enc.I32(int32(v.Replica))
	enc.BytesN(v.Sig)
}

func decodeVote(dec *types.Decoder) types.Message {
	v := &Vote{}
	v.Leader = types.NodeID(dec.I32())
	v.Slot = dec.U64()
	v.Phase = Phase(dec.U8())
	v.Digest = dec.Digest()
	v.Replica = types.NodeID(dec.I32())
	v.Sig = dec.BytesN()
	return v
}

// EncodeBody implements types.WireMessage.
func (q *QC) EncodeBody(enc *types.Encoder) {
	enc.I32(int32(q.Leader))
	enc.U64(q.Slot)
	enc.U8(uint8(q.Phase))
	enc.Digest(q.Digest)
	enc.NodeIDs(q.Signers)
	enc.SigList(q.Sigs)
}

func decodeQC(dec *types.Decoder) types.Message {
	q := &QC{}
	q.Leader = types.NodeID(dec.I32())
	q.Slot = dec.U64()
	q.Phase = Phase(dec.U8())
	q.Digest = dec.Digest()
	q.Signers = dec.NodeIDs()
	q.Sigs = dec.SigList()
	return q
}

// EncodeBody implements types.WireMessage.
func (s *SkipVote) EncodeBody(enc *types.Encoder) {
	enc.I32(int32(s.Leader))
	enc.U64(s.Slot)
	enc.I32(int32(s.Replica))
	enc.BytesN(s.Sig)
}

func decodeSkipVote(dec *types.Decoder) types.Message {
	s := &SkipVote{}
	s.Leader = types.NodeID(dec.I32())
	s.Slot = dec.U64()
	s.Replica = types.NodeID(dec.I32())
	s.Sig = dec.BytesN()
	return s
}

func init() {
	b := func() types.Batch {
		return types.Batch{Client: types.ClientIDBase + 2, Seq: 4, Txns: []types.Transaction{{Key: 5, Value: 6}}}
	}
	types.RegisterMessage((*Request)(nil).MsgType(), decodeRequest, func() []types.Message {
		return []types.Message{&Request{}, &Request{Batch: b()}}
	})
	types.RegisterMessage((*Propose)(nil).MsgType(), decodePropose, func() []types.Message {
		return []types.Message{
			&Propose{},
			&Propose{Leader: 1, Slot: 8, Batch: b()},
		}
	})
	types.RegisterMessage((*Vote)(nil).MsgType(), decodeVote, func() []types.Message {
		return []types.Message{
			&Vote{},
			&Vote{Leader: 1, Slot: 8, Phase: PhaseCommit, Digest: types.Hash([]byte("v")), Replica: 2, Sig: []byte{1}},
		}
	})
	types.RegisterMessage((*QC)(nil).MsgType(), decodeQC, func() []types.Message {
		return []types.Message{
			&QC{},
			&QC{
				Leader:  1,
				Slot:    8,
				Phase:   PhasePreCommit,
				Digest:  types.Hash([]byte("q")),
				Signers: []types.NodeID{0, 1, 2},
				Sigs:    [][]byte{{1}, {2}, {3}},
			},
		}
	})
	types.RegisterMessage((*SkipVote)(nil).MsgType(), decodeSkipVote, func() []types.Message {
		return []types.Message{
			&SkipVote{},
			&SkipVote{Leader: 1, Slot: 8, Replica: 3, Sig: []byte{7}},
		}
	})
}
