package hotstuff_test

import (
	"testing"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/hotstuff"
	"resilientdb/internal/proto"
	"resilientdb/internal/simnet"
	"resilientdb/internal/types"
	"resilientdb/internal/ycsb"
)

// hsClient submits to one leader round-robin and waits for f+1 matching
// replies.
type hsClient struct {
	members   []types.NodeID
	target    types.NodeID
	f         int
	total     int
	window    int
	batchSize int

	env       *simnet.Env
	wl        *ycsb.Workload
	nextSeq   uint64
	acks      map[uint64]map[types.NodeID]bool
	done      map[uint64]bool
	completed int
}

func (c *hsClient) Init(env *simnet.Env) {
	c.env = env
	c.wl = ycsb.NewWorkload(500, ycsb.DefaultTheta, int64(env.ID()))
	c.acks = make(map[uint64]map[types.NodeID]bool)
	c.done = make(map[uint64]bool)
	for i := 0; i < c.window && int(c.nextSeq) < c.total; i++ {
		c.submit()
	}
}

func (c *hsClient) submit() {
	c.nextSeq++
	b := c.wl.MakeBatch(c.env.ID(), c.nextSeq, c.batchSize)
	c.env.Suite().ChargeSign()
	c.env.Send(c.target, &hotstuff.Request{Batch: b})
}

func (c *hsClient) Receive(from types.NodeID, msg types.Message) {
	rep, ok := msg.(*proto.Reply)
	if !ok || c.done[rep.ClientSeq] {
		return
	}
	set := c.acks[rep.ClientSeq]
	if set == nil {
		set = make(map[types.NodeID]bool)
		c.acks[rep.ClientSeq] = set
	}
	set[from] = true
	if len(set) >= c.f+1 {
		c.done[rep.ClientSeq] = true
		c.completed++
		if int(c.nextSeq) < c.total {
			c.submit()
		}
	}
}

func setup(t *testing.T, n, clients, total int, seed int64) (*simnet.Network, []*hotstuff.Replica, []*hsClient) {
	t.Helper()
	net := simnet.New(simnet.Options{Profile: config.UniformProfile(1, 0, 1000), Seed: seed})
	members := make([]types.NodeID, n)
	for i := range members {
		members[i] = types.NodeID(i)
	}
	f := (n - 1) / 3
	reps := make([]*hotstuff.Replica, n)
	for i := range reps {
		reps[i] = hotstuff.NewReplica(hotstuff.Config{
			Members: members, Self: members[i], F: f, Records: 500,
			SkipTimeout: time.Second,
		})
		net.AddNode(members[i], 0, reps[i])
	}
	var cls []*hsClient
	for i := 0; i < clients; i++ {
		cl := &hsClient{
			members: members, target: members[i%n], f: f,
			total: total, window: 2, batchSize: 10,
		}
		cls = append(cls, cl)
		net.AddNode(config.ClientID(i), 0, cl)
	}
	return net, reps, cls
}

func TestNormalCaseAllLeadersActive(t *testing.T) {
	net, reps, cls := setup(t, 4, 4, 10, 3)
	net.RunUntil(120 * time.Second)
	for i, c := range cls {
		if c.completed != c.total {
			t.Errorf("client %d completed %d/%d", i, c.completed, c.total)
		}
	}
	for i := 1; i < 4; i++ {
		if reps[i].Ledger().Head() != reps[0].Ledger().Head() ||
			reps[i].Ledger().Height() != reps[0].Ledger().Height() {
			t.Errorf("replica %d diverged (h=%d vs %d)", i,
				reps[i].Ledger().Height(), reps[0].Ledger().Height())
		}
		if reps[i].Store().Digest() != reps[0].Store().Digest() {
			t.Errorf("replica %d store diverged", i)
		}
	}
}

func TestSingleClientOtherChainsNoOpFill(t *testing.T) {
	// Only one leader has client load; the others must fill their slots
	// with no-ops so the round-robin execution order advances.
	net, reps, cls := setup(t, 4, 1, 8, 9)
	net.RunUntil(240 * time.Second)
	if cls[0].completed != cls[0].total {
		t.Fatalf("client completed %d/%d", cls[0].completed, cls[0].total)
	}
	if reps[0].ExecutedSlots() < 8 {
		t.Errorf("executed %d slots", reps[0].ExecutedSlots())
	}
}

func TestCrashedLeaderChainIsSkipped(t *testing.T) {
	net, reps, cls := setup(t, 4, 4, 6, 13)
	net.Crash(3) // kills a leader (and its clients' target)
	// Client 3 targeted the crashed leader: it cannot complete; others must.
	net.RunUntil(300 * time.Second)
	for i := 0; i < 3; i++ {
		if cls[i].completed != cls[i].total {
			t.Errorf("client %d completed %d/%d with crashed leader", i, cls[i].completed, cls[i].total)
		}
	}
	for i := 1; i < 3; i++ {
		if reps[i].Ledger().Head() != reps[0].Ledger().Head() {
			t.Errorf("replica %d diverged", i)
		}
	}
}

func TestGeoDistributedHotStuff(t *testing.T) {
	prof := config.GoogleCloudProfile(4)
	net := simnet.New(simnet.Options{Profile: prof, Seed: 17})
	n := 8
	members := make([]types.NodeID, n)
	for i := range members {
		members[i] = types.NodeID(i)
	}
	reps := make([]*hotstuff.Replica, n)
	for i := range reps {
		reps[i] = hotstuff.NewReplica(hotstuff.Config{
			Members: members, Self: members[i], F: 2, Records: 500,
			SkipTimeout: 5 * time.Second,
		})
		net.AddNode(members[i], i%4, reps[i])
	}
	cls := make([]*hsClient, n)
	for i := range cls {
		cls[i] = &hsClient{members: members, target: members[i], f: 2,
			total: 5, window: 1, batchSize: 10}
		net.AddNode(config.ClientID(i), i%4, cls[i])
	}
	net.RunUntil(300 * time.Second)
	for i, c := range cls {
		if c.completed != c.total {
			t.Errorf("client %d completed %d/%d", i, c.completed, c.total)
		}
	}
	for i := 1; i < n; i++ {
		if reps[i].Ledger().Head() != reps[0].Ledger().Head() {
			t.Errorf("replica %d diverged", i)
		}
	}
}
