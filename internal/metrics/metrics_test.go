package metrics

import (
	"testing"
	"time"
)

func TestWindowFiltering(t *testing.T) {
	c := NewCollector(time.Second, 3*time.Second)
	c.RecordCompletion(500*time.Millisecond, 0, 10) // before window
	c.RecordCompletion(1500*time.Millisecond, 1*time.Second, 10)
	c.RecordCompletion(2500*time.Millisecond, 2*time.Second, 10)
	c.RecordCompletion(3500*time.Millisecond, 3*time.Second, 10) // after window
	if c.Txns() != 20 {
		t.Errorf("Txns = %d, want 20", c.Txns())
	}
	if c.Batches() != 2 {
		t.Errorf("Batches = %d", c.Batches())
	}
	// Window = 2 s → 10 txn/s.
	if tp := c.Throughput(3 * time.Second); tp < 9.9 || tp > 10.1 {
		t.Errorf("Throughput = %f", tp)
	}
}

func TestLatencyStats(t *testing.T) {
	c := NewCollector(0, 0)
	for i := 1; i <= 100; i++ {
		c.RecordCompletion(time.Duration(i)*time.Millisecond, 0, 1)
	}
	st := c.Latency()
	if st.Count != 100 {
		t.Fatalf("Count = %d", st.Count)
	}
	if st.Max != 100*time.Millisecond {
		t.Errorf("Max = %v", st.Max)
	}
	if st.P50 < 48*time.Millisecond || st.P50 > 53*time.Millisecond {
		t.Errorf("P50 = %v", st.P50)
	}
	if st.P95 < 93*time.Millisecond || st.P95 > 97*time.Millisecond {
		t.Errorf("P95 = %v", st.P95)
	}
	if st.Avg < 50*time.Millisecond || st.Avg > 51*time.Millisecond {
		t.Errorf("Avg = %v", st.Avg)
	}
}

func TestEmptyLatency(t *testing.T) {
	c := NewCollector(0, 0)
	if st := c.Latency(); st.Count != 0 || st.Avg != 0 {
		t.Errorf("empty stats = %+v", st)
	}
	if tp := c.Throughput(time.Second); tp != 0 {
		t.Errorf("Throughput = %f", tp)
	}
}

func TestMessageCounters(t *testing.T) {
	c := NewCollector(0, 0)
	c.RecordSend(true, 100)
	c.RecordSend(true, 200)
	c.RecordSend(false, 1000)
	m := c.Messages()
	if m.LocalMsgs != 2 || m.LocalBytes != 300 {
		t.Errorf("local = %d msgs %d bytes", m.LocalMsgs, m.LocalBytes)
	}
	if m.GlobalMsgs != 1 || m.GlobalBytes != 1000 {
		t.Errorf("global = %d msgs %d bytes", m.GlobalMsgs, m.GlobalBytes)
	}
}

func TestConcurrentUse(t *testing.T) {
	c := NewCollector(0, 0)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				c.RecordCompletion(time.Duration(i), 0, 1)
				c.RecordSend(i%2 == 0, i)
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if c.Txns() != 4000 {
		t.Errorf("Txns = %d", c.Txns())
	}
}
