// Package metrics collects the measurements every experiment reports:
// client-observed throughput and latency, plus message and byte counters
// split into local (intra-region) and global (inter-region) traffic — the
// distinction at the heart of the paper's cost analysis (Table 2).
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Drops counts messages silently discarded along the fabric's pipeline. The
// transports and the fabric runtime increment these from many goroutines;
// read them with Snapshot. Every drop class a deployment can experience has
// its own counter so a benchmark run can report loss instead of mystery
// throughput dips.
type Drops struct {
	// Mailbox counts messages dropped because a node's receive mailbox was
	// full.
	Mailbox atomic.Uint64
	// SendQueue counts frames dropped because a peer connection's outgoing
	// queue was full (TCP transport).
	SendQueue atomic.Uint64
	// OutQ counts messages dropped because a node's output-stage queue was
	// full (fabric).
	OutQ atomic.Uint64
	// Encode counts messages dropped because they could not be wire-encoded.
	Encode atomic.Uint64
	// Decode counts frames dropped because they could not be decoded.
	Decode atomic.Uint64
	// NoRoute counts messages dropped because the destination had no known
	// address.
	NoRoute atomic.Uint64
	// VerifyReject counts inbound messages discarded by the verify stage:
	// failed cryptographic checks, but also malformed or mis-routed
	// messages the state machine would discard unconditionally (the stage
	// rejects those before paying for crypto).
	VerifyReject atomic.Uint64
	// AuthReject counts transport frames discarded because their
	// authentication tag did not verify against the claimed sender — a
	// connection impersonating another node's identity (TCP transport with
	// frame authentication enabled).
	AuthReject atomic.Uint64
}

// Snapshot returns a point-in-time copy of the counters.
func (d *Drops) Snapshot() DropStats {
	return DropStats{
		Mailbox:      d.Mailbox.Load(),
		SendQueue:    d.SendQueue.Load(),
		OutQ:         d.OutQ.Load(),
		Encode:       d.Encode.Load(),
		Decode:       d.Decode.Load(),
		NoRoute:      d.NoRoute.Load(),
		VerifyReject: d.VerifyReject.Load(),
		AuthReject:   d.AuthReject.Load(),
	}
}

// DropStats is a snapshot of Drops, aggregatable across sources. Mempool and
// Snapshots ride along for reporting convenience: admission outcomes and
// checkpoint/GC activity are accounting, not losses, so Total ignores them.
type DropStats struct {
	Mailbox      uint64        `json:"mailbox"`
	SendQueue    uint64        `json:"send_queue"`
	OutQ         uint64        `json:"out_queue"`
	Encode       uint64        `json:"encode"`
	Decode       uint64        `json:"decode"`
	NoRoute      uint64        `json:"no_route"`
	VerifyReject uint64        `json:"verify_reject"`
	AuthReject   uint64        `json:"auth_reject"`
	Mempool      MempoolStats  `json:"mempool"`
	Snapshots    SnapshotStats `json:"snapshots"`
}

// Add accumulates o into s (merging per-node or per-transport snapshots).
func (s *DropStats) Add(o DropStats) {
	s.Mailbox += o.Mailbox
	s.SendQueue += o.SendQueue
	s.OutQ += o.OutQ
	s.Encode += o.Encode
	s.Decode += o.Decode
	s.NoRoute += o.NoRoute
	s.VerifyReject += o.VerifyReject
	s.AuthReject += o.AuthReject
	s.Mempool.Add(o.Mempool)
	s.Snapshots.Add(o.Snapshots)
}

// Total returns the sum of all drop classes. Mempool admission outcomes are
// not drops and are excluded.
func (s DropStats) Total() uint64 {
	return s.Mailbox + s.SendQueue + s.OutQ + s.Encode + s.Decode + s.NoRoute + s.VerifyReject + s.AuthReject
}

// MempoolStats counts client-request admission outcomes at one replica's
// mempool (internal/mempool), aggregatable across replicas. Every inbound
// request lands in exactly one bucket; Evicted additionally counts admitted
// requests later displaced by capacity pressure.
type MempoolStats struct {
	// Admitted counts first-sighting requests handed to consensus.
	Admitted uint64 `json:"admitted"`
	// Duplicate counts retries (or equivocations) of a still-pending
	// (client, seq), dropped because the original is in flight.
	Duplicate uint64 `json:"duplicate"`
	// Replayed counts requests whose (client, seq) already executed; those
	// inside the replay window are re-replied from the certified ledger.
	Replayed uint64 `json:"replayed"`
	// RateLimited counts requests dropped by the per-client token bucket.
	RateLimited uint64 `json:"rate_limited"`
	// Evicted counts pending requests displaced by capacity pressure.
	Evicted uint64 `json:"evicted"`
}

// Add accumulates o into s.
func (s *MempoolStats) Add(o MempoolStats) {
	s.Admitted += o.Admitted
	s.Duplicate += o.Duplicate
	s.Replayed += o.Replayed
	s.RateLimited += o.RateLimited
	s.Evicted += o.Evicted
}

// SnapshotStats counts checkpoint-snapshot and ledger-GC activity at one
// replica (or aggregated over a deployment's hosted replicas): the bounded-
// history counters operators watch to confirm storage actually stays bounded
// and tampered snapshot material is being rejected rather than installed.
type SnapshotStats struct {
	// Written counts checkpoints this replica captured and published itself.
	Written uint64 `json:"written"`
	// Served counts snapshot manifests and state chunks served to peers.
	Served uint64 `json:"served"`
	// Installed counts snapshots installed from peers or the local archive
	// (the snapshot-bootstrap path of a fresh or far-behind replica).
	Installed uint64 `json:"installed"`
	// Rejected counts tampered or forged snapshot material discarded during
	// verification (also included in DropStats.VerifyReject).
	Rejected uint64 `json:"rejected"`
	// SegmentsReclaimed counts ledger disk segments garbage-collected below
	// durable checkpoints.
	SegmentsReclaimed uint64 `json:"segments_reclaimed"`
	// BytesReclaimed is the total size of the reclaimed segments.
	BytesReclaimed uint64 `json:"bytes_reclaimed"`
	// DiskBytes is the current on-disk size of the hosted block stores.
	DiskBytes uint64 `json:"disk_bytes"`
	// StoreErrs counts replicas whose ledger detached from its block store
	// after a persistence failure (Ledger.StoreErr non-nil): the node runs
	// on, memory-only, but its durability gap must not go unnoticed.
	StoreErrs uint64 `json:"store_errs"`
}

// Add accumulates o into s.
func (s *SnapshotStats) Add(o SnapshotStats) {
	s.Written += o.Written
	s.Served += o.Served
	s.Installed += o.Installed
	s.Rejected += o.Rejected
	s.SegmentsReclaimed += o.SegmentsReclaimed
	s.BytesReclaimed += o.BytesReclaimed
	s.DiskBytes += o.DiskBytes
	s.StoreErrs += o.StoreErrs
}

// Collector accumulates samples. It is safe for concurrent use (the real
// fabric is multi-threaded; the simulator is single-threaded).
type Collector struct {
	mu sync.Mutex

	// measurement window in virtual (or real) time
	windowStart time.Duration
	windowEnd   time.Duration

	txns      int64
	batches   int64
	latencies []time.Duration

	localMsgs   int64
	globalMsgs  int64
	localBytes  int64
	globalBytes int64
}

// NewCollector returns an empty collector. Samples outside
// [windowStart, windowEnd) are ignored; a zero windowEnd means +∞.
func NewCollector(windowStart, windowEnd time.Duration) *Collector {
	return &Collector{windowStart: windowStart, windowEnd: windowEnd}
}

func (c *Collector) inWindow(now time.Duration) bool {
	if now < c.windowStart {
		return false
	}
	return c.windowEnd == 0 || now < c.windowEnd
}

// RecordCompletion records a client-observed batch completion: the batch was
// submitted at submit, completed at now, and carried txns transactions.
func (c *Collector) RecordCompletion(now, submit time.Duration, txns int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.inWindow(now) {
		return
	}
	c.txns += int64(txns)
	c.batches++
	if len(c.latencies) < 1<<21 {
		c.latencies = append(c.latencies, now-submit)
	}
}

// RecordSend records one transmitted message.
func (c *Collector) RecordSend(sameRegion bool, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sameRegion {
		c.localMsgs++
		c.localBytes += int64(size)
	} else {
		c.globalMsgs++
		c.globalBytes += int64(size)
	}
}

// Txns returns the number of completed transactions inside the window.
func (c *Collector) Txns() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.txns
}

// Batches returns the number of completed batches inside the window.
func (c *Collector) Batches() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.batches
}

// Throughput returns transactions per second over the measurement window,
// where end is the actual end of measurement.
func (c *Collector) Throughput(end time.Duration) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	window := end - c.windowStart
	if c.windowEnd != 0 && c.windowEnd < end {
		window = c.windowEnd - c.windowStart
	}
	if window <= 0 {
		return 0
	}
	return float64(c.txns) / window.Seconds()
}

// LatencyStats summarizes completion latencies.
type LatencyStats struct {
	Count int
	Avg   time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Latency computes latency statistics over the recorded samples.
func (c *Collector) Latency() LatencyStats {
	c.mu.Lock()
	samples := make([]time.Duration, len(c.latencies))
	copy(samples, c.latencies)
	c.mu.Unlock()

	var st LatencyStats
	st.Count = len(samples)
	if st.Count == 0 {
		return st
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	st.Avg = sum / time.Duration(st.Count)
	st.P50 = samples[st.Count/2]
	st.P95 = samples[min(st.Count-1, st.Count*95/100)]
	st.P99 = samples[min(st.Count-1, st.Count*99/100)]
	st.Max = samples[st.Count-1]
	return st
}

// MessageStats summarizes traffic counts.
type MessageStats struct {
	LocalMsgs, GlobalMsgs   int64
	LocalBytes, GlobalBytes int64
}

// Messages returns the traffic counters.
func (c *Collector) Messages() MessageStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return MessageStats{
		LocalMsgs: c.localMsgs, GlobalMsgs: c.globalMsgs,
		LocalBytes: c.localBytes, GlobalBytes: c.globalBytes,
	}
}
