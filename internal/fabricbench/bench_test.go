package fabricbench

import (
	"testing"
	"time"
)

// BenchmarkFabricThroughput measures committed-transaction throughput of a
// live fabric with Real cryptography. Sub-benchmarks cover the PR-2 matrix:
// Mem vs TCP loopback transport, z=2/n=4 vs z=4/n=7, serial inline
// verification vs the parallel verify pool. Each iteration runs a fixed
// measurement window and reports txn/s as a metric; run with -benchtime=1x.
func BenchmarkFabricThroughput(b *testing.B) {
	for _, sc := range StandardScenarios(2*time.Second, 2*time.Second) {
		sc := sc
		b.Run(sc.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := Run(sc)
				b.ReportMetric(res.TxnPerSec, "txn/s")
				b.ReportMetric(float64(res.Drops.Total()), "drops")
			}
		})
	}
}
