package fabricbench

import (
	"fmt"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/crypto"
	"resilientdb/internal/kvstore"
	"resilientdb/internal/ledger"
	"resilientdb/internal/pbft"
	"resilientdb/internal/snapshot"
	"resilientdb/internal/types"
)

// SnapshotBootstrapResult reports one snapshot-bootstrap measurement: the
// time a joining replica spends turning received checkpoint bytes into live
// state. Verify covers the untrusted half (manifest decode and signature/
// certificate verification plus content-addressing every chunk and the
// whole state); Install covers the trusting half (kvstore restore and
// ledger re-anchor). Together they are the state-transfer cost a fresh node
// pays instead of replaying the GC'd chain block by block.
type SnapshotBootstrapResult struct {
	Records    int     `json:"records"`
	StateBytes int     `json:"state_bytes"`
	Chunks     int     `json:"chunks"`
	VerifyMs   float64 `json:"verify_ms"`
	InstallMs  float64 `json:"install_ms"`
	TotalMs    float64 `json:"total_ms"`
	MBPerSec   float64 `json:"mb_per_sec"`
}

// SnapshotBootstrap measures the verify+install path for a checkpoint of
// the given kvstore record count, averaged over iters runs. The manifest is
// built and quorum-signed exactly as a live checkpoint is (Real crypto,
// z=2 n=4), then each iteration re-runs what a joiner does with wire bytes
// from an untrusted peer.
func SnapshotBootstrap(records, iters int) (SnapshotBootstrapResult, error) {
	topo := config.NewTopology(2, 4)
	dir := crypto.NewDirectory(crypto.Real, topo.AllReplicas())
	suite := func(id types.NodeID) *crypto.Suite {
		return crypto.NewSuite(dir, id, crypto.FreeCosts(), nil)
	}
	state := kvstore.New(records).Serialize()

	const round = 64
	tip := types.Batch{Client: types.ClientIDBase, Seq: round, NoOp: true}
	tip.PrimeDigest()
	members := topo.ClusterMembers(topo.Clusters - 1)
	cert := &pbft.Certificate{
		View: 0, Seq: round, Digest: tip.Digest(), Batch: tip,
		Signers: append([]types.NodeID(nil), members[:topo.PerCluster-topo.F()]...),
	}
	payload := pbft.CommitPayload(0, round, cert.Digest)
	for _, id := range cert.Signers {
		cert.Sigs = append(cert.Sigs, suite(id).Sign(payload))
	}
	hist := []types.Digest{types.Hash([]byte("bench-h0")), types.Hash([]byte("bench-h1"))}
	m := snapshot.Build(round, topo.Clusters, types.Hash([]byte("bench-prev")), cert, hist, state)
	m.Sign(suite(members[0]))
	wire, err := m.Encode()
	if err != nil {
		return SnapshotBootstrapResult{}, err
	}

	joiner := suite(topo.ReplicaID(0, 3))
	var verify, install time.Duration
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		got, err := snapshot.Decode(wire)
		if err != nil {
			return SnapshotBootstrapResult{}, err
		}
		if err := got.Verify(topo, joiner); err != nil {
			return SnapshotBootstrapResult{}, err
		}
		for c := range got.Chunks {
			if err := got.VerifyChunk(c, got.Chunk(state, c)); err != nil {
				return SnapshotBootstrapResult{}, err
			}
		}
		if err := got.VerifyState(state); err != nil {
			return SnapshotBootstrapResult{}, err
		}
		t1 := time.Now()
		store := kvstore.New(0)
		if err := store.Restore(state); err != nil {
			return SnapshotBootstrapResult{}, err
		}
		l := ledger.New()
		if err := l.AnchorSnapshot(got.Height, got.Tip(topo.Clusters).Hash); err != nil {
			return SnapshotBootstrapResult{}, err
		}
		t2 := time.Now()
		verify += t1.Sub(t0)
		install += t2.Sub(t1)
	}
	if iters < 1 {
		return SnapshotBootstrapResult{}, fmt.Errorf("fabricbench: snapshot bootstrap needs iters >= 1")
	}
	res := SnapshotBootstrapResult{
		Records:    records,
		StateBytes: len(state),
		Chunks:     len(m.Chunks),
		VerifyMs:   float64(verify.Microseconds()) / float64(iters) / 1e3,
		InstallMs:  float64(install.Microseconds()) / float64(iters) / 1e3,
	}
	res.TotalMs = res.VerifyMs + res.InstallMs
	if res.TotalMs > 0 {
		res.MBPerSec = float64(res.StateBytes) / (res.TotalMs / 1e3) / (1 << 20)
	}
	return res, nil
}
