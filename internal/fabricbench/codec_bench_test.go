package fabricbench

import (
	"testing"

	"resilientdb/internal/core"
	"resilientdb/internal/pbft"
	"resilientdb/internal/types"
)

// BenchmarkCodec runs the shared wire-codec micro-benchmark matrix (see
// codec.go) — pooled vs unpooled encoding and decoding for the paper-sized
// message shapes. Run with -benchmem; cmd/fabricbench records the same cases
// into the committed bench JSON (BENCH_PR6.json).
func BenchmarkCodec(b *testing.B) {
	for _, c := range CodecCases() {
		b.Run(c.Name, c.Fn)
	}
}

// TestDecodeDigestCached pins the decode-time digest cache: DecodeBatch
// hashes the consumed wire bytes once, so reading the batch digest after
// decoding adds zero allocations and zero re-encoding work on top of the
// decode itself — the digest no longer gets recomputed in the hot-path
// consumers (preprepare checks, certificate verification, ledger appends).
func TestDecodeDigestCached(t *testing.T) {
	for _, tc := range []struct {
		name   string
		msg    types.Message
		digest func(types.Message) types.Digest
	}{
		{"preprepare", SamplePrePrepare(), func(m types.Message) types.Digest {
			return m.(*pbft.PrePrepare).Batch.Digest()
		}},
		{"globalshare", SampleGlobalShare(), func(m types.Message) types.Digest {
			return m.(*core.GlobalShare).Cert.Batch.Digest()
		}},
	} {
		enc, err := types.EncodeMessage(tc.msg)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := types.DecodeMessage(enc)
		if err != nil {
			t.Fatal(err)
		}
		// Correctness: the cached digest equals a from-scratch recomputation.
		var want types.Digest
		switch m := decoded.(type) {
		case *pbft.PrePrepare:
			want = m.Batch.RecomputedDigest()
		case *core.GlobalShare:
			want = m.Cert.Batch.RecomputedDigest()
		}
		if got := tc.digest(decoded); got != want {
			t.Fatalf("%s: cached digest %s != recomputed %s", tc.name, got.Short(), want.Short())
		}
		// Allocation contract: decode+digest must not allocate beyond decode
		// alone (the digest is free once decoded).
		decodeOnly := testing.AllocsPerRun(200, func() {
			if _, err := types.DecodeMessage(enc); err != nil {
				panic(err)
			}
		})
		decodePlusDigest := testing.AllocsPerRun(200, func() {
			m, err := types.DecodeMessage(enc)
			if err != nil {
				panic(err)
			}
			_ = tc.digest(m)
		})
		if decodePlusDigest > decodeOnly {
			t.Errorf("%s: decode+digest allocates %.1f/op, decode alone %.1f/op; digest must be free after decode",
				tc.name, decodePlusDigest, decodeOnly)
		}
	}
}

// BenchmarkDecodeAndDigest measures the wire-decode + digest path the verify
// pool pays per certificate share (run with -benchmem; the digest itself
// must contribute zero allocations).
func BenchmarkDecodeAndDigest(b *testing.B) {
	enc, err := types.EncodeMessage(SampleGlobalShare())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := types.DecodeMessage(enc)
		if err != nil {
			b.Fatal(err)
		}
		_ = m.(*core.GlobalShare).Cert.Batch.Digest()
	}
}

// TestPooledEncodeAllocatesLess pins the point of the encoder pool: encoding
// through GetEncoder/Release allocates strictly less than NewEncoder-backed
// EncodeMessage for every hot-path message shape.
func TestPooledEncodeAllocatesLess(t *testing.T) {
	for _, tc := range []struct {
		name string
		msg  types.Message
	}{
		{"preprepare", SamplePrePrepare()},
		{"globalshare", SampleGlobalShare()},
		{"reply", SampleReply()},
	} {
		// Warm the pool so the steady state is measured.
		EncodePooled(tc.msg)
		pooled := testing.AllocsPerRun(200, func() { EncodePooled(tc.msg) })
		unpooled := testing.AllocsPerRun(200, func() { EncodeUnpooled(tc.msg) })
		if pooled >= unpooled {
			t.Errorf("%s: pooled encode allocates %.1f/op, unpooled %.1f/op; want pooled < unpooled",
				tc.name, pooled, unpooled)
		}
		// sync.Pool drops items at random under the race detector, so the
		// zero-steady-state bound only holds in normal builds.
		if !raceEnabled && pooled > 1 {
			t.Errorf("%s: pooled encode allocates %.1f/op; want ≤1", tc.name, pooled)
		}
	}
}
