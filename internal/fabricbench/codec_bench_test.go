package fabricbench

import (
	"testing"

	"resilientdb/internal/types"
)

// BenchmarkCodec runs the shared wire-codec micro-benchmark matrix (see
// codec.go) — pooled vs unpooled encoding and decoding for the paper-sized
// message shapes. Run with -benchmem; cmd/fabricbench records the same cases
// into BENCH_PR2.json.
func BenchmarkCodec(b *testing.B) {
	for _, c := range CodecCases() {
		b.Run(c.Name, c.Fn)
	}
}

// TestPooledEncodeAllocatesLess pins the point of the encoder pool: encoding
// through GetEncoder/Release allocates strictly less than NewEncoder-backed
// EncodeMessage for every hot-path message shape.
func TestPooledEncodeAllocatesLess(t *testing.T) {
	for _, tc := range []struct {
		name string
		msg  types.Message
	}{
		{"preprepare", SamplePrePrepare()},
		{"globalshare", SampleGlobalShare()},
		{"reply", SampleReply()},
	} {
		// Warm the pool so the steady state is measured.
		EncodePooled(tc.msg)
		pooled := testing.AllocsPerRun(200, func() { EncodePooled(tc.msg) })
		unpooled := testing.AllocsPerRun(200, func() { EncodeUnpooled(tc.msg) })
		if pooled >= unpooled {
			t.Errorf("%s: pooled encode allocates %.1f/op, unpooled %.1f/op; want pooled < unpooled",
				tc.name, pooled, unpooled)
		}
		// sync.Pool drops items at random under the race detector, so the
		// zero-steady-state bound only holds in normal builds.
		if !raceEnabled && pooled > 1 {
			t.Errorf("%s: pooled encode allocates %.1f/op; want ≤1", tc.name, pooled)
		}
	}
}
