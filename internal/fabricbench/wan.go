// This file holds the WAN harness: every replica and every client gets its
// own real TCP transport (authenticated framing included, exactly as a
// production deployment runs), and a transport.Faulty wrapper shapes one-way
// latency per region pair from a config.Profile — Table 1's Google Cloud
// matrix by default. The harness measures what the paper's figures report for
// a geo-deployment: per-region client-observed commit latency, the injected
// cross-cluster RTT matrix that certificate sharing pays, and
// committed-transaction throughput as a function of uniformly injected RTT.

package fabricbench

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/crypto"
	"resilientdb/internal/fabric"
	"resilientdb/internal/metrics"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
)

// WANConfig parameterizes one WAN benchmark run.
type WANConfig struct {
	// Clusters is z (each cluster is pinned to one profile region).
	Clusters int
	// Replicas is n per cluster.
	Replicas int
	// BatchSize is transactions per submitted batch.
	BatchSize int
	// Duration is the measured window per run.
	Duration time.Duration
	// Warmup runs unmeasured traffic first, letting connections dial and
	// pipelines fill.
	Warmup time.Duration
	// Profile shapes per-region-pair latency; nil selects the Table 1
	// Google Cloud profile for z regions.
	Profile *config.Profile
	// SweepRTT, when non-empty, additionally measures throughput under a
	// uniform all-pairs RTT for each listed value (the throughput-vs-RTT
	// curve).
	SweepRTT []time.Duration
	// Seed drives the fault injectors (latency only here, but kept
	// deterministic).
	Seed int64
}

// RegionResult is one region's client-observed outcome.
type RegionResult struct {
	// Region is the profile's name for this cluster's region.
	Region string `json:"region"`
	// Batches is how many batches this region's client committed.
	Batches int `json:"batches"`
	// Throughput is committed transactions per second.
	Throughput float64 `json:"txn_per_sec"`
	// LatencyAvgMS / LatencyP50MS / LatencyP95MS summarize the client's
	// commit latency (submit to f+1 matching confirmations) in
	// milliseconds.
	LatencyAvgMS float64 `json:"latency_avg_ms"`
	// LatencyP50MS is the median commit latency.
	LatencyP50MS float64 `json:"latency_p50_ms"`
	// LatencyP95MS is the 95th-percentile commit latency.
	LatencyP95MS float64 `json:"latency_p95_ms"`
}

// SweepPoint is one uniform-RTT throughput measurement.
type SweepPoint struct {
	// RTTMS is the injected all-pairs round-trip time in milliseconds.
	RTTMS float64 `json:"rtt_ms"`
	// Throughput is committed transactions per second at that RTT.
	Throughput float64 `json:"txn_per_sec"`
	// Batches is the total committed batches across regions.
	Batches int `json:"batches"`
}

// WANReport is the benchmark's JSON output (BENCH_WAN.json).
type WANReport struct {
	// Clusters / Replicas / BatchSize echo the run shape.
	Clusters int `json:"clusters"`
	// Replicas is n per cluster.
	Replicas int `json:"replicas"`
	// BatchSize is transactions per batch.
	BatchSize int `json:"batch_size"`
	// GOMAXPROCS records the host parallelism the run had (latency numbers
	// from a single-core host carry scheduling noise on top of the injected
	// WAN delays).
	GOMAXPROCS int `json:"gomaxprocs"`
	// DurationSec is the measured window length.
	DurationSec float64 `json:"duration_sec"`
	// Regions holds the per-region commit results under the shaped profile.
	Regions []RegionResult `json:"regions"`
	// CrossShareRTTMS[a][b] is the injected RTT between regions a and b in
	// milliseconds — the floor any cross-cluster certificate share pays.
	CrossShareRTTMS [][]float64 `json:"cross_share_rtt_ms"`
	// Sweep holds the throughput-vs-uniform-RTT curve (empty without
	// SweepRTT).
	Sweep []SweepPoint `json:"sweep,omitempty"`
	// Drops aggregates the transports' loss counters over the profiled run.
	Drops metrics.DropStats `json:"drops"`
}

// wanDeployment is one live harness: per-replica fabrics over their own
// shaped TCP transports, plus one pure-client fabric per cluster.
type wanDeployment struct {
	topo    config.Topology
	fabrics []*fabric.Fabric
	clients []*fabric.Client
	shapers []*transport.Faulty
}

// close tears the whole deployment down.
func (d *wanDeployment) close() {
	for _, c := range d.clients {
		c.Close()
	}
	for _, f := range d.fabrics {
		f.Stop()
	}
}

// drops sums loss counters across every process's transport.
func (d *wanDeployment) drops() metrics.DropStats {
	var out metrics.DropStats
	for _, f := range d.fabrics {
		out.Add(f.Stats())
	}
	return out
}

// openWAN builds the deployment: z×n replica "processes" and z client
// "processes", each with its own authenticated TCP listener on loopback,
// every transport wrapped in a Faulty injecting profile.OneWay latency per
// region pair. In-process it faithfully reproduces the multi-process wiring
// (one transport per process, real sockets, MAC-authenticated frames); only
// machine placement is emulated.
func openWAN(cfg WANConfig, profile *config.Profile) (*wanDeployment, error) {
	topo := config.NewTopology(cfg.Clusters, cfg.Replicas)
	region := func(id types.NodeID) int {
		if id.IsClient() {
			return int(id-types.ClientIDBase) % cfg.Clusters
		}
		return int(topo.ClusterOf(id))
	}
	delay := func(from, to types.NodeID) time.Duration {
		return profile.OneWay(region(from), region(to))
	}

	// Address book: filled after every listener is bound, read only once
	// traffic flows (the fabrics are opened after the book is complete).
	book := map[types.NodeID]string{}
	lookup := func(id types.NodeID) string { return book[id] }

	d := &wanDeployment{topo: topo}
	total := topo.TotalReplicas()
	tcps := make([]*transport.TCP, total+cfg.Clusters)
	ok := false
	defer func() {
		if !ok {
			d.close()
			for _, tr := range tcps {
				if tr != nil {
					tr.Close()
				}
			}
		}
	}()
	for i := range tcps {
		tcp, err := transport.NewTCP("127.0.0.1:0", lookup)
		if err != nil {
			return nil, err
		}
		tcp.Auth = crypto.NewFrameMAC(crypto.Real)
		tcps[i] = tcp
		if i < total {
			book[types.NodeID(i)] = tcp.Addr()
		} else {
			book[config.ClientID(i-total)] = tcp.Addr()
		}
	}

	fabCfg := func(tr transport.Transport, local []types.NodeID) fabric.Config {
		return fabric.Config{
			Topo:          topo,
			BatchSize:     cfg.BatchSize,
			LocalTimeout:  2 * time.Second,
			RemoteTimeout: 3 * time.Second,
			Transport:     tr,
			Local:         local,
			Clients:       cfg.Clusters,
		}
	}
	for i := 0; i < total; i++ {
		shaped := transport.NewFaulty(tcps[i], cfg.Seed+int64(i))
		shaped.SetDelay(delay)
		d.shapers = append(d.shapers, shaped)
		tcps[i] = nil // owned by the fabric now
		f, err := fabric.Open(fabCfg(shaped, []types.NodeID{types.NodeID(i)}))
		if err != nil {
			return nil, fmt.Errorf("fabricbench: replica %d: %w", i, err)
		}
		d.fabrics = append(d.fabrics, f)
	}
	for c := 0; c < cfg.Clusters; c++ {
		shaped := transport.NewFaulty(tcps[total+c], cfg.Seed+int64(total+c))
		shaped.SetDelay(delay)
		d.shapers = append(d.shapers, shaped)
		tcps[total+c] = nil
		f, err := fabric.Open(fabCfg(shaped, []types.NodeID{}))
		if err != nil {
			return nil, fmt.Errorf("fabricbench: client %d: %w", c, err)
		}
		d.fabrics = append(d.fabrics, f)
		d.clients = append(d.clients, f.NewClient(c))
	}
	ok = true
	return d, nil
}

// drive loads every region's client for the window and returns per-region
// committed batch counts and latency samples.
func (d *wanDeployment) drive(batchSize int, warmup, window time.Duration) ([][]time.Duration, []int) {
	z := d.topo.Clusters
	lats := make([][]time.Duration, z)
	batches := make([]int, z)
	var wg sync.WaitGroup
	for c := 0; c < z; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := d.clients[c]
			key := uint64(c) << 32
			submit := func() bool {
				txns := make([]types.Transaction, batchSize)
				for j := range txns {
					key++
					txns[j] = types.Transaction{Key: key, Value: key}
				}
				start := time.Now()
				if err := cl.Submit(txns, 30*time.Second); err != nil {
					return false
				}
				lats[c] = append(lats[c], time.Since(start))
				return true
			}
			for until := time.Now().Add(warmup); time.Now().Before(until); {
				submit()
			}
			lats[c] = lats[c][:0] // warmup samples discarded
			measured := 0
			for until := time.Now().Add(window); time.Now().Before(until); {
				if submit() {
					measured++
				}
			}
			batches[c] = measured
		}(c)
	}
	wg.Wait()
	return lats, batches
}

// percentile returns the p-th percentile of sorted samples (0 < p ≤ 100).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p/100*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// ms converts to float milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// RunWAN executes the benchmark: one profiled run (per-region latency), then
// one short throughput run per SweepRTT value. Defaults: 2×4 topology, batch
// 10, 3 s window, Table 1 profile.
func RunWAN(cfg WANConfig) (*WANReport, error) {
	if cfg.Clusters == 0 {
		cfg.Clusters = 2
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 4
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 10
	}
	if cfg.Duration == 0 {
		cfg.Duration = 3 * time.Second
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 500 * time.Millisecond
	}
	profile := cfg.Profile
	if profile == nil {
		profile = config.GoogleCloudProfile(cfg.Clusters)
	}

	report := &WANReport{
		Clusters: cfg.Clusters, Replicas: cfg.Replicas, BatchSize: cfg.BatchSize,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		DurationSec: cfg.Duration.Seconds(),
	}
	report.CrossShareRTTMS = make([][]float64, cfg.Clusters)
	for a := 0; a < cfg.Clusters; a++ {
		report.CrossShareRTTMS[a] = make([]float64, cfg.Clusters)
		for b := 0; b < cfg.Clusters; b++ {
			report.CrossShareRTTMS[a][b] = ms(profile.RTT[a][b])
		}
	}

	// Profiled run: Table 1 (or caller-supplied) shaping.
	d, err := openWAN(cfg, profile)
	if err != nil {
		return nil, err
	}
	lats, batches := d.drive(cfg.BatchSize, cfg.Warmup, cfg.Duration)
	report.Drops = d.drops()
	d.close()
	for c := 0; c < cfg.Clusters; c++ {
		samples := lats[c]
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		var sum time.Duration
		for _, s := range samples {
			sum += s
		}
		res := RegionResult{
			Region:     profile.Names[c],
			Batches:    batches[c],
			Throughput: float64(batches[c]*cfg.BatchSize) / cfg.Duration.Seconds(),
		}
		if len(samples) > 0 {
			res.LatencyAvgMS = ms(sum / time.Duration(len(samples)))
			res.LatencyP50MS = ms(percentile(samples, 50))
			res.LatencyP95MS = ms(percentile(samples, 95))
		}
		report.Regions = append(report.Regions, res)
	}

	// Throughput-vs-RTT sweep: uniform shaping, one fresh deployment per
	// point so no state carries over.
	for _, rtt := range cfg.SweepRTT {
		uni := config.UniformProfile(cfg.Clusters, rtt, 1000)
		d, err := openWAN(cfg, uni)
		if err != nil {
			return nil, err
		}
		_, counts := d.drive(cfg.BatchSize, cfg.Warmup, cfg.Duration)
		d.close()
		total := 0
		for _, b := range counts {
			total += b
		}
		report.Sweep = append(report.Sweep, SweepPoint{
			RTTMS:      ms(rtt),
			Throughput: float64(total*cfg.BatchSize) / cfg.Duration.Seconds(),
			Batches:    total,
		})
	}
	return report, nil
}
