//go:build !race

package fabricbench

// raceEnabled reports whether the race detector is active. sync.Pool
// deliberately drops items at random under -race, so allocation-count
// assertions that depend on pool hits are gated on this.
const raceEnabled = false
