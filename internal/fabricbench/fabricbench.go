// Package fabricbench is the macro-benchmark harness for the real-time
// fabric: it stands up a deployment with Real cryptography (over the
// in-process Mem transport or real TCP loopback sockets), saturates every
// cluster's primary with client transactions, and measures committed-txn
// throughput at a backup replica — the number the paper's evaluation and the
// ROADMAP's perf trajectory track. Scenarios toggle the parallel verify pool
// against the serial baseline so each run quantifies what moving
// cryptography off the consensus thread buys on the current hardware.
package fabricbench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/fabric"
	"resilientdb/internal/metrics"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
)

// Scenario is one macro-benchmark configuration.
type Scenario struct {
	// Clusters (z) and PerCluster (n) shape the deployment.
	Clusters   int
	PerCluster int
	// BatchSize is transactions per consensus batch (default 100).
	BatchSize int
	// VerifyWorkers configures the verify pool: negative is the serial
	// baseline (all crypto on the worker), 0 selects GOMAXPROCS.
	VerifyWorkers int
	// TCP routes every message over real loopback sockets (one transport
	// per replica, as in a multi-process deployment) instead of the
	// in-process Mem transport.
	TCP bool
	// ClientIdentities, when positive, replaces the primary-side feeders
	// with that many closed-loop networked clients (fabric.Client): each
	// signs its own requests, waits for f+1 replies, and retries on
	// timeout, so the load crosses the full admission path — signature
	// verification, mempool dedup, replay answering — under a large
	// identity population. Mem transport only.
	ClientIdentities int
	// Warmup runs load without measuring (default 500ms); Duration is the
	// measured window (default 2s).
	Warmup   time.Duration
	Duration time.Duration
}

// Name returns a stable scenario label, e.g. "tcp/z2n4/pool".
func (s Scenario) Name() string {
	tr, mode := "mem", "pool"
	if s.TCP {
		tr = "tcp"
	}
	if s.VerifyWorkers < 0 {
		mode = "serial"
	}
	if s.ClientIdentities > 0 {
		return fmt.Sprintf("%s/z%dn%d/%s/c%d", tr, s.Clusters, s.PerCluster, mode, s.ClientIdentities)
	}
	return fmt.Sprintf("%s/z%dn%d/%s", tr, s.Clusters, s.PerCluster, mode)
}

// Result is one scenario's measurement.
type Result struct {
	Name          string            `json:"name"`
	Transport     string            `json:"transport"`
	Clusters      int               `json:"clusters"`
	PerCluster    int               `json:"per_cluster"`
	BatchSize     int               `json:"batch_size"`
	VerifyWorkers int               `json:"verify_workers"`
	Seconds       float64           `json:"seconds"`
	CommittedTxns uint64            `json:"committed_txns"`
	TxnPerSec     float64           `json:"txn_per_sec"`
	Drops         metrics.DropStats `json:"drops"`
	// Clients is the number of distinct closed-loop client identities
	// driving the run (0: primary-side feeders that bypass admission).
	Clients int `json:"clients,omitempty"`
	// MaxMempoolLen is the largest per-replica pending-request pool
	// sampled during the measured window — the bounded-memory evidence for
	// large identity populations (the cap is mempool.DefaultCapacity).
	MaxMempoolLen int `json:"max_mempool_len"`
}

// Run executes one scenario and reports committed-transaction throughput
// observed at a backup replica of cluster 0 (which executes every cluster's
// batches, so the number is whole-system commit throughput as seen by one
// node).
func Run(s Scenario) Result {
	if s.BatchSize == 0 {
		s.BatchSize = 100
	}
	if s.Warmup == 0 {
		s.Warmup = 500 * time.Millisecond
	}
	if s.Duration == 0 {
		s.Duration = 2 * time.Second
	}
	if s.ClientIdentities > 0 && s.TCP {
		panic("fabricbench: client-identity scenarios run on the Mem transport only")
	}
	topo := config.NewTopology(s.Clusters, s.PerCluster)

	mkCfg := func() fabric.Config {
		return fabric.Config{
			Topo:          topo,
			BatchSize:     s.BatchSize,
			Records:       4096,
			Clients:       s.ClientIdentities,
			VerifyWorkers: s.VerifyWorkers,
			// Generous timeouts: the benchmark measures steady-state commit
			// throughput, and on an oversubscribed host the slow first rounds
			// (cold TCP dials, cold caches) must not trip view changes —
			// recovery thrash would measure the failure path instead.
			LocalTimeout:  20 * time.Second,
			RemoteTimeout: 30 * time.Second,
		}
	}

	var fabs []*fabric.Fabric
	byID := make(map[types.NodeID]*fabric.Fabric)
	if s.TCP {
		// One TCP transport and fabric slice per replica: every protocol
		// message crosses a real loopback socket through the wire codec.
		var mu sync.Mutex
		book := make(map[types.NodeID]string)
		lookup := func(id types.NodeID) string {
			mu.Lock()
			defer mu.Unlock()
			return book[id]
		}
		trs := make(map[types.NodeID]*transport.TCP)
		for _, id := range topo.AllReplicas() {
			tr, err := transport.NewTCP("127.0.0.1:0", lookup)
			if err != nil {
				panic("fabricbench: " + err.Error())
			}
			mu.Lock()
			book[id] = tr.Addr()
			mu.Unlock()
			trs[id] = tr
		}
		for _, id := range topo.AllReplicas() {
			cfg := mkCfg()
			cfg.Transport = trs[id]
			cfg.Local = []types.NodeID{id}
			f := fabric.New(cfg)
			fabs = append(fabs, f)
			byID[id] = f
		}
	} else {
		f := fabric.New(mkCfg())
		fabs = append(fabs, f)
		for _, id := range topo.AllReplicas() {
			byID[id] = f
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var clients []*fabric.Client
	if s.ClientIdentities > 0 {
		// Closed-loop networked clients: each identity signs, submits,
		// waits for f+1 replies, and retries on timeout. At saturation
		// timeouts are expected — the retries are the point: they exercise
		// mempool dedup and ledger re-replies under a 10k-identity
		// population while the pending pools must stay capacity-bounded.
		clients = make([]*fabric.Client, s.ClientIdentities)
		for i := range clients {
			clients[i] = fabs[0].NewClient(i)
		}
		for i, cl := range clients {
			wg.Add(1)
			go func(i int, cl *fabric.Client) {
				defer wg.Done()
				// Stagger first submissions across the warmup: a population
				// this size arrives as a stream, not as one synchronized
				// thundering herd that only measures mailbox overflow.
				select {
				case <-time.After(time.Duration(i) * s.Warmup / time.Duration(len(clients))):
				case <-stop:
					return
				}
				key := uint64(i) << 24
				buf := make([]types.Transaction, s.BatchSize)
				for {
					select {
					case <-stop:
						return
					default:
					}
					for j := range buf {
						buf[j] = types.Transaction{Key: key, Value: key}
						key++
					}
					// A patient timeout keeps the retry interval (timeout/10)
					// wide: at this population a tight retry loop would spend
					// every core verifying duplicate signatures instead of
					// committing (the drop counters still show plenty of
					// duplicates from the clients that do retry).
					_ = cl.Submit(buf, 2*time.Minute)
				}
			}(i, cl)
		}
	} else {
		// Feeders: keep every cluster's primary batching stage saturated.
		// SubmitTxns blocks on a full batching queue, which is exactly the
		// backpressure a saturating open-loop client exerts.
		for c := 0; c < s.Clusters; c++ {
			primary := topo.ReplicaID(c, 0)
			node := byID[primary].Node(primary)
			wg.Add(1)
			go func(c int, node *fabric.Node) {
				defer wg.Done()
				key := uint64(c) << 40
				buf := make([]types.Transaction, s.BatchSize)
				for {
					select {
					case <-stop:
						return
					default:
					}
					for i := range buf {
						buf[i] = types.Transaction{Key: key, Value: key}
						key++
					}
					node.SubmitTxns(buf)
				}
			}(c, node)
		}
	}

	// Sample the pending-request pools while measuring: the reported
	// maximum proves admission memory stays bounded however hard the load
	// pushes.
	maxPool := 0
	samplePools := func() {
		for _, id := range topo.AllReplicas() {
			if n := byID[id].Node(id).MempoolLen(); n > maxPool {
				maxPool = n
			}
		}
	}

	observer := byID[topo.ReplicaID(0, 1)].Replica(topo.ReplicaID(0, 1))
	time.Sleep(s.Warmup)
	t0 := time.Now()
	c0 := observer.ExecutedTxns()
	for end := time.Now().Add(s.Duration); time.Now().Before(end); {
		time.Sleep(100 * time.Millisecond)
		samplePools()
	}
	committed := observer.ExecutedTxns() - c0
	elapsed := time.Since(t0)

	var drops metrics.DropStats
	for _, f := range fabs {
		drops.Add(f.Stats())
	}
	close(stop)
	for _, cl := range clients {
		cl.Close() // unblocks any Submit in flight
	}
	for _, f := range fabs {
		f.Stop()
	}
	wg.Wait()

	tr := "mem"
	if s.TCP {
		tr = "tcp"
	}
	return Result{
		Name:          s.Name(),
		Transport:     tr,
		Clusters:      s.Clusters,
		PerCluster:    s.PerCluster,
		BatchSize:     s.BatchSize,
		VerifyWorkers: s.VerifyWorkers,
		Seconds:       elapsed.Seconds(),
		CommittedTxns: committed,
		TxnPerSec:     float64(committed) / elapsed.Seconds(),
		Drops:         drops,
		Clients:       s.ClientIdentities,
		MaxMempoolLen: maxPool,
	}
}

// StandardScenarios returns the benchmark matrix: Mem and TCP loopback,
// z=2/n=4 and z=4/n=7, serial baseline vs verify pool, Real cryptography
// (the PR-2 matrix), plus the PR-6 admission-saturation shape — 10,000
// closed-loop client identities over Mem, proving signature-verified
// admission sustains throughput with capacity-bounded pools. The pool size
// is explicit (GOMAXPROCS, floor 2) so the pooled path is actually measured
// even on hosts where the fabric's auto default would disable it.
func StandardScenarios(warmup, duration time.Duration) []Scenario {
	pool := runtime.GOMAXPROCS(0)
	if pool < 2 {
		pool = 2
	}
	var out []Scenario
	for _, tcp := range []bool{false, true} {
		for _, topo := range [][2]int{{2, 4}, {4, 7}} {
			for _, workers := range []int{-1, pool} {
				out = append(out, Scenario{
					Clusters:      topo[0],
					PerCluster:    topo[1],
					VerifyWorkers: workers,
					TCP:           tcp,
					Warmup:        warmup,
					Duration:      duration,
				})
			}
		}
	}
	out = append(out, Scenario{
		Clusters:         2,
		PerCluster:       4,
		BatchSize:        10,
		VerifyWorkers:    pool,
		ClientIdentities: 10000,
		Warmup:           warmup,
		Duration:         duration,
	})
	return out
}
