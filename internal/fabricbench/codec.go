package fabricbench

import (
	"testing"

	"resilientdb/internal/core"
	"resilientdb/internal/pbft"
	"resilientdb/internal/proto"
	"resilientdb/internal/types"
)

// Wire-codec micro-benchmark fixtures and cases, sized like the paper's
// batch-100 messages. They live in the non-test package so the test suite
// (codec_bench_test.go) and the JSON report writer (cmd/fabricbench) measure
// the exact same workload — two drifting copies would let the committed
// numbers and the asserted contract diverge.

// SampleBatch builds an n-transaction client batch.
func SampleBatch(n int) types.Batch {
	txns := make([]types.Transaction, n)
	for i := range txns {
		txns[i] = types.Transaction{Key: uint64(i), Value: uint64(i * 7)}
	}
	return types.Batch{Client: types.ClientIDBase + 3, Seq: 42, Txns: txns}
}

// SamplePrePrepare builds a batch-100 proposal (the paper's 5.4 kB message).
func SamplePrePrepare() *pbft.PrePrepare {
	b := SampleBatch(100)
	return &pbft.PrePrepare{View: 2, Seq: 77, Digest: b.Digest(), Batch: b}
}

// SampleGlobalShare builds a certificate share with a batch-100 request and
// a 3-signer commit certificate (the paper's 6.4 kB message).
func SampleGlobalShare() *core.GlobalShare {
	b := SampleBatch(100)
	sig := make([]byte, 64)
	for i := range sig {
		sig[i] = byte(i)
	}
	cert := &pbft.Certificate{
		View: 1, Seq: 9, Digest: b.Digest(), Batch: b,
		Signers: []types.NodeID{0, 1, 2},
		Sigs:    [][]byte{sig, sig, sig},
	}
	return &core.GlobalShare{Cluster: 1, Round: 9, Cert: cert}
}

// SampleReply builds a batch-100 client reply.
func SampleReply() *proto.Reply {
	return &proto.Reply{Client: types.ClientIDBase, ClientSeq: 8, Replica: 3,
		TxnCount: 100, Result: types.Hash([]byte("result"))}
}

// EncodeUnpooled wire-encodes m through a fresh encoder (types.NewEncoder),
// returning the encoded length.
func EncodeUnpooled(m types.Message) int {
	buf, err := types.EncodeMessage(m)
	if err != nil {
		panic(err)
	}
	return len(buf)
}

// EncodePooled wire-encodes m through the encoder pool
// (types.GetEncoder/Release), returning the encoded length.
func EncodePooled(m types.Message) int {
	enc := types.GetEncoder()
	if err := types.AppendMessage(enc, m); err != nil {
		enc.Release()
		panic(err)
	}
	n := len(enc.Bytes())
	enc.Release()
	return n
}

// CodecCase is one named codec micro-benchmark.
type CodecCase struct {
	Name string
	Fn   func(*testing.B)
}

// CodecCases returns the full micro-benchmark matrix: pooled and unpooled
// encoding plus decoding, for each hot-path message shape.
func CodecCases() []CodecCase {
	shapes := []struct {
		name string
		msg  types.Message
	}{
		{"preprepare", SamplePrePrepare()},
		{"globalshare", SampleGlobalShare()},
		{"reply", SampleReply()},
	}
	var out []CodecCase
	for _, s := range shapes {
		s := s
		out = append(out,
			CodecCase{"encode/" + s.name + "/unpooled", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					EncodeUnpooled(s.msg)
				}
			}},
			CodecCase{"encode/" + s.name + "/pooled", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					EncodePooled(s.msg)
				}
			}},
			CodecCase{"decode/" + s.name, func(b *testing.B) {
				buf, err := types.EncodeMessage(s.msg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := types.DecodeMessage(buf); err != nil {
						b.Fatal(err)
					}
				}
			}},
		)
	}
	return out
}
