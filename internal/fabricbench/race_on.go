//go:build race

package fabricbench

// raceEnabled reports whether the race detector is active (see race_off.go).
const raceEnabled = true
