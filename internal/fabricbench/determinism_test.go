package fabricbench

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/fabric"
	"resilientdb/internal/types"
)

// TestVerifyPoolDeterminism runs the same seeded workload under three verify
// configurations — pool disabled (serial inline verification), pool of one,
// and a wide pool — and asserts that the concurrent verification stage never
// perturbs the deterministic state machine: within every configuration all
// replicas converge to byte-identical verified ledger heads and store
// digests, and across configurations the executed table contents are exactly
// the submitted workload. (Ledger heads are not comparable *across*
// configurations: batch packing in a real-time fabric depends on timing, so
// only the executed data — not the block boundaries — is reproducible.)
func TestVerifyPoolDeterminism(t *testing.T) {
	const (
		z, n            = 2, 4
		clients         = 2
		batchesPer      = 6
		txnsPerBatch    = 4
		totalPerClient  = batchesPer * txnsPerBatch
		submitTimeout   = 30 * time.Second
		convergeTimeout = 30 * time.Second
	)
	workloadKey := func(client, i int) uint64 { return uint64(client)<<20 | uint64(i) | 1<<30 }
	workloadVal := func(client, i int) uint64 { return uint64(client*1_000_000 + i) }

	for _, workers := range []int{-1, 1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			topo := config.NewTopology(z, n)
			f := fabric.New(fabric.Config{
				Topo:          topo,
				BatchSize:     txnsPerBatch,
				Records:       256,
				VerifyWorkers: workers,
				LocalTimeout:  2 * time.Second,
				RemoteTimeout: 3 * time.Second,
			})
			defer f.Stop()

			var wg sync.WaitGroup
			for ci := 0; ci < clients; ci++ {
				ci := ci
				wg.Add(1)
				go func() {
					defer wg.Done()
					cl := f.NewClient(ci)
					defer cl.Close()
					for b := 0; b < batchesPer; b++ {
						txns := make([]types.Transaction, txnsPerBatch)
						for i := range txns {
							idx := b*txnsPerBatch + i
							txns[i] = types.Transaction{Key: workloadKey(ci, idx), Value: workloadVal(ci, idx)}
						}
						if err := cl.Submit(txns, submitTimeout); err != nil {
							t.Errorf("client %d batch %d: %v", ci, b, err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			// Wait until every replica executed the full workload and all
			// ledger heads agree (stragglers catch up via recovery).
			ids := topo.AllReplicas()
			deadline := time.Now().Add(convergeTimeout)
			for {
				converged := true
				ref := f.Replica(ids[0])
				for _, id := range ids {
					r := f.Replica(id)
					if r.ExecutedTxns() < clients*totalPerClient ||
						r.Ledger().Head() != ref.Ledger().Head() {
						converged = false
						break
					}
				}
				if converged {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("replicas did not converge: txns=%d head0=%v",
						f.Replica(ids[0]).ExecutedTxns(), f.Replica(ids[0]).Ledger().Head().Short())
				}
				time.Sleep(20 * time.Millisecond)
			}
			f.Stop()

			// Within this configuration: identical verified ledgers and
			// execution digests everywhere.
			ref := f.Replica(ids[0])
			if err := ref.Ledger().Verify(); err != nil {
				t.Fatalf("ledger verify: %v", err)
			}
			for _, id := range ids {
				r := f.Replica(id)
				if err := r.Ledger().Verify(); err != nil {
					t.Errorf("%v ledger verify: %v", id, err)
				}
				if r.Ledger().Head() != ref.Ledger().Head() {
					t.Errorf("%v ledger head differs", id)
				}
				if r.Store().Digest() != ref.Store().Digest() {
					t.Errorf("%v store digest differs", id)
				}
			}

			// Across configurations: the executed table contents are exactly
			// the submitted workload.
			for ci := 0; ci < clients; ci++ {
				for i := 0; i < totalPerClient; i++ {
					got, ok := ref.Store().Get(workloadKey(ci, i))
					if !ok || got != workloadVal(ci, i) {
						t.Fatalf("workers=%d: key(%d,%d) = %d,%v; want %d",
							workers, ci, i, got, ok, workloadVal(ci, i))
					}
				}
			}
		})
	}
}
