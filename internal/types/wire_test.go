package types_test

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"resilientdb/internal/types"

	// Imported for their message registrations: every package that defines a
	// types.Message registers its wire codec in an init function.
	_ "resilientdb/internal/bench"
	_ "resilientdb/internal/core"
	_ "resilientdb/internal/hotstuff"
	_ "resilientdb/internal/pbft"
	_ "resilientdb/internal/proto"
	_ "resilientdb/internal/snapshot"
	_ "resilientdb/internal/steward"
	_ "resilientdb/internal/zyzzyva"
)

// TestRegistryRoundTrip drives the wire codec from the registry itself:
// every registered message type must provide samples, and every sample must
// survive EncodeMessage → DecodeMessage → EncodeMessage byte-identically.
func TestRegistryRoundTrip(t *testing.T) {
	tags := types.RegisteredTags()
	if len(tags) < 25 {
		t.Fatalf("suspiciously few registered message types: %d", len(tags))
	}
	for _, tag := range tags {
		samples := types.SampleMessages(tag)
		if len(samples) == 0 {
			t.Errorf("%s: no samples registered", tag)
			continue
		}
		for i, m := range samples {
			if m.MsgType() != tag {
				t.Errorf("%s sample %d: MsgType() = %q", tag, i, m.MsgType())
				continue
			}
			first, err := types.EncodeMessage(m)
			if err != nil {
				t.Errorf("%s sample %d: encode: %v", tag, i, err)
				continue
			}
			decoded, err := types.DecodeMessage(first)
			if err != nil {
				t.Errorf("%s sample %d: decode: %v", tag, i, err)
				continue
			}
			if decoded.MsgType() != tag {
				t.Errorf("%s sample %d: decoded as %q", tag, i, decoded.MsgType())
				continue
			}
			second, err := types.EncodeMessage(decoded)
			if err != nil {
				t.Errorf("%s sample %d: re-encode: %v", tag, i, err)
				continue
			}
			if !bytes.Equal(first, second) {
				t.Errorf("%s sample %d: round-trip not byte-identical\n first: %x\nsecond: %x",
					tag, i, first, second)
			}
		}
	}
}

// TestDecodeRejectsMalformed spot-checks the decoder's error paths.
func TestDecodeRejectsMalformed(t *testing.T) {
	if _, err := types.DecodeMessage(nil); err == nil {
		t.Error("empty input decoded")
	}
	if _, err := types.DecodeMessage([]byte{0, 0, 0, 5, 'b', 'o', 'g', 'u', 's'}); err == nil {
		t.Error("unknown tag decoded")
	}
	// A valid message with trailing garbage must be rejected.
	for _, tag := range types.RegisteredTags() {
		m := types.SampleMessages(tag)[0]
		enc, err := types.EncodeMessage(m)
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		if _, err := types.DecodeMessage(append(enc, 0xff)); err == nil {
			t.Errorf("%s: trailing byte accepted", tag)
		}
		// Every truncation must error, never panic.
		for cut := 0; cut < len(enc); cut++ {
			if _, err := types.DecodeMessage(enc[:cut]); err == nil && cut < len(enc) {
				t.Errorf("%s: truncation to %d bytes accepted", tag, cut)
				break
			}
		}
	}
}

// TestEveryMessageTypeRegistered scans the repository source for MsgType
// methods — the marker of a types.Message implementation — and fails if any
// declared message tag lacks a registered wire codec. Adding a new message
// type without codec coverage breaks this test.
func TestEveryMessageTypeRegistered(t *testing.T) {
	registered := make(map[string]bool)
	for _, tag := range types.RegisteredTags() {
		registered[tag] = true
	}
	declared := declaredMessageTags(t, filepath.Join("..", ".."))
	if len(declared) == 0 {
		t.Fatal("source scan found no MsgType declarations")
	}
	for tag, pos := range declared {
		if !registered[tag] {
			t.Errorf("message type %q (%s) has no registered wire codec — add an "+
				"EncodeBody method and a types.RegisterMessage call in that package", tag, pos)
		}
	}
	for tag := range registered {
		if _, ok := declared[tag]; !ok {
			t.Errorf("registered tag %q has no MsgType declaration in the source tree", tag)
		}
	}
}

// declaredMessageTags parses every non-test .go file under root and returns
// each MsgType method's literal tag, keyed to its source position.
func declaredMessageTags(t *testing.T, root string) map[string]string {
	t.Helper()
	tags := make(map[string]string)
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != "MsgType" || fn.Recv == nil {
				continue
			}
			tag, ok := msgTypeLiteral(fn)
			if !ok {
				t.Errorf("%s: MsgType must return a single string literal", fset.Position(fn.Pos()))
				continue
			}
			tags[tag] = fset.Position(fn.Pos()).String()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("source scan: %v", err)
	}
	return tags
}

// msgTypeLiteral extracts the string literal from `return "tag"`.
func msgTypeLiteral(fn *ast.FuncDecl) (string, bool) {
	if fn.Body == nil || len(fn.Body.List) != 1 {
		return "", false
	}
	ret, ok := fn.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return "", false
	}
	lit, ok := ret.Results[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	tag, err := strconv.Unquote(lit.Value)
	return tag, err == nil
}

// FuzzDecodeMessage asserts DecodeMessage never panics on arbitrary input,
// and that anything it accepts re-encodes to a stable canonical form (the
// input itself may be non-canonical, e.g. a Bool byte of 2).
func FuzzDecodeMessage(f *testing.F) {
	for _, tag := range types.RegisteredTags() {
		for _, m := range types.SampleMessages(tag) {
			enc, err := types.EncodeMessage(m)
			if err != nil {
				f.Fatalf("%s: %v", tag, err)
			}
			f.Add(enc)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := types.DecodeMessage(data)
		if err != nil {
			return
		}
		enc, err := types.EncodeMessage(m)
		if err != nil {
			t.Fatalf("decoded %s does not re-encode: %v", m.MsgType(), err)
		}
		again, err := types.DecodeMessage(enc)
		if err != nil {
			t.Fatalf("canonical re-encoding of %s does not decode: %v", m.MsgType(), err)
		}
		enc2, err := types.EncodeMessage(again)
		if err != nil {
			t.Fatalf("%s: %v", again.MsgType(), err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("unstable canonical form for %s:\n first: %x\nsecond: %x",
				m.MsgType(), enc, enc2)
		}
	})
}
