// Package types defines the identifiers, transaction model, message
// interfaces, and canonical binary encoding shared by every protocol and
// substrate in this repository.
//
// All consensus protocols (GeoBFT, PBFT, Zyzzyva, HotStuff, Steward) exchange
// values implementing Message. Wire sizes are modelled explicitly (see
// WireSize) so the network simulator can charge realistic latency and
// bandwidth costs; the constants are calibrated to the message sizes reported
// in the ResilientDB paper (Section 4: 5.4 kB preprepare, 6.4 kB commit
// certificate, 1.5 kB client response, 250 B control messages at batch 100).
package types

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// NodeID identifies a node (replica or client) in the system. Replica
// identifiers are dense, starting at zero; client identifiers start at
// ClientIDBase so the two ranges never collide.
type NodeID int32

// NoNode is the sentinel "no such node" value.
const NoNode NodeID = -1

// ClientIDBase is the first NodeID used for clients.
const ClientIDBase NodeID = 1 << 20

// IsClient reports whether id addresses a client rather than a replica.
func (id NodeID) IsClient() bool { return id >= ClientIDBase }

func (id NodeID) String() string {
	if id == NoNode {
		return "node(none)"
	}
	if id.IsClient() {
		return fmt.Sprintf("client%d", int32(id-ClientIDBase))
	}
	return fmt.Sprintf("r%d", int32(id))
}

// ClusterID identifies a cluster (one geographic region's replica group).
type ClusterID int32

// Digest is a 32-byte cryptographic digest (SHA-256).
type Digest [32]byte

// ZeroDigest is the all-zero digest, used for no-op and absent payloads.
var ZeroDigest Digest

// IsZero reports whether d is the all-zero digest.
func (d Digest) IsZero() bool { return d == ZeroDigest }

// Short returns an 8-hex-character prefix of the digest for logs.
func (d Digest) Short() string { return hex.EncodeToString(d[:4]) }

// Hash computes the SHA-256 digest of payload.
func Hash(payload []byte) Digest { return sha256.Sum256(payload) }

// Message is implemented by every protocol message. MsgType is a stable
// human-readable tag used in logs and metrics; WireSize is the modelled
// on-the-wire size in bytes used by the network simulator.
type Message interface {
	MsgType() string
	WireSize() int
}

// Wire size model, calibrated to the paper's reported sizes at batch 100.
const (
	// BytesPerTxn is the serialized size contributed by one transaction in a
	// request batch (5.4 kB preprepare / 100 txns ≈ 54 B).
	BytesPerTxn = 54
	// ControlBytes is the size of prepare/commit/vote style control messages.
	ControlBytes = 250
	// SigBytes is the modelled size of one digital signature entry inside a
	// certificate (the 6.4 kB certificate minus the 5.4 kB preprepare,
	// divided by the paper's seven commit messages ≈ 143 B).
	SigBytes = 143
	// ReplyBytesPerTxn is the per-transaction size of a client reply batch
	// (1.5 kB / 100 txns = 15 B).
	ReplyBytesPerTxn = 15
	// HeaderBytes is the fixed framing overhead of any message.
	HeaderBytes = 64
)

// Transaction is a single YCSB-style write operation against the replicated
// key-value table.
type Transaction struct {
	Key   uint64
	Value uint64
}

// Batch is a group of client transactions processed by consensus as a single
// request, as in the paper's request-batching design. Client is the
// submitting client, Seq the client-assigned batch sequence number.
type Batch struct {
	Client NodeID
	Seq    uint64
	Txns   []Transaction
	// NoOp marks a primary-proposed empty round (Section 2.5).
	NoOp bool

	// digest memoizes the canonical digest; hasDigest marks it valid. The
	// cache is written only while the batch is still private to a single
	// goroutine — at wire-decode time (DecodeBatch) or via an explicit
	// PrimeDigest before the batch is shared. Digest never memoizes lazily:
	// messages travel by pointer through the in-process transport, and a
	// lazy write would race between nodes' verify pools.
	digest    Digest
	hasDigest bool
}

// Encode appends the canonical binary form of b to enc.
func (b *Batch) Encode(enc *Encoder) {
	enc.I32(int32(b.Client))
	enc.U64(b.Seq)
	enc.Bool(b.NoOp)
	enc.U32(uint32(len(b.Txns)))
	for _, t := range b.Txns {
		enc.U64(t.Key)
		enc.U64(t.Value)
	}
}

// DecodeBatch reads a Batch previously written with Encode. The batch's
// canonical digest is computed directly over the consumed wire bytes (they
// are the canonical encoding) and cached, so the hot-path consumers —
// preprepare digest checks, certificate verification, ledger appends — never
// re-encode the batch just to hash it.
func DecodeBatch(dec *Decoder) Batch {
	var b Batch
	mark := dec.off
	b.Client = NodeID(dec.I32())
	b.Seq = dec.U64()
	b.NoOp = dec.Bool()
	if n := dec.Count(16); n > 0 {
		b.Txns = make([]Transaction, n)
		for i := range b.Txns {
			b.Txns[i].Key = dec.U64()
			b.Txns[i].Value = dec.U64()
		}
	}
	if dec.err == nil {
		b.digest = Hash(dec.buf[mark:dec.off])
		b.hasDigest = true
	}
	return b
}

// Digest returns the canonical digest of the batch contents: the cached
// decode-time digest when present, a fresh computation otherwise. It never
// writes the cache (see the field comment on Batch).
func (b *Batch) Digest() Digest {
	if b.hasDigest {
		return b.digest
	}
	return b.computeDigest()
}

// PrimeDigest computes and caches the batch digest. Call it exactly once,
// after the batch contents are final and before the batch (or a message
// embedding it) is shared with other goroutines.
func (b *Batch) PrimeDigest() {
	if !b.hasDigest {
		b.digest = b.computeDigest()
		b.hasDigest = true
	}
}

// RecomputedDigest hashes the batch's current contents, bypassing the cache.
// Integrity checks over data that may have been mutated after decoding — the
// ledger's tamper detection — must use it: the cached digest reflects the
// bytes as received, not the fields as they are now.
func (b *Batch) RecomputedDigest() Digest { return b.computeDigest() }

func (b *Batch) computeDigest() Digest {
	var enc Encoder
	b.Encode(&enc)
	return Hash(enc.Bytes())
}

// WireSize is the modelled serialized size of the batch.
func (b *Batch) WireSize() int { return HeaderBytes + BytesPerTxn*len(b.Txns) }

// Len returns the number of transactions in the batch.
func (b *Batch) Len() int { return len(b.Txns) }

// Key helper: deterministic uint64 → bytes for MAC/hash payloads.
func U64Bytes(v uint64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return buf[:]
}
