package types

import (
	"fmt"
	"sort"
)

// WireMessage is a Message with a canonical wire body. Any message that must
// cross a real network (package transport's TCP transport) implements it;
// EncodeBody appends the message body — everything except the type tag — to
// enc using the deterministic Encoder primitives.
type WireMessage interface {
	Message
	EncodeBody(enc *Encoder)
}

// wireEntry is one registered message type.
type wireEntry struct {
	// decode reads the body written by EncodeBody. It must never panic on
	// malformed input: allocation counts are bounded by Decoder.Remaining and
	// errors surface through Decoder.Err.
	decode func(dec *Decoder) Message
	// samples returns representative instances (including zero-ish and
	// fully-populated ones) used by the registry-driven round-trip tests.
	samples func() []Message
}

// wireRegistry maps a message's MsgType tag to its codec. It is populated by
// package init functions and read-only afterwards, so no locking is needed.
var wireRegistry = map[string]wireEntry{}

// RegisterMessage registers the wire codec for one message type under its
// MsgType tag. decode reads the body written by the type's EncodeBody;
// samples returns test instances for the registry-driven round-trip suite.
// Registration happens in package init functions; registering the same tag
// twice panics.
func RegisterMessage(tag string, decode func(dec *Decoder) Message, samples func() []Message) {
	if decode == nil || samples == nil {
		panic("types: RegisterMessage requires decode and samples for " + tag)
	}
	if _, dup := wireRegistry[tag]; dup {
		panic("types: duplicate message registration: " + tag)
	}
	wireRegistry[tag] = wireEntry{decode: decode, samples: samples}
}

// RegisteredTags returns the tags of every registered message type, sorted.
func RegisteredTags() []string {
	out := make([]string, 0, len(wireRegistry))
	for tag := range wireRegistry {
		out = append(out, tag)
	}
	sort.Strings(out)
	return out
}

// SampleMessages returns the registered test samples for tag (nil if
// unregistered).
func SampleMessages(tag string) []Message {
	if e, ok := wireRegistry[tag]; ok {
		return e.samples()
	}
	return nil
}

// AppendMessage appends the framed form of m — a length-prefixed type tag
// followed by the body — to enc. It fails if m's type is not registered or
// does not implement WireMessage.
func AppendMessage(enc *Encoder, m Message) error {
	wm, ok := m.(WireMessage)
	if !ok {
		return fmt.Errorf("types: %s does not implement WireMessage", m.MsgType())
	}
	tag := m.MsgType()
	if _, ok := wireRegistry[tag]; !ok {
		return fmt.Errorf("types: message type %q not registered", tag)
	}
	enc.String(tag)
	wm.EncodeBody(enc)
	return nil
}

// EncodeMessage returns the canonical wire encoding of m: its type tag
// followed by the body written by EncodeBody. (WireSize is deliberately not
// consulted for the capacity hint: it is a *model* of the paper's message
// sizes, not the serialized length, and some implementations dereference
// optional fields.)
func EncodeMessage(m Message) ([]byte, error) {
	enc := NewEncoder(256)
	if err := AppendMessage(enc, m); err != nil {
		return nil, err
	}
	return enc.Bytes(), nil
}

// DecodeMessage decodes one message previously encoded with EncodeMessage.
// The whole buffer must be consumed; trailing bytes, unknown tags and
// malformed bodies are errors, never panics.
func DecodeMessage(buf []byte) (Message, error) {
	dec := NewDecoder(buf)
	m, err := DecodeMessageFrom(dec)
	if err != nil {
		return nil, err
	}
	if dec.Remaining() != 0 {
		return nil, fmt.Errorf("types: %d trailing bytes after %s", dec.Remaining(), m.MsgType())
	}
	return m, nil
}

// DecodeMessageFrom decodes one tagged message from dec, leaving any
// following bytes unread (for streams carrying several messages per frame).
func DecodeMessageFrom(dec *Decoder) (Message, error) {
	tag := dec.String()
	if err := dec.Err(); err != nil {
		return nil, err
	}
	entry, ok := wireRegistry[tag]
	if !ok {
		return nil, fmt.Errorf("types: unknown message type %q", tag)
	}
	m := entry.decode(dec)
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("types: decoding %q: %w", tag, err)
	}
	return m, nil
}
