package types

import (
	"encoding/binary"
	"errors"
	"sync"
)

// Encoder builds a canonical, deterministic binary encoding. It is used for
// signing payloads, digests, and ledger hashing. All integers are big-endian
// and fixed-width so the encoding of a value is unique.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with capacity hint n.
func NewEncoder(n int) *Encoder { return &Encoder{buf: make([]byte, 0, n)} }

// encoderPool recycles encoders (and their grown buffers) across the wire
// hot path, where a fresh allocation per message would dominate the GC
// profile.
var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// maxPooledBuf bounds the buffer capacity retained by the pool; encoders that
// grew beyond it (oversized view-change or catch-up payloads) drop their
// buffer on Release so the pool holds only hot-path-sized buffers.
const maxPooledBuf = 1 << 20

// GetEncoder returns an empty pooled encoder. It is the zero-allocation
// variant of NewEncoder for hot paths: callers must hand the encoder back
// with Release once the bytes from Bytes have been fully consumed, and must
// not retain any slice derived from it afterwards (Bytes aliases the pooled
// buffer).
func GetEncoder() *Encoder { return encoderPool.Get().(*Encoder) }

// Release resets e and returns it to the pool. Neither e nor any slice
// obtained from e.Bytes may be used after Release.
func (e *Encoder) Release() {
	if cap(e.buf) > maxPooledBuf {
		e.buf = nil
	}
	e.Reset()
	encoderPool.Put(e)
}

// Reset discards the encoded bytes, retaining the buffer capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Bytes returns the encoded bytes. The slice aliases the encoder's buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a big-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// I32 appends a big-endian int32.
func (e *Encoder) I32(v int32) { e.U32(uint32(v)) }

// U64 appends a big-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// I64 appends a big-endian int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Digest appends a 32-byte digest.
func (e *Encoder) Digest(d Digest) { e.buf = append(e.buf, d[:]...) }

// Raw appends b verbatim, with no length prefix. Use it for fixed-size
// trailers whose length is known out of band (e.g. a frame authentication
// tag); variable-length data belongs in BytesN.
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// BytesN appends a length-prefixed byte slice.
func (e *Encoder) BytesN(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) { e.BytesN([]byte(s)) }

// ErrCodec is reported by Decoder when the input is malformed or truncated.
var ErrCodec = errors.New("types: malformed encoding")

// Decoder reads values written by Encoder. On underflow it records an error
// and returns zero values; callers check Err once at the end.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps buf for reading.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil || d.off+n > len(d.buf) {
		if d.err == nil {
			d.err = ErrCodec
		}
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// U32 reads a big-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// I32 reads a big-endian int32.
func (d *Decoder) I32() int32 { return int32(d.U32()) }

// U64 reads a big-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 reads a big-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Digest reads a 32-byte digest.
func (d *Decoder) Digest() Digest {
	var out Digest
	b := d.take(32)
	if b != nil {
		copy(out[:], b)
	}
	return out
}

// BytesN reads a length-prefixed byte slice.
func (d *Decoder) BytesN() []byte {
	n := int(d.U32())
	if d.err != nil || n < 0 || n > d.Remaining() {
		if d.err == nil {
			d.err = ErrCodec
		}
		return nil
	}
	out := make([]byte, n)
	copy(out, d.take(n))
	return out
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.BytesN()) }

// Count reads a u32 element count and validates it against the remaining
// input given a lower bound on the encoded size of one element, so malformed
// counts can never drive huge allocations. On a bad count it records an
// error and returns 0.
func (d *Decoder) Count(minElemSize int) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if minElemSize < 1 {
		minElemSize = 1
	}
	if n < 0 || n > d.Remaining()/minElemSize {
		d.err = ErrCodec
		return 0
	}
	return n
}

// NodeIDs appends a length-prefixed list of node identifiers.
func (e *Encoder) NodeIDs(ids []NodeID) {
	e.U32(uint32(len(ids)))
	for _, id := range ids {
		e.I32(int32(id))
	}
}

// NodeIDs reads a length-prefixed list of node identifiers.
func (d *Decoder) NodeIDs() []NodeID {
	n := d.Count(4)
	if n == 0 {
		return nil
	}
	out := make([]NodeID, n)
	for i := range out {
		out[i] = NodeID(d.I32())
	}
	return out
}

// SigList appends a length-prefixed list of byte strings (signature sets).
func (e *Encoder) SigList(sigs [][]byte) {
	e.U32(uint32(len(sigs)))
	for _, s := range sigs {
		e.BytesN(s)
	}
}

// SigList reads a length-prefixed list of byte strings.
func (d *Decoder) SigList() [][]byte {
	n := d.Count(4)
	if n == 0 {
		return nil
	}
	out := make([][]byte, n)
	for i := range out {
		out[i] = d.BytesN()
		if d.err != nil {
			return nil
		}
	}
	return out
}
