package types

import (
	"testing"
	"testing/quick"
)

func TestNodeIDClassification(t *testing.T) {
	if NodeID(0).IsClient() || NodeID(59).IsClient() {
		t.Error("replica IDs misclassified as clients")
	}
	if !ClientIDBase.IsClient() || !(ClientIDBase + 100).IsClient() {
		t.Error("client IDs misclassified as replicas")
	}
	if NodeID(3).String() != "r3" {
		t.Errorf("String = %s", NodeID(3).String())
	}
	if (ClientIDBase + 2).String() != "client2" {
		t.Errorf("String = %s", (ClientIDBase + 2).String())
	}
	if NoNode.String() != "node(none)" {
		t.Errorf("String = %s", NoNode.String())
	}
}

func TestBatchDigestDistinguishesContent(t *testing.T) {
	b1 := Batch{Client: ClientIDBase, Seq: 1, Txns: []Transaction{{Key: 1, Value: 2}}}
	b2 := Batch{Client: ClientIDBase, Seq: 1, Txns: []Transaction{{Key: 1, Value: 3}}}
	b3 := Batch{Client: ClientIDBase, Seq: 2, Txns: []Transaction{{Key: 1, Value: 2}}}
	if b1.Digest() == b2.Digest() {
		t.Error("different values, same digest")
	}
	if b1.Digest() == b3.Digest() {
		t.Error("different seq, same digest")
	}
	if b1.Digest() != b1.Digest() {
		t.Error("digest not deterministic")
	}
	noop := Batch{NoOp: true}
	if noop.Digest() == b1.Digest() {
		t.Error("no-op digest collides")
	}
}

func TestBatchEncodeRoundTrip(t *testing.T) {
	f := func(client int32, seq uint64, keys []uint64) bool {
		b := Batch{Client: NodeID(client), Seq: seq}
		for i, k := range keys {
			b.Txns = append(b.Txns, Transaction{Key: k, Value: uint64(i)})
		}
		enc := NewEncoder(0)
		b.Encode(enc)
		dec := NewDecoder(enc.Bytes())
		got := DecodeBatch(dec)
		if dec.Err() != nil {
			return false
		}
		if got.Client != b.Client || got.Seq != b.Seq || len(got.Txns) != len(b.Txns) {
			return false
		}
		for i := range b.Txns {
			if got.Txns[i] != b.Txns[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBatchWireSizeMatchesPaperCalibration(t *testing.T) {
	// The paper reports 5.4 kB preprepare payloads at batch size 100.
	b := Batch{Txns: make([]Transaction, 100)}
	if got := b.WireSize(); got < 5200 || got > 5700 {
		t.Errorf("batch-100 wire size = %d B, want ≈5.4 kB", got)
	}
}

func TestDigestHelpers(t *testing.T) {
	if !ZeroDigest.IsZero() {
		t.Error("ZeroDigest.IsZero() = false")
	}
	d := Hash([]byte("x"))
	if d.IsZero() {
		t.Error("hash of data is zero")
	}
	if len(d.Short()) != 8 {
		t.Errorf("Short() = %q", d.Short())
	}
}
