package types

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCodecRoundTrip(t *testing.T) {
	enc := NewEncoder(0)
	enc.U8(7)
	enc.Bool(true)
	enc.Bool(false)
	enc.U32(0xdeadbeef)
	enc.I32(-42)
	enc.U64(1 << 63)
	enc.I64(-1)
	var d Digest
	d[0], d[31] = 0xaa, 0xbb
	enc.Digest(d)
	enc.BytesN([]byte{1, 2, 3})
	enc.String("geo-scale")

	dec := NewDecoder(enc.Bytes())
	if got := dec.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if !dec.Bool() || dec.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := dec.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %x", got)
	}
	if got := dec.I32(); got != -42 {
		t.Errorf("I32 = %d", got)
	}
	if got := dec.U64(); got != 1<<63 {
		t.Errorf("U64 = %x", got)
	}
	if got := dec.I64(); got != -1 {
		t.Errorf("I64 = %d", got)
	}
	if got := dec.Digest(); got != d {
		t.Errorf("Digest = %x", got)
	}
	if got := dec.BytesN(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("BytesN = %v", got)
	}
	if got := dec.String(); got != "geo-scale" {
		t.Errorf("String = %q", got)
	}
	if dec.Err() != nil {
		t.Errorf("Err = %v", dec.Err())
	}
	if dec.Remaining() != 0 {
		t.Errorf("Remaining = %d", dec.Remaining())
	}
}

func TestDecoderUnderflow(t *testing.T) {
	dec := NewDecoder([]byte{1, 2})
	_ = dec.U64()
	if dec.Err() == nil {
		t.Error("expected underflow error")
	}
	// Further reads stay safe.
	_ = dec.Digest()
	_ = dec.BytesN()
	if dec.Err() == nil {
		t.Error("error must persist")
	}
}

func TestDecoderHostileLengthPrefix(t *testing.T) {
	enc := NewEncoder(0)
	enc.U32(0xffffffff) // claims a 4 GiB payload
	dec := NewDecoder(enc.Bytes())
	if got := dec.BytesN(); got != nil {
		t.Errorf("BytesN = %v, want nil", got)
	}
	if dec.Err() == nil {
		t.Error("expected error for hostile length prefix")
	}
}

// Property: every (u64, i64, bytes, string) tuple round-trips.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(a uint64, b int64, p []byte, s string) bool {
		enc := NewEncoder(0)
		enc.U64(a)
		enc.I64(b)
		enc.BytesN(p)
		enc.String(s)
		dec := NewDecoder(enc.Bytes())
		ga, gb := dec.U64(), dec.I64()
		gp, gs := dec.BytesN(), dec.String()
		if dec.Err() != nil {
			return false
		}
		return ga == a && gb == b && bytes.Equal(gp, p) && gs == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: encoding is canonical — equal values produce equal bytes, and
// any single-bit difference in inputs changes the bytes.
func TestCodecCanonicalProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		e1, e2 := NewEncoder(0), NewEncoder(0)
		e1.U64(a)
		e2.U64(b)
		if a == b {
			return bytes.Equal(e1.Bytes(), e2.Bytes())
		}
		return !bytes.Equal(e1.Bytes(), e2.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
