package bench

import (
	"time"

	"resilientdb/internal/types"
)

// Wire codec for the network-probe messages. These only ever travel inside
// the discrete-event simulator, but they are registered like every other
// message so the codec-coverage guarantee ("every types.Message round-trips
// through EncodeMessage/DecodeMessage") holds repo-wide.

// EncodeBody implements types.WireMessage.
func (p *pingMsg) EncodeBody(enc *types.Encoder) { enc.I64(int64(p.t0)) }

// EncodeBody implements types.WireMessage.
func (p *pongMsg) EncodeBody(enc *types.Encoder) { enc.I64(int64(p.t0)) }

// EncodeBody implements types.WireMessage.
func (*bulkMsg) EncodeBody(*types.Encoder) {}

func init() {
	types.RegisterMessage((*pingMsg)(nil).MsgType(),
		func(dec *types.Decoder) types.Message { return &pingMsg{t0: time.Duration(dec.I64())} },
		func() []types.Message {
			return []types.Message{&pingMsg{}, &pingMsg{t0: 5 * time.Millisecond}}
		})
	types.RegisterMessage((*pongMsg)(nil).MsgType(),
		func(dec *types.Decoder) types.Message { return &pongMsg{t0: time.Duration(dec.I64())} },
		func() []types.Message {
			return []types.Message{&pongMsg{}, &pongMsg{t0: 7 * time.Millisecond}}
		})
	types.RegisterMessage((*bulkMsg)(nil).MsgType(),
		func(*types.Decoder) types.Message { return &bulkMsg{} },
		func() []types.Message { return []types.Message{&bulkMsg{}} })
}
