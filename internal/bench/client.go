package bench

import (
	"time"

	"resilientdb/internal/metrics"
	"resilientdb/internal/proto"
	"resilientdb/internal/simnet"
	"resilientdb/internal/types"
	"resilientdb/internal/ycsb"
)

// quorumClient is the closed-loop load generator shared by the PBFT, GeoBFT,
// HotStuff and Steward benchmarks (Zyzzyva has its own client protocol). It
// keeps `window` batches outstanding, completes a batch on quorum matching
// replies, rebroadcasts on timeout, and reports completions to the
// collector.
type quorumClient struct {
	targets      []types.NodeID // submissions rotate across these
	retryTargets []types.NodeID
	quorum       int
	acceptFrom   func(types.NodeID) bool // nil: accept from anyone
	makeReq      func(types.Batch) types.Message
	window       int
	batchSize    int
	retryAfter   time.Duration
	collector    *metrics.Collector
	records      int

	env       *simnet.Env
	wl        *ycsb.Workload
	nextSeq   uint64
	pending   map[uint64]*pendingEntry
	broadcast bool // after a timeout: submit to the whole group (the
	// configured target may be a crashed primary)
}

type pendingEntry struct {
	batch     types.Batch
	submitted time.Duration
	acks      map[types.NodeID]bool
}

func (c *quorumClient) Init(env *simnet.Env) {
	c.env = env
	c.wl = ycsb.NewWorkload(c.records, ycsb.DefaultTheta, int64(env.ID())*7919)
	c.pending = make(map[uint64]*pendingEntry)
	if c.retryAfter == 0 {
		c.retryAfter = 1500 * time.Millisecond
	}
	for i := 0; i < c.window; i++ {
		c.submit()
	}
}

func (c *quorumClient) submit() {
	c.nextSeq++
	seq := c.nextSeq
	b := c.wl.MakeBatch(c.env.ID(), seq, c.batchSize)
	c.pending[seq] = &pendingEntry{
		batch: b, submitted: c.env.Now(), acks: make(map[types.NodeID]bool),
	}
	c.env.Suite().ChargeSign()
	if c.broadcast {
		for _, m := range c.retryTargets {
			c.env.Send(m, c.makeReq(b))
		}
	} else {
		c.env.Send(c.targets[int(seq)%len(c.targets)], c.makeReq(b))
	}
	c.armRetry(seq)
}

func (c *quorumClient) armRetry(seq uint64) {
	c.env.SetTimer(c.retryAfter, func() {
		p := c.pending[seq]
		if p == nil {
			return
		}
		// The configured target did not answer in time (for example a
		// crashed primary): broadcast this and all future submissions; the
		// replicas route to whoever currently leads.
		c.broadcast = true
		for _, m := range c.retryTargets {
			c.env.Send(m, c.makeReq(p.batch))
		}
		c.armRetry(seq)
	})
}

func (c *quorumClient) Receive(from types.NodeID, msg types.Message) {
	rep, ok := msg.(*proto.Reply)
	if !ok {
		return
	}
	p := c.pending[rep.ClientSeq]
	if p == nil || p.acks[from] {
		return
	}
	if c.acceptFrom != nil && !c.acceptFrom(from) {
		return
	}
	c.env.Suite().ChargeVerifyMAC()
	p.acks[from] = true
	if len(p.acks) >= c.quorum {
		delete(c.pending, rep.ClientSeq)
		c.collector.RecordCompletion(c.env.Now(), p.submitted, p.batch.Len())
		c.submit()
	}
}
