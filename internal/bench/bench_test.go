package bench

import (
	"testing"
	"time"
)

func tiny(p Protocol) Scenario {
	return Scenario{
		Protocol: p, Clusters: 2, PerCluster: 4,
		Warmup: 300 * time.Millisecond, Measure: time.Second,
		Outstanding: 64,
	}
}

func TestRunAllProtocolsProduceThroughput(t *testing.T) {
	for _, p := range AllProtocols {
		res := Run(tiny(p))
		if res.Throughput <= 0 {
			t.Errorf("%s: zero throughput", p)
		}
		if res.Latency.Count == 0 {
			t.Errorf("%s: no latency samples", p)
		}
		if res.Messages.LocalMsgs == 0 {
			t.Errorf("%s: no local traffic recorded", p)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(tiny(GeoBFT))
	b := Run(tiny(GeoBFT))
	if a.Throughput != b.Throughput || a.Events != b.Events {
		t.Errorf("same seed diverged: (%f, %d) vs (%f, %d)",
			a.Throughput, a.Events, b.Throughput, b.Events)
	}
	c := Run(Scenario{Protocol: GeoBFT, Clusters: 2, PerCluster: 4,
		Warmup: 300 * time.Millisecond, Measure: time.Second, Outstanding: 64, Seed: 99})
	if c.Events == a.Events {
		t.Log("different seeds produced identical event counts (possible but unlikely)")
	}
}

func TestGeoBFTBeatsPBFTAtScale(t *testing.T) {
	// The paper's headline: at several clusters, GeoBFT clearly outperforms
	// PBFT (Sections 4.1-4.4).
	geo := Run(Scenario{Protocol: GeoBFT, Clusters: 4, PerCluster: 7,
		Warmup: time.Second, Measure: 2 * time.Second})
	pbftRes := Run(Scenario{Protocol: PBFT, Clusters: 4, PerCluster: 7,
		Warmup: time.Second, Measure: 2 * time.Second})
	if geo.Throughput < 2*pbftRes.Throughput {
		t.Errorf("GeoBFT %.0f vs PBFT %.0f: expected ≥ 2×", geo.Throughput, pbftRes.Throughput)
	}
}

func TestZyzzyvaCollapsesUnderFailure(t *testing.T) {
	ok := Run(Scenario{Protocol: Zyzzyva, Clusters: 2, PerCluster: 4,
		Warmup: time.Second, Measure: 2 * time.Second})
	fail := Run(Scenario{Protocol: Zyzzyva, Clusters: 2, PerCluster: 4,
		CrashBackups: 1, Warmup: time.Second, Measure: 2 * time.Second})
	if fail.Throughput > ok.Throughput/4 {
		t.Errorf("Zyzzyva under failure %.0f vs %.0f: expected collapse", fail.Throughput, ok.Throughput)
	}
}

func TestFanoutAblationTrafficGrows(t *testing.T) {
	opt := Run(tiny(GeoBFT))
	all := Run(Scenario{Protocol: GeoBFT, Clusters: 2, PerCluster: 4,
		Warmup: 300 * time.Millisecond, Measure: time.Second, Outstanding: 64, Fanout: 4})
	perBatchOpt := float64(opt.Messages.GlobalMsgs) / float64(opt.Batches)
	perBatchAll := float64(all.Messages.GlobalMsgs) / float64(all.Batches)
	if perBatchAll <= perBatchOpt {
		t.Errorf("fanout n per-batch global msgs %.1f not above f+1's %.1f", perBatchAll, perBatchOpt)
	}
}

func TestTable1CalibratedWithinTolerance(t *testing.T) {
	rows := Table1()
	for _, r := range rows {
		gotMS := float64(r.RTT.Microseconds()) / 1000
		if r.From == r.To {
			if gotMS > 2 {
				t.Errorf("%v-%v RTT %.2f ms, want ≤ 1-2 ms", r.From, r.To, gotMS)
			}
			continue
		}
		// Within 15% of the paper's RTT (jitter disabled in the probe).
		if gotMS < r.PaperRTTms*0.85 || gotMS > r.PaperRTTms*1.15 {
			t.Errorf("%v-%v RTT %.1f ms, paper %.1f ms", r.From, r.To, gotMS, r.PaperRTTms)
		}
		// Bandwidth within 25% (uplink cap can shave the intra-region rate).
		want := r.PaperMbit
		if want > 1000 {
			want = 1000 // per-VM egress cap applies
		}
		if r.BandwidthMbit < want*0.7 || r.BandwidthMbit > want*1.3 {
			t.Errorf("%v-%v bandwidth %.0f Mbit/s, want ≈ %.0f", r.From, r.To, r.BandwidthMbit, want)
		}
	}
}
