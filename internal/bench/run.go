package bench

import (
	"fmt"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/core"
	"resilientdb/internal/crypto"
	"resilientdb/internal/hotstuff"
	"resilientdb/internal/metrics"
	"resilientdb/internal/pbft"
	"resilientdb/internal/simnet"
	"resilientdb/internal/steward"
	"resilientdb/internal/types"
	"resilientdb/internal/ycsb"
	"resilientdb/internal/zyzzyva"
)

// BenchCosts is the CPU cost model used by all experiments. It reflects the
// paper's single-machine profile (Crypto++ on 8-core Skylake, a pipelined
// but per-stage sequential implementation): signature work dominates, and
// every sent or received message pays a fixed marshalling + MAC cost.
func BenchCosts() crypto.Costs {
	return crypto.Costs{
		Sign:      50 * time.Microsecond,
		Verify:    150 * time.Microsecond,
		MAC:       15 * time.Microsecond,
		VerifyMAC: 15 * time.Microsecond,
		HashPerKB: 3 * time.Microsecond,
		ExecTxn:   2 * time.Microsecond,
	}
}

// Run executes one scenario and returns its measurements.
func Run(s Scenario) Result {
	s = s.withDefaults()
	topo := config.NewTopology(s.Clusters, s.PerCluster)
	prof := config.GoogleCloudProfile(s.Clusters)
	net := simnet.New(simnet.Options{
		Profile: prof,
		Seed:    s.Seed,
		Mode:    crypto.Fast,
		Costs:   BenchCosts(),
		// Wider delivery spread than the default: quorum waits then feel
		// the loss of fast spare replicas, the effect behind the moderate
		// throughput reduction under f failures (Section 4.3).
		JitterFrac: 0.25,
	})
	collector := metrics.NewCollector(s.Warmup, s.Warmup+s.Measure)
	net.TraceSend = func(_, _ types.NodeID, _ types.Message, size int, sameRegion bool) {
		if now := net.Now(); now >= s.Warmup && now < s.Warmup+s.Measure {
			collector.RecordSend(sameRegion, size)
		}
	}

	b := build(s, topo, net, collector)

	// Crash backups at time zero (highest local indices; never the primary
	// or site representative at local index 0).
	for c := 0; c < s.Clusters; c++ {
		for k := 0; k < s.CrashBackups && k < s.PerCluster-1; k++ {
			net.Crash(topo.ReplicaID(c, s.PerCluster-1-k))
		}
	}

	net.Start()

	// Primary crash after the configured number of executed transactions
	// (paper Section 4.3: 900), detected by polling a surviving replica.
	if s.CrashPrimary && b.watchExec != nil {
		var poll func()
		crashed := false
		poll = func() {
			if !crashed && b.watchExec() >= uint64(s.CrashAfterTxns) {
				crashed = true
				net.Crash(b.primary)
				return
			}
			if !crashed {
				net.At(net.Now()+20*time.Millisecond, b.primary, poll)
			}
		}
		net.At(0, b.primary, poll)
	}

	net.RunUntil(s.Warmup + s.Measure)

	return Result{
		Scenario:   s,
		Throughput: collector.Throughput(s.Warmup + s.Measure),
		Latency:    collector.Latency(),
		Messages:   collector.Messages(),
		Batches:    collector.Batches(),
		Events:     net.Events(),
	}
}

// built carries protocol-specific hooks out of the wiring step.
type built struct {
	primary   types.NodeID
	watchExec func() uint64
}

func build(s Scenario, topo config.Topology, net *simnet.Network, collector *metrics.Collector) built {
	checkpointBatches := uint64(s.CheckpointTxns / s.BatchSize)
	if checkpointBatches == 0 {
		checkpointBatches = 1
	}
	perWindow := s.Outstanding / s.ClientNodes
	if perWindow == 0 {
		perWindow = 1
	}

	switch s.Protocol {
	case GeoBFT:
		reps := make(map[types.NodeID]*core.Replica)
		for c := 0; c < s.Clusters; c++ {
			for i := 0; i < s.PerCluster; i++ {
				id := topo.ReplicaID(c, i)
				rep := core.NewReplica(core.Config{
					Topo: topo, Self: id, Records: s.Records,
					CheckpointInterval: checkpointBatches,
					Fanout:             s.Fanout,
					PipelineDepth:      pipelineDepth(s),
					ClientCluster: func(cl types.NodeID) int {
						return int(cl-types.ClientIDBase) % s.Clusters
					},
				})
				reps[id] = rep
				net.AddNode(id, c, rep)
			}
		}
		for i := 0; i < s.ClientNodes; i++ {
			cluster := i % s.Clusters
			cl := &quorumClient{
				targets:      []types.NodeID{topo.ReplicaID(cluster, 0)},
				retryTargets: topo.ClusterMembers(cluster),
				quorum:       topo.F() + 1,
				acceptFrom: func(from types.NodeID) bool {
					return int(topo.ClusterOf(from)) == cluster
				},
				makeReq:   func(b types.Batch) types.Message { return &pbft.Request{Batch: b} },
				window:    perWindow,
				batchSize: s.BatchSize,
				collector: collector,
				records:   s.Records,
			}
			net.AddNode(config.ClientID(i), cluster, cl)
		}
		watch := reps[topo.ReplicaID(0, 1)]
		return built{
			primary:   topo.ReplicaID(0, 0),
			watchExec: func() uint64 { return watch.ExecutedTxns() },
		}

	case PBFT:
		members := topo.AllReplicas()
		f := (len(members) - 1) / 3
		reps := make(map[types.NodeID]*pbft.Standalone)
		for c := 0; c < s.Clusters; c++ {
			for i := 0; i < s.PerCluster; i++ {
				id := topo.ReplicaID(c, i)
				rep := pbft.NewStandalone(pbft.Config{
					Members: members, Self: id, F: f,
					CheckpointInterval: checkpointBatches,
					HighWaterMark:      64,
				}, s.Records)
				reps[id] = rep
				net.AddNode(id, c, rep)
			}
		}
		for i := 0; i < s.ClientNodes; i++ {
			cluster := i % s.Clusters
			cl := &quorumClient{
				targets:      []types.NodeID{members[0]}, // primary in Oregon (Section 4)
				retryTargets: members,
				quorum:       f + 1,
				makeReq:      func(b types.Batch) types.Message { return &pbft.Request{Batch: b} },
				window:       perWindow,
				batchSize:    s.BatchSize,
				collector:    collector,
				records:      s.Records,
			}
			net.AddNode(config.ClientID(i), cluster, cl)
		}
		watch := reps[topo.ReplicaID(0, 1)]
		return built{
			primary:   members[0],
			watchExec: func() uint64 { return watch.Store().Applied() },
		}

	case Zyzzyva:
		members := topo.AllReplicas()
		f := (len(members) - 1) / 3
		for c := 0; c < s.Clusters; c++ {
			for i := 0; i < s.PerCluster; i++ {
				id := topo.ReplicaID(c, i)
				rep := zyzzyva.NewReplica(zyzzyva.Config{
					Members: members, Self: id, F: f, Records: s.Records,
				})
				net.AddNode(id, c, rep)
			}
		}
		for i := 0; i < s.ClientNodes; i++ {
			cluster := i % s.Clusters
			wl := ycsb.NewWorkload(s.Records, ycsb.DefaultTheta, int64(i)*104729)
			var seq uint64
			id := config.ClientID(i)
			cl := &zyzzyva.Client{
				Members: members, F: f, Window: perWindow,
				SpecTimeout: s.ZyzzyvaSpecGrace,
				NextBatch: func() (types.Batch, bool) {
					seq++
					return wl.MakeBatch(id, seq, s.BatchSize), true
				},
			}
			env := net // capture for closure below
			_ = env
			cl.OnComplete = func(_ uint64, submitted time.Duration, txns int) {
				collector.RecordCompletion(net.Now(), submitted, txns)
			}
			net.AddNode(id, cluster, cl)
		}
		return built{primary: members[0]} // primary crash unsupported (paper)

	case HotStuff:
		members := topo.AllReplicas()
		f := (len(members) - 1) / 3
		for c := 0; c < s.Clusters; c++ {
			for i := 0; i < s.PerCluster; i++ {
				id := topo.ReplicaID(c, i)
				rep := hotstuff.NewReplica(hotstuff.Config{
					Members: members, Self: id, F: f, Records: s.Records,
					PipelinePerChain: 4,
				})
				net.AddNode(id, c, rep)
			}
		}
		// Clients target live leaders round-robin (every replica leads).
		var live []types.NodeID
		for c := 0; c < s.Clusters; c++ {
			for i := 0; i < s.PerCluster-s.CrashBackups; i++ {
				live = append(live, topo.ReplicaID(c, i))
			}
		}
		for i := 0; i < s.ClientNodes; i++ {
			cluster := i % s.Clusters
			cl := &quorumClient{
				targets:      live, // every replica leads; spread the load
				retryTargets: []types.NodeID{live[(i+1)%len(live)]},
				quorum:       f + 1,
				makeReq:      func(b types.Batch) types.Message { return &hotstuff.Request{Batch: b} },
				window:       perWindow,
				batchSize:    s.BatchSize,
				collector:    collector,
				records:      s.Records,
			}
			net.AddNode(config.ClientID(i), cluster, cl)
		}
		return built{primary: members[0]}

	case Steward:
		reps := make(map[types.NodeID]*steward.Replica)
		for c := 0; c < s.Clusters; c++ {
			for i := 0; i < s.PerCluster; i++ {
				id := topo.ReplicaID(c, i)
				rep := steward.NewReplica(steward.Config{Topo: topo, Self: id, Records: s.Records})
				reps[id] = rep
				net.AddNode(id, c, rep)
			}
		}
		for i := 0; i < s.ClientNodes; i++ {
			cluster := i % s.Clusters
			cl := &quorumClient{
				targets:      []types.NodeID{topo.ReplicaID(cluster, 0)},
				retryTargets: topo.ClusterMembers(cluster),
				quorum:       topo.F() + 1,
				acceptFrom: func(from types.NodeID) bool {
					return int(topo.ClusterOf(from)) == cluster
				},
				makeReq:   func(b types.Batch) types.Message { return &steward.Request{Batch: b} },
				window:    perWindow,
				batchSize: s.BatchSize,
				collector: collector,
				records:   s.Records,
			}
			net.AddNode(config.ClientID(i), cluster, cl)
		}
		return built{primary: topo.ReplicaID(0, 0)}
	}
	panic(fmt.Sprintf("bench: unknown protocol %q", s.Protocol))
}

func pipelineDepth(s Scenario) int {
	if s.DisablePipeline {
		return -1
	}
	return 0 // default
}
