package bench

import (
	"fmt"
	"io"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/simnet"
	"resilientdb/internal/types"
)

// Experiment drivers: one per table/figure of the paper's evaluation.
// Each returns machine-readable results and can print the rows the paper
// reports. Absolute numbers are simulator-scale; the shapes (orderings,
// factors, crossovers) are the reproduction target — see EXPERIMENTS.md.

// ---------------------------------------------------------------- Table 1

// Table1Row is one probe measurement between two regions.
type Table1Row struct {
	From, To      config.Region
	RTT           time.Duration
	PaperRTTms    float64
	BandwidthMbit float64
	PaperMbit     float64
}

type pingMsg struct{ t0 time.Duration }

func (*pingMsg) MsgType() string { return "probe/ping" }
func (*pingMsg) WireSize() int   { return 100 }

type pongMsg struct{ t0 time.Duration }

func (*pongMsg) MsgType() string { return "probe/pong" }
func (*pongMsg) WireSize() int   { return 100 }

type bulkMsg struct{}

func (*bulkMsg) MsgType() string { return "probe/bulk" }
func (*bulkMsg) WireSize() int   { return 1 << 20 }

type prober struct {
	env   *simnet.Env
	rtt   *time.Duration
	got   *int
	first *time.Duration
	last  *time.Duration
}

func (p *prober) Init(env *simnet.Env) { p.env = env }
func (p *prober) Receive(from types.NodeID, msg types.Message) {
	switch m := msg.(type) {
	case *pingMsg:
		p.env.Send(from, &pongMsg{t0: m.t0})
	case *pongMsg:
		if p.rtt != nil {
			*p.rtt = p.env.Now() - m.t0
		}
	case *bulkMsg:
		if *p.got == 0 {
			*p.first = p.env.Now()
		}
		*p.got++
		*p.last = p.env.Now()
	}
}

// Table1 measures ping round-trip times and sustained bandwidth between
// every pair of the six regions in the simulator, validating its
// calibration against the paper's Table 1.
func Table1() []Table1Row {
	var rows []Table1Row
	for a := config.Oregon; a < config.NumRegions; a++ {
		for b := a; b < config.NumRegions; b++ {
			net := simnet.New(simnet.Options{
				Profile:    config.GoogleCloudProfile(int(config.NumRegions)),
				Seed:       1,
				JitterFrac: -1,
			})
			var rtt time.Duration
			var got int
			var first, last time.Duration
			pa := &prober{rtt: &rtt, got: &got, first: &first, last: &last}
			pb := &prober{rtt: &rtt, got: &got, first: &first, last: &last}
			net.AddNode(0, int(a), pa)
			net.AddNode(1, int(b), pb)
			net.Start()
			// Ping.
			net.At(0, 0, func() { pa.env.Send(1, &pingMsg{t0: 0}) })
			net.RunUntil(5 * time.Second)
			// Bulk: 64 MiB in 1 MiB messages, measure delivery rate.
			const nBulk = 64
			net.At(net.Now(), 0, func() {
				for i := 0; i < nBulk; i++ {
					pa.env.Send(1, &bulkMsg{})
				}
			})
			net.RunUntil(net.Now() + 120*time.Second)
			mbit := 0.0
			if got == nBulk && last > first {
				bytes := float64(nBulk-1) * (1 << 20) // rate between first and last arrival
				mbit = bytes * 8 / last.Seconds() / 1e6
				mbit = bytes * 8 / (last - first).Seconds() / 1e6
			}
			rows = append(rows, Table1Row{
				From: a, To: b, RTT: rtt,
				PaperRTTms:    config.RTTMillis(a, b),
				BandwidthMbit: mbit,
				PaperMbit:     config.BandwidthMbit(a, b),
			})
		}
	}
	return rows
}

// PrintTable1 renders Table 1 rows.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1: inter-region RTT and bandwidth (simulated vs paper)\n")
	fmt.Fprintf(w, "%-10s %-10s %12s %12s %14s %12s\n",
		"from", "to", "rtt(ms)", "paper(ms)", "bw(Mbit/s)", "paper")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-10s %12.1f %12.1f %14.0f %12.0f\n",
			r.From, r.To, float64(r.RTT.Microseconds())/1000, r.PaperRTTms,
			r.BandwidthMbit, r.PaperMbit)
	}
}

// ---------------------------------------------------------------- Table 2

// Table2Row reports the measured per-decision message counts of one
// protocol next to the paper's closed-form complexity.
type Table2Row struct {
	Protocol      Protocol
	LocalPerDec   float64
	GlobalPerDec  float64
	FormulaLocal  string
	FormulaGlobal string
	Decentralized string
}

// Table2 measures normal-case message complexity per consensus decision at
// z=4 clusters of n=7 replicas (f=2), averaged over a steady-state run.
func Table2() []Table2Row {
	z, n := 4, 7
	f := (n - 1) / 3
	formulas := map[Protocol][3]string{
		GeoBFT:   {"O(2zn^2)", "O(fz^2)", "no"},
		PBFT:     {"O(2(zn)^2)", "", "yes"},
		Zyzzyva:  {"O(zn)", "", "yes"},
		HotStuff: {"O(8(zn))", "", "partly"},
		Steward:  {"O(2zn^2)", "O(z^2)", "yes"},
	}
	var rows []Table2Row
	for _, p := range AllProtocols {
		res := Run(Scenario{
			Protocol: p, Clusters: z, PerCluster: n, BatchSize: 100,
			Outstanding: 64, Warmup: 2 * time.Second, Measure: 4 * time.Second,
		})
		var local, global float64
		if res.Batches > 0 {
			local = float64(res.Messages.LocalMsgs) / float64(res.Batches)
			global = float64(res.Messages.GlobalMsgs) / float64(res.Batches)
		}
		fm := formulas[p]
		rows = append(rows, Table2Row{
			Protocol: p, LocalPerDec: local, GlobalPerDec: global,
			FormulaLocal: fm[0], FormulaGlobal: fm[1], Decentralized: fm[2],
		})
	}
	_ = f
	return rows
}

// PrintTable2 renders Table 2 rows.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "Table 2: measured messages per consensus decision (z=4, n=7, batch=100)\n")
	fmt.Fprintf(w, "%-10s %14s %14s %14s %12s %14s\n",
		"protocol", "local/dec", "global/dec", "formula-local", "formula-glob", "centralized")
	for _, r := range rows {
		central := "yes"
		if r.Decentralized == "no" {
			central = "no"
		} else if r.Decentralized == "partly" {
			central = "partly"
		}
		fmt.Fprintf(w, "%-10s %14.1f %14.1f %14s %12s %14s\n",
			r.Protocol, r.LocalPerDec, r.GlobalPerDec, r.FormulaLocal, r.FormulaGlobal, central)
	}
}

// ---------------------------------------------------------------- Figures

// FigureRow is one (x, protocol) data point of a throughput/latency figure.
type FigureRow struct {
	X          int
	Protocol   Protocol
	Throughput float64
	LatencyAvg time.Duration
	LatencyP50 time.Duration
}

// Figure10 sweeps the number of clusters 1..6 with zn=60 replicas total
// (paper Section 4.1).
func Figure10(protocols []Protocol, seed int64) []FigureRow {
	var rows []FigureRow
	for z := 1; z <= 6; z++ {
		n := 60 / z
		for _, p := range protocols {
			res := Run(Scenario{Protocol: p, Clusters: z, PerCluster: n, Seed: seed})
			rows = append(rows, row(z, p, res))
		}
	}
	return rows
}

// Figure11 sweeps replicas per cluster with z=4 (paper Section 4.2).
func Figure11(protocols []Protocol, seed int64) []FigureRow {
	var rows []FigureRow
	for _, n := range []int{4, 7, 10, 12, 15} {
		for _, p := range protocols {
			res := Run(Scenario{Protocol: p, Clusters: 4, PerCluster: n, Seed: seed})
			rows = append(rows, row(n, p, res))
		}
	}
	return rows
}

// Figure12Single measures throughput with one non-primary replica failure
// (paper Section 4.3, left).
func Figure12Single(protocols []Protocol, seed int64) []FigureRow {
	var rows []FigureRow
	for _, n := range []int{4, 7, 10, 12} {
		for _, p := range protocols {
			res := Run(Scenario{Protocol: p, Clusters: 4, PerCluster: n,
				CrashBackups: 1, Seed: seed})
			rows = append(rows, row(n, p, res))
		}
	}
	return rows
}

// Figure12F measures throughput with f non-primary failures per cluster
// (paper Section 4.3, middle).
func Figure12F(protocols []Protocol, seed int64) []FigureRow {
	var rows []FigureRow
	for _, n := range []int{4, 7, 10, 12} {
		f := (n - 1) / 3
		for _, p := range protocols {
			res := Run(Scenario{Protocol: p, Clusters: 4, PerCluster: n,
				CrashBackups: f, Seed: seed})
			rows = append(rows, row(n, p, res))
		}
	}
	return rows
}

// Figure12Primary measures throughput under a single primary failure after
// 900 transactions, with checkpoints every 600 (paper Section 4.3, right).
// Only GeoBFT and PBFT participate, as in the paper.
func Figure12Primary(seed int64) []FigureRow {
	var rows []FigureRow
	for _, n := range []int{4, 7, 10, 12} {
		for _, p := range []Protocol{GeoBFT, PBFT} {
			res := Run(Scenario{Protocol: p, Clusters: 4, PerCluster: n,
				CrashPrimary: true, CrashAfterTxns: 900, CheckpointTxns: 600,
				Measure: 10 * time.Second, Seed: seed})
			rows = append(rows, row(n, p, res))
		}
	}
	return rows
}

// Figure13 sweeps the batch size at z=4, n=7 (paper Section 4.4).
func Figure13(protocols []Protocol, seed int64) []FigureRow {
	var rows []FigureRow
	for _, bs := range []int{10, 50, 100, 200, 300} {
		for _, p := range protocols {
			res := Run(Scenario{Protocol: p, Clusters: 4, PerCluster: 7,
				BatchSize: bs, Seed: seed})
			rows = append(rows, row(bs, p, res))
		}
	}
	return rows
}

func row(x int, p Protocol, res Result) FigureRow {
	return FigureRow{
		X: x, Protocol: p,
		Throughput: res.Throughput,
		LatencyAvg: res.Latency.Avg,
		LatencyP50: res.Latency.P50,
	}
}

// PrintFigure renders figure rows as a table grouped by x value.
func PrintFigure(w io.Writer, title, xlabel string, rows []FigureRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-8s %-10s %16s %14s %14s\n",
		xlabel, "protocol", "tput(txn/s)", "lat-avg(s)", "lat-p50(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %-10s %16.0f %14.3f %14.3f\n",
			r.X, r.Protocol, r.Throughput, r.LatencyAvg.Seconds(), r.LatencyP50.Seconds())
	}
}
