// Package bench is the experiment harness that regenerates every table and
// figure of the ResilientDB paper's evaluation (Section 4). A Scenario
// describes a deployment — protocol, topology, workload, batch size,
// failures — and Run wires it into the discrete-event WAN simulator
// calibrated against Table 1, drives it with closed-loop clients, and
// reports client-observed throughput and latency plus local/global traffic
// counters.
//
// The paper's experimental set-up is mirrored: replicas spread over up to
// six Google Cloud regions (Oregon, Iowa, Montreal, Belgium, Taiwan,
// Sydney, added in that order), YCSB write batches (batch size 100 unless
// stated), clients distributed across the regions in use, a warm-up phase
// followed by a measurement window, and checkpoints every 600 transactions.
package bench

import (
	"time"

	"resilientdb/internal/metrics"
	"resilientdb/internal/types"
)

// Protocol names a consensus protocol under evaluation.
type Protocol string

// The five protocols of the paper's evaluation.
const (
	GeoBFT   Protocol = "geobft"
	PBFT     Protocol = "pbft"
	Zyzzyva  Protocol = "zyzzyva"
	HotStuff Protocol = "hotstuff"
	Steward  Protocol = "steward"
)

// AllProtocols lists the protocols in the paper's plotting order.
var AllProtocols = []Protocol{GeoBFT, PBFT, Zyzzyva, HotStuff, Steward}

// Scenario is one experiment configuration.
type Scenario struct {
	Protocol   Protocol
	Clusters   int // z: number of regions in use
	PerCluster int // n: replicas per region
	BatchSize  int // transactions per consensus decision

	// ClientNodes is the number of client machines (the paper uses eight,
	// spread across the regions in use). Zero selects 8.
	ClientNodes int
	// Outstanding is the total number of batches in flight system-wide
	// (client concurrency). Zero selects 480.
	Outstanding int
	// Records sizes the YCSB table. Zero selects 10 000 (the simulation's
	// working set; the paper's 600k only affects memory, not behaviour).
	Records int

	Warmup  time.Duration // zero → 2 s
	Measure time.Duration // zero → 6 s
	Seed    int64

	// CheckpointTxns is the checkpoint interval in transactions (paper:
	// 600). Zero selects 600.
	CheckpointTxns int

	// Failure injection.
	CrashBackups     int  // backups crashed per cluster at t=0
	CrashPrimary     bool // crash the Oregon primary mid-run
	CrashAfterTxns   int  // ... after this many executed txns (paper: 900)
	ZyzzyvaSpecGrace time.Duration

	// Ablations.
	Fanout          int  // GeoBFT inter-cluster fanout; 0 → f+1
	DisablePipeline bool // GeoBFT: one round at a time
}

func (s Scenario) withDefaults() Scenario {
	if s.ClientNodes == 0 {
		s.ClientNodes = 8
	}
	if s.Outstanding == 0 {
		s.Outstanding = 480
	}
	if s.Records == 0 {
		s.Records = 10_000
	}
	if s.Warmup == 0 {
		s.Warmup = time.Second
	}
	if s.Measure == 0 {
		s.Measure = 3 * time.Second
	}
	if s.BatchSize == 0 {
		s.BatchSize = 100
	}
	if s.CheckpointTxns == 0 {
		s.CheckpointTxns = 600
	}
	if s.CrashAfterTxns == 0 {
		s.CrashAfterTxns = 900
	}
	if s.ZyzzyvaSpecGrace == 0 {
		s.ZyzzyvaSpecGrace = time.Second
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	return s
}

// Result is the outcome of one scenario run.
type Result struct {
	Scenario   Scenario
	Throughput float64 // client-completed transactions per second
	Latency    metrics.LatencyStats
	Messages   metrics.MessageStats
	Batches    int64
	Events     int64
}

// TxnID is a convenience alias used by experiment drivers.
type TxnID = types.NodeID
