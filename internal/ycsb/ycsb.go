// Package ycsb generates workloads in the style of the Yahoo! Cloud Serving
// Benchmark, which the paper's evaluation uses: write transactions over an
// active set of 600k records with Zipfian-distributed keys (Section 4).
package ycsb

import (
	"hash/fnv"
	"math"
	"math/rand"

	"resilientdb/internal/types"
)

// DefaultRecords is the paper's active record count.
const DefaultRecords = 600_000

// DefaultTheta is YCSB's standard Zipfian skew constant.
const DefaultTheta = 0.99

// Zipfian draws integers in [0, items) with a Zipfian distribution, using
// the Gray et al. algorithm as popularized by the YCSB generator.
type Zipfian struct {
	items      uint64
	theta      float64
	alpha      float64
	zetan      float64
	zeta2theta float64
	eta        float64
}

// NewZipfian constructs a generator over [0, items) with skew theta.
func NewZipfian(items uint64, theta float64) *Zipfian {
	z := &Zipfian{items: items, theta: theta}
	z.zetan = zeta(items, theta)
	z.zeta2theta = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(items), 1-theta)) / (1 - z.zeta2theta/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next value using r.
func (z *Zipfian) Next(r *rand.Rand) uint64 {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Workload produces YCSB-style write batches. Keys follow a scrambled
// Zipfian distribution (hot items spread across the key space, as in YCSB);
// values are unique so every write changes state.
type Workload struct {
	records uint64
	zipf    *Zipfian
	rng     *rand.Rand
	nextVal uint64
}

// NewWorkload returns a workload over records rows with Zipfian skew theta,
// seeded deterministically.
func NewWorkload(records int, theta float64, seed int64) *Workload {
	if records <= 0 {
		records = DefaultRecords
	}
	return &Workload{
		records: uint64(records),
		zipf:    NewZipfian(uint64(records), theta),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// NextTxn draws one write transaction.
func (w *Workload) NextTxn() types.Transaction {
	raw := w.zipf.Next(w.rng)
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(raw >> (8 * i))
	}
	h.Write(buf[:])
	w.nextVal++
	return types.Transaction{Key: h.Sum64() % w.records, Value: w.nextVal}
}

// MakeBatch assembles a batch of size transactions for the given client.
func (w *Workload) MakeBatch(client types.NodeID, seq uint64, size int) types.Batch {
	txns := make([]types.Transaction, size)
	for i := range txns {
		txns[i] = w.NextTxn()
	}
	return types.Batch{Client: client, Seq: seq, Txns: txns}
}
