package ycsb

import (
	"math"
	"math/rand"
	"testing"
)

func TestZipfianRangeAndSkew(t *testing.T) {
	const items = 1000
	z := NewZipfian(items, DefaultTheta)
	r := rand.New(rand.NewSource(1))
	counts := make([]int, items)
	const draws = 200_000
	for i := 0; i < draws; i++ {
		v := z.Next(r)
		if v >= items {
			t.Fatalf("draw %d out of range", v)
		}
		counts[v]++
	}
	// Zipfian with theta=0.99: item 0 is by far the most popular, and the
	// head dominates the tail.
	if counts[0] < counts[items-1] {
		t.Error("head not more popular than tail")
	}
	head := 0
	for i := 0; i < items/100; i++ { // top 1%
		head += counts[i]
	}
	if frac := float64(head) / draws; frac < 0.3 {
		t.Errorf("top 1%% of items drew only %.1f%% of accesses, want ≥ 30%%", frac*100)
	}
}

func TestZipfianDeterministic(t *testing.T) {
	z := NewZipfian(100, DefaultTheta)
	r1 := rand.New(rand.NewSource(9))
	r2 := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		if z.Next(r1) != z.Next(r2) {
			t.Fatal("same seed, different draws")
		}
	}
}

func TestWorkloadBatches(t *testing.T) {
	w := NewWorkload(1000, DefaultTheta, 5)
	b := w.MakeBatch(1<<20, 3, 25)
	if b.Len() != 25 || b.Seq != 3 {
		t.Fatalf("batch len=%d seq=%d", b.Len(), b.Seq)
	}
	seen := make(map[uint64]bool)
	for _, txn := range b.Txns {
		if txn.Key >= 1000 {
			t.Fatalf("key %d out of range", txn.Key)
		}
		if seen[txn.Value] {
			t.Error("values must be unique (every write changes state)")
		}
		seen[txn.Value] = true
	}
}

func TestWorkloadScrambles(t *testing.T) {
	// Scrambled Zipfian: the hottest keys must not all be clustered at the
	// low end of the key space.
	w := NewWorkload(10_000, DefaultTheta, 11)
	low := 0
	const draws = 10_000
	for i := 0; i < draws; i++ {
		if w.NextTxn().Key < 100 {
			low++
		}
	}
	if float64(low)/draws > 0.2 {
		t.Errorf("%.1f%% of draws in lowest 1%% of key space: not scrambled", float64(low)/draws*100)
	}
}

func TestZetaFinite(t *testing.T) {
	if v := zeta(DefaultRecords, DefaultTheta); math.IsInf(v, 0) || math.IsNaN(v) || v <= 0 {
		t.Errorf("zeta = %v", v)
	}
}

func BenchmarkNextTxn(b *testing.B) {
	w := NewWorkload(DefaultRecords, DefaultTheta, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.NextTxn()
	}
}
