package crypto

import "time"

// Costs models the CPU time of each cryptographic operation. The network
// simulator charges these to a node's virtual CPU so that compute-bound
// protocols (the paper calls out Steward and HotStuff) saturate exactly
// where the paper reports.
//
// The defaults are calibrated to single-core timings of the primitives the
// paper uses (Crypto++ ED25519 on 8-core Skylake): ~25 µs per sign, ~65 µs
// per verify, single-digit µs for AES-CMAC over control messages.
type Costs struct {
	Sign      time.Duration // produce one ED25519 signature
	Verify    time.Duration // verify one ED25519 signature
	MAC       time.Duration // produce one AES-CMAC tag
	VerifyMAC time.Duration // verify one AES-CMAC tag
	HashPerKB time.Duration // SHA-256 over one kilobyte
	ExecTxn   time.Duration // apply one YCSB write to the store
}

// DefaultCosts returns the calibrated cost model used by all experiments.
func DefaultCosts() Costs {
	return Costs{
		Sign:      25 * time.Microsecond,
		Verify:    65 * time.Microsecond,
		MAC:       2 * time.Microsecond,
		VerifyMAC: 2 * time.Microsecond,
		HashPerKB: 3 * time.Microsecond,
		ExecTxn:   500 * time.Nanosecond,
	}
}

// FreeCosts returns a zero cost model (useful in unit tests where virtual
// compute time is irrelevant).
func FreeCosts() Costs { return Costs{} }
