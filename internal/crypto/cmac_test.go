package crypto

import (
	"bytes"
	"encoding/hex"
	"testing"
)

// RFC 4493 Section 4 test vectors for AES-128-CMAC.
var rfc4493Key = mustHex("2b7e151628aed2a6abf7158809cf4f3c")

var rfc4493Msg = mustHex(
	"6bc1bee22e409f96e93d7e117393172a" +
		"ae2d8a571e03ac9c9eb76fac45af8e51" +
		"30c81c46a35ce411e5fbc1191a0a52ef" +
		"f69f2445df4f9b17ad2b417be66c3710")

func mustHex(s string) []byte {
	b, err := hex.DecodeString(s)
	if err != nil {
		panic(err)
	}
	return b
}

func TestCMACRFC4493Vectors(t *testing.T) {
	cases := []struct {
		name string
		msg  []byte
		want string
	}{
		{"empty", nil, "bb1d6929e95937287fa37d129b756746"},
		{"16-byte", rfc4493Msg[:16], "070a16b46b4d4144f79bdd9dd04a287c"},
		{"40-byte", rfc4493Msg[:40], "dfa66747de9ae63030ca32611497c827"},
		{"64-byte", rfc4493Msg, "51f0bebf7e3b9d92fc49741779363cfe"},
	}
	c, err := NewCMAC(rfc4493Key)
	if err != nil {
		t.Fatalf("NewCMAC: %v", err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := c.Sum(tc.msg)
			if hex.EncodeToString(got[:]) != tc.want {
				t.Errorf("Sum = %x, want %s", got, tc.want)
			}
			if !c.Verify(tc.msg, got[:]) {
				t.Error("Verify rejected its own tag")
			}
		})
	}
}

func TestCMACSubkeys(t *testing.T) {
	// RFC 4493 Section 4: K1 = fbeed618357133667c85e08f7236a8de,
	// K2 = f7ddac306ae266ccf90bc11ee46d513b.
	c, err := NewCMAC(rfc4493Key)
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(c.k1[:]); got != "fbeed618357133667c85e08f7236a8de" {
		t.Errorf("K1 = %s", got)
	}
	if got := hex.EncodeToString(c.k2[:]); got != "f7ddac306ae266ccf90bc11ee46d513b" {
		t.Errorf("K2 = %s", got)
	}
}

func TestCMACRejectsTampering(t *testing.T) {
	c, err := NewCMAC(rfc4493Key)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("resilientdb message")
	tag := c.Sum(msg)
	if !c.Verify(msg, tag[:]) {
		t.Fatal("valid tag rejected")
	}
	bad := bytes.Clone(msg)
	bad[0] ^= 1
	if c.Verify(bad, tag[:]) {
		t.Error("tampered message accepted")
	}
	badTag := bytes.Clone(tag[:])
	badTag[5] ^= 0x40
	if c.Verify(msg, badTag) {
		t.Error("tampered tag accepted")
	}
	if c.Verify(msg, tag[:15]) {
		t.Error("truncated tag accepted")
	}
}

func TestCMACBoundaryLengths(t *testing.T) {
	c, err := NewCMAC(rfc4493Key)
	if err != nil {
		t.Fatal(err)
	}
	// Every length around block boundaries must round-trip.
	for n := 0; n <= 64; n++ {
		msg := make([]byte, n)
		for i := range msg {
			msg[i] = byte(i * 7)
		}
		tag := c.Sum(msg)
		if !c.Verify(msg, tag[:]) {
			t.Fatalf("len %d: verify failed", n)
		}
		if n > 0 {
			msg[n-1] ^= 0xff
			if c.Verify(msg, tag[:]) {
				t.Fatalf("len %d: tamper accepted", n)
			}
		}
	}
}

func TestCMACKeySize(t *testing.T) {
	if _, err := NewCMAC([]byte("short")); err == nil {
		t.Error("expected error for invalid key size")
	}
}
