package crypto

import (
	"crypto/ed25519"
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
	"sync"
	"time"

	"resilientdb/internal/types"
)

// Mode selects between real primitives and fast cost-charged substitutes.
type Mode int

const (
	// Real computes every primitive (ED25519, AES-CMAC, SHA-256).
	Real Mode = iota
	// Fast substitutes cheap keyed hashes and charges the calibrated CPU
	// cost of the real primitive instead. Tags remain verifiable across
	// nodes; forging them is only as hard as knowing the signer ID, which is
	// acceptable because simulated Byzantine behaviour is scripted.
	Fast
)

// Directory holds the long-lived key material of every node in the system:
// an ED25519 keypair per node and pairwise symmetric keys for authenticated
// channels. In the permissioned setting all of this is provisioned up front.
type Directory struct {
	mode Mode
	pub  map[types.NodeID]ed25519.PublicKey
	priv map[types.NodeID]ed25519.PrivateKey
}

// NewDirectory provisions key material for the given nodes. In Fast mode no
// real keys are generated.
func NewDirectory(mode Mode, nodes []types.NodeID) *Directory {
	d := &Directory{
		mode: mode,
		pub:  make(map[types.NodeID]ed25519.PublicKey, len(nodes)),
		priv: make(map[types.NodeID]ed25519.PrivateKey, len(nodes)),
	}
	if mode == Real {
		for _, id := range nodes {
			seed := sha256.Sum256([]byte(fmt.Sprintf("resilientdb-seed-%d", id)))
			priv := ed25519.NewKeyFromSeed(seed[:])
			d.priv[id] = priv
			d.pub[id] = priv.Public().(ed25519.PublicKey)
		}
	}
	return d
}

// Mode returns the directory's operating mode.
func (d *Directory) Mode() Mode { return d.mode }

// pairKey derives the symmetric AES-128 key shared by nodes a and b.
func pairKey(a, b types.NodeID) []byte {
	if a > b {
		a, b = b, a
	}
	sum := sha256.Sum256([]byte(fmt.Sprintf("resilientdb-mac-%d-%d", a, b)))
	return sum[:16]
}

// Suite binds the directory to one node and, optionally, to a CPU-charging
// callback. Every protocol implementation performs its cryptography through
// a Suite; the network simulator installs a charger so each operation
// advances the node's virtual CPU clock.
//
// Concurrency contract: a Suite is safe for concurrent use by multiple
// goroutines provided the charge callback (if any) is itself concurrent-safe.
// Sign, Verify and Hash touch only immutable key material; MAC and VerifyMAC
// build per-peer CMAC states lazily, guarded by an internal mutex (a CMAC is
// immutable once built). The fabric relies on this: its verify pool shares
// one Suite per node across all verifier goroutines and the worker.
type Suite struct {
	dir    *Directory
	id     types.NodeID
	costs  Costs
	charge func(time.Duration)

	mu    sync.Mutex // guards cmacs (lazily populated)
	cmacs map[types.NodeID]*CMAC
}

// NewSuite returns a suite for node id. charge may be nil (no CPU
// accounting, e.g. in the real-time fabric where time is real).
func NewSuite(dir *Directory, id types.NodeID, costs Costs, charge func(time.Duration)) *Suite {
	return &Suite{dir: dir, id: id, costs: costs, charge: charge,
		cmacs: make(map[types.NodeID]*CMAC)}
}

// ID returns the node this suite signs for.
func (s *Suite) ID() types.NodeID { return s.id }

func (s *Suite) bill(d time.Duration) {
	if s.charge != nil && d > 0 {
		s.charge(d)
	}
}

// fastTag computes the Fast-mode stand-in for a signature by signer over
// payload: a truncated SHA-256 keyed by the signer identity.
func fastTag(signer types.NodeID, payload []byte) []byte {
	h := sha256.New()
	h.Write([]byte{'f', 's'})
	h.Write(types.U64Bytes(uint64(uint32(signer))))
	h.Write(payload)
	return h.Sum(nil)[:16]
}

// Sign produces a digital signature of payload by this node.
func (s *Suite) Sign(payload []byte) []byte {
	s.bill(s.costs.Sign)
	if s.dir.mode == Real {
		return ed25519.Sign(s.dir.priv[s.id], payload)
	}
	return fastTag(s.id, payload)
}

// Verify reports whether sig is signer's signature over payload.
func (s *Suite) Verify(signer types.NodeID, payload, sig []byte) bool {
	s.bill(s.costs.Verify)
	if s.dir.mode == Real {
		pub, ok := s.dir.pub[signer]
		return ok && ed25519.Verify(pub, payload, sig)
	}
	want := fastTag(signer, payload)
	return len(sig) == len(want) && subtle.ConstantTimeCompare(want, sig) == 1
}

func (s *Suite) cmacFor(peer types.NodeID) *CMAC {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.cmacs[peer]
	if c == nil {
		var err error
		c, err = NewCMAC(pairKey(s.id, peer))
		if err != nil {
			panic("crypto: AES key setup: " + err.Error())
		}
		s.cmacs[peer] = c
	}
	return c
}

// MAC computes the authentication tag for a message to peer.
func (s *Suite) MAC(peer types.NodeID, payload []byte) []byte {
	s.bill(s.costs.MAC)
	if s.dir.mode == Real {
		tag := s.cmacFor(peer).Sum(payload)
		return tag[:]
	}
	return fastTag(s.id^peer, payload)
}

// VerifyMAC reports whether tag authenticates payload on the channel with
// peer.
func (s *Suite) VerifyMAC(peer types.NodeID, payload, tag []byte) bool {
	s.bill(s.costs.VerifyMAC)
	if s.dir.mode == Real {
		return s.cmacFor(peer).Verify(payload, tag)
	}
	want := fastTag(s.id^peer, payload)
	return len(tag) == len(want) && subtle.ConstantTimeCompare(want, tag) == 1
}

// Hash computes (and charges for) a SHA-256 digest of payload.
func (s *Suite) Hash(payload []byte) types.Digest {
	s.ChargeHash(len(payload))
	return types.Hash(payload)
}

// ChargeHash charges the CPU cost of hashing n bytes without hashing.
func (s *Suite) ChargeHash(n int) {
	if s.costs.HashPerKB > 0 {
		s.bill(s.costs.HashPerKB * time.Duration(n+1023) / 1024)
	}
}

// ChargeSign charges the cost of producing one signature without computing
// it.
func (s *Suite) ChargeSign() { s.bill(s.costs.Sign) }

// ChargeVerify charges the cost of verifying one signature without
// verifying it (used where simulated peers are known-honest but the CPU
// cost must still be modelled).
func (s *Suite) ChargeVerify() { s.bill(s.costs.Verify) }

// ChargeMAC charges the cost of producing one MAC tag without computing it.
// Protocol hot paths use this for the per-message authenticators whose
// actual bytes are irrelevant to a simulation's outcome.
func (s *Suite) ChargeMAC() { s.bill(s.costs.MAC) }

// ChargeVerifyMAC charges the cost of verifying one MAC tag.
func (s *Suite) ChargeVerifyMAC() { s.bill(s.costs.VerifyMAC) }

// ChargeExec charges the cost of applying n transactions to the store.
func (s *Suite) ChargeExec(n int) { s.bill(s.costs.ExecTxn * time.Duration(n)) }

// Costs exposes the suite's cost model.
func (s *Suite) Costs() Costs { return s.costs }
