// Package crypto provides the cryptographic substrate used by ResilientDB:
// ED25519 digital signatures for forwarded messages, AES-CMAC message
// authentication codes for authenticated point-to-point channels (RFC 4493),
// and SHA-256 digests — the same primitive set the paper's implementation
// uses (Section 3, "Cryptography").
//
// Two operating modes are provided. Real mode computes every primitive.
// Fast mode substitutes cheap keyed hashes while charging the calibrated CPU
// cost of the real primitive to the caller's virtual clock; the network
// simulator uses fast mode so geo-scale experiments remain laptop-fast while
// preserving the compute bottlenecks the paper reports.
package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
)

// CMAC implements the AES-CMAC message authentication code from RFC 4493.
type CMAC struct {
	block cipher.Block
	k1    [16]byte
	k2    [16]byte
}

// NewCMAC returns a CMAC keyed with the 16-byte AES-128 key.
func NewCMAC(key []byte) (*CMAC, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	c := &CMAC{block: block}
	var l [16]byte
	block.Encrypt(l[:], l[:])
	c.k1 = shiftSubkey(l)
	c.k2 = shiftSubkey(c.k1)
	return c, nil
}

// shiftSubkey performs the RFC 4493 subkey derivation step: a one-bit left
// shift with a conditional XOR of the constant Rb = 0x87.
func shiftSubkey(in [16]byte) [16]byte {
	var out [16]byte
	carry := byte(0)
	for i := 15; i >= 0; i-- {
		out[i] = in[i]<<1 | carry
		carry = in[i] >> 7
	}
	if carry != 0 {
		out[15] ^= 0x87
	}
	return out
}

// Sum computes the 16-byte CMAC tag of msg.
func (c *CMAC) Sum(msg []byte) [16]byte {
	n := (len(msg) + 15) / 16 // number of blocks
	complete := n > 0 && len(msg)%16 == 0

	var last [16]byte
	if complete {
		copy(last[:], msg[len(msg)-16:])
		for i := range last {
			last[i] ^= c.k1[i]
		}
	} else {
		rem := msg[(max(n, 1)-1)*16:]
		copy(last[:], rem)
		last[len(rem)] = 0x80
		for i := range last {
			last[i] ^= c.k2[i]
		}
	}

	var x [16]byte
	full := len(msg) / 16
	if complete {
		full--
	}
	for b := 0; b < full; b++ {
		for i := range x {
			x[i] ^= msg[b*16+i]
		}
		c.block.Encrypt(x[:], x[:])
	}
	for i := range x {
		x[i] ^= last[i]
	}
	c.block.Encrypt(x[:], x[:])
	return x
}

// Verify reports whether tag is the CMAC of msg, in constant time.
func (c *CMAC) Verify(msg []byte, tag []byte) bool {
	want := c.Sum(msg)
	return len(tag) == 16 && subtle.ConstantTimeCompare(want[:], tag) == 1
}
