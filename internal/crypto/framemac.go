package crypto

import (
	"crypto/subtle"
	"sync"

	"resilientdb/internal/types"
)

// FrameTagSize is the length in bytes of a frame authentication tag
// (AES-CMAC in Real mode, the keyed-hash stand-in in Fast mode — both 16
// bytes).
const FrameTagSize = 16

// FrameMAC authenticates transport frames with the deployment's pairwise
// symmetric keys: the tag over a frame's payload (which embeds the claimed
// sender and destination) is computed under the AES-128 key shared by
// exactly that (sender, destination) pair, so a connection that does not
// hold the claimed sender's key material cannot produce a verifying frame —
// the claimed identity is cryptographically bound to the key, not to
// whatever bytes the socket wrote. It implements transport.FrameAuth.
//
// Key material follows the repository's provisioning convention (see
// Directory): in the permissioned setting pairwise keys are provisioned
// out of band before deployment; here they are derived deterministically so
// every process provisions identical keys without a key-exchange protocol.
//
// A FrameMAC is safe for concurrent use: per-pair CMAC states are built
// lazily under an internal mutex and are immutable once built — the same
// contract Suite documents for its MAC methods.
type FrameMAC struct {
	mode Mode

	mu    sync.Mutex
	cmacs map[[2]types.NodeID]*CMAC
}

// NewFrameMAC returns a frame authenticator for the given mode. Every
// process of a deployment must use the same mode, like the topology.
func NewFrameMAC(mode Mode) *FrameMAC {
	return &FrameMAC{mode: mode, cmacs: make(map[[2]types.NodeID]*CMAC)}
}

// TagSize implements transport.FrameAuth.
func (m *FrameMAC) TagSize() int { return FrameTagSize }

func (m *FrameMAC) cmacFor(a, b types.NodeID) *CMAC {
	if a > b {
		a, b = b, a
	}
	key := [2]types.NodeID{a, b}
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.cmacs[key]
	if c == nil {
		var err error
		c, err = NewCMAC(pairKey(a, b))
		if err != nil {
			panic("crypto: AES key setup: " + err.Error())
		}
		m.cmacs[key] = c
	}
	return c
}

// Tag implements transport.FrameAuth: the authentication tag for a frame
// payload travelling from from to to.
func (m *FrameMAC) Tag(from, to types.NodeID, payload []byte) []byte {
	if m.mode == Real {
		tag := m.cmacFor(from, to).Sum(payload)
		return tag[:]
	}
	return fastTag(from^to, payload)
}

// Verify implements transport.FrameAuth: whether tag authenticates payload
// on the (from, to) channel.
func (m *FrameMAC) Verify(from, to types.NodeID, payload, tag []byte) bool {
	if m.mode == Real {
		return m.cmacFor(from, to).Verify(payload, tag)
	}
	want := fastTag(from^to, payload)
	return len(tag) == len(want) && subtle.ConstantTimeCompare(want, tag) == 1
}
