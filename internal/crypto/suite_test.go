package crypto

import (
	"sync"
	"testing"
	"time"

	"resilientdb/internal/types"
)

func suitePair(t *testing.T, mode Mode, charge func(time.Duration)) (*Suite, *Suite) {
	t.Helper()
	nodes := []types.NodeID{1, 2}
	dir := NewDirectory(mode, nodes)
	return NewSuite(dir, 1, DefaultCosts(), charge),
		NewSuite(dir, 2, DefaultCosts(), charge)
}

func TestSignVerifyBothModes(t *testing.T) {
	for _, mode := range []Mode{Real, Fast} {
		name := map[Mode]string{Real: "real", Fast: "fast"}[mode]
		t.Run(name, func(t *testing.T) {
			a, b := suitePair(t, mode, nil)
			payload := []byte("commit view=3 seq=9")
			sig := a.Sign(payload)
			if !b.Verify(1, payload, sig) {
				t.Fatal("valid signature rejected")
			}
			if b.Verify(2, payload, sig) {
				t.Error("signature attributed to wrong signer accepted")
			}
			if b.Verify(1, []byte("different payload"), sig) {
				t.Error("signature over different payload accepted")
			}
			if b.Verify(1, payload, append([]byte{0}, sig...)) {
				t.Error("mangled signature accepted")
			}
		})
	}
}

func TestMACBothModes(t *testing.T) {
	for _, mode := range []Mode{Real, Fast} {
		name := map[Mode]string{Real: "real", Fast: "fast"}[mode]
		t.Run(name, func(t *testing.T) {
			a, b := suitePair(t, mode, nil)
			payload := []byte("prepare view=1 seq=2")
			tag := a.MAC(2, payload)
			if !b.VerifyMAC(1, payload, tag) {
				t.Fatal("valid MAC rejected")
			}
			if b.VerifyMAC(1, []byte("other"), tag) {
				t.Error("MAC over different payload accepted")
			}
		})
	}
}

func TestChargingAccumulates(t *testing.T) {
	var billed time.Duration
	a, _ := suitePair(t, Fast, func(d time.Duration) { billed += d })
	costs := DefaultCosts()

	a.Sign([]byte("x"))
	if billed != costs.Sign {
		t.Fatalf("after Sign billed %v, want %v", billed, costs.Sign)
	}
	a.Verify(2, []byte("x"), []byte("y"))
	if billed != costs.Sign+costs.Verify {
		t.Fatalf("after Verify billed %v", billed)
	}
	a.ChargeMAC()
	a.ChargeVerifyMAC()
	a.ChargeSign()
	a.ChargeVerify()
	want := 2*costs.Sign + 2*costs.Verify + costs.MAC + costs.VerifyMAC
	if billed != want {
		t.Fatalf("billed %v, want %v", billed, want)
	}
	a.ChargeExec(10)
	want += 10 * costs.ExecTxn
	if billed != want {
		t.Fatalf("after ChargeExec billed %v, want %v", billed, want)
	}
}

func TestHashMatchesTypes(t *testing.T) {
	a, _ := suitePair(t, Fast, nil)
	payload := []byte("ledger block")
	if a.Hash(payload) != types.Hash(payload) {
		t.Error("suite hash differs from types.Hash")
	}
}

func TestFreeCostsBillNothing(t *testing.T) {
	var billed time.Duration
	dir := NewDirectory(Fast, []types.NodeID{1})
	s := NewSuite(dir, 1, FreeCosts(), func(d time.Duration) { billed += d })
	s.Sign([]byte("x"))
	s.ChargeExec(100)
	s.ChargeHash(4096)
	if billed != 0 {
		t.Fatalf("free costs billed %v", billed)
	}
}

func TestDirectoryDeterministicKeys(t *testing.T) {
	d1 := NewDirectory(Real, []types.NodeID{1, 2})
	d2 := NewDirectory(Real, []types.NodeID{1, 2})
	s1 := NewSuite(d1, 1, FreeCosts(), nil)
	s2 := NewSuite(d2, 2, FreeCosts(), nil)
	sig := s1.Sign([]byte("cross-directory"))
	if !s2.Verify(1, []byte("cross-directory"), sig) {
		t.Error("directories with same provisioning disagree on keys")
	}
}

// TestSuiteConcurrentUse exercises the Suite's concurrency contract: many
// goroutines signing, verifying and MACing through one suite (the fabric's
// verify pool does exactly this). Run under -race, it catches regressions in
// the lazily-built CMAC cache.
func TestSuiteConcurrentUse(t *testing.T) {
	for _, mode := range []Mode{Real, Fast} {
		peers := []types.NodeID{1, 2, 3, 4, 5}
		dir := NewDirectory(mode, peers)
		s := NewSuite(dir, 1, FreeCosts(), nil)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				payload := []byte{byte(g), 'p'}
				for i := 0; i < 200; i++ {
					peer := peers[(g+i)%len(peers)]
					tag := s.MAC(peer, payload)
					if !s.VerifyMAC(peer, payload, tag) {
						t.Errorf("mode %v: MAC round-trip failed", mode)
						return
					}
					sig := s.Sign(payload)
					if !s.Verify(1, payload, sig) {
						t.Errorf("mode %v: signature round-trip failed", mode)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}
