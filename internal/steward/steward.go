// Package steward implements the Steward protocol (Amir et al.), the
// hierarchical wide-area BFT baseline of the ResilientDB evaluation. Like
// GeoBFT, Steward groups replicas into clusters (sites); unlike GeoBFT it is
// centralized: one leading site (Oregon in the paper's experiments)
// coordinates the global ordering of every update.
//
// The implementation follows the paper's description and measured profile
// (Sections 1.1, 3 and 4): each site performs local Byzantine agreement to
// certify messages (the original uses threshold signatures; like the
// paper's implementation we omit thresholds and carry n−f individual
// signatures, which every receiving site verifies), the leading site assigns
// global sequence numbers, and sites exchange proposals/accepts through
// their representatives — O(2zn²) local and O(z²) global messages per
// decision (Table 2). The leading site's representative serializes all
// global traffic, which is the bandwidth and compute bottleneck the paper
// measures.
//
// As in the paper, Steward has no usable view-change here: it is excluded
// from the primary-failure experiment (Section 4.3); crash experiments fail
// only non-representative backups.
package steward

import (
	"resilientdb/internal/config"
	"resilientdb/internal/kvstore"
	"resilientdb/internal/ledger"
	"resilientdb/internal/proto"
	"resilientdb/internal/simnet"
	"resilientdb/internal/types"
)

// Request carries a client batch to its site representative.
type Request struct {
	Batch types.Batch
}

func (*Request) MsgType() string { return "steward/request" }

// WireSize implements types.Message.
func (r *Request) WireSize() int { return r.Batch.WireSize() }

// LocalAgree is an intra-site round certifying a payload: the representative
// broadcasts it, members reply with signed acks.
type LocalAgree struct {
	Kind    uint8 // which global step this agreement certifies
	Site    types.ClusterID
	Seq     uint64 // site-local or global sequence, per kind
	Digest  types.Digest
	Batch   types.Batch
	GlobalV uint64
}

func (*LocalAgree) MsgType() string { return "steward/localagree" }

// WireSize implements types.Message.
func (l *LocalAgree) WireSize() int { return types.HeaderBytes + l.Batch.WireSize() }

// LocalAck is a member's signed acknowledgement of a LocalAgree round.
type LocalAck struct {
	Kind    uint8
	Site    types.ClusterID
	Seq     uint64
	Digest  types.Digest
	Replica types.NodeID
	Sig     []byte
}

func (*LocalAck) MsgType() string { return "steward/localack" }

// WireSize implements types.Message.
func (*LocalAck) WireSize() int { return types.ControlBytes }

// Agreement kinds.
const (
	kindForward uint8 = iota // site certifies a client update for forwarding
	kindPropose              // leading site certifies a global assignment
	kindAccept               // site certifies acceptance of a proposal
)

func ackPayload(kind uint8, site types.ClusterID, seq uint64, digest types.Digest) []byte {
	enc := types.NewEncoder(64)
	enc.String("steward/ACK")
	enc.U8(kind)
	enc.I32(int32(site))
	enc.U64(seq)
	enc.Digest(digest)
	return enc.Bytes()
}

// SiteCert is a site-certified payload: a batch plus n−f member signatures
// (the stand-in for Steward's threshold signature).
type SiteCert struct {
	Kind    uint8
	Site    types.ClusterID
	Seq     uint64
	Digest  types.Digest
	Batch   types.Batch
	Signers []types.NodeID
	Sigs    [][]byte
}

func (*SiteCert) MsgType() string { return "steward/sitecert" }

// WireSize implements types.Message.
func (s *SiteCert) WireSize() int {
	return types.HeaderBytes + s.Batch.WireSize() + len(s.Sigs)*types.SigBytes
}

// Config parameterizes a Steward replica.
type Config struct {
	Topo    config.Topology
	Self    types.NodeID
	Records int
	// Window is the number of concurrently ordered global sequences the
	// leading site allows (Steward's conservative pipeline).
	Window int
}

// agreeState tracks one intra-site agreement round at its representative.
type agreeState struct {
	digest types.Digest
	batch  types.Batch
	acks   map[types.NodeID][]byte
	done   bool
}

// Replica is a Steward replica.
type Replica struct {
	cfg       Config
	env       proto.Env
	myCluster int
	members   []types.NodeID
	isRep     bool

	store  *kvstore.Store
	ledger *ledger.Ledger

	// representative state
	queue    []types.Batch // site-certified updates awaiting forwarding
	agrees   map[string]*agreeState
	localSeq uint64

	// leading-site representative state
	pendingUpd []SiteCert
	nextGlobal uint64
	inFlight   int

	// global ordering state (all replicas)
	proposals map[uint64]*SiteCert                // gseq → proposal
	accepts   map[uint64]map[types.ClusterID]bool // gseq → accepting sites
	executed  uint64
	execTxns  uint64
}

// NewReplica constructs a replica; call Init before use.
func NewReplica(cfg Config) *Replica {
	if cfg.Window == 0 {
		cfg.Window = 8
	}
	return &Replica{cfg: cfg}
}

// Init implements simnet.Handler.
func (r *Replica) Init(env *simnet.Env) { r.InitEnv(proto.WrapSim(env)) }

// InitEnv wires the replica to an environment.
func (r *Replica) InitEnv(env proto.Env) {
	r.env = env
	r.myCluster = int(r.cfg.Topo.ClusterOf(r.cfg.Self))
	r.members = r.cfg.Topo.ClusterMembers(r.myCluster)
	r.isRep = r.cfg.Topo.LocalIndex(r.cfg.Self) == 0
	r.store = kvstore.New(r.cfg.Records)
	r.ledger = ledger.New()
	r.agrees = make(map[string]*agreeState)
	r.proposals = make(map[uint64]*SiteCert)
	r.accepts = make(map[uint64]map[types.ClusterID]bool)
}

// Ledger exposes the replica's chain.
func (r *Replica) Ledger() *ledger.Ledger { return r.ledger }

// Store exposes the replica's table.
func (r *Replica) Store() *kvstore.Store { return r.store }

// Executed returns the number of globally executed updates.
func (r *Replica) Executed() uint64 { return r.executed }

func (r *Replica) quorum() int { return len(r.members) - r.cfg.Topo.F() }

func (r *Replica) repOf(site int) types.NodeID { return r.cfg.Topo.ReplicaID(site, 0) }

func (r *Replica) leadingSite() int { return 0 }

// Receive implements simnet.Handler.
func (r *Replica) Receive(from types.NodeID, msg types.Message) {
	switch m := msg.(type) {
	case *Request:
		r.env.Suite().ChargeVerify()
		if !r.isRep {
			r.env.Suite().ChargeMAC()
			r.env.Send(r.repOf(r.myCluster), m)
			return
		}
		r.localSeq++
		r.startAgreement(kindForward, r.localSeq, m.Batch)
	case *LocalAgree:
		r.env.Suite().ChargeVerifyMAC()
		r.onLocalAgree(from, m)
	case *LocalAck:
		r.env.Suite().ChargeVerifyMAC()
		r.onLocalAck(from, m)
	case *SiteCert:
		r.env.Suite().ChargeVerifyMAC()
		r.onSiteCert(from, m)
	}
}

func agreeKeyOf(kind uint8, seq uint64) string {
	return string(rune(kind)) + "/" + string(types.U64Bytes(seq))
}

// startAgreement runs one intra-site certification round (representative
// side).
func (r *Replica) startAgreement(kind uint8, seq uint64, batch types.Batch) {
	key := agreeKeyOf(kind, seq)
	if r.agrees[key] != nil {
		return
	}
	d := batch.Digest()
	st := &agreeState{digest: d, batch: batch, acks: make(map[types.NodeID][]byte)}
	r.agrees[key] = st
	m := &LocalAgree{Kind: kind, Site: types.ClusterID(r.myCluster), Seq: seq, Digest: d, Batch: batch}
	for _, peer := range r.members {
		if peer != r.cfg.Self {
			r.env.Suite().ChargeMAC()
			r.env.Send(peer, m)
		}
	}
	// Own signed ack.
	sig := r.env.Suite().Sign(ackPayload(kind, types.ClusterID(r.myCluster), seq, d))
	st.acks[r.cfg.Self] = sig
	r.maybeCertified(kind, seq, st)
}

// onLocalAgree runs at site members: sign and return an ack; for proposals
// and accepts also record the payload for execution. Kind values ≥ 10 are
// the representative's local distribution of remote sites' accepts (no ack
// needed).
func (r *Replica) onLocalAgree(from types.NodeID, m *LocalAgree) {
	if from != r.repOf(r.myCluster) {
		return
	}
	if m.Kind >= 10 {
		r.recordAccept(m.Seq, m.Site, m.Batch, m.Digest)
		return
	}
	if int(m.Site) != r.myCluster {
		return
	}
	switch m.Kind {
	case kindPropose:
		r.recordProposal(m.Seq, m.Batch, m.Digest)
	case kindAccept:
		// Our own site is accepting gseq m.Seq.
		r.recordAccept(m.Seq, m.Site, m.Batch, m.Digest)
	}
	sig := r.env.Suite().Sign(ackPayload(m.Kind, m.Site, m.Seq, m.Digest))
	r.env.Suite().ChargeMAC()
	r.env.Send(from, &LocalAck{Kind: m.Kind, Site: m.Site, Seq: m.Seq,
		Digest: m.Digest, Replica: r.cfg.Self, Sig: sig})
}

func (r *Replica) onLocalAck(from types.NodeID, m *LocalAck) {
	if !r.isRep || int(m.Site) != r.myCluster || m.Replica != from {
		return
	}
	key := agreeKeyOf(m.Kind, m.Seq)
	st := r.agrees[key]
	if st == nil || st.done || st.digest != m.Digest || st.acks[from] != nil {
		return
	}
	if !r.env.Suite().Verify(from, ackPayload(m.Kind, m.Site, m.Seq, m.Digest), m.Sig) {
		return
	}
	st.acks[from] = m.Sig
	r.maybeCertified(m.Kind, m.Seq, st)
}

// maybeCertified fires when the site reached n−f acks: the representative
// assembles the site certificate and advances the global protocol.
func (r *Replica) maybeCertified(kind uint8, seq uint64, st *agreeState) {
	if st.done || len(st.acks) < r.quorum() {
		return
	}
	st.done = true
	cert := &SiteCert{Kind: kind, Site: types.ClusterID(r.myCluster), Seq: seq,
		Digest: st.digest, Batch: st.batch}
	for id, sig := range st.acks {
		cert.Signers = append(cert.Signers, id)
		cert.Sigs = append(cert.Sigs, sig)
	}

	switch kind {
	case kindForward:
		// Send the certified update to the leading site's representative.
		r.env.Suite().ChargeMAC()
		r.env.Send(r.repOf(r.leadingSite()), cert)
	case kindPropose:
		// Leading site: send the certified proposal to every site's rep.
		for site := 0; site < r.cfg.Topo.Clusters; site++ {
			if site != r.myCluster {
				r.env.Suite().ChargeMAC()
				r.env.Send(r.repOf(site), cert)
			}
		}
		r.onSiteCert(r.cfg.Self, cert)
	case kindAccept:
		// Broadcast the site's accept to every other representative
		// (the O(z²) exchange).
		for site := 0; site < r.cfg.Topo.Clusters; site++ {
			if site != r.myCluster {
				r.env.Suite().ChargeMAC()
				r.env.Send(r.repOf(site), cert)
			}
		}
		r.onSiteCert(r.cfg.Self, cert)
	}
}

// verifySiteCert checks a certificate's n−f signatures against the signing
// site's membership (the compute cost of omitting threshold signatures).
func (r *Replica) verifySiteCert(m *SiteCert) bool {
	if len(m.Signers) < r.quorum() || len(m.Signers) != len(m.Sigs) {
		return false
	}
	site := int(m.Site)
	if site < 0 || site >= r.cfg.Topo.Clusters {
		return false
	}
	member := make(map[types.NodeID]bool)
	for _, id := range r.cfg.Topo.ClusterMembers(site) {
		member[id] = true
	}
	payload := ackPayload(m.Kind, m.Site, m.Seq, m.Digest)
	seen := make(map[types.NodeID]bool)
	for i, id := range m.Signers {
		if !member[id] || seen[id] {
			return false
		}
		seen[id] = true
		if !r.env.Suite().Verify(id, payload, m.Sigs[i]) {
			return false
		}
	}
	return m.Batch.Digest() == m.Digest
}

func (r *Replica) onSiteCert(from types.NodeID, m *SiteCert) {
	if !r.isRep {
		return
	}
	if from != r.cfg.Self && !r.verifySiteCert(m) {
		return
	}
	switch m.Kind {
	case kindForward:
		// Leading-site rep: queue the update for global assignment.
		if r.myCluster != r.leadingSite() {
			return
		}
		r.pendingUpd = append(r.pendingUpd, *m)
		r.tryAssign()
	case kindPropose:
		// A certified global proposal: run the local accept agreement (every
		// site, the leading one included, accepts this way).
		r.recordProposal(m.Seq, m.Batch, m.Digest)
		r.startAgreement(kindAccept, m.Seq, m.Batch)
	case kindAccept:
		// An accept from another site: distribute locally and count.
		r.recordAccept(m.Seq, m.Site, m.Batch, m.Digest)
		for _, peer := range r.members {
			if peer != r.cfg.Self {
				r.env.Suite().ChargeMAC()
				r.env.Send(peer, &LocalAgree{Kind: kindAccept + 10, Site: m.Site,
					Seq: m.Seq, Digest: m.Digest, Batch: m.Batch})
			}
		}
	}
}

// tryAssign lets the leading site's representative assign global sequence
// numbers within its window.
func (r *Replica) tryAssign() {
	for len(r.pendingUpd) > 0 && r.inFlight < r.cfg.Window {
		upd := r.pendingUpd[0]
		r.pendingUpd = r.pendingUpd[1:]
		r.nextGlobal++
		r.inFlight++
		r.startAgreement(kindPropose, r.nextGlobal, upd.Batch)
	}
}

// recordProposal stores the batch proposed at gseq.
func (r *Replica) recordProposal(gseq uint64, batch types.Batch, digest types.Digest) {
	if gseq <= r.executed {
		return
	}
	if r.proposals[gseq] == nil {
		r.proposals[gseq] = &SiteCert{Seq: gseq, Batch: batch, Digest: digest}
		r.tryExecute()
	}
}

// recordAccept counts accepting sites for gseq; a majority of sites decides.
func (r *Replica) recordAccept(gseq uint64, site types.ClusterID, batch types.Batch, digest types.Digest) {
	if gseq <= r.executed {
		return
	}
	r.recordProposal(gseq, batch, digest)
	set := r.accepts[gseq]
	if set == nil {
		set = make(map[types.ClusterID]bool)
		r.accepts[gseq] = set
	}
	set[site] = true
	r.tryExecute()
}

// majority of sites (the leading site's proposal counts as its accept).
func (r *Replica) siteMajority() int { return r.cfg.Topo.Clusters/2 + 1 }

func (r *Replica) tryExecute() {
	for {
		p := r.proposals[r.executed+1]
		if p == nil {
			return
		}
		if r.cfg.Topo.Clusters > 1 && len(r.accepts[r.executed+1]) < r.siteMajority() {
			return
		}
		r.executed++
		batch := p.Batch
		r.env.Suite().ChargeExec(batch.Len())
		r.store.ApplyBatch(&batch)
		// Steward has a single global sequence; blocks carry no site tag.
		r.ledger.Append(r.executed, 0, batch, p.Digest)
		r.execTxns += uint64(batch.Len())
		delete(r.proposals, r.executed)
		delete(r.accepts, r.executed)

		// Local clients are informed by their own site.
		cluster := int(batch.Client-types.ClientIDBase) % r.cfg.Topo.Clusters
		if batch.Client.IsClient() && cluster == r.myCluster {
			r.env.Suite().ChargeMAC()
			r.env.Send(batch.Client, &proto.Reply{
				Client: batch.Client, ClientSeq: batch.Seq,
				Replica: r.cfg.Self, TxnCount: batch.Len(), Result: p.Digest,
			})
		}
		if r.isRep && r.myCluster == r.leadingSite() {
			r.inFlight--
			r.tryAssign()
		}
	}
}
