package steward

import (
	"resilientdb/internal/types"
)

// Wire codec for the Steward baseline's messages, registered with the
// message-type registry in internal/types.

// EncodeBody implements types.WireMessage.
func (r *Request) EncodeBody(enc *types.Encoder) {
	r.Batch.Encode(enc)
}

func decodeRequest(dec *types.Decoder) types.Message {
	return &Request{Batch: types.DecodeBatch(dec)}
}

// EncodeBody implements types.WireMessage.
func (l *LocalAgree) EncodeBody(enc *types.Encoder) {
	enc.U8(l.Kind)
	enc.I32(int32(l.Site))
	enc.U64(l.Seq)
	enc.Digest(l.Digest)
	l.Batch.Encode(enc)
	enc.U64(l.GlobalV)
}

func decodeLocalAgree(dec *types.Decoder) types.Message {
	l := &LocalAgree{}
	l.Kind = dec.U8()
	l.Site = types.ClusterID(dec.I32())
	l.Seq = dec.U64()
	l.Digest = dec.Digest()
	l.Batch = types.DecodeBatch(dec)
	l.GlobalV = dec.U64()
	return l
}

// EncodeBody implements types.WireMessage.
func (l *LocalAck) EncodeBody(enc *types.Encoder) {
	enc.U8(l.Kind)
	enc.I32(int32(l.Site))
	enc.U64(l.Seq)
	enc.Digest(l.Digest)
	enc.I32(int32(l.Replica))
	enc.BytesN(l.Sig)
}

func decodeLocalAck(dec *types.Decoder) types.Message {
	l := &LocalAck{}
	l.Kind = dec.U8()
	l.Site = types.ClusterID(dec.I32())
	l.Seq = dec.U64()
	l.Digest = dec.Digest()
	l.Replica = types.NodeID(dec.I32())
	l.Sig = dec.BytesN()
	return l
}

// EncodeBody implements types.WireMessage.
func (s *SiteCert) EncodeBody(enc *types.Encoder) {
	enc.U8(s.Kind)
	enc.I32(int32(s.Site))
	enc.U64(s.Seq)
	enc.Digest(s.Digest)
	s.Batch.Encode(enc)
	enc.NodeIDs(s.Signers)
	enc.SigList(s.Sigs)
}

func decodeSiteCert(dec *types.Decoder) types.Message {
	s := &SiteCert{}
	s.Kind = dec.U8()
	s.Site = types.ClusterID(dec.I32())
	s.Seq = dec.U64()
	s.Digest = dec.Digest()
	s.Batch = types.DecodeBatch(dec)
	s.Signers = dec.NodeIDs()
	s.Sigs = dec.SigList()
	return s
}

func init() {
	b := func() types.Batch {
		return types.Batch{Client: types.ClientIDBase + 1, Seq: 6, Txns: []types.Transaction{{Key: 2, Value: 7}}}
	}
	types.RegisterMessage((*Request)(nil).MsgType(), decodeRequest, func() []types.Message {
		return []types.Message{&Request{}, &Request{Batch: b()}}
	})
	types.RegisterMessage((*LocalAgree)(nil).MsgType(), decodeLocalAgree, func() []types.Message {
		return []types.Message{
			&LocalAgree{},
			&LocalAgree{Kind: kindPropose, Site: 1, Seq: 3, Digest: types.Hash([]byte("a")), Batch: b(), GlobalV: 2},
		}
	})
	types.RegisterMessage((*LocalAck)(nil).MsgType(), decodeLocalAck, func() []types.Message {
		return []types.Message{
			&LocalAck{},
			&LocalAck{Kind: kindAccept, Site: 0, Seq: 3, Digest: types.Hash([]byte("k")), Replica: 2, Sig: []byte{1}},
		}
	})
	types.RegisterMessage((*SiteCert)(nil).MsgType(), decodeSiteCert, func() []types.Message {
		return []types.Message{
			&SiteCert{},
			&SiteCert{
				Kind:    kindForward,
				Site:    1,
				Seq:     3,
				Digest:  types.Hash([]byte("c")),
				Batch:   b(),
				Signers: []types.NodeID{4, 5, 6},
				Sigs:    [][]byte{{1}, {2}, {3}},
			},
		}
	})
}
