package steward_test

import (
	"testing"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/proto"
	"resilientdb/internal/simnet"
	"resilientdb/internal/steward"
	"resilientdb/internal/types"
	"resilientdb/internal/ycsb"
)

// stClient submits to its site representative and waits for f+1 matching
// local replies.
type stClient struct {
	topo      config.Topology
	cluster   int
	f         int
	total     int
	window    int
	batchSize int

	env       *simnet.Env
	wl        *ycsb.Workload
	nextSeq   uint64
	acks      map[uint64]map[types.NodeID]bool
	done      map[uint64]bool
	completed int
}

func (c *stClient) Init(env *simnet.Env) {
	c.env = env
	c.wl = ycsb.NewWorkload(500, ycsb.DefaultTheta, int64(env.ID()))
	c.acks = make(map[uint64]map[types.NodeID]bool)
	c.done = make(map[uint64]bool)
	for i := 0; i < c.window && int(c.nextSeq) < c.total; i++ {
		c.submit()
	}
}

func (c *stClient) submit() {
	c.nextSeq++
	b := c.wl.MakeBatch(c.env.ID(), c.nextSeq, c.batchSize)
	c.env.Suite().ChargeSign()
	c.env.Send(c.topo.ReplicaID(c.cluster, 0), &steward.Request{Batch: b})
}

func (c *stClient) Receive(from types.NodeID, msg types.Message) {
	rep, ok := msg.(*proto.Reply)
	if !ok || c.done[rep.ClientSeq] {
		return
	}
	if int(c.topo.ClusterOf(from)) != c.cluster {
		return
	}
	set := c.acks[rep.ClientSeq]
	if set == nil {
		set = make(map[types.NodeID]bool)
		c.acks[rep.ClientSeq] = set
	}
	set[from] = true
	if len(set) >= c.f+1 {
		c.done[rep.ClientSeq] = true
		c.completed++
		if int(c.nextSeq) < c.total {
			c.submit()
		}
	}
}

func deploy(t *testing.T, z, n, total int, seed int64) (*simnet.Network, config.Topology, map[types.NodeID]*steward.Replica, []*stClient) {
	t.Helper()
	topo := config.NewTopology(z, n)
	net := simnet.New(simnet.Options{Profile: config.GoogleCloudProfile(z), Seed: seed})
	reps := make(map[types.NodeID]*steward.Replica)
	for c := 0; c < z; c++ {
		for i := 0; i < n; i++ {
			id := topo.ReplicaID(c, i)
			rep := steward.NewReplica(steward.Config{Topo: topo, Self: id, Records: 500})
			reps[id] = rep
			net.AddNode(id, c, rep)
		}
	}
	var cls []*stClient
	for c := 0; c < z; c++ {
		cl := &stClient{topo: topo, cluster: c, f: topo.F(),
			total: total, window: 2, batchSize: 10}
		cls = append(cls, cl)
		net.AddNode(config.ClientID(c), c, cl)
	}
	return net, topo, reps, cls
}

func TestTwoSitesNormalCase(t *testing.T) {
	net, topo, reps, cls := deploy(t, 2, 4, 8, 3)
	net.RunUntil(240 * time.Second)
	for i, c := range cls {
		if c.completed != c.total {
			t.Errorf("site %d client completed %d/%d", i, c.completed, c.total)
		}
	}
	ref := reps[topo.ReplicaID(0, 0)]
	for _, id := range topo.AllReplicas() {
		r := reps[id]
		if r.Ledger().Head() != ref.Ledger().Head() || r.Ledger().Height() != ref.Ledger().Height() {
			t.Errorf("%v diverged (h=%d vs %d)", id, r.Ledger().Height(), ref.Ledger().Height())
		}
		if r.Store().Digest() != ref.Store().Digest() {
			t.Errorf("%v store diverged", id)
		}
	}
}

func TestFourSites(t *testing.T) {
	net, topo, reps, cls := deploy(t, 4, 4, 5, 7)
	net.RunUntil(300 * time.Second)
	for i, c := range cls {
		if c.completed != c.total {
			t.Errorf("site %d client completed %d/%d", i, c.completed, c.total)
		}
	}
	ref := reps[topo.ReplicaID(0, 0)]
	for _, id := range topo.AllReplicas() {
		if reps[id].Ledger().Head() != ref.Ledger().Head() {
			t.Errorf("%v diverged", id)
		}
	}
}

func TestBackupFailures(t *testing.T) {
	// f non-representative backups per site crash; Steward must still make
	// progress (its quorums are n−f).
	net, topo, reps, cls := deploy(t, 2, 4, 6, 11)
	for c := 0; c < 2; c++ {
		net.Crash(topo.ReplicaID(c, 3))
	}
	net.RunUntil(300 * time.Second)
	for i, c := range cls {
		if c.completed != c.total {
			t.Errorf("site %d client completed %d/%d", i, c.completed, c.total)
		}
	}
	ref := reps[topo.ReplicaID(0, 0)]
	for _, id := range topo.AllReplicas() {
		if topo.LocalIndex(id) == 3 {
			continue
		}
		if reps[id].Ledger().Head() != ref.Ledger().Head() {
			t.Errorf("%v diverged", id)
		}
	}
}

func TestSingleSite(t *testing.T) {
	net, topo, reps, cls := deploy(t, 1, 4, 8, 13)
	net.RunUntil(120 * time.Second)
	if cls[0].completed != cls[0].total {
		t.Fatalf("completed %d/%d", cls[0].completed, cls[0].total)
	}
	ref := reps[topo.ReplicaID(0, 0)]
	if ref.Executed() < 8 {
		t.Errorf("executed %d", ref.Executed())
	}
}
