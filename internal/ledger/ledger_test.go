package ledger

import (
	"testing"
	"testing/quick"

	"resilientdb/internal/types"
)

func batch(client int, seq uint64, n int) types.Batch {
	b := types.Batch{Client: types.ClientIDBase + types.NodeID(client), Seq: seq}
	for i := 0; i < n; i++ {
		b.Txns = append(b.Txns, types.Transaction{Key: uint64(i), Value: seq})
	}
	return b
}

func TestAppendAndVerify(t *testing.T) {
	l := New()
	for r := uint64(1); r <= 5; r++ {
		for c := types.ClusterID(0); c < 3; c++ {
			l.Append(r, c, batch(int(c), r, 4), types.Hash([]byte{byte(r)}))
		}
	}
	if l.Height() != 15 {
		t.Fatalf("height = %d", l.Height())
	}
	if err := l.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if l.Block(1).Prev != types.ZeroDigest {
		t.Error("first block must have zero prev")
	}
	if l.Block(2).Prev != l.Block(1).Hash {
		t.Error("prev link broken")
	}
	if l.Block(0) != nil || l.Block(16) != nil {
		t.Error("out-of-range Block must return nil")
	}
}

func TestTamperDetection(t *testing.T) {
	l := New()
	for r := uint64(1); r <= 4; r++ {
		l.Append(r, 0, batch(0, r, 3), types.ZeroDigest)
	}
	// Tamper with a middle block's transaction.
	l.blocks[1].Batch.Txns[0].Value = 99999
	if err := l.Verify(); err == nil {
		t.Error("tampered batch not detected")
	}
	// Restore, then tamper with the chain linkage.
	l.blocks[1].Batch.Txns[0].Value = 2
	l.blocks[2].Prev = types.Hash([]byte("bogus"))
	if err := l.Verify(); err == nil {
		t.Error("broken prev link not detected")
	}
}

func TestPrefixOf(t *testing.T) {
	a, b := New(), New()
	for r := uint64(1); r <= 3; r++ {
		a.Append(r, 0, batch(0, r, 2), types.ZeroDigest)
		b.Append(r, 0, batch(0, r, 2), types.ZeroDigest)
	}
	b.Append(4, 0, batch(0, 4, 2), types.ZeroDigest)
	if !a.PrefixOf(b) {
		t.Error("a should be a prefix of b")
	}
	if b.PrefixOf(a) {
		t.Error("b is longer than a")
	}
	c := New()
	c.Append(1, 0, batch(0, 99, 2), types.ZeroDigest)
	if c.PrefixOf(b) {
		t.Error("divergent chains must not be prefixes")
	}
}

// Property: identical append sequences yield identical heads; any
// difference in any batch yields different heads.
func TestHeadDeterminismProperty(t *testing.T) {
	f := func(seqs []uint64) bool {
		if len(seqs) == 0 || len(seqs) > 50 {
			return true
		}
		a, b := New(), New()
		for i, s := range seqs {
			a.Append(uint64(i+1), 0, batch(0, s, 2), types.ZeroDigest)
			b.Append(uint64(i+1), 0, batch(0, s, 2), types.ZeroDigest)
		}
		return a.Head() == b.Head() && a.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCertificateExcludedFromChainIdentity(t *testing.T) {
	// Different replicas attach certificates with different signer subsets;
	// the chain identity must not depend on them.
	a, b := New(), New()
	a.Append(1, 0, batch(0, 1, 2), types.Hash([]byte("cert-from-replica-a")))
	b.Append(1, 0, batch(0, 1, 2), types.Hash([]byte("cert-from-replica-b")))
	if a.Head() != b.Head() {
		t.Error("certificate digest leaked into chain identity")
	}
}
