// Package ledger implements the blockchain at the heart of the ResilientDB
// fabric: an immutable append-only chain in which the i-th block holds the
// i-th executed request batch together with the commit certificate that
// proves consensus on it (Section 3, "The ledger"). Each replica maintains
// a full copy; tampering is detectable by recomputing the hash chain.
package ledger

import (
	"fmt"
	"sync"

	"resilientdb/internal/types"
)

// Certificate is the consensus evidence attached to a block: proof that the
// block's batch was agreed at its round. The concrete type is the protocol's
// commit certificate (pbft.Certificate); the ledger treats it opaquely so it
// can sit below every protocol package. Catch-up re-verifies certificates
// through the verify callback of Import, supplied by the protocol layer.
type Certificate interface {
	// CertDigest commits to the certificate contents.
	CertDigest() types.Digest
	// WireSize is the modelled serialized size (types.Message convention).
	WireSize() int
}

// Block is one entry of the chain. In GeoBFT each round ρ appends z blocks,
// one per cluster, in the deterministic execution order.
type Block struct {
	// Height is the block's position in the chain, starting at 1.
	Height uint64
	// Round is the consensus round (sequence number) that produced it.
	Round uint64
	// Cluster is the cluster whose request the block holds.
	Cluster types.ClusterID
	// Batch is the executed request batch.
	Batch types.Batch
	// BatchDigest commits to the batch contents.
	BatchDigest types.Digest
	// CertDigest commits to the commit certificate proving consensus.
	CertDigest types.Digest
	// Cert is the commit certificate itself, retained so the chain can be
	// served to recovering replicas (Export/Import), which re-verify it.
	// Blocks appended with Append (digest only) carry no certificate and
	// cannot be exported for catch-up.
	Cert Certificate
	// Prev is the hash of the previous block (zero for the first block).
	// It travels on the catch-up wire and in the disk store, and Import
	// requires it to match the chain being extended — a range that splices
	// two histories is rejected at the boundary even when every certificate
	// it carries is individually valid.
	Prev types.Digest
	// Hash is the block's own hash over all fields above (excluding the
	// certificate — see blockHash). Like Prev it travels with the block and
	// Import requires it to match the recomputed value.
	Hash types.Digest
}

// Seal completes a hand-built block's linkage fields: Prev is set to the
// given predecessor hash and Hash recomputed over the contents. Chains built
// through Append/AppendCertified/Import never need it — those paths derive
// linkage as blocks enter the chain. It exists for code that constructs
// blocks outside a ledger (the byzantine adversary harness forging catch-up
// ranges, tests building spliced histories) so that Import's deeper checks —
// certificate verification, layout invariants — decide their fate instead of
// a trivially detectable zeroed linkage field.
func (b *Block) Seal(prev types.Digest) {
	b.Prev = prev
	b.Hash = blockHash(b)
}

// blockHash covers the ordered content of the chain. The commit certificate
// is deliberately excluded: it is attached evidence whose signer subset may
// legitimately differ between replicas (any n−f of the commit signatures
// prove the same decision), so including it would make identical histories
// hash differently.
func blockHash(b *Block) types.Digest {
	enc := types.NewEncoder(128)
	enc.U64(b.Height)
	enc.U64(b.Round)
	enc.I32(int32(b.Cluster))
	enc.Digest(b.BatchDigest)
	enc.Digest(b.Prev)
	return types.Hash(enc.Bytes())
}

// Store is a durable backend for the chain. When one is attached
// (SetStore), every certified block the ledger accepts — whether appended by
// consensus execution (AppendCertified) or by catch-up (Import) — is handed
// to the store before the ledger operation returns, so the on-disk prefix
// never lags the in-memory chain by more than the in-flight call. The
// production implementation is the segmented append-only file store in
// internal/ledger/disk; the ledger treats the store as write-only (reading
// it back is the bootstrap path in internal/fabric, which re-verifies every
// recovered block before this ledger ever sees it).
type Store interface {
	// Append persists one certified block at its height. Calls arrive in
	// strict height order, under the ledger's lock.
	Append(b *Block) error
}

// BatchStore is an optional Store extension for multi-block persistence:
// Import hands a whole verified range over in one call, letting the backend
// amortize a single fsync across the batch instead of syncing per block —
// recovery imports arrive in 64-block catch-up chunks, and one fsync per
// chunk gives the same crash guarantee (a machine crash mid-import already
// only ever costs a re-fetchable suffix) at a fraction of the cost.
type BatchStore interface {
	Store
	// AppendBatch persists the blocks in order and makes them durable as
	// one unit.
	AppendBatch(blocks []*Block) error
}

// Ledger is one replica's copy of the chain. Appends come from the replica's
// single-threaded executor; reads (Height, Head, Block, Verify, PrefixOf) are
// guarded by an internal lock so monitoring code can inspect the chain while
// the fabric is running.
type Ledger struct {
	mu     sync.RWMutex
	blocks []*Block

	// base is the height of the last block below the retained suffix: the
	// chain in memory holds heights base+1 … base+len(blocks). A fresh
	// ledger has base 0 (full history from height 1); a ledger anchored on a
	// verified checkpoint snapshot (AnchorSnapshot) or trimmed by checkpoint
	// GC (Prune) starts later, with baseHash standing in for the hash of the
	// block at height base so the chain's linkage stays verifiable.
	base     uint64
	baseHash types.Digest

	// store, when non-nil, receives every certified block. The first
	// persistence failure detaches it and is retained in storeErr:
	// consensus must not halt because a disk filled, but the gap must be
	// observable (StoreErr) rather than silent.
	store    Store
	storeErr error
}

// New returns an empty ledger.
func New() *Ledger { return &Ledger{} }

// AnchorStore is an optional Store extension for snapshot-anchored chains:
// Reanchor discards every persisted block and re-bases the store so the next
// Append lands at base+1 — the durable mirror of AnchorSnapshot.
type AnchorStore interface {
	Store
	// Reanchor discards every persisted block and re-bases the empty store
	// at base, durably: a reopened store demands base+1 as its first height.
	Reanchor(base uint64) error
}

// AnchorSnapshot anchors the ledger on a verified checkpoint: the chain
// logically begins after height (whose block hash is hash), and the next
// accepted block must be height+1 with Prev == hash. It is the state-transfer
// entry point — callers must have verified the snapshot (commit certificate,
// state hash, manifest quorum) before anchoring. A chain that lies wholly
// below the checkpoint is discarded (its every block is covered by the
// verified snapshot state); a chain reaching the checkpoint or past it must
// not be anchored — it already holds what the snapshot would replace. An
// attached store is re-based alongside when it supports Reanchor, and
// detached (with StoreErr set) when it does not or the re-base fails, so
// disk and chain can never disagree about where history starts.
func (l *Ledger) AnchorSnapshot(height uint64, hash types.Digest) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if height == 0 {
		return fmt.Errorf("ledger: anchor: height must be positive")
	}
	if head := l.base + uint64(len(l.blocks)); head >= height {
		return fmt.Errorf("ledger: anchor at %d would not extend the chain (height %d)", height, head)
	}
	l.blocks = nil
	l.base, l.baseHash = height, hash
	if l.store != nil {
		as, ok := l.store.(AnchorStore)
		var err error
		if !ok {
			err = fmt.Errorf("ledger: store cannot re-anchor at %d; store detached", height)
		} else {
			err = as.Reanchor(height)
		}
		if err != nil {
			l.storeErr = err
			l.store = nil
		}
	}
	return nil
}

// Base returns the height of the last block below the retained suffix (0 for
// a full-history ledger). Blocks at or below Base are no longer served.
func (l *Ledger) Base() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.base
}

// Prune drops every retained block at or below height, advancing the base —
// checkpoint GC for the in-memory chain, mirroring the segment GC in
// ledger/disk. Pruning at or past the head is rejected (the tip must remain),
// as is pruning below the current base (a no-op is fine). The pruned blocks'
// linkage is preserved through the new baseHash.
func (l *Ledger) Prune(height uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if height <= l.base {
		return nil
	}
	if height >= l.base+uint64(len(l.blocks)) {
		return fmt.Errorf("ledger: prune %d would drop the head (height %d)", height, l.base+uint64(len(l.blocks)))
	}
	keep := height - l.base
	l.baseHash = l.blocks[keep-1].Hash
	l.blocks = append([]*Block(nil), l.blocks[keep:]...)
	l.base = height
	return nil
}

// SetStore attaches a durable backend. Blocks already in the chain are NOT
// replayed into it — attach the store before appending, or after importing
// exactly the prefix the store already holds (the bootstrap path in
// internal/fabric does the latter, truncating the store to the accepted
// prefix first).
func (l *Ledger) SetStore(s Store) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.store = s
	l.storeErr = nil
}

// StoreErr returns the persistence failure that detached the durable
// backend, or nil while persistence is healthy (or absent).
func (l *Ledger) StoreErr() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.storeErr
}

// NoteStoreFailure records a durable-backend failure observed outside the
// ledger's own append path — the runtime could not open, repair, or attach
// the node's store — detaching any attached store so StoreErr surfaces the
// durability gap through the same channel as an append failure. A nil err
// is a no-op.
func (l *Ledger) NoteStoreFailure(err error) {
	if err == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.storeErr == nil {
		l.storeErr = err
	}
	l.store = nil
}

// persist hands one certified block to the attached store. Called with mu
// held. A block without a certificate cannot be persisted — it could never
// be re-verified at bootstrap — and since the store requires contiguous
// heights, one such block ends durability for the whole chain: the store
// detaches immediately with an explanatory StoreErr rather than failing
// later with a confusing height mismatch. (The GeoBFT execution path only
// ever appends certified blocks, so this fires only on misuse.)
func (l *Ledger) persist(b *Block) {
	if l.store == nil {
		return
	}
	if b.Cert == nil {
		l.storeErr = fmt.Errorf("ledger: block %d has no certificate and cannot be persisted; store detached", b.Height)
		l.store = nil
		return
	}
	if err := l.store.Append(b); err != nil {
		l.storeErr = err
		l.store = nil
	}
}

// Append adds the next block for (round, cluster, batch, certDigest) and
// returns it.
func (l *Ledger) Append(round uint64, cluster types.ClusterID, batch types.Batch, certDigest types.Digest) *Block {
	return l.append(round, cluster, batch, certDigest, nil)
}

// AppendCertified adds the next block together with the commit certificate
// proving consensus on it, so the chain can later serve catch-up requests
// from recovering replicas.
func (l *Ledger) AppendCertified(round uint64, cluster types.ClusterID, batch types.Batch, cert Certificate) *Block {
	return l.append(round, cluster, batch, cert.CertDigest(), cert)
}

func (l *Ledger) append(round uint64, cluster types.ClusterID, batch types.Batch, certDigest types.Digest, cert Certificate) *Block {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := &Block{
		Height:      l.base + uint64(len(l.blocks)+1),
		Round:       round,
		Cluster:     cluster,
		Batch:       batch,
		BatchDigest: batch.Digest(),
		CertDigest:  certDigest,
		Cert:        cert,
	}
	if len(l.blocks) > 0 {
		b.Prev = l.blocks[len(l.blocks)-1].Hash
	} else {
		b.Prev = l.baseHash
	}
	b.Hash = blockHash(b)
	l.blocks = append(l.blocks, b)
	l.persist(b)
	return b
}

// Height returns the height of the chain's head — the count of blocks in the
// full logical chain, including any snapshot-covered prefix below Base.
func (l *Ledger) Height() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.base + uint64(len(l.blocks))
}

// Head returns the hash of the latest block — the snapshot anchor hash if
// only the anchor is known — or the zero digest if empty.
func (l *Ledger) Head() types.Digest {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.blocks) == 0 {
		return l.baseHash
	}
	return l.blocks[len(l.blocks)-1].Hash
}

// Block returns the block at the given height (1-based), or nil when the
// height is past the head or inside the snapshot-covered prefix (≤ Base).
func (l *Ledger) Block(height uint64) *Block {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if height <= l.base || height > l.base+uint64(len(l.blocks)) {
		return nil
	}
	return l.blocks[height-l.base-1]
}

// Verify checks the full hash chain and block contents, returning an error
// at the first tampered block. A recovering replica runs this against a
// ledger it copied from an untrusted peer (Section 3).
func (l *Ledger) Verify() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	prev := l.baseHash
	for i, b := range l.blocks {
		if b.Height != l.base+uint64(i+1) {
			return fmt.Errorf("ledger: block %d has height %d", l.base+uint64(i+1), b.Height)
		}
		if b.Prev != prev {
			return fmt.Errorf("ledger: block %d has broken prev link", b.Height)
		}
		// RecomputedDigest bypasses the decode-time digest cache: tamper
		// detection must hash the fields as they are now, not as received.
		if got := b.Batch.RecomputedDigest(); got != b.BatchDigest {
			return fmt.Errorf("ledger: block %d batch digest mismatch", b.Height)
		}
		if got := blockHash(b); got != b.Hash {
			return fmt.Errorf("ledger: block %d hash mismatch", b.Height)
		}
		prev = b.Hash
	}
	return nil
}

// Export returns up to max blocks starting at height from (1-based), for
// serving a catch-up request. max <= 0 exports the whole tail. It returns nil
// when from is past the chain's end or inside the snapshot-covered prefix
// (≤ Base — the caller must offer snapshot-based state transfer instead), and
// stops early at the first block that carries no certificate (such blocks
// cannot be re-verified by the importer).
// Blocks are immutable once appended, so sharing the pointers is safe.
func (l *Ledger) Export(from uint64, max int) []*Block {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if from <= l.base || from > l.base+uint64(len(l.blocks)) {
		return nil
	}
	first := from - l.base // 1-based index into the retained suffix
	end := uint64(len(l.blocks))
	if max > 0 && first-1+uint64(max) < end {
		end = first - 1 + uint64(max)
	}
	out := make([]*Block, 0, end-first+1)
	for _, b := range l.blocks[first-1 : end] {
		if b.Cert == nil {
			break
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Import verifies blocks as a contiguous, hash-chained extension of the chain
// and appends them atomically: on any error the ledger is unchanged. Each
// block's height must continue the chain, its batch must hash to BatchDigest
// (recomputed, so corruption is caught), its Prev must equal the hash of the
// block it extends, and its Hash must equal the recomputed value. Prev and
// Hash travel with the block (the catch-up wire codec and the disk store
// both carry them), so the linkage requirement is strict: a range that
// splices two histories — or hides its origin by zeroing the linkage — is
// rejected at the import boundary even when every commit certificate it
// carries is individually valid. verify, if non-nil, runs before any
// mutation and is where the protocol layer re-verifies the commit
// certificate against the origin cluster's membership (Section 3: a
// recovering replica copies the ledger from untrusted peers and validates it
// locally).
func (l *Ledger) Import(blocks []*Block, verify func(*Block) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	prev := l.baseHash
	if n := len(l.blocks); n > 0 {
		prev = l.blocks[n-1].Hash
	}
	base := l.base + uint64(len(l.blocks))
	staged := make([]*Block, 0, len(blocks))
	for i, b := range blocks {
		if b == nil {
			return fmt.Errorf("ledger: import: nil block at index %d", i)
		}
		want := base + uint64(i) + 1
		if b.Height != want {
			return fmt.Errorf("ledger: import: block %d has height %d, want %d", i, b.Height, want)
		}
		if got := b.Batch.RecomputedDigest(); got != b.BatchDigest {
			return fmt.Errorf("ledger: import: block %d batch digest mismatch", want)
		}
		if b.Prev != prev {
			return fmt.Errorf("ledger: import: block %d breaks the hash chain", want)
		}
		// Stage a copy with the derived fields completed; the caller's blocks
		// (possibly shared with another ledger) are never mutated. The cheap
		// linkage checks run before the verify callback so a garbled range is
		// rejected without paying for certificate verification.
		nb := *b
		nb.Hash = blockHash(&nb)
		if b.Hash != nb.Hash {
			return fmt.Errorf("ledger: import: block %d hash mismatch", want)
		}
		if verify != nil {
			if err := verify(b); err != nil {
				return fmt.Errorf("ledger: import: block %d: %w", want, err)
			}
		}
		if nb.Cert != nil {
			nb.CertDigest = nb.Cert.CertDigest()
		}
		staged = append(staged, &nb)
		prev = nb.Hash
	}
	l.blocks = append(l.blocks, staged...)
	l.persistBatch(staged)
	return nil
}

// persistBatch hands an imported range to the attached store, preferring
// the BatchStore fast path (one durability barrier for the whole range).
// Called with mu held.
func (l *Ledger) persistBatch(staged []*Block) {
	if l.store == nil {
		return
	}
	bs, ok := l.store.(BatchStore)
	if !ok {
		for _, b := range staged {
			l.persist(b)
		}
		return
	}
	for _, b := range staged {
		if b.Cert == nil {
			// An uncertified block ends durability (see persist); route
			// through the per-block path so it detaches with the same error.
			for _, b := range staged {
				l.persist(b)
			}
			return
		}
	}
	if err := bs.AppendBatch(staged); err != nil {
		l.storeErr = err
		l.store = nil
	}
}

// PrefixOf reports whether l is a prefix of other (used by tests to check
// non-divergence across replicas).
func (l *Ledger) PrefixOf(other *Ledger) bool {
	// Snapshot each side under its own lock rather than holding both: two
	// goroutines running a.PrefixOf(b) and b.PrefixOf(a) with writers queued
	// would otherwise deadlock. Blocks are immutable once appended and the
	// slice grows append-only, so the snapshots stay valid after unlock.
	l.mu.RLock()
	mBase, mAnchor, mine := l.base, l.baseHash, l.blocks
	l.mu.RUnlock()
	other.mu.RLock()
	oBase, oAnchor, theirs := other.base, other.baseHash, other.blocks
	other.mu.RUnlock()
	mHead := mBase + uint64(len(mine))
	oHead := oBase + uint64(len(theirs))
	if mHead > oHead {
		return false
	}
	// Cross-check each side's snapshot anchor against the other's retained
	// chain where it overlaps: an anchor claims the hash of the block at its
	// base height.
	if oBase > mBase && oBase <= mHead {
		if mine[oBase-mBase-1].Hash != oAnchor {
			return false
		}
	}
	if mBase > oBase && mBase <= oHead {
		if theirs[mBase-oBase-1].Hash != mAnchor {
			return false
		}
	}
	if mBase == oBase && mBase > 0 && mAnchor != oAnchor {
		return false
	}
	// Compare block hashes over the heights both sides retain. A snapshot-
	// anchored chain whose base is past the other's head has no overlap; the
	// anchor's verified commit certificate is then the only evidence, and
	// agreement cannot be disproved here.
	lo := mBase
	if oBase > lo {
		lo = oBase
	}
	for h := lo + 1; h <= mHead; h++ {
		if mine[h-mBase-1].Hash != theirs[h-oBase-1].Hash {
			return false
		}
	}
	return true
}
