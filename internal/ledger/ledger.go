// Package ledger implements the blockchain at the heart of the ResilientDB
// fabric: an immutable append-only chain in which the i-th block holds the
// i-th executed request batch together with the commit certificate that
// proves consensus on it (Section 3, "The ledger"). Each replica maintains
// a full copy; tampering is detectable by recomputing the hash chain.
package ledger

import (
	"fmt"
	"sync"

	"resilientdb/internal/types"
)

// Block is one entry of the chain. In GeoBFT each round ρ appends z blocks,
// one per cluster, in the deterministic execution order.
type Block struct {
	// Height is the block's position in the chain, starting at 1.
	Height uint64
	// Round is the consensus round (sequence number) that produced it.
	Round uint64
	// Cluster is the cluster whose request the block holds.
	Cluster types.ClusterID
	// Batch is the executed request batch.
	Batch types.Batch
	// BatchDigest commits to the batch contents.
	BatchDigest types.Digest
	// CertDigest commits to the commit certificate proving consensus.
	CertDigest types.Digest
	// Prev is the hash of the previous block (zero for the first block).
	Prev types.Digest
	// Hash is the block's own hash over all fields above.
	Hash types.Digest
}

// blockHash covers the ordered content of the chain. The commit certificate
// is deliberately excluded: it is attached evidence whose signer subset may
// legitimately differ between replicas (any n−f of the commit signatures
// prove the same decision), so including it would make identical histories
// hash differently.
func blockHash(b *Block) types.Digest {
	enc := types.NewEncoder(128)
	enc.U64(b.Height)
	enc.U64(b.Round)
	enc.I32(int32(b.Cluster))
	enc.Digest(b.BatchDigest)
	enc.Digest(b.Prev)
	return types.Hash(enc.Bytes())
}

// Ledger is one replica's copy of the chain. Appends come from the replica's
// single-threaded executor; reads (Height, Head, Block, Verify, PrefixOf) are
// guarded by an internal lock so monitoring code can inspect the chain while
// the fabric is running.
type Ledger struct {
	mu     sync.RWMutex
	blocks []*Block
}

// New returns an empty ledger.
func New() *Ledger { return &Ledger{} }

// Append adds the next block for (round, cluster, batch, certDigest) and
// returns it.
func (l *Ledger) Append(round uint64, cluster types.ClusterID, batch types.Batch, certDigest types.Digest) *Block {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := &Block{
		Height:      uint64(len(l.blocks) + 1),
		Round:       round,
		Cluster:     cluster,
		Batch:       batch,
		BatchDigest: batch.Digest(),
		CertDigest:  certDigest,
	}
	if len(l.blocks) > 0 {
		b.Prev = l.blocks[len(l.blocks)-1].Hash
	}
	b.Hash = blockHash(b)
	l.blocks = append(l.blocks, b)
	return b
}

// Height returns the number of blocks in the chain.
func (l *Ledger) Height() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return uint64(len(l.blocks))
}

// Head returns the hash of the latest block, or the zero digest if empty.
func (l *Ledger) Head() types.Digest {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.blocks) == 0 {
		return types.ZeroDigest
	}
	return l.blocks[len(l.blocks)-1].Hash
}

// Block returns the block at the given height (1-based), or nil.
func (l *Ledger) Block(height uint64) *Block {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if height < 1 || height > uint64(len(l.blocks)) {
		return nil
	}
	return l.blocks[height-1]
}

// Verify checks the full hash chain and block contents, returning an error
// at the first tampered block. A recovering replica runs this against a
// ledger it copied from an untrusted peer (Section 3).
func (l *Ledger) Verify() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var prev types.Digest
	for i, b := range l.blocks {
		if b.Height != uint64(i+1) {
			return fmt.Errorf("ledger: block %d has height %d", i+1, b.Height)
		}
		if b.Prev != prev {
			return fmt.Errorf("ledger: block %d has broken prev link", b.Height)
		}
		if got := b.Batch.Digest(); got != b.BatchDigest {
			return fmt.Errorf("ledger: block %d batch digest mismatch", b.Height)
		}
		if got := blockHash(b); got != b.Hash {
			return fmt.Errorf("ledger: block %d hash mismatch", b.Height)
		}
		prev = b.Hash
	}
	return nil
}

// PrefixOf reports whether l is a prefix of other (used by tests to check
// non-divergence across replicas).
func (l *Ledger) PrefixOf(other *Ledger) bool {
	// Snapshot each side under its own lock rather than holding both: two
	// goroutines running a.PrefixOf(b) and b.PrefixOf(a) with writers queued
	// would otherwise deadlock. Blocks are immutable once appended and the
	// slice grows append-only, so the snapshots stay valid after unlock.
	l.mu.RLock()
	mine := l.blocks
	l.mu.RUnlock()
	other.mu.RLock()
	theirs := other.blocks
	other.mu.RUnlock()
	if len(mine) > len(theirs) {
		return false
	}
	for i, b := range mine {
		if theirs[i].Hash != b.Hash {
			return false
		}
	}
	return true
}
