package ledger

import (
	"fmt"
	"sort"
)

// AuditPrefixes is the cross-node safety auditor: it verifies every ledger's
// hash chain and checks that each pair of chains is prefix-ordered (one is a
// prefix of the other), which is exactly GeoBFT's safety claim — no two
// honest replicas ever commit divergent prefixes. The map keys name the
// ledgers (replica identifiers) so the returned error pinpoints the first
// offending chain or diverging pair; keys are visited in sorted order, so
// the verdict is deterministic. A nil return means every chain verifies and
// all chains agree.
func AuditPrefixes(ledgers map[string]*Ledger) error {
	names := make([]string, 0, len(ledgers))
	for name := range ledgers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := ledgers[name].Verify(); err != nil {
			return fmt.Errorf("ledger: audit: %s: %w", name, err)
		}
	}
	for i, a := range names {
		la := ledgers[a]
		for _, b := range names[i+1:] {
			lb := ledgers[b]
			if !la.PrefixOf(lb) && !lb.PrefixOf(la) {
				return fmt.Errorf("ledger: audit: chains of %s and %s diverge", a, b)
			}
		}
	}
	return nil
}
