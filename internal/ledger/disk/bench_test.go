package disk_test

import (
	"testing"
	"time"

	"resilientdb/internal/core"
	"resilientdb/internal/ledger"
	"resilientdb/internal/ledger/disk"
	"resilientdb/internal/pbft"
	"resilientdb/internal/types"
)

// appendBlock drives the production persistence path for one block: the
// ledger hashes and links it, then hands it to the store under its lock.
func appendBlock(l *ledger.Ledger, h uint64) {
	round := (h-1)/2 + 1
	cluster := types.ClusterID((h - 1) % 2)
	b := types.Batch{
		Client: types.ClientIDBase + types.NodeID(cluster),
		Seq:    round,
		Txns: []types.Transaction{
			{Key: h, Value: h * 7}, {Key: h << 8, Value: h * 13},
			{Key: h << 16, Value: h * 17}, {Key: h << 24, Value: h * 19},
		},
	}
	b.PrimeDigest()
	l.AppendCertified(round, cluster, b, &pbft.Certificate{
		View: 1, Seq: round, Digest: b.Digest(), Batch: b,
		Signers: []types.NodeID{0, 1, 2},
		Sigs:    [][]byte{{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}},
	})
}

// BenchmarkLedgerAppend measures the cost of one certified append through
// the ledger with a disk store attached, across the three durability modes.
// The spread between fsync-each and group-commit/nosync is the price of
// strict per-block durability; the nosync number is the codec+write floor.
func BenchmarkLedgerAppend(b *testing.B) {
	for _, tc := range []struct {
		name string
		opts disk.Options
	}{
		{"fsync-each", disk.Options{}},
		{"group-commit-5ms", disk.Options{GroupCommit: 5 * time.Millisecond}},
		{"nosync", disk.Options{NoSync: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			st, _, err := disk.Open(b.TempDir(), core.BlockCodec{}, tc.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			l := ledger.New()
			l.SetStore(st)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				appendBlock(l, uint64(i+1))
			}
			b.StopTimer()
			if err := l.StoreErr(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkDiskBootstrap measures local-replay recovery: opening a store of
// bootBlocks blocks (decode + CRC) and importing them into a fresh ledger
// (hash-chain re-derivation) — everything a restarting node does with its
// disk except certificate signature verification, which is protocol-level
// and benchmarked with the fabric. Compare against pulling the same range
// over the network via catch-up to see what a surviving disk is worth.
func BenchmarkDiskBootstrap(b *testing.B) {
	const bootBlocks = 2048
	dir := b.TempDir()
	st, _, err := disk.Open(dir, core.BlockCodec{}, disk.Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	l := ledger.New()
	l.SetStore(st)
	for h := uint64(1); h <= bootBlocks; h++ {
		appendBlock(l, h)
	}
	if err := l.StoreErr(); err != nil {
		b.Fatal(err)
	}
	st.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, blocks, err := disk.Open(dir, core.BlockCodec{}, disk.Options{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(blocks) != bootBlocks {
			b.Fatalf("recovered %d blocks, want %d", len(blocks), bootBlocks)
		}
		fresh := ledger.New()
		if err := fresh.Import(blocks, nil); err != nil {
			b.Fatal(err)
		}
		st.Close()
	}
	b.ReportMetric(float64(bootBlocks), "blocks/op")
}
