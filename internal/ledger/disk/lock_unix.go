//go:build unix

package disk

import (
	"fmt"
	"os"
	"syscall"
)

// lockDir takes an exclusive advisory lock on dir/LOCK, so two processes
// pointed at the same store directory fail fast at Open instead of
// interleaving appends into the same segment (which would corrupt the
// sealed prefix beyond what torn-tail recovery can repair). The kernel
// releases the lock when the process dies — SIGKILL included — so a crash
// never leaves a stale lock behind.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(lockPath(dir), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: store %s is locked by another process: %w", dir, err)
	}
	return f, nil
}

// unlockDir releases the lock taken by lockDir.
func unlockDir(f *os.File) {
	if f != nil {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}
}
