package disk_test

import (
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
	"time"

	"resilientdb/internal/core"
	"resilientdb/internal/ledger"
	"resilientdb/internal/ledger/disk"
	"resilientdb/internal/pbft"
	"resilientdb/internal/types"
)

// makeBlocks builds a certified z=2 chain of n blocks through the real
// ledger append path, so heights, rounds, and hash links are exactly what
// consensus execution would produce. Certificates carry placeholder
// signatures: the store never verifies them (bootstrap does, at a layer
// above), and these tests exercise the store.
func makeBlocks(n int) []*ledger.Block {
	const z = 2
	l := ledger.New()
	for h := 1; h <= n; h++ {
		round := uint64((h-1)/z + 1)
		cluster := types.ClusterID((h - 1) % z)
		b := types.Batch{
			Client: types.ClientIDBase + types.NodeID(cluster),
			Seq:    round,
			Txns: []types.Transaction{
				{Key: uint64(h), Value: uint64(h * 7)},
				{Key: uint64(h) << 8, Value: uint64(h * 13)},
			},
		}
		b.PrimeDigest()
		l.AppendCertified(round, cluster, b, &pbft.Certificate{
			View: 1, Seq: round, Digest: b.Digest(), Batch: b,
			Signers: []types.NodeID{0, 1, 2},
			Sigs:    [][]byte{{1}, {2}, {3}},
		})
	}
	return l.Export(1, 0)
}

func mustOpen(t *testing.T, dir string, opts disk.Options) (*disk.Store, []*ledger.Block) {
	t.Helper()
	st, blocks, err := disk.Open(dir, core.BlockCodec{}, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return st, blocks
}

func appendAll(t *testing.T, st *disk.Store, blocks []*ledger.Block) {
	t.Helper()
	for _, b := range blocks {
		if err := st.Append(b); err != nil {
			t.Fatalf("append height %d: %v", b.Height, err)
		}
	}
}

// headOf imports blocks into a fresh ledger and returns its head, the
// canonical way to compare a recovered chain against its source (persisted
// blocks carry no Prev/Hash; Import re-derives them).
func headOf(t *testing.T, blocks []*ledger.Block) types.Digest {
	t.Helper()
	l := ledger.New()
	if err := l.Import(blocks, nil); err != nil {
		t.Fatalf("recovered chain does not import: %v", err)
	}
	if err := l.Verify(); err != nil {
		t.Fatalf("recovered chain does not verify: %v", err)
	}
	return l.Head()
}

func TestAppendReopen(t *testing.T) {
	dir := t.TempDir()
	src := makeBlocks(40)
	wantHead := headOf(t, src)

	st, got := mustOpen(t, dir, disk.Options{SegmentBytes: 512})
	if len(got) != 0 {
		t.Fatalf("fresh store recovered %d blocks", len(got))
	}
	appendAll(t, st, src)
	if st.Segments() < 2 {
		t.Fatalf("40 blocks in %d segment(s); want rolling at 512 bytes", st.Segments())
	}
	// Random read-back while open.
	b, err := st.Block(17)
	if err != nil || b.Height != 17 || b.BatchDigest != src[16].BatchDigest {
		t.Fatalf("Block(17) = %+v, %v", b, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	st2, got := mustOpen(t, dir, disk.Options{SegmentBytes: 512})
	defer st2.Close()
	if len(got) != len(src) {
		t.Fatalf("recovered %d blocks, want %d", len(got), len(src))
	}
	if h := headOf(t, got); h != wantHead {
		t.Fatalf("recovered head %s, want %s", h.Short(), wantHead.Short())
	}
	if s := st2.Recovered(); s.TruncatedBytes != 0 || s.RemovedSegments != 0 {
		t.Fatalf("clean reopen reported repairs: %+v", s)
	}
	// Appends continue at the right height after reopen.
	more := makeBlocks(42)
	if err := st2.Append(more[40]); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

func TestAppendRejectsBadBlocks(t *testing.T) {
	st, _ := mustOpen(t, t.TempDir(), disk.Options{NoSync: true})
	defer st.Close()
	src := makeBlocks(3)
	if err := st.Append(src[1]); err == nil {
		t.Fatal("accepted height 2 on an empty store")
	}
	uncert := *src[0]
	uncert.Cert = nil
	if err := st.Append(&uncert); err == nil {
		t.Fatal("accepted a block without a certificate")
	}
	appendAll(t, st, src)
	if err := st.Append(src[2]); err == nil {
		t.Fatal("accepted a duplicate height")
	}
}

func TestLedgerPersistsThroughStore(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, disk.Options{})
	l := ledger.New()
	l.SetStore(st)
	src := makeBlocks(8)
	for _, b := range src {
		l.AppendCertified(b.Round, b.Cluster, b.Batch, b.Cert)
	}
	if l.StoreErr() != nil {
		t.Fatalf("store error: %v", l.StoreErr())
	}
	if st.Height() != 8 {
		t.Fatalf("store holds %d blocks, want 8", st.Height())
	}
	// A digest-only append (no certificate) cannot be persisted and must
	// end durability loudly — detach + StoreErr — not silently desync the
	// store's height; the chain itself keeps accepting blocks.
	l.Append(5, 0, src[0].Batch, types.Hash([]byte("x")))
	if l.StoreErr() == nil {
		t.Fatal("uncertified append with a store attached reported no error")
	}
	if st.Height() != 8 {
		t.Fatalf("store holds %d blocks after detach, want 8", st.Height())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Persistence failure (store closed) also detaches the backend and
	// surfaces through StoreErr; consensus must not halt on disk failure.
	l2 := ledger.New()
	l2.SetStore(st)
	l2.AppendCertified(1, 0, src[0].Batch, src[0].Cert)
	if l2.StoreErr() == nil {
		t.Fatal("append to a closed store reported no error")
	}
	if l2.Height() != 1 {
		t.Fatalf("ledger height %d, want 1 (consensus must not halt on disk failure)", l2.Height())
	}

	st2, got := mustOpen(t, dir, disk.Options{})
	defer st2.Close()
	if len(got) != 8 {
		t.Fatalf("recovered %d blocks, want the 8 certified ones", len(got))
	}
}

// TestImportPersistsBatched drives the catch-up persistence path: a verified
// range imported into a store-attached ledger reaches the disk through
// AppendBatch (one durability barrier per chunk) and survives reopen.
func TestImportPersistsBatched(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, disk.Options{})
	l := ledger.New()
	l.SetStore(st)
	src := makeBlocks(16)
	if err := l.Import(src[:8], nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Import(src[8:], nil); err != nil {
		t.Fatal(err)
	}
	if l.StoreErr() != nil {
		t.Fatalf("store error: %v", l.StoreErr())
	}
	if st.Height() != 16 {
		t.Fatalf("store holds %d blocks after imports, want 16", st.Height())
	}
	st.Close()
	st2, got := mustOpen(t, dir, disk.Options{})
	defer st2.Close()
	if len(got) != 16 {
		t.Fatalf("recovered %d blocks, want 16", len(got))
	}
	headOf(t, got)
}

// TestWrongFirstHeightFails pins the repair/refuse boundary: a last segment
// whose header is intact but whose first height does not continue the chain
// holds real records that no crash shape can explain — recovery must refuse
// to destroy them, not "repair" by deletion.
func TestWrongFirstHeightFails(t *testing.T) {
	dir := t.TempDir()
	src := makeBlocks(24)
	st, _ := mustOpen(t, dir, disk.Options{SegmentBytes: 600, NoSync: true})
	appendAll(t, st, src)
	st.Close()
	p := lastSegment(t, dir)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[15] ^= 0x20 // corrupt the header's first-height field only
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = disk.Open(dir, core.BlockCodec{}, disk.Options{NoSync: true})
	if !errors.Is(err, disk.ErrCorrupt) {
		t.Fatalf("open over a height-discontinuous segment: err=%v, want ErrCorrupt", err)
	}
	if _, statErr := os.Stat(p); statErr != nil {
		t.Fatalf("refusing open must not delete the segment: %v", statErr)
	}
}

// TestOpenLocksDirectory pins the double-open guard: a second Open of a
// live store directory must fail fast instead of interleaving appends into
// the same segment files.
func TestOpenLocksDirectory(t *testing.T) {
	switch runtime.GOOS {
	case "windows", "plan9", "js", "wasip1":
		t.Skip("flock-based store locking is unix-only")
	}
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, disk.Options{NoSync: true})
	if _, _, err := disk.Open(dir, core.BlockCodec{}, disk.Options{NoSync: true}); err == nil {
		t.Fatal("second Open of a locked store directory succeeded")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, _ := mustOpen(t, dir, disk.Options{NoSync: true}) // lock released on Close
	st2.Close()
}

// lastSegment returns the path of the newest segment file in dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.rdb"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	sort.Strings(segs)
	return segs[len(segs)-1]
}

// copyDir clones a store directory so each torn-tail case starts from the
// same pristine bytes.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTornTailEveryOffset cuts the newest segment at every byte offset —
// every possible shape of a crash mid-write — and requires recovery to hand
// back a clean, importable prefix, repair the file, and accept new appends.
func TestTornTailEveryOffset(t *testing.T) {
	golden := t.TempDir()
	src := makeBlocks(24)
	st, _ := mustOpen(t, golden, disk.Options{SegmentBytes: 600, NoSync: true})
	appendAll(t, st, src)
	segCount := st.Segments()
	if segCount < 2 {
		t.Fatalf("want ≥ 2 segments, got %d", segCount)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	lastPath := lastSegment(t, golden)
	lastData, err := os.ReadFile(lastPath)
	if err != nil {
		t.Fatal(err)
	}
	// Blocks in sealed segments survive any tear of the last one; count them
	// by opening a copy with the last segment dropped entirely.
	probe := t.TempDir()
	copyDir(t, golden, probe)
	os.Remove(filepath.Join(probe, filepath.Base(lastPath)))
	stProbe, beforeLast := mustOpen(t, probe, disk.Options{SegmentBytes: 600, NoSync: true})
	stProbe.Close()
	sealed := len(beforeLast)

	for cut := len(lastData) - 1; cut >= 0; cut-- {
		dir := t.TempDir()
		copyDir(t, golden, dir)
		if err := os.Truncate(filepath.Join(dir, filepath.Base(lastPath)), int64(cut)); err != nil {
			t.Fatal(err)
		}
		st, got := mustOpen(t, dir, disk.Options{SegmentBytes: 600, NoSync: true})
		if len(got) >= len(src) || len(got) < sealed {
			t.Fatalf("cut at %d: recovered %d blocks, want [%d, %d)", cut, len(got), sealed, len(src))
		}
		headOf(t, got) // prefix must import and verify
		// The store must keep working where recovery left it.
		if err := st.Append(src[len(got)]); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		st2, again := mustOpen(t, dir, disk.Options{SegmentBytes: 600, NoSync: true})
		if len(again) != len(got)+1 {
			t.Fatalf("cut at %d: reopen found %d blocks, want %d", cut, len(again), len(got)+1)
		}
		st2.Close()
	}
}

// TestCorruptionHandling flips bytes and asserts the recovery contract:
// damage in the newest segment is repaired as a torn tail; damage in a
// sealed segment — a shape no crash can produce — fails cleanly with
// ErrCorrupt. Neither path may panic or serve a damaged block.
func TestCorruptionHandling(t *testing.T) {
	golden := t.TempDir()
	src := makeBlocks(24)
	st, _ := mustOpen(t, golden, disk.Options{SegmentBytes: 600, NoSync: true})
	appendAll(t, st, src)
	st.Close()

	segs, _ := filepath.Glob(filepath.Join(golden, "seg-*.rdb"))
	sort.Strings(segs)
	first, last := segs[0], segs[len(segs)-1]

	t.Run("sealed segment", func(t *testing.T) {
		dir := t.TempDir()
		copyDir(t, golden, dir)
		p := filepath.Join(dir, filepath.Base(first))
		data, _ := os.ReadFile(p)
		data[len(data)/2] ^= 0xff
		os.WriteFile(p, data, 0o644)
		_, _, err := disk.Open(dir, core.BlockCodec{}, disk.Options{NoSync: true})
		if !errors.Is(err, disk.ErrCorrupt) {
			t.Fatalf("open over a corrupt sealed segment: err=%v, want ErrCorrupt", err)
		}
	})
	t.Run("missing segment", func(t *testing.T) {
		dir := t.TempDir()
		copyDir(t, golden, dir)
		os.Remove(filepath.Join(dir, filepath.Base(first)))
		_, _, err := disk.Open(dir, core.BlockCodec{}, disk.Options{NoSync: true})
		if !errors.Is(err, disk.ErrCorrupt) {
			t.Fatalf("open with a missing segment: err=%v, want ErrCorrupt", err)
		}
	})
	t.Run("newest segment", func(t *testing.T) {
		dir := t.TempDir()
		copyDir(t, golden, dir)
		p := filepath.Join(dir, filepath.Base(last))
		data, _ := os.ReadFile(p)
		data[len(data)/2] ^= 0xff
		os.WriteFile(p, data, 0o644)
		st, got := mustOpen(t, dir, disk.Options{NoSync: true})
		defer st.Close()
		if len(got) >= len(src) {
			t.Fatalf("recovered %d blocks through a corrupt record", len(got))
		}
		headOf(t, got)
		if st.Recovered().TruncatedBytes == 0 {
			t.Fatal("repair not reported")
		}
	})
	t.Run("torn header", func(t *testing.T) {
		dir := t.TempDir()
		copyDir(t, golden, dir)
		os.Truncate(filepath.Join(dir, filepath.Base(last)), 7)
		st, got := mustOpen(t, dir, disk.Options{NoSync: true})
		defer st.Close()
		if st.Recovered().RemovedSegments != 1 {
			t.Fatalf("torn-header segment not removed: %+v", st.Recovered())
		}
		headOf(t, got)
	})
}

func TestTruncate(t *testing.T) {
	dir := t.TempDir()
	src := makeBlocks(20)
	st, _ := mustOpen(t, dir, disk.Options{SegmentBytes: 600, NoSync: true})
	appendAll(t, st, src)
	if err := st.Truncate(7); err != nil {
		t.Fatal(err)
	}
	if st.Height() != 7 {
		t.Fatalf("height after truncate = %d, want 7", st.Height())
	}
	if err := st.Append(src[7]); err != nil {
		t.Fatalf("append height 8 after truncate: %v", err)
	}
	st.Close()
	st2, got := mustOpen(t, dir, disk.Options{SegmentBytes: 600, NoSync: true})
	if len(got) != 8 {
		t.Fatalf("reopen after truncate found %d blocks, want 8", len(got))
	}
	headOf(t, got)
	if err := st2.Truncate(0); err != nil {
		t.Fatal(err)
	}
	if st2.Height() != 0 || st2.Segments() != 0 {
		t.Fatalf("Truncate(0) left height=%d segments=%d", st2.Height(), st2.Segments())
	}
	if err := st2.Append(src[0]); err != nil {
		t.Fatalf("append height 1 after full truncate: %v", err)
	}
	st2.Close()
	st3, got := mustOpen(t, dir, disk.Options{NoSync: true})
	defer st3.Close()
	if len(got) != 1 {
		t.Fatalf("reopen after wipe found %d blocks, want 1", len(got))
	}
}

func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	src := makeBlocks(30)
	st, _ := mustOpen(t, dir, disk.Options{GroupCommit: 2 * time.Millisecond})
	appendAll(t, st, src)
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, got := mustOpen(t, dir, disk.Options{GroupCommit: 2 * time.Millisecond})
	defer st2.Close()
	if len(got) != len(src) {
		t.Fatalf("group-commit store recovered %d blocks, want %d", len(got), len(src))
	}
	headOf(t, got)
}

// FuzzDiskRecovery mutates a store's files — truncations, bit flips, removed
// segments, appended garbage — and asserts the recovery contract: Open never
// panics, and it either fails cleanly or returns a structurally sound prefix
// whose repair is convergent (a second Open agrees) and which the ledger
// either imports verifiably or rejects without mutation.
func FuzzDiskRecovery(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 10})                   // truncate newest segment
	f.Add([]byte{1, 0, 100})                  // flip a byte mid-file
	f.Add([]byte{2, 1, 0})                    // remove a segment
	f.Add([]byte{3, 0, 7})                    // append garbage
	f.Add([]byte{1, 0, 20, 0, 1, 5, 3, 1, 9}) // compound damage
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		src := makeBlocks(12)
		st, _, err := disk.Open(dir, core.BlockCodec{}, disk.Options{SegmentBytes: 300, NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range src {
			if err := st.Append(b); err != nil {
				t.Fatal(err)
			}
		}
		st.Close()
		segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.rdb"))
		sort.Strings(segs)

		for i := 0; i+2 < len(data) && i < 30; i += 3 {
			if len(segs) == 0 {
				break
			}
			p := segs[int(data[i+1])%len(segs)]
			arg := int(data[i+2])
			raw, err := os.ReadFile(p)
			if err != nil {
				continue
			}
			switch data[i] % 4 {
			case 0: // truncate
				if len(raw) > 0 {
					os.Truncate(p, int64(arg%len(raw)))
				}
			case 1: // bit flip
				if len(raw) > 0 {
					raw[arg*37%len(raw)] ^= byte(arg%255 + 1)
					os.WriteFile(p, raw, 0o644)
				}
			case 2: // remove segment
				os.Remove(p)
			case 3: // append garbage
				g := make([]byte, arg%19+1)
				for j := range g {
					g[j] = byte(arg + j)
				}
				os.WriteFile(p, append(raw, g...), 0o644)
			}
		}

		st1, got, err := disk.Open(dir, core.BlockCodec{}, disk.Options{NoSync: true})
		if err != nil {
			return // failed cleanly
		}
		for i, b := range got {
			if b == nil || b.Height != uint64(i+1) || b.Cert == nil {
				t.Fatalf("recovered block %d is structurally unsound: %+v", i, b)
			}
		}
		h1 := st1.Height()
		st1.Close()

		// Repair must be convergent: a second open sees a clean store.
		st2, again, err := disk.Open(dir, core.BlockCodec{}, disk.Options{NoSync: true})
		if err != nil {
			t.Fatalf("reopen after repair failed: %v", err)
		}
		if st2.Height() != h1 || uint64(len(again)) != h1 {
			t.Fatalf("repair not convergent: first open %d blocks, second %d", h1, len(again))
		}
		st2.Close()

		// The ledger is the next gate: it must import the prefix verifiably
		// or reject it without mutation — never accept damage.
		l := ledger.New()
		if err := l.Import(got, func(b *ledger.Block) error {
			if b.Cert == nil {
				return errors.New("no certificate")
			}
			return nil
		}); err == nil {
			if err := l.Verify(); err != nil {
				t.Fatalf("imported recovered chain does not verify: %v", err)
			}
		} else if l.Height() != 0 {
			t.Fatalf("rejected import mutated the ledger to height %d", l.Height())
		}
	})
}
