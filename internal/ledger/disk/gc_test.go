package disk_test

// Checkpoint-GC coverage: ReclaimBelow's whole-segment semantics, its
// interaction with concurrent readers and torn-tail recovery, the shape a
// crash mid-GC leaves, and the bound it exists to enforce — a store that is
// GC'd against a moving checkpoint never holds more than the retention
// budget of segments.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"resilientdb/internal/ledger/disk"
)

// TestReclaimBelow pins the basic contract: only leading whole segments at
// or below the checkpoint go, the base advances durably to a segment
// boundary, reads below the base fail cleanly, and a second call with the
// same checkpoint is a no-op.
func TestReclaimBelow(t *testing.T) {
	opts := disk.Options{SegmentBytes: 512, NoSync: true}
	st, _ := mustOpen(t, t.TempDir(), opts)
	defer st.Close()
	src := makeBlocks(40)
	appendAll(t, st, src)
	segsBefore, bytesBefore := st.Segments(), st.Bytes()
	if segsBefore < 4 {
		t.Fatalf("40 blocks in %d segment(s); the test needs several to reclaim", segsBefore)
	}

	nseg, nbytes, err := st.ReclaimBelow(30, 2)
	if err != nil {
		t.Fatalf("reclaim: %v", err)
	}
	if nseg == 0 || nbytes == 0 {
		t.Fatalf("reclaimed %d segments (%d bytes); want some below checkpoint 30", nseg, nbytes)
	}
	if got := st.Segments(); got != segsBefore-nseg {
		t.Fatalf("Segments() = %d after reclaiming %d of %d", got, nseg, segsBefore)
	}
	if got := st.Bytes(); got != bytesBefore-nbytes {
		t.Fatalf("Bytes() = %d, want %d − %d", got, bytesBefore, nbytes)
	}
	base := st.Base()
	if base == 0 || base > 30 {
		t.Fatalf("Base() = %d, want within (0, 30]", base)
	}
	if h := st.Height(); h != 40 {
		t.Fatalf("Height() = %d after GC, want the full logical height 40", h)
	}
	// The boundary is exact: base is unreadable, base+1 is the first block.
	if _, err := st.Block(base); err == nil {
		t.Fatalf("Block(%d) served a reclaimed height", base)
	}
	for h := base + 1; h <= 40; h++ {
		b, err := st.Block(h)
		if err != nil || b.Height != h || b.BatchDigest != src[h-1].BatchDigest {
			t.Fatalf("Block(%d) after GC = %+v, %v", h, b, err)
		}
	}
	// Same checkpoint again: nothing left to do.
	if n, _, err := st.ReclaimBelow(30, 2); err != nil || n != 0 {
		t.Fatalf("second reclaim = %d, %v; want a no-op", n, err)
	}
	// keep is a floor, and the open segment is never reclaimed: a checkpoint
	// at the very tip still leaves keep segments behind.
	if _, _, err := st.ReclaimBelow(40, 1); err != nil {
		t.Fatalf("reclaim to tip: %v", err)
	}
	if got := st.Segments(); got < 1 {
		t.Fatalf("Segments() = %d after reclaiming to the tip; the open segment must survive", got)
	}
}

// TestReclaimRacesReader hammers Block() from several goroutines while the
// writer interleaves appends with checkpoint GC — the catch-up server
// streaming a suffix to a lagging peer while the checkpointer reclaims
// behind it. Every read must either return the correct block or the clean
// out-of-range error; a torn read or ErrCorrupt means reclaim yanked a
// segment out from under a reader.
func TestReclaimRacesReader(t *testing.T) {
	opts := disk.Options{SegmentBytes: 512, NoSync: true}
	st, _ := mustOpen(t, t.TempDir(), opts)
	defer st.Close()
	src := makeBlocks(120)
	appendAll(t, st, src[:20])

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := uint64(1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				b, err := st.Block(h)
				switch {
				case err == nil:
					if b.Height != h || b.BatchDigest != src[h-1].BatchDigest {
						errc <- fmt.Errorf("Block(%d) returned the wrong block: %+v", h, b)
						return
					}
				case errors.Is(err, disk.ErrCorrupt):
					errc <- fmt.Errorf("Block(%d) racing GC: %v", h, err)
					return
				}
				h = h%120 + 1
			}
		}()
	}
	for i := 20; i < 120; i++ {
		if err := st.Append(src[i]); err != nil {
			t.Fatalf("append height %d: %v", src[i].Height, err)
		}
		if i%10 == 0 {
			if _, _, err := st.ReclaimBelow(uint64(i)-5, 2); err != nil {
				t.Fatalf("reclaim below %d: %v", i-5, err)
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

// TestReclaimAfterTornTail runs checkpoint GC on a store that just repaired
// a torn tail: the recovered suffix must still reclaim cleanly, serve the
// retained heights, and accept appends where recovery left off.
func TestReclaimAfterTornTail(t *testing.T) {
	dir := t.TempDir()
	opts := disk.Options{SegmentBytes: 600, NoSync: true}
	src := makeBlocks(24)
	st, _ := mustOpen(t, dir, opts)
	appendAll(t, st, src)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the newest segment mid-record, as a power cut mid-write would.
	lastPath := lastSegment(t, dir)
	fi, err := os.Stat(lastPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(lastPath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	st2, got := mustOpen(t, dir, opts)
	defer st2.Close()
	if st2.Recovered().TruncatedBytes == 0 {
		t.Fatal("reopen did not report the torn tail")
	}
	rec := uint64(len(got))
	if rec == 0 || rec >= 24 {
		t.Fatalf("recovered %d blocks, want a proper prefix of 24", rec)
	}
	if n, _, err := st2.ReclaimBelow(rec, 1); err != nil || n == 0 {
		t.Fatalf("reclaim after torn-tail recovery = %d, %v; want progress", n, err)
	}
	base := st2.Base()
	for h := base + 1; h <= rec; h++ {
		if b, err := st2.Block(h); err != nil || b.BatchDigest != src[h-1].BatchDigest {
			t.Fatalf("Block(%d) after tear+GC = %+v, %v", h, b, err)
		}
	}
	// The store keeps appending exactly where the tear left it.
	if err := st2.Append(src[rec]); err != nil {
		t.Fatalf("append after tear+GC: %v", err)
	}
}

// TestReopenAfterGC closes a GC'd store and reopens it: recovery must serve
// exactly the retained suffix — anchored at the durable base, verifying
// block for block against the original chain — and keep appending past it.
func TestReopenAfterGC(t *testing.T) {
	dir := t.TempDir()
	opts := disk.Options{SegmentBytes: 512, NoSync: true}
	src := makeBlocks(42)
	st, _ := mustOpen(t, dir, opts)
	appendAll(t, st, src[:40])
	if _, _, err := st.ReclaimBelow(28, 2); err != nil {
		t.Fatalf("reclaim: %v", err)
	}
	base := st.Base()
	if base == 0 {
		t.Fatal("reclaim made no progress; widen the test chain")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, got := mustOpen(t, dir, opts)
	defer st2.Close()
	if b := st2.Base(); b != base {
		t.Fatalf("reopened Base() = %d, want the durable %d", b, base)
	}
	if want := 40 - base; uint64(len(got)) != want {
		t.Fatalf("recovered %d blocks, want the %d-block suffix", len(got), want)
	}
	for i, b := range got {
		h := base + uint64(i) + 1
		if b.Height != h || b.BatchDigest != src[h-1].BatchDigest {
			t.Fatalf("recovered block %d = height %d, digest mismatch %v", i, b.Height,
				b.BatchDigest != src[h-1].BatchDigest)
		}
	}
	if s := st2.Recovered(); s.TruncatedBytes != 0 || s.RemovedSegments != 0 {
		t.Fatalf("clean reopen of a GC'd store reported repairs: %+v", s)
	}
	if _, err := st2.Block(base); err == nil {
		t.Fatalf("reopened store served reclaimed height %d", base)
	}
	if err := st2.Append(src[40]); err != nil {
		t.Fatalf("append after GC'd reopen: %v", err)
	}
}

// TestReclaimInterruptedGC reproduces a crash between GC's two steps — the
// base marker durably advanced, the segment files not yet removed — by
// writing the marker a completed GC would have left over an un-GC'd copy of
// the same store. Recovery must finish the job: delete the stale sub-base
// segments and serve exactly the suffix a completed GC serves.
func TestReclaimInterruptedGC(t *testing.T) {
	golden := t.TempDir()
	opts := disk.Options{SegmentBytes: 512, NoSync: true}
	src := makeBlocks(40)
	st, _ := mustOpen(t, golden, opts)
	appendAll(t, st, src)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Run the real GC on one copy to learn the exact segment boundary and
	// segment count it settles on.
	done := t.TempDir()
	copyDir(t, golden, done)
	stDone, _ := mustOpen(t, done, opts)
	nseg, _, err := stDone.ReclaimBelow(30, 2)
	if err != nil || nseg == 0 {
		t.Fatalf("reference reclaim = %d, %v", nseg, err)
	}
	base := stDone.Base()
	stDone.Close()

	// Crash shape: the marker alone, every segment file still present.
	torn := t.TempDir()
	copyDir(t, golden, torn)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], base)
	if err := os.WriteFile(filepath.Join(torn, "BASE"), buf[:], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, got := mustOpen(t, torn, opts)
	defer st2.Close()
	if s := st2.Recovered(); s.RemovedSegments != nseg {
		t.Fatalf("recovery removed %d stale segments, want the %d the crash interrupted", s.RemovedSegments, nseg)
	}
	if b := st2.Base(); b != base {
		t.Fatalf("recovered Base() = %d, want %d", b, base)
	}
	if want := 40 - base; uint64(len(got)) != want {
		t.Fatalf("recovered %d blocks, want the %d-block suffix", len(got), want)
	}
	if got[0].Height != base+1 {
		t.Fatalf("suffix starts at %d, want %d", got[0].Height, base+1)
	}
}

// TestReclaimBoundsDiskUsage is the retention guarantee stated end to end:
// a store GC'd against a moving checkpoint with a keep-segment budget never
// holds more than that many segments — nor more bytes than they can weigh —
// no matter how long the chain grows.
func TestReclaimBoundsDiskUsage(t *testing.T) {
	const keep = 3
	opts := disk.Options{SegmentBytes: 512, NoSync: true}
	st, _ := mustOpen(t, t.TempDir(), opts)
	defer st.Close()
	src := makeBlocks(400)
	for i, b := range src {
		if err := st.Append(b); err != nil {
			t.Fatalf("append height %d: %v", b.Height, err)
		}
		if (i+1)%8 != 0 {
			continue
		}
		// The checkpoint trails the tip, as the live protocol's does.
		if _, _, err := st.ReclaimBelow(uint64(i+1)-4, keep); err != nil {
			t.Fatalf("reclaim at height %d: %v", i+1, err)
		}
		if got := st.Segments(); got > keep {
			t.Fatalf("height %d: %d segments on disk, retention budget is %d", i+1, got, keep)
		}
		if got := st.Bytes(); got > keep*opts.SegmentBytes {
			t.Fatalf("height %d: %d bytes on disk, budget is %d", i+1, got, keep*opts.SegmentBytes)
		}
	}
	if st.Height() != 400 {
		t.Fatalf("Height() = %d, want the full logical 400", st.Height())
	}
	if st.Base() == 0 {
		t.Fatal("400 appends with a trailing checkpoint never advanced the base")
	}
}
