//go:build !unix

package disk

import "os"

// lockDir is a no-op on platforms without flock semantics: the store still
// works, but concurrent opens of the same directory are not detected.
func lockDir(dir string) (*os.File, error) { return nil, nil }

// unlockDir matches the unix implementation.
func unlockDir(f *os.File) {
	if f != nil {
		f.Close()
	}
}
