// Package disk implements the ledger's durable backend: a segmented,
// append-only block store that makes the paper's "crash with disk" recovery
// path literal. Certified blocks are framed with the canonical wire codec of
// internal/types — the bytes on disk are the same bytes a catch-up response
// carries over the network — and written to fixed-size segment files, each
// record protected by a CRC. On open the store replays every segment,
// truncates a torn tail (the partial record a crash mid-write leaves behind),
// and hands the surviving prefix back so the node can re-verify it through
// the ordinary ledger Import path before serving a single block.
//
// Layout of a store directory:
//
//	<dir>/seg-00000001.rdb
//	<dir>/seg-00000002.rdb
//	...
//
// Each segment starts with a 16-byte header — magic "RDBL", a u32 format
// version, and the u64 height of the segment's first block — followed by
// records of the form
//
//	u32 payload length | payload (one wire-encoded block) | u32 CRC-32C
//
// Durability is tunable: by default every Append fsyncs (a committed block
// survives machine power loss), while Options.GroupCommit batches fsyncs on
// a timer — Append then returns after the OS write, so a process kill loses
// nothing (the page cache survives the process) but a machine crash can lose
// up to one group-commit interval of blocks. Either way recovery never
// yields a hole: the store only ever loses a suffix, and the consensus layer
// re-fetches lost suffixes from peers via ledger catch-up.
//
// The store is deliberately dumb about trust: CRCs catch accidental
// corruption, not tampering. A node treats its own disk like an untrusted
// peer — every recovered block's commit certificate is re-verified by
// core.Replica.Bootstrap before it reaches the live chain — so the store
// never needs a key and never serves an unverified block to the protocol.
package disk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"resilientdb/internal/ledger"
	"resilientdb/internal/types"
)

// BlockCodec converts blocks to and from their persisted byte form. The
// production implementation is core.BlockCodec, which reuses the catch-up
// wire encoding so disk format and network format never diverge.
type BlockCodec interface {
	// EncodeBlock appends the canonical byte form of b to enc.
	EncodeBlock(enc *types.Encoder, b *ledger.Block)
	// DecodeBlock reads one block; it reports malformed input as an error
	// and must never panic (recovery feeds it bytes from a crashed disk).
	DecodeBlock(dec *types.Decoder) (*ledger.Block, error)
}

// Options tunes a store's segment size and durability mode.
type Options struct {
	// SegmentBytes caps the size of one segment file; the store rolls to a
	// new segment when the next record would exceed it (a segment always
	// holds at least one record, so oversized blocks still fit). 0 selects
	// DefaultSegmentBytes.
	SegmentBytes int64
	// GroupCommit, when positive, batches fsyncs: appends return after the
	// OS write and a background flusher syncs dirty segments at this
	// interval (Close and Sync always flush). Zero fsyncs on every append.
	GroupCommit time.Duration
	// NoSync disables fsync entirely (benchmarks, throwaway test dirs).
	// Process crashes still lose nothing — the page cache is the OS's —
	// but machine crashes can lose or tear arbitrarily much.
	NoSync bool
}

// DefaultSegmentBytes is the segment size cap when Options.SegmentBytes is 0.
const DefaultSegmentBytes = 4 << 20

// maxRecordBytes bounds one record's payload, so a corrupt length field can
// never drive a huge allocation during recovery.
const maxRecordBytes = 8 << 20

const (
	segPrefix = "seg-"
	segSuffix = ".rdb"
	headerLen = 16
	// formatVer names the record encoding inside a segment. Version 2 added
	// the block's Prev/Hash linkage digests to the record payload (the
	// catch-up wire codec carries them so ledger.Import can enforce strict
	// linkage); version-1 stores fail Open loudly instead of silently
	// decoding garbage — wipe the data directory and let the node recover
	// over the network (an amnesia restart).
	formatVer = 2
)

var segMagic = [4]byte{'R', 'D', 'B', 'L'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks a store whose committed prefix cannot be recovered
// structurally — corruption in a sealed (non-last) segment, a missing
// segment, or a height discontinuity. Open fails cleanly with it rather
// than guessing; torn tails in the last segment are repaired, not errors.
var ErrCorrupt = errors.New("disk: corrupt block store")

// RecoveryStats reports what Open had to repair.
type RecoveryStats struct {
	// TruncatedBytes is how many trailing bytes were cut as a torn tail.
	TruncatedBytes int64
	// RemovedSegments counts trailing segments dropped whole (a segment
	// whose header itself was torn by the crash).
	RemovedSegments int
}

// recordLoc locates one persisted block: index[i] of a Store locates the
// record for block height i+1.
type recordLoc struct {
	seg int   // segment index (1-based, as in the file name)
	off int64 // record start offset within the segment file
	n   int   // framed record length (length prefix and CRC included)
}

// Store is a segmented append-only block store. It implements ledger.Store,
// so attaching it to a ledger (Ledger.SetStore) persists every certified
// block the consensus layer appends. Appends must arrive in strict height
// order starting at Height()+1; the ledger guarantees that.
//
// All methods are safe for concurrent use; Append is expected from a single
// writer (the replica's executor) with Sync/Close racing it at shutdown.
type Store struct {
	dir   string
	codec BlockCodec
	opts  Options

	mu      sync.Mutex
	lock    *os.File // held flock on dir/LOCK (nil on non-unix platforms)
	cur     *os.File // last segment, open for append (nil: empty store)
	curSeg  int      // its index; 0 when the store holds no segments
	curSize int64
	segs    []int // sorted indices of existing segment files
	index   []recordLoc
	// base is the height of the last block below the stored suffix: the
	// store holds heights base+1 … base+len(index). A store created before
	// any checkpoint has base 0; checkpoint GC (ReclaimBelow) advances it a
	// whole segment at a time, and a store created by snapshot-based state
	// transfer adopts its base from the first appended block.
	base      uint64
	dirty     bool
	closed    bool
	err       error // sticky write failure; the store refuses further writes
	recovered RecoveryStats

	flushQuit chan struct{}
	flushDone chan struct{}
}

// Open opens (or creates) the store in dir, replays its segments, repairs a
// torn tail, and returns the recovered blocks in height order. The caller
// owns re-verifying the blocks (certificates, hash chain) before trusting
// them; Open guarantees only structural integrity — contiguous heights from
// the store's Base()+1 (1 for a store never GC'd), CRC-clean records, every
// block carrying a certificate.
func Open(dir string, codec BlockCodec, opts Options) (*Store, []*ledger.Block, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("disk: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, nil, err
	}
	s := &Store{dir: dir, codec: codec, opts: opts, lock: lock}
	blocks, err := s.recover()
	if err != nil {
		unlockDir(lock)
		return nil, nil, err
	}
	if opts.GroupCommit > 0 && !opts.NoSync {
		s.flushQuit = make(chan struct{})
		s.flushDone = make(chan struct{})
		go s.flusher()
	}
	return s, blocks, nil
}

// listSegments returns the sorted indices of segment files present in dir.
// Files that do not match the segment name pattern are ignored.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	var segs []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || len(name) != len(segPrefix)+8+len(segSuffix) ||
			name[:len(segPrefix)] != segPrefix || name[len(name)-len(segSuffix):] != segSuffix {
			continue
		}
		idx, digits := 0, name[len(segPrefix):len(name)-len(segSuffix)]
		for i := 0; i < len(digits); i++ {
			if digits[i] < '0' || digits[i] > '9' {
				idx = 0
				break
			}
			idx = idx*10 + int(digits[i]-'0')
		}
		if idx < 1 {
			continue // near-miss names (stray files) are ignored, not mapped
		}
		segs = append(segs, idx)
	}
	sort.Ints(segs)
	return segs, nil
}

func (s *Store) segPath(idx int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%08d%s", segPrefix, idx, segSuffix))
}

// lockPath is the advisory lock file guarding a store directory.
func lockPath(dir string) string { return filepath.Join(dir, "LOCK") }

// basePath is the checkpoint-GC marker: 8 big-endian bytes naming the store's
// base height. Its absence means base 0 (full history). It exists so a GC'd
// store — whose first segment legitimately starts above height 1 — stays
// distinguishable from a store that lost a segment, which must fail Open.
func basePath(dir string) string { return filepath.Join(dir, "BASE") }

// readBaseMarker returns the recorded base, or 0 when absent or unreadable
// (an unreadable marker degrades to the strictest interpretation: the store
// must then start at height 1 or fail as corrupt).
func readBaseMarker(dir string) uint64 {
	data, err := os.ReadFile(basePath(dir))
	if err != nil || len(data) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(data)
}

// writeBaseMarkerLocked durably records base (removing the marker for base
// 0). The marker is written before segments are reclaimed, so a crash
// mid-GC leaves stale sub-base segments that recovery deletes — never a
// marker claiming less than what was already removed.
func (s *Store) writeBaseMarkerLocked(base uint64) error {
	if base == 0 {
		if err := os.Remove(basePath(s.dir)); err != nil && !os.IsNotExist(err) {
			return err
		}
		return nil
	}
	tmp, err := os.CreateTemp(s.dir, "BASE.tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], base)
	if _, err := tmp.Write(buf[:]); err != nil {
		tmp.Close()
		return err
	}
	if !s.opts.NoSync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), basePath(s.dir)); err != nil {
		return err
	}
	if !s.opts.NoSync {
		return s.syncDir()
	}
	return nil
}

// recover scans the segments in order, building the in-memory index and
// decoding every block. A structural failure in the last segment is a torn
// tail and is truncated away; the same failure in a sealed segment aborts
// with ErrCorrupt (data after it would be unanchored, and a crash cannot
// produce that shape — segments are sealed before a successor is created).
func (s *Store) recover() ([]*ledger.Block, error) {
	segs, err := listSegments(s.dir)
	if err != nil {
		return nil, err
	}
	// The BASE marker names the height GC reclaimed through: the first kept
	// segment must start exactly at base+1 (1 when no marker), so a missing
	// or reordered segment still fails loudly while a GC'd store opens clean.
	s.base = readBaseMarker(s.dir)
	var blocks []*ledger.Block
	next := s.base + 1
scan:
	for k := 0; k < len(segs); k++ {
		idx, last := segs[k], k == len(segs)-1
		path := s.segPath(idx)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("disk: %w", err)
		}
		if len(data) >= headerLen && [4]byte(data[:4]) == segMagic {
			if v := binary.BigEndian.Uint32(data[4:8]); v != formatVer {
				// A cleanly written header with a different version is not a
				// crash artifact — the store was written by a different
				// build of the record codec. Deleting it would be silent
				// data loss; fail loudly and let the operator wipe the
				// directory for an amnesia restart.
				return nil, fmt.Errorf("%w: segment %d has format version %d, this build reads %d",
					ErrCorrupt, idx, v, formatVer)
			}
		}
		headerOK := len(data) >= headerLen && [4]byte(data[:4]) == segMagic &&
			binary.BigEndian.Uint32(data[4:8]) == formatVer
		var first uint64
		if headerOK {
			first = binary.BigEndian.Uint64(data[8:16])
		}
		if headerOK && first >= 1 && first <= s.base && len(blocks) == 0 {
			// A whole segment below the marker is an interrupted GC: the
			// marker was durably advanced but the crash hit before this file
			// was removed. Finish the job. (GC reclaims whole segments, so a
			// sub-base segment can never carry blocks above the base.)
			if err := os.Remove(path); err != nil {
				return nil, fmt.Errorf("disk: %w", err)
			}
			s.recovered.RemovedSegments++
			segs = append(segs[:k:k], segs[k+1:]...)
			k--
			continue
		}
		if !headerOK || first != next {
			// Only shapes a crash can produce are repaired by dropping the
			// file: a short or garbled header (the segment was created but
			// its header write tore), or a record-less segment whose header
			// bytes are wrong (nothing is lost by removing it). A fully
			// valid header carrying the wrong first height over real records
			// means a missing or reordered segment — destroying CRC-valid
			// blocks to "repair" that would be data loss, so it fails.
			if !last || (headerOK && len(data) > headerLen) {
				return nil, fmt.Errorf("%w: segment %d has a bad header", ErrCorrupt, idx)
			}
			if err := os.Remove(path); err != nil {
				return nil, fmt.Errorf("disk: %w", err)
			}
			s.recovered.RemovedSegments++
			s.recovered.TruncatedBytes += int64(len(data))
			segs = segs[:k]
			break
		}
		off := headerLen
		for off < len(data) {
			rec, b := s.parseRecord(data[off:], next)
			if b == nil {
				if !last {
					return nil, fmt.Errorf("%w: segment %d has a bad record at offset %d", ErrCorrupt, idx, off)
				}
				// Torn tail: cut the partial record and everything after it.
				if err := os.Truncate(path, int64(off)); err != nil {
					return nil, fmt.Errorf("disk: %w", err)
				}
				s.recovered.TruncatedBytes += int64(len(data) - off)
				s.curSize = int64(off)
				break scan
			}
			blocks = append(blocks, b)
			s.index = append(s.index, recordLoc{seg: idx, off: int64(off), n: rec})
			next++
			off += rec
		}
		s.curSize = int64(len(data))
	}
	s.segs = segs
	if len(segs) > 0 {
		s.curSeg = segs[len(segs)-1]
		f, err := os.OpenFile(s.segPath(s.curSeg), os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("disk: %w", err)
		}
		if _, err := f.Seek(0, 2); err != nil {
			f.Close()
			return nil, fmt.Errorf("disk: %w", err)
		}
		s.cur = f
	}
	return blocks, nil
}

// parseRecord decodes one framed record expected to hold block height want.
// It returns the framed length and the block, or (0, nil) if the bytes are
// torn, CRC-damaged, undecodable, or carry the wrong height — recovery treats
// all of those identically.
func (s *Store) parseRecord(rest []byte, want uint64) (int, *ledger.Block) {
	if len(rest) < 4 {
		return 0, nil
	}
	n := binary.BigEndian.Uint32(rest)
	if n == 0 || n > maxRecordBytes || len(rest) < int(4+n+4) {
		return 0, nil
	}
	payload := rest[4 : 4+n]
	if binary.BigEndian.Uint32(rest[4+n:8+n]) != crc32.Checksum(payload, castagnoli) {
		return 0, nil
	}
	dec := types.NewDecoder(payload)
	b, err := s.codec.DecodeBlock(dec)
	if err != nil || dec.Err() != nil || dec.Remaining() != 0 ||
		b == nil || b.Height != want || b.Cert == nil {
		return 0, nil
	}
	return int(8 + n), b
}

// Append persists one certified block durably (or page-cached, under group
// commit) at the next height. It implements ledger.Store.
func (s *Store) Append(b *ledger.Block) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(b); err != nil {
		return err
	}
	return s.commitLocked()
}

// AppendBatch persists a verified range with a single durability barrier at
// the end — one fsync per catch-up chunk instead of one per block. It
// implements ledger.BatchStore. A mid-batch failure leaves a clean,
// recoverable prefix (the sticky error keeps the damage a tail).
func (s *Store) AppendBatch(blocks []*ledger.Block) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range blocks {
		if err := s.appendLocked(b); err != nil {
			return err
		}
	}
	return s.commitLocked()
}

// appendLocked frames and writes one block without syncing. Called with mu
// held.
func (s *Store) appendLocked(b *ledger.Block) error {
	switch {
	case s.closed:
		return fmt.Errorf("disk: store is closed")
	case s.err != nil:
		return s.err
	case b == nil || b.Cert == nil:
		return fmt.Errorf("disk: block carries no certificate")
	}
	if b.Height != s.base+uint64(len(s.index))+1 {
		return fmt.Errorf("disk: append height %d, store is at %d", b.Height, s.base+uint64(len(s.index)))
	}

	payload := types.GetEncoder()
	defer payload.Release()
	s.codec.EncodeBlock(payload, b)
	if payload.Len() > maxRecordBytes {
		return fmt.Errorf("disk: block %d encodes to %d bytes (max %d)", b.Height, payload.Len(), maxRecordBytes)
	}
	frame := types.GetEncoder()
	defer frame.Release()
	frame.BytesN(payload.Bytes()) // u32 length + payload
	frame.U32(crc32.Checksum(payload.Bytes(), castagnoli))

	if s.cur == nil || (s.curSize > headerLen && s.curSize+int64(frame.Len()) > s.opts.SegmentBytes) {
		if err := s.roll(b.Height); err != nil {
			return s.fail(err)
		}
	}
	off := s.curSize
	if _, err := s.cur.Write(frame.Bytes()); err != nil {
		// A partial write leaves a torn tail; the sticky error stops further
		// appends so the damage stays a tail, which recovery repairs.
		return s.fail(err)
	}
	s.curSize += int64(frame.Len())
	s.index = append(s.index, recordLoc{seg: s.curSeg, off: off, n: frame.Len()})
	return nil
}

// commitLocked applies the durability policy after one append or batch:
// fsync now (the default), or mark dirty for the group-commit flusher.
// Called with mu held.
func (s *Store) commitLocked() error {
	if s.cur == nil {
		return nil // nothing was ever written (empty batch on a fresh store)
	}
	if s.opts.GroupCommit > 0 || s.opts.NoSync {
		s.dirty = true
		return nil
	}
	if err := s.cur.Sync(); err != nil {
		return s.fail(err)
	}
	return nil
}

// roll seals the current segment and starts a new one whose first block is
// height first. The new header is synced before any record follows it, so a
// machine crash cannot persist records under an unwritten header.
func (s *Store) roll(first uint64) error {
	if s.cur != nil {
		if !s.opts.NoSync {
			if err := s.cur.Sync(); err != nil {
				return err
			}
		}
		if err := s.cur.Close(); err != nil {
			return err
		}
		s.cur = nil
	}
	idx := s.curSeg + 1
	f, err := os.OpenFile(s.segPath(idx), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	var hdr [headerLen]byte
	copy(hdr[:4], segMagic[:])
	binary.BigEndian.PutUint32(hdr[4:8], formatVer)
	binary.BigEndian.PutUint64(hdr[8:16], first)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if !s.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := s.syncDir(); err != nil {
			f.Close()
			return err
		}
	}
	s.cur, s.curSeg, s.curSize = f, idx, headerLen
	s.segs = append(s.segs, idx)
	return nil
}

// fail records the first write failure and poisons the store: every later
// write returns the same error, so a half-written tail never grows into a
// half-written middle.
func (s *Store) fail(err error) error {
	if s.err == nil {
		s.err = fmt.Errorf("disk: %w", err)
	}
	return s.err
}

// Sync forces dirty data to stable storage (a no-op under NoSync).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if s.opts.NoSync || s.cur == nil || s.closed {
		s.dirty = false
		return nil
	}
	if err := s.cur.Sync(); err != nil {
		return s.fail(err)
	}
	s.dirty = false
	return nil
}

// flusher is the group-commit loop: it syncs dirty segments every
// Options.GroupCommit until Close.
func (s *Store) flusher() {
	defer close(s.flushDone)
	t := time.NewTicker(s.opts.GroupCommit)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.mu.Lock()
			if s.dirty {
				s.syncLocked()
			}
			s.mu.Unlock()
		case <-s.flushQuit:
			return
		}
	}
}

// Truncate drops every block above height, so the store matches a ledger
// that accepted only a prefix of the recovered chain (bootstrap trims to a
// round boundary; a chain that fails re-verification is dropped whole with
// Truncate(0)). The next Append must supply height+1.
func (s *Store) Truncate(height uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("disk: store is closed")
	}
	if s.err != nil {
		return s.err
	}
	if height >= s.base+uint64(len(s.index)) {
		return nil
	}
	if s.cur != nil {
		if err := s.cur.Close(); err != nil {
			return s.fail(err)
		}
		s.cur = nil
	}
	if height <= s.base {
		// Cutting into (or below) the GC'd prefix leaves nothing servable:
		// wipe the segments whole. Truncating to exactly the base keeps the
		// marker (the store stays anchored and the next append is base+1);
		// cutting below it resets the store to a fresh, unanchored one.
		return s.wipeSegmentsLocked(func() uint64 {
			if height < s.base {
				return 0
			}
			return s.base
		}())
	}
	cut := s.index[height-s.base] // the record for block height+1
	keep := s.segs[:0]
	for _, idx := range s.segs {
		if idx <= cut.seg {
			keep = append(keep, idx)
			continue
		}
		if err := os.Remove(s.segPath(idx)); err != nil {
			return s.fail(err)
		}
	}
	s.segs = keep
	if err := os.Truncate(s.segPath(cut.seg), cut.off); err != nil {
		return s.fail(err)
	}
	f, err := os.OpenFile(s.segPath(cut.seg), os.O_RDWR, 0o644)
	if err != nil {
		return s.fail(err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return s.fail(err)
	}
	s.cur, s.curSeg, s.curSize = f, cut.seg, cut.off
	s.index = s.index[:height-s.base]
	if !s.opts.NoSync {
		if err := s.cur.Sync(); err != nil {
			return s.fail(err)
		}
		if err := s.syncDir(); err != nil {
			return s.fail(err)
		}
	}
	return nil
}

// Block reads one persisted block back from disk (1-based height), mainly
// for tests and operational tooling; the live node keeps the chain in
// memory and never reads the store after bootstrap.
func (s *Store) Block(height uint64) (*ledger.Block, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if height <= s.base || height > s.base+uint64(len(s.index)) {
		return nil, fmt.Errorf("disk: no block at height %d (store holds %d…%d)",
			height, s.base+1, s.base+uint64(len(s.index)))
	}
	loc := s.index[height-s.base-1]
	f, err := os.Open(s.segPath(loc.seg))
	if err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	defer f.Close()
	buf := make([]byte, loc.n)
	if _, err := f.ReadAt(buf, loc.off); err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	n, b := s.parseRecord(buf, height)
	if b == nil || n != loc.n {
		return nil, fmt.Errorf("%w: record for height %d failed its checks", ErrCorrupt, height)
	}
	return b, nil
}

// Height returns the height of the store's last block (the full logical
// chain height, including the GC'd prefix below Base).
func (s *Store) Height() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.base + uint64(len(s.index))
}

// Base returns the height of the last block below the stored suffix: 0 for a
// full-history store, the last reclaimed height after checkpoint GC.
func (s *Store) Base() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.base
}

// SetBase anchors an empty store at base: the next append must carry height
// base+1. This is the snapshot-bootstrap entry point — a node that installed
// a verified checkpoint persists only the suffix above it, so its first
// durable block sits far from height 1. The marker is written first, so a
// reopened store demands exactly this start. Stores that already hold blocks
// refuse, keeping append's contiguity check authoritative everywhere else.
func (s *Store) SetBase(base uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("disk: store is closed")
	}
	if s.err != nil {
		return s.err
	}
	if len(s.index) != 0 || len(s.segs) != 0 {
		return fmt.Errorf("disk: cannot set base %d on a store holding blocks", base)
	}
	if base == s.base {
		return nil
	}
	if err := s.writeBaseMarkerLocked(base); err != nil {
		return s.fail(err)
	}
	s.base = base
	return nil
}

// Reanchor implements ledger.AnchorStore: it discards every persisted block
// and re-bases the store at base, so the next append must carry base+1. A
// node installing a verified checkpoint snapshot over a stale chain uses it —
// every discarded block is covered by the snapshot's state.
func (s *Store) Reanchor(base uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("disk: store is closed")
	}
	if s.err != nil {
		return s.err
	}
	if s.cur != nil {
		if err := s.cur.Close(); err != nil {
			return s.fail(err)
		}
		s.cur = nil
	}
	return s.wipeSegmentsLocked(base)
}

// wipeSegmentsLocked removes every segment file and re-bases the empty store
// at base (durably, via the marker). Called with mu held and s.cur closed.
func (s *Store) wipeSegmentsLocked(base uint64) error {
	for _, idx := range s.segs {
		if err := os.Remove(s.segPath(idx)); err != nil {
			return s.fail(err)
		}
	}
	s.segs, s.index = nil, nil
	s.curSeg, s.curSize = 0, 0
	if err := s.writeBaseMarkerLocked(base); err != nil {
		return s.fail(err)
	}
	s.base = base
	if !s.opts.NoSync {
		if err := s.syncDir(); err != nil {
			return s.fail(err)
		}
	}
	return nil
}

// Segments returns how many segment files the store currently spans.
func (s *Store) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.segs)
}

// Bytes returns the total on-disk size of the store's segment files — the
// quantity checkpoint GC exists to bound.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, idx := range s.segs {
		if fi, err := os.Stat(s.segPath(idx)); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// ReclaimBelow is checkpoint garbage collection: it removes leading segments
// every one of whose blocks sits at or below height — blocks now covered by a
// durable state snapshot — and advances the store's base past them, always
// leaving at least keep segments (minimum 1: the open segment is never
// removed, so an append never races a reclaim of its own file). Reclaim is
// whole-segment, so the retained suffix always starts exactly where a
// surviving segment header says it does and reopening after GC serves only
// the suffix. It returns the number of segments and bytes reclaimed.
func (s *Store) ReclaimBelow(height uint64, keep int) (int, int64, error) {
	if keep < 1 {
		keep = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, 0, fmt.Errorf("disk: store is closed")
	}
	if s.err != nil {
		return 0, 0, s.err
	}
	// Plan: leading whole segments whose last block is ≤ height, never the
	// open segment, never below the retention floor.
	nseg, drop := 0, uint64(0)
	for len(s.segs)-nseg > keep {
		segIdx := s.segs[nseg]
		cnt := uint64(0)
		for int(drop+cnt) < len(s.index) && s.index[drop+cnt].seg == segIdx {
			cnt++
		}
		if cnt == 0 || s.base+drop+cnt > height {
			break // segment reaches above the checkpoint: keep it whole
		}
		nseg++
		drop += cnt
	}
	if nseg == 0 {
		return 0, 0, nil
	}
	// Durably advance the base marker first: a crash after the marker but
	// before (or during) the removals leaves whole sub-base segments, which
	// recovery recognizes as an interrupted GC and finishes deleting.
	if err := s.writeBaseMarkerLocked(s.base + drop); err != nil {
		return 0, 0, s.fail(err)
	}
	var bytes int64
	for i := 0; i < nseg; i++ {
		path := s.segPath(s.segs[i])
		if fi, err := os.Stat(path); err == nil {
			bytes += fi.Size()
		}
		if err := os.Remove(path); err != nil {
			return i, bytes, s.fail(err)
		}
	}
	s.base += drop
	s.index = s.index[drop:]
	s.segs = s.segs[nseg:]
	if !s.opts.NoSync {
		if err := s.syncDir(); err != nil {
			return nseg, bytes, s.fail(err)
		}
	}
	return nseg, bytes, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Recovered reports what Open repaired (zero values: a clean open).
func (s *Store) Recovered() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Err returns the sticky write failure, if any; a store with a non-nil Err
// refuses all further writes.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close flushes and closes the store. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	fq := s.flushQuit
	s.mu.Unlock()
	if fq != nil {
		close(fq)
		<-s.flushDone
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	if s.cur != nil {
		if !s.opts.NoSync {
			if err := s.cur.Sync(); err != nil {
				first = err
			}
		}
		if err := s.cur.Close(); err != nil && first == nil {
			first = err
		}
		s.cur = nil
	}
	unlockDir(s.lock)
	s.lock = nil
	if first != nil {
		return fmt.Errorf("disk: %w", first)
	}
	return nil
}

// syncDir fsyncs the directory so segment creation and removal survive a
// machine crash (file data alone is not enough: the directory entry itself
// must reach stable storage).
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
