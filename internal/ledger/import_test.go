package ledger

import (
	"errors"
	"fmt"
	"testing"

	"resilientdb/internal/types"
)

// fakeCert satisfies Certificate for ledger-level tests (protocol-level
// certificate verification is exercised in internal/core and internal/chaos).
type fakeCert struct{ d types.Digest }

func (f fakeCert) CertDigest() types.Digest { return f.d }
func (fakeCert) WireSize() int              { return 100 }

// certifiedLedger builds a chain of `rounds` rounds × z clusters with
// certificates attached, as the GeoBFT execution path would.
func certifiedLedger(rounds, z int) *Ledger {
	l := New()
	for r := 1; r <= rounds; r++ {
		for c := 0; c < z; c++ {
			b := batch(c, uint64(r), 3)
			l.AppendCertified(uint64(r), types.ClusterID(c), b, fakeCert{d: types.Hash([]byte{byte(r), byte(c)})})
		}
	}
	return l
}

// deepCopyBlocks clones exported blocks so mutations cannot corrupt the
// source ledger (Export shares pointers with it).
func deepCopyBlocks(blocks []*Block) []*Block {
	out := make([]*Block, len(blocks))
	for i, b := range blocks {
		nb := *b
		nb.Batch.Txns = append([]types.Transaction(nil), b.Batch.Txns...)
		out[i] = &nb
	}
	return out
}

func TestExportImportRoundTrip(t *testing.T) {
	src := certifiedLedger(4, 2)
	blocks := src.Export(1, 0)
	if len(blocks) != 8 {
		t.Fatalf("exported %d blocks, want 8", len(blocks))
	}

	dst := New()
	if err := dst.Import(blocks, nil); err != nil {
		t.Fatalf("import: %v", err)
	}
	if dst.Height() != src.Height() || dst.Head() != src.Head() {
		t.Fatalf("imported chain differs: height %d/%d head %s/%s",
			dst.Height(), src.Height(), dst.Head().Short(), src.Head().Short())
	}
	if err := dst.Verify(); err != nil {
		t.Fatal(err)
	}

	// Incremental import of a suffix onto an existing prefix.
	part := New()
	if err := part.Import(src.Export(1, 4), nil); err != nil {
		t.Fatal(err)
	}
	if err := part.Import(src.Export(5, 0), nil); err != nil {
		t.Fatal(err)
	}
	if part.Head() != src.Head() {
		t.Fatal("suffix import diverged")
	}

	// The verify callback sees every block before any mutation.
	seen := 0
	if err := New().Import(blocks, func(b *Block) error { seen++; return nil }); err != nil {
		t.Fatal(err)
	}
	if seen != len(blocks) {
		t.Fatalf("verify callback ran %d times, want %d", seen, len(blocks))
	}
}

func TestExportBounds(t *testing.T) {
	src := certifiedLedger(3, 2)
	if got := src.Export(7, 0); got != nil {
		t.Errorf("export past the end returned %d blocks", len(got))
	}
	if got := src.Export(0, 0); got != nil {
		t.Error("export from height 0 must return nil")
	}
	if got := src.Export(2, 3); len(got) != 3 {
		t.Errorf("bounded export returned %d blocks, want 3", len(got))
	}
	// Export stops at the first certificate-less block: it cannot be
	// re-verified by the importer.
	mixed := New()
	mixed.AppendCertified(1, 0, batch(0, 1, 2), fakeCert{})
	mixed.Append(2, 0, batch(0, 2, 2), types.Hash([]byte("digest-only")))
	if got := mixed.Export(1, 0); len(got) != 1 {
		t.Errorf("export across a certless block returned %d blocks, want 1", len(got))
	}
}

// TestImportRejectsTampered drives every corruption class through Import and
// requires rejection without mutation.
func TestImportRejectsTampered(t *testing.T) {
	src := certifiedLedger(4, 2)
	cases := []struct {
		name   string
		mutate func(blocks []*Block) []*Block
		verify func(*Block) error
	}{
		{"wrong start height", func(bs []*Block) []*Block { return bs[1:] }, nil},
		{"reordered", func(bs []*Block) []*Block { bs[2], bs[3] = bs[3], bs[2]; return bs }, nil},
		{"duplicated block", func(bs []*Block) []*Block { return append(bs[:3], bs[2:]...) }, nil},
		{"nil block", func(bs []*Block) []*Block { bs[4] = nil; return bs }, nil},
		{"corrupted transaction", func(bs []*Block) []*Block {
			bs[1].Batch.Txns[0].Value ^= 0xff
			return bs
		}, nil},
		{"corrupted batch digest", func(bs []*Block) []*Block {
			bs[5].BatchDigest[0] ^= 1
			return bs
		}, nil},
		{"broken prev link", func(bs []*Block) []*Block {
			bs[3].Prev[0] ^= 1
			return bs
		}, nil},
		{"tampered hash", func(bs []*Block) []*Block {
			bs[4].Hash[0] ^= 1
			return bs
		}, nil},
		{"certificate rejected", func(bs []*Block) []*Block { return bs },
			func(b *Block) error {
				if b.Height == 7 {
					return errors.New("bad certificate")
				}
				return nil
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst := New()
			if err := dst.Import(src.Export(1, 2), nil); err != nil {
				t.Fatal(err)
			}
			h, head := dst.Height(), dst.Head()
			blocks := tc.mutate(deepCopyBlocks(src.Export(3, 0)))
			if err := dst.Import(blocks, tc.verify); err == nil {
				t.Fatal("tampered range accepted")
			}
			if dst.Height() != h || dst.Head() != head {
				t.Fatalf("rejected import mutated the ledger: height %d→%d", h, dst.Height())
			}
			if err := dst.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// equivocatingLedgers builds two chains that share a common prefix of
// `common` rounds and then diverge: the same rounds carry different batches
// (and different — individually "valid", as far as the verify callback is
// concerned — certificates) on each side. This is the shape a >f-faulty
// cluster could produce; the import boundary must still refuse to splice
// them together.
func equivocatingLedgers(common, extra, z int) (a, b *Ledger) {
	a, b = New(), New()
	for r := 1; r <= common; r++ {
		for c := 0; c < z; c++ {
			bt := batch(c, uint64(r), 3)
			a.AppendCertified(uint64(r), types.ClusterID(c), bt, fakeCert{d: types.Hash([]byte{byte(r), byte(c)})})
			b.AppendCertified(uint64(r), types.ClusterID(c), bt, fakeCert{d: types.Hash([]byte{byte(r), byte(c)})})
		}
	}
	for r := common + 1; r <= common+extra; r++ {
		for c := 0; c < z; c++ {
			ba := batch(c, uint64(r), 3)
			bb := batch(c+100, uint64(r), 3) // the equivocated twin
			a.AppendCertified(uint64(r), types.ClusterID(c), ba, fakeCert{d: types.Hash([]byte{'a', byte(r), byte(c)})})
			b.AppendCertified(uint64(r), types.ClusterID(c), bb, fakeCert{d: types.Hash([]byte{'b', byte(r), byte(c)})})
		}
	}
	return a, b
}

// TestImportRejectsSplicedEquivocatingHistories is the prefix-safety check at
// the import boundary: a replica holding a prefix of history A is offered the
// suffix of an equivocating history B whose blocks all carry individually
// acceptable certificates. The hash-chain linkage — which now always travels
// with the block — must reject the splice, whether the forger presents B's
// genuine linkage or tries to hide it.
func TestImportRejectsSplicedEquivocatingHistories(t *testing.T) {
	histA, histB := equivocatingLedgers(2, 2, 2)

	// The importer already committed history A past the divergence point
	// (heights 1–6: the shared prefix plus one equivocated round of A).
	dst := New()
	if err := dst.Import(histA.Export(1, 6), nil); err != nil {
		t.Fatal(err)
	}
	h, head := dst.Height(), dst.Head()
	accept := func(*Block) error { return nil } // every certificate "verifies"

	// Splice attempt 1: B's suffix with its genuine linkage. The first
	// block's Prev names B's divergent round 3, not ours.
	if err := dst.Import(histB.Export(7, 0), accept); err == nil {
		t.Fatal("spliced suffix with foreign linkage accepted")
	}

	// Splice attempt 2: the forger zeroes Prev/Hash to hide the foreign
	// linkage. Zeroed linkage must be rejected too, not treated as a wildcard.
	hidden := deepCopyBlocks(histB.Export(7, 0))
	for _, b := range hidden {
		b.Prev, b.Hash = types.Digest{}, types.Digest{}
	}
	if err := dst.Import(hidden, accept); err == nil {
		t.Fatal("spliced suffix with zeroed linkage accepted")
	}

	// Splice attempt 3: the forger re-seals B's suffix onto our head with
	// Block.Seal, producing self-consistent linkage. The splice is now
	// undetectable by hashing alone — exactly why Import runs the verify
	// callback (certificate re-verification) before accepting; with ≤f faults
	// per cluster no equivocating certificate verifies, so the protocol-layer
	// callback is the check with teeth. Here the callback models it.
	sealed := deepCopyBlocks(histB.Export(7, 0))
	prev := head
	for _, b := range sealed {
		b.Seal(prev)
		prev = b.Hash
	}
	refuse := func(b *Block) error {
		if b.Height > 6 {
			return errors.New("equivocating certificate")
		}
		return nil
	}
	if err := dst.Import(sealed, refuse); err == nil {
		t.Fatal("re-sealed splice accepted despite certificate rejection")
	}

	if dst.Height() != h || dst.Head() != head {
		t.Fatalf("rejected splice mutated the ledger: height %d→%d", h, dst.Height())
	}
	// The genuine continuation of history A still imports.
	if err := dst.Import(histA.Export(7, 0), accept); err != nil {
		t.Fatalf("genuine suffix rejected: %v", err)
	}
}

// TestAuditPrefixes exercises the cross-node safety auditor over agreeing,
// lagging, and diverging chains.
func TestAuditPrefixes(t *testing.T) {
	histA, histB := equivocatingLedgers(2, 1, 2)
	lagging := New()
	if err := lagging.Import(histA.Export(1, 4), nil); err != nil {
		t.Fatal(err)
	}
	if err := AuditPrefixes(map[string]*Ledger{"a": histA, "lag": lagging}); err != nil {
		t.Fatalf("prefix-ordered chains failed the audit: %v", err)
	}
	err := AuditPrefixes(map[string]*Ledger{"a": histA, "b": histB, "lag": lagging})
	if err == nil {
		t.Fatal("diverging chains passed the audit")
	}
	// Tampering must fail the per-chain verification pass.
	histA.Block(3).Batch.Txns[0].Value ^= 1
	if err := AuditPrefixes(map[string]*Ledger{"a": histA}); err == nil {
		t.Fatal("tampered chain passed the audit")
	}
}

// FuzzLedgerImport mutates exported block ranges and asserts the atomicity
// contract: a rejected import leaves the ledger byte-identical, an accepted
// one leaves it verifiable.
func FuzzLedgerImport(f *testing.F) {
	f.Add([]byte{})                 // unmutated: must import cleanly
	f.Add([]byte{0, 0, 1})          // height bump
	f.Add([]byte{1, 3, 0xff})       // batch corruption
	f.Add([]byte{2, 7, 0})          // drop a block
	f.Add([]byte{3, 8, 0, 0, 8, 0}) // double swap
	f.Add([]byte{5, 4, 7, 0, 6, 1}) // digest + prev corruption
	f.Fuzz(func(t *testing.T, data []byte) {
		src := certifiedLedger(4, 2)
		blocks := deepCopyBlocks(src.Export(3, 0))
		for i := 0; i+2 < len(data) && i < 30; i += 3 {
			idx := int(data[i]) % len(blocks)
			val := data[i+2]
			if blocks[idx] == nil {
				continue
			}
			switch data[i+1] % 9 {
			case 0:
				blocks[idx].Height += uint64(val)
			case 1:
				blocks[idx].Round += uint64(val)
			case 2:
				blocks[idx].Cluster += types.ClusterID(val)
			case 3:
				if len(blocks[idx].Batch.Txns) > 0 {
					blocks[idx].Batch.Txns[0].Value ^= uint64(val)
				}
			case 4:
				blocks[idx].BatchDigest[0] ^= val
			case 5:
				blocks[idx].Prev[0] ^= val
			case 6:
				blocks[idx].Hash[0] ^= val
			case 7:
				blocks = append(blocks[:idx], blocks[idx+1:]...)
				if len(blocks) == 0 {
					return
				}
			case 8:
				if idx+1 < len(blocks) {
					blocks[idx], blocks[idx+1] = blocks[idx+1], blocks[idx]
				}
			}
		}

		dst := New()
		if err := dst.Import(src.Export(1, 2), nil); err != nil {
			t.Fatal(err)
		}
		h, head := dst.Height(), dst.Head()
		err := dst.Import(blocks, func(b *Block) error {
			if b.Cert == nil {
				return fmt.Errorf("no certificate")
			}
			return nil
		})
		if err != nil {
			if dst.Height() != h || dst.Head() != head {
				t.Fatalf("rejected import mutated the ledger (height %d→%d)", h, dst.Height())
			}
		}
		if err := dst.Verify(); err != nil {
			t.Fatalf("ledger unverifiable after import (err=%v): %v", err, err)
		}
	})
}
