package chaos

// The bounded-history scenarios. A deployment that checkpoints and
// garbage-collects cannot be rejoined by replaying its chain — the chain
// below the checkpoint is gone — so these scenarios prove the replacement
// path: verified snapshot-based state transfer plus parallel suffix fetch
// (snapshot-join), and the same path under a Byzantine snapshot server
// (byz-tampered-snapshot, registered with the Byzantine suite).
//
// Both scenarios start from a pre-seeded data directory: executing a
// 100 000-block chain live would take hours, so the seeder writes each
// replica's stores byte-for-byte as a long, GC'd run leaves them — a
// snapshot archive holding the checkpoint, no block segments — and the
// deployment boots from there, exactly as a restarted long-running node
// does.

import (
	"fmt"
	"path/filepath"
	"time"

	"resilientdb/internal/byzantine"
	"resilientdb/internal/config"
	"resilientdb/internal/crypto"
	"resilientdb/internal/kvstore"
	"resilientdb/internal/pbft"
	"resilientdb/internal/snapshot"
	"resilientdb/internal/types"
)

// seedCheckpointedDeployment writes each replica's slice of dataDir (except
// the ids in skip, which stay fresh) as checkpoint GC leaves it after a long
// run ending at round: a snapshot archive holding the round-R checkpoint,
// endorsed with the replica's own deterministic key, and no block segments.
// On boot each seeded replica installs its archived checkpoint and resumes
// consensus at height round·z.
//
// The checkpoint is built honestly wherever the live protocol can observe
// it: the per-cluster commit-history folds walk the full no-op prefix with
// the exact fold replicas use going forward, the state is what executing
// that prefix produces (no-ops leave the preloaded table untouched), and the
// tip certificate carries a real signature quorum. Only the tip's Prev
// digest is synthesized — the blocks that would pin it are garbage-collected,
// so, as for any GC'd chain, it is vouched for solely by the replicas'
// matching endorsements.
func seedCheckpointedDeployment(dataDir string, topo config.Topology, round uint64, records int, skip map[types.NodeID]bool) error {
	z := topo.Clusters
	dir := crypto.NewDirectory(crypto.Real, topo.AllReplicas())
	suite := func(id types.NodeID) *crypto.Suite {
		return crypto.NewSuite(dir, id, crypto.FreeCosts(), nil)
	}
	state := kvstore.New(records).Serialize()

	hist := make([]types.Digest, z)
	var tip types.Batch
	for rd := uint64(1); rd <= round; rd++ {
		for c := 0; c < z; c++ {
			b := types.Batch{Client: types.ClientIDBase, Seq: (rd-1)*uint64(z) + uint64(c) + 1, NoOp: true}
			b.PrimeDigest()
			enc := types.NewEncoder(72)
			enc.Digest(hist[c])
			enc.Digest(b.Digest())
			hist[c] = types.Hash(enc.Bytes())
			if rd == round && c == z-1 {
				tip = b
			}
		}
	}

	members := topo.ClusterMembers(z - 1)
	quorum := topo.PerCluster - topo.F()
	cert := &pbft.Certificate{
		View: 0, Seq: round, Digest: tip.Digest(), Batch: tip,
		Signers: append([]types.NodeID(nil), members[:quorum]...),
	}
	payload := pbft.CommitPayload(0, round, cert.Digest)
	for _, signer := range cert.Signers {
		cert.Sigs = append(cert.Sigs, suite(signer).Sign(payload))
	}

	tipPrev := types.Hash([]byte(fmt.Sprintf("chaos/seed-prefix/%d", round)))
	manifest := snapshot.Build(round, z, tipPrev, cert, hist, state)
	for _, id := range topo.AllReplicas() {
		if skip[id] {
			continue
		}
		arch, err := snapshot.OpenArchive(filepath.Join(dataDir, fmt.Sprintf("node-%d", int(id)), "snapshots"), 2)
		if err != nil {
			return err
		}
		m := *manifest
		m.Sign(suite(id))
		if err := arch.Put(&m, state); err != nil {
			return err
		}
	}
	return nil
}

// snapshotJoin boots a deployment whose every replica but one sits at a GC'd
// 100 000-block checkpoint, with the straggler completely fresh. The fresh
// replica cannot replay the chain — no peer retains it — so reaching the
// live height requires the full state-transfer path: f+1 matching manifest
// endorsements from its cluster, content-addressed chunk transfer, commit
// certificate re-verification, and parallel suffix fetch. The scenario
// asserts the join converges and that block transfer carried only the live
// suffix, never the snapshot-covered prefix.
func snapshotJoin() Scenario {
	const seedRound = 50_000 // z=2 → a 100 000-block chain
	return Scenario{
		Name:        "snapshot-join",
		Description: "a fresh replica joins a GC'd 100k-block chain via verified snapshot + parallel suffix fetch",
		Clusters:    2, Replicas: 4,
		Disk:             true,
		SnapshotInterval: 8,
		RetainSegments:   2,
		Seed: func(dataDir string, topo config.Topology) error {
			return seedCheckpointedDeployment(dataDir, topo, seedRound, 128,
				map[types.NodeID]bool{topo.ReplicaID(0, 3): true})
		},
		Run: func(e *Env) error {
			z := uint64(e.Topo.Clusters)
			base := seedRound * z
			// Boot runs on each node's worker; reaching the checkpoint height
			// is only possible by installing the seeded archive (consensus
			// from genesis would need hours to cover 100k blocks).
			if err := e.WaitHeight(0, 0, base, 30*time.Second); err != nil {
				return err
			}
			start := time.Now()
			e.StartLoad(0)
			e.StartLoad(1)
			// The seeded replicas must resume consensus past the checkpoint…
			if err := e.WaitHeight(0, 0, base+warmup, 60*time.Second); err != nil {
				return err
			}
			// …and the fresh replica must pass it too, which only the
			// snapshot path can deliver.
			if err := e.WaitHeight(0, 3, base+1, 120*time.Second); err != nil {
				return err
			}
			e.Logf("chaos: fresh replica passed the 100k checkpoint %v after boot",
				time.Since(start).Round(time.Millisecond))
			e.StopLoads()
			if err := e.WaitConverged(120 * time.Second); err != nil {
				return err
			}
			e.StopAll()
			if st := e.NodeSnapshotStats(0, 3); st.Installed == 0 {
				return fmt.Errorf("chaos: the fresh replica never installed a snapshot: %+v", st)
			}
			rep := e.Fab.Replica(e.ReplicaID(0, 3))
			final := rep.Ledger().Height()
			fetched := rep.CatchUpBlocks()
			// The snapshot covers everything through the seeded checkpoint
			// (or a newer one), so block transfer may carry at most the live
			// suffix plus parallel-fetch overlap slack. Fetching more means
			// the prefix was downloaded block by block — the unbounded
			// behaviour this subsystem exists to remove.
			if maxFetch := final - base + 8*z; fetched > maxFetch {
				return fmt.Errorf("chaos: joiner fetched %d blocks, want ≤ %d (snapshot not used)", fetched, maxFetch)
			}
			return e.AssertPrefixes()
		},
	}
}

// byzTamperedSnapshot repeats the join against a compromised snapshot
// server: one seeded replica in the joiner's own cluster runs
// byzantine.SnapshotTamperer, so every manifest it serves arrives with a
// garbled signature, a wrong state hash, a forged certificate, or a
// rewritten history fold. None of it may reach the joiner's state: forgeries
// are rejected and counted, the diverging manifests can never assemble an
// f+1 matching quorum, and the join must still complete through the honest
// peers.
func byzTamperedSnapshot() Scenario {
	const seedRound = 1_000 // the attack needs the snapshot path, not scale
	return Scenario{
		Name:        "byz-tampered-snapshot",
		Description: "tampered checkpoint manifests from a Byzantine server: rejected, counted, join completes via honest peers",
		Clusters:    2, Replicas: 4,
		Disk:             true,
		SnapshotInterval: 8,
		RetainSegments:   2,
		Byzantine: []Role{
			{Cluster: 0, Index: 1, Script: &byzantine.SnapshotTamperer{}},
		},
		Seed: func(dataDir string, topo config.Topology) error {
			return seedCheckpointedDeployment(dataDir, topo, seedRound, 128,
				map[types.NodeID]bool{topo.ReplicaID(0, 3): true})
		},
		Run: func(e *Env) error {
			z := uint64(e.Topo.Clusters)
			base := seedRound * z
			e.Arm(0, 1) // attacking from the very first manifest request
			e.StartLoad(0)
			e.StartLoad(1)
			if err := e.WaitHeight(0, 0, base+warmup, 60*time.Second); err != nil {
				return err
			}
			if err := e.WaitHeight(0, 3, base+1, 120*time.Second); err != nil {
				return err
			}
			e.StopLoads()
			if err := e.WaitConverged(120 * time.Second); err != nil {
				return err
			}
			e.StopAll()
			adv := e.Adversary(0, 1)
			if st := adv.Stats(); st.Tampered == 0 {
				return fmt.Errorf("chaos: the snapshot tamperer never fired: %+v", st)
			}
			// Rejection accounting: the garbled-signature and forged-
			// certificate variants must land in the snapshot-reject counter
			// rather than vanish (the re-signed variants are starved of the
			// manifest quorum instead — silently, by design).
			if st := e.SnapshotStats(); st.Rejected == 0 {
				return fmt.Errorf("chaos: tampered snapshot material vanished uncounted: %+v", st)
			}
			if st := e.NodeSnapshotStats(0, 3); st.Installed == 0 {
				return fmt.Errorf("chaos: the joiner never installed a snapshot: %+v", st)
			}
			_ = z
			return e.AssertPrefixes()
		},
	}
}
