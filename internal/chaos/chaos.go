// Package chaos is a deterministic fault-injection harness for the
// ResilientDB fabric: scripted scenarios crash primaries, partition
// clusters, restart replicas with or without their disk, and hand up to f
// replicas per cluster to scripted Byzantine adversaries
// (internal/byzantine), then assert the guarantees the paper claims for
// GeoBFT — safety (every honest replica's ledger verifies and all honest
// ledgers are prefixes of one another) and liveness (the commit height
// advances again once the fault heals or is routed around by local/remote
// view changes).
//
// Scenarios run a real fabric over the in-process transport wrapped in
// transport.Faulty (and, with Byzantine roles, transport.Tap), so every
// injected decision comes from a fixed seed. The suite runs in tier-1
// (`go test ./internal/chaos`) and via `make chaos`; set CHAOS_SEED to
// replay one seed byte-for-byte (see the README's seed-replay workflow).
package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"resilientdb/internal/byzantine"
	"resilientdb/internal/config"
	"resilientdb/internal/crypto"
	"resilientdb/internal/fabric"
	"resilientdb/internal/ledger"
	"resilientdb/internal/mempool"
	"resilientdb/internal/metrics"
	"resilientdb/internal/transport"
	"resilientdb/internal/types"
)

// Scenario is one scripted fault-injection run.
type Scenario struct {
	// Name identifies the scenario in logs and test output.
	Name string
	// Description says what the scenario proves.
	Description string
	// Clusters and Replicas set the topology (z clusters of n replicas).
	Clusters, Replicas int
	// Disk runs the deployment disk-backed: every replica persists its
	// ledger to a block store under a scenario-scoped temporary data
	// directory, so restarts recover from real files (and the scenario can
	// corrupt those files to model torn writes).
	Disk bool
	// SnapshotInterval bounds history for the run: every N rounds each
	// replica checkpoints its executed state and garbage-collects ledger
	// segments below it (0: disabled). See fabric.Config.SnapshotInterval.
	SnapshotInterval uint64
	// RetainSegments is the segment retention below checkpoints (0: 2).
	RetainSegments int
	// Seed, when set, pre-populates the scenario's data directory before
	// the deployment opens (disk-backed scenarios only): the hook writes
	// each replica's stores exactly as a prior long, GC'd run would have
	// left them, so a scenario can model joining a chain far longer than a
	// test could execute live.
	Seed func(dataDir string, topo config.Topology) error
	// Byzantine hands replicas to scripted adversaries. Compromised
	// replicas keep running their honest state machine, but every message
	// they send passes through the role's attack script. They are excluded
	// from the safety and convergence assertions (the invariants GeoBFT
	// claims are over honest replicas). Run refuses more than f roles per
	// cluster unless AllowOverF is set.
	Byzantine []Role
	// AllowOverF lifts the per-cluster fault-bound check on Byzantine
	// roles. It exists only for the harness's own teeth tests, which prove
	// the invariant checks fail once the >f assumption is violated.
	AllowOverF bool
	// Mempool tunes each replica's client admission layer for the run
	// (zero values select the mempool package defaults). Client-boundary
	// scenarios shrink capacity and rate limits so a rogue client hits
	// them within seconds instead of minutes.
	Mempool mempool.Config
	// Run drives the deployment; a non-nil error is an assertion failure.
	Run func(e *Env) error
}

// Role assigns an attack script to one replica of the topology.
type Role struct {
	// Cluster and Index locate the compromised replica.
	Cluster, Index int
	// Script is the deterministic attack it runs (see internal/byzantine).
	Script byzantine.Script
}

// Run executes one scenario against a fresh deployment whose fault injector
// (and adversary fleet, with Byzantine roles) is seeded with seed. logf
// (optional) receives progress lines.
func Run(s Scenario, seed int64, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	topo := config.NewTopology(s.Clusters, s.Replicas)
	if err := checkFaultBound(s, topo); err != nil {
		return err
	}
	net := transport.NewFaulty(transport.NewMem(), seed)
	var tr transport.Transport = net
	byz := make(map[types.NodeID]*byzantine.Adversary, len(s.Byzantine))
	if len(s.Byzantine) > 0 {
		fleet := byzantine.NewFleet(seed)
		for _, role := range s.Byzantine {
			id := topo.ReplicaID(role.Cluster, role.Index)
			byz[id] = fleet.Adversary(topo, crypto.Real, id, role.Script)
		}
		// The tap wraps the fault injector: a compromised replica's rewritten
		// deliveries experience the same drops and partitions as honest
		// traffic.
		tr = transport.NewTap(net, fleet.Intercept)
	}
	cfg := fabric.Config{
		Topo:             topo,
		BatchSize:        4,
		Records:          128,
		LocalTimeout:     400 * time.Millisecond,
		RemoteTimeout:    700 * time.Millisecond,
		Transport:        tr,
		Mempool:          s.Mempool,
		SnapshotInterval: s.SnapshotInterval,
		RetainSegments:   s.RetainSegments,
	}
	var dataDir string
	if s.Disk {
		var err error
		if dataDir, err = os.MkdirTemp("", "chaos-"+s.Name+"-*"); err != nil {
			return fmt.Errorf("chaos: %w", err)
		}
		defer os.RemoveAll(dataDir)
		cfg.DataDir = dataDir
		if s.Seed != nil {
			if err := s.Seed(dataDir, topo); err != nil {
				return fmt.Errorf("chaos: seeding %s: %w", s.Name, err)
			}
		}
	}
	fab, err := fabric.Open(cfg)
	if err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	e := &Env{
		Topo:    topo,
		Fab:     fab,
		Net:     net,
		Logf:    logf,
		dataDir: dataDir,
		crashed: make(map[types.NodeID]bool),
		byz:     byz,
	}
	defer e.StopAll()
	logf("chaos/%s: z=%d n=%d seed=%d disk=%v byzantine=%d", s.Name, s.Clusters, s.Replicas, seed, s.Disk, len(s.Byzantine))
	return s.Run(e)
}

// checkFaultBound enforces the ≤ f Byzantine replicas per cluster assumption
// the protocol's guarantees rest on (unless the scenario explicitly opts out
// to prove what happens beyond it).
func checkFaultBound(s Scenario, topo config.Topology) error {
	if s.AllowOverF {
		return nil
	}
	perCluster := make(map[int]int)
	for _, role := range s.Byzantine {
		perCluster[role.Cluster]++
		if perCluster[role.Cluster] > topo.F() {
			return fmt.Errorf("chaos: scenario %s violates the fault bound: %d byzantine replicas in cluster %d, protocol tolerates f=%d (set AllowOverF to test beyond the bound)",
				s.Name, perCluster[role.Cluster], role.Cluster, topo.F())
		}
	}
	return nil
}

// Env is the running deployment a scenario manipulates and asserts against.
type Env struct {
	// Topo is the deployment shape (z clusters of n replicas).
	Topo config.Topology
	// Fab is the running fabric under test.
	Fab *fabric.Fabric
	// Net is the seeded fault injector wrapping the transport.
	Net *transport.Faulty
	// Logf receives progress lines (never nil).
	Logf func(format string, args ...any)

	mu      sync.Mutex
	loaders []*Loader
	crashed map[types.NodeID]bool
	stopped bool
	dataDir string // scenario-scoped block-store root ("" unless Scenario.Disk)
	byz     map[types.NodeID]*byzantine.Adversary
}

// Adversary returns the attack runtime compromising a replica (nil for
// honest replicas), so scenarios can arm it and assert on its action
// counters.
func (e *Env) Adversary(cluster, idx int) *byzantine.Adversary {
	return e.byz[e.ReplicaID(cluster, idx)]
}

// Arm activates a compromised replica's attack script (scripts start dormant
// so the scenario can prove the deployment healthy first). It panics on an
// honest replica — that is a scenario bug.
func (e *Env) Arm(cluster, idx int) {
	adv := e.Adversary(cluster, idx)
	if adv == nil {
		panic(fmt.Sprintf("chaos: Arm(%d,%d): replica has no byzantine role", cluster, idx))
	}
	e.Logf("chaos: arming %s on %v", adv.Script().Name(), adv.ID())
	adv.Arm()
}

// VerifyRejects reads the deployment's forged-message counter: every message
// discarded by a cryptographic check, pooled or inline (see
// metrics.DropStats.VerifyReject).
func (e *Env) VerifyRejects() uint64 { return e.Fab.Stats().VerifyReject }

// SnapshotStats reads the deployment-wide checkpoint/GC counters (snapshots
// written, served, installed, rejected; segments and bytes reclaimed), summed
// across replicas.
func (e *Env) SnapshotStats() metrics.SnapshotStats { return e.Fab.Stats().Snapshots }

// NodeSnapshotStats reads one replica's checkpoint/GC counters.
func (e *Env) NodeSnapshotStats(cluster, idx int) metrics.SnapshotStats {
	return e.Fab.Node(e.ReplicaID(cluster, idx)).SnapshotStats()
}

// MempoolStats reads the deployment-wide client admission counters
// (duplicates shed, replays answered from the ledger, rate-limited and
// evicted requests), summed across replicas.
func (e *Env) MempoolStats() metrics.MempoolStats { return e.Fab.Stats().Mempool }

// MempoolLen reads one replica's count of pending admitted client requests —
// the quantity Scenario.Mempool.Capacity bounds.
func (e *Env) MempoolLen(cluster, idx int) int {
	return e.Fab.Node(e.ReplicaID(cluster, idx)).MempoolLen()
}

// RogueClient provisions client identity index as a scripted Byzantine
// client attacking the deployment's admission boundary (see
// byzantine.RogueClient). Its traffic rides the same fault-injected
// transport as honest clients'.
func (e *Env) RogueClient(index int) *byzantine.RogueClient {
	e.Logf("chaos: provisioning rogue client %d (cluster %d)", index, index%e.Topo.Clusters)
	return byzantine.NewRogueClient(e.Net, e.Topo, crypto.Real, index)
}

// NodeDir returns a replica's block-store directory in a disk-backed
// scenario, so scripts can corrupt its files while the replica is down.
func (e *Env) NodeDir(cluster, idx int) string {
	return filepath.Join(e.dataDir, fmt.Sprintf("node-%d", int(e.ReplicaID(cluster, idx))))
}

// TearDiskTail models a crash mid-write against a stopped replica's block
// store: the last bytes of its newest segment file are chopped mid-record
// and a fragment of garbage is appended, exactly the shape a power cut
// leaves behind. The replica must be crashed first (its store is closed);
// recovery on restart must truncate the torn tail and keep the clean prefix.
func (e *Env) TearDiskTail(cluster, idx int) error {
	segs, err := filepath.Glob(filepath.Join(e.NodeDir(cluster, idx), "seg-*.rdb"))
	if err != nil {
		return fmt.Errorf("chaos: listing segments for (%d,%d): %w", cluster, idx, err)
	}
	if len(segs) == 0 {
		return fmt.Errorf("chaos: no segments to tear for (%d,%d) in %s", cluster, idx, e.NodeDir(cluster, idx))
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	if err := os.Truncate(last, fi.Size()-1); err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	defer f.Close()
	// A partial record: a plausible length prefix with too few bytes after it.
	if _, err := f.Write([]byte{0x00, 0x00, 0x01, 0x00, 0xde, 0xad}); err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	e.Logf("chaos: tore disk tail of %s", last)
	return nil
}

// ReplicaID maps (cluster, local index) to a node id.
func (e *Env) ReplicaID(cluster, idx int) types.NodeID { return e.Topo.ReplicaID(cluster, idx) }

// ClusterNodes returns the replica ids of one cluster (for partitioning).
func (e *Env) ClusterNodes(cluster int) []types.NodeID { return e.Topo.ClusterMembers(cluster) }

// Crash halts one replica like a machine failure.
func (e *Env) Crash(cluster, idx int) {
	id := e.ReplicaID(cluster, idx)
	e.Logf("chaos: crash %v", id)
	e.Fab.StopNode(id)
	e.mu.Lock()
	e.crashed[id] = true
	e.mu.Unlock()
}

// Restart brings a crashed replica back, with its ledger (crash-with-disk)
// or without (amnesia).
func (e *Env) Restart(cluster, idx int, keepLedger bool) error {
	id := e.ReplicaID(cluster, idx)
	e.Logf("chaos: restart %v keepLedger=%v", id, keepLedger)
	if err := e.Fab.StartNode(id, keepLedger); err != nil {
		return err
	}
	e.mu.Lock()
	delete(e.crashed, id)
	e.mu.Unlock()
	return nil
}

// live returns the ids of honest replicas that are not crashed. Compromised
// replicas are excluded: the invariants every scenario asserts — prefix
// safety, convergence — are GeoBFT's claims about honest replicas (a
// Byzantine node's ledger is its own problem).
func (e *Env) live() []types.NodeID {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []types.NodeID
	for _, id := range e.Topo.AllReplicas() {
		if !e.crashed[id] && e.byz[id] == nil {
			out = append(out, id)
		}
	}
	return out
}

// Height reads one replica's ledger height (safe while running).
func (e *Env) Height(cluster, idx int) uint64 {
	return e.Fab.Replica(e.ReplicaID(cluster, idx)).Ledger().Height()
}

// MaxHeight returns the highest ledger height across live replicas.
func (e *Env) MaxHeight() uint64 {
	var max uint64
	for _, id := range e.live() {
		if h := e.Fab.Replica(id).Ledger().Height(); h > max {
			max = h
		}
	}
	return max
}

// WaitHeight polls until the replica's ledger reaches target blocks.
func (e *Env) WaitHeight(cluster, idx int, target uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if h := e.Height(cluster, idx); h >= target {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: replica (%d,%d) stuck at height %d, want ≥ %d",
				cluster, idx, e.Height(cluster, idx), target)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// WaitCommitted polls until the loader has committed at least target batches.
func (e *Env) WaitCommitted(l *Loader, target uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if l.Committed() >= target {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: load stuck at %d committed batches, want ≥ %d", l.Committed(), target)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// WaitConverged polls until every live honest replica reports the same
// non-zero ledger height and head, then verifies every chain. This is the
// combined safety+liveness postcondition of each scenario.
func (e *Env) WaitConverged(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for {
		last = e.converged()
		if last == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return last
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (e *Env) converged() error {
	live := e.live()
	if len(live) == 0 {
		return fmt.Errorf("chaos: no live replicas")
	}
	ref := e.Fab.Replica(live[0]).Ledger()
	if ref.Height() == 0 {
		return fmt.Errorf("chaos: %v has an empty ledger", live[0])
	}
	for _, id := range live[1:] {
		l := e.Fab.Replica(id).Ledger()
		if l.Height() != ref.Height() || l.Head() != ref.Head() {
			return fmt.Errorf("chaos: %v at height %d head %s, %v at height %d head %s",
				live[0], ref.Height(), ref.Head().Short(), id, l.Height(), l.Head().Short())
		}
	}
	for _, id := range live {
		if err := e.Fab.Replica(id).Ledger().Verify(); err != nil {
			return fmt.Errorf("chaos: %v: %w", id, err)
		}
	}
	return nil
}

// AssertPrefixes checks the pure safety property mid-fault through the
// cross-node prefix auditor (ledger.AuditPrefixes): every pair of honest
// replica ledgers — crashed ones included; their frozen state must never
// contradict the live chain — verifies and is prefix-ordered. Compromised
// replicas are excluded: safety is a claim about honest replicas only.
func (e *Env) AssertPrefixes() error {
	ledgers := make(map[string]*ledger.Ledger)
	for _, id := range e.Topo.AllReplicas() {
		if e.byz[id] == nil {
			ledgers[id.String()] = e.Fab.Replica(id).Ledger()
		}
	}
	if err := ledger.AuditPrefixes(ledgers); err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	return nil
}

// View returns a replica's local PBFT view. Only meaningful after StopAll
// (the worker is halted, so the read cannot race).
func (e *Env) View(cluster, idx int) uint64 {
	return e.Fab.Replica(e.ReplicaID(cluster, idx)).Local().View()
}

// StopLoads stops every loader started via StartLoad.
func (e *Env) StopLoads() {
	e.mu.Lock()
	loaders := e.loaders
	e.loaders = nil
	e.mu.Unlock()
	for _, l := range loaders {
		l.Stop()
	}
}

// StopAll stops loads and shuts the deployment down (idempotent). After it
// returns, per-replica state (views, ledgers) can be read race-free.
func (e *Env) StopAll() {
	e.StopLoads()
	e.mu.Lock()
	done := e.stopped
	e.stopped = true
	e.mu.Unlock()
	if !done {
		e.Fab.Stop()
	}
}

// Loader submits small transaction batches from a background goroutine until
// stopped, tolerating per-batch timeouts (faults are expected to fail some
// submissions; the stream continues so liveness is observable).
type Loader struct {
	client    int
	cl        *fabric.Client
	committed atomic.Uint64
	quit      chan struct{}
	done      chan struct{}
	stopOnce  sync.Once
}

// StartLoad opens client index i (home cluster i mod z) and starts its
// submission loop.
func (e *Env) StartLoad(client int) *Loader {
	l := &Loader{
		client: client,
		cl:     e.Fab.NewClient(client),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	e.mu.Lock()
	e.loaders = append(e.loaders, l)
	e.mu.Unlock()
	go func() {
		defer close(l.done)
		for k := 0; ; k++ {
			select {
			case <-l.quit:
				return
			default:
			}
			txns := []types.Transaction{
				{Key: uint64(l.client)<<32 | uint64(2*k), Value: uint64(k)},
				{Key: uint64(l.client)<<32 | uint64(2*k+1), Value: uint64(k)},
			}
			if err := l.cl.Submit(txns, 8*time.Second); err == nil {
				l.committed.Add(1)
			}
		}
	}()
	return l
}

// Committed returns how many batches the loader has seen confirmed.
func (l *Loader) Committed() uint64 { return l.committed.Load() }

// Stop halts the loader, unblocking any in-flight submission, and returns
// the number of committed batches. Idempotent.
func (l *Loader) Stop() uint64 {
	l.stopOnce.Do(func() {
		close(l.quit)
		l.cl.Close() // idempotent; unblocks a Submit in flight
		<-l.done
	})
	return l.committed.Load()
}
