package chaos

import (
	"fmt"
	"time"
)

// Scenarios returns the built-in suite: the failure modes of the paper's
// evaluation (Figures 6–7) plus the recovery path the protocol description
// leaves implicit — a replica rejoining after a crash.
func Scenarios() []Scenario {
	return []Scenario{
		crashPrimary(),
		crashRemotePrimary(),
		partitionHeal(),
		restartCatchUp(),
		crashWithDisk(),
		snapshotJoin(),
	}
}

// warmup is the height every scenario reaches before injecting its fault,
// proving the deployment was healthy first.
const warmup = 4

// crashPrimary kills the primary of cluster 0 mid-load. The local PBFT view
// change (Figure 6) must elect a new primary and commits must resume.
func crashPrimary() Scenario {
	return Scenario{
		Name:        "crash-primary",
		Description: "local view change routes around a crashed cluster primary",
		Clusters:    2, Replicas: 4,
		Run: func(e *Env) error {
			l0 := e.StartLoad(0)
			e.StartLoad(1)
			if err := e.WaitHeight(0, 1, warmup, 60*time.Second); err != nil {
				return err
			}
			e.Crash(0, 0)
			before := l0.Committed()
			// Liveness: cluster 0 keeps confirming client batches, which after
			// the crash requires a completed local view change.
			if err := e.WaitCommitted(l0, before+3, 90*time.Second); err != nil {
				return err
			}
			e.StopLoads()
			if err := e.WaitConverged(60 * time.Second); err != nil {
				return err
			}
			e.StopAll()
			if v := e.View(0, 1); v == 0 {
				return fmt.Errorf("chaos: cluster 0 committed past the crash without a view change")
			}
			return e.AssertPrefixes()
		},
	}
}

// crashRemotePrimary kills the primary of cluster 1 while only cluster 0
// carries load. Execution at cluster 0 blocks on cluster 1's certificates,
// so progress requires the remote view-change protocol (Figure 7): DRvc
// agreement inside cluster 0, a signed Rvc to cluster 1, and a forced view
// change there so its new primary resumes certifying (no-op) rounds.
func crashRemotePrimary() Scenario {
	return Scenario{
		Name:        "crash-remote-primary",
		Description: "DRvc/Rvc replace a remote cluster's crashed primary",
		Clusters:    2, Replicas: 4,
		Run: func(e *Env) error {
			l0 := e.StartLoad(0)
			if err := e.WaitHeight(0, 1, warmup, 60*time.Second); err != nil {
				return err
			}
			e.Crash(1, 0)
			h := e.Height(0, 1)
			// Liveness: cluster 0's execution passes the crash point, which
			// requires fresh cluster-1 certificates — impossible without the
			// remote view change deposing the dead primary.
			if err := e.WaitHeight(0, 1, h+2*uint64(e.Topo.Clusters), 120*time.Second); err != nil {
				return err
			}
			_ = l0
			e.StopLoads()
			if err := e.WaitConverged(60 * time.Second); err != nil {
				return err
			}
			e.StopAll()
			if v := e.View(1, 1); v == 0 {
				return fmt.Errorf("chaos: cluster 1 advanced without the Rvc-forced view change")
			}
			return e.AssertPrefixes()
		},
	}
}

// partitionHeal cuts all cross-cluster links, holds the partition while both
// sides stall (local replication continues; global execution cannot), then
// heals and requires the deployment to converge — which exercises the
// resharing path: each side's remote view change forces the other cluster's
// primary to re-send every certificate the partition swallowed.
func partitionHeal() Scenario {
	return Scenario{
		Name:        "partition-heal",
		Description: "cross-cluster partition: safety while split, liveness after heal",
		Clusters:    2, Replicas: 4,
		Run: func(e *Env) error {
			e.StartLoad(0)
			e.StartLoad(1)
			if err := e.WaitHeight(0, 1, warmup, 60*time.Second); err != nil {
				return err
			}
			e.Logf("chaos: partitioning cluster 0 from cluster 1")
			e.Net.Partition(e.ClusterNodes(0), e.ClusterNodes(1))
			time.Sleep(1500 * time.Millisecond)
			// Safety while split: no replica's chain may contradict another's.
			if err := e.AssertPrefixes(); err != nil {
				return err
			}
			h := e.MaxHeight()
			e.Logf("chaos: healing at height %d", h)
			e.Net.Heal()
			// Liveness after heal: every replica executes past the stall.
			if err := e.WaitHeight(0, 1, h+uint64(e.Topo.Clusters), 120*time.Second); err != nil {
				return err
			}
			e.StopLoads()
			if err := e.WaitConverged(120 * time.Second); err != nil {
				return err
			}
			e.StopAll()
			return e.AssertPrefixes()
		},
	}
}

// crashWithDisk is the literal version of the crash-with-disk restart: the
// deployment is disk-backed, a backup is crashed and its newest segment file
// is torn mid-record (the shape a power cut mid-write leaves), the cluster
// advances well past it, and the replica restarts from its data directory
// alone. Recovery must truncate the torn tail, re-verify the surviving
// on-disk prefix, and fetch only the genuinely missing suffix from peers —
// which the scenario proves by counting network-imported catch-up blocks.
func crashWithDisk() Scenario {
	return Scenario{
		Name:        "crash-with-disk",
		Description: "torn-tail recovery from a real block store, catch-up fills only the missing suffix",
		Clusters:    2, Replicas: 4,
		Disk: true,
		Run: func(e *Env) error {
			z := uint64(e.Topo.Clusters)
			e.StartLoad(0)
			e.StartLoad(1)
			// A deeper warmup than the other scenarios: the disk prefix must
			// dwarf the torn/trimmed slack for the suffix-only assertion to
			// have teeth.
			if err := e.WaitHeight(0, 3, 4*warmup, 120*time.Second); err != nil {
				return err
			}
			e.Crash(0, 3)
			crashH := e.Height(0, 3)
			if err := e.TearDiskTail(0, 3); err != nil {
				return err
			}
			// The cluster must leave the crashed replica far behind, so its
			// recovery genuinely needs block transfer for the gap.
			if err := e.WaitHeight(0, 1, crashH+4*z, 120*time.Second); err != nil {
				return err
			}
			if err := e.Restart(0, 3, true); err != nil {
				return err
			}
			// Keep load flowing briefly: live shares are the restarted
			// replica's evidence that it is behind.
			time.Sleep(time.Second)
			e.StopLoads()
			if err := e.WaitConverged(120 * time.Second); err != nil {
				return err
			}
			e.StopAll()
			rep := e.Fab.Replica(e.ReplicaID(0, 3))
			final := rep.Ledger().Height()
			fetched := rep.CatchUpBlocks()
			// The tear costs at most one record and the round-boundary trim
			// at most z−1 more, so the recovered disk prefix is ≥ crashH − z.
			// Anything fetched beyond the crash gap plus that slack means the
			// prefix was re-downloaded instead of reused.
			if maxFetch := final - crashH + 2*z; fetched > maxFetch {
				return fmt.Errorf("chaos: restarted replica fetched %d blocks over the network, want ≤ %d (disk prefix not reused)", fetched, maxFetch)
			}
			if fetched == 0 {
				return fmt.Errorf("chaos: restarted replica fetched nothing; the missing suffix (%d→%d) had to come from peers", crashH, final)
			}
			if err := rep.Ledger().StoreErr(); err != nil {
				return fmt.Errorf("chaos: block store detached after restart: %w", err)
			}
			return e.AssertPrefixes()
		},
	}
}

// restartCatchUp crashes one backup in each cluster, lets the deployment
// advance well past their frozen state, then restarts one with amnesia (it
// must rebuild the entire chain from peers) and one from its preserved
// ledger (it must re-verify the disk copy and fetch only the missed suffix).
// Both must converge to the live height with verified, identical chains.
func restartCatchUp() Scenario {
	return Scenario{
		Name:        "restart-catch-up",
		Description: "crashed replicas rejoin via ledger catch-up (amnesia and with-disk)",
		Clusters:    2, Replicas: 4,
		Run: func(e *Env) error {
			e.StartLoad(0)
			e.StartLoad(1)
			if err := e.WaitHeight(0, 1, warmup, 60*time.Second); err != nil {
				return err
			}
			e.Crash(0, 3)
			e.Crash(1, 3)
			h := e.Height(0, 1)
			// The cluster must leave the crashed replicas far behind, so their
			// recovery genuinely needs block transfer (not just live traffic).
			if err := e.WaitHeight(0, 1, h+4*uint64(e.Topo.Clusters), 120*time.Second); err != nil {
				return err
			}
			if err := e.Restart(0, 3, false); err != nil { // amnesia
				return err
			}
			if err := e.Restart(1, 3, true); err != nil { // crash-with-disk
				return err
			}
			// Keep load flowing briefly: live shares are the restarted
			// replicas' evidence that they are behind.
			time.Sleep(time.Second)
			e.StopLoads()
			if err := e.WaitConverged(120 * time.Second); err != nil {
				return err
			}
			e.StopAll()
			return e.AssertPrefixes()
		},
	}
}
