package chaos_test

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"resilientdb/internal/byzantine"
	"resilientdb/internal/chaos"
)

// chaosSeed fixes every injected fault decision; the suite must pass
// deterministically (and under -race) with it. `make chaos` runs these
// tests with the full seed matrix (CHAOS_MATRIX=full).
const chaosSeed = 20260728

// byzSeedMatrix is the fixed seed matrix for the Byzantine scenarios: every
// seed must pass byte-for-byte reproducibly. Plain `go test` runs the first
// seed; `make chaos` (CHAOS_MATRIX=full) runs all of them.
var byzSeedMatrix = []int64{20260728, 987654321}

// seeds resolves the seed list for a run: CHAOS_SEED pins a single seed (the
// replay workflow — see README "Replaying a chaos failure"), CHAOS_MATRIX=full
// runs the whole matrix, and the default is the matrix's first entry.
func seeds(t *testing.T) []int64 {
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		seed, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", v, err)
		}
		return []int64{seed}
	}
	if os.Getenv("CHAOS_MATRIX") == "full" {
		return byzSeedMatrix
	}
	return byzSeedMatrix[:1]
}

func TestChaosScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time fault-injection suite")
	}
	seed := seeds(t)[0]
	for _, s := range chaos.Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			if err := chaos.Run(s, seed, t.Logf); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestByzantineScenarios runs the scripted-malice suite over the seed
// matrix: equivocating primary, forged certificate shares, view-change spam,
// and tampered catch-up, each asserting honest-prefix safety, post-attack
// liveness, and forged-message accounting.
func TestByzantineScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time fault-injection suite")
	}
	for _, seed := range seeds(t) {
		for _, s := range chaos.ByzantineScenarios() {
			s, seed := s, seed
			t.Run(fmt.Sprintf("%s/seed=%d", s.Name, seed), func(t *testing.T) {
				if err := chaos.Run(s, seed, t.Logf); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestByzantineHarnessTeeth proves the invariant checks can fail: a
// coalition of f+1 equivocators must drive two honest replicas onto
// divergent prefixes, and the scenario succeeds only when AssertPrefixes
// reports the divergence.
func TestByzantineHarnessTeeth(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time fault-injection suite")
	}
	if err := chaos.Run(chaos.TeethScenario(), seeds(t)[0], t.Logf); err != nil {
		t.Fatal(err)
	}
}

// TestRunEnforcesFaultBound pins the ≤ f byzantine-roles-per-cluster check:
// a scenario exceeding the protocol's fault assumption must be refused
// unless it explicitly opts out.
func TestRunEnforcesFaultBound(t *testing.T) {
	s := chaos.TeethScenario() // 2 roles in one 4-replica cluster (f=1)
	s.AllowOverF = false
	err := chaos.Run(s, chaosSeed, nil)
	if err == nil || !strings.Contains(err.Error(), "fault bound") {
		t.Fatalf("over-f scenario not refused: %v", err)
	}
	// Within the bound the check is silent: one role per cluster passes
	// validation (the scenario itself is exercised by the suites above).
	ok := chaos.Scenario{
		Name: "bound-ok", Clusters: 2, Replicas: 4,
		Byzantine: []chaos.Role{
			{Cluster: 0, Index: 1, Script: byzantine.DoubleVoter{}},
			{Cluster: 1, Index: 1, Script: byzantine.DoubleVoter{}},
		},
		Run: func(e *chaos.Env) error { return nil },
	}
	if err := chaos.Run(ok, chaosSeed, nil); err != nil {
		t.Fatalf("within-bound scenario refused: %v", err)
	}
}
