package chaos_test

import (
	"testing"

	"resilientdb/internal/chaos"
)

// chaosSeed fixes every injected fault decision; the suite must pass
// deterministically (and under -race) with it. `make chaos` runs exactly
// this test.
const chaosSeed = 20260728

func TestChaosScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time fault-injection suite")
	}
	for _, s := range chaos.Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			if err := chaos.Run(s, chaosSeed, t.Logf); err != nil {
				t.Fatal(err)
			}
		})
	}
}
