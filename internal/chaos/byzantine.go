package chaos

import (
	"fmt"
	"time"

	"resilientdb/internal/byzantine"
	"resilientdb/internal/mempool"
	"resilientdb/internal/types"
)

// ByzantineScenarios returns the scripted-malice suite: scenarios where up
// to f replicas per cluster — or a compromised client credential — actively
// attack the protocol: equivocation, forged certificates, view-change spam,
// tampered state transfer, client-side request storms. The honest majority
// must preserve both invariants end-to-end: no two honest ledgers ever
// commit divergent prefixes (safety), and the deployment routes around the
// attacker and resumes committing (liveness). Every scenario also asserts
// the attack actually ran (adversary counters) and that every rejected
// message landed in Fabric.Stats (verify-rejects, mempool admission
// counters) instead of vanishing uncounted.
func ByzantineScenarios() []Scenario {
	return []Scenario{
		equivocatingPrimary(),
		forgedShares(),
		viewChangeSpam(),
		tamperedCatchup(),
		byzStarvedCatchup(),
		byzTamperedSnapshot(),
		rogueClientStorm(),
	}
}

// rogueClientStorm attacks the client admission boundary instead of the
// replica protocol: a provisioned client credential floods duplicate copies
// of one request, signs two conflicting payloads for the same sequence
// number, and sprays fresh sequence numbers far above any honest rate. The
// deployment must shed all of it at admission — honest clients keep
// committing, every replica's mempool stays within its configured capacity,
// honest prefixes never diverge, and the shed traffic is visible in
// Fabric.Stats' duplicate/replayed/rate-limited counters.
func rogueClientStorm() Scenario {
	const poolCap = 48
	return Scenario{
		Name:        "byz-rogue-client",
		Description: "duplicate flood, sequence equivocation, and rate abuse from a compromised client credential: shed at admission, counted, honest progress unharmed",
		Clusters:    2, Replicas: 4,
		// Small pool and tight per-client budget so the storm hits every
		// limit within seconds. ~300 sprayed sequence numbers against a
		// burst of 32 guarantees rate-limit rejections; 64 flood copies
		// per round guarantee duplicates.
		Mempool: mempool.Config{Capacity: poolCap, PerClientRate: 32, PerClientBurst: 32, ReplayWindow: 16},
		Run: func(e *Env) error {
			l0 := e.StartLoad(0)
			e.StartLoad(1)
			if err := e.WaitHeight(0, 1, warmup, 60*time.Second); err != nil {
				return err
			}
			rogue := e.RogueClient(2) // home cluster 0, alongside l0
			pre := e.MempoolStats()
			before := l0.Committed()
			rogue.Equivocate(1)
			rogue.Flood(2, 64)
			rogue.Spray(10, 300)
			rogue.Flood(2, 64) // second storm: by now seq 2 is usually executed, so copies replay
			// Liveness through the storm: the honest cluster-0 client keeps
			// confirming batches while the rogue hammers the same replicas.
			if err := e.WaitCommitted(l0, before+3, 90*time.Second); err != nil {
				return err
			}
			e.StopLoads()
			if err := e.WaitConverged(90 * time.Second); err != nil {
				return err
			}
			e.StopAll()
			if st := rogue.Stats(); st.Sent == 0 || st.Equivocations == 0 {
				return fmt.Errorf("chaos: the rogue client never attacked: %+v", st)
			}
			// Bounded memory: no replica's pool may exceed its capacity, no
			// matter how much the rogue sent.
			for idx := 0; idx < e.Topo.PerCluster; idx++ {
				if n := e.MempoolLen(0, idx); n > poolCap {
					return fmt.Errorf("chaos: replica (0,%d) mempool holds %d pending requests, capacity %d", idx, n, poolCap)
				}
			}
			mp := e.MempoolStats()
			if mp.Duplicate <= pre.Duplicate {
				return fmt.Errorf("chaos: the duplicate flood vanished uncounted (duplicates %d → %d)", pre.Duplicate, mp.Duplicate)
			}
			if mp.RateLimited <= pre.RateLimited {
				return fmt.Errorf("chaos: the sequence spray was never rate-limited (%d → %d)", pre.RateLimited, mp.RateLimited)
			}
			return e.AssertPrefixes()
		},
	}
}

// equivocatingPrimary hands cluster 0's primary to an equivocation script:
// for a few rounds the default victim receives conflicting proposals (and
// forged votes supporting them) while a detector replica is shown both sides
// — provable misbehaviour. With exactly f attackers the fork can never
// commit; the cluster must depose the equivocator through a local view
// change, the starved victim must recover through catch-up, and every honest
// ledger must stay prefix-consistent throughout.
func equivocatingPrimary() Scenario {
	return Scenario{
		Name:        "byz-equivocating-primary",
		Description: "conflicting proposals to disjoint quorums: view change deposes the equivocator, honest prefixes never diverge",
		Clusters:    2, Replicas: 4,
		Byzantine: []Role{{Cluster: 0, Index: 0, Script: &byzantine.EquivocatingPrimary{Rounds: 3, Detector: true}}},
		Run: func(e *Env) error {
			l0 := e.StartLoad(0)
			e.StartLoad(1)
			if err := e.WaitHeight(0, 1, warmup, 60*time.Second); err != nil {
				return err
			}
			e.Arm(0, 0)
			before := l0.Committed()
			// Liveness: cluster 0 keeps confirming client batches, which with
			// an equivocating primary requires deposing it first.
			if err := e.WaitCommitted(l0, before+3, 90*time.Second); err != nil {
				return err
			}
			e.StopLoads()
			if err := e.WaitConverged(90 * time.Second); err != nil {
				return err
			}
			e.StopAll()
			if v := e.View(0, 2); v == 0 {
				return fmt.Errorf("chaos: cluster 0 committed past the equivocation without a view change")
			}
			if st := e.Adversary(0, 0).Stats(); st.Forked == 0 {
				return fmt.Errorf("chaos: the equivocation script never forked a proposal")
			}
			return e.AssertPrefixes()
		},
	}
}

// forgedShares hands cluster 1's primary to a certificate forger: every
// commit certificate it shares cross-cluster is garbled. Cluster 0 must
// reject each forgery (counted as verify-rejects), block on the missing
// round, and depose the forger through the remote view-change protocol
// (Figure 7) so its honest successor re-shares genuine certificates.
func forgedShares() Scenario {
	return Scenario{
		Name:        "byz-forged-shares",
		Description: "garbled certificates cross-cluster: rejected, counted, and routed around via remote view change",
		Clusters:    2, Replicas: 4,
		Byzantine: []Role{{Cluster: 1, Index: 0, Script: &byzantine.ShareForger{}}},
		Run: func(e *Env) error {
			e.StartLoad(0)
			if err := e.WaitHeight(0, 1, warmup, 60*time.Second); err != nil {
				return err
			}
			pre := e.VerifyRejects()
			e.Arm(1, 0)
			h := e.Height(0, 1)
			// Liveness: cluster 0's execution passes the stall, which needs
			// genuine cluster-1 certificates — impossible until the remote
			// view change deposes the forger.
			if err := e.WaitHeight(0, 1, h+2*uint64(e.Topo.Clusters), 120*time.Second); err != nil {
				return err
			}
			e.StopLoads()
			if err := e.WaitConverged(90 * time.Second); err != nil {
				return err
			}
			e.StopAll()
			if v := e.View(1, 2); v == 0 {
				return fmt.Errorf("chaos: cluster 1 was never forced past its forging primary")
			}
			if st := e.Adversary(1, 0).Stats(); st.Tampered == 0 {
				return fmt.Errorf("chaos: the share forger never forged a certificate")
			}
			if got := e.VerifyRejects(); got <= pre {
				return fmt.Errorf("chaos: forged shares vanished uncounted (verify-rejects %d → %d)", pre, got)
			}
			return e.AssertPrefixes()
		},
	}
}

// viewChangeSpam compromises a cluster-0 backup with a composite script:
// view-change spam (far-future campaigns, forged signatures, forged and
// stale remote view-change requests) plus selective suppression of its
// checkpoints to one victim. A single attacker is below every quorum
// threshold, so no honest view may move, commits must continue uninterrupted
// through the spam, and every forgery must be counted.
func viewChangeSpam() Scenario {
	return Scenario{
		Name:        "byz-view-change-spam",
		Description: "stale/forged view-change spam plus selective suppression: no view moves, commits continue, spam is counted",
		Clusters:    2, Replicas: 4,
		Byzantine: []Role{{Cluster: 0, Index: 1, Script: byzantine.Compose(
			// Victim 3 is replica (0,3): topologies are dense, cluster*n+idx.
			&byzantine.Suppressor{Victims: []types.NodeID{3}, Types: []string{"pbft/checkpoint"}},
			&byzantine.ViewChangeSpammer{Every: 4},
		)}},
		Run: func(e *Env) error {
			l0 := e.StartLoad(0)
			e.StartLoad(1)
			if err := e.WaitHeight(0, 2, warmup, 60*time.Second); err != nil {
				return err
			}
			pre := e.VerifyRejects()
			e.Arm(0, 1)
			before := l0.Committed()
			// Liveness under spam: client batches keep confirming while the
			// attacker floods campaigns and starves the victim's checkpoints.
			if err := e.WaitCommitted(l0, before+4, 90*time.Second); err != nil {
				return err
			}
			adv := e.Adversary(0, 1)
			st := adv.Stats()
			adv.Disarm()
			e.StopLoads()
			if err := e.WaitConverged(90 * time.Second); err != nil {
				return err
			}
			e.StopAll()
			for _, idx := range []int{0, 2, 3} {
				if v := e.View(0, idx); v != 0 {
					return fmt.Errorf("chaos: spam moved replica (0,%d) to view %d", idx, v)
				}
			}
			if v := e.View(1, 2); v != 0 {
				return fmt.Errorf("chaos: spam moved cluster 1 to view %d", v)
			}
			if st.Spammed == 0 {
				return fmt.Errorf("chaos: the spammer never spammed")
			}
			if st.Suppressed == 0 {
				return fmt.Errorf("chaos: the suppressor never starved the victim's checkpoints")
			}
			if got := e.VerifyRejects(); got <= pre {
				return fmt.Errorf("chaos: forged campaigns vanished uncounted (verify-rejects %d → %d)", pre, got)
			}
			return e.AssertPrefixes()
		},
	}
}

// tamperedCatchup crashes a backup, lets the deployment advance, then
// restarts it with amnesia while a compromised local peer attacks its
// recovery: fabricated catch-up responses are injected at the victim the
// moment it rejoins, and any genuine response the attacker serves is
// garbled. Every forgery must be rejected atomically and counted; the victim
// must still converge to the honest chain through its honest peers.
func tamperedCatchup() Scenario {
	return Scenario{
		Name:        "byz-tampered-catchup",
		Description: "forged and garbled catch-up responses: rejected, counted, recovery converges via honest peers",
		Clusters:    2, Replicas: 4,
		Byzantine: []Role{{Cluster: 0, Index: 1, Script: &byzantine.CatchupTamperer{Victim: types.NoNode, Inject: 64}}},
		Run: func(e *Env) error {
			e.StartLoad(0)
			e.StartLoad(1)
			if err := e.WaitHeight(0, 2, warmup, 60*time.Second); err != nil {
				return err
			}
			e.Crash(0, 3)
			h := e.Height(0, 2)
			// Leave the crashed replica far behind so recovery genuinely
			// needs block transfer.
			if err := e.WaitHeight(0, 2, h+4*uint64(e.Topo.Clusters), 120*time.Second); err != nil {
				return err
			}
			pre := e.VerifyRejects()
			if err := e.Restart(0, 3, false); err != nil { // amnesia
				return err
			}
			// Arm only now: the injected forgeries must race the victim's
			// genuine catch-up, which starts from height zero.
			e.Arm(0, 1)
			time.Sleep(time.Second)
			e.StopLoads()
			if err := e.WaitConverged(120 * time.Second); err != nil {
				return err
			}
			e.StopAll()
			st := e.Adversary(0, 1).Stats()
			if st.Injected == 0 {
				return fmt.Errorf("chaos: the tamperer never injected a forged response")
			}
			if got := e.VerifyRejects(); got <= pre {
				return fmt.Errorf("chaos: forged catch-up responses vanished uncounted (verify-rejects %d → %d)", pre, got)
			}
			rep := e.Fab.Replica(e.ReplicaID(0, 3))
			if got := rep.CatchUpBlocks(); got == 0 {
				return fmt.Errorf("chaos: the victim recovered nothing over the network")
			}
			return e.AssertPrefixes()
		},
	}
}

// byzStarvedCatchup is the regression scenario for catch-up peer rotation: a
// backup crashes, the deployment advances, and the backup rejoins with
// amnesia while the first peer its recovery will ask — the head of its
// rotation order — silently drops every catch-up and snapshot response to
// it (a gray failure). Before rotation + bounded backoff, a recovering
// replica retried one random peer and a silent one could stall convergence
// indefinitely; now the cursor must advance past the mute peer and the
// victim must rebuild the whole chain from the honest ones.
func byzStarvedCatchup() Scenario {
	return Scenario{
		Name:        "byz-starved-catchup",
		Description: "the victim's first-choice recovery peer never answers: rotation + backoff converge via the others",
		Clusters:    2, Replicas: 4,
		Byzantine: []Role{{Cluster: 0, Index: 0, Script: &byzantine.Suppressor{
			Victims: []types.NodeID{types.NoNode},
			Types:   []string{"geobft/catchup-resp", "geobft/snapshot-resp"},
		}}},
		Run: func(e *Env) error {
			e.StartLoad(0)
			e.StartLoad(1)
			if err := e.WaitHeight(0, 2, warmup, 60*time.Second); err != nil {
				return err
			}
			e.Crash(0, 3)
			h := e.Height(0, 2)
			// Leave the crashed replica far behind so recovery genuinely
			// needs block transfer.
			if err := e.WaitHeight(0, 2, h+4*uint64(e.Topo.Clusters), 120*time.Second); err != nil {
				return err
			}
			// The victim's first-choice peer goes mute before it rejoins.
			e.Arm(0, 0)
			if err := e.Restart(0, 3, false); err != nil { // amnesia
				return err
			}
			time.Sleep(time.Second)
			e.StopLoads()
			if err := e.WaitConverged(120 * time.Second); err != nil {
				return err
			}
			e.StopAll()
			if st := e.Adversary(0, 0).Stats(); st.Suppressed == 0 {
				return fmt.Errorf("chaos: the suppressor never starved the victim's recovery")
			}
			if got := e.Fab.Replica(e.ReplicaID(0, 3)).CatchUpBlocks(); got == 0 {
				return fmt.Errorf("chaos: the victim recovered nothing over the network")
			}
			return e.AssertPrefixes()
		},
	}
}

// TeethScenario is the harness's self-test: the same equivocation attack,
// but run by a coalition of f+1 replicas (the primary plus a double-voter) —
// one more than the protocol tolerates. Both sides of the fork gather
// quorums, two honest replicas commit divergent blocks, and the scenario
// SUCCEEDS only when AssertPrefixes detects the divergence within the
// timeout: a harness whose invariant checks cannot fail proves nothing.
func TeethScenario() Scenario {
	return Scenario{
		Name:        "teeth-equivocation-coalition",
		Description: "f+1 coalition commits both sides of a fork: the prefix auditor must detect the divergence",
		Clusters:    2, Replicas: 4,
		AllowOverF: true,
		Byzantine: []Role{
			{Cluster: 0, Index: 0, Script: &byzantine.EquivocatingPrimary{}},
			{Cluster: 0, Index: 1, Script: byzantine.DoubleVoter{}},
		},
		Run: func(e *Env) error {
			e.StartLoad(0)
			e.StartLoad(1)
			if err := e.WaitHeight(0, 2, warmup, 60*time.Second); err != nil {
				return err
			}
			e.Arm(0, 0)
			e.Arm(0, 1)
			deadline := time.Now().Add(60 * time.Second)
			for time.Now().Before(deadline) {
				if err := e.AssertPrefixes(); err != nil {
					e.Logf("chaos: divergence detected as expected: %v", err)
					e.StopLoads()
					return nil
				}
				time.Sleep(100 * time.Millisecond)
			}
			return fmt.Errorf("chaos: a >f coalition failed to break safety — the invariant checks have no teeth")
		},
	}
}
