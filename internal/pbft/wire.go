package pbft

import (
	"resilientdb/internal/types"
)

// Wire codec: the canonical binary body of every PBFT message, built on the
// deterministic types.Encoder/Decoder and registered with the message-type
// registry in internal/types so EncodeMessage/DecodeMessage round-trip any
// of them. Decoders never panic on malformed input: element counts are
// bounded against the remaining input and errors surface via Decoder.Err.

// Conservative lower bounds on the encoded size of one element, used to
// bound allocation counts while decoding.
const (
	minBatchBytes      = 4 + 8 + 1 + 4  // Client + Seq + NoOp + txn count
	minCheckpointBytes = 8 + 32 + 4 + 4 // Seq + Digest + Replica + empty Sig
	minCertBytes       = 8 + 8 + 32 + minBatchBytes + 4 + 4
	minProofBytes      = 8 + 8 + 32 + minBatchBytes + 4 + 4 + 1
	minViewChangeBytes = 8 + 4 + 8 + 4 + 4 + 4
	minPrePrepareBytes = 8 + 8 + 32 + minBatchBytes
)

// EncodeBody implements types.WireMessage.
func (r *Request) EncodeBody(enc *types.Encoder) {
	r.Batch.Encode(enc)
	enc.BytesN(r.Sig)
	enc.Bool(r.Forwarded)
}

func decodeRequest(dec *types.Decoder) types.Message {
	r := &Request{Batch: types.DecodeBatch(dec)}
	r.Sig = dec.BytesN()
	r.Forwarded = dec.Bool()
	return r
}

// EncodeBody implements types.WireMessage.
func (p *PrePrepare) EncodeBody(enc *types.Encoder) {
	enc.U64(p.View)
	enc.U64(p.Seq)
	enc.Digest(p.Digest)
	p.Batch.Encode(enc)
}

func decodePrePrepareBody(dec *types.Decoder) *PrePrepare {
	p := &PrePrepare{}
	p.View = dec.U64()
	p.Seq = dec.U64()
	p.Digest = dec.Digest()
	p.Batch = types.DecodeBatch(dec)
	return p
}

// EncodeBody implements types.WireMessage.
func (p *Prepare) EncodeBody(enc *types.Encoder) {
	enc.U64(p.View)
	enc.U64(p.Seq)
	enc.Digest(p.Digest)
	enc.I32(int32(p.Replica))
	enc.BytesN(p.Sig)
}

func decodePrepare(dec *types.Decoder) types.Message {
	p := &Prepare{}
	p.View = dec.U64()
	p.Seq = dec.U64()
	p.Digest = dec.Digest()
	p.Replica = types.NodeID(dec.I32())
	p.Sig = dec.BytesN()
	return p
}

// EncodeBody implements types.WireMessage.
func (c *Commit) EncodeBody(enc *types.Encoder) {
	enc.U64(c.View)
	enc.U64(c.Seq)
	enc.Digest(c.Digest)
	enc.I32(int32(c.Replica))
	enc.BytesN(c.Sig)
}

func decodeCommit(dec *types.Decoder) types.Message {
	c := &Commit{}
	c.View = dec.U64()
	c.Seq = dec.U64()
	c.Digest = dec.Digest()
	c.Replica = types.NodeID(dec.I32())
	c.Sig = dec.BytesN()
	return c
}

// EncodeBody implements types.WireMessage.
func (c *Checkpoint) EncodeBody(enc *types.Encoder) {
	enc.U64(c.Seq)
	enc.Digest(c.Digest)
	enc.I32(int32(c.Replica))
	enc.BytesN(c.Sig)
}

func decodeCheckpointBody(dec *types.Decoder) *Checkpoint {
	c := &Checkpoint{}
	c.Seq = dec.U64()
	c.Digest = dec.Digest()
	c.Replica = types.NodeID(dec.I32())
	c.Sig = dec.BytesN()
	return c
}

// EncodeBody implements types.WireMessage.
func (c *Certificate) EncodeBody(enc *types.Encoder) {
	enc.U64(c.View)
	enc.U64(c.Seq)
	enc.Digest(c.Digest)
	c.Batch.Encode(enc)
	enc.NodeIDs(c.Signers)
	enc.SigList(c.Sigs)
}

// DecodeCertificateBody reads a Certificate body written by EncodeBody. It
// is exported because certificates travel embedded in GeoBFT GlobalShare
// messages (package core).
func DecodeCertificateBody(dec *types.Decoder) *Certificate {
	c := &Certificate{}
	c.View = dec.U64()
	c.Seq = dec.U64()
	c.Digest = dec.Digest()
	c.Batch = types.DecodeBatch(dec)
	c.Signers = dec.NodeIDs()
	c.Sigs = dec.SigList()
	return c
}

func encodeProof(enc *types.Encoder, p *PreparedProof) {
	enc.U64(p.View)
	enc.U64(p.Seq)
	enc.Digest(p.Digest)
	p.Batch.Encode(enc)
	enc.NodeIDs(p.PrepareSigners)
	enc.SigList(p.PrepareSigs)
	enc.Bool(p.Cert != nil)
	if p.Cert != nil {
		p.Cert.EncodeBody(enc)
	}
}

func decodeProof(dec *types.Decoder) *PreparedProof {
	p := &PreparedProof{}
	p.View = dec.U64()
	p.Seq = dec.U64()
	p.Digest = dec.Digest()
	p.Batch = types.DecodeBatch(dec)
	p.PrepareSigners = dec.NodeIDs()
	p.PrepareSigs = dec.SigList()
	if dec.Bool() {
		p.Cert = DecodeCertificateBody(dec)
	}
	return p
}

// EncodeBody implements types.WireMessage.
func (v *ViewChange) EncodeBody(enc *types.Encoder) {
	enc.U64(v.NewView)
	enc.I32(int32(v.Replica))
	enc.U64(v.StableSeq)
	enc.U32(uint32(len(v.StableProof)))
	for _, c := range v.StableProof {
		c.EncodeBody(enc)
	}
	enc.U32(uint32(len(v.Prepared)))
	for _, p := range v.Prepared {
		encodeProof(enc, p)
	}
	enc.BytesN(v.Sig)
}

func decodeViewChangeBody(dec *types.Decoder) *ViewChange {
	v := &ViewChange{}
	v.NewView = dec.U64()
	v.Replica = types.NodeID(dec.I32())
	v.StableSeq = dec.U64()
	if n := dec.Count(minCheckpointBytes); n > 0 {
		v.StableProof = make([]*Checkpoint, 0, n)
		for i := 0; i < n && dec.Err() == nil; i++ {
			v.StableProof = append(v.StableProof, decodeCheckpointBody(dec))
		}
	}
	if n := dec.Count(minProofBytes); n > 0 {
		v.Prepared = make([]*PreparedProof, 0, n)
		for i := 0; i < n && dec.Err() == nil; i++ {
			v.Prepared = append(v.Prepared, decodeProof(dec))
		}
	}
	v.Sig = dec.BytesN()
	return v
}

// EncodeBody implements types.WireMessage.
func (n *NewView) EncodeBody(enc *types.Encoder) {
	enc.U64(n.View)
	enc.U32(uint32(len(n.ViewChanges)))
	for _, v := range n.ViewChanges {
		v.EncodeBody(enc)
	}
	enc.U32(uint32(len(n.PrePrepares)))
	for _, p := range n.PrePrepares {
		p.EncodeBody(enc)
	}
}

func decodeNewView(dec *types.Decoder) types.Message {
	m := &NewView{}
	m.View = dec.U64()
	if n := dec.Count(minViewChangeBytes); n > 0 {
		m.ViewChanges = make([]*ViewChange, 0, n)
		for i := 0; i < n && dec.Err() == nil; i++ {
			m.ViewChanges = append(m.ViewChanges, decodeViewChangeBody(dec))
		}
	}
	if n := dec.Count(minPrePrepareBytes); n > 0 {
		m.PrePrepares = make([]*PrePrepare, 0, n)
		for i := 0; i < n && dec.Err() == nil; i++ {
			m.PrePrepares = append(m.PrePrepares, decodePrePrepareBody(dec))
		}
	}
	return m
}

// EncodeBody implements types.WireMessage.
func (c *CatchupRequest) EncodeBody(enc *types.Encoder) {
	enc.U64(c.FromSeq)
}

func decodeCatchupRequest(dec *types.Decoder) types.Message {
	return &CatchupRequest{FromSeq: dec.U64()}
}

// EncodeBody implements types.WireMessage.
func (c *CatchupReply) EncodeBody(enc *types.Encoder) {
	enc.U32(uint32(len(c.Certs)))
	for _, cert := range c.Certs {
		cert.EncodeBody(enc)
	}
}

func decodeCatchupReply(dec *types.Decoder) types.Message {
	m := &CatchupReply{}
	if n := dec.Count(minCertBytes); n > 0 {
		m.Certs = make([]*Certificate, 0, n)
		for i := 0; i < n && dec.Err() == nil; i++ {
			m.Certs = append(m.Certs, DecodeCertificateBody(dec))
		}
	}
	return m
}

func sampleBatch() types.Batch {
	return types.Batch{
		Client: types.ClientIDBase + 3,
		Seq:    7,
		Txns:   []types.Transaction{{Key: 1, Value: 2}, {Key: 3, Value: 4}},
	}
}

func sampleCert() *Certificate {
	b := sampleBatch()
	return &Certificate{
		View:    1,
		Seq:     9,
		Digest:  b.Digest(),
		Batch:   b,
		Signers: []types.NodeID{0, 1, 2},
		Sigs:    [][]byte{{0xa}, {0xb}, {0xc}},
	}
}

func init() {
	types.RegisterMessage((*Request)(nil).MsgType(), decodeRequest, func() []types.Message {
		return []types.Message{
			&Request{},
			&Request{Batch: sampleBatch(), Forwarded: true},
			&Request{Batch: sampleBatch(), Sig: []byte("client-signature-64-bytes.......")},
		}
	})
	types.RegisterMessage((*PrePrepare)(nil).MsgType(),
		func(dec *types.Decoder) types.Message { return decodePrePrepareBody(dec) },
		func() []types.Message {
			b := sampleBatch()
			return []types.Message{
				&PrePrepare{},
				&PrePrepare{View: 2, Seq: 11, Digest: b.Digest(), Batch: b},
			}
		})
	types.RegisterMessage((*Prepare)(nil).MsgType(), decodePrepare, func() []types.Message {
		return []types.Message{
			&Prepare{},
			&Prepare{View: 1, Seq: 4, Digest: types.Hash([]byte("x")), Replica: 2, Sig: []byte{1, 2}},
		}
	})
	types.RegisterMessage((*Commit)(nil).MsgType(), decodeCommit, func() []types.Message {
		return []types.Message{
			&Commit{},
			&Commit{View: 1, Seq: 4, Digest: types.Hash([]byte("y")), Replica: 3, Sig: []byte{5}},
		}
	})
	types.RegisterMessage((*Checkpoint)(nil).MsgType(),
		func(dec *types.Decoder) types.Message { return decodeCheckpointBody(dec) },
		func() []types.Message {
			return []types.Message{
				&Checkpoint{},
				&Checkpoint{Seq: 100, Digest: types.Hash([]byte("cp")), Replica: 1, Sig: []byte{9}},
			}
		})
	types.RegisterMessage((*Certificate)(nil).MsgType(),
		func(dec *types.Decoder) types.Message { return DecodeCertificateBody(dec) },
		func() []types.Message {
			return []types.Message{&Certificate{}, sampleCert()}
		})
	types.RegisterMessage((*ViewChange)(nil).MsgType(),
		func(dec *types.Decoder) types.Message { return decodeViewChangeBody(dec) },
		func() []types.Message {
			b := sampleBatch()
			return []types.Message{
				&ViewChange{},
				&ViewChange{
					NewView:   3,
					Replica:   1,
					StableSeq: 50,
					StableProof: []*Checkpoint{
						{Seq: 50, Digest: types.Hash([]byte("s")), Replica: 0, Sig: []byte{1}},
						{Seq: 50, Digest: types.Hash([]byte("s")), Replica: 1, Sig: []byte{2}},
					},
					Prepared: []*PreparedProof{
						{
							View:           2,
							Seq:            51,
							Digest:         b.Digest(),
							Batch:          b,
							PrepareSigners: []types.NodeID{0, 2},
							PrepareSigs:    [][]byte{{3}, {4}},
						},
						{View: 2, Seq: 52, Digest: b.Digest(), Batch: b, Cert: sampleCert()},
					},
					Sig: []byte{7, 8},
				},
			}
		})
	types.RegisterMessage((*NewView)(nil).MsgType(), decodeNewView, func() []types.Message {
		b := sampleBatch()
		return []types.Message{
			&NewView{},
			&NewView{
				View: 3,
				ViewChanges: []*ViewChange{
					{NewView: 3, Replica: 0, StableSeq: 50, Sig: []byte{1}},
					{NewView: 3, Replica: 1, StableSeq: 50, Sig: []byte{2}},
				},
				PrePrepares: []*PrePrepare{
					{View: 3, Seq: 51, Digest: b.Digest(), Batch: b},
				},
			},
		}
	})
	types.RegisterMessage((*CatchupRequest)(nil).MsgType(), decodeCatchupRequest, func() []types.Message {
		return []types.Message{&CatchupRequest{}, &CatchupRequest{FromSeq: 42}}
	})
	types.RegisterMessage((*CatchupReply)(nil).MsgType(), decodeCatchupReply, func() []types.Message {
		return []types.Message{
			&CatchupReply{},
			&CatchupReply{Certs: []*Certificate{sampleCert(), sampleCert()}},
		}
	})
}
