package pbft

import (
	"math/rand"
	"testing"
	"time"

	"resilientdb/internal/crypto"
	"resilientdb/internal/proto"
	"resilientdb/internal/types"
)

// Table-driven view-change tests with exactly f malicious voters: every
// forged or stale artifact a Byzantine quorum member can smuggle into a
// view-change/new-view exchange must be rejected (and counted through
// Hooks.Rejected), while the same exchange with honest content installs.

// byzEnv is a minimal proto.Env for driving a Replica directly: sends are
// recorded, timers never fire, time stands still.
type byzEnv struct {
	id    types.NodeID
	suite *crypto.Suite
	rng   *rand.Rand
}

type noTimer struct{}

func (noTimer) Stop() {}

func (e *byzEnv) ID() types.NodeID                                { return e.id }
func (e *byzEnv) Now() time.Duration                              { return 0 }
func (e *byzEnv) Send(to types.NodeID, m types.Message)           {}
func (e *byzEnv) SetTimer(d time.Duration, fn func()) proto.Timer { return noTimer{} }
func (e *byzEnv) Defer(fn func())                                 { fn() }
func (e *byzEnv) Charge(time.Duration)                            {}
func (e *byzEnv) Suite() *crypto.Suite                            { return e.suite }
func (e *byzEnv) Rand() *rand.Rand                                { return e.rng }

// byzRig is one replica under test plus signing suites for every member (the
// test plays all peers, honest and malicious alike).
type byzRig struct {
	r        *Replica
	members  []types.NodeID
	suites   map[types.NodeID]*crypto.Suite
	rejected int
}

func newByzRig(t *testing.T) *byzRig {
	t.Helper()
	members := []types.NodeID{0, 1, 2, 3}
	dir := crypto.NewDirectory(crypto.Fast, members)
	rig := &byzRig{members: members, suites: make(map[types.NodeID]*crypto.Suite)}
	for _, id := range members {
		rig.suites[id] = crypto.NewSuite(dir, id, crypto.FreeCosts(), nil)
	}
	env := &byzEnv{id: 0, suite: rig.suites[0], rng: rand.New(rand.NewSource(1))}
	rig.r = NewReplica(env, Config{Members: members, Self: 0, F: 1}, Hooks{
		Rejected: func() { rig.rejected++ },
	})
	return rig
}

// signedVC builds a validly signed, empty-state view-change by `replica`
// campaigning for view v.
func (rig *byzRig) signedVC(replica types.NodeID, v uint64) *ViewChange {
	vc := &ViewChange{NewView: v, Replica: replica}
	vc.Sig = rig.suites[replica].Sign(ViewChangePayload(vc))
	return vc
}

// preparedProof builds a proof that batch (seq, val) prepared in view pv,
// with prepare signatures from the given signers. Pass forge to corrupt the
// first signature after signing.
func (rig *byzRig) preparedProof(seq uint64, val uint64, pv uint64, signers []types.NodeID) *PreparedProof {
	b := types.Batch{Client: types.ClientIDBase, Seq: seq, Txns: []types.Transaction{{Key: 1, Value: val}}}
	p := &PreparedProof{View: pv, Seq: seq, Digest: b.Digest(), Batch: b}
	payload := PreparePayload(pv, seq, p.Digest)
	for _, id := range signers {
		p.PrepareSigners = append(p.PrepareSigners, id)
		p.PrepareSigs = append(p.PrepareSigs, rig.suites[id].Sign(payload))
	}
	return p
}

// commitCert builds a commit certificate for batch (seq, val) at view cv
// signed by the given members.
func (rig *byzRig) commitCert(seq, val, cv uint64, signers []types.NodeID) *Certificate {
	b := types.Batch{Client: types.ClientIDBase, Seq: seq, Txns: []types.Transaction{{Key: 1, Value: val}}}
	c := &Certificate{View: cv, Seq: seq, Digest: b.Digest(), Batch: b}
	payload := CommitPayload(cv, seq, c.Digest)
	for _, id := range signers {
		c.Signers = append(c.Signers, id)
		c.Sigs = append(c.Sigs, rig.suites[id].Sign(payload))
	}
	return c
}

// newView assembles the new-view message the primary of view 1 would send
// from the given view-changes, then lets mutate corrupt it.
func newViewFrom(vcs []*ViewChange) *NewView {
	return &NewView{View: 1, ViewChanges: vcs, PrePrepares: computeNewViewProposals(1, vcs)}
}

func TestNewViewWithFMaliciousVoters(t *testing.T) {
	quorum := []types.NodeID{1, 2, 3} // replica 0 receives; 1 is primary of view 1
	cases := []struct {
		name   string
		mutate func(rig *byzRig, vcs []*ViewChange) (*NewView, types.NodeID)
		accept bool
	}{
		{"honest quorum installs", func(rig *byzRig, vcs []*ViewChange) (*NewView, types.NodeID) {
			return newViewFrom(vcs), 1
		}, true},
		{"honest quorum with prepared proof installs", func(rig *byzRig, vcs []*ViewChange) (*NewView, types.NodeID) {
			vcs[2] = &ViewChange{NewView: 1, Replica: 3,
				Prepared: []*PreparedProof{rig.preparedProof(1, 7, 0, quorum)}}
			vcs[2].Sig = rig.suites[3].Sign(ViewChangePayload(vcs[2]))
			return newViewFrom(vcs), 1
		}, true},
		{"forged view-change signature", func(rig *byzRig, vcs []*ViewChange) (*NewView, types.NodeID) {
			vcs[1].Sig = append([]byte(nil), vcs[1].Sig...)
			vcs[1].Sig[0] ^= 0xff
			return newViewFrom(vcs), 1
		}, false},
		{"duplicate view-change voter pads the quorum", func(rig *byzRig, vcs []*ViewChange) (*NewView, types.NodeID) {
			vcs[2] = vcs[1] // replica 2's slot filled with a copy of replica 1's
			return newViewFrom(vcs), 1
		}, false},
		{"view-change for the wrong view", func(rig *byzRig, vcs []*ViewChange) (*NewView, types.NodeID) {
			vcs[1] = rig.signedVC(2, 2) // validly signed, but campaigns for view 2
			return newViewFrom(vcs), 1
		}, false},
		{"new-view from a non-primary", func(rig *byzRig, vcs []*ViewChange) (*NewView, types.NodeID) {
			return newViewFrom(vcs), 2
		}, false},
		{"truncated quorum", func(rig *byzRig, vcs []*ViewChange) (*NewView, types.NodeID) {
			return newViewFrom(vcs[:2]), 1
		}, false},
		{"duplicate stable-proof signers", func(rig *byzRig, vcs []*ViewChange) (*NewView, types.NodeID) {
			// A stable checkpoint at 4 "proven" by two signatures from the
			// same replica plus one honest one.
			d := types.Hash([]byte("hist"))
			mk := func(id types.NodeID) *Checkpoint {
				return &Checkpoint{Seq: 4, Digest: d, Replica: id,
					Sig: rig.suites[id].Sign(checkpointPayload(4, d))}
			}
			cp1 := mk(1)
			vcs[1] = &ViewChange{NewView: 1, Replica: 2, StableSeq: 4,
				StableProof: []*Checkpoint{cp1, cp1, mk(2)}}
			vcs[1].Sig = rig.suites[2].Sign(ViewChangePayload(vcs[1]))
			return newViewFrom(vcs), 1
		}, false},
		{"forged prepare signature in prepared proof", func(rig *byzRig, vcs []*ViewChange) (*NewView, types.NodeID) {
			p := rig.preparedProof(1, 7, 0, quorum)
			p.PrepareSigs[0] = []byte("forged")
			vcs[1] = &ViewChange{NewView: 1, Replica: 2, Prepared: []*PreparedProof{p}}
			vcs[1].Sig = rig.suites[2].Sign(ViewChangePayload(vcs[1]))
			return newViewFrom(vcs), 1
		}, false},
		{"duplicate prepare signers", func(rig *byzRig, vcs []*ViewChange) (*NewView, types.NodeID) {
			p := rig.preparedProof(1, 7, 0, []types.NodeID{1, 1, 2})
			vcs[1] = &ViewChange{NewView: 1, Replica: 2, Prepared: []*PreparedProof{p}}
			vcs[1].Sig = rig.suites[2].Sign(ViewChangePayload(vcs[1]))
			return newViewFrom(vcs), 1
		}, false},
		{"stale-view certificate under a fresh claim", func(rig *byzRig, vcs []*ViewChange) (*NewView, types.NodeID) {
			// The proof claims batch B prepared, but attaches the old view's
			// certificate for batch A: digest mismatch must reject it.
			p := rig.preparedProof(1, 99, 1, nil)
			p.Cert = rig.commitCert(1, 7, 0, quorum)
			vcs[1] = &ViewChange{NewView: 1, Replica: 2, Prepared: []*PreparedProof{p}}
			vcs[1].Sig = rig.suites[2].Sign(ViewChangePayload(vcs[1]))
			return newViewFrom(vcs), 1
		}, false},
		{"certificate for the wrong sequence", func(rig *byzRig, vcs []*ViewChange) (*NewView, types.NodeID) {
			p := rig.preparedProof(1, 7, 0, nil)
			cert := rig.commitCert(2, 7, 0, quorum)
			cert.Digest, cert.Batch = p.Digest, p.Batch // splice the claim over
			p.Cert = cert
			vcs[1] = &ViewChange{NewView: 1, Replica: 2, Prepared: []*PreparedProof{p}}
			vcs[1].Sig = rig.suites[2].Sign(ViewChangePayload(vcs[1]))
			return newViewFrom(vcs), 1
		}, false},
		{"certificate signed for a different view than it claims", func(rig *byzRig, vcs []*ViewChange) (*NewView, types.NodeID) {
			cert := rig.commitCert(1, 7, 0, quorum)
			cert.View = 1 // claims view 1; signatures cover view 0
			p := &PreparedProof{View: 1, Seq: 1, Digest: cert.Digest, Batch: cert.Batch, Cert: cert}
			vcs[1] = &ViewChange{NewView: 1, Replica: 2, Prepared: []*PreparedProof{p}}
			vcs[1].Sig = rig.suites[2].Sign(ViewChangePayload(vcs[1]))
			return newViewFrom(vcs), 1
		}, false},
		{"tampered proposal set", func(rig *byzRig, vcs []*ViewChange) (*NewView, types.NodeID) {
			vcs[1] = &ViewChange{NewView: 1, Replica: 2,
				Prepared: []*PreparedProof{rig.preparedProof(1, 7, 0, quorum)}}
			vcs[1].Sig = rig.suites[2].Sign(ViewChangePayload(vcs[1]))
			nv := newViewFrom(vcs)
			// The byzantine primary swaps its own batch into the derived set.
			evil := types.Batch{Client: types.ClientIDBase, Seq: 1, Txns: []types.Transaction{{Key: 9, Value: 666}}}
			nv.PrePrepares[0] = &PrePrepare{View: 1, Seq: 1, Digest: evil.Digest(), Batch: evil}
			return nv, 1
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rig := newByzRig(t)
			vcs := []*ViewChange{rig.signedVC(1, 1), rig.signedVC(2, 1), rig.signedVC(3, 1)}
			nv, from := tc.mutate(rig, vcs)
			rig.r.HandleMessage(from, nv)
			if tc.accept {
				if rig.r.View() != 1 {
					t.Fatalf("honest new-view not installed: view=%d", rig.r.View())
				}
				if rig.rejected != 0 {
					t.Fatalf("honest new-view counted %d rejections", rig.rejected)
				}
				return
			}
			if rig.r.View() != 0 {
				t.Fatalf("malicious new-view installed view %d", rig.r.View())
			}
			if rig.rejected == 0 {
				t.Fatal("malicious new-view vanished uncounted (Hooks.Rejected never fired)")
			}
		})
	}
}

// TestViewChangeSpamBounded pins the vcStore memory bound: a single
// Byzantine replica spamming validly signed campaigns for ever-higher (or
// alternating) views keeps at most one stored campaign — per-sender
// eviction, so state stays O(n) regardless of how many distinct views are
// spammed, while a genuinely far-ahead campaign (a healed partition whose
// members escalated for hours) is still stored and can still assemble a
// quorum. Found by the view-change-spam chaos scenario.
func TestViewChangeSpamBounded(t *testing.T) {
	rig := newByzRig(t)
	for v := uint64(1); v <= 2000; v++ {
		rig.r.HandleMessage(1, rig.signedVC(1, v))
	}
	if got := len(rig.r.vcStore); got != 1 {
		t.Fatalf("vcStore holds %d views after spam, want 1 (per-sender eviction)", got)
	}
	// One spammer is below the f+1 join threshold: no view-change starts.
	if rig.r.InViewChange() || rig.r.View() != 0 {
		t.Fatalf("spam from one replica moved the view: view=%d inVC=%v", rig.r.View(), rig.r.InViewChange())
	}
	// Far-ahead campaigns are NOT dropped: when f+1 senders genuinely
	// escalated far past us (a healed long partition), the join rule must
	// still fire — dropping them would livelock the cluster forever.
	rig.r.HandleMessage(2, rig.signedVC(2, 2000))
	if !rig.r.InViewChange() && rig.r.View() == 0 {
		t.Fatal("f+1 far-ahead campaigns did not trigger the join rule")
	}
	if got := len(rig.r.vcStore); got > 3 {
		t.Fatalf("vcStore holds %d views, want O(n)", got)
	}
	// Forged signatures on live campaigns are rejected and counted.
	before := rig.rejected
	vc := rig.signedVC(1, rig.r.View()+5)
	vc.Sig = []byte("garbage")
	rig.r.HandleMessage(1, vc)
	if rig.rejected != before+1 {
		t.Fatal("forged view-change signature vanished uncounted")
	}
	// A spoofed campaigner identity is rejected regardless of view.
	before = rig.rejected
	rig.r.HandleMessage(2, rig.signedVC(1, rig.r.View()+5))
	if rig.rejected != before+1 {
		t.Fatal("spoofed view-change identity vanished uncounted")
	}
}
