package pbft

import (
	"resilientdb/internal/kvstore"
	"resilientdb/internal/ledger"
	"resilientdb/internal/proto"
	"resilientdb/internal/simnet"
	"resilientdb/internal/types"
)

// Standalone is a complete PBFT replica: the consensus core plus execution
// against the YCSB table, ledger maintenance, and client replies. It is the
// paper's PBFT baseline, where all zn replicas across all regions form a
// single group coordinated by one primary (placed in Oregon, Section 4).
type Standalone struct {
	cfg     Config
	records int

	env    proto.Env
	core   *Replica
	store  *kvstore.Store
	ledger *ledger.Ledger
}

// NewStandalone returns a standalone replica; records sizes the preloaded
// table.
func NewStandalone(cfg Config, records int) *Standalone {
	return &Standalone{cfg: cfg, records: records}
}

// Init implements simnet.Handler.
func (s *Standalone) Init(env *simnet.Env) { s.InitEnv(proto.WrapSim(env)) }

// InitEnv wires the replica to any protocol environment (simulator or
// fabric).
func (s *Standalone) InitEnv(env proto.Env) {
	s.env = env
	s.store = kvstore.New(s.records)
	s.ledger = ledger.New()
	s.core = NewReplica(env, s.cfg, Hooks{Committed: s.onCommitted})
}

// Receive implements simnet.Handler.
func (s *Standalone) Receive(from types.NodeID, msg types.Message) {
	if req, ok := msg.(*Request); ok && from.IsClient() {
		s.core.SubmitLocal(req.Batch, req.Sig, false)
		return
	}
	s.core.HandleMessage(from, msg)
}

func (s *Standalone) onCommitted(seq uint64, cert *Certificate) {
	s.env.Suite().ChargeExec(cert.Batch.Len())
	s.store.ApplyBatch(&cert.Batch)
	s.ledger.Append(seq, 0, cert.Batch, cert.CertDigest())
	if cert.Batch.NoOp {
		return
	}
	s.env.Suite().ChargeMAC()
	s.env.Send(cert.Batch.Client, &proto.Reply{
		Client:    cert.Batch.Client,
		ClientSeq: cert.Batch.Seq,
		Replica:   s.env.ID(),
		TxnCount:  cert.Batch.Len(),
		Result:    cert.Digest,
	})
}

// Core exposes the consensus state machine (tests, fault injection).
func (s *Standalone) Core() *Replica { return s.core }

// Ledger exposes the replica's chain.
func (s *Standalone) Ledger() *ledger.Ledger { return s.ledger }

// Store exposes the replica's table.
func (s *Standalone) Store() *kvstore.Store { return s.store }
