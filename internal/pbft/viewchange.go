package pbft

import (
	"sort"

	"resilientdb/internal/types"
)

// startViewChange abandons the current view and campaigns for view v.
func (r *Replica) startViewChange(v uint64) {
	if v <= r.view {
		return
	}
	if r.inViewChange && v <= r.targetView {
		return
	}
	r.inViewChange = true
	r.targetView = v
	r.vcAttempts++
	if r.progressTimer != nil {
		r.progressTimer.Stop()
		r.progressTimer = nil
	}

	vc := r.buildViewChange(v)
	r.broadcast(vc)
	r.storeViewChange(vc)

	// If view v never installs (its primary may be faulty too), escalate.
	target := v
	r.env.SetTimer(r.timeout(), func() {
		if r.inViewChange && r.targetView == target {
			r.startViewChange(target + 1)
		}
	})
	r.maybeBuildNewView(v)
}

// ForceViewChange deposes the current primary. GeoBFT's remote view-change
// protocol invokes this once f+1 signed Rvc messages from another cluster
// prove the primary failed to share its certificates (paper Figure 7,
// response role).
func (r *Replica) ForceViewChange() {
	if !r.inViewChange {
		r.startViewChange(r.view + 1)
	}
}

func (r *Replica) buildViewChange(v uint64) *ViewChange {
	var prepared []*PreparedProof
	seqs := make([]uint64, 0, len(r.entries))
	for s := range r.entries {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		e := r.entries[s]
		if s <= r.lowWater || !e.prepared {
			continue
		}
		p := &PreparedProof{View: e.view, Seq: s, Digest: e.digest, Batch: e.batch}
		if e.committed {
			p.Cert = e.cert
		} else {
			set := e.prepares[e.key()]
			signers := make([]types.NodeID, 0, len(set))
			for id := range set {
				signers = append(signers, id)
			}
			sort.Slice(signers, func(i, j int) bool { return signers[i] < signers[j] })
			if len(signers) > r.quorum() {
				signers = signers[:r.quorum()]
			}
			p.PrepareSigners = signers
			p.PrepareSigs = make([][]byte, len(signers))
			for i, id := range signers {
				p.PrepareSigs[i] = set[id]
			}
		}
		prepared = append(prepared, p)
	}
	vc := &ViewChange{
		NewView:     v,
		Replica:     r.env.ID(),
		StableSeq:   r.lowWater,
		StableProof: r.stableProof,
		Prepared:    prepared,
	}
	vc.Sig = r.env.Suite().Sign(ViewChangePayload(vc))
	return vc
}

// storeViewChange records a campaign, keeping at most one pending campaign
// per sender: a replica escalating (or spamming) ever-higher views replaces
// its earlier entries instead of accumulating them, so vcStore stays O(n)
// no matter how many distinct views a Byzantine replica campaigns for
// (found by the view-change-spam adversary scenario). Honest replicas only
// ever push their single latest campaign, and they re-broadcast it on every
// escalation, so evicting stale entries never loses a live quorum.
func (r *Replica) storeViewChange(vc *ViewChange) {
	for v, set := range r.vcStore {
		if v == vc.NewView {
			continue
		}
		if _, ok := set[vc.Replica]; ok {
			delete(set, vc.Replica)
			if len(set) == 0 {
				delete(r.vcStore, v)
			}
		}
	}
	set := r.vcStore[vc.NewView]
	if set == nil {
		set = make(map[types.NodeID]*ViewChange)
		r.vcStore[vc.NewView] = set
	}
	set[vc.Replica] = vc
}

func (r *Replica) onViewChange(from types.NodeID, m *ViewChange) {
	if m.Replica != from {
		r.reject() // spoofed campaigner identity
		return
	}
	if m.NewView <= r.view {
		return
	}
	if !r.env.Suite().Verify(from, ViewChangePayload(m), m.Sig) {
		r.reject()
		return
	}
	r.storeViewChange(m)

	// Join rule: f+1 replicas campaigning for a higher view cannot all be
	// faulty, so at least one non-faulty replica timed out — join the
	// lowest such view.
	if !r.inViewChange || m.NewView > r.targetView {
		views := make([]uint64, 0, len(r.vcStore))
		for v, set := range r.vcStore {
			if v > r.view && len(set) > r.cfg.F {
				views = append(views, v)
			}
		}
		if len(views) > 0 {
			sort.Slice(views, func(i, j int) bool { return views[i] < views[j] })
			if !r.inViewChange || views[0] > r.targetView {
				r.startViewChange(views[0])
			}
		}
	}
	r.maybeBuildNewView(m.NewView)
}

// validateViewChange checks the signatures and proofs inside a view-change
// message (prepare signatures are verified here, lazily).
func (r *Replica) validateViewChange(vc *ViewChange) bool {
	if vc.StableSeq > 0 {
		if len(vc.StableProof) < r.quorum() {
			return false
		}
		seen := make(map[types.NodeID]bool)
		valid := 0
		for _, cp := range vc.StableProof {
			if cp.Seq != vc.StableSeq || seen[cp.Replica] {
				return false
			}
			seen[cp.Replica] = true
			if !r.env.Suite().Verify(cp.Replica, checkpointPayload(cp.Seq, cp.Digest), cp.Sig) {
				return false
			}
			valid++
		}
		if valid < r.quorum() {
			return false
		}
	}
	for _, p := range vc.Prepared {
		if p.Batch.Digest() != p.Digest {
			return false
		}
		if p.Cert != nil {
			if p.Cert.Seq != p.Seq || p.Cert.Digest != p.Digest ||
				!p.Cert.Verify(r.env.Suite(), r.cfg.Members, r.quorum()) {
				return false
			}
			continue
		}
		if len(p.PrepareSigners) < r.quorum() || len(p.PrepareSigners) != len(p.PrepareSigs) {
			return false
		}
		seen := make(map[types.NodeID]bool)
		payload := PreparePayload(p.View, p.Seq, p.Digest)
		for i, id := range p.PrepareSigners {
			if seen[id] {
				return false
			}
			seen[id] = true
			if !r.env.Suite().Verify(id, payload, p.PrepareSigs[i]) {
				return false
			}
		}
	}
	return true
}

func (r *Replica) maybeBuildNewView(v uint64) {
	if r.PrimaryOf(v) != r.env.ID() || v <= r.view {
		return
	}
	if !r.inViewChange || r.targetView != v {
		return
	}
	set := r.vcStore[v]
	if len(set) < r.quorum() {
		return
	}
	valid := make([]*ViewChange, 0, len(set))
	ids := make([]types.NodeID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		vc := set[id]
		if r.validateViewChange(vc) {
			valid = append(valid, vc)
		}
	}
	if len(valid) < r.quorum() {
		return
	}
	valid = valid[:r.quorum()]

	nv := &NewView{View: v, ViewChanges: valid, PrePrepares: computeNewViewProposals(v, valid)}
	r.broadcast(nv)
	r.applyNewView(nv)
}

// computeNewViewProposals derives the deterministic set of re-issued
// proposals from a view-change quorum: above the highest proven stable
// checkpoint, committed certificates win, then the highest-view prepared
// claim; gaps are filled with no-ops.
func computeNewViewProposals(v uint64, vcs []*ViewChange) []*PrePrepare {
	maxStable := uint64(0)
	maxSeq := uint64(0)
	for _, vc := range vcs {
		if vc.StableSeq > maxStable {
			maxStable = vc.StableSeq
		}
		for _, p := range vc.Prepared {
			if p.Seq > maxSeq {
				maxSeq = p.Seq
			}
		}
	}
	if maxSeq < maxStable {
		maxSeq = maxStable
	}
	var out []*PrePrepare
	for s := maxStable + 1; s <= maxSeq; s++ {
		var chosen *PreparedProof
		for _, vc := range vcs {
			for _, p := range vc.Prepared {
				if p.Seq != s {
					continue
				}
				switch {
				case chosen == nil:
					chosen = p
				case p.Cert != nil && chosen.Cert == nil:
					chosen = p
				case p.Cert == nil && chosen.Cert == nil && p.View > chosen.View:
					chosen = p
				}
			}
		}
		pp := &PrePrepare{View: v, Seq: s}
		if chosen != nil {
			pp.Digest, pp.Batch = chosen.Digest, chosen.Batch
		} else {
			pp.Batch = types.Batch{NoOp: true}
			pp.Batch.PrimeDigest() // cache before the NewView is shared
			pp.Digest = pp.Batch.Digest()
		}
		out = append(out, pp)
	}
	return out
}

func (r *Replica) onNewView(from types.NodeID, m *NewView) {
	if m.View < r.view || (m.View == r.view && !r.inViewChange) {
		return
	}
	if from != r.PrimaryOf(m.View) {
		r.reject() // an installation only its primary may announce
		return
	}
	if len(m.ViewChanges) < r.quorum() {
		r.reject()
		return
	}
	seen := make(map[types.NodeID]bool)
	for _, vc := range m.ViewChanges {
		if vc.NewView != m.View || seen[vc.Replica] {
			r.reject() // padded quorum: wrong-view or duplicate voters
			return
		}
		seen[vc.Replica] = true
		if !r.env.Suite().Verify(vc.Replica, ViewChangePayload(vc), vc.Sig) {
			r.reject()
			return
		}
		if !r.validateViewChange(vc) {
			r.reject()
			return
		}
	}
	// The proposal set must be exactly the deterministic derivation.
	want := computeNewViewProposals(m.View, m.ViewChanges)
	if len(want) != len(m.PrePrepares) {
		r.reject()
		return
	}
	for i, pp := range m.PrePrepares {
		if pp.View != m.View || pp.Seq != want[i].Seq || pp.Digest != want[i].Digest {
			r.reject()
			return
		}
	}
	r.applyNewView(m)
}

func (r *Replica) applyNewView(nv *NewView) {
	dbg("%v APPLY-NEWVIEW view=%d len(O)=%d", r.env.ID(), nv.View, len(nv.PrePrepares))
	r.view = nv.View
	r.inViewChange = false
	r.targetView = nv.View
	for v := range r.vcStore {
		if v <= r.view {
			delete(r.vcStore, v)
		}
	}

	// Adopt any commit certificates carried inside the view-change quorum:
	// free catch-up for lagging replicas.
	for _, vc := range nv.ViewChanges {
		for _, p := range vc.Prepared {
			if p.Cert != nil {
				r.AdoptCertificate(p.Cert)
			}
		}
	}

	maxSeq := r.nextSeq
	for _, pp := range nv.PrePrepares {
		if pp.Seq > maxSeq {
			maxSeq = pp.Seq
		}
		if pp.Seq <= r.committedUpTo {
			continue
		}
		if old := r.entries[pp.Seq]; old != nil && old.committed {
			// Already committed locally (necessarily with the same digest by
			// quorum intersection); help the new view's quorum along.
			sig := r.env.Suite().Sign(PreparePayload(nv.View, pp.Seq, old.digest))
			r.broadcast(&Prepare{View: nv.View, Seq: pp.Seq, Digest: old.digest, Replica: r.env.ID(), Sig: sig})
			csig := r.env.Suite().Sign(CommitPayload(nv.View, pp.Seq, old.digest))
			r.broadcast(&Commit{View: nv.View, Seq: pp.Seq, Digest: old.digest, Replica: r.env.ID(), Sig: csig})
			continue
		}
		// Entries are reused, not reset: votes already bucketed under the
		// new view's key must survive the re-proposal. The digest/batch
		// binding is re-checked: NewView proposals carry attacker-supplied
		// batches.
		r.onPrePrepare(r.PrimaryOf(nv.View), pp, false)
	}
	if r.nextSeq < maxSeq {
		r.nextSeq = maxSeq
	}

	// Pending client requests move to the new primary: backups re-forward,
	// and a replica that just became primary adopts what it was
	// supervising.
	if r.IsPrimary() {
		for _, q := range r.forwarded {
			r.queue = append(r.queue, q)
		}
		r.forwarded = make(map[types.Digest]signedBatch)
	} else {
		for _, q := range r.forwarded {
			r.env.Suite().ChargeMAC()
			r.env.Send(r.Primary(), &Request{Batch: q.b, Sig: q.sig, Forwarded: true})
		}
	}
	if r.hooks.ViewChanged != nil {
		r.hooks.ViewChanged(r.view, r.Primary())
	}
	// Replay proposals that raced ahead of this install.
	buffered := r.futurePP
	r.futurePP = nil
	for _, pp := range buffered {
		if pp.View >= r.view {
			r.onPrePrepare(r.PrimaryOf(pp.View), pp, false)
		}
	}
	r.tryPropose()
	r.rearmProgressTimer()
}
