package pbft

import (
	"resilientdb/internal/crypto"
	"resilientdb/internal/proto"
	"resilientdb/internal/types"
)

// PreVerify performs the state-independent cryptographic checks of a PBFT
// message: the commit-signature verification and the preprepare batch/digest
// binding, exactly the predicates the apply path would evaluate. It touches
// no replica state, so the fabric's verify pool calls it concurrently from
// many goroutines (suite must honor crypto.Suite's concurrency contract).
//
// The mapping is decision-equivalent to the inline path: VerdictReject is
// returned only for messages the state machine would unconditionally discard,
// and VerdictVerified messages may skip exactly the checks performed here.
// Prepare signatures are deliberately not checked — they are verified lazily,
// only when used inside a view-change proof, as in the paper's configuration.
// View-change and new-view messages verify inline on the worker (rare path,
// and their validation is entangled with quorum state).
func PreVerify(suite *crypto.Suite, from types.NodeID, msg types.Message) proto.Verdict {
	switch m := msg.(type) {
	case *PrePrepare:
		if m.Batch.Digest() != m.Digest {
			return proto.VerdictReject
		}
		return proto.VerdictVerified
	case *Commit:
		if m.Replica != from {
			return proto.VerdictReject
		}
		if !suite.Verify(m.Replica, CommitPayload(m.View, m.Seq, m.Digest), m.Sig) {
			return proto.VerdictReject
		}
		return proto.VerdictVerified
	default:
		return proto.VerdictPass
	}
}
