package pbft

import (
	"resilientdb/internal/crypto"
	"resilientdb/internal/types"
)

// Certificate is a commit certificate: the proof that a batch was committed
// at a sequence number by a cluster (paper Section 2.2). It consists of the
// client request and n−f commit signatures from distinct replicas. GeoBFT
// forwards certificates across clusters; any replica can verify one without
// trusting the forwarder (Proposition 2.5, "Agreement").
type Certificate struct {
	View    uint64
	Seq     uint64
	Digest  types.Digest
	Batch   types.Batch
	Signers []types.NodeID
	Sigs    [][]byte
}

// MsgType implements types.Message (certificates travel inside GlobalShare
// and catchup messages, but are also measurable on their own).
func (*Certificate) MsgType() string { return "pbft/certificate" }

// WireSize implements types.Message: the 6.4 kB the paper reports at batch
// 100 is the embedded preprepare (5.4 kB) plus one signature entry per
// commit message.
func (c *Certificate) WireSize() int {
	return types.HeaderBytes + c.Batch.WireSize() + len(c.Sigs)*types.SigBytes
}

// Verify checks that the certificate carries at least quorum valid commit
// signatures from distinct members over (view, seq, batch digest) and that
// the digest matches the embedded batch. The caller supplies the cluster
// membership the certificate must draw signers from.
func (c *Certificate) Verify(suite *crypto.Suite, members []types.NodeID, quorum int) bool {
	if len(c.Signers) != len(c.Sigs) || len(c.Signers) < quorum {
		return false
	}
	if c.Batch.Digest() != c.Digest {
		return false
	}
	member := make(map[types.NodeID]bool, len(members))
	for _, m := range members {
		member[m] = true
	}
	payload := CommitPayload(c.View, c.Seq, c.Digest)
	seen := make(map[types.NodeID]bool, len(c.Signers))
	valid := 0
	for i, signer := range c.Signers {
		if !member[signer] || seen[signer] {
			return false
		}
		seen[signer] = true
		if !suite.Verify(signer, payload, c.Sigs[i]) {
			return false
		}
		valid++
	}
	return valid >= quorum
}

// CertDigest returns a digest committing to the certificate (used by ledger
// blocks and the verify pool's share-dedup key). It must not assume the
// certificate is well-formed: wire-decoded certificates can carry mismatched
// signer/signature counts (they fail Verify, but CertDigest may run first —
// e.g. while computing a dedup key), so a missing signature hashes as empty
// instead of panicking.
func (c *Certificate) CertDigest() types.Digest {
	enc := types.NewEncoder(128 + 16*len(c.Signers))
	enc.String("pbft/CERT")
	enc.U64(c.View)
	enc.U64(c.Seq)
	enc.Digest(c.Digest)
	for i, s := range c.Signers {
		enc.I32(int32(s))
		if i < len(c.Sigs) {
			enc.BytesN(c.Sigs[i])
		} else {
			enc.BytesN(nil)
		}
	}
	return types.Hash(enc.Bytes())
}
