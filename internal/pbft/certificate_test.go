package pbft

import (
	"testing"

	"resilientdb/internal/crypto"
	"resilientdb/internal/types"
)

func testSuites(n int) (*crypto.Directory, []*crypto.Suite) {
	ids := make([]types.NodeID, n)
	for i := range ids {
		ids[i] = types.NodeID(i)
	}
	dir := crypto.NewDirectory(crypto.Real, ids)
	suites := make([]*crypto.Suite, n)
	for i := range suites {
		suites[i] = crypto.NewSuite(dir, ids[i], crypto.FreeCosts(), nil)
	}
	return dir, suites
}

func makeCert(suites []*crypto.Suite, signers []int, view, seq uint64) *Certificate {
	b := types.Batch{Client: types.ClientIDBase, Seq: seq,
		Txns: []types.Transaction{{Key: 9, Value: seq}}}
	cert := &Certificate{View: view, Seq: seq, Digest: b.Digest(), Batch: b}
	payload := CommitPayload(view, seq, cert.Digest)
	for _, s := range signers {
		cert.Signers = append(cert.Signers, types.NodeID(s))
		cert.Sigs = append(cert.Sigs, suites[s].Sign(payload))
	}
	return cert
}

func TestCertificateVerifyAccepts(t *testing.T) {
	_, suites := testSuites(4)
	cert := makeCert(suites, []int{0, 1, 2}, 0, 7)
	members := []types.NodeID{0, 1, 2, 3}
	if !cert.Verify(suites[3], members, 3) {
		t.Fatal("valid certificate rejected")
	}
}

func TestCertificateVerifyRejectsForgery(t *testing.T) {
	_, suites := testSuites(4)
	members := []types.NodeID{0, 1, 2, 3}

	// Too few signatures.
	cert := makeCert(suites, []int{0, 1}, 0, 7)
	if cert.Verify(suites[3], members, 3) {
		t.Error("accepted certificate below quorum")
	}

	// Duplicate signer padding.
	cert = makeCert(suites, []int{0, 1, 1}, 0, 7)
	if cert.Verify(suites[3], members, 3) {
		t.Error("accepted duplicate signers")
	}

	// Non-member signer.
	ids := []types.NodeID{0, 1, 2, 3, 9}
	dir := crypto.NewDirectory(crypto.Real, ids)
	out := crypto.NewSuite(dir, 9, crypto.FreeCosts(), nil)
	b := types.Batch{Client: types.ClientIDBase, Seq: 7, Txns: []types.Transaction{{Key: 9, Value: 7}}}
	cert = &Certificate{View: 0, Seq: 7, Digest: b.Digest(), Batch: b}
	payload := CommitPayload(0, 7, cert.Digest)
	for _, s := range []types.NodeID{0, 1, 9} {
		su := crypto.NewSuite(dir, s, crypto.FreeCosts(), nil)
		cert.Signers = append(cert.Signers, s)
		cert.Sigs = append(cert.Sigs, su.Sign(payload))
	}
	if cert.Verify(out, members, 3) {
		t.Error("accepted signer outside the membership")
	}

	// Tampered batch (digest no longer matches).
	cert = makeCert(suites, []int{0, 1, 2}, 0, 7)
	cert.Batch.Txns[0].Value = 12345
	if cert.Verify(suites[3], members, 3) {
		t.Error("accepted tampered batch")
	}

	// Mangled signature bytes.
	cert = makeCert(suites, []int{0, 1, 2}, 0, 7)
	cert.Sigs[1][0] ^= 0xff
	if cert.Verify(suites[3], members, 3) {
		t.Error("accepted mangled signature")
	}

	// Signature over a different (view, seq).
	cert = makeCert(suites, []int{0, 1, 2}, 0, 7)
	cert.Seq = 8
	cert.Batch.Seq = 8
	cert.Digest = cert.Batch.Digest()
	if cert.Verify(suites[3], members, 3) {
		t.Error("accepted signatures rebound to another sequence")
	}
}

func TestCertDigestCommitsToSignerSet(t *testing.T) {
	_, suites := testSuites(4)
	a := makeCert(suites, []int{0, 1, 2}, 0, 7)
	b := makeCert(suites, []int{1, 2, 3}, 0, 7)
	if a.CertDigest() == b.CertDigest() {
		t.Error("different signer sets, same certificate digest")
	}
	if a.CertDigest() != a.CertDigest() {
		t.Error("certificate digest not deterministic")
	}
}

// TestCertDigestMalformed pins the panic-free contract: a wire-decoded
// certificate can claim more signers than it carries signatures (it fails
// Verify, but CertDigest may run first, e.g. for the verify pool's dedup
// key), and CertDigest must survive it.
func TestCertDigestMalformed(t *testing.T) {
	c := &Certificate{
		Seq:     3,
		Signers: []types.NodeID{0, 1, 2},
		Sigs:    [][]byte{{0xaa}}, // fewer sigs than signers
	}
	if c.CertDigest() == c.CertDigest() && c.Verify(nil, nil, 1) {
		t.Error("malformed certificate must not verify")
	}
}

func TestCertificateWireSizeMatchesPaper(t *testing.T) {
	// ≈6.4 kB at batch 100 with 7 commit signatures (paper Section 4).
	b := types.Batch{Txns: make([]types.Transaction, 100)}
	cert := &Certificate{Batch: b, Sigs: make([][]byte, 7), Signers: make([]types.NodeID, 7)}
	if got := cert.WireSize(); got < 6000 || got > 7000 {
		t.Errorf("certificate wire size = %d, want ≈6.4 kB", got)
	}
}
