package pbft

import (
	"fmt"
	"sort"
	"time"

	"resilientdb/internal/proto"
	"resilientdb/internal/types"
)

// Config parameterizes one PBFT replica.
type Config struct {
	// Members lists the participating replicas in local-index order; the
	// primary of view v is Members[v mod n].
	Members []types.NodeID
	// Self is this replica's identifier (must appear in Members).
	Self types.NodeID
	// F is the maximum number of Byzantine members; len(Members) > 3F.
	F int
	// CheckpointInterval is the number of sequence numbers between
	// checkpoints (the paper's experiments use 600 transactions = 6 batches
	// at batch size 100).
	CheckpointInterval uint64
	// HighWaterMark bounds how far past the last stable checkpoint the
	// primary may propose (log window).
	HighWaterMark uint64
	// ViewChangeTimeout is the base progress timeout; it doubles on each
	// consecutive failed view (exponential back-off).
	ViewChangeTimeout time.Duration
	// RetainCerts is how many recent commit certificates are kept for
	// catch-up after their entries are garbage collected.
	RetainCerts uint64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.CheckpointInterval == 0 {
		out.CheckpointInterval = 6
	}
	if out.HighWaterMark == 0 {
		out.HighWaterMark = 4 * out.CheckpointInterval
	}
	if out.ViewChangeTimeout == 0 {
		out.ViewChangeTimeout = 2 * time.Second
	}
	if out.RetainCerts == 0 {
		out.RetainCerts = 1024
	}
	return out
}

// Hooks are the replica's upcalls. Committed fires exactly once per
// sequence number, in order.
type Hooks struct {
	// Committed delivers the certificate for seq; certificates arrive in
	// strictly increasing seq order with no gaps.
	Committed func(seq uint64, cert *Certificate)
	// ViewChanged fires after a new view is installed.
	ViewChanged func(view uint64, primary types.NodeID)
	// Behind fires when f+1 members checkpoint a sequence this replica has
	// not reached — evidence it fell behind its cluster. A composing protocol
	// (GeoBFT) uses it to trigger ledger catch-up; the replica's own
	// window-bounded certificate catch-up runs regardless.
	Behind func(seq uint64)
	// Rejected fires when an inbound message is discarded because a
	// cryptographic check failed or it is provably forged (bad signature,
	// digest/batch mismatch, spoofed sender identity, malformed view-change
	// or new-view content) — never for merely stale or duplicate traffic.
	// The fabric counts these into its drop statistics so forged messages
	// land in Fabric.Stats as verify-rejects instead of vanishing uncounted.
	Rejected func()
	// Checkpointed fires when a checkpoint becomes stable at seq — 2f+1
	// members attested to the same execution history, so state below seq is
	// durable cluster-wide. The fabric publishes its pending state snapshot
	// and garbage-collects ledger segments on this signal, never earlier: a
	// snapshot must not outrun the proof that its prefix is common.
	Checkpointed func(seq uint64)
}

// voteKey identifies the proposal a prepare/commit vote supports. Votes are
// bucketed by (view, digest) so that messages racing ahead of their
// preprepare — or spanning a view change — are never lost; this matters
// when f replicas have crashed and the quorum needs every remaining vote.
type voteKey struct {
	view   uint64
	digest types.Digest
}

// entry is the per-sequence protocol state.
type entry struct {
	view          uint64
	digest        types.Digest
	batch         types.Batch
	hasPrePrepare bool
	prepares      map[voteKey]map[types.NodeID][]byte
	commits       map[voteKey]map[types.NodeID][]byte
	prepared      bool
	sentCommit    bool
	committed     bool
	cert          *Certificate
}

func (e *entry) votes(m map[voteKey]map[types.NodeID][]byte, k voteKey) map[types.NodeID][]byte {
	set := m[k]
	if set == nil {
		set = make(map[types.NodeID][]byte)
		m[k] = set
	}
	return set
}

func (e *entry) key() voteKey { return voteKey{view: e.view, digest: e.digest} }

// Replica is a PBFT participant. It is a single-threaded state machine:
// all entry points (HandleMessage, SubmitLocal) must be invoked from the
// owning event loop.
type Replica struct {
	env   proto.Env
	cfg   Config
	hooks Hooks
	n     int

	view          uint64
	inViewChange  bool
	nextSeq       uint64 // primary: last assigned sequence
	entries       map[uint64]*entry
	committedUpTo uint64
	lowWater      uint64 // last stable checkpoint

	queue     []signedBatch // primary-side pending client batches
	clientHWM map[types.NodeID]uint64
	inFlight  map[types.Digest]bool        // primary: proposed, not yet committed
	forwarded map[types.Digest]signedBatch // backup: awaiting execution

	history      map[uint64]types.Digest // digest chain over committed batches
	checkpoints  map[uint64]map[types.NodeID]*Checkpoint
	stableProof  []*Checkpoint
	certLog      map[uint64]*Certificate
	catchupAsked time.Duration

	progressTimer proto.Timer
	vcAttempts    uint
	vcStore       map[uint64]map[types.NodeID]*ViewChange
	targetView    uint64
	// futurePP buffers preprepares for views not yet installed here; the new
	// primary starts proposing the moment it builds the NewView, racing the
	// install at other replicas.
	futurePP []*PrePrepare
}

// NewReplica constructs a replica bound to env.
func NewReplica(env proto.Env, cfg Config, hooks Hooks) *Replica {
	c := cfg.withDefaults()
	if len(c.Members) <= 3*c.F {
		panic(fmt.Sprintf("pbft: need n > 3f, got n=%d f=%d", len(c.Members), c.F))
	}
	r := &Replica{
		env:         env,
		cfg:         c,
		hooks:       hooks,
		n:           len(c.Members),
		entries:     make(map[uint64]*entry),
		clientHWM:   make(map[types.NodeID]uint64),
		inFlight:    make(map[types.Digest]bool),
		forwarded:   make(map[types.Digest]signedBatch),
		history:     map[uint64]types.Digest{0: {}},
		checkpoints: make(map[uint64]map[types.NodeID]*Checkpoint),
		certLog:     make(map[uint64]*Certificate),
		vcStore:     make(map[uint64]map[types.NodeID]*ViewChange),
	}
	return r
}

// quorum is the paper's n−f acceptance threshold.
func (r *Replica) quorum() int { return r.n - r.cfg.F }

// reject reports one forged or cryptographically invalid inbound message to
// the composing layer (see Hooks.Rejected).
func (r *Replica) reject() {
	if r.hooks.Rejected != nil {
		r.hooks.Rejected()
	}
}

// PrimaryOf returns the primary of view v.
func (r *Replica) PrimaryOf(v uint64) types.NodeID {
	return r.cfg.Members[int(v)%r.n]
}

// Primary returns the current primary.
func (r *Replica) Primary() types.NodeID { return r.PrimaryOf(r.view) }

// IsPrimary reports whether this replica currently leads.
func (r *Replica) IsPrimary() bool { return r.Primary() == r.env.ID() }

// View returns the current view number.
func (r *Replica) View() uint64 { return r.view }

// InViewChange reports whether a view-change is in progress.
func (r *Replica) InViewChange() bool { return r.inViewChange }

// CommittedUpTo returns the highest sequence delivered in order.
func (r *Replica) CommittedUpTo() uint64 { return r.committedUpTo }

// StableSeq returns the last stable checkpoint sequence.
func (r *Replica) StableSeq() uint64 { return r.lowWater }

// QueueLen returns the primary's pending batch count (for flow control).
func (r *Replica) QueueLen() int { return len(r.queue) }

// NextSeq returns the highest sequence number this replica has assigned as
// primary (composing protocols use it for round accounting).
func (r *Replica) NextSeq() uint64 { return r.nextSeq }

// Certificate returns the commit certificate for seq if still retained.
func (r *Replica) Certificate(seq uint64) *Certificate { return r.certLog[seq] }

func (r *Replica) entryAt(seq uint64) *entry {
	e := r.entries[seq]
	if e == nil {
		e = &entry{
			view:     r.view,
			prepares: make(map[voteKey]map[types.NodeID][]byte),
			commits:  make(map[voteKey]map[types.NodeID][]byte),
		}
		r.entries[seq] = e
	}
	return e
}

func (r *Replica) broadcast(m types.Message) {
	// Point-to-point channels are MAC-authenticated; charge the MAC cost
	// once per recipient, as the paper's implementation does.
	for range r.cfg.Members {
		r.env.Suite().ChargeMAC()
	}
	proto.Multicast(r.env, r.cfg.Members, m)
}

// signedBatch couples a buffered client batch with the client signature that
// authenticated it, so a later forward (or new-view re-forward) carries the
// proof along instead of asking the receiver to trust this replica.
type signedBatch struct {
	b   types.Batch
	sig []byte
}

// SubmitLocal hands a client batch to this replica; sig is the client's
// signature over RequestPayload (nil where the caller's trust model does not
// use real client signatures, e.g. the simulator). The primary enqueues and
// proposes the batch; a backup forwards it to the primary and supervises
// progress (the standard PBFT anti-censorship mechanism).
func (r *Replica) SubmitLocal(b types.Batch, sig []byte, verified bool) {
	if !verified {
		// Client batches are signed; charge verification (simulated clients
		// are honest, so the signature check itself is modelled as cost).
		r.env.Suite().ChargeVerify()
	}
	if !b.NoOp && b.Seq <= r.clientHWM[b.Client] {
		return // duplicate
	}
	if r.IsPrimary() && !r.inViewChange {
		r.queue = append(r.queue, signedBatch{b, sig})
		r.tryPropose()
		return
	}
	// Backup (or mid-view-change): supervise the request. It is forwarded
	// to the primary, and re-routed when a new view installs.
	d := b.Digest()
	if _, dup := r.forwarded[d]; dup {
		return
	}
	r.forwarded[d] = signedBatch{b, sig}
	if !r.inViewChange {
		r.env.Suite().ChargeMAC()
		r.env.Send(r.Primary(), &Request{Batch: b, Sig: sig, Forwarded: true})
	}
	r.armProgressTimer()
}

func (r *Replica) tryPropose() {
	if !r.IsPrimary() || r.inViewChange {
		return
	}
	for len(r.queue) > 0 && r.nextSeq < r.lowWater+r.cfg.HighWaterMark {
		b := r.queue[0].b
		r.queue = r.queue[1:]
		if !b.NoOp && b.Seq <= r.clientHWM[b.Client] {
			continue // executed while queued
		}
		d := b.Digest()
		if r.inFlight[d] || r.digestLive(d) {
			continue // a retransmission of a batch already being ordered
		}
		r.inFlight[d] = true
		r.nextSeq++
		dbg("%v PROPOSE view=%d seq=%d", r.env.ID(), r.view, r.nextSeq)
		pp := &PrePrepare{View: r.view, Seq: r.nextSeq, Digest: d, Batch: b}
		r.broadcast(pp)
		r.onPrePrepare(r.env.ID(), pp, true) // digest freshly computed above
	}
}

// digestLive reports whether d is already bound to an uncommitted-or-
// unexecuted proposal in the log. inFlight only remembers what THIS replica
// proposed; after a view change the new primary holds proposals it adopted
// from new-view proofs (installed via onPrePrepare, which never marks
// inFlight) while the same batch sits in its queue as an adopted forwarded
// request — proposing it again would execute the batch twice, the classic
// client-retry duplication. The scan is bounded by the water-mark window.
func (r *Replica) digestLive(d types.Digest) bool {
	for seq, e := range r.entries {
		if seq > r.committedUpTo && e.hasPrePrepare && e.digest == d {
			return true
		}
	}
	return false
}

// HandleMessage dispatches a PBFT message; it returns false if msg is not a
// PBFT message (so composing protocols can try their own handlers). All
// cryptographic checks run inline on the caller's goroutine.
func (r *Replica) HandleMessage(from types.NodeID, msg types.Message) bool {
	return r.handle(from, msg, false)
}

// HandleVerified dispatches a PBFT message whose state-independent
// cryptographic checks already passed PreVerify (the fabric's verify pool);
// the apply path skips re-verification but keeps every stateful guard, so
// decisions are identical to HandleMessage's.
func (r *Replica) HandleVerified(from types.NodeID, msg types.Message) bool {
	return r.handle(from, msg, true)
}

func (r *Replica) handle(from types.NodeID, msg types.Message, pre bool) bool {
	switch m := msg.(type) {
	case *Request:
		// A forwarded client request: route it by our current role (the
		// fabric re-verifies the carried client signature before this point;
		// the simulator models the forwarder's check as cost).
		r.env.Suite().ChargeVerifyMAC()
		r.SubmitLocal(m.Batch, m.Sig, true)
		return true
	case *PrePrepare:
		r.env.Suite().ChargeVerifyMAC()
		r.onPrePrepare(from, m, pre)
		return true
	case *Prepare:
		r.env.Suite().ChargeVerifyMAC()
		r.onPrepare(from, m)
		return true
	case *Commit:
		r.env.Suite().ChargeVerifyMAC()
		r.onCommit(from, m, pre)
		return true
	case *Checkpoint:
		r.env.Suite().ChargeVerifyMAC()
		r.onCheckpoint(from, m)
		return true
	case *ViewChange:
		r.onViewChange(from, m)
		return true
	case *NewView:
		r.onNewView(from, m)
		return true
	case *CatchupRequest:
		r.onCatchupRequest(from, m)
		return true
	case *CatchupReply:
		r.onCatchupReply(from, m)
		return true
	}
	return false
}

func (r *Replica) inWindow(seq uint64) bool {
	return seq > r.lowWater && seq <= r.lowWater+2*r.cfg.HighWaterMark
}

// onPrePrepare applies a proposal. pre marks proposals whose batch/digest
// binding was already checked (PreVerify, or the proposing path itself).
func (r *Replica) onPrePrepare(from types.NodeID, m *PrePrepare, pre bool) {
	if from != r.PrimaryOf(m.View) {
		return
	}
	if m.View > r.view {
		// Proposal from a view we have not installed yet: buffer and replay
		// after the NewView arrives.
		if len(r.futurePP) < 4096 {
			r.futurePP = append(r.futurePP, m)
		}
		return
	}
	if m.View != r.view || r.inViewChange {
		return
	}
	if !r.inWindow(m.Seq) {
		return
	}
	if !pre && m.Batch.Digest() != m.Digest {
		r.reject()
		return
	}
	e := r.entryAt(m.Seq)
	if e.hasPrePrepare && e.view == m.View {
		if e.digest != m.Digest {
			// Equivocation by the primary: provable misbehaviour.
			r.startViewChange(r.view + 1)
		}
		return
	}
	if e.committed {
		return // decided; a re-proposal cannot change it
	}
	// Accept (possibly re-proposed in a newer view); votes for the new
	// (view, digest) live in their own bucket, so stale state is harmless.
	e.view = m.View
	e.digest = m.Digest
	e.batch = m.Batch
	e.hasPrePrepare = true
	e.prepared, e.sentCommit = false, false
	r.armProgressTimer()

	// Phase one: broadcast a prepare in support.
	sig := r.env.Suite().Sign(PreparePayload(m.View, m.Seq, m.Digest))
	p := &Prepare{View: m.View, Seq: m.Seq, Digest: m.Digest, Replica: r.env.ID(), Sig: sig}
	r.broadcast(p)
	e.votes(e.prepares, e.key())[r.env.ID()] = sig
	r.maybePrepared(m.Seq, e)
}

func (r *Replica) onPrepare(from types.NodeID, m *Prepare) {
	// Votes for the current or any future view are bucketed; only stale
	// views are discarded. This keeps votes that raced ahead of their
	// preprepare or of our view-change installation.
	if m.Replica != from {
		r.reject() // spoofed vote identity
		return
	}
	if m.View < r.view || !r.inWindow(m.Seq) {
		return
	}
	e := r.entryAt(m.Seq)
	set := e.votes(e.prepares, voteKey{view: m.View, digest: m.Digest})
	if _, dup := set[from]; dup {
		return
	}
	// Prepare signatures are verified lazily (only when used in a
	// view-change proof); normal-case authenticity rests on channel MACs.
	set[from] = m.Sig
	r.maybePrepared(m.Seq, e)
}

func (r *Replica) maybePrepared(seq uint64, e *entry) {
	if e.prepared || !e.hasPrePrepare || len(e.prepares[e.key()]) < r.quorum() {
		return
	}
	e.prepared = true
	dbg("%v PREPARED seq=%d view=%d", r.env.ID(), seq, e.view)
	r.sendCommit(seq, e)
}

func (r *Replica) sendCommit(seq uint64, e *entry) {
	if e.sentCommit {
		return
	}
	e.sentCommit = true
	// Commit messages are digitally signed: they form the forwardable
	// commit certificate (paper Section 2.2).
	sig := r.env.Suite().Sign(CommitPayload(e.view, seq, e.digest))
	c := &Commit{View: e.view, Seq: seq, Digest: e.digest, Replica: r.env.ID(), Sig: sig}
	r.broadcast(c)
	e.votes(e.commits, e.key())[r.env.ID()] = sig
	r.maybeCommitted(seq, e)
}

// onCommit applies a commit vote. pre marks votes whose signature already
// passed PreVerify.
func (r *Replica) onCommit(from types.NodeID, m *Commit, pre bool) {
	if m.Replica != from {
		r.reject() // spoofed vote identity
		return
	}
	if !r.inWindow(m.Seq) {
		return
	}
	e := r.entryAt(m.Seq)
	set := e.votes(e.commits, voteKey{view: m.View, digest: m.Digest})
	if _, dup := set[from]; dup {
		return
	}
	// Commit signatures are verified on receipt: they end up in
	// certificates that other clusters check.
	if !pre && !r.env.Suite().Verify(from, CommitPayload(m.View, m.Seq, m.Digest), m.Sig) {
		r.reject()
		return
	}
	set[from] = m.Sig
	r.maybeCommitted(m.Seq, e)
}

func (r *Replica) maybeCommitted(seq uint64, e *entry) {
	if e.committed || !e.prepared || len(e.commits[e.key()]) < r.quorum() {
		return
	}
	e.committed = true
	dbg("%v COMMITTED seq=%d view=%d", r.env.ID(), seq, e.view)
	e.cert = r.buildCert(seq, e)
	r.certLog[seq] = e.cert
	r.advanceCommitted()
}

func (r *Replica) buildCert(seq uint64, e *entry) *Certificate {
	set := e.commits[e.key()]
	signers := make([]types.NodeID, 0, len(set))
	for id := range set {
		signers = append(signers, id)
	}
	sort.Slice(signers, func(i, j int) bool { return signers[i] < signers[j] })
	if len(signers) > r.quorum() {
		signers = signers[:r.quorum()]
	}
	sigs := make([][]byte, len(signers))
	for i, id := range signers {
		sigs[i] = set[id]
	}
	return &Certificate{
		View: e.view, Seq: seq, Digest: e.digest, Batch: e.batch,
		Signers: signers, Sigs: sigs,
	}
}

func (r *Replica) advanceCommitted() {
	progressed := false
	for {
		e := r.entries[r.committedUpTo+1]
		if e == nil || !e.committed {
			break
		}
		r.committedUpTo++
		progressed = true
		if !e.batch.NoOp && e.batch.Seq > r.clientHWM[e.batch.Client] {
			r.clientHWM[e.batch.Client] = e.batch.Seq
		}
		delete(r.forwarded, e.digest)
		delete(r.inFlight, e.digest)

		// Extend the history digest chain used by checkpoints.
		enc := types.NewEncoder(72)
		enc.Digest(r.history[r.committedUpTo-1])
		enc.Digest(e.digest)
		r.history[r.committedUpTo] = types.Hash(enc.Bytes())

		if r.hooks.Committed != nil {
			r.hooks.Committed(r.committedUpTo, e.cert)
		}
		if r.committedUpTo%r.cfg.CheckpointInterval == 0 {
			r.emitCheckpoint(r.committedUpTo)
		}
	}
	if progressed {
		r.vcAttempts = 0
		r.rearmProgressTimer()
		r.tryPropose()
	}
}

// emitCheckpoint broadcasts this replica's signed checkpoint at seq.
func (r *Replica) emitCheckpoint(seq uint64) {
	d := r.history[seq]
	sig := r.env.Suite().Sign(checkpointPayload(seq, d))
	cp := &Checkpoint{Seq: seq, Digest: d, Replica: r.env.ID(), Sig: sig}
	r.broadcast(cp)
	r.onCheckpoint(r.env.ID(), cp)
}

func (r *Replica) onCheckpoint(from types.NodeID, m *Checkpoint) {
	if m.Seq <= r.lowWater || m.Replica != from {
		return
	}
	set := r.checkpoints[m.Seq]
	if set == nil {
		set = make(map[types.NodeID]*Checkpoint)
		r.checkpoints[m.Seq] = set
	}
	if _, dup := set[from]; dup {
		return
	}
	set[from] = m

	// Count matching digests.
	matching := make([]*Checkpoint, 0, len(set))
	for _, cp := range set {
		if cp.Digest == m.Digest {
			matching = append(matching, cp)
		}
	}
	if len(matching) >= r.quorum() {
		r.stabilize(m.Seq, matching)
	} else if m.Seq > r.committedUpTo+r.cfg.CheckpointInterval && len(set) >= r.cfg.F+1 {
		// f+1 replicas are checkpointing ahead of us: we fell behind.
		r.noteBehind(m.Seq)
		r.requestCatchup()
	}
}

// noteBehind reports evidence of lagging to the composing protocol.
func (r *Replica) noteBehind(seq uint64) {
	if r.hooks.Behind != nil {
		r.hooks.Behind(seq)
	}
}

// stabilize installs a stable checkpoint at seq and garbage collects.
func (r *Replica) stabilize(seq uint64, proof []*Checkpoint) {
	if seq <= r.lowWater {
		return
	}
	if seq > r.committedUpTo {
		// Quorum is ahead of us; remember the proof after catch-up.
		r.noteBehind(seq)
		r.requestCatchup()
		return
	}
	r.lowWater = seq
	sort.Slice(proof, func(i, j int) bool { return proof[i].Replica < proof[j].Replica })
	r.stableProof = proof
	for s := range r.entries {
		if s <= seq {
			delete(r.entries, s)
		}
	}
	for s := range r.checkpoints {
		if s <= seq {
			delete(r.checkpoints, s)
		}
	}
	for s := range r.history {
		if s < seq {
			delete(r.history, s)
		}
	}
	if seq > r.cfg.RetainCerts {
		for s := range r.certLog {
			if s < seq-r.cfg.RetainCerts {
				delete(r.certLog, s)
			}
		}
	}
	if r.nextSeq < seq {
		r.nextSeq = seq
	}
	if r.hooks.Checkpointed != nil {
		r.hooks.Checkpointed(seq)
	}
	r.tryPropose()
}

// requestCatchup asks a random peer for the certificates we are missing.
func (r *Replica) requestCatchup() {
	if now := r.env.Now(); now-r.catchupAsked < 200*time.Millisecond {
		return
	}
	r.catchupAsked = r.env.Now()
	peer := r.cfg.Members[r.env.Rand().Intn(r.n)]
	for peer == r.env.ID() {
		peer = r.cfg.Members[r.env.Rand().Intn(r.n)]
	}
	r.env.Suite().ChargeMAC()
	r.env.Send(peer, &CatchupRequest{FromSeq: r.committedUpTo + 1})
}

func (r *Replica) onCatchupRequest(from types.NodeID, m *CatchupRequest) {
	const maxCerts = 16
	var certs []*Certificate
	for s := m.FromSeq; s <= r.committedUpTo && len(certs) < maxCerts; s++ {
		if c := r.certLog[s]; c != nil {
			certs = append(certs, c)
		} else {
			break
		}
	}
	if len(certs) > 0 {
		r.env.Suite().ChargeMAC()
		r.env.Send(from, &CatchupReply{Certs: certs})
	}
}

func (r *Replica) onCatchupReply(from types.NodeID, m *CatchupReply) {
	for _, cert := range m.Certs {
		r.AdoptCertificate(cert)
	}
}

// AdoptCertificate installs an externally obtained commit certificate after
// full verification. It is used by catch-up and by recovery.
func (r *Replica) AdoptCertificate(cert *Certificate) {
	if cert.Seq <= r.committedUpTo || !r.inWindow(cert.Seq) {
		return
	}
	if !cert.Verify(r.env.Suite(), r.cfg.Members, r.quorum()) {
		r.reject()
		return
	}
	e := r.entryAt(cert.Seq)
	if e.committed {
		return
	}
	e.view, e.digest, e.batch = cert.View, cert.Digest, cert.Batch
	e.hasPrePrepare, e.prepared, e.sentCommit, e.committed = true, true, true, true
	e.cert = cert
	r.certLog[cert.Seq] = cert
	r.advanceCommitted()
}

// FastForward installs externally verified state into a recovering replica:
// the caller (GeoBFT's ledger catch-up) has already validated, through commit
// certificates, that every sequence up to seq is decided, with the history
// digest chain ending at hist and view proven installed by a certificate. The
// replica jumps past the decided prefix — committedUpTo, nextSeq and the
// stable low-water mark all move to seq — and resumes normal operation from
// there. The stable-checkpoint proof is cleared (this replica never collected
// one for seq); it regains a provable checkpoint at the next checkpoint
// interval, and until then its view-change messages will not validate at
// peers — the standard recovery window.
func (r *Replica) FastForward(seq, view uint64, hist types.Digest) {
	if seq <= r.committedUpTo {
		return
	}
	r.committedUpTo = seq
	if r.nextSeq < seq {
		r.nextSeq = seq
	}
	if r.lowWater < seq {
		r.lowWater = seq
		r.stableProof = nil
	}
	r.history = map[uint64]types.Digest{seq: hist}
	for s := range r.entries {
		if s <= seq {
			delete(r.entries, s)
		}
	}
	for s := range r.checkpoints {
		if s <= seq {
			delete(r.checkpoints, s)
		}
	}
	if view > r.view {
		// A commit certificate at this view proves n−f replicas installed it,
		// so adopting it cannot fork; without this the recovering replica
		// would wait forever for a NewView that was sent before it rejoined.
		r.view = view
		r.targetView = view
		r.inViewChange = false
	}
	r.vcAttempts = 0
	r.rearmProgressTimer()
}

// NoteExecuted raises the duplicate-suppression high-water mark for a client
// whose batch was observed committed through catch-up, so a recovered
// primary does not re-propose a retransmission of an already-executed batch.
func (r *Replica) NoteExecuted(client types.NodeID, seq uint64) {
	if seq > r.clientHWM[client] {
		r.clientHWM[client] = seq
	}
}

// --- progress timer -------------------------------------------------------

func (r *Replica) pendingWork() bool {
	if len(r.forwarded) > 0 || len(r.queue) > 0 {
		return true
	}
	for s, e := range r.entries {
		if s > r.committedUpTo && e.hasPrePrepare && !e.committed {
			return true
		}
	}
	return false
}

func (r *Replica) timeout() time.Duration {
	d := r.cfg.ViewChangeTimeout
	for i := uint(0); i < r.vcAttempts && i < 6; i++ {
		d *= 2
	}
	return d
}

func (r *Replica) armProgressTimer() {
	if r.progressTimer != nil || r.inViewChange {
		return
	}
	r.progressTimer = r.env.SetTimer(r.timeout(), r.onProgressTimeout)
}

func (r *Replica) rearmProgressTimer() {
	if r.progressTimer != nil {
		r.progressTimer.Stop()
		r.progressTimer = nil
	}
	if r.pendingWork() {
		r.armProgressTimer()
	}
}

func (r *Replica) onProgressTimeout() {
	r.progressTimer = nil
	if r.inViewChange {
		return
	}
	if !r.pendingWork() {
		return
	}
	if r.IsPrimary() {
		// The primary cannot depose itself; it simply retries proposing.
		r.tryPropose()
		r.armProgressTimer()
		return
	}
	dbg("%v TIMEOUT view=%d committed=%d fwd=%d", r.env.ID(), r.view, r.committedUpTo, len(r.forwarded))
	r.startViewChange(r.view + 1)
}

// Stop cancels outstanding timers (used when tearing a replica down).
func (r *Replica) Stop() {
	if r.progressTimer != nil {
		r.progressTimer.Stop()
		r.progressTimer = nil
	}
}
