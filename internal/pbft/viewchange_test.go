package pbft

import (
	"testing"

	"resilientdb/internal/types"
)

// Unit tests for the pure view-change derivation logic.

func pp(seq uint64, val uint64) *PreparedProof {
	b := types.Batch{Client: types.ClientIDBase, Seq: seq, Txns: []types.Transaction{{Key: 1, Value: val}}}
	return &PreparedProof{View: 0, Seq: seq, Digest: b.Digest(), Batch: b}
}

func TestComputeNewViewProposalsGapsBecomeNoOps(t *testing.T) {
	vcs := []*ViewChange{
		{NewView: 1, Replica: 1, StableSeq: 0, Prepared: []*PreparedProof{pp(1, 10), pp(3, 30)}},
		{NewView: 1, Replica: 2, StableSeq: 0},
		{NewView: 1, Replica: 3, StableSeq: 0},
	}
	out := computeNewViewProposals(1, vcs)
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0].Seq != 1 || out[0].Batch.NoOp {
		t.Error("seq 1 must carry the prepared batch")
	}
	if out[1].Seq != 2 || !out[1].Batch.NoOp {
		t.Error("seq 2 (gap) must be a no-op")
	}
	if out[2].Seq != 3 || out[2].Batch.NoOp {
		t.Error("seq 3 must carry the prepared batch")
	}
	for _, p := range out {
		if p.View != 1 {
			t.Error("re-issued proposals must carry the new view")
		}
		if p.Batch.Digest() != p.Digest {
			t.Error("digest mismatch in re-issued proposal")
		}
	}
}

func TestComputeNewViewProposalsHighestViewWins(t *testing.T) {
	older := pp(1, 10)
	newer := pp(1, 99)
	newer.View = 3
	vcs := []*ViewChange{
		{NewView: 4, Replica: 1, Prepared: []*PreparedProof{older}},
		{NewView: 4, Replica: 2, Prepared: []*PreparedProof{newer}},
		{NewView: 4, Replica: 3},
	}
	out := computeNewViewProposals(4, vcs)
	if len(out) != 1 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0].Digest != newer.Digest {
		t.Error("prepared claim from the higher view must win")
	}
}

func TestComputeNewViewProposalsCertificateBeatsPrepared(t *testing.T) {
	prepared := pp(1, 10)
	prepared.View = 9 // even a much higher prepared view…
	committed := pp(1, 55)
	committed.Cert = &Certificate{Seq: 1, Digest: committed.Digest, Batch: committed.Batch}
	vcs := []*ViewChange{
		{NewView: 10, Replica: 1, Prepared: []*PreparedProof{prepared}},
		{NewView: 10, Replica: 2, Prepared: []*PreparedProof{committed}},
		{NewView: 10, Replica: 3},
	}
	out := computeNewViewProposals(10, vcs)
	if out[0].Digest != committed.Digest {
		t.Error("…must lose to a commit certificate")
	}
}

func TestComputeNewViewProposalsRespectsStableCheckpoint(t *testing.T) {
	vcs := []*ViewChange{
		{NewView: 1, Replica: 1, StableSeq: 4, Prepared: []*PreparedProof{pp(5, 50)}},
		{NewView: 1, Replica: 2, StableSeq: 2, Prepared: []*PreparedProof{pp(3, 30)}},
		{NewView: 1, Replica: 3, StableSeq: 4},
	}
	out := computeNewViewProposals(1, vcs)
	// Nothing at or below the highest proven stable checkpoint (4) may be
	// re-proposed; seq 3 is covered by the checkpoint.
	if len(out) != 1 || out[0].Seq != 5 {
		t.Fatalf("out = %+v", out)
	}
}

func TestComputeNewViewProposalsEmpty(t *testing.T) {
	vcs := []*ViewChange{
		{NewView: 1, Replica: 1}, {NewView: 1, Replica: 2}, {NewView: 1, Replica: 3},
	}
	if out := computeNewViewProposals(1, vcs); len(out) != 0 {
		t.Errorf("expected empty O set, got %d", len(out))
	}
}
