package pbft_test

import (
	"testing"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/crypto"
	"resilientdb/internal/pbft"
	"resilientdb/internal/proto"
	"resilientdb/internal/simnet"
	"resilientdb/internal/types"
	"resilientdb/internal/ycsb"
)

// testClient drives a PBFT group closed-loop: a window of outstanding
// batches, f+1 matching replies to complete, rebroadcast-to-all on timeout
// (the standard PBFT client liveness mechanism).
type testClient struct {
	members   []types.NodeID
	primary   types.NodeID
	f         int
	batchSize int
	total     int
	window    int

	env       *simnet.Env
	wl        *ycsb.Workload
	nextSeq   uint64
	acks      map[uint64]map[types.NodeID]bool
	done      map[uint64]bool
	batches   map[uint64]types.Batch
	completed int
}

func (c *testClient) Init(env *simnet.Env) {
	c.env = env
	c.wl = ycsb.NewWorkload(10_000, ycsb.DefaultTheta, int64(env.ID()))
	c.acks = make(map[uint64]map[types.NodeID]bool)
	c.done = make(map[uint64]bool)
	c.batches = make(map[uint64]types.Batch)
	for i := 0; i < c.window && int(c.nextSeq) < c.total; i++ {
		c.submit()
	}
}

func (c *testClient) submit() {
	c.nextSeq++
	seq := c.nextSeq
	b := c.wl.MakeBatch(c.env.ID(), seq, c.batchSize)
	c.batches[seq] = b
	c.env.Suite().ChargeSign()
	c.env.Send(c.primary, &pbft.Request{Batch: b})
	c.armRetry(seq)
}

func (c *testClient) armRetry(seq uint64) {
	c.env.SetTimer(3*time.Second, func() {
		if c.done[seq] {
			return
		}
		b := c.batches[seq]
		for _, m := range c.members {
			c.env.Send(m, &pbft.Request{Batch: b})
		}
		c.armRetry(seq)
	})
}

func (c *testClient) Receive(from types.NodeID, msg types.Message) {
	rep, ok := msg.(*proto.Reply)
	if !ok || c.done[rep.ClientSeq] {
		return
	}
	set := c.acks[rep.ClientSeq]
	if set == nil {
		set = make(map[types.NodeID]bool)
		c.acks[rep.ClientSeq] = set
	}
	set[from] = true
	if len(set) >= c.f+1 {
		c.done[rep.ClientSeq] = true
		delete(c.batches, rep.ClientSeq)
		c.completed++
		if int(c.nextSeq) < c.total {
			c.submit()
		}
	}
}

// cluster builds n standalone PBFT replicas plus one client in a single
// region and returns the network and parts.
func cluster(t *testing.T, n int, opts simnet.Options) (*simnet.Network, []*pbft.Standalone, *testClient) {
	t.Helper()
	if opts.Profile == nil {
		opts.Profile = config.UniformProfile(1, 0, 1000)
	}
	if opts.Seed == 0 {
		opts.Seed = 7
	}
	net := simnet.New(opts)
	members := make([]types.NodeID, n)
	for i := range members {
		members[i] = types.NodeID(i)
	}
	f := (n - 1) / 3
	reps := make([]*pbft.Standalone, n)
	for i := 0; i < n; i++ {
		reps[i] = pbft.NewStandalone(pbft.Config{
			Members: members, Self: members[i], F: f,
			CheckpointInterval: 4, ViewChangeTimeout: time.Second,
		}, 1000)
		net.AddNode(members[i], 0, reps[i])
	}
	client := &testClient{
		members: members, primary: members[0], f: f,
		batchSize: 10, total: 30, window: 4,
	}
	net.AddNode(config.ClientID(0), 0, client)
	return net, reps, client
}

func assertConvergence(t *testing.T, reps []*pbft.Standalone, skip map[int]bool, wantBatches int) {
	t.Helper()
	var ref *pbft.Standalone
	for i, r := range reps {
		if skip[i] {
			continue
		}
		if ref == nil {
			ref = r
			continue
		}
		if r.Ledger().Height() != ref.Ledger().Height() {
			t.Errorf("replica %d ledger height %d != %d", i, r.Ledger().Height(), ref.Ledger().Height())
		}
		if r.Ledger().Head() != ref.Ledger().Head() {
			t.Errorf("replica %d ledger head differs", i)
		}
		if r.Store().Digest() != ref.Store().Digest() {
			t.Errorf("replica %d store digest differs", i)
		}
		if err := r.Ledger().Verify(); err != nil {
			t.Errorf("replica %d ledger verify: %v", i, err)
		}
	}
	if ref != nil && wantBatches > 0 && ref.Core().CommittedUpTo() < uint64(wantBatches) {
		t.Errorf("committed %d sequences, want ≥ %d", ref.Core().CommittedUpTo(), wantBatches)
	}
}

func TestNormalCaseFourReplicas(t *testing.T) {
	net, reps, client := cluster(t, 4, simnet.Options{})
	net.RunUntil(60 * time.Second)
	if client.completed != client.total {
		t.Fatalf("client completed %d/%d batches", client.completed, client.total)
	}
	assertConvergence(t, reps, nil, client.total)
}

func TestNormalCaseSevenReplicas(t *testing.T) {
	net, reps, client := cluster(t, 7, simnet.Options{Seed: 11})
	net.RunUntil(60 * time.Second)
	if client.completed != client.total {
		t.Fatalf("client completed %d/%d batches", client.completed, client.total)
	}
	assertConvergence(t, reps, nil, client.total)
}

func TestRealCryptoNormalCase(t *testing.T) {
	net, reps, client := cluster(t, 4, simnet.Options{Mode: crypto.Real})
	net.RunUntil(60 * time.Second)
	if client.completed != client.total {
		t.Fatalf("client completed %d/%d batches", client.completed, client.total)
	}
	assertConvergence(t, reps, nil, client.total)
}

func TestBackupFailureDoesNotStall(t *testing.T) {
	net, reps, client := cluster(t, 4, simnet.Options{})
	net.At(0, 3, func() {}) // ensure node known
	net.Crash(3)
	net.RunUntil(60 * time.Second)
	if client.completed != client.total {
		t.Fatalf("client completed %d/%d with one backup down", client.completed, client.total)
	}
	assertConvergence(t, reps, map[int]bool{3: true}, client.total)
}

func TestPrimaryFailureTriggersViewChange(t *testing.T) {
	net, reps, client := cluster(t, 4, simnet.Options{})
	// Let a few batches commit, then kill the primary mid-run (client work
	// outstanding forces the backups to depose it).
	net.RunUntil(5 * time.Millisecond)
	if client.completed == client.total {
		t.Fatal("test setup: workload finished before the crash point")
	}
	net.Crash(0)
	net.RunUntil(240 * time.Second)
	if client.completed != client.total {
		t.Fatalf("client completed %d/%d after primary failure", client.completed, client.total)
	}
	for i := 1; i < 4; i++ {
		if reps[i].Core().View() == 0 {
			t.Errorf("replica %d still in view 0", i)
		}
		if got := reps[i].Core().Primary(); got == 0 {
			t.Errorf("replica %d still believes r0 is primary", i)
		}
	}
	assertConvergence(t, reps, map[int]bool{0: true}, client.total)
}

func TestCheckpointsAdvanceStableSeq(t *testing.T) {
	net, reps, client := cluster(t, 4, simnet.Options{})
	net.RunUntil(60 * time.Second)
	if client.completed != client.total {
		t.Fatalf("completed %d/%d", client.completed, client.total)
	}
	for i, r := range reps {
		if r.Core().StableSeq() == 0 {
			t.Errorf("replica %d never stabilized a checkpoint", i)
		}
		if r.Core().StableSeq()%4 != 0 {
			t.Errorf("replica %d stable seq %d not a checkpoint multiple", i, r.Core().StableSeq())
		}
	}
}

// byzantinePrimary equivocates: it proposes different batches for the same
// sequence number to the two halves of the cluster.
type byzantinePrimary struct {
	members []types.NodeID
	env     *simnet.Env
}

func (b *byzantinePrimary) Init(env *simnet.Env) {
	b.env = env
	env.SetTimer(100*time.Millisecond, func() {
		batchA := types.Batch{Client: config.ClientID(0), Seq: 1,
			Txns: []types.Transaction{{Key: 1, Value: 100}}}
		batchB := types.Batch{Client: config.ClientID(0), Seq: 1,
			Txns: []types.Transaction{{Key: 1, Value: 999}}}
		for i, m := range b.members {
			if m == env.ID() {
				continue
			}
			pp := &pbft.PrePrepare{View: 0, Seq: 1}
			if i%2 == 0 {
				pp.Batch, pp.Digest = batchA, batchA.Digest()
			} else {
				pp.Batch, pp.Digest = batchB, batchB.Digest()
			}
			env.Send(m, pp)
		}
	})
}

func (b *byzantinePrimary) Receive(from types.NodeID, msg types.Message) {}

func TestEquivocatingPrimaryCannotCauseDivergence(t *testing.T) {
	opts := simnet.Options{Profile: config.UniformProfile(1, 0, 1000), Seed: 3, Mode: crypto.Real}
	net := simnet.New(opts)
	n := 4
	members := make([]types.NodeID, n)
	for i := range members {
		members[i] = types.NodeID(i)
	}
	byz := &byzantinePrimary{members: members}
	net.AddNode(members[0], 0, byz)
	reps := make([]*pbft.Standalone, n)
	for i := 1; i < n; i++ {
		reps[i] = pbft.NewStandalone(pbft.Config{
			Members: members, Self: members[i], F: 1,
			ViewChangeTimeout: time.Second,
		}, 100)
		net.AddNode(members[i], 0, reps[i])
	}
	client := &testClient{members: members, primary: members[0], f: 1,
		batchSize: 5, total: 5, window: 2}
	net.AddNode(config.ClientID(0), 0, client)

	net.RunUntil(120 * time.Second)

	// Safety: no two honest replicas executed different batches at the same
	// height.
	for i := 1; i < n; i++ {
		for j := i + 1; j < n; j++ {
			hi, hj := reps[i].Ledger(), reps[j].Ledger()
			minH := hi.Height()
			if hj.Height() < minH {
				minH = hj.Height()
			}
			for h := uint64(1); h <= minH; h++ {
				if hi.Block(h).Hash != hj.Block(h).Hash {
					t.Fatalf("divergence at height %d between r%d and r%d", h, i, j)
				}
			}
		}
	}
	// Liveness: the equivocator was deposed and client work completed.
	if client.completed != client.total {
		t.Errorf("client completed %d/%d under equivocating primary", client.completed, client.total)
	}
	for i := 1; i < n; i++ {
		if reps[i].Core().View() == 0 {
			t.Errorf("replica %d never left the equivocator's view", i)
		}
	}
}

// Property: across seeds and cluster sizes, PBFT preserves ledger prefix
// agreement with a random backup crashed mid-run.
func TestSafetyAcrossSeedsProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		n := 4 + int(seed%2)*3 // 4 or 7
		opts := simnet.Options{Profile: config.UniformProfile(1, 0, 1000), Seed: seed}
		net, reps, client := clusterN(t, n, opts)
		crash := 1 + int(seed)%(n-1)
		net.At(time.Duration(seed)*300*time.Millisecond, types.NodeID(crash), func() {})
		net.RunUntil(time.Duration(seed) * 300 * time.Millisecond)
		net.Crash(types.NodeID(crash))
		net.RunUntil(120 * time.Second)
		if client.completed != client.total {
			t.Errorf("seed %d: completed %d/%d", seed, client.completed, client.total)
		}
		assertConvergence(t, reps, map[int]bool{crash: true}, 0)
	}
}

func clusterN(t *testing.T, n int, opts simnet.Options) (*simnet.Network, []*pbft.Standalone, *testClient) {
	t.Helper()
	return cluster2(t, n, opts)
}

func cluster2(t *testing.T, n int, opts simnet.Options) (*simnet.Network, []*pbft.Standalone, *testClient) {
	t.Helper()
	net := simnet.New(opts)
	members := make([]types.NodeID, n)
	for i := range members {
		members[i] = types.NodeID(i)
	}
	f := (n - 1) / 3
	reps := make([]*pbft.Standalone, n)
	for i := 0; i < n; i++ {
		reps[i] = pbft.NewStandalone(pbft.Config{
			Members: members, Self: members[i], F: f,
			CheckpointInterval: 4, ViewChangeTimeout: time.Second,
		}, 1000)
		net.AddNode(members[i], 0, reps[i])
	}
	client := &testClient{
		members: members, primary: members[0], f: f,
		batchSize: 10, total: 20, window: 4,
	}
	net.AddNode(config.ClientID(0), 0, client)
	return net, reps, client
}

func TestGeoDistributedPBFT(t *testing.T) {
	// PBFT over four regions: latency dominated by WAN round trips but the
	// protocol still converges.
	prof := config.GoogleCloudProfile(4)
	net := simnet.New(simnet.Options{Profile: prof, Seed: 9})
	n := 8
	members := make([]types.NodeID, n)
	for i := range members {
		members[i] = types.NodeID(i)
	}
	reps := make([]*pbft.Standalone, n)
	for i := 0; i < n; i++ {
		reps[i] = pbft.NewStandalone(pbft.Config{
			Members: members, Self: members[i], F: 2,
			ViewChangeTimeout: 5 * time.Second,
		}, 1000)
		net.AddNode(members[i], i%4, reps[i])
	}
	client := &testClient{members: members, primary: members[0], f: 2,
		batchSize: 10, total: 10, window: 2}
	net.AddNode(config.ClientID(0), 0, client)
	net.RunUntil(120 * time.Second)
	if client.completed != client.total {
		t.Fatalf("completed %d/%d across regions", client.completed, client.total)
	}
	assertConvergence(t, reps, nil, client.total)
}
