// Package pbft implements the Practical Byzantine Fault Tolerance protocol
// of Castro and Liskov, in the configuration the ResilientDB paper uses
// (Section 2.2): a three-phase primary-backup commit protocol where only
// client requests and commit messages carry digital signatures (they are
// forwarded), all other messages are authenticated with MACs, plus
// checkpoints and view-changes for liveness under a faulty primary.
//
// The package serves two roles: it is the standalone PBFT baseline of the
// paper's evaluation, and it is the local-replication module inside each
// GeoBFT cluster (package core). The replica is a deterministic state
// machine driven through a proto.Env, so the same code runs in the
// discrete-event simulator and in the real-time fabric.
package pbft

import (
	"resilientdb/internal/types"
)

// Request carries a client batch to the primary, authenticated by the
// submitting client.
type Request struct {
	Batch types.Batch
	// Sig is the client's signature over RequestPayload(&Batch). The fabric
	// verifies it before admission; a backup forwarding the request carries
	// it along so the primary can re-verify without trusting the forwarder.
	// The simulator leaves it empty and models verification as CPU cost.
	Sig []byte
	// Forwarded marks backup→primary forwarding of a client request.
	Forwarded bool
}

func (*Request) MsgType() string { return "pbft/request" }

// WireSize implements types.Message.
func (r *Request) WireSize() int {
	n := r.Batch.WireSize()
	if len(r.Sig) > 0 {
		n += types.SigBytes
	}
	return n
}

// PrePrepare is the primary's proposal assigning sequence seq in view to the
// batch.
type PrePrepare struct {
	View   uint64
	Seq    uint64
	Digest types.Digest
	Batch  types.Batch
}

func (*PrePrepare) MsgType() string { return "pbft/preprepare" }

// WireSize implements types.Message (5.4 kB at batch 100).
func (p *PrePrepare) WireSize() int { return types.HeaderBytes + p.Batch.WireSize() }

// Prepare is a backup's first-phase echo of a proposal. Prepares carry a
// signature that is only verified lazily, when a prepare set is used as a
// prepared-certificate inside a view-change (normal-case authentication is
// via MACs, as in the paper's configuration).
type Prepare struct {
	View    uint64
	Seq     uint64
	Digest  types.Digest
	Replica types.NodeID
	Sig     []byte
}

func (*Prepare) MsgType() string { return "pbft/prepare" }

// WireSize implements types.Message.
func (*Prepare) WireSize() int { return types.ControlBytes }

// Commit is the second-phase vote. Commits are digitally signed: n−f of
// them form the commit certificate that GeoBFT forwards across clusters.
type Commit struct {
	View    uint64
	Seq     uint64
	Digest  types.Digest
	Replica types.NodeID
	Sig     []byte
}

func (*Commit) MsgType() string { return "pbft/commit" }

// WireSize implements types.Message.
func (*Commit) WireSize() int { return types.ControlBytes }

// Checkpoint announces the replica's history digest at a checkpoint
// sequence. Signed, so checkpoint quorums can prove stability inside
// view-changes.
type Checkpoint struct {
	Seq     uint64
	Digest  types.Digest
	Replica types.NodeID
	Sig     []byte
}

func (*Checkpoint) MsgType() string { return "pbft/checkpoint" }

// WireSize implements types.Message.
func (*Checkpoint) WireSize() int { return types.ControlBytes }

// PreparedProof shows that a batch was prepared (or committed) at some
// sequence by this replica, for inclusion in a ViewChange.
type PreparedProof struct {
	View   uint64
	Seq    uint64
	Digest types.Digest
	Batch  types.Batch
	// PrepareSigs holds ≥ n−f prepare signatures (signers aligned with
	// PrepareSigners) proving preparedness.
	PrepareSigners []types.NodeID
	PrepareSigs    [][]byte
	// Cert, if non-nil, is a full commit certificate (stronger than
	// prepared; cannot be forged).
	Cert *Certificate
}

// ViewChange requests moving to NewView and carries the replica's protocol
// state: its latest stable checkpoint (with proof) and every prepared
// proposal above it.
type ViewChange struct {
	NewView     uint64
	Replica     types.NodeID
	StableSeq   uint64
	StableProof []*Checkpoint
	Prepared    []*PreparedProof
	Sig         []byte
}

func (*ViewChange) MsgType() string { return "pbft/viewchange" }

// WireSize implements types.Message.
func (v *ViewChange) WireSize() int {
	size := types.ControlBytes + len(v.StableProof)*types.SigBytes
	for _, p := range v.Prepared {
		size += p.Batch.WireSize() + len(p.PrepareSigs)*types.SigBytes
		if p.Cert != nil {
			size += p.Cert.WireSize()
		}
	}
	return size
}

// NewView is the new primary's installation message: the view-change quorum
// justifying the view plus the re-issued proposals.
type NewView struct {
	View        uint64
	ViewChanges []*ViewChange
	PrePrepares []*PrePrepare
}

func (*NewView) MsgType() string { return "pbft/newview" }

// WireSize implements types.Message.
func (n *NewView) WireSize() int {
	size := types.ControlBytes
	for _, v := range n.ViewChanges {
		size += v.WireSize()
	}
	for _, p := range n.PrePrepares {
		size += p.WireSize()
	}
	return size
}

// CatchupRequest asks a peer for commit certificates from FromSeq onward, so
// a lagging replica can rejoin without waiting for retransmissions.
type CatchupRequest struct {
	FromSeq uint64
}

func (*CatchupRequest) MsgType() string { return "pbft/catchup-req" }

// WireSize implements types.Message.
func (*CatchupRequest) WireSize() int { return types.ControlBytes }

// CatchupReply returns a bounded run of certificates.
type CatchupReply struct {
	Certs []*Certificate
}

func (*CatchupReply) MsgType() string { return "pbft/catchup-reply" }

// WireSize implements types.Message.
func (c *CatchupReply) WireSize() int {
	size := types.HeaderBytes
	for _, cert := range c.Certs {
		size += cert.WireSize()
	}
	return size
}

// Signing payloads. Each is a canonical encoding with a distinct tag so
// signatures can never be confused across message kinds.

// PreparePayload is the canonical signed content of a Prepare message. It is
// exported as an attack seam: the byzantine adversary harness
// (internal/byzantine) constructs protocol-shaped votes signed with the
// compromised replica's own key; the honest path is unchanged, and no seam
// here lets anyone forge another replica's signature.
func PreparePayload(view, seq uint64, digest types.Digest) []byte {
	enc := types.NewEncoder(64)
	enc.String("pbft/PR")
	enc.U64(view)
	enc.U64(seq)
	enc.Digest(digest)
	return enc.Bytes()
}

// CommitPayload is the canonical signed content of a Commit message. It is
// exported because GeoBFT verifies forwarded commit certificates.
func CommitPayload(view, seq uint64, digest types.Digest) []byte {
	enc := types.NewEncoder(64)
	enc.String("pbft/CM")
	enc.U64(view)
	enc.U64(seq)
	enc.Digest(digest)
	return enc.Bytes()
}

func checkpointPayload(seq uint64, digest types.Digest) []byte {
	enc := types.NewEncoder(64)
	enc.String("pbft/CP")
	enc.U64(seq)
	enc.Digest(digest)
	return enc.Bytes()
}

// ViewChangePayload is the canonical signed content of a ViewChange message.
// Exported as an attack seam like PreparePayload: the adversary harness signs
// spam campaigns with its own key to probe the view-change spam defenses.
func ViewChangePayload(v *ViewChange) []byte {
	enc := types.NewEncoder(256)
	enc.String("pbft/VC")
	enc.U64(v.NewView)
	enc.I32(int32(v.Replica))
	enc.U64(v.StableSeq)
	enc.U32(uint32(len(v.Prepared)))
	for _, p := range v.Prepared {
		enc.U64(p.View)
		enc.U64(p.Seq)
		enc.Digest(p.Digest)
	}
	return enc.Bytes()
}

// RequestPayload is the canonical signed content of a client request.
func RequestPayload(b *types.Batch) []byte {
	enc := types.NewEncoder(64)
	enc.String("pbft/RQ")
	d := b.Digest()
	enc.Digest(d)
	return enc.Bytes()
}
