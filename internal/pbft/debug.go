package pbft

// Debugf, when set, receives internal trace lines (test instrumentation).
var Debugf func(format string, args ...interface{})

func dbg(format string, args ...interface{}) {
	if Debugf != nil {
		Debugf(format, args...)
	}
}
