package transport

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"resilientdb/internal/metrics"
	"resilientdb/internal/types"
)

// Faulty wraps any Transport with deterministic, seeded fault injection: it
// drops, delays and partitions traffic before handing it to the inner
// transport. It composes over Mem and TCP alike, so the same chaos scenario
// runs in-process or across sockets. All injected behaviour is driven by the
// seed and the configured predicates — rerunning a scenario with the same
// seed draws the same drop decisions (message arrival order still depends on
// goroutine scheduling, which the consensus protocols tolerate by design).
//
// Faults apply on the send side only; Register/Unregister/Stats/Close pass
// through. Configuration methods are safe to call while traffic flows.
type Faulty struct {
	inner Transport

	mu     sync.Mutex
	rng    *rand.Rand
	prob   float64                                             // uniform drop probability
	drop   func(from, to types.NodeID, msg types.Message) bool // custom predicate
	delay  func(from, to types.NodeID) time.Duration
	group  map[types.NodeID]int // partition group per node; nil = no partition
	closed bool
	timers sync.WaitGroup

	cut atomic.Uint64 // messages dropped by injection
}

// NewFaulty wraps inner with a fault injector seeded by seed.
func NewFaulty(inner Transport, seed int64) *Faulty {
	return &Faulty{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// SetDropRate drops each message independently with probability p (0 ≤ p ≤ 1),
// drawn from the seeded source.
func (f *Faulty) SetDropRate(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.prob = p
}

// SetDrop installs a custom drop predicate (nil clears it). It runs under the
// injector's lock; keep it cheap and deterministic.
func (f *Faulty) SetDrop(fn func(from, to types.NodeID, msg types.Message) bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.drop = fn
}

// SetDelay installs a one-way delay function (nil clears it).
func (f *Faulty) SetDelay(fn func(from, to types.NodeID) time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delay = fn
}

// Partition splits the listed nodes into disjoint groups; messages between
// nodes of different groups are dropped. Nodes not listed in any group keep
// communicating with everyone (so a scenario can cut clusters apart without
// enumerating clients). It replaces any previous partition.
func (f *Faulty) Partition(groups ...[]types.NodeID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.group = make(map[types.NodeID]int)
	for gi, g := range groups {
		for _, id := range g {
			f.group[id] = gi
		}
	}
}

// Heal removes the partition. Drop rate, predicate and delays are unaffected.
func (f *Faulty) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.group = nil
}

// Cut returns the number of messages the injector has dropped.
func (f *Faulty) Cut() uint64 { return f.cut.Load() }

// Register implements Transport.
func (f *Faulty) Register(id types.NodeID) <-chan Envelope { return f.inner.Register(id) }

// Unregister implements Transport.
func (f *Faulty) Unregister(id types.NodeID) { f.inner.Unregister(id) }

// Stats implements Transport (the inner transport's counters; injected drops
// are intentional and reported separately via Cut).
func (f *Faulty) Stats() metrics.DropStats { return f.inner.Stats() }

// Send implements Transport, applying the configured faults.
func (f *Faulty) Send(from, to types.NodeID, msg types.Message) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	if f.group != nil {
		ga, oka := f.group[from]
		gb, okb := f.group[to]
		if oka && okb && ga != gb {
			f.mu.Unlock()
			f.cut.Add(1)
			return
		}
	}
	if f.prob > 0 && f.rng.Float64() < f.prob {
		f.mu.Unlock()
		f.cut.Add(1)
		return
	}
	if f.drop != nil && f.drop(from, to, msg) {
		f.mu.Unlock()
		f.cut.Add(1)
		return
	}
	var d time.Duration
	if f.delay != nil {
		d = f.delay(from, to)
	}
	if d > 0 {
		// Add under the lock that guards closed, so Close's Wait is always
		// ordered after it (racing them panics).
		f.timers.Add(1)
	}
	f.mu.Unlock()
	if d <= 0 {
		f.inner.Send(from, to, msg)
		return
	}
	time.AfterFunc(d, func() {
		defer f.timers.Done()
		f.inner.Send(from, to, msg)
	})
}

// Close implements Transport.
func (f *Faulty) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.mu.Unlock()
	f.timers.Wait()
	f.inner.Close()
}
