package transport

import (
	"testing"
	"time"

	"resilientdb/internal/types"
)

// A Tap with no hook (and one whose hook declines every send) must be a
// transparent Transport: the whole contract holds through the wrapper.
func TestTapConformance(t *testing.T) {
	conformance(t, "TapMem", func(t *testing.T) Transport { return NewTap(NewMem(), nil) })
	conformance(t, "TapDecline", func(t *testing.T) Transport {
		return NewTap(NewMem(), func(from, to types.NodeID, msg types.Message) ([]Delivery, bool) {
			return nil, false
		})
	})
	// The adversary stack used by the chaos suite: a tap over a (quiet)
	// fault injector.
	conformance(t, "TapFaultyMem", func(t *testing.T) Transport {
		return NewTap(NewFaulty(NewMem(), 7), nil)
	})
}

// TestTapInterception drives the three interception outcomes: suppression,
// rewriting to a different recipient, and fan-out into extra deliveries.
func TestTapInterception(t *testing.T) {
	tap := NewTap(NewMem(), func(from, to types.NodeID, m types.Message) ([]Delivery, bool) {
		if from != 2 {
			return nil, false // honest senders pass through
		}
		switch m.(*msg).n {
		case 1: // suppress
			return nil, true
		case 2: // redirect and tamper
			return []Delivery{{To: 3, Msg: &msg{n: 20}}}, true
		case 3: // equivocate: different payloads to different recipients
			return []Delivery{{To: 1, Msg: &msg{n: 30}}, {To: 3, Msg: &msg{n: 31}}}, true
		}
		return nil, false
	})
	defer tap.Close()
	box1 := tap.Register(1)
	tap.Register(2)
	box3 := tap.Register(3)

	recv := func(box <-chan Envelope) *msg {
		t.Helper()
		select {
		case env := <-box:
			return env.Msg.(*msg)
		case <-time.After(time.Second):
			t.Fatal("no delivery")
			return nil
		}
	}

	tap.Send(2, 1, &msg{n: 1}) // suppressed
	tap.Send(2, 1, &msg{n: 2}) // redirected to 3, payload rewritten
	if got := recv(box3); got.n != 20 {
		t.Errorf("redirected payload = %d, want 20", got.n)
	}
	tap.Send(2, 1, &msg{n: 3}) // equivocation
	if got := recv(box1); got.n != 30 {
		t.Errorf("box1 equivocation payload = %d, want 30", got.n)
	}
	if got := recv(box3); got.n != 31 {
		t.Errorf("box3 equivocation payload = %d, want 31", got.n)
	}
	tap.Send(4, 1, &msg{n: 9}) // honest sender untouched
	if got := recv(box1); got.n != 9 {
		t.Errorf("honest payload = %d, want 9", got.n)
	}
	select {
	case env := <-box1:
		t.Errorf("suppressed message delivered: %+v", env)
	default:
	}
}
