package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"resilientdb/internal/pbft"
	"resilientdb/internal/types"
)

type msg struct{ n int }

func (*msg) MsgType() string { return "test" }
func (*msg) WireSize() int   { return 8 }

// conformance runs the Transport contract against one implementation. Both
// Mem and TCP must pass it unchanged: register/send/close semantics,
// latency injection, and drop-on-full are part of the interface.
func conformance(t *testing.T, name string, mk func(t *testing.T) Transport) {
	t.Run(name+"/Delivery", func(t *testing.T) {
		tr := mk(t)
		defer tr.Close()
		a := tr.Register(1)
		_ = tr.Register(2)
		tr.Send(2, 1, &msg{n: 7})
		select {
		case env := <-a:
			if env.From != 2 || env.Msg.(*msg).n != 7 {
				t.Errorf("got %+v", env)
			}
		case <-time.After(time.Second):
			t.Fatal("no delivery")
		}
	})

	t.Run(name+"/UnknownDestinationDropped", func(t *testing.T) {
		tr := mk(t)
		defer tr.Close()
		tr.Register(1)
		tr.Send(1, 99, &msg{}) // must not panic or block
	})

	t.Run(name+"/InjectedLatency", func(t *testing.T) {
		tr := mk(t)
		defer tr.Close()
		setLatency(tr, func(from, to types.NodeID) time.Duration { return 50 * time.Millisecond })
		a := tr.Register(1)
		tr.Register(2)
		start := time.Now()
		tr.Send(2, 1, &msg{})
		select {
		case <-a:
			if d := time.Since(start); d < 40*time.Millisecond {
				t.Errorf("delivered after %v, want ≥ ~50ms", d)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("no delivery")
		}
	})

	t.Run(name+"/DropOnFullMailbox", func(t *testing.T) {
		tr := mk(t)
		defer tr.Close()
		box := tr.Register(1)
		tr.Register(2)
		// Overflow the undrained mailbox; every send must return without
		// blocking and the surplus must be dropped.
		for i := 0; i < mailboxDepth+100; i++ {
			tr.Send(2, 1, &msg{n: i})
		}
		drained := 0
		for {
			select {
			case <-box:
				drained++
				continue
			default:
			}
			break
		}
		if drained != mailboxDepth {
			t.Errorf("drained %d messages, want exactly %d buffered", drained, mailboxDepth)
		}
	})

	t.Run(name+"/CloseIsIdempotentAndSafe", func(t *testing.T) {
		tr := mk(t)
		tr.Register(1)
		tr.Send(1, 1, &msg{})
		tr.Close()
		tr.Close()
		tr.Send(1, 1, &msg{}) // after close: dropped, no panic
	})

	t.Run(name+"/MailboxClosedOnClose", func(t *testing.T) {
		tr := mk(t)
		box := tr.Register(1)
		tr.Close()
		select {
		case _, ok := <-box:
			if ok {
				t.Error("unexpected message")
			}
		case <-time.After(time.Second):
			t.Error("mailbox not closed")
		}
	})

	t.Run(name+"/UnregisterDropsThenReRegisters", func(t *testing.T) {
		tr := mk(t)
		defer tr.Close()
		box1 := tr.Register(1)
		tr.Register(2)
		tr.Unregister(1)
		if _, ok := <-box1; ok {
			t.Error("unregistered mailbox delivered a message")
		}
		tr.Send(2, 1, &msg{n: 1}) // dropped, no panic
		tr.Unregister(1)          // idempotent
		tr.Unregister(99)         // unknown: no-op
		box2 := tr.Register(1)    // a restarted node re-registers
		tr.Send(2, 1, &msg{n: 9})
		select {
		case env := <-box2:
			if env.Msg.(*msg).n != 9 {
				t.Errorf("got %+v", env)
			}
		case <-time.After(time.Second):
			t.Fatal("no delivery after re-registration")
		}
	})

	t.Run(name+"/DuplicateRegistrationPanics", func(t *testing.T) {
		tr := mk(t)
		defer tr.Close()
		tr.Register(1)
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		tr.Register(1)
	})

	t.Run(name+"/SendCloseRace", func(t *testing.T) {
		// Hammer Send from several goroutines while Close runs: must be free
		// of send-on-closed-channel panics and data races (run with -race).
		for round := 0; round < 20; round++ {
			tr := mk(t)
			setLatency(tr, func(from, to types.NodeID) time.Duration {
				if from == 3 {
					return time.Millisecond
				}
				return 0
			})
			tr.Register(1)
			var wg sync.WaitGroup
			for g := types.NodeID(2); g <= 4; g++ {
				wg.Add(1)
				go func(from types.NodeID) {
					defer wg.Done()
					for i := 0; i < 200; i++ {
						tr.Send(from, 1, &msg{n: i})
					}
				}(g)
			}
			tr.Close()
			wg.Wait()
		}
	})
}

func setLatency(tr Transport, fn func(from, to types.NodeID) time.Duration) {
	switch impl := tr.(type) {
	case *Mem:
		impl.Latency = fn
	case *TCP:
		impl.Latency = fn
	case *Tap:
		setLatency(impl.inner, fn)
	case *Faulty:
		impl.SetDelay(fn)
	}
}

func TestConformance(t *testing.T) {
	conformance(t, "Mem", func(t *testing.T) Transport { return NewMem() })
	conformance(t, "TCP", func(t *testing.T) Transport {
		tr, err := NewTCP("127.0.0.1:0", func(types.NodeID) string { return "" })
		if err != nil {
			t.Fatal(err)
		}
		return tr
	})
	// A fault injector with no faults configured must be a transparent
	// Transport: the whole contract holds through the wrapper.
	conformance(t, "FaultyMem", func(t *testing.T) Transport { return NewFaulty(NewMem(), 42) })
}

// newTCPPair builds two TCP transports whose address books point node 1 at
// a and node 2 at b.
func newTCPPair(t *testing.T) (a, b *TCP, book func(types.NodeID) string) {
	t.Helper()
	var addrs sync.Map
	book = func(id types.NodeID) string {
		if v, ok := addrs.Load(id); ok {
			return v.(string)
		}
		return ""
	}
	a, err := NewTCP("127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	b, err = NewTCP("127.0.0.1:0", book)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	addrs.Store(types.NodeID(1), a.Addr())
	addrs.Store(types.NodeID(2), b.Addr())
	return a, b, book
}

// TestTCPCrossProcessDelivery sends a real protocol message between two TCP
// transports and checks it arrives decoded and intact.
func TestTCPCrossProcessDelivery(t *testing.T) {
	a, b, _ := newTCPPair(t)
	defer a.Close()
	defer b.Close()
	a.Register(1)
	box := b.Register(2)

	want := &pbft.Prepare{View: 3, Seq: 9, Digest: types.Hash([]byte("d")), Replica: 1, Sig: []byte{1, 2, 3}}
	a.Send(1, 2, want)
	select {
	case env := <-box:
		got, ok := env.Msg.(*pbft.Prepare)
		if !ok {
			t.Fatalf("got %T", env.Msg)
		}
		if env.From != 1 || got.View != 3 || got.Seq != 9 || got.Digest != want.Digest ||
			got.Replica != 1 || string(got.Sig) != string(want.Sig) {
			t.Errorf("message mangled in transit: %+v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery across TCP")
	}
}

// TestTCPUnregisteredMessageDropped checks that a message type without a
// wire codec is dropped at the sender rather than crashing the transport.
func TestTCPUnregisteredMessageDropped(t *testing.T) {
	a, b, _ := newTCPPair(t)
	defer a.Close()
	defer b.Close()
	var logged atomic.Bool
	a.Logf = func(string, ...any) { logged.Store(true) }
	a.Register(1)
	box := b.Register(2)
	a.Send(1, 2, &msg{n: 1}) // unregistered: dropped with a diagnostic
	a.Send(1, 2, &pbft.CatchupRequest{FromSeq: 5})
	select {
	case env := <-box:
		if _, ok := env.Msg.(*pbft.CatchupRequest); !ok {
			t.Fatalf("got %T, want CatchupRequest", env.Msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("transport wedged after unregistered message")
	}
	if !logged.Load() {
		t.Error("unregistered message dropped silently")
	}
}

// TestTCPReconnect kills the receiving transport and brings a new one up on
// a different port; the sender must redial (with backoff) once the address
// book is updated and deliver again.
func TestTCPReconnect(t *testing.T) {
	var addrs sync.Map
	book := func(id types.NodeID) string {
		if v, ok := addrs.Load(id); ok {
			return v.(string)
		}
		return ""
	}
	a, err := NewTCP("127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Register(1)

	b1, err := NewTCP("127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	listenAddr := b1.Addr()
	addrs.Store(types.NodeID(2), listenAddr)
	box1 := b1.Register(2)
	a.Send(1, 2, &pbft.CatchupRequest{FromSeq: 1})
	select {
	case <-box1:
	case <-time.After(5 * time.Second):
		t.Fatal("initial delivery failed")
	}
	b1.Close()

	// Same listen address, new transport: the sender's pooled connection
	// died with b1 and must redial.
	var b2 *TCP
	deadline := time.Now().Add(5 * time.Second)
	for {
		b2, err = NewTCP(listenAddr, book)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", listenAddr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer b2.Close()
	box2 := b2.Register(2)

	got := make(chan struct{})
	go func() {
		for range box2 {
			close(got)
			return
		}
	}()
	// Keep sending: frames sent while disconnected may be dropped, exactly
	// like datagrams; the redial must eventually land one.
	for i := 0; i < 200; i++ {
		a.Send(1, 2, &pbft.CatchupRequest{FromSeq: uint64(i)})
		select {
		case <-got:
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
	t.Fatal("no delivery after reconnect")
}

// TestStatsCountDrops checks that silent drops surface in Stats: full
// mailboxes on Mem, unroutable destinations and encode failures on TCP.
func TestStatsCountDrops(t *testing.T) {
	t.Run("MemMailboxFull", func(t *testing.T) {
		tr := NewMem()
		defer tr.Close()
		_ = tr.Register(1)
		_ = tr.Register(2)
		const extra = 50
		for i := 0; i < mailboxDepth+extra; i++ {
			tr.Send(2, 1, &msg{n: i})
		}
		if st := tr.Stats(); st.Mailbox != extra {
			t.Errorf("mailbox drops = %d, want %d", st.Mailbox, extra)
		}
	})
	t.Run("MemNoRoute", func(t *testing.T) {
		tr := NewMem()
		defer tr.Close()
		_ = tr.Register(1)
		tr.Send(1, 99, &msg{n: 1})
		if st := tr.Stats(); st.NoRoute != 1 {
			t.Errorf("no-route drops = %d, want 1", st.NoRoute)
		}
	})
	t.Run("TCP", func(t *testing.T) {
		a, b, _ := newTCPPair(t)
		defer a.Close()
		defer b.Close()
		a.Register(1)
		_ = b.Register(2)
		a.Logf = func(string, ...any) {}
		a.Send(1, 99, &pbft.CatchupRequest{FromSeq: 1}) // no address book entry
		a.Send(1, 2, &msg{n: 1})                        // no wire codec
		st := a.Stats()
		if st.NoRoute != 1 || st.Encode != 1 {
			t.Errorf("stats = %+v, want NoRoute=1 Encode=1", st)
		}
	})
}

// TestTCPBurstCoalesced pushes a large burst of frames through one
// connection; the coalescing writer must deliver every frame intact and in
// order.
func TestTCPBurstCoalesced(t *testing.T) {
	a, b, _ := newTCPPair(t)
	defer a.Close()
	defer b.Close()
	a.Register(1)
	box := b.Register(2)

	const burst = 1000
	for i := 0; i < burst; i++ {
		a.Send(1, 2, &pbft.CatchupRequest{FromSeq: uint64(i)})
	}
	next := uint64(0)
	deadline := time.After(10 * time.Second)
	for next < burst {
		select {
		case env := <-box:
			m, ok := env.Msg.(*pbft.CatchupRequest)
			if !ok {
				t.Fatalf("got %T", env.Msg)
			}
			if m.FromSeq != next {
				t.Fatalf("out of order: got %d, want %d", m.FromSeq, next)
			}
			next++
		case <-deadline:
			st := a.Stats()
			t.Fatalf("received %d/%d (sender drops: %+v)", next, burst, st)
		}
	}
}
