package transport

import (
	"testing"
	"time"

	"resilientdb/internal/types"
)

type msg struct{ n int }

func (*msg) MsgType() string { return "test" }
func (*msg) WireSize() int   { return 8 }

func TestDelivery(t *testing.T) {
	m := NewMem()
	defer m.Close()
	a := m.Register(1)
	_ = m.Register(2)
	m.Send(2, 1, &msg{n: 7})
	select {
	case env := <-a:
		if env.From != 2 || env.Msg.(*msg).n != 7 {
			t.Errorf("got %+v", env)
		}
	case <-time.After(time.Second):
		t.Fatal("no delivery")
	}
}

func TestUnknownDestinationDropped(t *testing.T) {
	m := NewMem()
	defer m.Close()
	m.Register(1)
	m.Send(1, 99, &msg{}) // must not panic or block
}

func TestInjectedLatency(t *testing.T) {
	m := NewMem()
	defer m.Close()
	m.Latency = func(from, to types.NodeID) time.Duration { return 50 * time.Millisecond }
	a := m.Register(1)
	m.Register(2)
	start := time.Now()
	m.Send(2, 1, &msg{})
	select {
	case <-a:
		if d := time.Since(start); d < 40*time.Millisecond {
			t.Errorf("delivered after %v, want ≥ ~50ms", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery")
	}
}

func TestCloseIsIdempotentAndSafe(t *testing.T) {
	m := NewMem()
	m.Register(1)
	m.Send(1, 1, &msg{})
	m.Close()
	m.Close()
	m.Send(1, 1, &msg{}) // after close: dropped, no panic
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	m := NewMem()
	defer m.Close()
	m.Register(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.Register(1)
}
