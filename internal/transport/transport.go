// Package transport provides the message transports used by the real-time
// ResilientDB fabric (package fabric): an in-process transport connecting
// node mailboxes with optional injected one-way latency, and a real TCP
// transport with a length-prefixed wire format so a deployment can span
// separate OS processes and machines. Both share UDP-like semantics: sends
// never block, and a full mailbox or disconnected peer drops the message
// (consensus protocols tolerate loss; timers recover).
package transport

import (
	"sync"
	"time"

	"resilientdb/internal/metrics"
	"resilientdb/internal/types"
)

// Envelope is a routed message.
type Envelope struct {
	// From is the sending node (the fabric's output stage repurposes it as
	// the destination while an envelope sits in a send queue).
	From types.NodeID
	// Msg is the message itself.
	Msg types.Message
}

// FrameAuth authenticates TCP wire frames. An implementation holds the
// deployment's pairwise key material (crypto.NewFrameMAC): Tag computes the
// authentication tag a sender appends to a frame payload, and Verify checks
// a received frame's tag against the (from, to) pair the payload claims —
// binding the claimed sender identity to the pair key instead of trusting
// the wire bytes. Implementations must be safe for concurrent use; every
// process of a deployment must install the same authenticator (or none).
type FrameAuth interface {
	// TagSize returns the fixed tag length in bytes.
	TagSize() int
	// Tag computes the tag authenticating payload on the (from, to) channel.
	Tag(from, to types.NodeID, payload []byte) []byte
	// Verify reports whether tag authenticates payload on the (from, to)
	// channel.
	Verify(from, to types.NodeID, payload, tag []byte) bool
}

// Transport delivers messages between registered nodes.
type Transport interface {
	// Register creates the mailbox for a node and returns its receive
	// channel. A node may be registered at most once at a time; after
	// Unregister the same id may register again (a restarted node).
	Register(id types.NodeID) <-chan Envelope
	// Unregister removes and closes a node's mailbox: traffic to it is
	// silently dropped from then on, like a crashed machine's. Unknown ids
	// are a no-op.
	Unregister(id types.NodeID)
	// Send delivers msg from one node to another. Sends to unknown nodes
	// are dropped.
	Send(from, to types.NodeID, msg types.Message)
	// Stats returns a snapshot of the transport's loss counters, so runs
	// can report drops (full mailboxes, full send queues, codec failures)
	// instead of mystery throughput dips.
	Stats() metrics.DropStats
	// Close shuts the transport down; all mailboxes are closed.
	Close()
}

// mailboxDepth is the per-node receive buffer shared by all transports.
const mailboxDepth = 4096

// mailbox is one node's receive queue. Its own lock makes the close/send
// race explicit: put checks the closed flag under the same lock close sets
// it, so a racing Close can never provoke a send on a closed channel.
type mailbox struct {
	mu     sync.Mutex
	ch     chan Envelope
	closed bool
	drops  *metrics.Drops // owning transport's counters
}

func newMailbox(drops *metrics.Drops) *mailbox {
	return &mailbox{ch: make(chan Envelope, mailboxDepth), drops: drops}
}

// put delivers e without blocking; full or closed mailboxes drop it (full
// ones are counted).
func (b *mailbox) put(e Envelope) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	select {
	case b.ch <- e:
	default:
		b.drops.Mailbox.Add(1)
	}
}

// close closes the receive channel exactly once.
func (b *mailbox) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.closed {
		b.closed = true
		close(b.ch)
	}
}

// Mem is an in-memory transport. Latency, if set, returns the injected
// one-way delay between two nodes (for example from the Table 1 profile).
type Mem struct {
	// Latency injects a one-way delay per (from, to) pair; nil delivers
	// immediately. Set it before the first Send.
	Latency func(from, to types.NodeID) time.Duration

	mu     sync.RWMutex
	boxes  map[types.NodeID]*mailbox
	closed bool
	wg     sync.WaitGroup
	drops  metrics.Drops
}

// NewMem returns an in-memory transport.
func NewMem() *Mem {
	return &Mem{boxes: make(map[types.NodeID]*mailbox)}
}

// Register implements Transport.
func (m *Mem) Register(id types.NodeID) <-chan Envelope {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.boxes[id]; dup {
		panic("transport: duplicate registration")
	}
	box := newMailbox(&m.drops)
	m.boxes[id] = box
	return box.ch
}

// Unregister implements Transport.
func (m *Mem) Unregister(id types.NodeID) {
	m.mu.Lock()
	box := m.boxes[id]
	delete(m.boxes, id)
	m.mu.Unlock()
	if box != nil {
		box.close()
	}
}

// Stats implements Transport.
func (m *Mem) Stats() metrics.DropStats { return m.drops.Snapshot() }

// Send implements Transport. When the destination mailbox is full the
// message is dropped, which keeps the pipeline non-blocking like a
// UDP-style transport.
func (m *Mem) Send(from, to types.NodeID, msg types.Message) {
	lat := time.Duration(0)
	if m.Latency != nil {
		lat = m.Latency(from, to)
	}
	m.mu.RLock()
	box := m.boxes[to]
	if box == nil || m.closed {
		if box == nil && !m.closed {
			m.drops.NoRoute.Add(1)
		}
		m.mu.RUnlock()
		return
	}
	if lat > 0 {
		// Add while holding the lock that guards closed: Close sets closed
		// under the write lock before calling wg.Wait, so the Add is always
		// ordered before the Wait (racing them panics).
		m.wg.Add(1)
	}
	m.mu.RUnlock()
	if lat <= 0 {
		box.put(Envelope{From: from, Msg: msg})
		return
	}
	time.AfterFunc(lat, func() {
		defer m.wg.Done()
		box.put(Envelope{From: from, Msg: msg})
	})
}

// Close implements Transport.
func (m *Mem) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	boxes := m.boxes
	m.boxes = map[types.NodeID]*mailbox{}
	m.mu.Unlock()
	m.wg.Wait()
	for _, box := range boxes {
		box.close()
	}
}
