// Package transport provides the message transport used by the real-time
// ResilientDB fabric (package fabric): an in-process transport connecting
// node mailboxes with optional injected one-way latency, so a fabric
// deployment can emulate a geo-distributed network on one machine while
// exercising the true multi-threaded pipeline.
package transport

import (
	"sync"
	"time"

	"resilientdb/internal/types"
)

// Envelope is a routed message.
type Envelope struct {
	From types.NodeID
	Msg  types.Message
}

// Transport delivers messages between registered nodes.
type Transport interface {
	// Register creates the mailbox for a node and returns its receive
	// channel. Each node must register exactly once.
	Register(id types.NodeID) <-chan Envelope
	// Send delivers msg from one node to another. Sends to unknown nodes
	// are dropped.
	Send(from, to types.NodeID, msg types.Message)
	// Close shuts the transport down; all mailboxes are closed.
	Close()
}

// Mem is an in-memory transport. Latency, if set, returns the injected
// one-way delay between two nodes (for example from the Table 1 profile).
type Mem struct {
	Latency func(from, to types.NodeID) time.Duration

	mu     sync.RWMutex
	boxes  map[types.NodeID]chan Envelope
	closed bool
	wg     sync.WaitGroup
}

// NewMem returns an in-memory transport with the given per-mailbox buffer.
func NewMem() *Mem {
	return &Mem{boxes: make(map[types.NodeID]chan Envelope)}
}

// Register implements Transport.
func (m *Mem) Register(id types.NodeID) <-chan Envelope {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.boxes[id]; dup {
		panic("transport: duplicate registration")
	}
	ch := make(chan Envelope, 4096)
	m.boxes[id] = ch
	return ch
}

// Send implements Transport. When the destination mailbox is full the
// message is dropped (consensus protocols tolerate loss; timers recover),
// which keeps the pipeline non-blocking like a UDP-style transport.
func (m *Mem) Send(from, to types.NodeID, msg types.Message) {
	m.mu.RLock()
	box := m.boxes[to]
	closed := m.closed
	lat := time.Duration(0)
	if m.Latency != nil {
		lat = m.Latency(from, to)
	}
	m.mu.RUnlock()
	if box == nil || closed {
		return
	}
	deliver := func() {
		defer func() { recover() }() // racing Close is a dropped message
		select {
		case box <- Envelope{From: from, Msg: msg}:
		default:
		}
	}
	if lat <= 0 {
		deliver()
		return
	}
	m.wg.Add(1)
	time.AfterFunc(lat, func() {
		defer m.wg.Done()
		m.mu.RLock()
		stillOpen := !m.closed
		m.mu.RUnlock()
		if stillOpen {
			deliver()
		}
	})
}

// Close implements Transport.
func (m *Mem) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	boxes := m.boxes
	m.boxes = map[types.NodeID]chan Envelope{}
	m.mu.Unlock()
	m.wg.Wait()
	for _, ch := range boxes {
		close(ch)
	}
}
