package transport

import (
	"resilientdb/internal/metrics"
	"resilientdb/internal/types"
)

// Delivery is one message an intercepted send turns into: the byzantine
// adversary harness (internal/byzantine) rewrites a single outbound message
// into zero or more deliveries — suppression, tampering, equivocation to
// different recipients, or injected extras riding along.
type Delivery struct {
	// To is the destination node.
	To types.NodeID
	// Msg is the message to deliver (possibly forged or tampered).
	Msg types.Message
}

// InterceptFn inspects one send before it reaches the wrapped transport. It
// returns the deliveries to perform instead and true to intercept, or false
// to let the original message through untouched. Returning (nil, true)
// suppresses the message entirely. The function is called concurrently from
// every sender's output goroutines and must be safe for concurrent use.
type InterceptFn func(from, to types.NodeID, msg types.Message) ([]Delivery, bool)

// Tap wraps any Transport with a send-side interception hook: the scripted
// tap/inject point of the byzantine adversary harness. Every Send is offered
// to the intercept function first; honest traffic (and everything when fn is
// nil) passes through unchanged. Register, Unregister, Stats and Close pass
// through, so a Tap composes with Faulty and with the Mem and TCP transports
// alike — the same attack script runs in-process or across sockets.
//
// Faults and taps compose outside-in: a Tap wrapping a Faulty rewrites the
// message first and then subjects each resulting delivery to the injector's
// drop/delay/partition decisions, exactly as a compromised process's traffic
// would experience the same network as everyone else's.
type Tap struct {
	inner Transport
	fn    InterceptFn
}

// NewTap wraps inner with the given intercept hook (nil passes everything
// through).
func NewTap(inner Transport, fn InterceptFn) *Tap {
	return &Tap{inner: inner, fn: fn}
}

// Register implements Transport.
func (t *Tap) Register(id types.NodeID) <-chan Envelope { return t.inner.Register(id) }

// Unregister implements Transport.
func (t *Tap) Unregister(id types.NodeID) { t.inner.Unregister(id) }

// Stats implements Transport (the inner transport's counters; interception
// is intentional and observed through the adversary's own statistics).
func (t *Tap) Stats() metrics.DropStats { return t.inner.Stats() }

// Send implements Transport, applying the intercept hook.
func (t *Tap) Send(from, to types.NodeID, msg types.Message) {
	if t.fn != nil {
		if deliveries, intercepted := t.fn(from, to, msg); intercepted {
			for _, d := range deliveries {
				t.inner.Send(from, d.To, d.Msg)
			}
			return
		}
	}
	t.inner.Send(from, to, msg)
}

// Close implements Transport.
func (t *Tap) Close() { t.inner.Close() }
