package transport

import (
	"testing"
	"time"

	"resilientdb/internal/types"
)

func recvN(t *testing.T, box <-chan Envelope, want int, timeout time.Duration) int {
	t.Helper()
	got := 0
	deadline := time.After(timeout)
	for got < want {
		select {
		case <-box:
			got++
		case <-deadline:
			return got
		}
	}
	// Drain any stragglers that arrive immediately.
	for {
		select {
		case <-box:
			got++
		case <-time.After(50 * time.Millisecond):
			return got
		}
	}
}

func TestFaultyPartitionAndHeal(t *testing.T) {
	f := NewFaulty(NewMem(), 1)
	defer f.Close()
	boxes := map[types.NodeID]<-chan Envelope{}
	for id := types.NodeID(1); id <= 5; id++ {
		boxes[id] = f.Register(id)
	}
	f.Partition([]types.NodeID{1, 2}, []types.NodeID{3, 4})

	f.Send(1, 2, &msg{n: 1}) // same group: delivered
	f.Send(1, 3, &msg{n: 2}) // cross-group: cut
	f.Send(3, 2, &msg{n: 3}) // cross-group: cut
	f.Send(1, 5, &msg{n: 4}) // 5 is unlisted: delivered
	f.Send(5, 4, &msg{n: 5}) // unlisted sender: delivered

	if got := recvN(t, boxes[2], 1, time.Second); got != 1 {
		t.Errorf("same-group delivery: got %d", got)
	}
	if got := recvN(t, boxes[3], 0, 100*time.Millisecond); got != 0 {
		t.Errorf("cross-group message delivered")
	}
	if got := recvN(t, boxes[5], 1, time.Second); got != 1 {
		t.Errorf("unlisted destination: got %d", got)
	}
	if got := recvN(t, boxes[4], 1, time.Second); got != 1 {
		t.Errorf("unlisted sender: got %d", got)
	}
	if f.Cut() != 2 {
		t.Errorf("cut = %d, want 2", f.Cut())
	}

	f.Heal()
	f.Send(1, 3, &msg{n: 6})
	if got := recvN(t, boxes[3], 1, time.Second); got != 1 {
		t.Error("no delivery after heal")
	}
}

// TestFaultyDropRateDeterminism pins the seeded determinism: the same seed
// and send sequence draw the same drop decisions.
func TestFaultyDropRateDeterminism(t *testing.T) {
	run := func(seed int64) (delivered int, cut uint64) {
		f := NewFaulty(NewMem(), seed)
		defer f.Close()
		box := f.Register(1)
		f.Register(2)
		f.SetDropRate(0.5)
		for i := 0; i < 200; i++ {
			f.Send(2, 1, &msg{n: i})
		}
		return recvN(t, box, 200, 200*time.Millisecond), f.Cut()
	}
	d1, c1 := run(7)
	d2, c2 := run(7)
	d3, c3 := run(8)
	if d1 != d2 || c1 != c2 {
		t.Errorf("same seed diverged: %d/%d vs %d/%d", d1, c1, d2, c2)
	}
	if d1+int(c1) != 200 {
		t.Errorf("delivered %d + cut %d != 200", d1, c1)
	}
	if d1 == 0 || d1 == 200 {
		t.Errorf("drop rate 0.5 delivered %d/200", d1)
	}
	_ = d3
	if c3 == c1 {
		t.Logf("different seeds drew the same cut count (%d); unlikely but legal", c1)
	}
}

func TestFaultyCustomDropAndDelay(t *testing.T) {
	f := NewFaulty(NewMem(), 3)
	defer f.Close()
	box := f.Register(1)
	f.Register(2)
	f.Register(3)
	f.SetDrop(func(from, to types.NodeID, m types.Message) bool { return from == 3 })
	f.SetDelay(func(from, to types.NodeID) time.Duration {
		if from == 2 {
			return 60 * time.Millisecond
		}
		return 0
	})
	start := time.Now()
	f.Send(3, 1, &msg{n: 1}) // predicate: dropped
	f.Send(2, 1, &msg{n: 2}) // delayed
	select {
	case env := <-box:
		if env.From != 2 {
			t.Fatalf("got message from %v", env.From)
		}
		if d := time.Since(start); d < 50*time.Millisecond {
			t.Errorf("delayed message arrived after %v", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery")
	}
	if f.Cut() != 1 {
		t.Errorf("cut = %d, want 1", f.Cut())
	}
}
