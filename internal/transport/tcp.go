package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"resilientdb/internal/metrics"
	"resilientdb/internal/types"
)

// TCP is a real network transport: one listener per process plus a
// dial-on-demand pool of outgoing connections, carrying length-prefixed
// frames of the canonical wire codec (types.EncodeMessage). It matches the
// Mem transport's semantics — non-blocking sends, drop on full mailbox or
// full send queue — so the fabric pipeline behaves identically over
// loopback, a LAN, or a WAN. Lost connections redial with exponential
// backoff; messages queued while a peer is unreachable are bounded by the
// send queue and dropped beyond it, exactly like datagrams.
//
// A process hosts any subset of a deployment's nodes: Register declares a
// node local, and the address book maps every other node to its process's
// listen address.
type TCP struct {
	// Latency, if set, injects a one-way delay before a message is handed
	// to a local mailbox or the outgoing queue (emulating a geo-distributed
	// deployment over loopback). It must be set before the first Send.
	Latency func(from, to types.NodeID) time.Duration
	// Auth, if set, appends an authentication tag to every outgoing frame
	// and verifies the tag of every inbound one against the sender identity
	// the frame claims, closing the connection on a mismatch (counted as an
	// AuthReject drop). Without it the wire `from` field is trusted — fine
	// on a closed loopback bench, spoofable on a shared network. It must be
	// set before the first Send, and every process of a deployment must
	// agree on it (authenticated and plaintext framings do not interoperate).
	Auth FrameAuth
	// Logf, if set, receives diagnostic messages (dropped frames, decode
	// failures, reconnects). Optional.
	Logf func(format string, args ...any)

	addr func(types.NodeID) string
	ln   net.Listener

	mu      sync.RWMutex
	boxes   map[types.NodeID]*mailbox
	peers   map[string]*peerConn
	inbound map[net.Conn]struct{}
	closed  bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup // accept loop, readers, peer writers
	timers sync.WaitGroup // latency-injection timers
	drops  metrics.Drops
}

const (
	// maxFrame bounds one wire frame; larger frames poison the connection
	// (it is dropped and redialed).
	maxFrame = 64 << 20
	// sendQueueDepth bounds the per-peer outgoing queue.
	sendQueueDepth = 4096
	// maxQueuedBytes bounds the total bytes of frames parked in one peer's
	// outgoing queue. The queue depth alone bounds only the frame count:
	// against a permanently dead peer, 4096 queued catch-up responses could
	// pin gigabytes of pooled encoder memory while the dialer backs off
	// forever. Beyond this budget frames are dropped (counted) like any
	// other send-queue overflow.
	maxQueuedBytes = 32 << 20
	// maxRetainedRead bounds the reusable per-connection read buffer; the
	// encode side caps pooled buffers the same way (types.Release).
	maxRetainedRead = 1 << 20
	dialTimeout     = 3 * time.Second
	writeTimeout    = 10 * time.Second
	backoffFloor    = 50 * time.Millisecond
	backoffCeil     = 2 * time.Second
)

// NewTCP starts a TCP transport listening on listenAddr (host:port; use
// ":0" for an ephemeral port and Addr to read it back). addr is the address
// book: it returns the listen address of the process hosting a node, or ""
// for unknown nodes (sends to them are dropped).
func NewTCP(listenAddr string, addr func(types.NodeID) string) (*TCP, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t := &TCP{
		addr:    addr,
		ln:      ln,
		boxes:   make(map[types.NodeID]*mailbox),
		peers:   make(map[string]*peerConn),
		inbound: make(map[net.Conn]struct{}),
		ctx:     ctx,
		cancel:  cancel,
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's bound listen address.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

func (t *TCP) logf(format string, args ...any) {
	if t.Logf != nil {
		t.Logf(format, args...)
	}
}

// Register implements Transport: it declares id local to this process.
func (t *TCP) Register(id types.NodeID) <-chan Envelope {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.boxes[id]; dup {
		panic("transport: duplicate registration")
	}
	box := newMailbox(&t.drops)
	t.boxes[id] = box
	return box.ch
}

// Unregister implements Transport.
func (t *TCP) Unregister(id types.NodeID) {
	t.mu.Lock()
	box := t.boxes[id]
	delete(t.boxes, id)
	t.mu.Unlock()
	if box != nil {
		box.close()
	}
}

// Stats implements Transport.
func (t *TCP) Stats() metrics.DropStats { return t.drops.Snapshot() }

// Send implements Transport. Local destinations are delivered directly;
// remote ones are framed with the wire codec and queued on the connection
// to their hosting process.
func (t *TCP) Send(from, to types.NodeID, msg types.Message) {
	lat := time.Duration(0)
	if t.Latency != nil {
		lat = t.Latency(from, to)
	}
	t.mu.RLock()
	if t.closed {
		t.mu.RUnlock()
		return
	}
	box := t.boxes[to]
	if lat > 0 {
		// Add while holding the lock that guards closed: Close sets closed
		// under the write lock before calling timers.Wait, so the Add is
		// always ordered before the Wait (racing them panics).
		t.timers.Add(1)
	}
	t.mu.RUnlock()
	if box != nil {
		if lat <= 0 {
			box.put(Envelope{From: from, Msg: msg})
			return
		}
		time.AfterFunc(lat, func() {
			defer t.timers.Done()
			box.put(Envelope{From: from, Msg: msg})
		})
		return
	}
	dest := t.addr(to)
	if dest == "" {
		if lat > 0 {
			t.timers.Done()
		}
		t.drops.NoRoute.Add(1)
		return // unknown node: drop, as Mem does
	}
	frame, err := t.encodeFrame(from, to, msg)
	if err != nil {
		if lat > 0 {
			t.timers.Done()
		}
		t.drops.Encode.Add(1)
		t.logf("transport: dropping %s to %v: %v", msg.MsgType(), to, err)
		return
	}
	if lat <= 0 {
		if peer := t.peerFor(dest); peer != nil {
			peer.enqueue(frame)
		} else {
			frame.Release()
		}
		return
	}
	time.AfterFunc(lat, func() {
		defer t.timers.Done()
		// peerFor re-checks closed, so a timer firing during shutdown is a
		// clean drop.
		if peer := t.peerFor(dest); peer != nil {
			peer.enqueue(frame)
		} else {
			frame.Release()
		}
	})
}

// encodeFrame builds one wire frame: 4-byte big-endian payload length, then
// the payload — sender, destination and the tagged message body, followed by
// the authentication tag over those payload bytes when the transport is
// authenticated. The frame lives in a pooled encoder that travels the send
// queue; whoever consumes the frame (writer loop, or the drop paths)
// releases it back to the pool, so steady-state sending allocates nothing.
func (t *TCP) encodeFrame(from, to types.NodeID, msg types.Message) (*types.Encoder, error) {
	enc := types.GetEncoder()
	enc.U32(0) // length, patched below
	enc.I32(int32(from))
	enc.I32(int32(to))
	if err := types.AppendMessage(enc, msg); err != nil {
		enc.Release()
		return nil, err
	}
	if t.Auth != nil {
		// The tag covers everything after the length prefix — including the
		// claimed (from, to) pair, which also selects the MAC key, so a frame
		// rewritten to claim another sender cannot verify.
		enc.Raw(t.Auth.Tag(from, to, enc.Bytes()[4:]))
	}
	frame := enc.Bytes()
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	return enc, nil
}

// peerFor returns (creating on first use) the outgoing connection to a
// remote process.
func (t *TCP) peerFor(dest string) *peerConn {
	t.mu.RLock()
	p := t.peers[dest]
	t.mu.RUnlock()
	if p != nil {
		return p
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	if p = t.peers[dest]; p != nil {
		return p
	}
	p = &peerConn{t: t, dest: dest, queue: make(chan *types.Encoder, sendQueueDepth)}
	t.peers[dest] = p
	t.wg.Add(1)
	go p.run()
	return p
}

// Close implements Transport.
func (t *TCP) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	boxes := t.boxes
	t.boxes = map[types.NodeID]*mailbox{}
	peers := make([]*peerConn, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	conns := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		conns = append(conns, c)
	}
	t.mu.Unlock()

	t.cancel()   // aborts in-flight dials and writer loops
	t.ln.Close() // stops the accept loop
	for _, c := range conns {
		c.Close() // unblocks readers
	}
	for _, p := range peers {
		p.closeConn() // unblocks a writer stuck mid-write
	}
	t.timers.Wait()
	t.wg.Wait()
	for _, box := range boxes {
		box.close()
	}
}

// acceptLoop accepts inbound connections and spawns a reader per peer. It
// only exits on Close: transient Accept errors (e.g. EMFILE) are retried,
// since giving up would leave the process permanently deaf while peers'
// dials still land in the kernel backlog.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.ctx.Done():
				return
			case <-time.After(10 * time.Millisecond):
			}
			t.logf("transport: accept: %v (retrying)", err)
			continue
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.readLoop(conn)
	}
}

// readLoop reads frames off one inbound connection and routes them to local
// mailboxes. A malformed or oversized frame poisons the connection: it is
// closed and the peer redials.
func (t *TCP) readLoop(conn net.Conn) {
	defer func() {
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
		conn.Close()
		t.wg.Done()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	var lenBuf [4]byte
	// One payload buffer per connection, grown on demand and reused across
	// frames: deliver's decoder copies every byte a message retains, so the
	// buffer is free again as soon as deliver returns.
	var payload []byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		minLen := uint32(8)
		if t.Auth != nil {
			minLen += uint32(t.Auth.TagSize())
		}
		if n < minLen || n > maxFrame {
			t.drops.Decode.Add(1)
			t.logf("transport: poisoned frame length %d from %s", n, conn.RemoteAddr())
			return
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return
		}
		if !t.deliver(payload, conn) {
			return // authentication failure poisons the connection
		}
		if cap(payload) > maxRetainedRead {
			// An oversized frame (catch-up reply, view-change) grew the
			// buffer; do not pin that memory for the connection's lifetime.
			payload = nil
		}
	}
}

// deliver decodes one frame payload and hands it to the destination's
// mailbox. Unknown destinations and undecodable messages are dropped. With
// frame authentication enabled the tag is verified against the claimed
// (from, to) pair before the message body is even parsed; a mismatch — a
// connection trying to speak as a node whose pair keys it does not hold —
// is counted as an AuthReject drop and reported by returning false, which
// makes the caller close the connection (an honest peer never sends an
// unauthenticated frame, so nothing legitimate is lost).
func (t *TCP) deliver(payload []byte, conn net.Conn) bool {
	body := payload
	if t.Auth != nil {
		split := len(payload) - t.Auth.TagSize() // readLoop guaranteed ≥ 8
		body = payload[:split]
		from := types.NodeID(int32(binary.BigEndian.Uint32(body[0:4])))
		to := types.NodeID(int32(binary.BigEndian.Uint32(body[4:8])))
		if !t.Auth.Verify(from, to, body, payload[split:]) {
			t.drops.AuthReject.Add(1)
			t.logf("transport: rejecting frame with unauthenticated sender %v from %s", from, conn.RemoteAddr())
			return false
		}
	}
	dec := types.NewDecoder(body)
	from := types.NodeID(dec.I32())
	to := types.NodeID(dec.I32())
	msg, err := types.DecodeMessageFrom(dec)
	if err != nil || dec.Remaining() != 0 {
		t.drops.Decode.Add(1)
		t.logf("transport: dropping undecodable frame from %s: %v", conn.RemoteAddr(), err)
		return true
	}
	t.mu.RLock()
	box := t.boxes[to]
	t.mu.RUnlock()
	if box != nil {
		box.put(Envelope{From: from, Msg: msg})
	}
	return true
}

// peerConn is the outgoing connection to one remote process: a bounded
// frame queue drained by a writer goroutine that dials on demand and
// reconnects with exponential backoff. The queue is bounded twice — by
// frame count (sendQueueDepth) and by total bytes (maxQueuedBytes) — so a
// permanently dead peer pins a bounded amount of pooled encoder memory
// while the dialer backs off, no matter how large the frames are.
type peerConn struct {
	t      *TCP
	dest   string
	queue  chan *types.Encoder
	queued atomic.Int64 // bytes held by frames currently in queue

	mu   sync.Mutex
	conn net.Conn
}

// enqueue queues one frame without blocking; a queue full by count or by
// bytes drops it (counted) and recycles its buffer.
func (p *peerConn) enqueue(frame *types.Encoder) {
	size := int64(frame.Len())
	if p.queued.Add(size) > maxQueuedBytes {
		p.queued.Add(-size)
		frame.Release()
		p.t.drops.SendQueue.Add(1)
		p.t.logf("transport: send queue to %s over byte budget, dropping frame", p.dest)
		return
	}
	select {
	case p.queue <- frame:
	default:
		p.queued.Add(-size)
		frame.Release()
		p.t.drops.SendQueue.Add(1)
		p.t.logf("transport: send queue to %s full, dropping frame", p.dest)
	}
}

// take releases one frame's bytes from the queue budget as it leaves the
// queue.
func (p *peerConn) take(frame *types.Encoder) {
	p.queued.Add(-int64(frame.Len()))
}

func (p *peerConn) setConn(c net.Conn) {
	p.mu.Lock()
	p.conn = c
	p.mu.Unlock()
}

// closeConn closes the active connection (used by Close to unblock the
// writer).
func (p *peerConn) closeConn() {
	p.mu.Lock()
	if p.conn != nil {
		p.conn.Close()
	}
	p.mu.Unlock()
}

// run dials and drains the queue until the transport closes.
func (p *peerConn) run() {
	defer p.t.wg.Done()
	backoff := backoffFloor
	dialer := net.Dialer{Timeout: dialTimeout}
	for {
		select {
		case <-p.t.ctx.Done():
			return
		default:
		}
		conn, err := dialer.DialContext(p.t.ctx, "tcp", p.dest)
		if err != nil {
			select {
			case <-p.t.ctx.Done():
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > backoffCeil {
				backoff = backoffCeil
			}
			continue
		}
		backoff = backoffFloor
		p.setConn(conn)
		p.writeLoop(conn)
		p.setConn(nil)
		conn.Close()
	}
}

// writeLoop drains frames into conn until it fails or the transport closes.
// Frames are coalesced: after the blocking receive, the loop greedily drains
// whatever else is queued into a buffered writer and flushes only when the
// queue runs empty, so a burst of broadcasts costs one syscall instead of one
// per frame.
func (p *peerConn) writeLoop(conn net.Conn) {
	bw := bufio.NewWriterSize(conn, 64<<10)
	for {
		select {
		case frame := <-p.queue:
			p.take(frame)
			conn.SetWriteDeadline(time.Now().Add(writeTimeout))
			_, err := bw.Write(frame.Bytes())
			frame.Release()
		coalesce:
			for err == nil {
				select {
				case next := <-p.queue:
					p.take(next)
					// Re-arm the deadline per frame: under sustained load
					// this loop runs indefinitely, and a deadline fixed at
					// batch start would time out a healthy connection.
					conn.SetWriteDeadline(time.Now().Add(writeTimeout))
					_, err = bw.Write(next.Bytes())
					next.Release()
				default:
					break coalesce
				}
			}
			if err == nil {
				err = bw.Flush()
			}
			if err != nil {
				p.t.logf("transport: write to %s: %v (reconnecting)", p.dest, err)
				return
			}
		case <-p.t.ctx.Done():
			return
		}
	}
}
