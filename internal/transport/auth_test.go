package transport

import (
	"encoding/binary"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"resilientdb/internal/crypto"
	"resilientdb/internal/pbft"
	"resilientdb/internal/types"
)

// newAuthedTCPPair is newTCPPair with frame authentication installed on both
// ends (as resilientdb.Open does for every multi-process deployment).
func newAuthedTCPPair(t *testing.T) (a, b *TCP) {
	t.Helper()
	a, b, _ = newTCPPair(t)
	a.Auth = crypto.NewFrameMAC(crypto.Real)
	b.Auth = crypto.NewFrameMAC(crypto.Real)
	return a, b
}

// TestTCPAuthenticatedDelivery checks that MAC-authenticated framing is
// transparent to honest peers: a real protocol message still arrives decoded
// and intact, with no drops counted.
func TestTCPAuthenticatedDelivery(t *testing.T) {
	a, b := newAuthedTCPPair(t)
	defer a.Close()
	defer b.Close()
	a.Register(1)
	box := b.Register(2)

	want := &pbft.Prepare{View: 3, Seq: 9, Digest: types.Hash([]byte("d")), Replica: 1, Sig: []byte{1, 2, 3}}
	a.Send(1, 2, want)
	select {
	case env := <-box:
		got, ok := env.Msg.(*pbft.Prepare)
		if !ok {
			t.Fatalf("got %T", env.Msg)
		}
		if env.From != 1 || got.View != 3 || got.Seq != 9 || got.Digest != want.Digest {
			t.Errorf("message mangled in transit: %+v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery across authenticated TCP")
	}
	if drops := b.Stats(); drops.AuthReject != 0 || drops.Decode != 0 {
		t.Errorf("honest traffic counted as drops: %+v", drops)
	}
}

// rawFrame encodes one wire frame by hand — the attacker's view of the
// framing: length prefix, claimed sender, destination, message body, and
// whatever tag bytes the caller supplies (nil for an unauthenticated frame).
func rawFrame(t *testing.T, from, to types.NodeID, m types.Message, tag []byte) []byte {
	t.Helper()
	enc := types.NewEncoder(256)
	enc.U32(0)
	enc.I32(int32(from))
	enc.I32(int32(to))
	if err := types.AppendMessage(enc, m); err != nil {
		t.Fatal(err)
	}
	enc.Raw(tag)
	frame := enc.Bytes()
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	return frame
}

// TestTCPSpoofedIdentityRejected is the regression test for the
// spoofable-`from` bug: before frame authentication, deliver trusted the
// wire header, so any connected socket could claim any replica's NodeID. A
// socket that impersonates replica 1 without holding the (1, 2) pair key
// must have its frame rejected (counted as an AuthReject drop, never
// delivered) and its connection closed.
func TestTCPSpoofedIdentityRejected(t *testing.T) {
	_, b := newAuthedTCPPair(t)
	defer b.Close()
	box := b.Register(2)

	conn, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// A forged tag (the attacker does not hold replica 1's pair keys).
	badTag := make([]byte, crypto.FrameTagSize)
	frame := rawFrame(t, 1, 2, &pbft.CatchupRequest{FromSeq: 5}, badTag)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}

	// The connection must be closed by the receiver (poisoned), and the
	// frame must never reach the mailbox.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("spoofing connection still open (read err %v, want EOF)", err)
	}
	select {
	case env := <-box:
		t.Fatalf("spoofed frame delivered: %+v", env)
	default:
	}
	if drops := b.Stats(); drops.AuthReject != 1 {
		t.Errorf("AuthReject = %d, want 1 (spoofed frame must be counted)", drops.AuthReject)
	}

	// An unauthenticated frame (no tag at all) fails too: the length check
	// or the tag verification rejects it, nothing is delivered.
	conn2, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write(rawFrame(t, 1, 2, &pbft.CatchupRequest{FromSeq: 6}, nil)); err != nil {
		t.Fatal(err)
	}
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn2.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("tagless connection still open (read err %v, want EOF)", err)
	}
	select {
	case env := <-box:
		t.Fatalf("tagless frame delivered: %+v", env)
	default:
	}
	if total := b.Stats().Total(); total < 2 {
		t.Errorf("drop total = %d, want ≥ 2 (every forged frame counted)", total)
	}
}

// TestTCPAuthRejectsTamperedSender checks the bound between claimed sender
// and tag: a frame correctly MAC'd for (3, 2) but rewritten in flight to
// claim sender 1 must fail verification, because the claimed pair selects
// the key the tag is checked under.
func TestTCPAuthRejectsTamperedSender(t *testing.T) {
	_, b := newAuthedTCPPair(t)
	defer b.Close()
	box := b.Register(2)

	mac := crypto.NewFrameMAC(crypto.Real)
	frame := rawFrame(t, 3, 2, &pbft.CatchupRequest{FromSeq: 7}, nil)
	tag := mac.Tag(3, 2, frame[4:])
	frame = append(frame, tag...)
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	// Rewrite the claimed sender to replica 1, keeping the valid (3, 2) tag.
	binary.BigEndian.PutUint32(frame[4:8], uint32(1))

	conn, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("tampered-sender connection still open (read err %v, want EOF)", err)
	}
	select {
	case env := <-box:
		t.Fatalf("tampered-sender frame delivered: %+v", env)
	default:
	}
	if drops := b.Stats(); drops.AuthReject == 0 {
		t.Error("tampered sender not counted as AuthReject")
	}
}

// TestTCPDeadPeerQueueBounded pins the dial-on-demand backoff audit: frames
// queued against a permanently dead peer must stay bounded in bytes (not
// just in count — large frames would otherwise pin sendQueueDepth × frame
// size of pooled memory), and every dropped frame must be counted, not
// silently discarded.
func TestTCPDeadPeerQueueBounded(t *testing.T) {
	// Reserve an address, then kill it: every dial is refused and the peer
	// writer backs off forever.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	var addrs sync.Map
	addrs.Store(types.NodeID(2), dead)
	book := func(id types.NodeID) string {
		if v, ok := addrs.Load(id); ok {
			return v.(string)
		}
		return ""
	}
	a, err := NewTCP("127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Register(1)

	// ~1 MiB per frame: the byte budget (32 MiB) trips long before the
	// 4096-frame count bound would.
	sig := make([]byte, 1<<20)
	msg := &pbft.Prepare{View: 1, Seq: 1, Replica: 1, Sig: sig}
	const sends = 64
	for i := 0; i < sends; i++ {
		a.Send(1, 2, msg)
	}

	a.mu.RLock()
	peer := a.peers[dead]
	a.mu.RUnlock()
	if peer == nil {
		t.Fatal("no peer connection created for dead destination")
	}
	queued := peer.queued.Load()
	if queued > maxQueuedBytes {
		t.Errorf("queued bytes %d exceed budget %d", queued, maxQueuedBytes)
	}
	if queued == 0 {
		t.Error("nothing queued: the bound rejected everything")
	}
	drops := a.Stats().SendQueue
	if drops == 0 {
		t.Errorf("no drops counted after %d×1MiB sends against a %d-byte budget", sends, maxQueuedBytes)
	}
	// Accounting closes: every frame either sits in the queue or was counted.
	if int(drops) > sends {
		t.Errorf("counted %d drops for %d sends", drops, sends)
	}
}
