// Package snapshot implements checkpoint snapshots of the executed kvstore
// state: the bounded-history mechanism that lets the fabric garbage-collect
// old ledger segments and lets a fresh or far-behind replica bootstrap from a
// verified state snapshot plus a short block suffix instead of replaying the
// whole chain (the state-transfer design of PBFT §4.3, applied to GeoBFT's
// z-blocks-per-round ledger).
//
// A snapshot is a Manifest plus the serialized kvstore state it describes.
// The manifest is content-addressed end to end: the state is hashed whole
// (StateHash) and per chunk (Chunks), the chain linkage is pinned by the tip
// block's recomputable hash, and the checkpoint round's commit certificate is
// embedded so any replica can verify the snapshot reflects a committed
// prefix without trusting the server. Manifests are signed by the serving
// replica; a joining node additionally requires f+1 replicas to vouch for
// the same manifest key (Key) before fetching state, so at least one honest
// replica stands behind every installed snapshot.
//
// The manifest travels through the internal/types wire registry, and the
// Archive persists exactly those wire bytes, so network and disk encodings
// are identical and one fuzzer (FuzzSnapshotManifest) covers both.
package snapshot

import (
	"fmt"

	"resilientdb/internal/config"
	"resilientdb/internal/crypto"
	"resilientdb/internal/ledger"
	"resilientdb/internal/pbft"
	"resilientdb/internal/types"
)

// DefaultChunkSize is the state-transfer chunk size when the builder does not
// choose one: small enough to interleave with consensus traffic, large enough
// that a manifest's chunk table stays tiny.
const DefaultChunkSize = 64 << 10

// MaxStateBytes bounds the serialized state a manifest may describe (and
// therefore what a decoder will ever allocate while assembling one): 1 GiB,
// far above any deployment this repository runs, low enough to stop a forged
// manifest from driving pathological allocations.
const MaxStateBytes = 1 << 30

// Manifest describes one checkpoint snapshot. All fields participate in Key
// except Replica and Sig, which bind a particular server's endorsement.
type Manifest struct {
	// Round is the checkpoint round: the snapshot captures the state after
	// executing every block of rounds 1…Round.
	Round uint64
	// Height is the chain height at the checkpoint: Round·z for z clusters.
	Height uint64
	// TipPrev is the Prev hash of the checkpoint's tip block (height Height),
	// carried so TipHash can be recomputed rather than trusted.
	TipPrev types.Digest
	// StateHash is the hash of the whole serialized kvstore state.
	StateHash types.Digest
	// StateLen is the serialized state's length in bytes.
	StateLen uint64
	// ChunkSize is the transfer chunk size; every chunk but the last is
	// exactly this long.
	ChunkSize uint32
	// Chunks holds the hash of each state chunk, in order — the content
	// addresses a joining node verifies transfers against.
	Chunks []types.Digest
	// Hist holds each cluster's pbft commit-history digest folded through
	// round Round (index = cluster), so an installing replica can seed its
	// consensus engines exactly as if it had executed the prefix.
	Hist []types.Digest
	// Cert is the commit certificate of the tip block (the last cluster's
	// batch at Round): the consensus proof behind the checkpoint.
	Cert *pbft.Certificate
	// Replica identifies the replica endorsing (serving) this manifest.
	Replica types.NodeID
	// Sig is Replica's signature over SigPayload.
	Sig []byte
}

// MsgType implements types.Message.
func (*Manifest) MsgType() string { return "snapshot/manifest" }

// WireSize implements types.Message.
func (m *Manifest) WireSize() int {
	n := 8 + 8 + 32 + 32 + 8 + 4 + 32*len(m.Chunks) + 32*len(m.Hist) + len(m.Sig) + 8
	if m.Cert != nil {
		n += m.Cert.WireSize()
	}
	return n
}

// Key returns the digest identifying the snapshot's content: every field
// except the per-server endorsement (Replica, Sig) and the commit
// certificate. Replicas that executed the same prefix produce identical keys,
// which is what lets a joining node demand f+1 matching endorsements before
// trusting a snapshot. The certificate is deliberately excluded: any n−f of
// the commit signatures prove the same decision, so the signer subsets — and
// hence the certificate digests — legitimately differ between replicas that
// agree on everything the key covers. Its claims are still pinned: Hist folds
// every cluster's batch digests (including the tip batch the certificate
// binds), and Verify checks the certificate independently.
func (m *Manifest) Key() types.Digest {
	enc := types.NewEncoder(256 + 32*(len(m.Chunks)+len(m.Hist)))
	enc.String("snapshot/KEY")
	enc.U64(m.Round)
	enc.U64(m.Height)
	enc.Digest(m.TipPrev)
	enc.Digest(m.StateHash)
	enc.U64(m.StateLen)
	enc.U32(m.ChunkSize)
	enc.U32(uint32(len(m.Chunks)))
	for _, d := range m.Chunks {
		enc.Digest(d)
	}
	enc.U32(uint32(len(m.Hist)))
	for _, d := range m.Hist {
		enc.Digest(d)
	}
	return types.Hash(enc.Bytes())
}

// SigPayload is the byte string a replica signs to endorse a manifest.
func SigPayload(m *Manifest) []byte {
	enc := types.NewEncoder(64)
	enc.String("snapshot/SIG")
	enc.Digest(m.Key())
	enc.I32(int32(m.Replica))
	return enc.Bytes()
}

// Tip reconstructs the checkpoint's tip block from the manifest: height
// Height, round Round, the last cluster of the topology, the certificate's
// batch, sealed against TipPrev. Its Hash is the anchor a suffix must extend;
// recomputing it (rather than shipping it) means a forged manifest cannot
// claim linkage it does not have.
func (m *Manifest) Tip(clusters int) *ledger.Block {
	b := &ledger.Block{
		Height:      m.Height,
		Round:       m.Round,
		Cluster:     types.ClusterID(clusters - 1),
		Batch:       m.Cert.Batch,
		BatchDigest: m.Cert.Batch.Digest(),
		CertDigest:  m.Cert.CertDigest(),
		Cert:        m.Cert,
	}
	b.Seal(m.TipPrev)
	return b
}

// Verify checks everything about a manifest that does not require the state
// bytes: structural sanity, the chunk table against StateLen, the embedded
// commit certificate against the tip cluster's membership, and the serving
// replica's endorsement signature. It is the gate every received (or
// archive-loaded) manifest passes before any state transfer begins.
func (m *Manifest) Verify(topo config.Topology, suite *crypto.Suite) error {
	z := uint64(topo.Clusters)
	if m.Round < 1 || m.Height != m.Round*z {
		return fmt.Errorf("snapshot: manifest height %d does not close round %d over %d clusters", m.Height, m.Round, z)
	}
	if m.StateLen == 0 || m.StateLen > MaxStateBytes {
		return fmt.Errorf("snapshot: manifest state length %d out of range", m.StateLen)
	}
	if m.ChunkSize < 1 {
		return fmt.Errorf("snapshot: manifest chunk size zero")
	}
	if want := chunkCount(m.StateLen, m.ChunkSize); len(m.Chunks) != want {
		return fmt.Errorf("snapshot: manifest carries %d chunks, state length needs %d", len(m.Chunks), want)
	}
	if len(m.Hist) != topo.Clusters {
		return fmt.Errorf("snapshot: manifest carries %d history digests for %d clusters", len(m.Hist), topo.Clusters)
	}
	if m.Cert == nil {
		return fmt.Errorf("snapshot: manifest carries no commit certificate")
	}
	if m.Cert.Seq != m.Round {
		return fmt.Errorf("snapshot: certificate seq %d does not match round %d", m.Cert.Seq, m.Round)
	}
	tip := topo.Clusters - 1
	if !m.Cert.Verify(suite, topo.ClusterMembers(tip), topo.PerCluster-topo.F()) {
		return fmt.Errorf("snapshot: commit certificate fails verification against cluster %d", tip)
	}
	if int(m.Replica) < 0 || int(m.Replica) >= topo.TotalReplicas() {
		return fmt.Errorf("snapshot: manifest endorsed by unknown replica %d", m.Replica)
	}
	if !suite.Verify(m.Replica, SigPayload(m), m.Sig) {
		return fmt.Errorf("snapshot: manifest signature by replica %d invalid", m.Replica)
	}
	return nil
}

// VerifyChunk checks one transferred state chunk against the manifest's
// content addressing: index range, exact length, and chunk hash.
func (m *Manifest) VerifyChunk(idx int, data []byte) error {
	if idx < 0 || idx >= len(m.Chunks) {
		return fmt.Errorf("snapshot: chunk index %d out of range (%d chunks)", idx, len(m.Chunks))
	}
	want := int(m.ChunkSize)
	if idx == len(m.Chunks)-1 {
		want = int(m.StateLen) - idx*int(m.ChunkSize)
	}
	if len(data) != want {
		return fmt.Errorf("snapshot: chunk %d is %d bytes, want %d", idx, len(data), want)
	}
	if types.Hash(data) != m.Chunks[idx] {
		return fmt.Errorf("snapshot: chunk %d content hash mismatch", idx)
	}
	return nil
}

// VerifyState checks a fully assembled state blob against the manifest.
func (m *Manifest) VerifyState(state []byte) error {
	if uint64(len(state)) != m.StateLen {
		return fmt.Errorf("snapshot: state is %d bytes, manifest says %d", len(state), m.StateLen)
	}
	if types.Hash(state) != m.StateHash {
		return fmt.Errorf("snapshot: state hash mismatch")
	}
	return nil
}

// chunkCount returns how many chunks a state of stateLen bytes splits into.
func chunkCount(stateLen uint64, chunkSize uint32) int {
	return int((stateLen + uint64(chunkSize) - 1) / uint64(chunkSize))
}

// Chunk returns the idx-th chunk of state under the manifest's chunking.
func (m *Manifest) Chunk(state []byte, idx int) []byte {
	lo := idx * int(m.ChunkSize)
	hi := lo + int(m.ChunkSize)
	if hi > len(state) {
		hi = len(state)
	}
	return state[lo:hi]
}

// Build assembles an unsigned manifest for the checkpoint at round over the
// given serialized state. tipPrev and cert come from the tip block at height
// round·clusters; hist carries each cluster's commit-history digest through
// the round. Sign completes it.
func Build(round uint64, clusters int, tipPrev types.Digest, cert *pbft.Certificate, hist []types.Digest, state []byte) *Manifest {
	m := &Manifest{
		Round:     round,
		Height:    round * uint64(clusters),
		TipPrev:   tipPrev,
		StateHash: types.Hash(state),
		StateLen:  uint64(len(state)),
		ChunkSize: DefaultChunkSize,
		Hist:      append([]types.Digest(nil), hist...),
		Cert:      cert,
	}
	for i := 0; i < chunkCount(m.StateLen, m.ChunkSize); i++ {
		m.Chunks = append(m.Chunks, types.Hash(m.Chunk(state, i)))
	}
	return m
}

// Sign endorses the manifest as the suite's replica.
func (m *Manifest) Sign(suite *crypto.Suite) {
	m.Replica = suite.ID()
	m.Sig = suite.Sign(SigPayload(m))
}
