package snapshot

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Archive is a replica's on-disk snapshot store: one manifest file plus one
// state file per retained checkpoint round, in a flat directory next to the
// ledger segments. Writes are atomic (temp file + rename, state before
// manifest, both fsynced) so a crash mid-write never leaves a manifest
// without its state; older checkpoints beyond the retention count are pruned
// on every Put. Manifest files hold the wire encoding (Manifest.Encode), so
// the archive can be served over snapshot-resp byte for byte.
type Archive struct {
	mu     sync.Mutex
	dir    string
	retain int
	rounds []uint64 // retained checkpoint rounds, ascending
}

// manifestFile and stateFile name the two files of one checkpoint round.
func manifestFile(round uint64) string { return fmt.Sprintf("snap-%016x.man", round) }
func stateFile(round uint64) string    { return fmt.Sprintf("snap-%016x.state", round) }

// OpenArchive opens (creating if needed) the snapshot archive in dir,
// retaining at most retain checkpoints (minimum 1). Manifest files that fail
// to decode or lack their state file are ignored — a torn write from a crash
// loses at most that one checkpoint.
func OpenArchive(dir string, retain int) (*Archive, error) {
	if retain < 1 {
		retain = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: archive: %w", err)
	}
	a := &Archive{dir: dir, retain: retain}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: archive: %w", err)
	}
	for _, e := range entries {
		var round uint64
		if _, err := fmt.Sscanf(e.Name(), "snap-%016x.man", &round); err != nil {
			continue
		}
		m, err := a.loadManifest(round)
		if err != nil || m.Round != round {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, stateFile(round))); err != nil {
			continue
		}
		a.rounds = append(a.rounds, round)
	}
	sort.Slice(a.rounds, func(i, j int) bool { return a.rounds[i] < a.rounds[j] })
	return a, nil
}

// loadManifest reads and decodes one manifest file.
func (a *Archive) loadManifest(round uint64) (*Manifest, error) {
	buf, err := os.ReadFile(filepath.Join(a.dir, manifestFile(round)))
	if err != nil {
		return nil, err
	}
	return Decode(buf)
}

// Put persists one checkpoint atomically and prunes rounds beyond the
// retention count. The manifest must describe state (callers build both
// together); Put re-checks the binding so a bug cannot persist a mismatched
// pair.
func (a *Archive) Put(m *Manifest, state []byte) error {
	if err := m.VerifyState(state); err != nil {
		return err
	}
	buf, err := m.Encode()
	if err != nil {
		return fmt.Errorf("snapshot: archive: encode manifest: %w", err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.writeFile(stateFile(m.Round), state); err != nil {
		return err
	}
	if err := a.writeFile(manifestFile(m.Round), buf); err != nil {
		return err
	}
	i := sort.Search(len(a.rounds), func(i int) bool { return a.rounds[i] >= m.Round })
	if i == len(a.rounds) || a.rounds[i] != m.Round {
		a.rounds = append(a.rounds, 0)
		copy(a.rounds[i+1:], a.rounds[i:])
		a.rounds[i] = m.Round
	}
	for len(a.rounds) > a.retain {
		old := a.rounds[0]
		a.rounds = a.rounds[1:]
		os.Remove(filepath.Join(a.dir, manifestFile(old)))
		os.Remove(filepath.Join(a.dir, stateFile(old)))
	}
	return a.syncDir()
}

// writeFile writes data to name atomically: temp file, fsync, rename.
func (a *Archive) writeFile(name string, data []byte) error {
	tmp, err := os.CreateTemp(a.dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("snapshot: archive: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: archive: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: archive: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: archive: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(a.dir, name)); err != nil {
		return fmt.Errorf("snapshot: archive: %w", err)
	}
	return nil
}

// syncDir makes renames durable.
func (a *Archive) syncDir() error {
	d, err := os.Open(a.dir)
	if err != nil {
		return fmt.Errorf("snapshot: archive: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("snapshot: archive: %w", err)
	}
	return nil
}

// LatestRound returns the newest retained checkpoint round (0: none).
func (a *Archive) LatestRound() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.rounds) == 0 {
		return 0
	}
	return a.rounds[len(a.rounds)-1]
}

// Manifest returns the manifest for round; round 0 selects the newest. It
// returns nil when the round is not retained or its file no longer decodes.
func (a *Archive) Manifest(round uint64) *Manifest {
	a.mu.Lock()
	defer a.mu.Unlock()
	if round == 0 {
		if len(a.rounds) == 0 {
			return nil
		}
		round = a.rounds[len(a.rounds)-1]
	}
	m, err := a.loadManifest(round)
	if err != nil || m.Round != round {
		return nil
	}
	return m
}

// State returns the serialized state of a retained round.
func (a *Archive) State(round uint64) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	buf, err := os.ReadFile(filepath.Join(a.dir, stateFile(round)))
	if err != nil {
		return nil, fmt.Errorf("snapshot: archive: %w", err)
	}
	return buf, nil
}

// ReadChunk returns the idx-th chunk of a retained round's state under the
// manifest's chunking, reading only that byte range from disk.
func (a *Archive) ReadChunk(m *Manifest, idx int) ([]byte, error) {
	if idx < 0 || idx >= len(m.Chunks) {
		return nil, fmt.Errorf("snapshot: archive: chunk %d out of range", idx)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	f, err := os.Open(filepath.Join(a.dir, stateFile(m.Round)))
	if err != nil {
		return nil, fmt.Errorf("snapshot: archive: %w", err)
	}
	defer f.Close()
	lo := int64(idx) * int64(m.ChunkSize)
	n := int(m.ChunkSize)
	if last := int(m.StateLen) - idx*int(m.ChunkSize); last < n {
		n = last
	}
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, lo); err != nil {
		return nil, fmt.Errorf("snapshot: archive: %w", err)
	}
	return buf, nil
}

// Rounds returns the retained checkpoint rounds, ascending.
func (a *Archive) Rounds() []uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]uint64(nil), a.rounds...)
}
