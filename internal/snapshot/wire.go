package snapshot

import (
	"resilientdb/internal/pbft"
	"resilientdb/internal/types"
)

// Wire codec for the snapshot manifest, registered with the message-type
// registry in internal/types. The Archive persists these exact bytes, so the
// disk format and the snapshot-resp wire format are one codec.

// EncodeBody implements types.WireMessage.
func (m *Manifest) EncodeBody(enc *types.Encoder) {
	enc.U64(m.Round)
	enc.U64(m.Height)
	enc.Digest(m.TipPrev)
	enc.Digest(m.StateHash)
	enc.U64(m.StateLen)
	enc.U32(m.ChunkSize)
	enc.U32(uint32(len(m.Chunks)))
	for _, d := range m.Chunks {
		enc.Digest(d)
	}
	enc.U32(uint32(len(m.Hist)))
	for _, d := range m.Hist {
		enc.Digest(d)
	}
	enc.Bool(m.Cert != nil)
	if m.Cert != nil {
		m.Cert.EncodeBody(enc)
	}
	enc.I32(int32(m.Replica))
	enc.BytesN(m.Sig)
}

// DecodeManifestBody reads a Manifest body written by EncodeBody. Malformed
// input surfaces through the decoder's error, never a panic; allocation is
// bounded by the decoder's remaining input.
func DecodeManifestBody(dec *types.Decoder) *Manifest {
	m := &Manifest{}
	m.Round = dec.U64()
	m.Height = dec.U64()
	m.TipPrev = dec.Digest()
	m.StateHash = dec.Digest()
	m.StateLen = dec.U64()
	m.ChunkSize = dec.U32()
	if n := dec.Count(32); n > 0 {
		m.Chunks = make([]types.Digest, 0, n)
		for i := 0; i < n && dec.Err() == nil; i++ {
			m.Chunks = append(m.Chunks, dec.Digest())
		}
	}
	if n := dec.Count(32); n > 0 {
		m.Hist = make([]types.Digest, 0, n)
		for i := 0; i < n && dec.Err() == nil; i++ {
			m.Hist = append(m.Hist, dec.Digest())
		}
	}
	if dec.Bool() {
		m.Cert = pbft.DecodeCertificateBody(dec)
	}
	m.Replica = types.NodeID(dec.I32())
	m.Sig = dec.BytesN()
	return m
}

// Encode returns the manifest's canonical framed wire bytes (type tag +
// body) — also the Archive's on-disk manifest format.
func (m *Manifest) Encode() ([]byte, error) { return types.EncodeMessage(m) }

// Decode parses framed manifest bytes produced by Encode, rejecting anything
// that is not exactly one well-formed manifest.
func Decode(buf []byte) (*Manifest, error) {
	msg, err := types.DecodeMessage(buf)
	if err != nil {
		return nil, err
	}
	m, ok := msg.(*Manifest)
	if !ok {
		return nil, types.ErrCodec
	}
	return m, nil
}

// SampleManifest builds a deterministic, structurally plausible manifest for
// the registry round-trip suite and the fuzz corpus.
func SampleManifest() *Manifest {
	batch := types.Batch{Client: types.ClientIDBase, Seq: 4, Txns: []types.Transaction{{Key: 9, Value: 4}}}
	batch.PrimeDigest()
	cert := &pbft.Certificate{
		View: 0, Seq: 4, Digest: batch.Digest(), Batch: batch,
		Signers: []types.NodeID{4, 5, 6},
		Sigs:    [][]byte{{1}, {2}, {3}},
	}
	state := make([]byte, 3*DefaultChunkSize/2)
	for i := range state {
		state[i] = byte(i)
	}
	m := Build(4, 2, types.Hash([]byte("tip-prev")), cert, []types.Digest{types.Hash([]byte("h0")), types.Hash([]byte("h1"))}, state)
	m.Replica = 6
	m.Sig = []byte("sample-endorsement")
	return m
}

func init() {
	types.RegisterMessage((*Manifest)(nil).MsgType(),
		func(dec *types.Decoder) types.Message { return DecodeManifestBody(dec) },
		func() []types.Message {
			return []types.Message{&Manifest{}, SampleManifest()}
		})
}
