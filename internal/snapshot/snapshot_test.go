package snapshot_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"resilientdb/internal/config"
	"resilientdb/internal/crypto"
	"resilientdb/internal/pbft"
	"resilientdb/internal/snapshot"
	"resilientdb/internal/types"
)

// fixture bundles a topology with real-signature suites for every replica,
// so manifests and certificates in these tests verify exactly as they do on
// a live deployment.
type fixture struct {
	topo   config.Topology
	suites map[types.NodeID]*crypto.Suite
}

func newFixture() *fixture {
	topo := config.NewTopology(2, 4)
	dir := crypto.NewDirectory(crypto.Real, topo.AllReplicas())
	f := &fixture{topo: topo, suites: map[types.NodeID]*crypto.Suite{}}
	for _, id := range topo.AllReplicas() {
		f.suites[id] = crypto.NewSuite(dir, id, crypto.FreeCosts(), nil)
	}
	return f
}

// state returns a deterministic pseudo-state of n bytes.
func testState(n int, seed byte) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(i)*31 + seed
	}
	return s
}

// cert builds a properly signed tip certificate for round, quorum-signed by
// the given members of the tip cluster.
func (f *fixture) cert(round uint64, signers []types.NodeID) *pbft.Certificate {
	tip := types.Batch{Client: types.ClientIDBase, Seq: round, NoOp: true}
	tip.PrimeDigest()
	c := &pbft.Certificate{
		View: 0, Seq: round, Digest: tip.Digest(), Batch: tip,
		Signers: append([]types.NodeID(nil), signers...),
	}
	payload := pbft.CommitPayload(0, round, c.Digest)
	for _, id := range c.Signers {
		c.Sigs = append(c.Sigs, f.suites[id].Sign(payload))
	}
	return c
}

// manifest builds and signs a fully verifiable manifest at round over state.
func (f *fixture) manifest(round uint64, state []byte, by types.NodeID) *snapshot.Manifest {
	members := f.topo.ClusterMembers(f.topo.Clusters - 1)
	quorum := f.topo.PerCluster - f.topo.F()
	hist := []types.Digest{types.Hash([]byte("h0")), types.Hash([]byte("h1"))}
	m := snapshot.Build(round, f.topo.Clusters,
		types.Hash([]byte(fmt.Sprintf("prev-%d", round))), f.cert(round, members[:quorum]), hist, state)
	m.Sign(f.suites[by])
	return m
}

func TestBuildVerifyRoundTrip(t *testing.T) {
	f := newFixture()
	state := testState(snapshot.DefaultChunkSize*2+300, 1) // 3 chunks, short tail
	m := f.manifest(6, state, f.topo.ReplicaID(0, 2))

	if err := m.Verify(f.topo, f.suites[0]); err != nil {
		t.Fatalf("built manifest fails verification: %v", err)
	}
	if err := m.VerifyState(state); err != nil {
		t.Fatalf("state fails its own manifest: %v", err)
	}
	if len(m.Chunks) != 3 {
		t.Fatalf("manifest split state into %d chunks, want 3", len(m.Chunks))
	}
	for i := range m.Chunks {
		if err := m.VerifyChunk(i, m.Chunk(state, i)); err != nil {
			t.Fatalf("chunk %d fails its own manifest: %v", i, err)
		}
	}
	// The tip reconstructs with the height/round the manifest claims and
	// seals against TipPrev — the anchor a fetched suffix must extend.
	tip := m.Tip(f.topo.Clusters)
	if tip.Height != m.Height || tip.Round != m.Round || tip.Prev != m.TipPrev {
		t.Fatalf("reconstructed tip %+v does not match the manifest", tip)
	}

	// Wire round-trip: decode of the canonical encoding verifies unchanged
	// and keeps the identity key (this is also the archive's disk format).
	buf, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := snapshot.Decode(buf)
	if err != nil {
		t.Fatalf("decode canonical encoding: %v", err)
	}
	if m2.Key() != m.Key() {
		t.Fatal("wire round-trip changed the manifest key")
	}
	if err := m2.Verify(f.topo, f.suites[0]); err != nil {
		t.Fatalf("decoded manifest fails verification: %v", err)
	}
}

// TestKeyAgreesAcrossEndorsers pins the quorum-matching property the joiner
// depends on: replicas that executed the same prefix produce the same Key
// even though each signs its own copy and their certificates carry different
// (equally valid) signer subsets — while any content difference changes it.
func TestKeyAgreesAcrossEndorsers(t *testing.T) {
	f := newFixture()
	state := testState(4096, 2)
	members := f.topo.ClusterMembers(f.topo.Clusters - 1)
	quorum := f.topo.PerCluster - f.topo.F()
	hist := []types.Digest{types.Hash([]byte("h0")), types.Hash([]byte("h1"))}
	prev := types.Hash([]byte("prev"))

	a := snapshot.Build(5, f.topo.Clusters, prev, f.cert(5, members[:quorum]), hist, state)
	a.Sign(f.suites[f.topo.ReplicaID(1, 0)])
	b := snapshot.Build(5, f.topo.Clusters, prev, f.cert(5, members[len(members)-quorum:]), hist, state)
	b.Sign(f.suites[f.topo.ReplicaID(1, 3)])

	if a.Key() != b.Key() {
		t.Fatal("same content, different endorsers/cert signers: keys must match")
	}
	if err := b.Verify(f.topo, f.suites[0]); err != nil {
		t.Fatalf("alternate-signer certificate fails verification: %v", err)
	}

	c := snapshot.Build(5, f.topo.Clusters, prev, f.cert(5, members[:quorum]), hist, testState(4096, 3))
	if a.Key() == c.Key() {
		t.Fatal("different state, same key")
	}
	d := snapshot.Build(6, f.topo.Clusters, prev, f.cert(6, members[:quorum]), hist, state)
	if a.Key() == d.Key() {
		t.Fatal("different round, same key")
	}
}

// TestVerifyRejects walks the forgeries Verify must catch, one field at a
// time, each on a fresh honest manifest.
func TestVerifyRejects(t *testing.T) {
	f := newFixture()
	state := testState(snapshot.DefaultChunkSize+17, 4)
	fresh := func() *snapshot.Manifest { return f.manifest(7, state, 1) }

	cases := []struct {
		name   string
		mutate func(*snapshot.Manifest)
	}{
		{"height off the round boundary", func(m *snapshot.Manifest) { m.Height++ }},
		{"zero state length", func(m *snapshot.Manifest) { m.StateLen = 0 }},
		{"state length above the cap", func(m *snapshot.Manifest) { m.StateLen = snapshot.MaxStateBytes + 1 }},
		{"zero chunk size", func(m *snapshot.Manifest) { m.ChunkSize = 0 }},
		{"truncated chunk table", func(m *snapshot.Manifest) { m.Chunks = m.Chunks[:1] }},
		{"history digests for the wrong cluster count", func(m *snapshot.Manifest) { m.Hist = m.Hist[:1] }},
		{"missing certificate", func(m *snapshot.Manifest) { m.Cert = nil }},
		{"certificate for another round", func(m *snapshot.Manifest) { m.Cert.Seq++ }},
		{"garbled certificate signature", func(m *snapshot.Manifest) { m.Cert.Sigs[0][0] ^= 0xff }},
		{"sub-quorum certificate", func(m *snapshot.Manifest) {
			m.Cert.Signers = m.Cert.Signers[:1]
			m.Cert.Sigs = m.Cert.Sigs[:1]
		}},
		{"unknown endorsing replica", func(m *snapshot.Manifest) { m.Replica = 99 }},
		{"garbled endorsement signature", func(m *snapshot.Manifest) { m.Sig[0] ^= 0xff }},
		{"rewritten state hash", func(m *snapshot.Manifest) { m.StateHash[0] ^= 0xff }},
		{"rewritten history fold", func(m *snapshot.Manifest) { m.Hist[0][0] ^= 0xff }},
	}
	for _, tc := range cases {
		m := fresh()
		tc.mutate(m)
		if err := m.Verify(f.topo, f.suites[0]); err == nil {
			t.Errorf("%s: manifest verified", tc.name)
		}
	}
	if err := fresh().Verify(f.topo, f.suites[0]); err != nil {
		t.Fatalf("control: honest manifest fails: %v", err)
	}
}

func TestVerifyChunkAndStateNegatives(t *testing.T) {
	f := newFixture()
	state := testState(snapshot.DefaultChunkSize+100, 5) // last chunk is 100 bytes
	m := f.manifest(3, state, 0)

	last := len(m.Chunks) - 1
	if err := m.VerifyChunk(-1, nil); err == nil {
		t.Error("negative chunk index accepted")
	}
	if err := m.VerifyChunk(len(m.Chunks), nil); err == nil {
		t.Error("chunk index past the table accepted")
	}
	if err := m.VerifyChunk(0, m.Chunk(state, 0)[:10]); err == nil {
		t.Error("short chunk accepted")
	}
	// The final chunk's length is exact, not "at most ChunkSize": a padded
	// tail must fail even if the extra bytes are zero.
	padded := append(append([]byte(nil), m.Chunk(state, last)...), 0)
	if err := m.VerifyChunk(last, padded); err == nil {
		t.Error("padded final chunk accepted")
	}
	flipped := append([]byte(nil), m.Chunk(state, 0)...)
	flipped[0] ^= 0xff
	if err := m.VerifyChunk(0, flipped); err == nil {
		t.Error("content-tampered chunk accepted")
	}

	if err := m.VerifyState(state[:len(state)-1]); err == nil {
		t.Error("short state accepted")
	}
	tampered := append([]byte(nil), state...)
	tampered[42] ^= 0xff
	if err := m.VerifyState(tampered); err == nil {
		t.Error("content-tampered state accepted")
	}
}

func TestArchiveRoundTrip(t *testing.T) {
	f := newFixture()
	dir := t.TempDir()
	arch, err := snapshot.OpenArchive(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	states := map[uint64][]byte{}
	for _, round := range []uint64{4, 8, 12} {
		st := testState(snapshot.DefaultChunkSize+int(round)*100, byte(round))
		states[round] = st
		if err := arch.Put(f.manifest(round, st, 2), st); err != nil {
			t.Fatalf("put round %d: %v", round, err)
		}
	}
	// Retention: the third Put prunes the oldest checkpoint, files included.
	if got := arch.Rounds(); len(got) != 2 || got[0] != 8 || got[1] != 12 {
		t.Fatalf("retained rounds %v, want [8 12]", got)
	}
	if arch.LatestRound() != 12 {
		t.Fatalf("LatestRound() = %d, want 12", arch.LatestRound())
	}
	if m := arch.Manifest(4); m != nil {
		t.Fatal("pruned round still served")
	}
	if n := len(dirEntries(t, dir)); n != 4 {
		t.Fatalf("%d files on disk after pruning, want 4 (2 rounds × manifest+state)", n)
	}

	// Round-trip: newest manifest, full state, and every chunk — all
	// verifying against each other.
	m := arch.Manifest(0)
	if m == nil || m.Round != 12 {
		t.Fatalf("Manifest(0) = %+v, want round 12", m)
	}
	if err := m.Verify(f.topo, f.suites[0]); err != nil {
		t.Fatalf("archived manifest fails verification: %v", err)
	}
	st, err := arch.State(12)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyState(st); err != nil {
		t.Fatalf("archived state fails its manifest: %v", err)
	}
	for i := range m.Chunks {
		chunk, err := arch.ReadChunk(m, i)
		if err != nil {
			t.Fatalf("ReadChunk(%d): %v", i, err)
		}
		if err := m.VerifyChunk(i, chunk); err != nil {
			t.Fatalf("archived chunk %d fails its manifest: %v", i, err)
		}
	}

	// Reopen: the directory alone reconstructs the same retained set.
	arch2, err := snapshot.OpenArchive(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := arch2.Rounds(); len(got) != 2 || got[0] != 8 || got[1] != 12 {
		t.Fatalf("reopened rounds %v, want [8 12]", got)
	}
	if m2 := arch2.Manifest(8); m2 == nil || m2.Key() != f.manifest(8, states[8], 2).Key() {
		t.Fatal("reopened archive serves a different round-8 manifest")
	}
}

// TestArchiveIgnoresTornWrites reopens archives bearing every partial shape
// a crash mid-Put can leave — a garbled manifest, a manifest without its
// state, an orphaned temp file — and requires each to cost at most its own
// checkpoint, never the archive.
func TestArchiveIgnoresTornWrites(t *testing.T) {
	f := newFixture()
	dir := t.TempDir()
	arch, err := snapshot.OpenArchive(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	good := testState(2048, 9)
	if err := arch.Put(f.manifest(4, good, 1), good); err != nil {
		t.Fatal(err)
	}

	// Garbled manifest bytes alongside a state file.
	writeRaw(t, dir, "snap-0000000000000008.man", []byte("not a manifest"))
	writeRaw(t, dir, "snap-0000000000000008.state", testState(64, 1))
	// Intact manifest whose state file the crash never renamed.
	orphan := f.manifest(12, good, 1)
	buf, err := orphan.Encode()
	if err != nil {
		t.Fatal(err)
	}
	writeRaw(t, dir, "snap-000000000000000c.man", buf)
	// A temp file the crash left behind.
	writeRaw(t, dir, "snap-0000000000000010.man.tmp-123", []byte("partial"))

	arch2, err := snapshot.OpenArchive(dir, 3)
	if err != nil {
		t.Fatalf("archive with torn writes fails to open: %v", err)
	}
	if got := arch2.Rounds(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("torn writes leaked into the retained set: %v", got)
	}
	m := arch2.Manifest(0)
	if m == nil || m.Round != 4 {
		t.Fatalf("surviving checkpoint not served: %+v", m)
	}
	st, err := arch2.State(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyState(st); err != nil {
		t.Fatalf("surviving checkpoint corrupted: %v", err)
	}
}

// TestArchivePutRejectsMismatchedState pins Put's last-line binding check: a
// bug that pairs a manifest with someone else's state must not persist.
func TestArchivePutRejectsMismatchedState(t *testing.T) {
	f := newFixture()
	arch, err := snapshot.OpenArchive(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	state := testState(1024, 6)
	if err := arch.Put(f.manifest(5, state, 0), testState(1024, 7)); err == nil {
		t.Fatal("Put persisted a manifest over state it does not describe")
	}
	if arch.LatestRound() != 0 {
		t.Fatal("rejected Put still advanced the archive")
	}
}

func dirEntries(t *testing.T, dir string) []os.DirEntry {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return entries
}

func writeRaw(t *testing.T, dir, name string, data []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
}
