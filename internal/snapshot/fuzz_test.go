package snapshot_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"resilientdb/internal/config"
	"resilientdb/internal/crypto"
	"resilientdb/internal/snapshot"
)

// FuzzSnapshotManifest throws mutated manifest bytes at the full receive
// path a joining node runs: decode, verification against a real topology
// and signature suite, and chunk checks against the raw input posing as
// transferred state. Malformed input must be rejected cleanly — no panic,
// no unbounded allocation — and anything that decodes must re-encode to an
// equivalent manifest (same identity key), since the archive persists and
// re-serves exactly these bytes. Seeds are the committed corpus
// (CorpusManifests: one honest manifest plus every tamperer forgery class).
func FuzzSnapshotManifest(f *testing.F) {
	for _, m := range snapshot.CorpusManifests() {
		buf, err := m.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	topo := config.NewTopology(2, 4)
	dir := crypto.NewDirectory(crypto.Real, topo.AllReplicas())
	suite := crypto.NewSuite(dir, topo.ReplicaID(0, 0), crypto.FreeCosts(), nil)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := snapshot.Decode(data)
		if err != nil {
			return
		}
		// Verification must decide, never panic, whatever the field values.
		verifies := m.Verify(topo, suite) == nil

		// Chunk and state checks against arbitrary bytes: same contract.
		_ = m.VerifyChunk(0, data)
		_ = m.VerifyChunk(len(m.Chunks)-1, data)
		_ = m.VerifyState(data)

		// Decoded manifests re-encode to the same identity: the archive
		// stores wire bytes and servers re-frame them, so a key that drifts
		// through a round-trip would split the joiner's f+1 quorum.
		buf, err := m.Encode()
		if err != nil {
			t.Fatalf("decoded manifest does not re-encode: %v", err)
		}
		m2, err := snapshot.Decode(buf)
		if err != nil {
			t.Fatalf("re-encoded manifest does not decode: %v", err)
		}
		if m2.Key() != m.Key() {
			t.Fatal("manifest key drifted through an encode/decode round-trip")
		}
		if verifies && m2.Verify(topo, suite) != nil {
			t.Fatal("verifying manifest stopped verifying after a round-trip")
		}
	})
}

// TestCorpusManifests runs every committed corpus seed through the same
// contract the fuzzer asserts, so the corpus stays valid even when the
// fuzzer is not run. Two forgery classes are re-signed by the adversary
// with its own (valid) key: those verify structurally by design — their
// defense is key divergence, which starves them of the joiner's f+1
// matching-endorsement quorum — so for them the test asserts the divergence
// instead of a verification failure.
func TestCorpusManifests(t *testing.T) {
	topo := config.NewTopology(2, 4)
	dir := crypto.NewDirectory(crypto.Real, topo.AllReplicas())
	suite := crypto.NewSuite(dir, topo.ReplicaID(0, 0), crypto.FreeCosts(), nil)
	manifests := snapshot.CorpusManifests()
	honestKey := manifests[0].Key()
	resigned := map[string]bool{"resigned-state-hash": true, "resigned-hist": true}
	for i, m := range manifests {
		name := snapshot.CorpusName(i)
		buf, err := m.Encode()
		if err != nil {
			t.Fatalf("corpus %s: encode: %v", name, err)
		}
		m2, err := snapshot.Decode(buf)
		if err != nil {
			t.Fatalf("corpus %s: decode: %v", name, err)
		}
		if m2.Key() != m.Key() {
			t.Fatalf("corpus %s: key drifted through the wire", name)
		}
		err = m2.Verify(topo, suite)
		switch {
		case i == 0 && err != nil:
			t.Fatalf("corpus honest seed fails verification: %v", err)
		case resigned[name]:
			if err != nil {
				t.Fatalf("corpus %s: re-signed forgery must verify structurally: %v", name, err)
			}
			if m2.Key() == honestKey {
				t.Fatalf("corpus %s: content forgery kept the honest key", name)
			}
		case i > 0 && err == nil:
			t.Fatalf("corpus forgery %s verified", name)
		}
	}
}

// TestRegenerateCorpus writes the snapshot fuzz seeds into the directory
// named by SNAPSHOT_CORPUS_DIR (normally testdata/fuzz/FuzzSnapshotManifest)
// and is skipped otherwise. CorpusManifests is deterministic, so
// regeneration is byte-for-byte:
//
//	SNAPSHOT_CORPUS_DIR=testdata/fuzz/FuzzSnapshotManifest go test -run TestRegenerateCorpus ./internal/snapshot/
func TestRegenerateCorpus(t *testing.T) {
	dir := os.Getenv("SNAPSHOT_CORPUS_DIR")
	if dir == "" {
		t.Skip("set SNAPSHOT_CORPUS_DIR to write the corpus seeds")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, m := range snapshot.CorpusManifests() {
		buf, err := m.Encode()
		if err != nil {
			t.Fatalf("corpus %d: %v", i, err)
		}
		name := filepath.Join(dir, fmt.Sprintf("snap-%02d-%s", i, snapshot.CorpusName(i)))
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", buf)
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", name, len(buf))
	}
}
