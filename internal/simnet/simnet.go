// Package simnet implements a deterministic discrete-event simulator of a
// geo-distributed network of nodes. It is the substrate on which every
// experiment of the ResilientDB reproduction runs: replicas and clients are
// event-driven handlers; links are modelled with the per-region-pair latency
// and bandwidth of the paper's Table 1; and each node owns a virtual CPU
// that cryptographic and execution work is charged to.
//
// Three properties matter for reproducing the paper's evaluation:
//
//   - Link asymmetry. Global messages pay one-way latency plus a
//     serialization delay on a per-flow bottleneck (Table 1 bandwidth), and
//     every byte a node sends also occupies its NIC egress. A centralized
//     primary broadcasting large batches to sixty geo-distributed replicas
//     therefore saturates exactly as in the paper (Section 4.4).
//   - CPU accounting. A node handles one event at a time; signature and MAC
//     costs delay its subsequent sends and receives, reproducing the compute
//     bottlenecks the paper attributes to Steward and HotStuff.
//   - Determinism. All randomness derives from a seed; runs are
//     reproducible bit for bit.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/crypto"
	"resilientdb/internal/types"
)

// Handler is an event-driven node: a consensus replica, a client, or any
// other participant. Init is called once before the simulation starts;
// Receive is invoked for each delivered message.
type Handler interface {
	Init(env *Env)
	Receive(from types.NodeID, msg types.Message)
}

// Options configures a Network.
type Options struct {
	// Profile supplies latency/bandwidth between regions. Required.
	Profile *config.Profile
	// Seed for all randomness (jitter). Runs with equal seeds are identical.
	Seed int64
	// Mode selects real or fast (cost-charged) cryptography.
	Mode crypto.Mode
	// Costs is the CPU cost model; zero values disable CPU accounting.
	Costs crypto.Costs
	// JitterFrac adds a uniform random delay in [0, JitterFrac·latency) to
	// each delivery, so quorum waits see realistic arrival spread. Zero
	// selects the default of 0.05; a negative value disables jitter.
	JitterFrac float64
	// MaxEvents guards against runaway simulations. Default 2e9.
	MaxEvents int64
}

// Network is a discrete-event simulation of a set of nodes.
type Network struct {
	opt      Options
	now      time.Duration
	pq       eventHeap
	seq      uint64
	nodes    map[types.NodeID]*node
	order    []types.NodeID
	dir      *crypto.Directory
	events   int64
	blocked  map[[2]types.NodeID]bool
	started  bool
	flowFree map[[2]types.NodeID]time.Duration

	// TraceSend, if set, observes every message accepted for transmission.
	TraceSend func(from, to types.NodeID, msg types.Message, size int, sameRegion bool)
}

type node struct {
	id         types.NodeID
	region     int
	handler    Handler
	env        *Env
	crashed    bool
	busyUntil  time.Duration
	uplinkFree time.Duration
	rng        *rand.Rand

	// backlog holds events that arrived while the node's virtual CPU was
	// busy; a single scheduled drain event works it off FIFO, keeping the
	// global heap small under saturation.
	backlog        []*event
	drainScheduled bool
}

type event struct {
	at    time.Duration
	seq   uint64
	node  types.NodeID
	drain bool
	fire  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// New creates an empty network.
func New(opt Options) *Network {
	if opt.Profile == nil {
		panic("simnet: Options.Profile is required")
	}
	if opt.JitterFrac == 0 {
		opt.JitterFrac = 0.05
	} else if opt.JitterFrac < 0 {
		opt.JitterFrac = 0
	}
	if opt.MaxEvents == 0 {
		opt.MaxEvents = 2e9
	}
	return &Network{
		opt:      opt,
		nodes:    make(map[types.NodeID]*node),
		blocked:  make(map[[2]types.NodeID]bool),
		flowFree: make(map[[2]types.NodeID]time.Duration),
	}
}

// AddNode registers a handler as node id living in the given region index of
// the profile. Must be called before Start.
func (n *Network) AddNode(id types.NodeID, region int, h Handler) {
	if n.started {
		panic("simnet: AddNode after Start")
	}
	if _, dup := n.nodes[id]; dup {
		panic(fmt.Sprintf("simnet: duplicate node %v", id))
	}
	if region < 0 || region >= len(n.opt.Profile.Names) {
		panic(fmt.Sprintf("simnet: node %v region %d out of profile range", id, region))
	}
	nd := &node{
		id:      id,
		region:  region,
		handler: h,
		rng:     rand.New(rand.NewSource(n.opt.Seed*1_000_003 + int64(id) + 7)),
	}
	nd.env = &Env{net: n, node: nd}
	n.nodes[id] = nd
	n.order = append(n.order, id)
}

// Start provisions key material and runs every handler's Init. Idempotent.
func (n *Network) Start() {
	if n.started {
		return
	}
	n.started = true
	n.dir = crypto.NewDirectory(n.opt.Mode, n.order)
	for _, id := range n.order {
		nd := n.nodes[id]
		nd.env.suite = crypto.NewSuite(n.dir, id, n.opt.Costs, nd.env.Charge)
		nd.handler.Init(nd.env)
	}
}

// Directory exposes the key directory (for out-of-band verification in
// tests).
func (n *Network) Directory() *crypto.Directory { return n.dir }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// Node returns the handler registered for id.
func (n *Network) Node(id types.NodeID) Handler { return n.nodes[id].handler }

// Crash makes a node silently drop all future events, messages in flight to
// it, and timers — a crash fault.
func (n *Network) Crash(id types.NodeID) {
	nd := n.nodes[id]
	nd.crashed = true
	nd.backlog = nil
}

// Crashed reports whether a node is crashed.
func (n *Network) Crashed(id types.NodeID) bool { return n.nodes[id].crashed }

// BlockLink drops all messages from → to until UnblockLink. It models a
// Byzantine sender that selectively withholds messages, or an asymmetric
// partition.
func (n *Network) BlockLink(from, to types.NodeID) { n.blocked[[2]types.NodeID{from, to}] = true }

// UnblockLink restores the link.
func (n *Network) UnblockLink(from, to types.NodeID) { delete(n.blocked, [2]types.NodeID{from, to}) }

// schedule inserts an event at absolute virtual time at.
func (n *Network) schedule(at time.Duration, nid types.NodeID, fire func()) {
	n.seq++
	heap.Push(&n.pq, &event{at: at, seq: n.seq, node: nid, fire: fire})
}

// At schedules fn to run in the context of node id at absolute time at — an
// external fault-injection hook used by experiments (e.g. "crash the Oregon
// primary after 900 transactions").
func (n *Network) At(at time.Duration, id types.NodeID, fn func()) {
	n.schedule(at, id, fn)
}

// RunFor advances the simulation by d of virtual time.
func (n *Network) RunFor(d time.Duration) { n.RunUntil(n.now + d) }

// RunUntil processes events until virtual time t (inclusive) or until the
// event queue drains.
func (n *Network) RunUntil(t time.Duration) {
	n.Start()
	for n.pq.Len() > 0 && n.pq[0].at <= t {
		ev := heap.Pop(&n.pq).(*event)
		nd := n.nodes[ev.node]
		if nd == nil || nd.crashed {
			continue
		}
		if ev.drain {
			nd.drainScheduled = false
			if len(nd.backlog) == 0 {
				continue
			}
			next := nd.backlog[0]
			nd.backlog = nd.backlog[1:]
			n.runEvent(nd, next, ev.at)
			continue
		}
		// If the node's virtual CPU is busy (or older work is backlogged),
		// append FIFO and let the drain event work it off — one heap entry
		// per pending item instead of repeated reinsertion.
		if nd.busyUntil > ev.at || len(nd.backlog) > 0 || nd.drainScheduled {
			nd.backlog = append(nd.backlog, ev)
			n.scheduleDrain(nd, ev.at)
			continue
		}
		n.runEvent(nd, ev, ev.at)
	}
	if t > n.now {
		n.now = t
	}
}

// runEvent executes ev in node nd's context at virtual time at.
func (n *Network) runEvent(nd *node, ev *event, at time.Duration) {
	n.events++
	if n.events > n.opt.MaxEvents {
		panic(fmt.Sprintf("simnet: exceeded MaxEvents=%d at t=%v (runaway protocol?)", n.opt.MaxEvents, n.now))
	}
	n.now = at
	nd.env.charged = 0
	ev.fire()
	if nd.env.charged > 0 {
		nd.busyUntil = at + nd.env.charged
	}
	if len(nd.backlog) > 0 {
		n.scheduleDrain(nd, at)
	}
}

// scheduleDrain arms the node's single drain event for the moment its CPU
// frees up.
func (n *Network) scheduleDrain(nd *node, at time.Duration) {
	if nd.drainScheduled {
		return
	}
	nd.drainScheduled = true
	when := nd.busyUntil
	if when < at {
		when = at
	}
	n.seq++
	heap.Push(&n.pq, &event{at: when, seq: n.seq, node: nd.id, drain: true})
}

// Events returns the number of events processed so far.
func (n *Network) Events() int64 { return n.events }

// send models the full transmission path of one message.
func (n *Network) send(from *node, to types.NodeID, msg types.Message) {
	dst, ok := n.nodes[to]
	if !ok {
		return // unknown destination: silently dropped, like a dead address
	}
	if from.crashed || dst.crashed || n.blocked[[2]types.NodeID{from.id, to}] {
		return
	}
	size := msg.WireSize()
	p := n.opt.Profile
	sameRegion := from.region == dst.region
	if n.TraceSend != nil {
		n.TraceSend(from.id, to, msg, size, sameRegion)
	}

	sendTime := n.now + from.env.charged

	// The message begins transmission once both the sender NIC and the
	// region-pair flow are free.
	key := [2]types.NodeID{from.id, to}
	start := sendTime
	if from.uplinkFree > start {
		start = from.uplinkFree
	}
	if ff := n.flowFree[key]; ff > start {
		start = ff
	}
	up := p.Uplink[from.region]
	bw := p.Bandwidth[from.region][dst.region]
	txUp := bytesDelay(size, up)
	txFlow := bytesDelay(size, bw)
	from.uplinkFree = start + txUp
	n.flowFree[key] = start + txFlow

	lat := p.OneWay(from.region, dst.region)
	jitter := time.Duration(0)
	if n.opt.JitterFrac > 0 {
		span := float64(lat)*n.opt.JitterFrac + float64(100*time.Microsecond)
		jitter = time.Duration(from.rng.Float64() * span)
	}
	arrival := start + txFlow + lat + jitter
	src := from.id
	n.schedule(arrival, to, func() {
		d := n.nodes[to]
		if d.crashed {
			return
		}
		d.handler.Receive(src, msg)
	})
}

func bytesDelay(size int, bytesPerSec float64) time.Duration {
	if bytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(size) / bytesPerSec * float64(time.Second))
}

// Env is a node's interface to the simulation: identity, clock, messaging,
// timers, CPU charging, and cryptography. Exactly one Env exists per node;
// it must only be used from within that node's event handlers.
type Env struct {
	net     *Network
	node    *node
	suite   *crypto.Suite
	charged time.Duration
}

// ID returns the node's identifier.
func (e *Env) ID() types.NodeID { return e.node.id }

// Region returns the node's region index.
func (e *Env) Region() int { return e.node.region }

// Now returns the node-local virtual time, including CPU time already
// charged during the current event.
func (e *Env) Now() time.Duration { return e.net.now + e.charged }

// Send transmits msg to node to. Messages sent later in the same event (or
// after more CPU has been charged) depart later.
func (e *Env) Send(to types.NodeID, msg types.Message) {
	e.net.send(e.node, to, msg)
}

// Multicast sends msg to each listed node (self included only if listed).
func (e *Env) Multicast(to []types.NodeID, msg types.Message) {
	for _, id := range to {
		if id != e.node.id {
			e.Send(id, msg)
		}
	}
}

// Charge advances this node's virtual CPU by d. All subsequent work in this
// event, and all future events, are delayed accordingly.
func (e *Env) Charge(d time.Duration) {
	if d > 0 {
		e.charged += d
	}
}

// Suite returns the node's cryptographic suite. All operations automatically
// charge CPU time.
func (e *Env) Suite() *crypto.Suite { return e.suite }

// Rand returns the node's deterministic random source.
func (e *Env) Rand() *rand.Rand { return e.node.rng }

// Timer is a cancellable one-shot timer.
type Timer struct {
	stopped bool
}

// Stop cancels the timer; a stopped timer's function never runs.
func (t *Timer) Stop() { t.stopped = true }

// SetTimer schedules fn to run on this node after delay d of virtual time.
func (e *Env) SetTimer(d time.Duration, fn func()) *Timer {
	t := &Timer{}
	at := e.Now() + d
	e.net.schedule(at, e.node.id, func() {
		if !t.stopped {
			fn()
		}
	})
	return t
}

// Defer schedules fn to run on this node as soon as possible after the
// current event (used to break deep recursion in protocol pipelines).
func (e *Env) Defer(fn func()) { e.net.schedule(e.Now(), e.node.id, fn) }
