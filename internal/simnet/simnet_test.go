package simnet

import (
	"testing"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/crypto"
	"resilientdb/internal/types"
)

type ping struct{ size int }

func (*ping) MsgType() string { return "ping" }
func (p *ping) WireSize() int { return p.size }

// recorder is a handler capturing delivery times.
type recorder struct {
	env    *Env
	got    []time.Duration
	from   []types.NodeID
	onInit func(*Env)
	onRecv func(*Env, types.NodeID, types.Message)
}

func (r *recorder) Init(env *Env) {
	r.env = env
	if r.onInit != nil {
		r.onInit(env)
	}
}

func (r *recorder) Receive(from types.NodeID, msg types.Message) {
	r.got = append(r.got, r.env.Now())
	r.from = append(r.from, from)
	if r.onRecv != nil {
		r.onRecv(r.env, from, msg)
	}
}

func twoRegionNet(jitter float64) (*Network, *recorder, *recorder) {
	prof := config.UniformProfile(2, 100*time.Millisecond, 80) // 80 Mbit/s WAN
	net := New(Options{Profile: prof, Seed: 1, JitterFrac: jitter})
	a, b := &recorder{}, &recorder{}
	net.AddNode(0, 0, a)
	net.AddNode(1, 1, b)
	return net, a, b
}

func TestLatencyMatchesProfile(t *testing.T) {
	net, a, b := twoRegionNet(-1)
	a.onInit = func(env *Env) { env.Send(1, &ping{size: 100}) }
	net.RunUntil(time.Second)
	if len(b.got) != 1 {
		t.Fatalf("b received %d messages, want 1", len(b.got))
	}
	// One-way latency 50 ms + tiny serialization (100 B / 10 MB/s = 10 µs).
	lo, hi := 50*time.Millisecond, 51*time.Millisecond
	if b.got[0] < lo || b.got[0] > hi {
		t.Errorf("arrival at %v, want within [%v, %v]", b.got[0], lo, hi)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	net, a, b := twoRegionNet(-1)
	// 10 MB over a 10 MB/s flow takes 1 s + 50 ms latency.
	a.onInit = func(env *Env) { env.Send(1, &ping{size: 10_000_000}) }
	net.RunUntil(5 * time.Second)
	if len(b.got) != 1 {
		t.Fatalf("b received %d messages", len(b.got))
	}
	lo, hi := 1040*time.Millisecond, 1060*time.Millisecond
	if b.got[0] < lo || b.got[0] > hi {
		t.Errorf("arrival at %v, want ≈1.05 s", b.got[0])
	}
}

func TestFlowQueuingBackToBack(t *testing.T) {
	net, a, b := twoRegionNet(-1)
	// Two 10 MB messages on the same flow serialize one after the other.
	a.onInit = func(env *Env) {
		env.Send(1, &ping{size: 10_000_000})
		env.Send(1, &ping{size: 10_000_000})
	}
	net.RunUntil(10 * time.Second)
	if len(b.got) != 2 {
		t.Fatalf("b received %d messages", len(b.got))
	}
	gap := b.got[1] - b.got[0]
	if gap < 900*time.Millisecond || gap > 1100*time.Millisecond {
		t.Errorf("inter-arrival gap %v, want ≈1 s (flow serialization)", gap)
	}
}

func TestUplinkSharedAcrossDestinations(t *testing.T) {
	// One sender, many receivers in another region, with per-flow bandwidth
	// far above the sender's NIC egress: the NIC caps aggregate throughput
	// (the effect that bottlenecks centralized primaries in the paper).
	prof := config.UniformProfile(2, 10*time.Millisecond, 1000)
	for i := range prof.Uplink {
		prof.Uplink[i] = 100e6 / 8 // 100 Mbit/s NIC = 12.5 MB/s
	}
	net := New(Options{Profile: prof, Seed: 1, JitterFrac: -1})
	src := &recorder{}
	net.AddNode(0, 0, src)
	sinks := make([]*recorder, 8)
	for i := range sinks {
		sinks[i] = &recorder{}
		net.AddNode(types.NodeID(i+1), 1, sinks[i])
	}
	src.onInit = func(env *Env) {
		for i := range sinks {
			env.Send(types.NodeID(i+1), &ping{size: 10_000_000})
		}
	}
	net.RunUntil(20 * time.Second)
	last := time.Duration(0)
	for i, s := range sinks {
		if len(s.got) != 1 {
			t.Fatalf("sink %d received %d", i, len(s.got))
		}
		if s.got[0] > last {
			last = s.got[0]
		}
	}
	// 80 MB through a 12.5 MB/s NIC takes 6.4 s even though each flow alone
	// would deliver in ≈ 0.1 s.
	if last < 5*time.Second {
		t.Errorf("last arrival %v; uplink sharing seems unmodelled", last)
	}
}

func TestCPUChargeDelaysSubsequentEvents(t *testing.T) {
	prof := config.UniformProfile(1, 0, 1000)
	net := New(Options{Profile: prof, Seed: 1, JitterFrac: -1})
	busy := &recorder{}
	busy.onRecv = func(env *Env, _ types.NodeID, _ types.Message) {
		env.Charge(10 * time.Millisecond)
	}
	sender := &recorder{}
	net.AddNode(0, 0, sender)
	net.AddNode(1, 0, busy)
	sender.onInit = func(env *Env) {
		env.Send(1, &ping{size: 10})
		env.Send(1, &ping{size: 10})
		env.Send(1, &ping{size: 10})
	}
	net.RunUntil(time.Second)
	if len(busy.got) != 3 {
		t.Fatalf("busy received %d", len(busy.got))
	}
	// Each event charges 10 ms of CPU, so handling must be spaced ≥ 10 ms.
	for i := 1; i < 3; i++ {
		if gap := busy.got[i] - busy.got[i-1]; gap < 10*time.Millisecond {
			t.Errorf("events %d,%d spaced %v, want ≥ 10 ms", i-1, i, gap)
		}
	}
}

func TestTimerFireAndStop(t *testing.T) {
	prof := config.UniformProfile(1, 0, 1000)
	net := New(Options{Profile: prof, Seed: 1})
	fired, stopped := 0, 0
	h := &recorder{}
	h.onInit = func(env *Env) {
		env.SetTimer(10*time.Millisecond, func() { fired++ })
		tm := env.SetTimer(20*time.Millisecond, func() { stopped++ })
		tm.Stop()
	}
	net.AddNode(0, 0, h)
	net.RunUntil(time.Second)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if stopped != 0 {
		t.Errorf("stopped timer fired %d times", stopped)
	}
}

func TestCrashSilencesNode(t *testing.T) {
	net, a, b := twoRegionNet(-1)
	a.onInit = func(env *Env) {
		env.SetTimer(200*time.Millisecond, func() { env.Send(1, &ping{size: 10}) })
	}
	net.RunUntil(100 * time.Millisecond)
	net.Crash(1)
	net.RunUntil(time.Second)
	if len(b.got) != 0 {
		t.Errorf("crashed node received %d messages", len(b.got))
	}
}

func TestBlockLinkDropsSelectively(t *testing.T) {
	net, a, b := twoRegionNet(-1)
	a.onInit = func(env *Env) {
		env.Send(1, &ping{size: 10})
	}
	net.BlockLink(0, 1)
	net.RunUntil(time.Second)
	if len(b.got) != 0 {
		t.Errorf("blocked link delivered %d messages", len(b.got))
	}
	net.UnblockLink(0, 1)
	net.At(net.Now(), 0, func() { net.nodes[0].env.Send(1, &ping{size: 10}) })
	net.RunUntil(2 * time.Second)
	if len(b.got) != 1 {
		t.Errorf("unblocked link delivered %d messages, want 1", len(b.got))
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, time.Duration) {
		prof := config.GoogleCloudProfile(3)
		net := New(Options{Profile: prof, Seed: 42})
		var last time.Duration
		for i := 0; i < 9; i++ {
			i := i
			h := &recorder{}
			h.onInit = func(env *Env) {
				env.SetTimer(time.Duration(i)*time.Millisecond, func() {
					for j := 0; j < 9; j++ {
						env.Send(types.NodeID(j), &ping{size: 500})
					}
				})
			}
			h.onRecv = func(env *Env, _ types.NodeID, _ types.Message) {
				last = env.Now()
				env.Charge(time.Duration(i) * time.Microsecond)
			}
			net.AddNode(types.NodeID(i), i%3, h)
		}
		net.RunUntil(time.Second)
		return net.Events(), last
	}
	e1, t1 := run()
	e2, t2 := run()
	if e1 != e2 || t1 != t2 {
		t.Errorf("runs diverge: (%d, %v) vs (%d, %v)", e1, t1, e2, t2)
	}
}

func TestTraceSendObserver(t *testing.T) {
	net, a, _ := twoRegionNet(-1)
	var localN, globalN int
	net.TraceSend = func(_, _ types.NodeID, _ types.Message, _ int, sameRegion bool) {
		if sameRegion {
			localN++
		} else {
			globalN++
		}
	}
	a.onInit = func(env *Env) {
		env.Send(1, &ping{size: 10}) // cross-region
		env.Send(0, &ping{size: 10}) // self/local: not sent (self excluded by Multicast, but direct Send works)
	}
	net.RunUntil(time.Second)
	if globalN != 1 {
		t.Errorf("globalN = %d", globalN)
	}
	if localN != 1 {
		t.Errorf("localN = %d", localN)
	}
}

func TestSuiteChargingIntegratesWithClock(t *testing.T) {
	prof := config.UniformProfile(1, 0, 1000)
	net := New(Options{Profile: prof, Seed: 1, Mode: crypto.Fast, Costs: crypto.DefaultCosts(), JitterFrac: -1})
	var first, second time.Duration
	h := &recorder{}
	h.onInit = func(env *Env) {
		env.SetTimer(0, func() {
			env.Suite().Sign([]byte("x")) // 25 µs
			first = env.Now()
		})
		env.SetTimer(0, func() { second = env.Now() })
	}
	net.AddNode(0, 0, h)
	net.RunUntil(time.Second)
	if first < 25*time.Microsecond {
		t.Errorf("suite did not charge CPU: now=%v", first)
	}
	if second < 25*time.Microsecond {
		t.Errorf("second event not delayed by busy CPU: %v", second)
	}
}
