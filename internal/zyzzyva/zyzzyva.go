// Package zyzzyva implements the Zyzzyva speculative BFT protocol (Kotla et
// al.), one of the baselines of the ResilientDB evaluation. The primary
// orders requests and broadcasts them; replicas execute speculatively and
// respond directly to the client. A client that receives identical
// speculative responses from all n replicas completes on the fast path; with
// only n−f matching responses it assembles a commit certificate and runs a
// second phase. As the paper notes (Sections 1.1 and 4.3, following
// Clement et al.), this design delivers high throughput only without
// failures: one crashed replica forces every request through the timeout +
// certificate path, collapsing throughput.
//
// Per the paper's experiments, Zyzzyva is evaluated with a fixed primary in
// Oregon and without the client-aided view-change machinery (the paper
// excludes Zyzzyva from the primary-failure experiment because it already
// fails under non-primary failures).
package zyzzyva

import (
	"resilientdb/internal/kvstore"
	"resilientdb/internal/ledger"
	"resilientdb/internal/proto"
	"resilientdb/internal/simnet"
	"resilientdb/internal/types"
)

// Request carries a client batch to the primary.
type Request struct {
	Batch types.Batch
}

func (*Request) MsgType() string { return "zyzzyva/request" }

// WireSize implements types.Message.
func (r *Request) WireSize() int { return r.Batch.WireSize() }

// OrderReq is the primary's ordered broadcast of a request.
type OrderReq struct {
	Seq     uint64
	History types.Digest
	Batch   types.Batch
}

func (*OrderReq) MsgType() string { return "zyzzyva/orderreq" }

// WireSize implements types.Message.
func (o *OrderReq) WireSize() int { return types.HeaderBytes + o.Batch.WireSize() }

// SpecResponse is a replica's signed speculative execution response, sent
// directly to the client.
type SpecResponse struct {
	Seq       uint64
	History   types.Digest
	Result    types.Digest
	Replica   types.NodeID
	Client    types.NodeID
	ClientSeq uint64
	TxnCount  int
	Sig       []byte
}

func (*SpecResponse) MsgType() string { return "zyzzyva/specresponse" }

// WireSize implements types.Message.
func (s *SpecResponse) WireSize() int {
	return types.HeaderBytes + types.ReplyBytesPerTxn*s.TxnCount + types.SigBytes
}

// SpecPayload is the signed content of a SpecResponse.
func SpecPayload(seq uint64, history, result types.Digest) []byte {
	enc := types.NewEncoder(96)
	enc.String("zyzzyva/SR")
	enc.U64(seq)
	enc.Digest(history)
	enc.Digest(result)
	return enc.Bytes()
}

// CommitCert is the client-assembled proof that n−f replicas speculatively
// executed the request with identical histories; broadcasting it commits the
// request (the slow path).
type CommitCert struct {
	Seq     uint64
	History types.Digest
	Result  types.Digest
	Client  types.NodeID
	Signers []types.NodeID
	Sigs    [][]byte
}

func (*CommitCert) MsgType() string { return "zyzzyva/commitcert" }

// WireSize implements types.Message.
func (c *CommitCert) WireSize() int {
	return types.HeaderBytes + len(c.Sigs)*types.SigBytes
}

// LocalCommit acknowledges a commit certificate to the client.
type LocalCommit struct {
	Seq     uint64
	Replica types.NodeID
	Client  types.NodeID
}

func (*LocalCommit) MsgType() string { return "zyzzyva/localcommit" }

// WireSize implements types.Message.
func (*LocalCommit) WireSize() int { return types.ControlBytes }

// Config parameterizes a Zyzzyva replica.
type Config struct {
	Members []types.NodeID
	Self    types.NodeID
	F       int
	Records int
}

// Replica is a Zyzzyva replica with speculative execution.
type Replica struct {
	cfg Config
	env proto.Env

	nextSeq uint64 // primary only
	log     map[uint64]*OrderReq
	history map[uint64]types.Digest
	execUp  uint64
	store   *kvstore.Store
	ledger  *ledger.Ledger
}

// NewReplica constructs a replica; call Init before use.
func NewReplica(cfg Config) *Replica { return &Replica{cfg: cfg} }

// Init implements simnet.Handler.
func (r *Replica) Init(env *simnet.Env) { r.InitEnv(proto.WrapSim(env)) }

// InitEnv wires the replica to an environment.
func (r *Replica) InitEnv(env proto.Env) {
	r.env = env
	r.store = kvstore.New(r.cfg.Records)
	r.ledger = ledger.New()
	r.log = make(map[uint64]*OrderReq)
	r.history = map[uint64]types.Digest{0: {}}
}

// Ledger exposes the replica's chain.
func (r *Replica) Ledger() *ledger.Ledger { return r.ledger }

// Store exposes the replica's table.
func (r *Replica) Store() *kvstore.Store { return r.store }

// Executed returns the highest speculatively executed sequence.
func (r *Replica) Executed() uint64 { return r.execUp }

func (r *Replica) isPrimary() bool { return r.cfg.Self == r.cfg.Members[0] }

// Receive implements simnet.Handler.
func (r *Replica) Receive(from types.NodeID, msg types.Message) {
	switch m := msg.(type) {
	case *Request:
		r.env.Suite().ChargeVerify() // client signature
		if !r.isPrimary() {
			// Forward to the primary (client may broadcast on retry).
			r.env.Suite().ChargeMAC()
			r.env.Send(r.cfg.Members[0], m)
			return
		}
		r.nextSeq++
		d := m.Batch.Digest()
		enc := types.NewEncoder(72)
		enc.Digest(r.historyAt(r.nextSeq - 1))
		enc.Digest(d)
		or := &OrderReq{Seq: r.nextSeq, History: types.Hash(enc.Bytes()), Batch: m.Batch}
		for _, peer := range r.cfg.Members {
			if peer != r.cfg.Self {
				r.env.Suite().ChargeMAC()
				r.env.Send(peer, or)
			}
		}
		r.onOrderReq(or)
	case *OrderReq:
		r.env.Suite().ChargeVerifyMAC()
		if from != r.cfg.Members[0] {
			return
		}
		r.onOrderReq(m)
	case *CommitCert:
		r.onCommitCert(from, m)
	}
}

func (r *Replica) historyAt(seq uint64) types.Digest { return r.history[seq] }

func (r *Replica) onOrderReq(m *OrderReq) {
	if m.Seq <= r.execUp || r.log[m.Seq] != nil {
		return
	}
	r.log[m.Seq] = m
	// Speculatively execute in order.
	for {
		next := r.log[r.execUp+1]
		if next == nil {
			return
		}
		r.execUp++
		d := next.Batch.Digest()
		enc := types.NewEncoder(72)
		enc.Digest(r.history[r.execUp-1])
		enc.Digest(d)
		h := types.Hash(enc.Bytes())
		r.history[r.execUp] = h
		delete(r.history, r.execUp-64)

		r.env.Suite().ChargeExec(next.Batch.Len())
		r.store.ApplyBatch(&next.Batch)
		r.ledger.Append(r.execUp, 0, next.Batch, d)
		if r.execUp > 128 {
			delete(r.log, r.execUp-128)
		}

		// Signed speculative response straight to the client.
		sig := r.env.Suite().Sign(SpecPayload(r.execUp, h, d))
		r.env.Suite().ChargeMAC()
		r.env.Send(next.Batch.Client, &SpecResponse{
			Seq: r.execUp, History: h, Result: d,
			Replica: r.cfg.Self, Client: next.Batch.Client,
			ClientSeq: next.Batch.Seq, TxnCount: next.Batch.Len(), Sig: sig,
		})
	}
}

func (r *Replica) onCommitCert(from types.NodeID, m *CommitCert) {
	if len(m.Signers) < len(r.cfg.Members)-r.cfg.F || len(m.Signers) != len(m.Sigs) {
		return
	}
	payload := SpecPayload(m.Seq, m.History, m.Result)
	seen := make(map[types.NodeID]bool)
	for i, s := range m.Signers {
		if seen[s] {
			return
		}
		seen[s] = true
		if !r.env.Suite().Verify(s, payload, m.Sigs[i]) {
			return
		}
	}
	r.env.Suite().ChargeMAC()
	r.env.Send(from, &LocalCommit{Seq: m.Seq, Replica: r.cfg.Self, Client: from})
}
