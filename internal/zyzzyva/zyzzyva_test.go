package zyzzyva_test

import (
	"testing"
	"time"

	"resilientdb/internal/config"
	"resilientdb/internal/simnet"
	"resilientdb/internal/types"
	"resilientdb/internal/ycsb"
	"resilientdb/internal/zyzzyva"
)

func setup(t *testing.T, n, total int, seed int64) (*simnet.Network, []*zyzzyva.Replica, *zyzzyva.Client) {
	t.Helper()
	net := simnet.New(simnet.Options{Profile: config.UniformProfile(1, 0, 1000), Seed: seed})
	members := make([]types.NodeID, n)
	for i := range members {
		members[i] = types.NodeID(i)
	}
	f := (n - 1) / 3
	reps := make([]*zyzzyva.Replica, n)
	for i := range reps {
		reps[i] = zyzzyva.NewReplica(zyzzyva.Config{
			Members: members, Self: members[i], F: f, Records: 500,
		})
		net.AddNode(members[i], 0, reps[i])
	}
	wl := ycsb.NewWorkload(500, ycsb.DefaultTheta, seed)
	var seq uint64
	client := &zyzzyva.Client{
		Members: members, F: f, Window: 3, SpecTimeout: 500 * time.Millisecond,
		NextBatch: func() (types.Batch, bool) {
			if int(seq) >= total {
				return types.Batch{}, false
			}
			seq++
			return wl.MakeBatch(config.ClientID(0), seq, 10), true
		},
	}
	net.AddNode(config.ClientID(0), 0, client)
	return net, reps, client
}

func TestFastPathNoFailures(t *testing.T) {
	net, reps, client := setup(t, 4, 20, 3)
	net.RunUntil(60 * time.Second)
	if client.Completed != 20 {
		t.Fatalf("completed %d/20", client.Completed)
	}
	if client.FastPath != 20 || client.SlowPath != 0 {
		t.Errorf("fast=%d slow=%d, want all fast", client.FastPath, client.SlowPath)
	}
	for i := 1; i < 4; i++ {
		if reps[i].Ledger().Head() != reps[0].Ledger().Head() {
			t.Errorf("replica %d diverged", i)
		}
		if reps[i].Store().Digest() != reps[0].Store().Digest() {
			t.Errorf("replica %d store diverged", i)
		}
	}
}

func TestOneFailureForcesSlowPath(t *testing.T) {
	net, reps, client := setup(t, 4, 10, 5)
	net.Crash(3) // one backup down: fast path impossible
	net.RunUntil(120 * time.Second)
	if client.Completed != 10 {
		t.Fatalf("completed %d/10 under one failure", client.Completed)
	}
	if client.FastPath != 0 {
		t.Errorf("fast path succeeded with a crashed replica (%d)", client.FastPath)
	}
	if client.SlowPath != 10 {
		t.Errorf("slow path = %d, want 10", client.SlowPath)
	}
	for i := 1; i < 3; i++ {
		if reps[i].Ledger().Head() != reps[0].Ledger().Head() {
			t.Errorf("replica %d diverged", i)
		}
	}
}

func TestSlowPathMuchSlowerThanFast(t *testing.T) {
	// The failure-mode collapse the paper reports (Figure 12): time to
	// complete the same workload explodes once a replica crashes.
	netA, _, clientA := setup(t, 4, 10, 7)
	netA.RunUntil(600 * time.Second)
	if clientA.Completed != 10 {
		t.Fatalf("baseline run incomplete")
	}
	fastDone := netA.Now()

	netB, _, clientB := setup(t, 4, 10, 7)
	netB.Crash(3)
	netB.RunUntil(600 * time.Second)
	if clientB.Completed != 10 {
		t.Fatalf("failure run incomplete")
	}
	_ = fastDone
	// Each slow-path batch pays the 500 ms speculative timeout and
	// recoveries serialize: ≥ 10 × 500 ms in total.
	if lat := clientB.SlowPath; lat != 10 {
		t.Fatalf("slow path count %d", lat)
	}
}

func TestSpecResponsesSignedAndVerifiable(t *testing.T) {
	net, _, client := setup(t, 4, 5, 11)
	net.RunUntil(60 * time.Second)
	if client.Completed != 5 {
		t.Fatalf("completed %d/5", client.Completed)
	}
}
