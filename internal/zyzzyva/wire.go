package zyzzyva

import (
	"resilientdb/internal/types"
)

// Wire codec for the Zyzzyva baseline's messages, registered with the
// message-type registry in internal/types.

// EncodeBody implements types.WireMessage.
func (r *Request) EncodeBody(enc *types.Encoder) {
	r.Batch.Encode(enc)
}

func decodeRequest(dec *types.Decoder) types.Message {
	return &Request{Batch: types.DecodeBatch(dec)}
}

// EncodeBody implements types.WireMessage.
func (o *OrderReq) EncodeBody(enc *types.Encoder) {
	enc.U64(o.Seq)
	enc.Digest(o.History)
	o.Batch.Encode(enc)
}

func decodeOrderReq(dec *types.Decoder) types.Message {
	o := &OrderReq{}
	o.Seq = dec.U64()
	o.History = dec.Digest()
	o.Batch = types.DecodeBatch(dec)
	return o
}

// EncodeBody implements types.WireMessage.
func (s *SpecResponse) EncodeBody(enc *types.Encoder) {
	enc.U64(s.Seq)
	enc.Digest(s.History)
	enc.Digest(s.Result)
	enc.I32(int32(s.Replica))
	enc.I32(int32(s.Client))
	enc.U64(s.ClientSeq)
	enc.U32(uint32(s.TxnCount))
	enc.BytesN(s.Sig)
}

func decodeSpecResponse(dec *types.Decoder) types.Message {
	s := &SpecResponse{}
	s.Seq = dec.U64()
	s.History = dec.Digest()
	s.Result = dec.Digest()
	s.Replica = types.NodeID(dec.I32())
	s.Client = types.NodeID(dec.I32())
	s.ClientSeq = dec.U64()
	s.TxnCount = int(dec.U32())
	s.Sig = dec.BytesN()
	return s
}

// EncodeBody implements types.WireMessage.
func (c *CommitCert) EncodeBody(enc *types.Encoder) {
	enc.U64(c.Seq)
	enc.Digest(c.History)
	enc.Digest(c.Result)
	enc.I32(int32(c.Client))
	enc.NodeIDs(c.Signers)
	enc.SigList(c.Sigs)
}

func decodeCommitCert(dec *types.Decoder) types.Message {
	c := &CommitCert{}
	c.Seq = dec.U64()
	c.History = dec.Digest()
	c.Result = dec.Digest()
	c.Client = types.NodeID(dec.I32())
	c.Signers = dec.NodeIDs()
	c.Sigs = dec.SigList()
	return c
}

// EncodeBody implements types.WireMessage.
func (l *LocalCommit) EncodeBody(enc *types.Encoder) {
	enc.U64(l.Seq)
	enc.I32(int32(l.Replica))
	enc.I32(int32(l.Client))
}

func decodeLocalCommit(dec *types.Decoder) types.Message {
	l := &LocalCommit{}
	l.Seq = dec.U64()
	l.Replica = types.NodeID(dec.I32())
	l.Client = types.NodeID(dec.I32())
	return l
}

func init() {
	b := func() types.Batch {
		return types.Batch{Client: types.ClientIDBase, Seq: 2, Txns: []types.Transaction{{Key: 1, Value: 9}}}
	}
	types.RegisterMessage((*Request)(nil).MsgType(), decodeRequest, func() []types.Message {
		return []types.Message{&Request{}, &Request{Batch: b()}}
	})
	types.RegisterMessage((*OrderReq)(nil).MsgType(), decodeOrderReq, func() []types.Message {
		return []types.Message{
			&OrderReq{},
			&OrderReq{Seq: 3, History: types.Hash([]byte("h")), Batch: b()},
		}
	})
	types.RegisterMessage((*SpecResponse)(nil).MsgType(), decodeSpecResponse, func() []types.Message {
		return []types.Message{
			&SpecResponse{},
			&SpecResponse{
				Seq:       3,
				History:   types.Hash([]byte("h")),
				Result:    types.Hash([]byte("r")),
				Replica:   1,
				Client:    types.ClientIDBase,
				ClientSeq: 2,
				TxnCount:  1,
				Sig:       []byte{1, 2, 3},
			},
		}
	})
	types.RegisterMessage((*CommitCert)(nil).MsgType(), decodeCommitCert, func() []types.Message {
		return []types.Message{
			&CommitCert{},
			&CommitCert{
				Seq:     3,
				History: types.Hash([]byte("h")),
				Result:  types.Hash([]byte("r")),
				Client:  types.ClientIDBase,
				Signers: []types.NodeID{0, 1, 2},
				Sigs:    [][]byte{{1}, {2}, {3}},
			},
		}
	})
	types.RegisterMessage((*LocalCommit)(nil).MsgType(), decodeLocalCommit, func() []types.Message {
		return []types.Message{
			&LocalCommit{},
			&LocalCommit{Seq: 3, Replica: 2, Client: types.ClientIDBase},
		}
	})
}
