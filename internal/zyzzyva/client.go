package zyzzyva

import (
	"time"

	"resilientdb/internal/proto"
	"resilientdb/internal/simnet"
	"resilientdb/internal/types"
)

// Client implements the Zyzzyva client protocol, which is an active protocol
// participant: fast-path completion requires identical speculative responses
// from all n replicas; after SpecTimeout with only n−f matching responses
// the client assembles and broadcasts a commit certificate and waits for
// n−f local-commit acknowledgements.
//
// Recoveries are serialized per client node, mirroring the recovery
// bottleneck the paper observes ("this will greatly reduce performance when
// any replicas are faulty", Section 3): under failures every batch pays the
// speculative timeout plus a serialized certificate round.
type Client struct {
	Members []types.NodeID
	F       int
	// SpecTimeout is how long the client waits for the full fast path.
	SpecTimeout time.Duration
	// Window is the number of outstanding batches; NextBatch supplies them.
	Window int
	// NextBatch returns the next batch to submit, or false when done.
	NextBatch func() (types.Batch, bool)
	// OnComplete observes each completed batch (for metrics).
	OnComplete func(clientSeq uint64, submitted time.Duration, txns int)

	env      *simnet.Env
	pending  map[uint64]*pendingBatch // by client seq
	recoverq []uint64
	inRecov  bool

	// Completed counts finished batches.
	Completed int
	// FastPath counts batches completed on the fast path.
	FastPath int
	// SlowPath counts batches that needed the certificate phase.
	SlowPath int
}

type pendingBatch struct {
	batch     types.Batch
	submitted time.Duration
	specs     map[types.NodeID]*SpecResponse
	commits   map[types.NodeID]bool
	certSent  bool
	done      bool
}

// Init implements simnet.Handler.
func (c *Client) Init(env *simnet.Env) {
	c.env = env
	c.pending = make(map[uint64]*pendingBatch)
	if c.SpecTimeout == 0 {
		c.SpecTimeout = time.Second
	}
	for i := 0; i < c.Window; i++ {
		if !c.submit() {
			break
		}
	}
}

func (c *Client) submit() bool {
	b, ok := c.NextBatch()
	if !ok {
		return false
	}
	p := &pendingBatch{
		batch:     b,
		submitted: c.env.Now(),
		specs:     make(map[types.NodeID]*SpecResponse),
		commits:   make(map[types.NodeID]bool),
	}
	c.pending[b.Seq] = p
	c.env.Suite().ChargeSign()
	c.env.Send(c.Members[0], &Request{Batch: b})
	c.armSpecTimer(b.Seq)
	return true
}

func (c *Client) armSpecTimer(seq uint64) {
	c.env.SetTimer(c.SpecTimeout, func() { c.onSpecTimeout(seq) })
}

func (c *Client) onSpecTimeout(seq uint64) {
	p := c.pending[seq]
	if p == nil || p.done || p.certSent {
		return
	}
	if c.matching(p) >= len(c.Members)-c.F {
		// Enough matching responses for the certificate path; recoveries are
		// serialized through a single recovery slot.
		c.recoverq = append(c.recoverq, seq)
		c.drainRecovery()
		return
	}
	// Too few responses: retransmit (a lost request, or the primary is
	// slow); replicas forward to the primary.
	for _, m := range c.Members {
		c.env.Send(m, &Request{Batch: p.batch})
	}
	c.armSpecTimer(seq)
}

// matching returns the size of the largest response set agreeing on
// (seq, history, result).
func (c *Client) matching(p *pendingBatch) int {
	counts := make(map[types.Digest]int)
	best := 0
	for _, s := range p.specs {
		enc := types.NewEncoder(96)
		enc.U64(s.Seq)
		enc.Digest(s.History)
		enc.Digest(s.Result)
		d := types.Hash(enc.Bytes())
		counts[d]++
		if counts[d] > best {
			best = counts[d]
		}
	}
	return best
}

func (c *Client) drainRecovery() {
	if c.inRecov || len(c.recoverq) == 0 {
		return
	}
	seq := c.recoverq[0]
	c.recoverq = c.recoverq[1:]
	p := c.pending[seq]
	if p == nil || p.done {
		c.drainRecovery()
		return
	}
	c.inRecov = true
	p.certSent = true

	// Assemble the commit certificate from the largest matching set.
	bySig := make(map[types.Digest][]*SpecResponse)
	for _, s := range p.specs {
		enc := types.NewEncoder(96)
		enc.U64(s.Seq)
		enc.Digest(s.History)
		enc.Digest(s.Result)
		bySig[types.Hash(enc.Bytes())] = append(bySig[types.Hash(enc.Bytes())], s)
	}
	var best []*SpecResponse
	for _, set := range bySig {
		if len(set) > len(best) {
			best = set
		}
	}
	need := len(c.Members) - c.F
	if len(best) < need {
		// Responses diverged meanwhile; retransmit instead.
		p.certSent = false
		c.inRecov = false
		for _, m := range c.Members {
			c.env.Send(m, &Request{Batch: p.batch})
		}
		c.armSpecTimer(seq)
		return
	}
	best = best[:need]
	cert := &CommitCert{
		Seq: best[0].Seq, History: best[0].History, Result: best[0].Result,
		Client: c.env.ID(),
	}
	for _, s := range best {
		cert.Signers = append(cert.Signers, s.Replica)
		cert.Sigs = append(cert.Sigs, s.Sig)
	}
	for _, m := range c.Members {
		c.env.Suite().ChargeMAC()
		c.env.Send(m, cert)
	}
}

// Receive implements simnet.Handler.
func (c *Client) Receive(from types.NodeID, msg types.Message) {
	switch m := msg.(type) {
	case *SpecResponse:
		p := c.pending[m.ClientSeq]
		if p == nil || p.done || p.specs[from] != nil || m.Replica != from {
			return
		}
		// The client checks each response signature (they may end up in a
		// commit certificate).
		c.env.Suite().ChargeVerify()
		p.specs[from] = m
		if !p.certSent && c.matching(p) == len(c.Members) {
			c.FastPath++
			c.complete(m.ClientSeq, p)
		}
	case *LocalCommit:
		// Find the pending batch in recovery with this consensus seq.
		for seq, p := range c.pending {
			if !p.certSent || p.done {
				continue
			}
			if anySpecSeq(p) != m.Seq {
				continue
			}
			if p.commits[from] {
				return
			}
			p.commits[from] = true
			if len(p.commits) >= len(c.Members)-c.F {
				c.SlowPath++
				c.complete(seq, p)
				c.inRecov = false
				c.drainRecovery()
			}
			return
		}
	case *proto.Reply:
		// Not used by Zyzzyva (responses are SpecResponse).
	}
}

func anySpecSeq(p *pendingBatch) uint64 {
	for _, s := range p.specs {
		return s.Seq
	}
	return 0
}

func (c *Client) complete(clientSeq uint64, p *pendingBatch) {
	p.done = true
	delete(c.pending, clientSeq)
	c.Completed++
	if c.OnComplete != nil {
		c.OnComplete(clientSeq, p.submitted, p.batch.Len())
	}
	c.submit()
}
