package resilientdb_test

import (
	"testing"
	"time"

	"resilientdb"
)

func TestOpenValidation(t *testing.T) {
	if _, err := resilientdb.Open(resilientdb.Options{Clusters: 0, ReplicasPerCluster: 4}); err == nil {
		t.Error("accepted zero clusters")
	}
	if _, err := resilientdb.Open(resilientdb.Options{Clusters: 2, ReplicasPerCluster: 3}); err == nil {
		t.Error("accepted n < 4")
	}
	if _, err := resilientdb.Open(resilientdb.Options{Clusters: 7, ReplicasPerCluster: 4}); err == nil {
		t.Error("accepted more clusters than regions")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	db, err := resilientdb.Open(resilientdb.Options{
		Clusters:           2,
		ReplicasPerCluster: 4,
		BatchSize:          4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	z, n, f := db.Topology()
	if z != 2 || n != 4 || f != 1 {
		t.Fatalf("topology = (%d,%d,%d)", z, n, f)
	}

	cl := db.Client(0)
	defer cl.Close()
	for b := 0; b < 3; b++ {
		txns := []resilientdb.Transaction{
			{Key: uint64(b * 2), Value: uint64(b)},
			{Key: uint64(b*2 + 1), Value: uint64(b)},
		}
		if err := cl.Submit(txns, 20*time.Second); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}
	time.Sleep(300 * time.Millisecond)
	db.Close()

	ref := db.ReplicaLedger(0, 0)
	if ref.Height() == 0 {
		t.Fatal("empty ledger")
	}
	if err := ref.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	for c := 0; c < z; c++ {
		for i := 0; i < n; i++ {
			if db.ReplicaLedger(c, i).Head() != ref.Head() {
				t.Errorf("replica (%d,%d) diverged", c, i)
			}
		}
	}
}

func TestSimulateFacade(t *testing.T) {
	m := resilientdb.Simulate(resilientdb.Experiment{
		Protocol:   resilientdb.GeoBFT,
		Clusters:   2,
		PerCluster: 4,
		Warmup:     300 * time.Millisecond,
		Measure:    time.Second,
	})
	if m.Throughput <= 0 {
		t.Errorf("throughput = %f", m.Throughput)
	}
	// Determinism through the facade.
	m2 := resilientdb.Simulate(resilientdb.Experiment{
		Protocol:   resilientdb.GeoBFT,
		Clusters:   2,
		PerCluster: 4,
		Warmup:     300 * time.Millisecond,
		Measure:    time.Second,
	})
	if m.Throughput != m2.Throughput {
		t.Error("simulation not deterministic through facade")
	}
}
